package pi2

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

// interactionSnapshot captures what a session serves after an interaction:
// the rendered HTML page (text — charts are SVG over the executed results)
// and a JSON encoding of every tree's result table.
func interactionSnapshot(t *testing.T, sess *iface.Session) (string, []byte) {
	t.Helper()
	text, err := iface.RenderHTML(sess)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	type tableJSON struct {
		Cols []string   `json:"cols"`
		Rows [][]string `json:"rows"`
	}
	out := make([]tableJSON, len(tables))
	for ti, tbl := range tables {
		out[ti].Cols = tbl.Cols
		for _, row := range tbl.Rows {
			r := make([]string, len(row))
			for ci, v := range row {
				r[ci] = v.Text()
			}
			out[ti].Rows = append(out[ti].Rows, r)
		}
	}
	js, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return text, js
}

// TestSharedPlanCacheServingEquivalence proves the cache-sharing contract
// of the session registry: serving through one shared cross-session
// PlanCache must be invisible in output. For every query in every built-in
// workload log, a session with a private per-session plan cache and two
// sessions sharing one PlanCache (the second riding entirely on plans the
// first compiled) produce byte-identical interaction results — rendered
// HTML text and the JSON encoding of every result table — across two full
// passes over the log (the second pass exercises the warm caches).
func TestSharedPlanCacheServingEquivalence(t *testing.T) {
	logs := workload.All()
	if testing.Short() {
		// The full matrix generates all seven paper interfaces; the short
		// suite keeps the cheap ones and leaves the rest to CI's full run.
		logs = []workload.Log{workload.Explore(), workload.Connect()}
	}
	for _, wl := range logs {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			db := dataset.NewDB()
			gen := NewGenerator(db, dataset.Keys())
			res, err := gen.Generate(wl.Queries)
			if err != nil {
				t.Fatal(err)
			}
			asts, err := sqlparser.ParseAll(wl.Queries)
			if err != nil {
				t.Fatal(err)
			}
			ctx := &transform.Context{Queries: asts, Cat: gen.Cat}

			private, err := iface.NewSession(res.Interface, ctx, db)
			if err != nil {
				t.Fatal(err)
			}
			pc := iface.NewPlanCache()
			sharedA, err := iface.NewSessionWithPlans(res.Interface, ctx, db, pc)
			if err != nil {
				t.Fatal(err)
			}
			sharedB, err := iface.NewSessionWithPlans(res.Interface, ctx, db, pc)
			if err != nil {
				t.Fatal(err)
			}

			for pass := 0; pass < 2; pass++ {
				for qi := range wl.Queries {
					label := fmt.Sprintf("pass %d query %d", pass, qi)
					var wantText string
					var wantJSON []byte
					for si, sess := range []*iface.Session{private, sharedA, sharedB} {
						if err := sess.ApplyQuery(qi); err != nil {
							t.Fatalf("%s session %d: %v", label, si, err)
						}
						text, js := interactionSnapshot(t, sess)
						if si == 0 {
							wantText, wantJSON = text, js
							continue
						}
						if text != wantText {
							t.Fatalf("%s: session %d rendered text differs from private-cache serving", label, si)
						}
						if !bytes.Equal(js, wantJSON) {
							t.Fatalf("%s: session %d result JSON differs from private-cache serving:\n%s\nvs\n%s",
								label, si, js, wantJSON)
						}
					}
				}
			}
			// The sharing must actually have engaged: sharedB executed every
			// query yet compiled nothing sharedA hadn't already compiled.
			if st := sharedB.Stats(); st.PlanHits == 0 {
				t.Fatalf("sharedB never hit the shared plan cache: %+v", st)
			}
			if private.Stats().PlanMisses <= sharedB.Stats().PlanMisses {
				t.Fatalf("shared serving compiled as much as private serving: private %+v vs sharedB %+v",
					private.Stats(), sharedB.Stats())
			}
		})
	}
}
