package pi2

import (
	"bytes"
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/workload"
)

// TestSameSeedByteIdenticalInterface: with shared cross-worker caches on
// (the default) and multiple parallel workers, repeat runs under one seed
// must produce byte-identical interfaces — rendered text and JSON spec.
// This is the determinism contract the search-side caches must not break.
func TestSameSeedByteIdenticalInterface(t *testing.T) {
	logs := []workload.Log{workload.Explore(), workload.Connect()}
	if !testing.Short() {
		// The slower paper workloads ride in the full suite: Covid and SDSS
		// exercise grouping, joins and the engine's operator pipeline end
		// to end.
		logs = append(logs, workload.Covid(), workload.SDSS())
	}
	for _, wl := range logs {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			render := func() (string, []byte) {
				db := dataset.NewDB()
				gen := NewGenerator(db, dataset.Keys())
				gen.Config.Search.Workers = 3
				gen.Config.Search.SyncInterval = 5
				gen.Config.Search.MaxIterations = 120
				res, err := gen.Generate(wl.Queries)
				if err != nil {
					t.Fatal(err)
				}
				js, err := iface.MarshalJSON(res.Interface)
				if err != nil {
					t.Fatal(err)
				}
				return iface.RenderText(res.Interface), js
			}
			text1, js1 := render()
			text2, js2 := render()
			if text1 != text2 {
				t.Errorf("rendered text differs between same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", text1, text2)
			}
			if !bytes.Equal(js1, js2) {
				t.Errorf("JSON spec differs between same-seed runs")
			}
		})
	}
}

// TestSharedCacheAblationSameInterface: turning the shared caches off must
// not change the generated interface, only how often work repeats.
func TestSharedCacheAblationSameInterface(t *testing.T) {
	wl := workload.Explore()
	render := func(shared bool) string {
		db := dataset.NewDB()
		gen := NewGenerator(db, dataset.Keys())
		gen.Config.Search.Workers = 3
		gen.Config.Search.SyncInterval = 5
		gen.Config.Search.MaxIterations = 120
		gen.Config.Search.SharedCaches = shared
		res, err := gen.Generate(wl.Queries)
		if err != nil {
			t.Fatal(err)
		}
		return iface.RenderText(res.Interface)
	}
	if on, off := render(true), render(false); on != off {
		t.Errorf("shared-cache ablation changed the interface:\n--- shared ---\n%s\n--- private ---\n%s", on, off)
	}
}
