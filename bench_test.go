// Benchmarks regenerating the paper's evaluation artifacts — one bench per
// table and figure (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results). Benches report the paper's
// metrics (generation time, interface cost, quality) via ReportMetric.
package pi2

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/experiment"
	"pi2/internal/iface"
	"pi2/internal/ingest"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/widget"
	"pi2/internal/workload"
)

var benchEnv = experiment.NewEnv()

// benchGenerate measures the generation hot path in isolation — a direct
// core.Generate call (parse + MCTS + final mapping), no experiment-harness
// bookkeeping — with sub-benchmarks for the cross-worker shared caches on
// and off so the sharing win is measurable by itself.
func benchGenerate(b *testing.B, log workload.Log) {
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	for _, shared := range []bool{true, false} {
		name := "shared"
		if !shared {
			name = "private"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Search.SharedCaches = shared
			b.ReportAllocs()
			var lastCost float64
			var ints int
			for i := 0; i < b.N; i++ {
				res, err := core.Generate(log.Queries, db, cat, cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastCost = res.Interface.Cost
				ints = res.Interface.InteractionCount()
			}
			b.ReportMetric(lastCost, "cost")
			b.ReportMetric(float64(ints), "interactions")
		})
	}
}

func BenchmarkGenerateExplore(b *testing.B) { benchGenerate(b, workload.Explore()) }
func BenchmarkGenerateCovid(b *testing.B)   { benchGenerate(b, workload.Covid()) }
func BenchmarkGenerateSDSS(b *testing.B)    { benchGenerate(b, workload.SDSS()) }

// benchLog generates the given log once per iteration and reports cost and
// interaction counts.
func benchLog(b *testing.B, log workload.Log) {
	b.ReportAllocs()
	var lastCost float64
	var ints int
	for i := 0; i < b.N; i++ {
		r, res, err := benchEnv.RunOnce(log, 30, 3, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = r.Cost
		ints = res.Interface.InteractionCount()
	}
	b.ReportMetric(lastCost, "cost")
	b.ReportMetric(float64(ints), "interactions")
}

// Figure 14: interaction-taxonomy expressiveness (one bench per panel).
func BenchmarkFigure14Explore(b *testing.B)  { benchLog(b, workload.Explore()) }
func BenchmarkFigure14Abstract(b *testing.B) { benchLog(b, workload.Abstract()) }
func BenchmarkFigure14Connect(b *testing.B)  { benchLog(b, workload.Connect()) }
func BenchmarkFigure14Filter(b *testing.B)   { benchLog(b, workload.Filter()) }

// Figure 15: case studies.
func BenchmarkFigure15SDSS(b *testing.B)  { benchLog(b, workload.SDSS()) }
func BenchmarkFigure15Covid(b *testing.B) { benchLog(b, workload.Covid()) }
func BenchmarkFigure15Sales(b *testing.B) { benchLog(b, workload.Sales()) }

// Figure 16: runtime-quality trade-off (reduced grid; pi2bench -fig 16
// prints the full series).
func BenchmarkFigure16Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiment.Figure16(io.Discard, benchEnv,
			[]workload.Log{workload.Explore()}, false)
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
		q := experiment.Quality(runs)
		best := 0.0
		for _, v := range q {
			if v > best {
				best = v
			}
		}
		b.ReportMetric(best, "best_quality")
	}
}

// Figure 17: parameter sensitivity on Explore/Filter/Covid.
func BenchmarkFigure17Sensitivity(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		runs := experiment.Figure17(io.Discard, benchEnv)
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

// §7.3 scalability: runtime versus duplicated-query count.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiment.Scalability(io.Discard, benchEnv, []int{1, 2, 4})
		if len(runs) != 3 {
			b.Fatal("scalability runs missing")
		}
		// report ms per query at the largest factor for trend tracking
		last := runs[len(runs)-1]
		b.ReportMetric(float64(last.Total().Milliseconds())/36, "ms_per_query")
	}
}

// Headline latency distribution (paper: 2–19 s, median 6 s on 4×2.2 GHz).
func BenchmarkEndToEndLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := experiment.Latency(io.Discard, benchEnv)
		if len(runs) != 7 {
			b.Fatalf("logs = %d", len(runs))
		}
	}
}

// BenchmarkSessionInteraction measures the serving hot path: one widget
// event (a binding change) followed by re-executing every bound query. The
// "cold" variant drops the interaction cache each iteration, paying the
// full resolve+plan+execute cost the interpreter paid on every event; the
// "cached" variant repeats the same two binding states, so after warmup
// each event is answered from memoized results.
func BenchmarkSessionInteraction(b *testing.B) {
	wl := workload.Explore()
	db := dataset.NewDB()
	gen := NewGenerator(db, dataset.Keys())
	res, err := gen.Generate(wl.Queries)
	if err != nil {
		b.Fatal(err)
	}
	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	newSession := func(b *testing.B) *iface.Session {
		sess, err := iface.NewSession(res.Interface, ctx, db)
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}
	// The Explore interface maps the log onto a pan interaction covering the
	// four BETWEEN bounds (Figure 14a); panning between the two viewports of
	// the input queries is the repeated interaction.
	if len(res.Interface.VisInts) == 0 {
		b.Fatal("Explore interface has no visualization interactions")
	}
	vi := res.Interface.VisInts[0]
	srcElem := res.Interface.Vis[vi.SourceVis].ElemID
	kind := string(vi.Kind)
	viewports := [][]string{
		{"50", "60", "27", "38"},
		{"60", "90", "16", "30"},
	}
	interact := func(b *testing.B, sess *iface.Session, i int) {
		if err := sess.Brush(srcElem, kind, viewports[i%2]...); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		sess := newSession(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sess.ResetCache()
			interact(b, sess, i)
		}
	})
	b.Run("cached", func(b *testing.B) {
		sess := newSession(b)
		for i := 0; i < len(wl.Queries); i++ { // warm every state once
			interact(b, sess, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			interact(b, sess, i)
		}
		b.StopTimer()
		st := sess.Stats()
		b.ReportMetric(float64(st.ResultHits)/float64(st.ResultHits+st.ResultMisses), "hit_rate")
	})
}

// Table 1: visualization schema catalog + candidate mapping generation.
func BenchmarkTable1VisCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, s := range vis.Catalog() {
			total += len(vis.InteractionsFor(s.Type))
		}
		if total == 0 {
			b.Fatal("empty catalog")
		}
	}
}

// Table 2: widget schema catalog + cost polynomial evaluation.
func BenchmarkTable2WidgetCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, k := range widget.Kinds() {
			for d := 0; d < 10; d++ {
				a0, a1, a2 := widget.CostCoeffs(k)
				total += a0 + a1*float64(d) + a2*float64(d*d)
			}
		}
		if total <= 0 {
			b.Fatal("bad coefficients")
		}
	}
}

// Figures 18/19: quality spread of non-optimal interfaces under tight
// search budgets.
func BenchmarkFigure18Quality(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		runs := experiment.QualitySpread(io.Discard, benchEnv, workload.Explore())
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

// Ablations for the design choices DESIGN.md calls out.
func BenchmarkAblations(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		runs := experiment.Ablations(io.Discard, benchEnv, workload.Explore())
		if len(runs) == 0 {
			b.Fatal("no ablation runs")
		}
	}
}

// Ingestion throughput: one-pass type inference + materialization over a
// ~100k-row CSV with mixed int/float/str/date columns (the bring-your-own-
// data hot path; rows/sec is the headline metric).
func BenchmarkIngestCSV(b *testing.B) {
	const rows = 100_000
	var buf bytes.Buffer
	buf.WriteString("id,val,ratio,label,date\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "%d,%d,%.4f,cat%d,2020-%02d-%02d\n",
			i, i%1000, float64(i)/3.0, i%7, 1+i%12, 1+i%28)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, _, err := ingest.ReadTable(bytes.NewReader(data), "bench", ingest.FormatCSV, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != rows {
			b.Fatalf("ingested %d rows", len(tbl.Rows))
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}
