// Command pi2gen generates an interactive visualization interface from a
// SQL query log — one-shot, for scripting and benchmarking: files in,
// rendered interface (and optionally JSON spec / HTML snapshot) out.
//
// Usage:
//
//	pi2gen -log Explore                 # one of the paper's seven logs
//	pi2gen -log list                    # print the built-in log names
//	pi2gen -file queries.sql            # semicolon-separated custom queries
//	                                    # against the built-in tables
//	pi2gen -data cars.csv -queries explore.sql   # bring your own data
//	pi2gen -data a.csv,b.ndjson.gz -queries log.sql -manifest m.json
//	pi2gen -log Covid -html out.html    # write an HTML snapshot
//	pi2gen -log Filter -trees           # also dump the Difftrees
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/ingest"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	logName := flag.String("log", "", "built-in workload name (use \"list\" to enumerate)")
	file := flag.String("file", "", "file with semicolon-separated SQL queries against the built-in tables")
	dataFiles := flag.String("data", "", "comma-separated data files (.csv/.tsv/.json/.ndjson/.jsonl, optionally .gz) to ingest instead of the built-in tables")
	queriesFile := flag.String("queries", "", "query-log file for the ingested data (one statement per line or ;-separated, # comments)")
	manifest := flag.String("manifest", "", "optional dataset manifest (table names, keys, type overrides)")
	htmlOut := flag.String("html", "", "write an HTML snapshot to this path")
	jsonOut := flag.String("json", "", "write the interface spec as JSON to this path")
	seed := flag.Int64("seed", 1, "search seed")
	workers := flag.Int("p", 3, "parallel MCTS workers")
	earlyStop := flag.Int("es", 30, "early-stop iterations")
	sync := flag.Int("s", 10, "synchronization interval")
	showTrees := flag.Bool("trees", false, "print the final Difftrees")
	flag.Parse()

	db, keys, queries, err := loadInputs(*logName, *file, *dataFiles, *queriesFile, *manifest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2gen:", err)
		os.Exit(1)
	}
	cat := catalog.Build(db, keys)
	cfg := core.DefaultConfig()
	cfg.Search.Seed = *seed
	cfg.Search.Workers = *workers
	cfg.Search.EarlyStop = *earlyStop
	cfg.Search.SyncInterval = *sync

	res, err := core.Generate(queries, db, cat, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2gen:", err)
		os.Exit(1)
	}

	fmt.Printf("generated in %v (search %v + mapping %v, %d MCTS iterations)\n",
		res.SearchTime+res.MapTime, res.SearchTime, res.MapTime, res.Iterations)
	fmt.Print(iface.RenderText(res.Interface))
	if *showTrees {
		fmt.Print(iface.RenderTrees(res.State))
	}

	if *jsonOut != "" {
		data, err := iface.MarshalJSON(res.Interface)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonOut)
	}

	if *htmlOut != "" {
		asts, err := sqlparser.ParseAll(queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		ctx := &transform.Context{Queries: asts, Cat: cat}
		sess, err := iface.NewSession(res.Interface, ctx, db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		html, err := iface.RenderHTML(sess)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*htmlOut, []byte(html), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *htmlOut)
	}
}

// loadInputs resolves the three input modes: ingested files (-data/-queries),
// a built-in workload (-log), or a raw query file over the built-in tables
// (-file).
func loadInputs(logName, file, dataFiles, queriesFile, manifest string) (*engine.DB, map[string][]string, []string, error) {
	switch {
	case dataFiles != "":
		if queriesFile == "" {
			return nil, nil, nil, fmt.Errorf("-data requires -queries <log.sql>")
		}
		loaded, stmts, err := ingest.LoadAll(ingest.SplitList(dataFiles), queriesFile, manifest)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, rep := range loaded.Tables {
			fmt.Println("ingested", rep)
		}
		fmt.Printf("query log %s: %d statements\n", queriesFile, len(stmts))
		return loaded.DB, loaded.Keys, ingest.SQLs(stmts), nil
	case logName == "list":
		fmt.Println("built-in logs:\n  " + strings.Join(workload.Names(), "\n  "))
		os.Exit(0)
		panic("unreachable")
	case logName != "":
		l, ok := workload.ByName(logName)
		if !ok {
			return nil, nil, nil, fmt.Errorf("unknown log %q; built-in logs are %s (or ingest your own data with -data/-queries)",
				logName, strings.Join(workload.Names(), ", "))
		}
		return dataset.NewDB(), dataset.Keys(), l.Queries, nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, nil, err
		}
		var out []string
		for _, q := range strings.Split(string(data), ";") {
			q = strings.TrimSpace(q)
			if q != "" {
				out = append(out, q)
			}
		}
		if len(out) == 0 {
			return nil, nil, nil, fmt.Errorf("no queries in %s", file)
		}
		return dataset.NewDB(), dataset.Keys(), out, nil
	default:
		return nil, nil, nil, fmt.Errorf("pass -log <name>, -file <path>, or -data <files> -queries <log>")
	}
}
