// Command pi2gen generates an interactive visualization interface from a
// SQL query log.
//
// Usage:
//
//	pi2gen -log Explore                 # one of the paper's seven logs
//	pi2gen -file queries.sql            # semicolon-separated custom queries
//	pi2gen -log Covid -html out.html    # write an HTML snapshot
//	pi2gen -log Filter -trees           # also dump the Difftrees
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	logName := flag.String("log", "", "built-in workload name (Explore, Abstract, Connect, Filter, SDSS, Covid, Sales)")
	file := flag.String("file", "", "file with semicolon-separated SQL queries")
	htmlOut := flag.String("html", "", "write an HTML snapshot to this path")
	jsonOut := flag.String("json", "", "write the interface spec as JSON to this path")
	seed := flag.Int64("seed", 1, "search seed")
	workers := flag.Int("p", 3, "parallel MCTS workers")
	earlyStop := flag.Int("es", 30, "early-stop iterations")
	sync := flag.Int("s", 10, "synchronization interval")
	showTrees := flag.Bool("trees", false, "print the final Difftrees")
	flag.Parse()

	queries, err := loadQueries(*logName, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2gen:", err)
		os.Exit(1)
	}

	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	cfg := core.DefaultConfig()
	cfg.Search.Seed = *seed
	cfg.Search.Workers = *workers
	cfg.Search.EarlyStop = *earlyStop
	cfg.Search.SyncInterval = *sync

	res, err := core.Generate(queries, db, cat, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2gen:", err)
		os.Exit(1)
	}

	fmt.Printf("generated in %v (search %v + mapping %v, %d MCTS iterations)\n",
		res.SearchTime+res.MapTime, res.SearchTime, res.MapTime, res.Iterations)
	fmt.Print(iface.RenderText(res.Interface))
	if *showTrees {
		fmt.Print(iface.RenderTrees(res.State))
	}

	if *jsonOut != "" {
		data, err := iface.MarshalJSON(res.Interface)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonOut)
	}

	if *htmlOut != "" {
		asts, err := sqlparser.ParseAll(queries)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		ctx := &transform.Context{Queries: asts, Cat: cat}
		sess, err := iface.NewSession(res.Interface, ctx, db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		html, err := iface.RenderHTML(sess)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*htmlOut, []byte(html), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pi2gen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *htmlOut)
	}
}

func loadQueries(logName, file string) ([]string, error) {
	switch {
	case logName != "":
		l, ok := workload.ByName(logName)
		if !ok {
			return nil, fmt.Errorf("unknown log %q", logName)
		}
		return l.Queries, nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, q := range strings.Split(string(data), ";") {
			q = strings.TrimSpace(q)
			if q != "" {
				out = append(out, q)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no queries in %s", file)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pass -log <name> or -file <path>")
	}
}
