// Command pi2serve generates an interface for a query log and serves it as
// a live multi-user web application: charts render as SVG from the current
// query results, widget manipulations post back and rewrite the bound
// queries — the browser/server/database stack the paper's interfaces
// deploy to.
//
// It serves either a built-in workload or user-supplied files:
//
//	pi2serve -log Covid -addr :8080
//	pi2serve -log list
//	pi2serve -data cars.csv,sales.ndjson.gz -queries log.sql -manifest m.json
//	open http://localhost:8080
//
// Serving is multi-tenant: every user gets their own session (keyed by the
// pi2session cookie, or an explicit ?session= parameter) with independent
// widget/binding state, managed by a registry that enforces -max-sessions
// (LRU eviction) and -session-ttl (idle expiry). Compiled query plans are
// binding-independent, so one shared single-flight plan cache serves every
// session; per-binding result tables stay session-private in LRU caches.
// Aggregated per-session cache counters plus registry occupancy/eviction
// counts are exposed at /stats, and a lock-free liveness probe at /healthz.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes
// immediately, in-flight requests drain for up to -drain (default 10s), and
// the registry then drains all sessions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/ingest"
	"pi2/internal/obs"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	logName := flag.String("log", "", "built-in workload name (use \"list\" to enumerate); default Explore")
	dataFiles := flag.String("data", "", "comma-separated data files (.csv/.tsv/.json/.ndjson/.jsonl, optionally .gz) to serve instead of the built-in tables")
	queriesFile := flag.String("queries", "", "query-log file for the ingested data (one statement per line or ;-separated, # comments)")
	manifest := flag.String("manifest", "", "optional dataset manifest (table names, keys, type overrides)")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "search seed")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests")
	maxSessions := flag.Int("max-sessions", iface.DefaultMaxSessions, "maximum live sessions; the least recently used is evicted at the cap")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 disables idle expiry)")
	metrics := flag.Bool("metrics", true, "expose Prometheus metrics at /metrics and trace each request")
	slowThreshold := flag.Duration("slow-threshold", time.Second, "log requests slower than this to stderr as JSON lines (0 disables; needs -metrics)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for /debug/pprof (empty: pprof is not served at all)")
	enableIngest := flag.Bool("ingest", false, "enable live writes: POST /ingest?table=name with an NDJSON body appends rows")
	followFiles := flag.String("follow", "", "comma-separated subset of -data files to tail for appended records while serving")
	followInterval := flag.Duration("follow-interval", 500*time.Millisecond, "poll interval for -follow files")
	flag.Parse()

	db, keys, queries, title, tailers, err := loadInputs(*logName, *dataFiles, *queriesFile, *manifest, ingest.SplitList(*followFiles))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2serve:", err)
		os.Exit(1)
	}
	cat := catalog.Build(db, keys)
	cfg := core.DefaultConfig()
	cfg.Search.Seed = *seed

	fmt.Printf("generating interface for %s ...\n", title)
	res, err := core.Generate(queries, db, cat, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: cat}
	reg := newRegistry(res.Interface, ctx, db, *maxSessions, *sessionTTL)
	o := newObs(*metrics, *slowThreshold, os.Stderr, reg, db)
	dbg, stopDebug, err := startDebugServer(*debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	if dbg != "" {
		fmt.Printf("pprof on http://%s/debug/pprof/\n", dbg)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s (max %d sessions, ttl %s; counters at /stats, liveness at /healthz)\n",
		*addr, *maxSessions, *sessionTTL)
	if o != nil {
		fmt.Printf("metrics at /metrics (slow-query threshold %s)\n", *slowThreshold)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	stopSweeper := startSweeper(reg, *sessionTTL)
	stopTailers := startTailers(tailers, *followInterval, log.Printf)
	sv := iface.NewRegistryServer(reg).WithObs(o)
	if *enableIngest {
		sv.WithIngest(db)
		fmt.Println("live writes enabled: POST /ingest?table=<name> with NDJSON rows")
	}
	err = serve(ln, sv.Handler(), sigs, *drain, log.Printf)
	stopTailers()
	stopSweeper()
	stopDebug()
	reg.Close() // drain all sessions into the final aggregate
	if st := reg.Stats(); st.Created > 0 {
		log.Printf("pi2serve: served %d sessions (%d evicted, %d expired); cache %+v",
			st.Created, st.EvictedLRU, st.ExpiredTTL, st.Cache)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// newRegistry wires the serving registry exactly as the tests and benches
// do: per-user sessions from one generated interface, all sharing one
// single-flight plan cache.
func newRegistry(ifc *iface.Interface, ctx *transform.Context, db *engine.DB, maxSessions int, ttl time.Duration) *iface.Registry {
	pc := iface.NewPlanCache()
	return iface.NewRegistry(func() (*iface.Session, error) {
		return iface.NewSessionWithPlans(ifc, ctx, db, pc)
	}, iface.RegistryOptions{MaxSessions: maxSessions, TTL: ttl, Plans: pc})
}

// newObs builds the serving observability bundle: a metrics registry
// carrying the HTTP middleware instruments, the registry's session and
// cache counters, and the engine's index/statistics instruments, plus a
// slow-query log writing JSON lines to slowW. Returns nil (fully disabled)
// when -metrics is off.
func newObs(enable bool, slowThreshold time.Duration, slowW io.Writer, reg *iface.Registry, db *engine.DB) *iface.ServerObs {
	if !enable {
		return nil
	}
	m := obs.NewRegistry()
	iface.RegisterServingMetrics(m, reg)
	o := iface.NewServerObs(m, obs.NewSlowLog(slowW, slowThreshold))
	o.ObserveEngine(db)
	return o
}

// startDebugServer serves net/http/pprof on its own listener, opt-in via
// -debug-addr. The handlers are registered on a private mux bound to a
// separate address, so the serving listener never exposes pprof — by
// default (empty addr) the profiler is not reachable anywhere. Returns the
// bound address (for tests and the startup banner) and a stop function.
func startDebugServer(addr string) (string, func(), error) {
	if addr == "" {
		return "", func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// startTailers polls each -follow file on its interval, appending complete
// records to the live tables; the returned stop function ends all of them.
// One goroutine per file keeps the engine's single-logical-writer-per-table
// contract (each tailer owns exactly one table). A poll error stops that
// tailer — the common causes (truncation, rotation, schema break) do not
// heal by polling again — with a log line saying where it left off.
func startTailers(tailers []*ingest.Tailer, interval time.Duration, logf func(string, ...any)) (stop func()) {
	if len(tailers) == 0 {
		return func() {}
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	done := make(chan struct{})
	for _, tl := range tailers {
		tl := tl
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if _, err := tl.Poll(); err != nil {
						logf("pi2serve: follow: %v (stopping this tailer at offset %d)", err, tl.Offset())
						return
					}
				case <-done:
					return
				}
			}
		}()
	}
	return func() { close(done) }
}

// startSweeper periodically retires idle sessions so an abandoned fleet
// shrinks between requests; the returned stop function ends it.
func startSweeper(reg *iface.Registry, ttl time.Duration) (stop func()) {
	if ttl <= 0 {
		return func() {}
	}
	interval := ttl / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if interval < time.Second {
		interval = time.Second // tiny TTLs must not yield a zero ticker
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				reg.Sweep()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// serve runs the HTTP server until a signal arrives on sigs, then shuts
// down gracefully: the listener closes immediately (new connections are
// refused) while in-flight requests get up to drain to finish. The signal
// channel is a parameter so tests can simulate SIGINT/SIGTERM without
// killing the test process.
func serve(ln net.Listener, h http.Handler, sigs <-chan os.Signal, drain time.Duration, logf func(string, ...any)) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// Serve never returns nil; surface whatever brought it down.
		return err
	case sig := <-sigs:
		logf("pi2serve: received %v, draining in-flight requests (up to %s)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("pi2serve: shutdown: %w", err)
		}
		// Shutdown closed the listener: Serve has returned ErrServerClosed.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logf("pi2serve: shutdown complete")
		return nil
	}
}

// loadInputs resolves what to serve: ingested files (-data/-queries) or a
// built-in workload (-log). Files in follow are ingested complete-records-
// only and come back as ready tailers that resume at the consumed offset.
func loadInputs(logName, dataFiles, queriesFile, manifest string, follow []string) (*engine.DB, map[string][]string, []string, string, []*ingest.Tailer, error) {
	if dataFiles != "" {
		if queriesFile == "" {
			return nil, nil, nil, "", nil, fmt.Errorf("-data requires -queries <log.sql>")
		}
		loaded, stmts, tailers, err := ingest.LoadAllFollowing(ingest.SplitList(dataFiles), queriesFile, manifest, follow)
		if err != nil {
			return nil, nil, nil, "", nil, err
		}
		for _, rep := range loaded.Tables {
			fmt.Println("ingested", rep)
		}
		return loaded.DB, loaded.Keys, ingest.SQLs(stmts), queriesFile, tailers, nil
	}
	if len(follow) > 0 {
		return nil, nil, nil, "", nil, fmt.Errorf("-follow requires -data (built-in workloads have no files to tail)")
	}
	if logName == "list" {
		fmt.Println("built-in logs:\n  " + strings.Join(workload.Names(), "\n  "))
		os.Exit(0)
	}
	if logName == "" {
		logName = "Explore"
	}
	wl, ok := workload.ByName(logName)
	if !ok {
		return nil, nil, nil, "", nil, fmt.Errorf("unknown log %q; built-in logs are %s (or serve your own data with -data/-queries)",
			logName, strings.Join(workload.Names(), ", "))
	}
	return dataset.NewDB(), dataset.Keys(), wl.Queries, wl.Name, nil, nil
}
