// Command pi2serve generates an interface for a query log and serves it as
// a live web application: charts render as SVG from the current query
// results, widget manipulations post back and rewrite the bound queries —
// the browser/server/database stack the paper's interfaces deploy to.
//
// Serving runs on the cached session path: bound queries are compiled once
// into engine plans and result tables are memoized per binding state, so
// repeated widget events skip parse, plan, and execution entirely. The
// session's own mutex serializes concurrent requests; cache hit/miss
// counters are exposed at /stats.
//
//	pi2serve -log Covid -addr :8080
//	open http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	logName := flag.String("log", "Explore", "workload name")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "search seed")
	flag.Parse()

	wl, ok := workload.ByName(*logName)
	if !ok {
		log.Fatalf("unknown log %q", *logName)
	}
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	cfg := core.DefaultConfig()
	cfg.Search.Seed = *seed

	fmt.Printf("generating interface for %s ...\n", wl.Name)
	res, err := core.Generate(wl.Queries, db, cat, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s (interaction cache enabled; counters at /stats)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, iface.NewServer(sess).Handler()))
}
