package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pi2/internal/engine"
	"pi2/internal/iface"
)

// stubRegistry is the cheapest registry that can serve /metrics, /stats and
// /healthz: the session factory always fails, so no interface generation is
// needed and page loads 500 — irrelevant for these routes.
func stubRegistry() *iface.Registry {
	return iface.NewRegistry(func() (*iface.Session, error) {
		return nil, fmt.Errorf("stub: no sessions")
	}, iface.RegistryOptions{})
}

// TestDefaultServesNoPprof pins the opt-in contract: with -debug-addr unset
// the serving mux exposes no pprof anywhere — /debug/pprof/ falls through
// to the catch-all page handler, and no profiler index leaks.
func TestDefaultServesNoPprof(t *testing.T) {
	addr, stop, err := startDebugServer("")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if addr != "" {
		t.Fatalf("startDebugServer(\"\") bound %q, want no listener", addr)
	}

	reg := stubRegistry()
	o := newObs(true, time.Second, io.Discard, reg, engine.NewDB("2020-12-31"))
	h := iface.NewRegistryServer(reg).WithObs(o).Handler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		body := rr.Body.String()
		if strings.Contains(body, "Types of profiles available") || strings.Contains(body, "goroutine profile") {
			t.Fatalf("serving mux leaks pprof at %s:\n%s", path, body)
		}
	}
}

func TestDebugServerOptIn(t *testing.T) {
	addr, stop, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index body = %q", body)
	}
}

// TestObsWiring exercises the main-path observability constructor: metrics
// route live, registry counters exported, slow log attached, and -metrics
// off yielding a nil (fully disabled) bundle.
func TestObsWiring(t *testing.T) {
	if o := newObs(false, time.Second, io.Discard, stubRegistry(), engine.NewDB("2020-12-31")); o != nil {
		t.Fatal("-metrics=false must disable observability entirely")
	}

	var slow bytes.Buffer
	reg := stubRegistry()
	o := newObs(true, time.Nanosecond, &slow, reg, engine.NewDB("2020-12-31"))
	h := iface.NewRegistryServer(reg).WithObs(o).Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rr.Code)
	}
	for _, want := range []string{"pi2_http_requests_total", "pi2_sessions_live", "pi2_uptime_seconds",
		"pi2_engine_index_builds_total", "pi2_engine_index_hits_total", "pi2_engine_index_build_seconds"} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// 1ns threshold: the /healthz request above must have hit the slow log.
	if !strings.Contains(slow.String(), `"kind":"http"`) {
		t.Fatalf("slow log empty, want a JSON line; got %q", slow.String())
	}
}
