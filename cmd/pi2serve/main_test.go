package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

// slowHandler mimics an interaction request that is mid-flight when the
// shutdown signal lands: it blocks until release is closed, then answers.
type slowHandler struct {
	started chan struct{}
	release chan struct{}
	served  atomic.Int32
}

func (h *slowHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	close(h.started)
	<-h.release
	h.served.Add(1)
	fmt.Fprintln(w, "done")
}

// TestServeGracefulShutdown simulates SIGTERM while a request is in flight:
// the in-flight request must complete, new connections must be refused, and
// serve must return nil.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &slowHandler{started: make(chan struct{}), release: make(chan struct{})}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, h, sigs, 5*time.Second, t.Logf) }()

	base := "http://" + ln.Addr().String()
	if resp, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// Start the slow request, then deliver the (simulated) signal once the
	// handler is definitely in flight.
	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		reqDone <- strings.TrimSpace(string(body))
	}()
	<-h.started
	sigs <- syscall.SIGTERM

	// The listener must stop accepting new work promptly even though the
	// old request is still draining.
	waitRefused(t, base)

	// Release the in-flight request: it must complete normally.
	close(h.release)
	if got := <-reqDone; got != "done" {
		t.Fatalf("in-flight request = %q, want \"done\"", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	if h.served.Load() != 1 {
		t.Fatalf("served %d slow requests, want 1", h.served.Load())
	}
}

// waitRefused polls until new connections are refused (shutdown closes the
// listener asynchronously with signal delivery).
func waitRefused(t *testing.T, base string) {
	t.Helper()
	client := &http.Client{Timeout: 200 * time.Millisecond}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return // refused or timed out: listener is closed
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("new connections still accepted after shutdown signal")
}

// TestServeReturnsListenerError pins the non-signal exit path: if the
// listener dies underneath the server, serve surfaces the error instead of
// hanging.
func TestServeReturnsListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal)
	done := make(chan error, 1)
	go func() { done <- serve(ln, http.NotFoundHandler(), sigs, time.Second, t.Logf) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve returned nil after listener close, want error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after listener close")
	}
}

// TestHealthzEndToEnd generates a real interface (the Explore workload,
// exactly like `pi2serve -log Explore`), serves it multi-tenant through the
// same registry wiring and serve loop main uses, probes /healthz and
// /stats, drives two independent sessions, and shuts down via a simulated
// SIGINT — after which the registry drains and refuses new sessions.
func TestHealthzEndToEnd(t *testing.T) {
	db, keys, queries, _, _, err := loadInputs("Explore", "", "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.Build(db, keys)
	res, err := core.Generate(queries, db, cat, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	asts, err := sqlparser.ParseAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	reg := newRegistry(res.Interface, &transform.Context{Queries: asts, Cat: cat}, db, 8, time.Hour)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ln, iface.NewRegistryServer(reg).Handler(), sigs, time.Second, t.Logf) }()
	base := "http://" + ln.Addr().String()

	for _, path := range []string{"/healthz", "/stats", "/?session=alice", "/?session=bob"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, body)
		}
		if path == "/healthz" && strings.TrimSpace(string(body)) != "ok" {
			t.Fatalf("healthz body = %q", body)
		}
	}
	if st := reg.Stats(); st.LiveSessions != 2 || st.Created != 2 {
		t.Fatalf("registry stats after two users = %+v", st)
	}

	sigs <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
	reg.Close()
	if _, err := reg.Acquire("carol"); err != iface.ErrRegistryClosed {
		t.Fatalf("Acquire after drain = %v, want ErrRegistryClosed", err)
	}
	if st := reg.Stats(); st.LiveSessions != 0 {
		t.Fatalf("sessions not drained: %+v", st)
	}
}

// TestFollowLiveTail drives the -follow wiring end to end: loadInputs
// ingests only the complete-record prefix of a growing CSV (the torn final
// record is excluded), and the tailer goroutine picks up appended records —
// including the completion of the torn one — while serving.
func TestFollowLiveTail(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(data, []byte("k,v\n1,a\n2,b\n3,"), 0o644); err != nil {
		t.Fatal(err)
	}
	qlog := filepath.Join(dir, "q.sql")
	if err := os.WriteFile(qlog, []byte("SELECT k FROM m WHERE v = 'a'\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, _, _, _, tailers, err := loadInputs("", data, qlog, "", []string{data})
	if err != nil {
		t.Fatal(err)
	}
	if len(tailers) != 1 {
		t.Fatalf("got %d tailers, want 1", len(tailers))
	}
	tbl, _ := db.Table("m")
	if len(tbl.Rows) != 2 {
		t.Fatalf("initial load has %d rows, want 2 (torn record must wait)", len(tbl.Rows))
	}
	stop := startTailers(tailers, 5*time.Millisecond, t.Logf)
	defer stop()
	f, err := os.OpenFile(data, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("c\n4,d\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := db.Table("m")
		if len(got.Rows) == 4 {
			if got.Rows[2][1].Str != "c" || got.Rows[3][1].Str != "d" {
				t.Fatalf("tailed rows wrong: %v", got.Rows[2:])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tailer never ingested the appended rows (%d rows)", len(got.Rows))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := db.AppendCounters(); c.Appends == 0 {
		t.Fatal("append counters did not move")
	}
}
