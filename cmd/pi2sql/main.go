// Command pi2sql is a small SQL REPL over the embedded execution engine and
// the bundled paper datasets — a direct way to poke at the substrate PI2
// generates interfaces against.
//
//	$ pi2sql
//	pi2> SELECT hour, count(*) FROM flights GROUP BY hour LIMIT 5
//	pi2> EXPLAIN SELECT ...         -- compiled plan, no execution
//	pi2> EXPLAIN ANALYZE SELECT ... -- per-operator rows and timings
//	pi2> \d            -- list tables
//	pi2> \q            -- quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
)

func main() {
	db := dataset.NewDB()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("pi2sql — embedded engine over the paper's datasets (\\d tables, \\q quit)")
	fmt.Print("pi2> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\d`:
			for _, s := range dataset.Summary(db) {
				fmt.Println(" ", s)
			}
		default:
			fmt.Print(evalLine(db, line))
		}
		fmt.Print("pi2> ")
	}
}

// evalLine evaluates one REPL statement and returns the text to print: the
// result table, the per-operator execution profile for an `EXPLAIN ANALYZE
// <query>` prefix, or the compiled plan (no execution) for a bare `EXPLAIN
// <query>` prefix.
func evalLine(db *engine.DB, line string) string {
	sql := strings.TrimSuffix(strings.TrimSpace(line), ";")
	if rest, ok := stripExplainAnalyze(sql); ok {
		return explainAnalyze(db, rest)
	}
	if rest, ok := stripExplain(sql); ok {
		return explainPlan(db, rest)
	}
	res, err := engine.ExecSQL(db, sql, sqlparser.Parse)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return res.String() + fmt.Sprintf("(%d rows)\n", len(res.Rows))
}

// stripExplainAnalyze detects a leading EXPLAIN ANALYZE (case-insensitive)
// and returns the query after it.
func stripExplainAnalyze(sql string) (string, bool) {
	fields := strings.Fields(sql)
	if len(fields) >= 3 && strings.EqualFold(fields[0], "EXPLAIN") && strings.EqualFold(fields[1], "ANALYZE") {
		return strings.Join(fields[2:], " "), true
	}
	return sql, false
}

// stripExplain detects a leading bare EXPLAIN (case-insensitive; ANALYZE is
// handled first by stripExplainAnalyze) and returns the query after it.
func stripExplain(sql string) (string, bool) {
	fields := strings.Fields(sql)
	if len(fields) >= 2 && strings.EqualFold(fields[0], "EXPLAIN") {
		return strings.Join(fields[1:], " "), true
	}
	return sql, false
}

// explainPlan compiles the query and renders the plan without executing it:
// access paths with statistics estimates, join strategy and build sides,
// predicate placement.
func explainPlan(db *engine.DB, sql string) string {
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	plan, err := engine.Prepare(db, ast)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return plan.Explain()
}

// explainAnalyze runs the query with per-operator profiling and renders the
// EXPLAIN ANALYZE report (rows in/out and wall time per physical operator).
func explainAnalyze(db *engine.DB, sql string) string {
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	plan, err := engine.Prepare(db, ast)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	tbl, prof, err := plan.ExecProfiled()
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return prof.String() + fmt.Sprintf("(%d rows)\n", len(tbl.Rows))
}
