// Command pi2sql is a small SQL REPL over the embedded execution engine and
// the bundled paper datasets — a direct way to poke at the substrate PI2
// generates interfaces against.
//
//	$ pi2sql
//	pi2> SELECT hour, count(*) FROM flights GROUP BY hour LIMIT 5
//	pi2> \d            -- list tables
//	pi2> \q            -- quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
)

func main() {
	db := dataset.NewDB()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("pi2sql — embedded engine over the paper's datasets (\\d tables, \\q quit)")
	fmt.Print("pi2> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\d`:
			for _, s := range dataset.Summary(db) {
				fmt.Println(" ", s)
			}
		default:
			res, err := engine.ExecSQL(db, strings.TrimSuffix(line, ";"), sqlparser.Parse)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(res.String())
				fmt.Printf("(%d rows)\n", len(res.Rows))
			}
		}
		fmt.Print("pi2> ")
	}
}
