package main

import (
	"strings"
	"testing"

	"pi2/internal/dataset"
)

func TestEvalLinePlainQuery(t *testing.T) {
	db := dataset.NewDB()
	out := evalLine(db, "SELECT count(*) FROM galaxy;")
	if !strings.Contains(out, "(1 rows)") {
		t.Fatalf("output = %q", out)
	}
	if strings.Contains(out, "operator") {
		t.Fatalf("plain query produced a profile:\n%s", out)
	}
}

// TestEvalLineExplainAnalyzeHashJoin pins the acceptance criterion: EXPLAIN
// ANALYZE over a hash-join query shows per-operator rows and timings.
func TestEvalLineExplainAnalyzeHashJoin(t *testing.T) {
	db := dataset.NewDB()
	out := evalLine(db,
		"explain analyze SELECT galaxy.objID, specObj.z FROM galaxy, specObj WHERE galaxy.objID = specObj.bestObjID")
	for _, want := range []string{"operator", "rows in", "rows out", "scan", "hash-build", "join", "total", "(400 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "hash") {
		t.Errorf("join did not report hash mode:\n%s", out)
	}
}

// TestEvalLineExplainPlan pins the plan-only surface: bare EXPLAIN renders
// the compiled plan (access paths, join strategy) without executing, so no
// row counts or timings appear.
func TestEvalLineExplainPlan(t *testing.T) {
	db := dataset.NewDB()
	out := evalLine(db,
		"EXPLAIN SELECT galaxy.objID, specObj.z FROM galaxy, specObj WHERE galaxy.objID = specObj.bestObjID")
	for _, want := range []string{"scan", "join"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	for _, ban := range []string{"rows in", "rows)", "total"} {
		if strings.Contains(out, ban) {
			t.Errorf("plan-only EXPLAIN leaked execution output %q:\n%s", ban, out)
		}
	}
}

func TestEvalLineExplainPlanError(t *testing.T) {
	db := dataset.NewDB()
	out := evalLine(db, "EXPLAIN SELECT nope FROM missing")
	if !strings.HasPrefix(out, "error:") {
		t.Fatalf("output = %q, want error", out)
	}
}

func TestEvalLineExplainAnalyzeError(t *testing.T) {
	db := dataset.NewDB()
	out := evalLine(db, "EXPLAIN ANALYZE SELECT nope FROM missing")
	if !strings.HasPrefix(out, "error:") {
		t.Fatalf("output = %q, want error", out)
	}
}

func TestStripExplainAnalyze(t *testing.T) {
	if got, ok := stripExplainAnalyze("ExPlain ANALYZE SELECT 1 FROM T"); !ok || got != "SELECT 1 FROM T" {
		t.Fatalf("got %q, %v", got, ok)
	}
	if _, ok := stripExplainAnalyze("EXPLAIN SELECT 1 FROM T"); ok {
		t.Fatal("bare EXPLAIN must not trigger the profiled path")
	}
	if _, ok := stripExplainAnalyze("SELECT 1 FROM T"); ok {
		t.Fatal("plain query misdetected")
	}
}
