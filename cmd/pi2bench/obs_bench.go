package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/obs"
	"pi2/internal/sqlparser"
)

// servingInstruments is the exact per-request metric set the serving
// middleware records on the hot path: one in-flight gauge and one latency
// histogram (the request counter is derived from the histogram's count at
// scrape time, so it costs nothing per request). The overhead contract
// (-overhead-check, CI) is about this recording cost — tracing spans live
// only on the HTTP path where a request's own work amortizes them.
type servingInstruments struct {
	inFlight *obs.Gauge
	lat      *obs.Histogram
}

func newServingInstruments() *servingInstruments {
	m := obs.NewRegistry()
	return &servingInstruments{
		inFlight: m.Gauge("bench_in_flight", "bench"),
		lat:      m.Histogram("bench_request_seconds", "bench", nil, "path", "/interact"),
	}
}

// interact runs one session interaction wrapped in the middleware's metric
// writes, inlined exactly as the middleware performs them (no per-op
// closure — the handler chain is built once, not per request).
func (si *servingInstruments) interact(es *exploreServing, sess *iface.Session, i int) error {
	t0 := obs.NowMono()
	si.inFlight.Inc()
	err := es.interact(sess, i)
	si.inFlight.Dec()
	si.lat.ObserveDuration(obs.NowMono() - t0)
	return err
}

// obsBenches measures the observability overhead variants for the
// trajectory report: the cached session interaction with serving metrics
// recorded per op, and the engine hash join executed under per-operator
// profiling. Compare against SessionInteraction/cached and EngineJoin/hash.
func obsBenches(es *exploreServing) ([]BenchResult, error) {
	sess, err := iface.NewSession(es.ifc, es.ctx, es.db)
	if err != nil {
		return nil, err
	}
	for i := 0; i < es.queries; i++ {
		if err := es.interact(sess, i); err != nil {
			return nil, err
		}
	}
	si := newServingInstruments()
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := si.interact(es, sess, i); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("pi2bench: instrumented session bench: %w", benchErr)
	}
	out := []BenchResult{{
		Name: "SessionInteraction/cached-metrics", Iterations: r.N, NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}}

	db := newEngineBenchDB()
	ast, err := sqlparser.Parse(`SELECT f.v, d.label FROM fact AS f, dim AS d WHERE f.k = d.k AND f.v > 25`)
	if err != nil {
		return nil, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := engine.Prepare(db, ast)
			if err == nil {
				_, _, err = plan.ExecProfiled()
			}
			if err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return nil, fmt.Errorf("pi2bench: profiled join bench: %w", benchErr)
	}
	out = append(out, BenchResult{
		Name: "EngineJoin/hash-profiled", Iterations: r.N, NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	})
	return out, nil
}

// runOverheadCheck is the CI guard: it measures the cached session
// interaction with metrics recording off and on and errors when the
// instrumented path exceeds maxRatio times the disabled path.
//
// The op's absolute timing is bimodal on shared CI hardware (frequency and
// cache modes swing it by more than the overhead being measured), so the
// two variants must be compared under the same conditions: each round
// alternates small batches of disabled and instrumented ops so both sample
// the same machine state, yielding one paired ratio per round, and the
// median ratio across rounds discards the rounds a scheduler hiccup still
// skews.
func runOverheadCheck(maxRatio float64) error {
	es, err := newExploreServing()
	if err != nil {
		return err
	}
	sess, err := iface.NewSession(es.ifc, es.ctx, es.db)
	if err != nil {
		return err
	}
	for i := 0; i < es.queries; i++ {
		if err := es.interact(sess, i); err != nil {
			return err
		}
	}
	si := newServingInstruments()

	const rounds, batches, batch = 9, 12, 125
	runBatch := func(instrumented bool) (time.Duration, error) {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			var err error
			if instrumented {
				err = si.interact(es, sess, i)
			} else {
				err = es.interact(sess, i)
			}
			if err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	measureRound := func() (off, on time.Duration, err error) {
		for b := 0; b < batches; b++ {
			// Alternate which variant runs first so neither systematically
			// inherits the other's cache state.
			var d0, d1 time.Duration
			first := b%2 == 1
			if d0, err = runBatch(first); err != nil {
				return
			}
			if d1, err = runBatch(!first); err != nil {
				return
			}
			if first {
				on, off = on+d0, off+d1
			} else {
				off, on = off+d0, on+d1
			}
		}
		return
	}

	type round struct {
		off, on time.Duration
		ratio   float64
	}
	// One pass: paired rounds spaced ~100ms apart (the machine's fast/slow
	// modes persist for seconds, so back-to-back rounds would all sample
	// the same mode), summarized by the median ratio.
	measurePass := func() (round, error) {
		if _, _, err := measureRound(); err != nil { // warm-up
			return round{}, err
		}
		rs := make([]round, rounds)
		for r := range rs {
			if r > 0 {
				time.Sleep(100 * time.Millisecond)
			}
			off, on, err := measureRound()
			if err != nil {
				return round{}, err
			}
			rs[r] = round{off: off, on: on, ratio: float64(on) / float64(off)}
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].ratio < rs[j].ratio })
		return rs[len(rs)/2], nil
	}

	// The overhead is a fixed property of the code; run-to-run noise only
	// obscures it. A pass whose median lands in budget is evidence enough,
	// so the gate takes up to three passes before declaring a regression.
	const attempts = 3
	perOp := func(d time.Duration) time.Duration { return d / (batches * batch) }
	best := math.Inf(1)
	for a := 1; a <= attempts; a++ {
		med, err := measurePass()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "overhead-check: disabled %v/op, metrics %v/op, ratio %.4f (max %.2f, median of %d paired rounds, pass %d/%d)\n",
			perOp(med.off), perOp(med.on), med.ratio, maxRatio, rounds, a, attempts)
		if med.ratio <= maxRatio {
			return nil
		}
		best = math.Min(best, med.ratio)
	}
	return fmt.Errorf("pi2bench: metrics overhead %.2f%% exceeds %.2f%% budget in %d passes",
		(best-1)*100, (maxRatio-1)*100, attempts)
}
