// Command pi2bench regenerates the paper's evaluation figures and tables.
//
// Usage:
//
//	pi2bench -fig latency      # per-log generation times (headline numbers)
//	pi2bench -fig 14           # interaction-taxonomy coverage (Figure 14)
//	pi2bench -fig 15           # case studies (Figure 15)
//	pi2bench -fig 16 [-full]   # runtime-quality trade-off sweep (Figure 16)
//	pi2bench -fig 17           # parameter sensitivity (Figure 17)
//	pi2bench -fig scale        # scalability in #queries (§7.3)
//	pi2bench -fig 18           # non-optimal interface quality (appendix)
//	pi2bench -fig t1 / t2      # visualization / widget catalogs (Tables 1, 2)
//	pi2bench -fig ablations    # design-choice ablations
//	pi2bench -fig all          # everything except the full sweep
//
// Performance trajectory (machine-readable, see BENCH_*.json in the repo
// root):
//
//	pi2bench -json BENCH_PR3.json                       # run + write report
//	pi2bench -json - -baseline BENCH_PR3.json           # compare to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"pi2/internal/experiment"
	"pi2/internal/vis"
	"pi2/internal/widget"
	"pi2/internal/workload"
)

func main() {
	fig := flag.String("fig", "latency", "figure/table to regenerate")
	full := flag.Bool("full", false, "use the paper's full sweep resolution (slow)")
	jsonPath := flag.String("json", "", "run the generation + serving benches and write a JSON report to this path ('-' for stdout)")
	baseline := flag.String("baseline", "", "previous JSON report to embed as the baseline (use with -json)")
	overheadCheck := flag.Bool("overhead-check", false, "measure serving-metrics overhead (instrumented vs disabled) and fail if it exceeds -overhead-max")
	overheadMax := flag.Float64("overhead-max", 1.05, "maximum allowed instrumented/disabled ratio for -overhead-check")
	flag.Parse()

	if *overheadCheck {
		if err := runOverheadCheck(*overheadMax); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSON(*jsonPath, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	e := experiment.NewEnv()
	w := os.Stdout

	run := func(name string) {
		switch name {
		case "latency":
			fmt.Fprintln(w, "== end-to-end generation latency (paper: 2–19 s, median 6 s) ==")
			experiment.Latency(w, e)
		case "14", "14a", "14b", "14c", "14d":
			fmt.Fprintln(w, "== Figure 14: Yi et al. taxonomy coverage ==")
			experiment.Taxonomy(w, e)
		case "15", "15a", "15b", "15c":
			fmt.Fprintln(w, "== Figure 15: case studies ==")
			experiment.CaseStudies(w, e)
		case "16":
			fmt.Fprintln(w, "== Figure 16: runtime-quality trade-off ==")
			logs := []workload.Log{workload.Explore(), workload.Filter(), workload.Covid()}
			experiment.Figure16(w, e, logs, *full)
		case "17":
			fmt.Fprintln(w, "== Figure 17: parameter sensitivity ==")
			experiment.Figure17(w, e)
		case "scale":
			fmt.Fprintln(w, "== Scalability: duplicated Filter log (paper: linear to 900 queries) ==")
			factors := []int{1, 2, 4, 10, 25, 50, 100}
			if !*full {
				factors = []int{1, 2, 4, 10, 25}
			}
			experiment.Scalability(w, e, factors)
		case "18":
			fmt.Fprintln(w, "== Figures 18/19: quality of non-optimal interfaces ==")
			experiment.QualitySpread(w, e, workload.Filter())
		case "t1":
			fmt.Fprintln(w, "== Table 1: visualization schemas, FDs, interactions ==")
			printTable1(w)
		case "t2":
			fmt.Fprintln(w, "== Table 2: widget schemas and constraints ==")
			printTable2(w)
		case "ablations":
			fmt.Fprintln(w, "== Ablations (Filter) ==")
			experiment.Ablations(w, e, workload.Filter())
		default:
			fmt.Fprintf(os.Stderr, "pi2bench: unknown figure %q\n", name)
			os.Exit(1)
		}
	}

	if *fig == "all" {
		for _, name := range []string{"latency", "14", "15", "16", "17", "scale", "18", "t1", "t2", "ablations"} {
			run(name)
			fmt.Fprintln(w)
		}
		return
	}
	run(*fig)
}

func printTable1(w *os.File) {
	for _, s := range vis.Catalog() {
		fmt.Fprintf(w, "%-6s", s.Type)
		if s.AnySchema {
			fmt.Fprintf(w, " any schema")
		} else {
			fmt.Fprintf(w, " <")
			for i, v := range s.Vars {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				t := ""
				if v.Quant {
					t = "Q"
				}
				if v.Cat {
					if t != "" {
						t += "|"
					}
					t += "C"
				}
				if v.Optional {
					t += "?"
				}
				fmt.Fprintf(w, "%s:%s", v.Name, t)
			}
			fmt.Fprint(w, ">")
		}
		for _, fd := range s.FDs {
			fmt.Fprintf(w, "  FD %v→%s", fd.Determinants, fd.Dependent)
		}
		var kinds []string
		for _, i := range vis.InteractionsFor(s.Type) {
			kinds = append(kinds, string(i.Kind))
		}
		fmt.Fprintf(w, "  interactions: %v\n", kinds)
	}
}

func printTable2(w *os.File) {
	for _, k := range widget.Kinds() {
		a0, a1, a2 := widget.CostCoeffs(k)
		fmt.Fprintf(w, "%-12s %-18s %-8s Cm=%g+%g·d+%g·d²\n",
			k, widget.SchemaPattern(k), widget.Constraint(k), a0, a1, a2)
	}
}
