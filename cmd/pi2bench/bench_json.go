package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

// BenchResult is one benchmark measurement in the machine-readable report.
type BenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	Cost         float64 `json:"cost,omitempty"`
	Interactions int     `json:"interactions,omitempty"`
	HitRate      float64 `json:"hit_rate,omitempty"`
}

// BenchReport is the BENCH_*.json schema: the current measurements plus an
// optional baseline (a previous report, or hand-recorded pre-change
// numbers) so a single file shows the before/after trajectory.
type BenchReport struct {
	Schema   string        `json:"schema"`
	Go       string        `json:"go"`
	CPU      int           `json:"cpus"`
	Note     string        `json:"note,omitempty"`
	Benches  []BenchResult `json:"benches"`
	Baseline *BenchReport  `json:"baseline,omitempty"`
}

// runJSON regenerates the performance-trajectory report: the generation
// benches per workload (shared caches on and off) and the serving-path
// session-interaction benches, written as JSON to path.
func runJSON(path, baselinePath string) error {
	report := &BenchReport{
		Schema: "pi2-bench/v1",
		Go:     runtime.Version(),
		CPU:    runtime.NumCPU(),
	}
	if baselinePath != "" {
		base := &BenchReport{}
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("pi2bench: read baseline: %w", err)
		}
		if err := json.Unmarshal(raw, base); err != nil {
			return fmt.Errorf("pi2bench: parse baseline: %w", err)
		}
		base.Baseline = nil // keep exactly one level of history per report
		report.Baseline = base
	}

	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	for _, wl := range []workload.Log{workload.Explore(), workload.Covid(), workload.SDSS()} {
		for _, shared := range []bool{true, false} {
			variant := "shared"
			if !shared {
				variant = "private"
			}
			var cost float64
			var ints int
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Search.SharedCaches = shared
				for i := 0; i < b.N; i++ {
					res, err := core.Generate(wl.Queries, db, cat, cfg)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					cost = res.Interface.Cost
					ints = res.Interface.InteractionCount()
				}
			})
			if benchErr != nil {
				return fmt.Errorf("pi2bench: Generate/%s: %w", wl.Name, benchErr)
			}
			report.Benches = append(report.Benches, BenchResult{
				Name:       "Generate/" + wl.Name + "/" + variant,
				Iterations: r.N, NsPerOp: r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
				Cost: cost, Interactions: ints,
			})
		}
	}

	serving, err := servingBenches()
	if err != nil {
		return err
	}
	report.Benches = append(report.Benches, serving...)

	// Observability overhead variants: instrumented counterparts of
	// SessionInteraction/cached and EngineJoin/hash. Measured here, right
	// after the disabled serving benches, so the cached vs cached-metrics
	// comparison is taken under the same machine conditions — the machine's
	// fast/slow modes drift on a scale of minutes, more than the overhead
	// being reported.
	es, err := newExploreServing()
	if err != nil {
		return err
	}
	obsB, err := obsBenches(es)
	if err != nil {
		return err
	}
	report.Benches = append(report.Benches, obsB...)

	multi, err := multiSessionBenches()
	if err != nil {
		return err
	}
	report.Benches = append(report.Benches, multi...)

	engineB, err := engineBenches()
	if err != nil {
		return err
	}
	report.Benches = append(report.Benches, engineB...)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// engineBenches measures the engine's relational operator pipeline on
// synthetic join / group / top-K micro-workloads, each against its
// unoptimized (filtered cross product + full sort) baseline where the
// pipeline changes the algorithm. Mirrors the BenchmarkEngine* benches in
// internal/engine so the trajectory report captures the same numbers.
func engineBenches() ([]BenchResult, error) {
	db := newEngineBenchDB()

	type prepFunc = func(*engine.DB, *dt.Node) (*engine.Plan, error)
	cases := []struct {
		name string
		sql  string
		prep prepFunc
	}{
		{"EngineJoin/hash", `SELECT f.v, d.label FROM fact AS f, dim AS d WHERE f.k = d.k AND f.v > 25`, engine.Prepare},
		{"EngineJoin/crossproduct", `SELECT f.v, d.label FROM fact AS f, dim AS d WHERE f.k = d.k AND f.v > 25`, engine.PrepareUnoptimized},
		// The residual d.label <> 'd0' unmatches every fact with k = 0, so
		// the outer pass emits NULL-padded rows, not just hash hits.
		{"EngineJoin/leftouter", `SELECT f.v, d.label FROM fact AS f LEFT JOIN dim AS d ON f.k = d.k AND d.label <> 'd0' WHERE f.v > 25`, engine.Prepare},
		{"EngineJoin/leftouter-nestedloop", `SELECT f.v, d.label FROM fact AS f LEFT JOIN dim AS d ON f.k = d.k AND d.label <> 'd0' WHERE f.v > 25`, engine.PrepareUnoptimized},
		// PR 9 split: the flat pre-PR9 "EngineGroupBy" number corresponds to
		// the "row" case (the full row pipeline, vectorization disabled);
		// "vectorized" is what Prepare now picks for this query. The
		// high-cardinality run groups on the ~uniform float column, so nearly
		// every row opens a group and per-group overheads dominate.
		{"EngineGroupBy/vectorized", `SELECT grp, count(*), sum(v), avg(v) FROM fact GROUP BY grp`, engine.Prepare},
		{"EngineGroupBy/row", `SELECT grp, count(*), sum(v), avg(v) FROM fact GROUP BY grp`, engine.PrepareNoVec},
		{"EngineGroupBy/high-cardinality-group", `SELECT v, count(*), sum(k) FROM fact GROUP BY v`, engine.Prepare},
		{"EngineTopK/heap", `SELECT k, v FROM fact WHERE v > 10 ORDER BY v DESC LIMIT 10`, engine.Prepare},
		{"EngineTopK/fullsort", `SELECT k, v FROM fact WHERE v > 10 ORDER BY v DESC LIMIT 10`, engine.PrepareUnoptimized},
		{"EngineDistinct", `SELECT DISTINCT grp FROM fact`, engine.Prepare},
	}
	// Access paths (PR 8): the same point predicate as a sweep and as a
	// hash-index lookup, a sorted-index range scan, and the reversed hash
	// join whose build side is picked by estimated cardinality. These run
	// against their own 20k-row DB, built only after the carried cases
	// above have been measured — keeping it live earlier would inflate
	// their GC mark time and skew the cross-PR trajectory. The vectorized
	// filter (PR 9) is the low-selectivity sweep the cost model keeps off
	// the indexes, which the columnar path runs as a batched filter.
	scanCases := []struct {
		name string
		sql  string
		prep prepFunc
	}{
		{"EngineScan/full", `SELECT v FROM scan WHERE k = 7`, engine.PrepareUnoptimized},
		{"EngineScan/index-point", `SELECT v FROM scan WHERE k = 7`, engine.Prepare},
		{"EngineScan/index-range", `SELECT v FROM scan WHERE k BETWEEN 7 AND 9`, engine.Prepare},
		{"EngineScan/vectorized-filter", `SELECT v FROM scan WHERE v > 25`, engine.Prepare},
		{"EngineJoin/build-side", `SELECT t.lbl, s.v FROM tiny AS t, scan AS s WHERE t.k = s.k AND s.v > 25`, engine.Prepare},
	}
	var out []BenchResult
	run := func(db *engine.DB, name, sql string, prep prepFunc) error {
		ast, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("pi2bench: %s: %w", name, err)
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Re-prepare per iteration: the per-plan scan/build caches
				// would otherwise amortize the measured work away.
				plan, err := prep(db, ast)
				if err == nil {
					_, err = plan.Exec()
				}
				if err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return fmt.Errorf("pi2bench: %s: %w", name, benchErr)
		}
		out = append(out, BenchResult{
			Name: name, Iterations: res.N, NsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
		})
		return nil
	}
	for _, c := range cases {
		if err := run(db, c.name, c.sql, c.prep); err != nil {
			return nil, err
		}
	}
	scanDB := newScanBenchDB()
	for _, c := range scanCases {
		if err := run(scanDB, c.name, c.sql, c.prep); err != nil {
			return nil, err
		}
	}
	// EngineAppend (PR 10): one op is a 16-row batch append — copy-on-write
	// snapshot publish, per-table generation bump, changelog entry — plus the
	// steady-state changelog trim a long-lived writer performs. The DB is
	// rebuilt off the clock every 512 batches so the appended table stays
	// bounded and the measurement does not drift with b.N.
	{
		const batch = 16
		rows := make([][]engine.Value, batch)
		for i := range rows {
			rows[i] = []engine.Value{
				engine.NumVal(float64(i % 200)),
				engine.NumVal(float64(i)),
				engine.NumVal(float64(i % 50)),
			}
		}
		adb := newEngineBenchDB()
		var benchErr error
		ops := 0
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ops++; ops%512 == 0 {
					b.StopTimer()
					adb = newEngineBenchDB()
					b.StartTimer()
				}
				if err := adb.Append("fact", rows); err != nil {
					benchErr = err
					b.FailNow()
				}
				adb.TrimChangelog(adb.Generation())
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("pi2bench: EngineAppend: %w", benchErr)
		}
		out = append(out, BenchResult{
			Name: "EngineAppend", Iterations: res.N, NsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

// newEngineBenchDB builds the synthetic dim/fact star schema the engine
// micro-benches (and the observability overhead benches) run against.
func newEngineBenchDB() *engine.DB {
	r := rand.New(rand.NewSource(42))
	db := engine.NewDB("2020-12-31")
	const dims, facts, groups = 200, 2000, 50
	dim := &engine.Table{Name: "dim", Cols: []string{"k", "label"}, Types: []engine.ColType{engine.TNum, engine.TStr}}
	for i := 0; i < dims; i++ {
		dim.Rows = append(dim.Rows, []engine.Value{engine.NumVal(float64(i)), engine.StrVal(fmt.Sprintf("d%d", i))})
	}
	fact := &engine.Table{Name: "fact", Cols: []string{"k", "v", "grp"}, Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum}}
	for i := 0; i < facts; i++ {
		fact.Rows = append(fact.Rows, []engine.Value{
			engine.NumVal(float64(r.Intn(dims))),
			engine.NumVal(r.Float64() * 100),
			engine.NumVal(float64(r.Intn(groups))),
		})
	}
	db.Add(dim)
	db.Add(fact)
	return db
}

// newScanBenchDB builds the access-path fixture: `scan` is large enough
// (20k rows, k cycling 0..199) for the cost model to prefer indexes;
// `tiny` drives the build-side reversal bench. Mirrors benchScanDB in
// internal/engine. Kept separate from newEngineBenchDB so its ~3 MB of
// live rows do not sit on the heap while the carried benches run.
func newScanBenchDB() *engine.DB {
	r := rand.New(rand.NewSource(7))
	db := engine.NewDB("2020-12-31")
	const scanRows, scanKeys = 20000, 200
	scan := &engine.Table{Name: "scan", Cols: []string{"k", "v"}, Types: []engine.ColType{engine.TNum, engine.TNum}}
	for i := 0; i < scanRows; i++ {
		scan.Rows = append(scan.Rows, []engine.Value{
			engine.NumVal(float64(i % scanKeys)),
			engine.NumVal(r.Float64() * 100),
		})
	}
	db.Add(scan)
	db.Add(&engine.Table{
		Name: "tiny", Cols: []string{"k", "lbl"}, Types: []engine.ColType{engine.TNum, engine.TStr},
		Rows: [][]engine.Value{
			{engine.NumVal(3), engine.StrVal("three")},
			{engine.NumVal(7), engine.StrVal("seven")},
		},
	})
	return db
}

// exploreServing is the shared fixture of the serving benches: the
// generated Explore interface plus an interact closure that applies one pan
// event and re-executes the bound queries.
type exploreServing struct {
	ifc      *iface.Interface
	ctx      *transform.Context
	db       *engine.DB
	queries  int // len of the Explore log, for warm-up loop bounds
	interact func(*iface.Session, int) error
}

func newExploreServing() (*exploreServing, error) {
	wl := workload.Explore()
	edb := dataset.NewDB()
	ecat := catalog.Build(edb, dataset.Keys())
	res, err := core.Generate(wl.Queries, edb, ecat, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if len(res.Interface.VisInts) == 0 {
		return nil, fmt.Errorf("pi2bench: Explore interface has no visualization interactions")
	}
	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		return nil, err
	}
	vi := res.Interface.VisInts[0]
	srcElem := res.Interface.Vis[vi.SourceVis].ElemID
	kind := string(vi.Kind)
	viewports := [][]string{
		{"50", "60", "27", "38"},
		{"60", "90", "16", "30"},
	}
	return &exploreServing{
		ifc:     res.Interface,
		ctx:     &transform.Context{Queries: asts, Cat: ecat},
		db:      edb,
		queries: len(wl.Queries),
		interact: func(sess *iface.Session, i int) error {
			if err := sess.Brush(srcElem, kind, viewports[i%2]...); err != nil {
				return err
			}
			_, err := sess.Results()
			return err
		},
	}, nil
}

// servingBenches measures the serving hot path exactly like the
// BenchmarkSessionInteraction bench: one pan event plus re-execution of the
// bound queries, cold (caches dropped per op) and cached.
func servingBenches() ([]BenchResult, error) {
	es, err := newExploreServing()
	if err != nil {
		return nil, err
	}
	interact := es.interact

	var out []BenchResult
	var benchErr error
	for _, cached := range []bool{false, true} {
		sess, err := iface.NewSession(es.ifc, es.ctx, es.db)
		if err != nil {
			return nil, err
		}
		if cached {
			for i := 0; i < es.queries; i++ {
				if err := interact(sess, i); err != nil {
					return nil, err
				}
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !cached {
					sess.ResetCache()
				}
				if err := interact(sess, i); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("pi2bench: session bench: %w", benchErr)
		}
		name := "SessionInteraction/cold"
		br := BenchResult{
			Iterations: r.N, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
		if cached {
			name = "SessionInteraction/cached"
			st := sess.Stats()
			if st.ResultHits+st.ResultMisses > 0 {
				br.HitRate = float64(st.ResultHits) / float64(st.ResultHits+st.ResultMisses)
			}
		}
		br.Name = name
		out = append(out, br)
	}
	return out, nil
}

// multiSessionBenches measures the multi-tenant serving path: one op is K
// concurrent users each acquiring their own session from a fresh registry
// and running one pan interaction. "cold" sessions carry private plan
// caches, so all K compile everything themselves; "warm-shared" sessions
// share one pre-warmed PlanCache, so compilation is amortized to zero and
// only execution remains — the cross-session payoff the registry's shared
// cache exists for.
func multiSessionBenches() ([]BenchResult, error) {
	es, err := newExploreServing()
	if err != nil {
		return nil, err
	}
	const sessions = 8
	var out []BenchResult
	for _, shared := range []bool{false, true} {
		name := "ServeMultiSession/cold"
		var pc *iface.PlanCache
		if shared {
			name = "ServeMultiSession/warm-shared"
			pc = iface.NewPlanCache()
			warm, err := iface.NewSessionWithPlans(es.ifc, es.ctx, es.db, pc)
			if err != nil {
				return nil, err
			}
			for i := 0; i < sessions; i++ {
				if err := es.interact(warm, i); err != nil {
					return nil, err
				}
			}
		}
		var benchErr error
		var last iface.RegistryStats
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				// Session construction (binding derivation) is identical in
				// both variants; keep it off the clock so the measurement
				// isolates what the variants actually contrast — per-user
				// compilation vs shared-plan reuse on the first interaction.
				b.StopTimer()
				reg := iface.NewRegistry(func() (*iface.Session, error) {
					return iface.NewSessionWithPlans(es.ifc, es.ctx, es.db, pc)
				}, iface.RegistryOptions{MaxSessions: sessions, Plans: pc})
				users := make([]*iface.Session, sessions)
				for k := range users {
					sess, err := reg.Acquire(fmt.Sprintf("user-%d", k))
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					users[k] = sess
				}
				b.StartTimer()
				errs := make(chan error, sessions)
				var wg sync.WaitGroup
				for k, sess := range users {
					wg.Add(1)
					go func(k int, sess *iface.Session) {
						defer wg.Done()
						if err := es.interact(sess, k); err != nil {
							errs <- err
						}
					}(k, sess)
				}
				wg.Wait()
				select {
				case benchErr = <-errs:
					b.FailNow()
				default:
				}
				last = reg.Stats()
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("pi2bench: %s: %w", name, benchErr)
		}
		br := BenchResult{
			Name: name, Iterations: r.N, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
		if tot := last.Cache.PlanHits + last.Cache.PlanMisses; tot > 0 {
			br.HitRate = float64(last.Cache.PlanHits) / float64(tot)
		}
		out = append(out, br)
	}
	live, err := liveAppendBench(sessions)
	if err != nil {
		return nil, err
	}
	return append(out, live), nil
}

// liveAppendBench is the PR 10 serving bench: the same K concurrent users
// pan against a warm shared plan cache while a writer streams batch appends
// into Cars — the table every Explore query reads — so each op pays the
// full invalidation round trip: per-table generation bump, stale plan
// recompile, result recompute. All-NULL rows match no predicate, so result
// contents stay fixed while the cache machinery churns. Built on its own
// fixture because appends mutate the DB; periodically the mutated table is
// swapped back to pristine off the clock so growth cannot skew later ops.
func liveAppendBench(sessions int) (BenchResult, error) {
	es, err := newExploreServing()
	if err != nil {
		return BenchResult{}, err
	}
	pc := iface.NewPlanCache()
	warm, err := iface.NewSessionWithPlans(es.ifc, es.ctx, es.db, pc)
	if err != nil {
		return BenchResult{}, err
	}
	for i := 0; i < sessions; i++ {
		if err := es.interact(warm, i); err != nil {
			return BenchResult{}, err
		}
	}
	cars, ok := es.db.Table("Cars")
	if !ok {
		return BenchResult{}, fmt.Errorf("pi2bench: live-append: Explore DB has no Cars table")
	}
	nullRow := make([]engine.Value, len(cars.Cols))
	for i := range nullRow {
		nullRow[i] = engine.NullVal()
	}
	const batchesPerOp = 4
	batch := [][]engine.Value{nullRow}
	var benchErr error
	ops := 0
	r := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if ops++; ops%256 == 0 {
				b.StopTimer()
				fresh := dataset.NewDB()
				pristine, _ := fresh.Table("Cars")
				es.db.Add(pristine)
				es.db.TrimChangelog(es.db.Generation())
				b.StartTimer()
			}
			b.StopTimer()
			reg := iface.NewRegistry(func() (*iface.Session, error) {
				return iface.NewSessionWithPlans(es.ifc, es.ctx, es.db, pc)
			}, iface.RegistryOptions{MaxSessions: sessions, Plans: pc})
			users := make([]*iface.Session, sessions)
			for k := range users {
				sess, err := reg.Acquire(fmt.Sprintf("user-%d", k))
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				users[k] = sess
			}
			b.StartTimer()
			errs := make(chan error, sessions+1)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < batchesPerOp; j++ {
					if err := es.db.Append("Cars", batch); err != nil {
						errs <- err
						return
					}
				}
			}()
			for k, sess := range users {
				wg.Add(1)
				go func(k int, sess *iface.Session) {
					defer wg.Done()
					// A reader that loses every bounded retry against the
					// writer reports ErrStalePlan; that is the documented
					// contract (the HTTP layer maps it to 409), not a bench
					// failure.
					if err := es.interact(sess, k); err != nil && !errors.Is(err, engine.ErrStalePlan) {
						errs <- err
					}
				}(k, sess)
			}
			wg.Wait()
			select {
			case benchErr = <-errs:
				b.FailNow()
			default:
			}
		}
	})
	if benchErr != nil {
		return BenchResult{}, fmt.Errorf("pi2bench: ServeMultiSession/live-append: %w", benchErr)
	}
	return BenchResult{
		Name: "ServeMultiSession/live-append", Iterations: r.N, NsPerOp: r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
	}, nil
}
