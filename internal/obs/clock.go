package obs

import "time"

// monoEpoch anchors NowMono. Any fixed instant works; the returned values
// are only ever subtracted from each other.
var monoEpoch = time.Now()

// NowMono returns a monotonic timestamp as the duration since an arbitrary
// process-local epoch. Subtracting two readings yields an elapsed duration.
//
// It exists because the serving middleware times every request and
// time.Now reads both the wall and the monotonic clock; time.Since on a
// monotonic anchor reads only the latter, roughly halving the clock cost
// per timing pair — the dominant term in the metrics overhead budget.
func NowMono() time.Duration { return time.Since(monoEpoch) }
