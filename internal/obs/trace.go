package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a request-scoped collection of span timings and aggregate
// timers. One Trace is created per HTTP request (or per generation run)
// and propagated via context; every method is nil-safe, so code paths
// thread a possibly-nil *Trace and pay one branch when tracing is off.
type Trace struct {
	ID    string
	start time.Time

	mu     sync.Mutex
	spans  []SpanRecord
	timers map[string]TimerStat
}

// SpanRecord is one completed span: a named interval relative to the
// trace start.
type SpanRecord struct {
	Name  string
	Start time.Duration // offset from trace start
	Dur   time.Duration
}

// TimerStat aggregates many short intervals under one name — used for
// phases that run thousands of times concurrently (MCTS rollouts, safety
// checks) where individual spans would swamp the trace.
type TimerStat struct {
	Count int
	Total time.Duration
}

var traceSeq atomic.Uint64

// NewTrace starts a trace. An empty id gets a process-unique sequence id.
func NewTrace(id string) *Trace {
	if id == "" {
		id = "t" + strconv.FormatUint(traceSeq.Add(1), 16)
	}
	return &Trace{ID: id, start: time.Now()}
}

var noopEnd = func() {}

// Span starts a named span and returns the function that ends it. On a nil
// trace it returns a shared no-op, so call sites need no branching:
//
//	end := tr.Span("exec")
//	... work ...
//	end()
func (t *Trace) Span(name string) func() {
	if t == nil {
		return noopEnd
	}
	s0 := time.Since(t.start)
	return func() {
		d := time.Since(t.start) - s0
		t.mu.Lock()
		t.spans = append(t.spans, SpanRecord{Name: name, Start: s0, Dur: d})
		t.mu.Unlock()
	}
}

// AddTimer folds one interval into the named aggregate timer. Safe for
// concurrent use; no-op on a nil trace.
func (t *Trace) AddTimer(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.timers == nil {
		t.timers = make(map[string]TimerStat)
	}
	ts := t.timers[name]
	ts.Count++
	ts.Total += d
	t.timers[name] = ts
	t.mu.Unlock()
}

// Spans returns a copy of the completed spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Timers returns a copy of the aggregate timers.
func (t *Trace) Timers() map[string]TimerStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TimerStat, len(t.timers))
	for k, v := range t.timers {
		out[k] = v
	}
	return out
}

// TimerNames returns the timer names sorted, for deterministic rendering.
func (t *Trace) TimerNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.timers))
	for k := range t.timers {
		names = append(names, k)
	}
	t.mu.Unlock()
	sort.Strings(names)
	return names
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

type traceKey struct{}

// WithTrace returns ctx carrying tr. A nil tr returns ctx unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
