// Package obs is the observability layer: a dependency-free metrics
// registry (Prometheus text exposition), request-scoped tracing, and a
// structured slow-query log.
//
// The design contract, relied on across the serving and engine hot paths:
//
//   - The record path (Counter.Inc, Gauge.Add, Histogram.Observe) is
//     lock-free — plain atomics — and allocation-free.
//   - Everything is disabled by default: a nil *Registry returns nil metric
//     handles, and every record method is nil-safe, so uninstrumented code
//     pays exactly one branch per record site. Determinism-sensitive tests
//     never see observability unless they wire it in.
//   - Registration (startup-time, rare) takes a mutex; scraping reads the
//     atomics without stopping writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil Counter records nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil Gauge records nothing.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/size histogram. Buckets are upper
// bounds (Prometheus `le` semantics); observations land in the first bucket
// whose bound is >= the value, or the implicit +Inf bucket. Observe is
// lock-free and allocation-free; a nil Histogram records nothing.
type Histogram struct {
	bounds  []float64 // sorted ascending, fixed at registration
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets is the default latency bucket layout (seconds): the serving
// hot path lives in the 1µs–10ms range, generation in 10ms–10s.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Observe records one observation (in the histogram's unit, seconds for
// latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// series is one label set of a family: exactly one of the handles is set.
type series struct {
	labels string // pre-rendered `key="value",...` (no braces), may be ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64 // scrape-time callback (CounterFunc / GaugeFunc)
}

// family groups all series of one metric name under one HELP/TYPE pair,
// as the exposition format requires.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered metrics and renders them in the Prometheus text
// exposition format. A nil *Registry is the disabled state: constructors
// return nil handles and WritePrometheus writes nothing.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// renderLabels turns alternating key, value pairs into `k1="v1",k2="v2"`.
func renderLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: label pairs must alternate key, value")
	}
	out := ""
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			out += ","
		}
		out += labelPairs[i] + `="` + escapeLabel(labelPairs[i+1]) + `"`
	}
	return out
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// register finds or creates the family and the series for (name, labels).
// Same (name, labels) registered twice returns the existing series, so
// handle acquisition is idempotent. Registering one name under two metric
// types is a programming error and panics.
func (r *Registry) register(name, help, typ, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ}
		r.byName[name] = fam
		r.fams = append(r.fams, fam)
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, fam.typ, typ))
	}
	for _, s := range fam.series {
		if s.labels == labels {
			return s
		}
	}
	s := &series{labels: labels}
	fam.series = append(fam.series, s)
	return s
}

// Counter registers (or finds) a counter. labelPairs alternate key, value.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "counter", renderLabels(labelPairs))
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, "gauge", renderLabels(labelPairs))
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (sorted copies are taken). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	s := r.register(name, help, "histogram", renderLabels(labelPairs))
	if s.h == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — how pre-existing atomic counters (session caches, registry
// eviction counts) unify onto the metrics surface without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	s := r.register(name, help, "counter", renderLabels(labelPairs))
	s.f = fn
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	s := r.register(name, help, "gauge", renderLabels(labelPairs))
	s.f = fn
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Values are read through the same
// atomics the record path writes, so scraping never blocks recording.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b []byte
	for _, fam := range r.fams {
		b = append(b, "# HELP "...)
		b = append(b, fam.name...)
		b = append(b, ' ')
		b = append(b, fam.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, fam.name...)
		b = append(b, ' ')
		b = append(b, fam.typ...)
		b = append(b, '\n')
		for _, s := range fam.series {
			switch {
			case s.f != nil:
				b = appendSample(b, fam.name, "", s.labels, s.f())
			case s.c != nil:
				b = appendSample(b, fam.name, "", s.labels, float64(s.c.Value()))
			case s.g != nil:
				b = appendSample(b, fam.name, "", s.labels, float64(s.g.Value()))
			case s.h != nil:
				b = appendHistogram(b, fam.name, s.labels, s.h)
			}
		}
	}
	w.Write(b)
}

// appendSample renders `name<suffix>{labels} value\n`.
func appendSample(b []byte, name, suffix, labels string, v float64) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

func appendHistogram(b []byte, name, labels string, h *Histogram) []byte {
	bucket := func(le string, cum uint64) {
		b = append(b, name...)
		b = append(b, "_bucket{"...)
		if labels != "" {
			b = append(b, labels...)
			b = append(b, ',')
		}
		b = append(b, `le="`...)
		b = append(b, le...)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		bucket(strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	bucket("+Inf", cum)
	b = appendSample(b, name, "_sum", labels, h.Sum())
	b = appendSample(b, name, "_count", labels, float64(cum))
	return b
}
