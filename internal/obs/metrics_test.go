package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pi2_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("pi2_test_gauge", "test gauge")
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pi2_test_seconds", "test histogram", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0
	h.Observe(0.01)  // le semantics: lands in bucket 0 (0.01 <= 0.01)
	h.Observe(0.05)  // bucket 1
	h.Observe(5)     // +Inf
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 5.065 {
		t.Fatalf("sum = %g, want 5.065", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`pi2_test_seconds_bucket{le="0.01"} 2`,
		`pi2_test_seconds_bucket{le="0.1"} 3`,
		`pi2_test_seconds_bucket{le="1"} 3`,
		`pi2_test_seconds_bucket{le="+Inf"} 4`,
		`pi2_test_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pi2_idem_total", "h", "path", "/")
	b := r.Counter("pi2_idem_total", "h", "path", "/")
	if a != b {
		t.Fatal("same name+labels should return the same handle")
	}
	other := r.Counter("pi2_idem_total", "h", "path", "/sql")
	if a == other {
		t.Fatal("different labels should return a different series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two types should panic")
		}
	}()
	r.Gauge("pi2_idem_total", "h")
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	// All record methods must be safe on nil handles.
	c.Inc()
	c.Add(3)
	g.Inc()
	g.Dec()
	g.Set(7)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.CounterFunc("f_total", "h", func() float64 { return 1 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry must write nothing")
	}
}

// TestDisabledPathAllocs pins the overhead contract: recording through nil
// handles (the disabled state) and through live handles both allocate
// nothing on the record path.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.001)
	}); n != 0 {
		t.Fatalf("disabled record path allocates %v per run, want 0", n)
	}
	r := NewRegistry()
	lc := r.Counter("pi2_alloc_total", "h")
	lg := r.Gauge("pi2_alloc_gauge", "h")
	lh := r.Histogram("pi2_alloc_seconds", "h", nil)
	if n := testing.AllocsPerRun(1000, func() {
		lc.Inc()
		lg.Add(1)
		lh.Observe(0.001)
	}); n != 0 {
		t.Fatalf("enabled record path allocates %v per run, want 0", n)
	}
	tr := (*Trace)(nil)
	if n := testing.AllocsPerRun(1000, func() {
		end := tr.Span("x")
		end()
		tr.AddTimer("y", time.Millisecond)
	}); n != 0 {
		t.Fatalf("nil trace span path allocates %v per run, want 0", n)
	}
}

// TestConcurrentRecord hammers one counter and one histogram from many
// goroutines and checks exact totals; run under -race this also proves the
// record path is data-race free.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pi2_conc_total", "h")
	g := r.Gauge("pi2_conc_gauge", "h")
	h := r.Histogram("pi2_conc_seconds", "h", []float64{0.5})
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 0.25*workers*perWorker; got != want {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("exposition invalid after concurrent writes: %v", err)
	}
}

func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("pi2_requests_total", "requests", "path", "/").Add(7)
	r.Counter("pi2_requests_total", "requests", "path", `/we"ird\`).Inc()
	r.Gauge("pi2_in_flight", "in-flight").Set(2)
	r.Histogram("pi2_latency_seconds", "latency", nil, "path", "/").ObserveDuration(3 * time.Millisecond)
	r.GaugeFunc("pi2_uptime_seconds", "uptime", func() float64 { return 12.5 })
	r.CounterFunc("pi2_cache_hits_total", "hits", func() float64 { return 42 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE pi2_requests_total counter",
		`pi2_requests_total{path="/"} 7`,
		"# TYPE pi2_latency_seconds histogram",
		`pi2_latency_seconds_bucket{path="/",le="+Inf"} 1`,
		"pi2_uptime_seconds 12.5",
		"pi2_cache_hits_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"pi2 bad name 1\n",
		"no_type_line 1\n# TYPE no_type_line counter\n",                                                                 // sample before TYPE
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",                                             // +Inf != count
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", // not cumulative
		"# TYPE c counter\nc -1\n",
		"# TYPE c counter\nc{open=\"x} 1\n",
	}
	for _, body := range bad {
		if err := ValidateExposition(strings.NewReader(body)); err == nil {
			t.Errorf("expected validation error for:\n%s", body)
		}
	}
}
