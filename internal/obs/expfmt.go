package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4): metric-name syntax, one TYPE per
// family declared before its samples, parseable sample values, and — for
// histograms — cumulative non-decreasing buckets with a trailing +Inf
// bucket equal to _count. It exists so tests can assert the /metrics
// surface stays scrapeable without importing a Prometheus client.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	types := map[string]string{} // family name -> type
	helped := map[string]bool{}  // family name -> HELP seen
	type histState struct {
		lastCum   uint64
		lastLe    float64
		haveInf   bool
		infCum    uint64
		count     uint64
		haveCnt   bool
		anySample bool
	}
	hists := map[string]*histState{} // family name + "{labels-sans-le}" -> state
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE line missing type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			} else {
				if helped[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helped[name] = true
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				fam, suffix = base, sfx
				break
			}
		}
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if typ == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram %q sample without _bucket/_sum/_count suffix", lineNo, fam)
			}
			le, rest := splitLe(labels)
			key := fam + "{" + rest + "}"
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				cum := uint64(value)
				var bound float64
				if le == "+Inf" {
					st.haveInf = true
					st.infCum = cum
					bound = math.Inf(1)
				} else {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
				}
				if bound <= st.lastLe {
					return fmt.Errorf("line %d: histogram %s buckets not ascending (le=%q)", lineNo, key, le)
				}
				if cum < st.lastCum {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, key)
				}
				st.lastLe, st.lastCum, st.anySample = bound, cum, true
			case "_count":
				st.count = uint64(value)
				st.haveCnt = true
				st.anySample = true
			case "_sum":
				st.anySample = true
			}
		} else if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %q has negative value", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range hists {
		if !st.anySample {
			continue
		}
		if !st.haveInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", key)
		}
		if !st.haveCnt {
			return fmt.Errorf("histogram %s missing _count", key)
		}
		if st.infCum != st.count {
			return fmt.Errorf("histogram %s +Inf bucket %d != _count %d", key, st.infCum, st.count)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits `name{labels} value` (labels optional). Timestamps
// are not produced by this package and are rejected.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := findLabelsEnd(rest)
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels = rest[1:end]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", "", 0, fmt.Errorf("expected exactly one value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// findLabelsEnd returns the index of the closing brace, honoring quoted,
// escaped label values. rest starts with '{'.
func findLabelsEnd(rest string) int {
	inStr := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '}':
			if !inStr {
				return i
			}
		}
	}
	return -1
}

func validateLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed labels %q", labels)
		}
		key := rest[:eq]
		if !validMetricName(key) || strings.Contains(key, ":") {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", labels)
		}
		rest = rest[i+1:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			if rest == "" {
				return fmt.Errorf("trailing comma in labels %q", labels)
			}
		} else if rest != "" {
			return fmt.Errorf("missing comma between labels in %q", labels)
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitLe extracts the le label from a label string, returning its value
// and the remaining labels (order preserved, separators normalized).
func splitLe(labels string) (le, rest string) {
	parts := splitLabelPairs(labels)
	var kept []string
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	inStr := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case ',':
			if !inStr {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
