package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("")
	if tr.ID == "" {
		t.Fatal("expected generated trace ID")
	}
	end := tr.Span("outer")
	inner := tr.Span("inner")
	time.Sleep(2 * time.Millisecond)
	inner()
	end()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans complete innermost first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Dur <= 0 || spans[1].Dur < spans[0].Dur {
		t.Fatalf("span durations inconsistent: %v, %v", spans[0].Dur, spans[1].Dur)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	end := tr.Span("x")
	end()
	tr.AddTimer("y", time.Second)
	if tr.Spans() != nil || tr.Timers() != nil || tr.TimerNames() != nil {
		t.Fatal("nil trace must report nothing")
	}
	if tr.Elapsed() != 0 {
		t.Fatal("nil trace has no elapsed time")
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTrace("req1")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace must not wrap the context")
	}
}

func TestAddTimerConcurrent(t *testing.T) {
	tr := NewTrace("agg")
	var wg sync.WaitGroup
	const workers = 4
	const per = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.AddTimer("rollout", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ts := tr.Timers()["rollout"]
	if ts.Count != workers*per {
		t.Fatalf("timer count = %d, want %d", ts.Count, workers*per)
	}
	if ts.Total != workers*per*time.Microsecond {
		t.Fatalf("timer total = %v", ts.Total)
	}
	if names := tr.TimerNames(); len(names) != 1 || names[0] != "rollout" {
		t.Fatalf("timer names = %v", names)
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	l.Record("http", "/interact", 5*time.Millisecond, nil) // under threshold
	if buf.Len() != 0 {
		t.Fatal("fast operation must not be logged")
	}
	tr := NewTrace("slow1")
	end := tr.Span("exec")
	end()
	tr.AddTimer("search.rollout", 3*time.Millisecond)
	l.Record("http", "/interact", 25*time.Millisecond, tr)
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("log entry must be newline-terminated")
	}
	var e struct {
		TS     string  `json:"ts"`
		Kind   string  `json:"kind"`
		Detail string  `json:"detail"`
		MS     float64 `json:"ms"`
		Trace  string  `json:"trace"`
		Spans  []struct {
			Name string `json:"name"`
		} `json:"spans"`
		Timers []struct {
			Name  string  `json:"name"`
			Count int     `json:"count"`
			MS    float64 `json:"ms"`
		} `json:"timers"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("slow log line is not valid JSON: %v\n%s", err, line)
	}
	if e.Kind != "http" || e.Detail != "/interact" || e.Trace != "slow1" || e.MS != 25 {
		t.Fatalf("unexpected entry: %+v", e)
	}
	if len(e.Spans) != 1 || e.Spans[0].Name != "exec" {
		t.Fatalf("spans not embedded: %+v", e.Spans)
	}
	if len(e.Timers) != 1 || e.Timers[0].Name != "search.rollout" || e.Timers[0].MS != 3 {
		t.Fatalf("timers not embedded: %+v", e.Timers)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(nil, time.Second) != nil {
		t.Fatal("nil writer must disable the log")
	}
	if NewSlowLog(&bytes.Buffer{}, 0) != nil {
		t.Fatal("zero threshold must disable the log")
	}
	var l *SlowLog
	l.Record("http", "/", time.Hour, nil) // must not panic
	if l.Slow(time.Hour) {
		t.Fatal("nil log is never slow")
	}
	if l.Threshold() != 0 {
		t.Fatal("nil log threshold must be 0")
	}
}
