package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog emits one structured JSON line per operation that exceeds a
// latency threshold. The line carries the trace ID and the trace's span
// breakdown, so a slow interaction can be attributed to a phase (plan
// compile, Exec, render, ...) without re-running it. A nil *SlowLog, or a
// threshold <= 0, disables logging entirely.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
}

// NewSlowLog logs operations slower than threshold to w, one JSON object
// per line. threshold <= 0 returns a disabled (nil) log.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, w: w}
}

// Threshold returns the configured threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Slow reports whether d crosses the threshold.
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

type slowSpan struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
}

type slowTimer struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	MS    float64 `json:"ms"`
}

type slowEntry struct {
	TS     string      `json:"ts"`
	Kind   string      `json:"kind"`
	Detail string      `json:"detail"`
	MS     float64     `json:"ms"`
	Trace  string      `json:"trace,omitempty"`
	Spans  []slowSpan  `json:"spans,omitempty"`
	Timers []slowTimer `json:"timers,omitempty"`
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Record logs the operation if it was slow. kind classifies the operation
// ("http", "sql", ...), detail identifies it (endpoint path, query text).
// tr may be nil; when present its spans and timers are embedded.
func (l *SlowLog) Record(kind, detail string, d time.Duration, tr *Trace) {
	if !l.Slow(d) {
		return
	}
	e := slowEntry{
		TS:     time.Now().UTC().Format(time.RFC3339Nano),
		Kind:   kind,
		Detail: detail,
		MS:     ms(d),
	}
	if tr != nil {
		e.Trace = tr.ID
		for _, sp := range tr.Spans() {
			e.Spans = append(e.Spans, slowSpan{Name: sp.Name, StartMS: ms(sp.Start), MS: ms(sp.Dur)})
		}
		timers := tr.Timers()
		for _, name := range tr.TimerNames() {
			ts := timers[name]
			e.Timers = append(e.Timers, slowTimer{Name: name, Count: ts.Count, MS: ms(ts.Total)})
		}
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
