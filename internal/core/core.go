// Package core wires the PI2 pipeline end to end (paper Figure 6): parse
// the query sequence into Difftrees, search Difftree structures with MCTS,
// run the full interface-mapping search on the best state, and return the
// generated interface.
package core

import (
	"context"
	"fmt"
	"time"

	"pi2/internal/catalog"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/mapping"
	"pi2/internal/obs"
	"pi2/internal/search"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

// Config bundles search and mapping parameters.
type Config struct {
	Search  search.Params
	Mapping mapping.Options
}

// DefaultConfig mirrors the paper's defaults (es=30, p=3, s=10, K=5, k=10).
func DefaultConfig() Config {
	return Config{Search: search.DefaultParams(), Mapping: mapping.DefaultOptions()}
}

// Result is the outcome of a generation run, with the timing breakdown the
// paper reports (MCTS search time vs. final mapping time).
type Result struct {
	Interface  *iface.Interface
	State      *transform.State
	Queries    []string
	SearchTime time.Duration
	MapTime    time.Duration
	Iterations int
	BestReward float64
}

// Generate runs PI2 on a SQL query log against the given database.
func Generate(sqls []string, db *engine.DB, cat *catalog.Catalog, cfg Config) (*Result, error) {
	return GenerateCtx(context.Background(), sqls, db, cat, cfg)
}

// GenerateCtx is Generate with request-scoped observability: when goctx
// carries an obs.Trace (obs.WithTrace), the run records "gen.parse",
// "gen.search" and "gen.map" phase spans plus the aggregate timers the
// lower layers feed ("search.rollout", "search.reward", "map.search",
// "map.layout", "safety.exec"). The trace is observational only — it never
// touches an RNG or a decision — so a traced run produces an interface
// byte-identical to an untraced run with the same seed (pinned by
// TestGenerateTraceByteIdentical).
func GenerateCtx(goctx context.Context, sqls []string, db *engine.DB, cat *catalog.Catalog, cfg Config) (*Result, error) {
	if len(sqls) == 0 {
		return nil, fmt.Errorf("core: empty query log")
	}
	tr := obs.FromContext(goctx)
	var end func()
	if tr != nil {
		cfg.Search.Trace = tr
		cfg.Search.MapOpts.Trace = tr
		cfg.Mapping.Trace = tr
		end = tr.Span("gen.parse")
	}
	queries, err := sqlparser.ParseAll(sqls)
	if end != nil {
		end()
	}
	if err != nil {
		return nil, err
	}
	ctx := &transform.Context{Queries: queries, Cat: cat}

	// One safety-check execution cache spans the whole run: the MCTS workers
	// share it (the DB is read-only during generation) and the final mapping
	// search reuses every result the search already computed.
	if cfg.Search.MapOpts.CheckSafety && cfg.Search.MapOpts.Exec == nil {
		exec := mapping.NewExecCache(db)
		exec.Trace = tr
		cfg.Search.MapOpts.Exec = exec
		if cfg.Mapping.Exec == nil {
			cfg.Mapping.Exec = exec
		}
	}

	if tr != nil {
		end = tr.Span("gen.search")
	}
	t0 := time.Now()
	sr := search.Run(ctx, db, cfg.Search)
	searchTime := time.Since(t0)
	if end != nil {
		end()
	}

	if tr != nil {
		end = tr.Span("gen.map")
	}
	t1 := time.Now()
	ifc, err := mapping.Best(sr.State, ctx, db, cfg.Mapping)
	if err != nil {
		// the searched state may be unmappable in degenerate configs; fall
		// back to the initial state, which always admits a table mapping.
		fallback := transform.InitState(ctx, cfg.Search.ClusterInit)
		ifc, err = mapping.Best(fallback, ctx, db, cfg.Mapping)
		if err != nil {
			return nil, err
		}
		sr.State = fallback
	}
	mapTime := time.Since(t1)
	if end != nil {
		end()
	}

	return &Result{
		Interface:  ifc,
		State:      sr.State,
		Queries:    sqls,
		SearchTime: searchTime,
		MapTime:    mapTime,
		Iterations: sr.Iterations,
		BestReward: sr.BestReward,
	}, nil
}
