package core

import (
	"context"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/obs"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

// TestGenerateTraceByteIdentical pins the acceptance criterion that
// observability never changes generation: the same seed with and without a
// trace attached must produce byte-identical interfaces.
func TestGenerateTraceByteIdentical(t *testing.T) {
	log := workload.Explore()
	cfg := fastConfig()

	page := func(ctx context.Context) string {
		db := dataset.NewDB()
		cat := catalog.Build(db, dataset.Keys())
		res, err := GenerateCtx(ctx, log.Queries, db, cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		queries, err := sqlparser.ParseAll(log.Queries)
		if err != nil {
			t.Fatal(err)
		}
		tctx := &transform.Context{Queries: queries, Cat: cat}
		sess, err := iface.NewSession(res.Interface, tctx, db)
		if err != nil {
			t.Fatal(err)
		}
		html, err := iface.RenderHTML(sess)
		if err != nil {
			t.Fatal(err)
		}
		return html
	}

	plain := page(context.Background())

	tr := obs.NewTrace("gen-test")
	traced := page(obs.WithTrace(context.Background(), tr))

	if plain != traced {
		t.Fatal("traced generation differs from untraced generation with the same seed")
	}

	// The trace must actually have observed the run.
	spans := map[string]bool{}
	for _, sp := range tr.Spans() {
		spans[sp.Name] = true
	}
	for _, want := range []string{"gen.parse", "gen.search", "gen.map"} {
		if !spans[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
	timers := tr.Timers()
	for _, want := range []string{"search.reward", "map.search", "map.layout"} {
		if timers[want].Count == 0 {
			t.Errorf("trace missing timer %q (have %v)", want, tr.TimerNames())
		}
	}
}
