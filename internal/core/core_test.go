package core

import (
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	"pi2/internal/workload"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Search.MaxIterations = 40
	cfg.Search.EarlyStop = 10
	cfg.Search.Workers = 1
	return cfg
}

func TestGenerateExploreEndToEnd(t *testing.T) {
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	log := workload.Explore()
	res, err := Generate(log.Queries, db, cat, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ifc := res.Interface
	if ifc == nil || len(ifc.Vis) == 0 {
		t.Fatal("no interface generated")
	}
	t.Logf("explore: %s (search %v, map %v, %d iters)", ifc.Summary(), res.SearchTime, res.MapTime, res.Iterations)
	if ifc.InteractionCount() == 0 {
		t.Error("explore interface should have interactions")
	}
}

func TestGenerateEmptyLog(t *testing.T) {
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	if _, err := Generate(nil, db, cat, fastConfig()); err == nil {
		t.Fatal("expected error for empty log")
	}
}
