package core

import (
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

// TestExpressivenessGuarantee is the paper's central guarantee, verified
// end to end for every workload: the generated interface can express every
// input query exactly (§3.2.4, §6.1 "any reachable set of Difftrees can
// also express those queries").
func TestExpressivenessGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	for _, log := range workload.All() {
		log := log
		t.Run(log.Name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Search.Workers = 1
			cfg.Search.MaxIterations = 80
			cfg.Search.EarlyStop = 15
			res, err := Generate(log.Queries, db, cat, cfg)
			if err != nil {
				t.Fatal(err)
			}
			asts, err := sqlparser.ParseAll(log.Queries)
			if err != nil {
				t.Fatal(err)
			}
			ctx := &transform.Context{Queries: asts, Cat: cat}
			sess, err := iface.NewSession(res.Interface, ctx, db)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.ExpressesAll(); err != nil {
				t.Fatalf("expressiveness violated: %v", err)
			}
			// every choice node must be covered by exactly one interaction
			covered := map[[2]int]int{}
			for _, w := range res.Interface.Widgets {
				for _, id := range w.Cover {
					covered[[2]int{w.Tree, id}]++
				}
			}
			for _, v := range res.Interface.VisInts {
				for _, id := range v.Cover {
					covered[[2]int{v.Tree, id}]++
				}
			}
			for ti, tree := range res.Interface.State.Trees {
				for _, c := range tree.Root.ChoiceNodes() {
					if covered[[2]int{ti, c.ID}] != 1 {
						t.Errorf("tree %d node %d covered %d times",
							ti, c.ID, covered[[2]int{ti, c.ID}])
					}
				}
			}
		})
	}
}
