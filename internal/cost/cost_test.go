package cost

import (
	"math"
	"testing"
	"testing/quick"

	"pi2/internal/layout"
	"pi2/internal/widget"
)

func TestWidgetManipPolynomial(t *testing.T) {
	a0, a1, a2 := widget.CostCoeffs(widget.Radio)
	got := WidgetManip(widget.Radio, 4)
	want := a0 + a1*4 + a2*16
	if got != want {
		t.Fatalf("Cm = %g, want %g", got, want)
	}
	if WidgetManip(widget.Toggle, 0) != a0Toggle(t) {
		t.Fatal("toggle cost should ignore domain")
	}
}

func a0Toggle(t *testing.T) float64 {
	t.Helper()
	a0, _, _ := widget.CostCoeffs(widget.Toggle)
	return a0
}

func TestManipulatedPerQuery(t *testing.T) {
	ints := []Interaction{
		{ElemID: "w0", Manip: 10, Cover: 0b001},
		{ElemID: "w1", Manip: 20, Cover: 0b110},
	}
	changed := []uint64{0b111, 0b001, 0b000}
	per := ManipulatedPerQuery(ints, changed)
	if len(per[0]) != 2 || len(per[1]) != 1 || len(per[2]) != 0 {
		t.Fatalf("per-query = %v", per)
	}
	m := Default()
	if got := m.Manipulation(ints, changed); got != 10+20+10 {
		t.Fatalf("Cm = %g", got)
	}
}

func TestFittsLaw(t *testing.T) {
	m := Default()
	from := layout.Box{X: 0, Y: 0, W: 50, H: 30}
	to := layout.Box{X: 200, Y: 0, W: 50, H: 30}
	got := m.Fitts(from, to)
	// D = 200, W = 30 → 1 + 25·log2(400/30)
	want := 1 + 25*math.Log2(400.0/30)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fitts = %g, want %g", got, want)
	}
	if m.Fitts(from, from) != 0 {
		t.Fatal("no movement should cost nothing")
	}
}

// Property: Fitts' cost increases with distance (fixed target size).
func TestQuickFittsMonotoneInDistance(t *testing.T) {
	m := Default()
	f := func(d1, d2 uint16) bool {
		a, b := float64(d1%2000)+10, float64(d2%2000)+10
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		from := layout.Box{X: 0, Y: 0, W: 40, H: 40}
		toA := layout.Box{X: a, Y: 0, W: 40, H: 40}
		toB := layout.Box{X: b, Y: 0, W: 40, H: 40}
		return m.Fitts(from, toA) <= m.Fitts(from, toB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNavigationSequence(t *testing.T) {
	// two widgets alternately manipulated: w0→w1 transitions cost Fitts
	m := Default()
	ints := []Interaction{
		{ElemID: "w0", Manip: 1, Cover: 0b01},
		{ElemID: "w1", Manip: 1, Cover: 0b10},
	}
	boxes := map[string]layout.Box{
		"w0": {X: 0, Y: 0, W: 50, H: 30},
		"w1": {X: 300, Y: 0, W: 50, H: 30},
	}
	// both change in both queries → w0 w1 w0 w1 → 3 transitions
	changed := []uint64{0b11, 0b11}
	nav := m.Navigation(ints, changed, boxes)
	single := m.Fitts(boxes["w0"], boxes["w1"])
	if math.Abs(nav-3*single) > 1e-9 {
		t.Fatalf("nav = %g, want %g", nav, 3*single)
	}
	// same widget repeatedly → no movement
	if m.Navigation(ints[:1], []uint64{0b01, 0b01}, boxes) != 0 {
		t.Fatal("repeat manipulation should not navigate")
	}
}

func TestLayoutPenalty(t *testing.T) {
	m := Default()
	if m.LayoutPenalty(layout.Box{W: 5000, H: 5000}) != 0 {
		t.Fatal("penalty must be off by default (paper: CL = 0)")
	}
	m = m.WithScreen(800, 600, 2)
	if got := m.LayoutPenalty(layout.Box{W: 900, H: 650}); got != 2*(100+50) {
		t.Fatalf("penalty = %g", got)
	}
	if m.LayoutPenalty(layout.Box{W: 700, H: 500}) != 0 {
		t.Fatal("within-screen interface penalized")
	}
}

func TestTotalComposition(t *testing.T) {
	m := Default()
	ints := []Interaction{{ElemID: "w0", Manip: 7, Cover: 1}}
	boxes := map[string]layout.Box{"w0": {W: 10, H: 10}}
	changed := []uint64{1}
	total := m.Total(ints, changed, boxes, layout.Box{W: 100, H: 100})
	if total != 7 {
		t.Fatalf("total = %g (manip only expected)", total)
	}
}

func TestVisInteractionCheap(t *testing.T) {
	// the paper sets visualization interaction costs to low constants "to
	// encourage choosing them": cheaper than any widget.
	for _, k := range widget.Kinds() {
		if WidgetManip(k, 0) <= VisInteractionManip {
			t.Errorf("%s (%g) should cost more than a vis interaction (%g)",
				k, WidgetManip(k, 0), float64(VisInteractionManip))
		}
	}
}
