// Package cost implements PI2's interface cost model (paper §5):
// C(I,Q) = CU(I,Q) + CL(I), where usability cost CU = Cm + Cnav combines
// SUPPLE-style widget manipulation cost with Fitts'-law navigation cost, and
// CL penalizes interfaces exceeding a desired screen size.
package cost

import (
	"math"

	"pi2/internal/layout"
	"pi2/internal/widget"
)

// VisInteractionManip is the low constant manipulation cost assigned to
// visualization interactions "to encourage choosing them" (paper §5), on
// the same estimated-milliseconds scale as the widget coefficients.
const VisInteractionManip = 50

// Model holds the cost-model parameters. The paper sets Fitts' law a = 1
// and b = 25 by manual experimentation; Alpha scales the size penalty when
// a maximum width/height is configured (0 disables it, the paper default).
type Model struct {
	FittsA, FittsB float64
	Alpha          float64
	MaxW, MaxH     float64
}

// Default returns the paper's parameters.
func Default() Model {
	return Model{FittsA: 1, FittsB: 25, Alpha: 0, MaxW: 0, MaxH: 0}
}

// WithScreen returns a model that penalizes interfaces larger than w×h.
func (m Model) WithScreen(w, h, alpha float64) Model {
	m.MaxW, m.MaxH, m.Alpha = w, h, alpha
	return m
}

// Interaction describes one mapped interaction for costing purposes.
type Interaction struct {
	ElemID string  // layout element carrying the interaction (widget or chart)
	Manip  float64 // per-use manipulation cost
	Cover  uint64  // global choice-node bits the interaction binds
}

// WidgetManip evaluates the SUPPLE polynomial for a widget kind and domain
// size: Cm(w) = a0 + a1·|w.d| + a2·|w.d|².
func WidgetManip(k widget.Kind, domain int) float64 {
	a0, a1, a2 := widget.CostCoeffs(k)
	d := float64(domain)
	return a0 + a1*d + a2*d*d
}

// ManipulatedPerQuery computes, for each query, which interactions the user
// must manipulate: those covering a choice node whose binding changed from
// the previous query (every bound node counts for the first query). The
// returned indexes preserve the interactions' order, which callers arrange
// as the Difftrees' DFS order (paper §5: "navigate the widgets in order of
// their depth first traversal").
func ManipulatedPerQuery(ints []Interaction, changed []uint64) [][]int {
	out := make([][]int, len(changed))
	for qi, bits := range changed {
		for ii, it := range ints {
			if it.Cover&bits != 0 {
				out[qi] = append(out[qi], ii)
			}
		}
	}
	return out
}

// Manipulation sums the manipulation cost of expressing the query sequence.
func (m Model) Manipulation(ints []Interaction, changed []uint64) float64 {
	total := 0.0
	for _, idxs := range ManipulatedPerQuery(ints, changed) {
		for _, ii := range idxs {
			total += ints[ii].Manip
		}
	}
	return total
}

// Fitts evaluates the movement time a + b·log2(2D/W) between two boxes,
// where D is the centroid distance and W the minimum of the target's width
// and height (MacKenzie & Buxton's 2-D extension, paper §5).
func (m Model) Fitts(from, to layout.Box) float64 {
	fx, fy := from.Center()
	tx, ty := to.Center()
	d := math.Hypot(tx-fx, ty-fy)
	if d == 0 {
		return 0
	}
	w := math.Min(to.W, to.H)
	if w < 1 {
		w = 1
	}
	v := m.FittsA + m.FittsB*math.Log2(2*d/w)
	if v < 0 {
		v = 0
	}
	return v
}

// Navigation sums Fitts'-law movement costs along the manipulation
// sequence: within each query the user visits the needed interactions in
// order, and carries over from the last interaction of the previous query
// (the paper's w1→w2→w1→w2 example).
func (m Model) Navigation(ints []Interaction, changed []uint64, boxes map[string]layout.Box) float64 {
	return m.NavigationAlong(NavSequence(ints, changed), boxes)
}

// NavSequence flattens the manipulation sequence into the ordered element
// visits Navigation moves between, with consecutive repeats collapsed. The
// sequence depends only on (ints, changed) — not on the layout — so layout
// optimizers evaluating thousands of direction assignments compute it once
// and re-cost only the movements.
func NavSequence(ints []Interaction, changed []uint64) []string {
	var seq []string
	for _, idxs := range ManipulatedPerQuery(ints, changed) {
		for _, ii := range idxs {
			id := ints[ii].ElemID
			if n := len(seq); n == 0 || seq[n-1] != id {
				seq = append(seq, id)
			}
		}
	}
	return seq
}

// NavigationAlong sums Fitts'-law movement costs along a precomputed visit
// sequence under the given boxes.
func (m Model) NavigationAlong(seq []string, boxes map[string]layout.Box) float64 {
	total := 0.0
	for i := 1; i < len(seq); i++ {
		pb, okP := boxes[seq[i-1]]
		tb, okT := boxes[seq[i]]
		if okP && okT {
			total += m.Fitts(pb, tb)
		}
	}
	return total
}

// LayoutPenalty is CL(I) = α·(max(0, w−W) + max(0, h−H)) when a maximum
// screen size is configured (paper §5 Layout).
func (m Model) LayoutPenalty(total layout.Box) float64 {
	if m.Alpha == 0 || (m.MaxW == 0 && m.MaxH == 0) {
		return 0
	}
	p := 0.0
	if m.MaxW > 0 {
		p += math.Max(0, total.W-m.MaxW)
	}
	if m.MaxH > 0 {
		p += math.Max(0, total.H-m.MaxH)
	}
	return m.Alpha * p
}

// Total evaluates the full cost C(I,Q) for a laid-out interface.
func (m Model) Total(ints []Interaction, changed []uint64, boxes map[string]layout.Box, total layout.Box) float64 {
	return m.Manipulation(ints, changed) + m.Navigation(ints, changed, boxes) + m.LayoutPenalty(total)
}
