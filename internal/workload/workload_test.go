package workload

import (
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/schema"
	"pi2/internal/sqlparser"
)

func TestAllLogsParseAndExecute(t *testing.T) {
	db := dataset.NewDB()
	for _, log := range All() {
		if len(log.Queries) == 0 {
			t.Errorf("%s: empty log", log.Name)
		}
		for i, sql := range log.Queries {
			ast, err := sqlparser.Parse(sql)
			if err != nil {
				t.Fatalf("%s q%d: parse: %v", log.Name, i+1, err)
			}
			res, err := engine.Exec(db, ast)
			if err != nil {
				t.Fatalf("%s q%d: exec: %v", log.Name, i+1, err)
			}
			if len(res.Cols) == 0 {
				t.Errorf("%s q%d: no output columns", log.Name, i+1)
			}
		}
	}
}

func TestLogSizesMatchPaper(t *testing.T) {
	sizes := map[string]int{
		"Explore": 2, "Abstract": 3, "Connect": 3, "Filter": 9,
		"SDSS": 5, "Covid": 8, "Sales": 6,
	}
	for _, log := range All() {
		if got := len(log.Queries); got != sizes[log.Name] {
			t.Errorf("%s: %d queries, want %d", log.Name, got, sizes[log.Name])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Filter"); !ok {
		t.Fatal("Filter missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown log found")
	}
}

func TestLogsWithinLogAreUnionCompatibleByGroup(t *testing.T) {
	// within each log, queries with identical projections must union:
	// this is what the initial clustering relies on.
	db := dataset.NewDB()
	cat := catalog.Build(db, dataset.Keys())
	log := Explore()
	qs, err := sqlparser.ParseAll(log.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if schema.InferResultSchema(qs, cat) == nil {
		t.Fatal("Explore queries should be union compatible")
	}
}

func TestSalesQueriesReturnRows(t *testing.T) {
	// the HAVING-with-correlated-subquery queries must produce top-sales rows
	db := dataset.NewDB()
	log := Sales()
	ast := sqlparser.MustParse(log.Queries[0])
	res, err := engine.Exec(db, ast)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("top-sales query returned nothing")
	}
	// exactly one top product per city
	cities := map[string]int{}
	for _, row := range res.Rows {
		cities[row[0].Str]++
	}
	for c, n := range cities {
		if n != 1 {
			t.Errorf("city %s has %d top rows, want 1", c, n)
		}
	}
}
