// Package workload defines the paper's seven query logs (§7.1–§7.2,
// Listings 1–7), cleaned up to full SQL (the paper abbreviates "BTWN a & b"
// for BETWEEN a AND b and elides repeated clauses with "..").
package workload

// Log is one named query log.
type Log struct {
	Name    string
	Figure  string // the paper artifact it reproduces
	Queries []string
}

// Explore is Listing 1: range predicates over the Cars scatterplot
// (Figure 14a — pan & zoom).
func Explore() Log {
	return Log{
		Name:   "Explore",
		Figure: "Figure 14a",
		Queries: []string{
			`SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38`,
			`SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30`,
		},
	}
}

// Abstract is Listing 2: optional date-range predicates over sp500
// (Figure 14c — overview + detail).
func Abstract() Log {
	return Log{
		Name:   "Abstract",
		Figure: "Figure 14c",
		Queries: []string{
			`SELECT date, price FROM sp500`,
			`SELECT date, price FROM sp500 WHERE date > '2001-01-01' AND date < '2003-01-01'`,
			`SELECT date, price FROM sp500 WHERE date > '2001-02-01' AND date < '2003-02-01'`,
		},
	}
}

// Connect is Listing 3: linked selection across two scatterplots
// (Figure 14b).
func Connect() Log {
	return Log{
		Name:   "Connect",
		Figure: "Figure 14b",
		Queries: []string{
			`SELECT hp, disp, id FROM Cars`,
			`SELECT mpg, disp, id IN (1, 2) AS color FROM Cars`,
			`SELECT mpg, disp, id IN (20, 22) AS color FROM Cars`,
		},
	}
}

// Filter is Listing 4: cross-filtering over three grouped flight charts
// (Figure 14d).
func Filter() Log {
	return Log{
		Name:   "Filter",
		Figure: "Figure 14d",
		Queries: []string{
			`SELECT hour, count(*) FROM flights GROUP BY hour`,
			`SELECT hour, count(*) FROM flights WHERE delay BETWEEN 0 AND 50 AND dist BETWEEN 400 AND 800 GROUP BY hour`,
			`SELECT hour, count(*) FROM flights WHERE delay BETWEEN 10 AND 60 AND dist BETWEEN 10 AND 300 GROUP BY hour`,
			`SELECT delay, count(*) FROM flights GROUP BY delay`,
			`SELECT delay, count(*) FROM flights WHERE hour BETWEEN 10 AND 16 AND dist BETWEEN 400 AND 800 GROUP BY delay`,
			`SELECT delay, count(*) FROM flights WHERE hour BETWEEN 15 AND 20 AND dist BETWEEN 200 AND 700 GROUP BY delay`,
			`SELECT dist, count(*) FROM flights GROUP BY dist`,
			`SELECT dist, count(*) FROM flights WHERE hour BETWEEN 10 AND 16 AND delay BETWEEN 0 AND 50 GROUP BY dist`,
			`SELECT dist, count(*) FROM flights WHERE hour BETWEEN 8 AND 19 AND delay BETWEEN 20 AND 61 GROUP BY dist`,
		},
	}
}

// SDSS is Listing 5: the Sloan Digital Sky Survey case study (Figure 15a).
func SDSS() Log {
	return Log{
		Name:   "SDSS",
		Figure: "Figure 15a",
		Queries: []string{
			`SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec
			 FROM galaxy AS gal, specObj AS s
			 WHERE s.bestObjID = gal.objID AND s.z BETWEEN 0.1362 AND 0.141
			   AND s.ra BETWEEN 213.3 AND 214.1 AND s.dec BETWEEN -0.9 AND -0.2`,
			`SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec
			 FROM galaxy AS gal, specObj AS s
			 WHERE s.bestObjID = gal.objID AND s.z BETWEEN 0.1362 AND 0.141
			   AND s.ra BETWEEN 213.4191 AND 213.9 AND s.dec BETWEEN -0.565 AND -0.3111`,
			`SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec
			 FROM galaxy AS gal, specObj AS s
			 WHERE s.bestObjID = gal.objID AND s.z BETWEEN 0.1362 AND 0.141
			   AND s.ra BETWEEN 213.5 AND 213.8 AND s.dec BETWEEN -0.34 AND -0.2`,
			`SELECT DISTINCT ra, dec FROM specObj WHERE ra BETWEEN 213.2 AND 213.6 AND dec BETWEEN -0.3 AND -0.1`,
			`SELECT DISTINCT ra, dec FROM specObj WHERE ra BETWEEN 213 AND 214 AND dec BETWEEN -0.8 AND -0.4`,
		},
	}
}

// Covid is Listing 6: Google's Covid-19 visualization (Figure 15b).
func Covid() Log {
	return Log{
		Name:   "Covid",
		Figure: "Figure 15b",
		Queries: []string{
			`SELECT date, cases FROM covid WHERE state = 'CA'`,
			`SELECT date, cases FROM covid WHERE state = 'WA' AND date > date(today(), '-30 days')`,
			`SELECT date, cases FROM covid WHERE state = 'CA' AND date > date(today(), '-7 days')`,
			`SELECT date, deaths FROM covid WHERE state = 'CA'`,
			`SELECT date, deaths FROM covid WHERE state = 'NY'`,
			`SELECT date, deaths FROM covid WHERE state = 'WA' AND date > date(today(), '-14 days')`,
			`SELECT date, deaths FROM covid WHERE state = 'WA' AND date > date(today(), '-7 days')`,
			`SELECT date, deaths FROM covid WHERE state = 'NY' AND date > date(today(), '-7 days')`,
		},
	}
}

// Sales is Listing 7: the supermarket sales dashboard (Figure 15c). The
// first three queries carry the correlated HAVING subquery that Metabase
// and Tableau cannot parameterize.
func Sales() Log {
	top := func(dateFilter string) string {
		where := ""
		innerWhere := "WHERE s.city = ss.city"
		if dateFilter != "" {
			where = "WHERE ss.date BETWEEN " + dateFilter + " "
			innerWhere = "WHERE s.city = ss.city AND s.date BETWEEN " + dateFilter
		}
		return `SELECT city, product, sum(total) FROM sales AS ss ` + where +
			`GROUP BY city, product HAVING sum(total) >= (SELECT max(t) FROM (` +
			`SELECT sum(total) AS t FROM sales AS s ` + innerWhere +
			` GROUP BY s.city, s.product) AS m)`
	}
	return Log{
		Name:   "Sales",
		Figure: "Figure 15c",
		Queries: []string{
			top(""),
			top("'2019-01-25' AND '2019-02-15'"),
			top("'2019-02-01' AND '2019-03-10'"),
			`SELECT date, sum(total) FROM sales WHERE branch = 'A' AND product = 'Health and beauty' GROUP BY date`,
			`SELECT date, sum(total) FROM sales WHERE branch = 'B' AND product = 'Electronics' GROUP BY date`,
			`SELECT date, sum(total) FROM sales WHERE branch = 'C' AND product = 'Lifestyle' GROUP BY date`,
		},
	}
}

// All returns the seven logs in the paper's order.
func All() []Log {
	return []Log{Explore(), Abstract(), Connect(), Filter(), SDSS(), Covid(), Sales()}
}

// Names lists the built-in log names in the paper's order (for CLI help
// and unknown-name error messages).
func Names() []string {
	var names []string
	for _, l := range All() {
		names = append(names, l.Name)
	}
	return names
}

// ByName looks a log up by case-sensitive name; ok is false when unknown.
func ByName(name string) (Log, bool) {
	for _, l := range All() {
		if l.Name == name {
			return l, true
		}
	}
	return Log{}, false
}
