package engine

import (
	"math"
	"time"
)

// The vectorized execution path: runtime half. runVec executes a compiled
// vecPlan over columnar storage (colstore.go) and feeds the same rowSink the
// row pipeline feeds, so DISTINCT/ORDER BY/LIMIT and the top-K heap are
// shared verbatim. Operators walk selection vectors in batchSize chunks:
//
//   scan    — per-source selection vectors, predicates applied
//             column-at-a-time with NULL-bitmap-aware three-valued logic;
//   join    — hash build over source 1's selection (or the DB-cached
//             whole-column hash when source 1 has no pushed predicates),
//             probed by source 0 in selection order, which emits (r0, r1)
//             pairs in exactly the interpreter's nested-loop order;
//   group   — group ids via an open-addressing u64 table for a single
//             all-numeric key (raw float64 bits = appendGroupKey identity)
//             or type-tagged keys otherwise, with aggregates accumulated in
//             scan order so float sums round identically to the row path.
//
// Selections and the filtered build hash are pure functions of immutable
// base tables, so they are computed once per plan and shared by concurrent
// Execs (vecState), mirroring scanState. Errors cannot occur before output:
// every pushed predicate is a proven-pure shape. Grouped output replays the
// row path's per-group evaluation order — HAVING, then select items, then
// order keys — so aggregate type errors surface for exactly the same group
// in exactly the same order.

// runVec executes the vectorized plan into sink, returning the number of
// rows offered (the row path's `offered` counter).
func (pq *planQuery) runVec(outer *rowEnv, prof *Profile, sink *rowSink) (int, error) {
	vp := pq.vec
	vs := pq.vecst
	db := pq.db

	// 1. Scans: compute (or reuse) the per-source selection vectors.
	freshScan := false
	vs.selOnce.Do(func() {
		freshScan = true
		vs.sel = make([][]int32, vp.nsrc)
		vs.selDur = make([]time.Duration, vp.nsrc)
		for i := 0; i < vp.nsrc; i++ {
			if len(vp.scanPreds[i]) == 0 {
				continue
			}
			t0 := time.Now()
			vs.sel[i] = vecScanSelect(db, vp.cols[i], vp.scanPreds[i])
			vs.selDur[i] = time.Since(t0)
		}
	})
	if prof != nil {
		for i := 0; i < vp.nsrc; i++ {
			in := vp.cols[i].rows
			out, path := in, "vectorized"
			var d time.Duration
			batches := 0
			if len(vp.scanPreds[i]) > 0 {
				out = len(vs.sel[i])
				path = "vectorized-filter"
				if freshScan {
					d = vs.selDur[i]
					batches = (in + batchSize - 1) / batchSize
				}
			}
			prof.addVec("scan", pq.sources[i].alias, path, in, out, batches, d)
		}
	}

	// 2. Pairs: the surviving (r0, r1) combinations in nested-loop order.
	// For a single source r1s stays nil; r0s == nil means the identity
	// selection (no pushed predicates).
	r0s := vs.sel[0]
	var r1s []int32
	npairs := len(r0s)
	if r0s == nil {
		npairs = vp.cols[0].rows
	}
	if vp.nsrc == 2 {
		var err error
		r0s, r1s, err = pq.vecJoin(prof)
		if err != nil {
			return 0, err
		}
		npairs = len(r0s)
	}

	// 3. Output.
	if !vp.grouped {
		return pq.vecEmit(prof, sink, r0s, r1s, npairs), nil
	}
	return pq.vecEmitGrouped(outer, prof, sink, r0s, r1s, npairs)
}

// vecScanSelect computes the selection vector of rows surviving every pushed
// predicate, processing the table in batchSize chunks: the first pass fills
// an identity batch, each predicate then compacts it in place.
func vecScanSelect(db *DB, tc *tableCols, preds []vecPred) []int32 {
	out := make([]int32, 0, tc.rows/2+1)
	var buf [batchSize]int32
	for base := 0; base < tc.rows; base += batchSize {
		end := base + batchSize
		if end > tc.rows {
			end = tc.rows
		}
		m := end - base
		sel := buf[:m]
		for i := range sel {
			sel[i] = int32(base + i)
		}
		for k := range preds {
			if len(sel) == 0 {
				break
			}
			sel = preds[k].filterSel(tc, sel)
		}
		out = append(out, sel...)
		db.noteBatch(m)
	}
	return out
}

// filterSel keeps the rows of sel that satisfy the predicate, compacting in
// place. NULL handling is uniform: a NULL operand makes the predicate NULL,
// and NULL is not truthy, so the row drops — the same three-valued outcome
// the row path's compiled closures produce. The NaN branches reproduce
// Compare's "NaN equals every number" degeneracy bit for bit.
func (p *vecPred) filterSel(tc *tableCols, sel []int32) []int32 {
	cd := &tc.cols[p.col]
	j := 0
	switch p.kind {
	case predCmpLit:
		switch p.fast {
		case fastNum:
			lit := p.lit.Num
			for _, i := range sel {
				ii := int(i)
				if cd.isNull(ii) {
					continue
				}
				v := cd.nums[ii]
				var keep bool
				if v != v { // NaN: Compare(NaN, x) == 0 for every number x
					keep = p.op == vecEq || p.op == vecLe || p.op == vecGe
				} else {
					switch p.op {
					case vecEq:
						keep = v == lit
					case vecNe:
						keep = v != lit
					case vecLt:
						keep = v < lit
					case vecLe:
						keep = v <= lit
					case vecGt:
						keep = v > lit
					default:
						keep = v >= lit
					}
				}
				if keep {
					sel[j] = i
					j++
				}
			}
		case fastStr:
			lit := p.lit.Str
			for _, i := range sel {
				ii := int(i)
				if cd.isNull(ii) {
					continue
				}
				s := cd.strs[ii]
				var keep bool
				switch p.op {
				case vecEq:
					keep = s == lit
				case vecNe:
					keep = s != lit
				case vecLt:
					keep = s < lit
				case vecLe:
					keep = s <= lit
				case vecGt:
					keep = s > lit
				default:
					keep = s >= lit
				}
				if keep {
					sel[j] = i
					j++
				}
			}
		default:
			for _, i := range sel {
				v := cd.value(int(i))
				if v.Null {
					continue
				}
				if cmpTest(p.op, Compare(v, p.lit)) {
					sel[j] = i
					j++
				}
			}
		}
	case predCmpCol:
		cd2 := &tc.cols[p.col2]
		if cd.allNum() && cd2.allNum() {
			for _, i := range sel {
				ii := int(i)
				if cd.isNull(ii) || cd2.isNull(ii) {
					continue
				}
				a, b := cd.nums[ii], cd2.nums[ii]
				var keep bool
				if a != a || b != b { // NaN on either side: Compare == 0
					keep = p.op == vecEq || p.op == vecLe || p.op == vecGe
				} else {
					switch p.op {
					case vecEq:
						keep = a == b
					case vecNe:
						keep = a != b
					case vecLt:
						keep = a < b
					case vecLe:
						keep = a <= b
					case vecGt:
						keep = a > b
					default:
						keep = a >= b
					}
				}
				if keep {
					sel[j] = i
					j++
				}
			}
		} else {
			for _, i := range sel {
				a := cd.value(int(i))
				b := cd2.value(int(i))
				if a.Null || b.Null {
					continue
				}
				if cmpTest(p.op, Compare(a, b)) {
					sel[j] = i
					j++
				}
			}
		}
	case predBetween:
		switch p.fast {
		case fastNum:
			lo, hi := p.lo.Num, p.hi.Num
			for _, i := range sel {
				ii := int(i)
				if cd.isNull(ii) {
					continue
				}
				v := cd.nums[ii]
				// NaN keeps: v < lo and v > hi are both false, matching
				// Compare(NaN, bound) == 0 on both ends.
				if v < lo || v > hi {
					continue
				}
				sel[j] = i
				j++
			}
		case fastStr:
			lo, hi := p.lo.Str, p.hi.Str
			for _, i := range sel {
				ii := int(i)
				if cd.isNull(ii) {
					continue
				}
				s := cd.strs[ii]
				if s < lo || s > hi {
					continue
				}
				sel[j] = i
				j++
			}
		default:
			for _, i := range sel {
				v := cd.value(int(i))
				if v.Null || Compare(v, p.lo) < 0 || Compare(v, p.hi) > 0 {
					continue
				}
				sel[j] = i
				j++
			}
		}
	case predLike:
		for _, i := range sel {
			v := cd.value(int(i))
			if v.Null {
				// NULL LIKE p is NULL, and NOT NULL is still NULL: the row
				// drops under either polarity.
				continue
			}
			if likeMatch(v.Text(), p.pattern) != p.negate {
				sel[j] = i
				j++
			}
		}
	case predIn:
		for _, i := range sel {
			v := cd.value(int(i))
			var found, sawNull bool
			for _, e := range p.elems {
				if EqualVal(v, e) {
					found = true
					break
				}
				if e.Null {
					sawNull = true
				}
			}
			if inVerdict(p.negate, found, sawNull || v.Null).Truthy() {
				sel[j] = i
				j++
			}
		}
	}
	return sel[:j]
}

// vecCell reads one column of one (r0, r1) pair.
func vecCell(vp *vecPlan, c vecCol, r0, r1 int) Value {
	ri := r0
	if c.src == 1 {
		ri = r1
	}
	return vp.cols[c.src].cols[c.col].value(ri)
}

// vecCrossPass applies the remaining cross-source predicates to one pair.
func vecCrossPass(vp *vecPlan, r0, r1 int) bool {
	for i := range vp.cross {
		cp := &vp.cross[i]
		a := vecCell(vp, cp.l, r0, r1)
		b := vecCell(vp, cp.r, r0, r1)
		if a.Null || b.Null {
			return false
		}
		if !cmpTest(cp.op, Compare(a, b)) {
			return false
		}
	}
	return true
}

// vecJoin produces the joined (r0, r1) pair lists in nested-loop order:
// r0 ascending in probe-selection order, r1 ascending within each bucket.
func (pq *planQuery) vecJoin(prof *Profile) ([]int32, []int32, error) {
	vp := pq.vec
	vs := pq.vecst
	db := pq.db
	tc0, tc1 := vp.cols[0], vp.cols[1]
	sel0, sel1 := vs.sel[0], vs.sel[1]
	n0 := len(sel0)
	if sel0 == nil {
		n0 = tc0.rows
	}
	n1 := len(sel1)
	if sel1 == nil {
		n1 = tc1.rows
	}

	var tj time.Time
	if prof != nil {
		tj = time.Now()
	}
	r0s := make([]int32, 0, n0)
	r1s := make([]int32, 0, n0)
	emit := func(r0, r1 int32) {
		if len(vp.cross) == 0 || vecCrossPass(vp, int(r0), int(r1)) {
			r0s = append(r0s, r0)
			r1s = append(r1s, r1)
		}
	}

	if !vp.hasKey {
		// No hash-keyable equi conjunct: vectorized nested loop (the row
		// path would nested-loop here too).
		for k0 := 0; k0 < n0; k0++ {
			r0 := int32(k0)
			if sel0 != nil {
				r0 = sel0[k0]
			}
			for k1 := 0; k1 < n1; k1++ {
				r1 := int32(k1)
				if sel1 != nil {
					r1 = sel1[k1]
				}
				emit(r0, r1)
			}
		}
		db.noteBatches(n0)
		if prof != nil {
			prof.addVec("join", pq.sources[1].alias, "vectorized nested-loop",
				n0+n1, len(r0s), (n0+batchSize-1)/batchSize, time.Since(tj))
		}
		return r0s, r1s, nil
	}

	// Hash join: build over source 1, probe with source 0 in selection order.
	var numH *numHashIndex
	var strH *strHashIndex
	buildPath := ""
	if sel1 == nil {
		// No pushed predicates on the build side: reuse the DB-cached
		// whole-column hash (cold on first use, then shared across plans).
		var tb time.Time
		if prof != nil {
			tb = time.Now()
		}
		if vp.keyNum {
			numH = db.numHashFor(vp.tabs[1], vp.key1)
		} else {
			strH = db.strHashFor(vp.tabs[1], vp.key1)
		}
		buildPath = "columnar(" + pq.sources[1].cols[vp.key1] + ")"
		if prof != nil {
			nb := len(numBuckets(numH, strH))
			prof.addVec("hash-build", pq.sources[1].alias, buildPath, n1, nb, 0, time.Since(tb))
		}
	} else {
		freshBuild := false
		vs.buildOnce.Do(func() {
			freshBuild = true
			t0 := time.Now()
			if vp.keyNum {
				vs.numBuild = buildNumHash(&tc1.cols[vp.key1], sel1, tc1.rows)
			} else {
				vs.strBuild = buildStrHash(&tc1.cols[vp.key1], sel1, tc1.rows)
			}
			vs.buildDur = time.Since(t0)
			db.noteBatches(len(sel1))
		})
		numH, strH = vs.numBuild, vs.strBuild
		if prof != nil {
			var d time.Duration
			if freshBuild {
				d = vs.buildDur
			}
			prof.addVec("hash-build", pq.sources[1].alias, "vectorized", n1, len(numBuckets(numH, strH)), 0, d)
		}
	}

	cd0 := &tc0.cols[vp.key0]
	if vp.keyNum {
		for k0 := 0; k0 < n0; k0++ {
			r0 := int32(k0)
			if sel0 != nil {
				r0 = sel0[k0]
			}
			ii := int(r0)
			if cd0.isNull(ii) {
				continue // NULL key matches nothing
			}
			bi := numH.tab.find(joinKeyBits(cd0.nums[ii]))
			if bi < 0 {
				continue
			}
			for _, r1 := range numH.buckets[bi] {
				emit(r0, r1)
			}
		}
	} else {
		for k0 := 0; k0 < n0; k0++ {
			r0 := int32(k0)
			if sel0 != nil {
				r0 = sel0[k0]
			}
			ii := int(r0)
			if cd0.isNull(ii) {
				continue
			}
			bi, ok := strH.idx[cd0.strs[ii]]
			if !ok {
				continue
			}
			for _, r1 := range strH.buckets[bi] {
				emit(r0, r1)
			}
		}
	}
	db.noteBatches(n0)
	if prof != nil {
		detail := "vectorized hash build=" + pq.sources[1].alias
		prof.addVec("join", detail, buildPath, n0+n1, len(r0s), (n0+batchSize-1)/batchSize, time.Since(tj))
	}
	return r0s, r1s, nil
}

// numBuckets counts the buckets of whichever hash exists.
func numBuckets(numH *numHashIndex, strH *strHashIndex) [][]int32 {
	if numH != nil {
		return numH.buckets
	}
	return strH.buckets
}

// vecEmit materializes the non-grouped output: one slab allocation backs
// every output row, gathered column-at-a-time, then rows feed the sink in
// pair order (= the interpreter's enumeration order). Never errors: items
// and order keys are bare local columns.
func (pq *planQuery) vecEmit(prof *Profile, sink *rowSink, r0s, r1s []int32, npairs int) int {
	vp := pq.vec
	var tp time.Time
	if prof != nil {
		tp = time.Now()
	}
	if vp.distinct {
		before := npairs
		r0s, r1s, npairs = pq.vecDedup(r0s, r1s, npairs)
		// The sink's dedup would be redundant: first occurrences (and their
		// first-row keys) are already kept, exactly like distinctRows.
		sink.distinct = false
		sink.seen = nil
		if prof != nil {
			prof.addVec("distinct", "", "vectorized", before, npairs, 0, time.Since(tp))
			tp = time.Now()
		}
	}
	k := len(vp.items)
	nk := len(vp.orderCols)
	data := make([]Value, npairs*k)
	gather := func(dst []Value, width int, off int, c vecCol) {
		cd := &vp.cols[c.src].cols[c.col]
		rows := r0s
		if c.src == 1 {
			rows = r1s
		}
		if rows == nil {
			for p := 0; p < npairs; p++ {
				dst[p*width+off] = cd.value(p)
			}
		} else {
			for p := 0; p < npairs; p++ {
				dst[p*width+off] = cd.value(int(rows[p]))
			}
		}
	}
	for j, c := range vp.items {
		gather(data, k, j, c)
	}
	var keyData []Value
	if nk > 0 {
		keyData = make([]Value, npairs*nk)
		for j, c := range vp.orderCols {
			gather(keyData, nk, j, c)
		}
	}
	if sink.top == nil && !sink.distinct {
		// Collect mode: materialize the row headers in one exact-size
		// allocation instead of per-row add calls with append growth. When
		// there is no ORDER BY the keys are never consumed (finish sorts
		// only when desc is non-empty), so they are skipped entirely.
		rows := make([][]Value, npairs)
		for p := range rows {
			rows[p] = data[p*k : (p+1)*k : (p+1)*k]
		}
		sink.rows = append(sink.rows, rows...)
		if nk > 0 {
			krows := make([][]Value, npairs)
			for p := range krows {
				krows[p] = keyData[p*nk : (p+1)*nk : (p+1)*nk]
			}
			sink.keys = append(sink.keys, krows...)
		}
	} else {
		for p := 0; p < npairs; p++ {
			row := data[p*k : (p+1)*k : (p+1)*k]
			var keys []Value
			if nk > 0 {
				keys = keyData[p*nk : (p+1)*nk : (p+1)*nk]
			}
			sink.add(row, keys)
		}
	}
	pq.db.noteBatches(npairs)
	if prof != nil {
		prof.addVec("project", "", "vectorized", npairs, npairs, (npairs+batchSize-1)/batchSize, time.Since(tp))
	}
	return npairs
}

// vecDedup keeps the first pair for each distinct projected row, in order —
// the same first-occurrence rule distinctRows and the top-K seen map apply.
// Fresh slices are returned because r0s may alias the cached selection.
func (pq *planQuery) vecDedup(r0s, r1s []int32, npairs int) ([]int32, []int32, int) {
	vp := pq.vec
	seen := make(map[string]struct{}, npairs)
	keep0 := make([]int32, 0, npairs)
	var keep1 []int32
	if r1s != nil {
		keep1 = make([]int32, 0, npairs)
	}
	var buf []byte
	for p := 0; p < npairs; p++ {
		r0 := p
		if r0s != nil {
			r0 = int(r0s[p])
		}
		r1 := 0
		if r1s != nil {
			r1 = int(r1s[p])
		}
		buf = buf[:0]
		for _, c := range vp.items {
			buf = appendGroupKey(buf, vecCell(vp, c, r0, r1))
		}
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		keep0 = append(keep0, int32(r0))
		if r1s != nil {
			keep1 = append(keep1, int32(r1))
		}
	}
	return keep0, keep1, len(keep0)
}

// aggRun is one aggregate's per-group accumulation state.
type aggRun struct {
	kind    vecAggKind
	cd      *colData
	src1    bool
	fastNum bool
	min     bool
	strErr  error

	counts []int64   // count / sum / avg
	sums   []float64 // sum / avg
	isErr  []bool    // sum / avg: group saw a string value
	bestV  []Value   // min / max
	have   []bool    // min / max
}

// vecEmitGrouped assigns group ids, accumulates every aggregate in scan
// order, then replays the row path's per-group evaluation: HAVING, select
// items, order keys — surfacing errors for the same group at the same point.
func (pq *planQuery) vecEmitGrouped(outer *rowEnv, prof *Profile, sink *rowSink, r0s, r1s []int32, npairs int) (int, error) {
	vp := pq.vec
	var tg time.Time
	if prof != nil {
		tg = time.Now()
	}

	aggs := make([]aggRun, len(vp.aggs))
	for i := range vp.aggs {
		a := &vp.aggs[i]
		ar := &aggs[i]
		ar.kind = a.kind
		ar.strErr = a.strErr
		ar.min = a.kind == aggMin
		if a.kind != aggCountStar {
			ar.cd = &vp.cols[a.col.src].cols[a.col.col]
			ar.src1 = a.col.src == 1
			ar.fastNum = ar.cd.allNum()
		}
	}

	var sizes []int64
	var rep0, rep1 []int32
	newGroup := func(r0, r1 int32) int32 {
		gid := int32(len(sizes))
		sizes = append(sizes, 0)
		rep0 = append(rep0, r0)
		rep1 = append(rep1, r1)
		for ai := range aggs {
			ar := &aggs[ai]
			switch ar.kind {
			case aggCount:
				ar.counts = append(ar.counts, 0)
			case aggSum, aggAvg:
				ar.counts = append(ar.counts, 0)
				ar.sums = append(ar.sums, 0)
				ar.isErr = append(ar.isErr, false)
			case aggMin, aggMax:
				ar.bestV = append(ar.bestV, Value{})
				ar.have = append(ar.have, false)
			}
		}
		return gid
	}

	// Group-id assignment: single all-numeric key uses the open-addressing
	// u64 table on raw float bits (exactly appendGroupKey's identity: ±0
	// distinct, NaN payloads distinct) with NULL as its own group; anything
	// else falls back to type-tagged keys in a Go map.
	var keyCd *colData
	keySrc1 := false
	useU64 := false
	if vp.hasGroupBy && len(vp.groupBy) == 1 {
		gc := vp.groupBy[0]
		keyCd = &vp.cols[gc.src].cols[gc.col]
		keySrc1 = gc.src == 1
		useU64 = keyCd.allNum()
	}
	var u64t u64table
	nullGid := int32(-1)
	var gidx map[string]int32
	var kb []byte
	// Dense small-integer keys skip hashing entirely: group id is an array
	// lookup on (value - min). allInt excludes -0 and NaN, so plain integer
	// identity coincides with appendGroupKey's raw-bits identity. The span
	// gate keeps the table proportionate to the input.
	var dtab []int32
	var dmin int64
	if useU64 && keyCd.allInt {
		if span := keyCd.intMax - keyCd.intMin + 1; span > 0 && span <= 65536 && span <= int64(4*npairs)+1024 {
			dtab = make([]int32, span)
			for i := range dtab {
				dtab[i] = -1
			}
			dmin = keyCd.intMin
		}
	}
	if useU64 && dtab == nil {
		// Sized for group cardinality, not row count: insertGrow doubles on
		// demand, so a 2000-row/50-group input pays for ~64 slots, not 4096.
		u64t = newU64Table(32)
	} else if !useU64 && vp.hasGroupBy {
		gidx = make(map[string]int32, 64)
	}

	// Pass 1: assign a group id per pair (scan order = first-seen group
	// order). The ids feed the per-aggregate column passes below.
	gids := make([]int32, npairs)
	for p := 0; p < npairs; p++ {
		r0 := int32(p)
		if r0s != nil {
			r0 = r0s[p]
		}
		var r1 int32
		if r1s != nil {
			r1 = r1s[p]
		}
		var gid int32
		switch {
		case dtab != nil:
			ri := int(r0)
			if keySrc1 {
				ri = int(r1)
			}
			if keyCd.isNull(ri) {
				if nullGid < 0 {
					nullGid = newGroup(r0, r1)
				}
				gid = nullGid
			} else {
				di := int64(keyCd.nums[ri]) - dmin
				if g := dtab[di]; g >= 0 {
					gid = g
				} else {
					gid = newGroup(r0, r1)
					dtab[di] = gid
				}
			}
		case useU64:
			ri := int(r0)
			if keySrc1 {
				ri = int(r1)
			}
			if keyCd.isNull(ri) {
				if nullGid < 0 {
					nullGid = newGroup(r0, r1)
				}
				gid = nullGid
			} else {
				slot := u64t.insertGrow(math.Float64bits(keyCd.nums[ri]))
				if *slot < 0 {
					*slot = newGroup(r0, r1)
				}
				gid = *slot
			}
		case vp.hasGroupBy:
			kb = kb[:0]
			for _, gc := range vp.groupBy {
				kb = appendGroupKey(kb, vecCell(vp, gc, int(r0), int(r1)))
			}
			g, ok := gidx[string(kb)]
			if !ok {
				g = newGroup(r0, r1)
				gidx[string(kb)] = g
			}
			gid = g
		default:
			if len(sizes) == 0 {
				newGroup(r0, r1)
			}
			gid = 0
		}
		sizes[gid]++
		gids[p] = gid
	}

	// Pass 2: one tight loop per aggregate over the gid array, with the row
	// selection, NULL bitmap, and kind dispatch hoisted out of the inner loop.
	// Accumulation stays in scan order per aggregate, so float sums are
	// bit-identical to the interleaved order the row path uses.
	for ai := range aggs {
		ar := &aggs[ai]
		if ar.kind == aggCountStar {
			continue
		}
		cd := ar.cd
		rs := r0s
		if ar.src1 {
			rs = r1s
		}
		direct := rs == nil && !ar.src1 // row index == pair index
		switch {
		case ar.kind == aggCount && direct:
			for p := 0; p < npairs; p++ {
				if !cd.isNull(p) {
					ar.counts[gids[p]]++
				}
			}
		case ar.kind == aggCount && rs != nil:
			for p := 0; p < npairs; p++ {
				if !cd.isNull(int(rs[p])) {
					ar.counts[gids[p]]++
				}
			}
		case (ar.kind == aggSum || ar.kind == aggAvg) && ar.fastNum && direct:
			nums := cd.nums
			for p := 0; p < npairs; p++ {
				if !cd.isNull(p) {
					g := gids[p]
					ar.sums[g] += nums[p]
					ar.counts[g]++
				}
			}
		case (ar.kind == aggSum || ar.kind == aggAvg) && ar.fastNum && rs != nil:
			nums := cd.nums
			for p := 0; p < npairs; p++ {
				ri := int(rs[p])
				if !cd.isNull(ri) {
					g := gids[p]
					ar.sums[g] += nums[ri]
					ar.counts[g]++
				}
			}
		default:
			// Generic per-row accumulation: min/max, mixed-type sum/avg, and
			// the (unreachable without a join) src1-with-nil-selection shape.
			for p := 0; p < npairs; p++ {
				ri := p
				if ar.src1 {
					ri = 0
				}
				if rs != nil {
					ri = int(rs[p])
				}
				if cd.isNull(ri) {
					continue
				}
				gid := gids[p]
				switch ar.kind {
				case aggCount:
					ar.counts[gid]++
				case aggSum, aggAvg:
					if cd.isString(ri) {
						ar.isErr[gid] = true
					} else {
						ar.sums[gid] += cd.nums[ri]
						ar.counts[gid]++
					}
				case aggMin, aggMax:
					v := cd.value(ri)
					if !ar.have[gid] {
						ar.bestV[gid], ar.have[gid] = v, true
					} else if c := Compare(v, ar.bestV[gid]); (ar.min && c < 0) || (!ar.min && c > 0) {
						ar.bestV[gid] = v
					}
				}
			}
		}
	}
	if !vp.hasGroupBy && len(sizes) == 0 {
		// Aggregates over empty input still yield one (empty) group.
		newGroup(-1, -1)
	}
	pq.db.noteBatches(npairs)
	if prof != nil {
		prof.addVec("group", "", "vectorized", npairs, len(sizes), (npairs+batchSize-1)/batchSize, time.Since(tg))
		tg = time.Now()
	}

	gr := &groupRun{sizes: sizes, rep0: rep0, rep1: rep1, aggs: aggs}
	offered := 0
	for g := range sizes {
		if vp.gHaving != nil {
			l, err := pq.gEval(&vp.gHaving.l, g, gr, outer)
			if err != nil {
				return 0, err
			}
			if vp.gHaving.cmp {
				r, err := pq.gEval(&vp.gHaving.r, g, gr, outer)
				if err != nil {
					return 0, err
				}
				var hv Value
				if l.Null || r.Null {
					hv = NullVal()
				} else {
					hv = BoolVal(cmpTest(vp.gHaving.op, Compare(l, r)))
				}
				if !hv.Truthy() {
					continue
				}
			} else if !l.Truthy() {
				continue
			}
		}
		row := make([]Value, len(vp.gItems))
		for i := range vp.gItems {
			v, err := pq.gEval(&vp.gItems[i], g, gr, outer)
			if err != nil {
				return 0, err
			}
			row[i] = v
		}
		var keys []Value
		if len(vp.gOrder) > 0 {
			keys = make([]Value, len(vp.gOrder))
			for i := range vp.gOrder {
				v, err := pq.gEval(&vp.gOrder[i], g, gr, outer)
				if err != nil {
					return 0, err
				}
				keys[i] = v
			}
		}
		sink.add(row, keys)
		offered++
	}
	if prof != nil {
		prof.addVec("project", "", "vectorized", len(sizes), offered, 0, time.Since(tg))
	}
	return offered, nil
}

// groupRun bundles the grouped accumulation state for gEval.
type groupRun struct {
	sizes      []int64
	rep0, rep1 []int32
	aggs       []aggRun
}

// gEval evaluates one grouped-context atom for group g, matching the row
// path's per-group closures: bare columns read the group's first row; in an
// empty implicit group the lookup falls through to the outer scope and then
// errors with the interpreter's "unknown column"; aggregate type errors
// surface only when (and if) the aggregate is actually evaluated.
func (pq *planQuery) gEval(e *gExpr, g int, gr *groupRun, outer *rowEnv) (Value, error) {
	vp := pq.vec
	switch e.kind {
	case gLit:
		return e.lit, nil
	case gCol:
		if gr.sizes[g] == 0 {
			if outer != nil {
				if v, ok := outer.lookupLower(e.lower); ok {
					return v, nil
				}
			}
			return Value{}, e.errUnknown
		}
		ri := int(gr.rep0[g])
		if e.col.src == 1 {
			ri = int(gr.rep1[g])
		}
		return vp.cols[e.col.src].cols[e.col.col].value(ri), nil
	default:
		ar := &gr.aggs[e.agg]
		switch ar.kind {
		case aggCountStar:
			return NumVal(float64(gr.sizes[g])), nil
		case aggCount:
			return NumVal(float64(ar.counts[g])), nil
		case aggSum:
			if ar.isErr[g] {
				return Value{}, ar.strErr
			}
			return NumVal(ar.sums[g]), nil
		case aggAvg:
			if ar.isErr[g] {
				return Value{}, ar.strErr
			}
			if ar.counts[g] == 0 {
				return NullVal(), nil
			}
			return NumVal(ar.sums[g] / float64(ar.counts[g])), nil
		default: // min / max
			if !ar.have[g] {
				return NullVal(), nil
			}
			return ar.bestV[g], nil
		}
	}
}
