package engine

import "time"

// This file implements the compiled execution path for FROM clauses that
// contain JOIN steps (INNER/LEFT/RIGHT/FULL ... ON). Join queries bypass the
// comma-join operator pipeline (pipeline.go): the WHERE predicate stays
// monolithic above the joins — pushing it below an outer join would filter
// rows before the padding decision and resurrect NULL-padded rows SQL drops
// — and instead each ON condition is optimized per join level.
//
// The executable specification is the interpreter's joinRows (exec.go):
// levels materialize left to right, candidates scan in table order, LEFT/
// FULL pad in place on an unmatched prefix, RIGHT/FULL append their
// unmatched build rows after the level's matched output with NULL-padded
// prefix frames. The compiled path must match it on rows, row order, and
// error text.
//
// Per level the ON condition runs in one of two modes:
//
//   - hash equi-join, when every ON conjunct is provably error-free and at
//     least one is `a.x = b.y` with the build side bound at this level: the
//     build rows hash once per plan (NULL keys excluded — `=` never matches
//     NULL, but for RIGHT/FULL those rows still surface in the unmatched
//     sweep), probes skip non-matching candidates wholesale, and the
//     remaining pure conjuncts evaluate per bucket row;
//   - filtered nested loop otherwise: the full compiled ON (Kleene AND)
//     evaluates per candidate pair, preserving the interpreter's error
//     order exactly. PrepareUnoptimized always uses this mode.
//
// The purity gate mirrors pipeline.go: under three-valued logic a NULL
// conjunct does not stop AND evaluation, so skipping candidates early is
// only unobservable when every skipped evaluation is error-free.

// planJoin is the compiled join role of one FROM source level.
type planJoin struct {
	typ string // "cross", "inner", "left", "right" or "full"
	on  exprFn // full compiled ON condition; nil for "cross"

	// Hash equi-join decomposition (optimized plans with a pure ON only).
	hash  bool
	probe []exprFn // key exprs over frames bound at earlier levels
	build []exprFn // key exprs over this level's frame alone
	resid []exprFn // remaining pure ON conjuncts, evaluated per bucket row

	// buildCol is the base-table column index when the build key is exactly
	// one bare column — the shape the DB's per-column hash index reproduces
	// bit-for-bit, letting joinHash skip the build; -1 otherwise.
	buildCol int
}

// compileJoins fills pq.joins from the FROM entries. ON conditions compile
// against the prefix scope sources[:i+1]: a reference to a later FROM source
// is an unknown column at level i, exactly as the interpreter's truncated
// frame list resolves it.
func (c *compiler) compileJoins(pq *planQuery, entries []fromEntry, outer *scope) {
	n := len(pq.sources)
	pq.joins = make([]planJoin, n)
	if pq.scans == nil {
		pq.scans = make([]scanState, n)
	}
	for i, en := range entries {
		jn := &pq.joins[i]
		jn.typ = en.typ
		jn.buildCol = -1
		if en.on == nil {
			continue
		}
		pc := &compiler{db: c.db, sc: &scope{sources: pq.sources[:i+1], outer: outer}, deps: c.deps, noPipe: c.noPipe}
		jn.on = pc.compile(en.on)
		if c.noPipe || !pc.conjunctProps(en.on).pure {
			continue
		}
		for _, conj := range flattenAnd(en.on, nil) {
			if probe, build, bf, ok := pc.equiSides(conj); ok && bf == i {
				jn.probe = append(jn.probe, pc.compile(probe))
				jn.build = append(jn.build, pc.compile(build))
				if len(jn.build) == 1 {
					if _, ci, ok := pc.localColumn(build.Label); ok {
						jn.buildCol = ci
					}
				} else {
					jn.buildCol = -1 // composite key: no single-column index fits
				}
				continue
			}
			jn.resid = append(jn.resid, pc.compile(conj))
		}
		jn.hash = len(jn.build) > 0
		if !jn.hash {
			jn.resid = nil // no equi key: the nested loop uses jn.on
		}
	}
}

// joinHash builds (or returns the cached) hash table over a join level's
// build rows. Base-table sources cache across executions like the pipeline's
// build sides; derived tables rebuild per run.
func (pq *planQuery) joinHash(i int, rows [][]Value, metas []frame) (*hashSide, error) {
	cur := make([]frame, i+1)
	cur[i] = metas[i]
	benv := &rowEnv{frames: cur}
	if pq.sources[i].sub == nil {
		st := &pq.scans[i]
		st.buildOnce.Do(func() {
			if ci := pq.joins[i].buildCol; ci >= 0 {
				// rows is exactly the base table's full row list here, so
				// the per-column index is bit-identical to what
				// buildHashSide would produce.
				st.hash = pq.db.hashIndexFor(pq.sources[i].table, ci)
				pq.db.idxHits.Add(1)
				return
			}
			st.hash, st.buildErr = buildHashSide(rows, pq.joins[i].build, i, cur, benv)
		})
		return st.hash, st.buildErr
	}
	return buildHashSide(rows, pq.joins[i].build, i, cur, benv)
}

// runJoin executes the compiled join levels, mirroring joinRows step for
// step, then applies the monolithic WHERE predicate per row in order.
// prof (nil on unprofiled runs) collects one op per level plus hash builds
// and the final WHERE filter.
func (pq *planQuery) runJoin(tables []*Table, outer *rowEnv, prof *Profile) ([]*rowEnv, error) {
	n := len(pq.sources)
	metas := make([]frame, n)
	nullRows := make([][]Value, n)
	for i, ps := range pq.sources {
		metas[i] = frame{alias: ps.alias, cols: ps.cols}
		nr := make([]Value, len(ps.cols))
		for j := range nr {
			nr[j] = NullVal()
		}
		nullRows[i] = nr
	}

	envs := []*rowEnv{{outer: outer}}
	for i := range pq.sources {
		jn := &pq.joins[i]
		rows := tables[i].Rows
		var next []*rowEnv
		extend := func(prefix []frame, row []Value) {
			fr := make([]frame, len(prefix)+1)
			copy(fr, prefix)
			fr[len(prefix)] = frame{alias: metas[i].alias, cols: metas[i].cols, row: row}
			next = append(next, &rowEnv{frames: fr, outer: outer})
		}

		if jn.on == nil { // comma entry: plain cross product step
			var t0 time.Time
			if prof != nil {
				t0 = time.Now()
			}
			for _, env := range envs {
				for _, row := range rows {
					extend(env.frames, row)
				}
			}
			if prof != nil {
				op := "cross"
				if i == 0 {
					op = "scan"
				}
				prof.add(op, metas[i].alias, len(rows), len(next), time.Since(t0))
			}
			envs = next
			continue
		}

		padLeft := jn.typ == "left" || jn.typ == "full"
		var matched []bool
		if jn.typ == "right" || jn.typ == "full" {
			matched = make([]bool, len(rows))
		}
		var hash *hashSide
		if jn.hash {
			var tb time.Time
			if prof != nil {
				tb = time.Now()
			}
			h, err := pq.joinHash(i, rows, metas)
			if err != nil {
				return nil, err
			}
			if prof != nil {
				path := ""
				if jn.buildCol >= 0 && pq.sources[i].sub == nil {
					path = "index(" + pq.sources[i].cols[jn.buildCol] + ")"
				}
				prof.addPath("hash-build", metas[i].alias, path, len(rows), len(h.buckets), time.Since(tb))
			}
			hash = h
		}

		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		cand := &rowEnv{frames: make([]frame, i+1), outer: outer}
		var kb []byte
		for _, env := range envs {
			copy(cand.frames, env.frames)
			cand.frames[i] = metas[i]
			sawMatch := false
			if hash != nil {
				kb = kb[:0]
				nullKey := false
				for _, pf := range jn.probe {
					v, err := pf(cand)
					if err != nil {
						return nil, err
					}
					if v.Null {
						nullKey = true // NULL probe key matches nothing
						break
					}
					kb = appendJoinKey(kb, v)
				}
				if !nullKey {
					if bi, ok := hash.idx[string(kb)]; ok {
						for _, ri := range hash.buckets[bi] {
							cand.frames[i].row = rows[ri]
							pass := true
							for _, rf := range jn.resid {
								v, err := rf(cand)
								if err != nil {
									return nil, err
								}
								if !v.Truthy() {
									pass = false
									break
								}
							}
							if pass {
								sawMatch = true
								if matched != nil {
									matched[ri] = true
								}
								extend(env.frames, rows[ri])
							}
						}
					}
				}
			} else {
				for ri, row := range rows {
					cand.frames[i].row = row
					v, err := jn.on(cand)
					if err != nil {
						return nil, err
					}
					if v.Truthy() {
						sawMatch = true
						if matched != nil {
							matched[ri] = true
						}
						extend(env.frames, row)
					}
				}
			}
			if !sawMatch && padLeft {
				extend(env.frames, nullRows[i])
			}
		}
		if matched != nil {
			pad := make([]frame, i)
			for j := 0; j < i; j++ {
				pad[j] = metas[j]
				pad[j].row = nullRows[j]
			}
			for ri, row := range rows {
				if !matched[ri] {
					extend(pad, row)
				}
			}
		}
		if prof != nil {
			mode := "loop"
			path := ""
			if hash != nil {
				mode = "hash"
				path = "build=" + metas[i].alias
			}
			prof.addPath("join", jn.typ+" "+metas[i].alias+" ("+mode+")", path, len(envs), len(next), time.Since(t0))
		}
		envs = next
	}

	if pq.pred != nil {
		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		var out []*rowEnv
		for _, env := range envs {
			v, err := pq.pred(env)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, env)
			}
		}
		if prof != nil {
			prof.add("filter", "where", len(envs), len(out), time.Since(t0))
		}
		envs = out
	}
	return envs, nil
}
