package engine

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-column access structures, built lazily on first use and cached on the
// DB keyed by table snapshot pointer. Snapshots are immutable (Add/Append
// publish a new *Table), so an entry can never go stale; when a write
// replaces a table's snapshot, only that table's entry is pruned — every
// other table's stats, indexes, and columnar image stay warm. A live Plan
// can never observe a wrong index for the same reason it can never observe
// a wrong table pointer — Exec refuses to run once a referenced table's
// generation moves (Plan.Stale).
//
// Two index kinds, both keyed to agree exactly with the sweep path:
//
//   - hash index: buckets of row indexes keyed by appendJoinKey, the `=`
//     coercion encoding (the number 1 and the string '1' share a bucket,
//     -0 lands on +0). NULL cells are not indexed — `=` never matches NULL.
//     Bucket row lists are ascending, so an equality probe yields candidates
//     already in scan order.
//   - sorted index: the non-null (value, row) pairs ordered by Compare with
//     the row index as tiebreaker. Range probes binary-search the bounds;
//     the chooser only routes here for type-homogeneous columns, where
//     Compare is a total order (see stats.go).

type accessCache struct {
	tables map[*Table]*tableAccess
}

// tableAccess holds one table's lazily-built statistics and indexes. Its
// mutex serializes builds; lookups after the first build are read-only on
// immutable structures.
type tableAccess struct {
	mu     sync.Mutex
	stats  *TableStats
	hash   map[int]*hashSide
	sorted map[int]*sortedIndex

	// Columnar layer (colstore.go): the table's column arrays plus cached
	// whole-column join hashes for the vectorized path. Same lifecycle as
	// the indexes above: built lazily, pruned when the table's snapshot is
	// replaced by a write.
	cols    *tableCols
	numHash map[int]*numHashIndex
	strHash map[int]*strHashIndex
}

// access returns the table snapshot's access slot. Slots are cached only
// for the snapshot currently published under the table's name: a superseded
// snapshot (a plan mid-flight across an Append, or a derived table) gets a
// throwaway slot, so replaced tables can never pin dead index memory.
func (db *DB) access(t *Table) *tableAccess {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.acc == nil {
		db.acc = &accessCache{tables: map[*Table]*tableAccess{}}
	}
	ta := db.acc.tables[t]
	if ta == nil {
		ta = &tableAccess{}
		if db.Tables[strings.ToLower(t.Name)] == t {
			db.acc.tables[t] = ta
		}
	}
	return ta
}

// tableStats returns the table's statistics, computing them on first use.
func (db *DB) tableStats(t *Table) *TableStats {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if ta.stats == nil {
		t0 := time.Now()
		ta.stats = computeStats(t)
		db.statBuilds.Add(1)
		db.observeBuild("stats", time.Since(t0))
	}
	return ta.stats
}

// hashIndexFor returns the table's hash index on column col, building it on
// first use. The result is structurally identical to buildHashSide over the
// table's full row list with the bare column as the only key, which is what
// lets a join build side borrow it bit-for-bit.
func (db *DB) hashIndexFor(t *Table, col int) *hashSide {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if h, ok := ta.hash[col]; ok {
		return h
	}
	t0 := time.Now()
	h := &hashSide{idx: make(map[string]int, len(t.Rows))}
	var kb []byte
	for ri, row := range t.Rows {
		if col >= len(row) || row[col].Null {
			continue
		}
		kb = appendJoinKey(kb[:0], row[col])
		if bi, ok := h.idx[string(kb)]; ok {
			h.buckets[bi] = append(h.buckets[bi], ri)
		} else {
			h.idx[string(kb)] = len(h.buckets)
			h.buckets = append(h.buckets, []int{ri})
		}
	}
	if ta.hash == nil {
		ta.hash = map[int]*hashSide{}
	}
	ta.hash[col] = h
	db.idxBuilds.Add(1)
	db.observeBuild("hash", time.Since(t0))
	return h
}

// rowsFor returns the row indexes whose column value equals v under `=`
// coercion, ascending. v must not be NULL.
func (h *hashSide) rowsFor(v Value) []int {
	var tmp [40]byte
	kb := appendJoinKey(tmp[:0], v)
	if bi, ok := h.idx[string(kb)]; ok {
		return h.buckets[bi]
	}
	return nil
}

// sortedIndex is the Compare-ordered view of one column's non-null cells.
type sortedIndex struct {
	vals []Value
	rows []int
}

func (si *sortedIndex) Len() int { return len(si.vals) }
func (si *sortedIndex) Swap(i, j int) {
	si.vals[i], si.vals[j] = si.vals[j], si.vals[i]
	si.rows[i], si.rows[j] = si.rows[j], si.rows[i]
}
func (si *sortedIndex) Less(i, j int) bool {
	if c := Compare(si.vals[i], si.vals[j]); c != 0 {
		return c < 0
	}
	return si.rows[i] < si.rows[j]
}

// sortedIndexFor returns the table's sorted index on column col, building it
// on first use.
func (db *DB) sortedIndexFor(t *Table, col int) *sortedIndex {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if si, ok := ta.sorted[col]; ok {
		return si
	}
	t0 := time.Now()
	si := &sortedIndex{}
	for ri, row := range t.Rows {
		if col >= len(row) || row[col].Null {
			continue
		}
		si.vals = append(si.vals, row[col])
		si.rows = append(si.rows, ri)
	}
	sort.Sort(si)
	if ta.sorted == nil {
		ta.sorted = map[int]*sortedIndex{}
	}
	ta.sorted[col] = si
	db.idxBuilds.Add(1)
	db.observeBuild("sorted", time.Since(t0))
	return si
}

// rangeRows returns the row indexes whose value falls inside the bounds,
// re-sorted into ascending row order — the scan-order contract every access
// path must keep. Binary search over Compare is only valid because the
// chooser restricts range probes to type-homogeneous columns with bounds of
// the column's own type.
func (si *sortedIndex) rangeRows(lo Value, hasLo, loExcl bool, hi Value, hasHi, hiExcl bool) []int {
	start := 0
	if hasLo {
		start = sort.Search(len(si.vals), func(k int) bool {
			c := Compare(si.vals[k], lo)
			if loExcl {
				return c > 0
			}
			return c >= 0
		})
	}
	end := len(si.vals)
	if hasHi {
		end = sort.Search(len(si.vals), func(k int) bool {
			c := Compare(si.vals[k], hi)
			if hiExcl {
				return c >= 0
			}
			return c > 0
		})
	}
	if end <= start {
		return nil
	}
	out := append([]int(nil), si.rows[start:end]...)
	sort.Ints(out)
	return out
}

// IndexCounters is a monotonic snapshot of the DB's access-path activity,
// surfaced through /metrics and the /stats obs object.
type IndexCounters struct {
	Builds      uint64 `json:"builds"`       // hash + sorted index builds
	Hits        uint64 `json:"hits"`         // plans served by an index (scans and join builds)
	StatsBuilds uint64 `json:"stats_builds"` // statistics computations
}

// IndexCounters reads the current counter values.
func (db *DB) IndexCounters() IndexCounters {
	return IndexCounters{
		Builds:      db.idxBuilds.Load(),
		Hits:        db.idxHits.Load(),
		StatsBuilds: db.statBuilds.Load(),
	}
}

// OnIndexBuild registers fn to observe every index/statistics build with its
// kind ("hash", "sorted", "stats") and wall time. Register before serving
// begins; fn runs synchronously on the building goroutine.
func (db *DB) OnIndexBuild(fn func(kind string, d time.Duration)) {
	db.mu.Lock()
	db.buildHook = fn
	db.mu.Unlock()
}

func (db *DB) observeBuild(kind string, d time.Duration) {
	db.mu.Lock()
	fn := db.buildHook
	db.mu.Unlock()
	if fn != nil {
		fn(kind, d)
	}
}
