package engine

import (
	"strings"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

// Failure injection: the engine must reject malformed or unresolved trees
// with errors, never panic.
func TestExecRejectsNonQueryNode(t *testing.T) {
	db := testDB()
	if _, err := Exec(db, dt.Ident("x")); err == nil {
		t.Fatal("non-query node accepted")
	}
	if _, err := Exec(db, nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestExecRejectsUnresolvedChoiceNodes(t *testing.T) {
	// a Difftree containing an ANY must not silently execute
	db := testDB()
	q := sqlparser.MustParse("SELECT p FROM T WHERE a = 1")
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	q.Children[2].Children[0].Children[0] = anyN
	if _, err := Exec(db, q); err == nil {
		t.Fatal("choice node executed as if concrete")
	}
}

func TestExecEmptyTable(t *testing.T) {
	db := NewDB("2020-01-01")
	db.Add(&Table{Name: "empty", Cols: []string{"x"}, Types: []ColType{TNum}})
	res, err := ExecSQL(db, "SELECT x FROM empty WHERE x > 5", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Cols) != 1 {
		t.Fatalf("res = %+v", res)
	}
	// aggregates over the empty table still produce a row
	res, err = ExecSQL(db, "SELECT count(*), sum(x) FROM empty", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 0 {
		t.Fatalf("aggregate over empty = %v", res.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB("2020-01-01")
	db.Add(&Table{
		Name: "n", Cols: []string{"x"}, Types: []ColType{TNum},
		Rows: [][]Value{{NumVal(1)}, {NullVal()}, {NumVal(3)}},
	})
	// NULL never satisfies comparisons
	res, _ := ExecSQL(db, "SELECT x FROM n WHERE x > 0", sqlparser.Parse)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// count(x) skips NULL, count(*) does not
	res, _ = ExecSQL(db, "SELECT count(x), count(*) FROM n", sqlparser.Parse)
	if res.Rows[0][0].Num != 2 || res.Rows[0][1].Num != 3 {
		t.Fatalf("counts = %v", res.Rows[0])
	}
	// avg skips NULL
	res, _ = ExecSQL(db, "SELECT avg(x) FROM n", sqlparser.Parse)
	if res.Rows[0][0].Num != 2 {
		t.Fatalf("avg = %v", res.Rows[0][0])
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	db := testDB()
	res, err := ExecSQL(db, "SELECT 1 / 0 AS x", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Null {
		t.Fatalf("1/0 = %v, want NULL", res.Rows[0][0])
	}
}

func TestDeeplyNestedSubqueries(t *testing.T) {
	db := testDB()
	sql := `SELECT id FROM emp WHERE salary = (
	          SELECT max(salary) FROM emp WHERE dept IN (
	            SELECT name FROM dept WHERE city = 'NYC'))`
	res, err := ExecSQL(db, sql, sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestScalarSubqueryOverEmptyIsNull(t *testing.T) {
	db := testDB()
	res, err := ExecSQL(db, "SELECT id FROM emp WHERE salary > (SELECT max(salary) FROM emp WHERE dept = 'nosuch')", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("comparison against NULL matched rows: %v", res.Rows)
	}
}

func TestAmbiguousColumnPrefersFirstFrame(t *testing.T) {
	// both tables have a column of the same name; unqualified reference
	// resolves to the first FROM entry (documented engine behavior).
	db := NewDB("2020-01-01")
	db.Add(&Table{Name: "l", Cols: []string{"v"}, Types: []ColType{TNum}, Rows: [][]Value{{NumVal(1)}}})
	db.Add(&Table{Name: "r", Cols: []string{"v"}, Types: []ColType{TNum}, Rows: [][]Value{{NumVal(2)}}})
	res, err := ExecSQL(db, "SELECT v FROM l, r", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Num != 1 {
		t.Fatalf("v = %v, want first frame's", res.Rows[0][0])
	}
}

func TestLimitZeroAndOversized(t *testing.T) {
	db := testDB()
	res, _ := ExecSQL(db, "SELECT id FROM emp LIMIT 0", sqlparser.Parse)
	if len(res.Rows) != 0 {
		t.Fatalf("limit 0 = %v", res.Rows)
	}
	res, _ = ExecSQL(db, "SELECT id FROM emp LIMIT 999", sqlparser.Parse)
	if len(res.Rows) != 4 {
		t.Fatalf("oversized limit = %d rows", len(res.Rows))
	}
}

func TestTableStringTruncates(t *testing.T) {
	big := &Table{Name: "big", Cols: []string{"i"}, Types: []ColType{TNum}}
	for i := 0; i < 100; i++ {
		big.Rows = append(big.Rows, []Value{NumVal(float64(i))})
	}
	s := big.String()
	if !strings.Contains(s, "100 rows total") {
		t.Fatalf("String() did not truncate:\n%s", s[:120])
	}
}
