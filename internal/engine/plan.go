package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	dt "pi2/internal/difftree"
)

// Plan is a query compiled once against a DB snapshot: table references are
// resolved to *Table pointers, identifiers are pre-lowercased and (where
// possible) bound to (frame, column) indexes, expressions become closures,
// and the output schema (column names and types) is computed up front.
// Executing a Plan re-walks no AST and re-lowercases no strings.
//
// A Plan records the generation of every table it resolved; Exec refuses to
// run once any of *those* tables has mutated (ErrStalePlan) — writes to
// unrelated tables leave the plan valid. Plans whose query referenced an
// unknown name additionally depend on the table-set fingerprint, so
// registering the missing table invalidates the memoized error. Plans are
// safe for concurrent Exec calls; table snapshots are immutable.
type Plan struct {
	db   *DB
	root *planQuery

	deps    []planDep // tables read, with the generation each resolved at
	setSnap uint64    // table-set fingerprint at prepare (see setDep)
	setDep  bool      // a name failed to resolve: stale once the set changes
}

// planDep is one resolved table dependency. ctr points at the table's live
// generation counter so Stale can poll it without taking db.mu.
type planDep struct {
	name string
	gen  uint64
	ctr  *atomic.Uint64
}

// depTracker accumulates the table dependencies of one compilation. Shared
// by every (sub)compiler of a prepare call.
type depTracker struct {
	deps    []planDep
	missing bool
}

func (d *depTracker) add(name string, ctr *atomic.Uint64, gen uint64) {
	for _, pd := range d.deps {
		if pd.ctr == ctr {
			return
		}
	}
	d.deps = append(d.deps, planDep{name: name, gen: gen, ctr: ctr})
}

// ErrStalePlan is returned by Exec/ExecProfiled when a table the plan reads
// has mutated since Prepare. Callers should re-Prepare and retry.
var ErrStalePlan = errors.New("engine: plan is stale (database mutated since Prepare)")

// Prepare compiles a concrete query AST (no choice nodes) into a Plan. The
// plan executes through the relational operator pipeline: pushed-down scan
// predicates, hash equi-joins, type-tagged grouping keys and a bounded
// top-K heap for ORDER BY + LIMIT (see pipeline.go and ARCHITECTURE.md).
func Prepare(db *DB, q *dt.Node) (*Plan, error) {
	return prepare(db, q, modePipeline)
}

// PrepareUnoptimized compiles like Prepare but disables the operator
// pipeline: the query runs as a filtered cross product with a full stable
// sort, mirroring the interpreter step for step. It exists so equivalence
// tests and benchmarks can pit the pipeline against its reference behavior.
func PrepareUnoptimized(db *DB, q *dt.Node) (*Plan, error) {
	return prepare(db, q, modeNoPipe)
}

// prepareForceIndex compiles like Prepare but makes the access-path chooser
// take an index whenever one is semantically legal, ignoring the cost
// thresholds. Test-only: it lets small fixture tables exercise the index
// paths the cost model reserves for large ones.
func prepareForceIndex(db *DB, q *dt.Node) (*Plan, error) {
	return prepare(db, q, modeForceIndex)
}

// prepareForceVec compiles like Prepare but makes the vectorized path skip
// its row-count cost gate — never its eligibility rules, which are semantic.
// Test-only: it lets tiny fixture tables exercise the columnar operators the
// cost gate reserves for large ones.
func prepareForceVec(db *DB, q *dt.Node) (*Plan, error) {
	return prepare(db, q, modeForceVec)
}

// PrepareNoVec compiles like Prepare with the vectorized path disabled
// entirely: the full cost-based row pipeline, nothing columnar. Benchmarks
// (and pi2bench -json) use it as the row-at-a-time comparison point for
// queries the chooser would otherwise vectorize.
func PrepareNoVec(db *DB, q *dt.Node) (*Plan, error) {
	return prepare(db, q, modeNoVec)
}

// prepMode selects how aggressively prepare optimizes.
type prepMode uint8

const (
	modePipeline   prepMode = iota // cost-based pipeline (Prepare)
	modeNoPipe                     // reference behavior (PrepareUnoptimized)
	modeForceIndex                 // pipeline with cost thresholds bypassed
	modeForceVec                   // pipeline with the vectorized size gate bypassed
	modeNoVec                      // pipeline with the vectorized path disabled
)

func prepare(db *DB, q *dt.Node, mode prepMode) (*Plan, error) {
	if q == nil || q.Kind != dt.KindQuery {
		return nil, fmt.Errorf("engine: expected query node, got %v", q)
	}
	// The set fingerprint is snapshotted before any name resolution: if Add
	// registers a table mid-compile, the fingerprint has already moved and
	// the plan reports stale rather than memoizing a torn view.
	setSnap := db.TableSetGeneration()
	deps := &depTracker{}
	c := &compiler{db: db, deps: deps, noPipe: mode == modeNoPipe, force: mode == modeForceIndex,
		vecForce: mode == modeForceVec, noVec: mode == modeNoVec}
	root := c.compileQuery(q, nil)
	return &Plan{db: db, root: root, deps: deps.deps, setSnap: setSnap, setDep: deps.missing}, nil
}

// Exec runs the compiled plan and returns the result table. The returned
// table shares its Cols/Types slices across executions; callers must treat
// results as immutable.
func (p *Plan) Exec() (*Table, error) {
	if p.Stale() {
		return nil, ErrStalePlan
	}
	return p.root.run(nil, nil)
}

// Stale reports whether any table the plan reads has mutated since the plan
// was prepared, which would make its resolved snapshots out of date. Writes
// to tables the plan does not read never stale it. Lock-free: one atomic
// load per dependency.
func (p *Plan) Stale() bool {
	if p.setDep && p.db.TableSetGeneration() != p.setSnap {
		return true
	}
	for i := range p.deps {
		if p.deps[i].ctr.Load() != p.deps[i].gen {
			return true
		}
	}
	return false
}

// Deps returns the tables the plan reads with the generation each resolved
// at — the dependency set result caches attach to memoized tables so a
// write invalidates only the results that actually read the written table.
func (p *Plan) Deps() []TableDep {
	out := make([]TableDep, len(p.deps))
	for i, d := range p.deps {
		out[i] = TableDep{Name: d.name, Gen: d.gen}
	}
	return out
}

// Cols returns the output column names, known without executing.
func (p *Plan) Cols() []string { return p.root.cols }

// Types returns the output column types, known without executing.
func (p *Plan) Types() []ColType { return p.root.types }

// exprFn is a compiled expression: it evaluates against a row (or group)
// environment exactly as evalExpr would evaluate the source AST.
type exprFn func(env *rowEnv) (Value, error)

// planSource is one compiled FROM entry.
type planSource struct {
	alias string   // lowercased alias (or table name)
	cols  []string // lowercased column names, fixed at prepare time
	table *Table   // base table; nil for derived tables
	sub   *planQuery
	meta  *Table // schema used for output naming/typing (original-case cols)
}

// planQuery mirrors execQuery with every per-row decision hoisted to
// prepare time.
type planQuery struct {
	err error // deferred compile error (unknown table, bad table ref)

	// db backs the run-time access-path machinery: index lookups in
	// scanSource and hash-build reuse in buildHash/joinHash.
	db *DB

	sources []*planSource
	pred    exprFn // nil when there is no WHERE clause

	// items holds one compiled closure per select item; a nil entry is a
	// '*' item, which appends every frame's row wholesale at projection
	// time exactly like the interpreter (rows may be ragged in empty-group
	// or derived-table edge cases, so '*' cannot be pre-expanded into
	// per-column accesses).
	items   []exprFn
	hasStar bool

	// joins holds one planJoin per source when the FROM clause contains any
	// JOIN step; nil for comma-only FROMs, which keep the crossFilter /
	// pipeline paths.
	joins   []planJoin
	hasJoin bool

	grouped    bool
	hasGroupBy bool
	groupBy    []exprFn
	having     exprFn

	order     []exprFn
	orderDesc []bool

	limit    int // -1 when absent
	limitErr error
	distinct bool

	// opt gates the optimizations that change *how* (never *what*) the
	// query computes: the operator pipeline and the top-K sink. Cleared by
	// PrepareUnoptimized.
	opt   bool
	pipe  *pipePlan   // nil: no WHERE clause, no sources, or opt disabled
	scans []scanState // per-source scan/build caches (pipeline only)

	// vec is the columnar batch plan when the query falls in the
	// vectorizable class (vec.go); nil keeps the row paths above untouched.
	vec   *vecPlan
	vecst *vecState

	cols  []string
	types []ColType
}

// scope is the compile-time image of the rowEnv chain: one level per query
// nesting, each holding that query's FROM sources.
type scope struct {
	sources []*planSource
	outer   *scope
}

type compiler struct {
	db       *DB
	sc       *scope
	deps     *depTracker // table dependencies of the whole prepare; may be nil
	noPipe   bool        // disable the operator pipeline (PrepareUnoptimized)
	force    bool        // bypass the chooser's cost thresholds (prepareForceIndex)
	vecForce bool        // bypass the vectorized size gate (prepareForceVec)
	noVec    bool        // disable the vectorized path (PrepareNoVec)
}

func (c *compiler) compileQuery(q *dt.Node, outer *scope) *planQuery {
	sel, from, where := q.Children[0], q.Children[1], q.Children[2]
	groupby, having, orderby, limit := q.Children[3], q.Children[4], q.Children[5], q.Children[6]

	pq := &planQuery{db: c.db, limit: -1, distinct: sel.Label == "distinct"}

	// FROM: resolve base tables now; compile derived tables against the
	// enclosing scope (they may be correlated with the outer query but not
	// with their siblings).
	var entries []fromEntry
	if from.Kind == dt.KindFrom {
		var entErr error
		entries, pq.hasJoin, entErr = fromEntries(from)
		if entErr != nil {
			pq.err = entErr
			return pq
		}
		for _, en := range entries {
			src, alias := en.ref.Children[0], en.ref.Children[1]
			ps := &planSource{}
			name := ""
			switch src.Kind {
			case dt.KindIdent:
				t, ctr, gen, ok := c.db.tableRef(src.Label)
				if !ok {
					if pq.err == nil {
						pq.err = fmt.Errorf("engine: unknown table %q", src.Label)
					}
					if c.deps != nil {
						c.deps.missing = true
					}
					t = &Table{}
				} else if c.deps != nil {
					c.deps.add(strings.ToLower(src.Label), ctr, gen)
				}
				ps.table = t
				ps.meta = t
				name = t.Name
			case dt.KindQuery:
				ps.sub = c.compileQuery(src, outer)
				ps.meta = &Table{Cols: ps.sub.cols, Types: ps.sub.types}
			default:
				if pq.err == nil {
					pq.err = fmt.Errorf("engine: bad table ref %v", src)
				}
				ps.meta = &Table{}
			}
			if alias.Kind == dt.KindIdent {
				name = alias.Label
			}
			if name == "" {
				name = fmt.Sprintf("t%d", len(pq.sources))
			}
			ps.alias = strings.ToLower(name)
			ps.cols = make([]string, len(ps.meta.Cols))
			for j, col := range ps.meta.Cols {
				ps.cols[j] = strings.ToLower(col)
			}
			pq.sources = append(pq.sources, ps)
		}
	}
	pq.grouped = groupby.Kind == dt.KindGroupBy || anyAggregate(sel.Children) ||
		(having.Kind == dt.KindHaving && anyAggregate([]*dt.Node{having}))
	pq.hasGroupBy = groupby.Kind == dt.KindGroupBy

	// Expressions compile in this query's scope.
	sc := &scope{sources: pq.sources, outer: outer}
	inner := &compiler{db: c.db, sc: sc, deps: c.deps, noPipe: c.noPipe, force: c.force, vecForce: c.vecForce, noVec: c.noVec}

	pq.opt = !c.noPipe
	if where.Kind == dt.KindWhere {
		if pq.opt && len(pq.sources) >= 1 && !pq.hasJoin {
			// Comma joins and single-source queries: decompose the
			// conjunction into the operator pipeline instead of one
			// monolithic predicate. Single sources gain nothing from
			// pushdown alone, but the decomposition is what lets the
			// cost-based chooser (cost.go) route an equality or range
			// conjunct through a per-column index instead of sweeping the
			// table. JOIN-keyword queries skip the pipeline: WHERE must stay
			// monolithic above outer joins (pushing a predicate below one
			// would resurrect the NULL-padded rows it should have filtered),
			// so it applies post-join, per row in order — see runJoin.
			inner.compilePipe(pq, where.Children[0])
			if len(pq.sources) == 1 && pq.pipe != nil && pq.pipe.access[0].mode == accessFull {
				// The chooser kept the sweep, so decomposition bought
				// nothing: fall back to the monolithic predicate, which
				// filters in place instead of materializing per-row
				// environments through the pipeline.
				pq.pipe = nil
				pq.pred = inner.compile(where.Children[0])
			}
		} else {
			pq.pred = inner.compile(where.Children[0])
		}
	}
	if pq.hasJoin {
		c.compileJoins(pq, entries, outer)
	}
	for _, item := range sel.Children {
		if item.Children[0].Kind == dt.KindStar {
			pq.items = append(pq.items, nil)
			pq.hasStar = true
			continue
		}
		pq.items = append(pq.items, inner.compile(item.Children[0]))
	}
	if pq.hasGroupBy {
		for _, g := range groupby.Children {
			pq.groupBy = append(pq.groupBy, inner.compile(g))
		}
	}
	if having.Kind == dt.KindHaving {
		pq.having = inner.compile(having.Children[0])
	}
	for _, oi := range orderItems(orderby) {
		pq.order = append(pq.order, inner.compile(oi.Children[0]))
		pq.orderDesc = append(pq.orderDesc, oi.Label == "desc")
	}
	if limit.Kind == dt.KindLimit {
		n, err := strconv.Atoi(limit.Label)
		if err != nil {
			pq.limitErr = fmt.Errorf("engine: bad limit %q", limit.Label)
		} else {
			pq.limit = n
		}
	}

	// Vectorized path (vec.go): attach a columnar batch plan when the whole
	// query is recognizably vectorizable; otherwise pq.vec stays nil and the
	// row paths above run untouched.
	var whereExpr *dt.Node
	if where.Kind == dt.KindWhere {
		whereExpr = where.Children[0]
	}
	inner.compileVec(pq, sel, whereExpr, groupby, having, orderby)

	// Output schema, computed once: reuse the interpreter's naming and type
	// inference over pseudo-sources so the result header is bit-identical.
	pseudo := make([]source, len(pq.sources))
	for i, ps := range pq.sources {
		pseudo[i] = source{alias: ps.alias, table: ps.meta}
	}
	pq.cols, _ = outputNames(sel.Children, pseudo)
	expanded := expandItems(sel.Children, pseudo)
	pq.types = make([]ColType, len(pq.cols))
	for i, item := range expanded {
		pq.types[i] = inferColType(c.db, item, pseudo, nil)
	}
	return pq
}

// run executes the compiled query, mirroring execQuery step for step.
//
// prof is nil on every normal execution; ExecProfiled passes a collector
// and each operator then also records rows in/out and wall time. All
// instrumentation is gated on `prof != nil`, so the unprofiled hot path
// pays one branch per operator and takes no timestamps.
func (pq *planQuery) run(outer *rowEnv, prof *Profile) (*Table, error) {
	if pq.err != nil {
		return nil, pq.err
	}

	// 1. FROM: base tables were resolved at prepare time; derived tables
	// execute once per run (they may be correlated with the outer query).
	tables := make([]*Table, len(pq.sources))
	for i, ps := range pq.sources {
		if ps.sub != nil {
			var t0 time.Time
			if prof != nil {
				t0 = time.Now()
			}
			t, err := ps.sub.run(outer, nil)
			if err != nil {
				return nil, err
			}
			if prof != nil {
				prof.add("derived", ps.alias, 0, len(t.Rows), time.Since(t0))
			}
			tables[i] = t
		} else {
			tables[i] = ps.table
		}
	}

	// 2./3. Enumerate surviving rows and project them into the sink, which
	// applies DISTINCT + ORDER BY + LIMIT — via a bounded top-K heap when
	// the plan is optimized and both ORDER BY and LIMIT are present.
	//
	// The vectorized path (vecexec.go) fuses both steps over columnar
	// batches and feeds the identical sink; everything below it (finish,
	// limit, schema) is shared, so both paths produce bit-identical tables.
	var sink rowSink
	pq.initSink(&sink)
	offered := 0
	if pq.vec != nil {
		n, err := pq.runVec(outer, prof, &sink)
		if err != nil {
			return nil, err
		}
		offered = n
	} else if err := pq.runRows(tables, outer, prof, &sink, &offered); err != nil {
		return nil, err
	}

	// 4./5. DISTINCT + ORDER BY resolve in the sink.
	var tFin time.Time
	if prof != nil {
		tFin = time.Now()
	}
	outRows := sink.finish()
	if prof != nil {
		d := time.Since(tFin)
		switch {
		case sink.top != nil:
			prof.add("top-k", fmt.Sprintf("limit %d", pq.limit), offered, len(outRows), d)
		case sink.distinct && len(sink.desc) > 0:
			prof.add("distinct+sort", "", offered, len(outRows), d)
		case sink.distinct:
			prof.add("distinct", "", offered, len(outRows), d)
		case len(sink.desc) > 0:
			prof.add("sort", "", offered, len(outRows), d)
		}
	}

	// 6. LIMIT.
	if pq.limitErr != nil {
		return nil, pq.limitErr
	}
	if pq.limit >= 0 && pq.limit < len(outRows) {
		if prof != nil {
			prof.add("limit", strconv.Itoa(pq.limit), len(outRows), pq.limit, 0)
		}
		outRows = outRows[:pq.limit]
	}

	// 7. Output schema was pre-computed at prepare time.
	return &Table{Cols: pq.cols, Types: pq.types, Rows: outRows}, nil
}

// runRows is the row-at-a-time enumeration + projection half of run: the
// level-by-level join evaluator when the FROM contains JOIN steps, the
// operator pipeline when compiled, and the filtered cross product otherwise
// (no WHERE, no sources, or PrepareUnoptimized), followed by grouped or
// plain projection into the sink.
func (pq *planQuery) runRows(tables []*Table, outer *rowEnv, prof *Profile, sink *rowSink, offeredOut *int) error {
	var rows []*rowEnv
	var err error
	switch {
	case pq.hasJoin:
		rows, err = pq.runJoin(tables, outer, prof)
	case pq.pipe != nil:
		rows, err = pq.runPipe(tables, outer, prof)
	default:
		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		rows, err = pq.crossFilter(tables, outer)
		if prof != nil {
			in := 0
			if len(pq.sources) > 0 {
				in = 1
				for _, t := range tables {
					in *= len(t.Rows)
				}
			}
			prof.add("cross-filter", "", in, len(rows), time.Since(t0))
		}
	}
	if err != nil {
		return err
	}

	offered := 0
	var tProj time.Time
	if pq.grouped {
		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		groups := pq.groupRows(rows)
		if prof != nil {
			prof.add("group", "", len(rows), len(groups), time.Since(t0))
			tProj = time.Now()
		}
		for _, g := range groups {
			genv := &rowEnv{outer: outer, groupRows: g}
			if len(g) > 0 {
				genv.frames = g[0].frames
			} else {
				genv.groupRows = []*rowEnv{} // empty group: count(*)=0
			}
			if pq.having != nil {
				hv, err := pq.having(genv)
				if err != nil {
					return err
				}
				if !hv.Truthy() {
					continue
				}
			}
			row, keys, err := pq.projectRow(genv)
			if err != nil {
				return err
			}
			sink.add(row, keys)
			offered++
		}
		if prof != nil {
			prof.add("project", "", len(groups), offered, time.Since(tProj))
		}
	} else {
		if prof != nil {
			tProj = time.Now()
		}
		for _, env := range rows {
			row, keys, err := pq.projectRow(env)
			if err != nil {
				return err
			}
			sink.add(row, keys)
			offered++
		}
		if prof != nil {
			prof.add("project", "", len(rows), offered, time.Since(tProj))
		}
	}
	*offeredOut = offered
	return nil
}

// crossFilter enumerates the filtered cross product. Unlike the interpreted
// path it evaluates the predicate on a reused probe environment and only
// materializes frames for surviving rows.
func (pq *planQuery) crossFilter(tables []*Table, outer *rowEnv) ([]*rowEnv, error) {
	n := len(pq.sources)
	if n == 0 {
		// SELECT without FROM: a single empty row.
		env := &rowEnv{outer: outer}
		if pq.pred != nil {
			v, err := pq.pred(env)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				return nil, nil
			}
		}
		return []*rowEnv{env}, nil
	}
	cur := make([]frame, n)
	for i, ps := range pq.sources {
		cur[i] = frame{alias: ps.alias, cols: ps.cols}
	}
	probe := &rowEnv{frames: cur, outer: outer}
	var out []*rowEnv
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			if pq.pred != nil {
				v, err := pq.pred(probe)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			keep := make([]frame, n)
			copy(keep, cur)
			out = append(out, &rowEnv{frames: keep, outer: outer})
			return nil
		}
		for _, row := range tables[i].Rows {
			cur[i].row = row
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// groupRows partitions rows into groups by the compiled GROUP BY key in
// first-seen order, using type-tagged keys (a string containing the old
// 0x1f separator, or a number whose text equals a string, can no longer
// merge groups); a key expression that errors groups under NULL exactly
// like the interpreted path.
func (pq *planQuery) groupRows(rows []*rowEnv) [][]*rowEnv {
	idx := map[string]int{}
	var groups [][]*rowEnv
	var buf []byte
	for _, env := range rows {
		buf = buf[:0]
		if pq.hasGroupBy {
			for _, g := range pq.groupBy {
				v, err := g(env)
				if err != nil {
					v = NullVal()
				}
				buf = appendGroupKey(buf, v)
			}
		}
		if gi, ok := idx[string(buf)]; ok {
			groups[gi] = append(groups[gi], env)
		} else {
			idx[string(buf)] = len(groups)
			groups = append(groups, []*rowEnv{env})
		}
	}
	if !pq.hasGroupBy && len(rows) == 0 {
		// aggregate over empty input still yields one (empty) group
		groups = append(groups, nil)
	}
	return groups
}

// projectRow evaluates the compiled select items and order keys. Without a
// '*' item the output row is pre-sized; with one, frames append wholesale
// (mirroring the interpreter, including its ragged rows when a frame's row
// is shorter than the compile-time schema or absent entirely).
func (pq *planQuery) projectRow(env *rowEnv) ([]Value, []Value, error) {
	var row []Value
	if !pq.hasStar {
		row = make([]Value, len(pq.items))
		for i, it := range pq.items {
			v, err := it(env)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		return pq.projectKeys(env, row)
	}
	for _, it := range pq.items {
		if it == nil {
			for _, f := range env.frames {
				row = append(row, f.row...)
			}
			continue
		}
		v, err := it(env)
		if err != nil {
			return nil, nil, err
		}
		row = append(row, v)
	}
	return pq.projectKeys(env, row)
}

func (pq *planQuery) projectKeys(env *rowEnv, row []Value) ([]Value, []Value, error) {
	if len(pq.order) == 0 {
		return row, nil, nil
	}
	keys := make([]Value, len(pq.order))
	for i, of := range pq.order {
		v, err := of(env)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = v
	}
	return row, keys, nil
}

func constFn(v Value) exprFn {
	return func(*rowEnv) (Value, error) { return v, nil }
}

func errFn(err error) exprFn {
	return func(*rowEnv) (Value, error) { return Value{}, err }
}

// compile turns an expression AST into a closure. Compilation itself never
// fails: anything the interpreter would reject at evaluation time (unknown
// column, unknown operator, '*' outside count) compiles to a closure that
// returns the identical error, preserving short-circuit semantics — a
// predicate branch that is never evaluated never errors.
func (c *compiler) compile(e *dt.Node) exprFn {
	switch e.Kind {
	case dt.KindNumber:
		f, err := strconv.ParseFloat(e.Label, 64)
		if err != nil {
			return errFn(fmt.Errorf("engine: bad number %q", e.Label))
		}
		return constFn(NumVal(f))
	case dt.KindString:
		return constFn(StrVal(e.Label))
	case dt.KindIdent:
		return c.compileIdent(e.Label)
	case dt.KindAnd:
		// Kleene AND, mirroring evalExpr: FALSE short-circuits, NULL keeps
		// evaluating (later conjuncts still surface their errors).
		fns := c.compileAll(e.Children)
		return func(env *rowEnv) (Value, error) {
			sawNull := false
			for _, fn := range fns {
				v, err := fn(env)
				if err != nil {
					return Value{}, err
				}
				if v.Null {
					sawNull = true
				} else if !v.Truthy() {
					return BoolVal(false), nil
				}
			}
			if sawNull {
				return NullVal(), nil
			}
			return BoolVal(true), nil
		}
	case dt.KindOr:
		fns := c.compileAll(e.Children)
		return func(env *rowEnv) (Value, error) {
			sawNull := false
			for _, fn := range fns {
				v, err := fn(env)
				if err != nil {
					return Value{}, err
				}
				if v.Null {
					sawNull = true
				} else if v.Truthy() {
					return BoolVal(true), nil
				}
			}
			if sawNull {
				return NullVal(), nil
			}
			return BoolVal(false), nil
		}
	case dt.KindNot:
		fn := c.compile(e.Children[0])
		return func(env *rowEnv) (Value, error) {
			v, err := fn(env)
			if err != nil {
				return Value{}, err
			}
			if v.Null {
				return NullVal(), nil
			}
			return BoolVal(!v.Truthy()), nil
		}
	case dt.KindBinary:
		return c.compileBinary(e)
	case dt.KindBetween:
		vf := c.compile(e.Children[0])
		lof := c.compile(e.Children[1])
		hif := c.compile(e.Children[2])
		return func(env *rowEnv) (Value, error) {
			v, err := vf(env)
			if err != nil {
				return Value{}, err
			}
			lo, err := lof(env)
			if err != nil {
				return Value{}, err
			}
			hi, err := hif(env)
			if err != nil {
				return Value{}, err
			}
			if !v.Null && !lo.Null && Compare(v, lo) < 0 {
				return BoolVal(false), nil
			}
			if !v.Null && !hi.Null && Compare(v, hi) > 0 {
				return BoolVal(false), nil
			}
			if v.Null || lo.Null || hi.Null {
				return NullVal(), nil
			}
			return BoolVal(true), nil
		}
	case dt.KindIn:
		return c.compileIn(e)
	case dt.KindFunc:
		return c.compileFunc(e)
	case dt.KindQuery:
		sub := c.compileQuery(e, c.sc)
		return func(env *rowEnv) (Value, error) {
			t, err := sub.run(env, nil)
			if err != nil {
				return Value{}, err
			}
			if len(t.Rows) == 0 || len(t.Rows[0]) == 0 {
				return NullVal(), nil
			}
			return t.Rows[0][0], nil
		}
	case dt.KindStar:
		return errFn(fmt.Errorf("engine: '*' outside count()"))
	default:
		return errFn(fmt.Errorf("engine: cannot evaluate %v node", e.Kind))
	}
}

func (c *compiler) compileAll(nodes []*dt.Node) []exprFn {
	out := make([]exprFn, len(nodes))
	for i, n := range nodes {
		out[i] = c.compile(n)
	}
	return out
}

// compileIdent resolves a column reference at prepare time. References to
// this query's own sources become direct (frame, column) index accesses;
// correlated (outer) references and unresolvable names fall back to the
// dynamic chain lookup with a pre-lowercased name.
func (c *compiler) compileIdent(name string) exprFn {
	lower := strings.ToLower(name)
	alias, col := "", lower
	if i := strings.IndexByte(lower, '.'); i >= 0 {
		alias, col = lower[:i], lower[i+1:]
	}
	unknown := fmt.Errorf("engine: unknown column %q", name)
	depth := 0
	for sc := c.sc; sc != nil; sc = sc.outer {
		for fi, ps := range sc.sources {
			if alias != "" && ps.alias != alias {
				continue
			}
			for ci, pc := range ps.cols {
				if pc != col {
					continue
				}
				if depth > 0 {
					// Correlated reference: the runtime env chain can pass
					// through group contexts whose frame layout differs, so
					// resolve dynamically (but with the lowering pre-done).
					return func(env *rowEnv) (Value, error) {
						if v, ok := env.lookupLower(lower); ok {
							return v, nil
						}
						return Value{}, unknown
					}
				}
				fi, ci := fi, ci
				return func(env *rowEnv) (Value, error) {
					if len(env.frames) == 0 {
						// Empty-group context (aggregate over no rows): the
						// interpreter's lookup would skip the empty local
						// level and search outward; mirror that.
						if v, ok := env.lookupLower(lower); ok {
							return v, nil
						}
						return Value{}, unknown
					}
					return env.frames[fi].row[ci], nil
				}
			}
		}
		depth++
	}
	return errFn(unknown)
}

func (c *compiler) compileBinary(e *dt.Node) exprFn {
	lf := c.compile(e.Children[0])
	rf := c.compile(e.Children[1])
	switch e.Label {
	case "=", "<>", "<", ">", "<=", ">=":
		var test func(int) bool
		switch e.Label {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "<>":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return func(env *rowEnv) (Value, error) {
			l, r, err := evalPair(lf, rf, env)
			if err != nil {
				return Value{}, err
			}
			if l.Null || r.Null {
				return NullVal(), nil
			}
			return BoolVal(test(Compare(l, r))), nil
		}
	case "+", "-", "*", "/":
		op := e.Label
		return func(env *rowEnv) (Value, error) {
			l, r, err := evalPair(lf, rf, env)
			if err != nil {
				return Value{}, err
			}
			if l.Null || r.Null {
				return NullVal(), nil
			}
			if l.IsStr || r.IsStr {
				return Value{}, fmt.Errorf("engine: arithmetic on string values")
			}
			switch op {
			case "+":
				return NumVal(l.Num + r.Num), nil
			case "-":
				return NumVal(l.Num - r.Num), nil
			case "*":
				return NumVal(l.Num * r.Num), nil
			default:
				if r.Num == 0 {
					return NullVal(), nil
				}
				return NumVal(l.Num / r.Num), nil
			}
		}
	case "like":
		return func(env *rowEnv) (Value, error) {
			l, r, err := evalPair(lf, rf, env)
			if err != nil {
				return Value{}, err
			}
			if l.Null || r.Null {
				return NullVal(), nil
			}
			return BoolVal(likeMatch(l.Text(), r.Text())), nil
		}
	default:
		return errFn(fmt.Errorf("engine: unknown operator %q", e.Label))
	}
}

func evalPair(lf, rf exprFn, env *rowEnv) (Value, Value, error) {
	l, err := lf(env)
	if err != nil {
		return Value{}, Value{}, err
	}
	r, err := rf(env)
	if err != nil {
		return Value{}, Value{}, err
	}
	return l, r, nil
}

func (c *compiler) compileIn(e *dt.Node) exprFn {
	vf := c.compile(e.Children[0])
	negate := e.Label == "not in"
	target := e.Children[1]
	if target.Kind == dt.KindQuery {
		sub := c.compileQuery(target, c.sc)
		return func(env *rowEnv) (Value, error) {
			v, err := vf(env)
			if err != nil {
				return Value{}, err
			}
			t, err := sub.run(env, nil)
			if err != nil {
				return Value{}, err
			}
			var found, sawNull bool
			for _, row := range t.Rows {
				if len(row) == 0 {
					continue
				}
				if EqualVal(v, row[0]) {
					found = true
					break
				}
				if row[0].Null {
					sawNull = true
				}
			}
			return inVerdict(negate, found, sawNull || v.Null), nil
		}
	}
	elems := c.compileAll(target.Children)
	return func(env *rowEnv) (Value, error) {
		v, err := vf(env)
		if err != nil {
			return Value{}, err
		}
		var found, sawNull bool
		for _, ef := range elems {
			cv, err := ef(env)
			if err != nil {
				return Value{}, err
			}
			if EqualVal(v, cv) {
				found = true
				break
			}
			if cv.Null {
				sawNull = true
			}
		}
		return inVerdict(negate, found, sawNull || v.Null), nil
	}
}

func (c *compiler) compileFunc(e *dt.Node) exprFn {
	name := e.Label
	if isAggregate(name) {
		return c.compileAggregate(e)
	}
	switch name {
	case "today":
		db := c.db
		return func(*rowEnv) (Value, error) { return StrVal(db.Now), nil }
	case "date":
		if len(e.Children) != 2 {
			return errFn(fmt.Errorf("engine: date() takes (base, offset)"))
		}
		basef := c.compile(e.Children[0])
		offf := c.compile(e.Children[1])
		return func(env *rowEnv) (Value, error) {
			base, off, err := evalPair(basef, offf, env)
			if err != nil {
				return Value{}, err
			}
			return dateOffset(base.Text(), off.Text())
		}
	case "abs":
		if len(e.Children) == 0 {
			return errFn(fmt.Errorf("engine: %s() takes one argument", name))
		}
		fn := c.compile(e.Children[0])
		return func(env *rowEnv) (Value, error) {
			v, err := fn(env)
			if err != nil {
				return Value{}, err
			}
			if v.Null || v.IsStr {
				return NullVal(), nil
			}
			if v.Num < 0 {
				return NumVal(-v.Num), nil
			}
			return v, nil
		}
	case "round":
		if len(e.Children) == 0 {
			return errFn(fmt.Errorf("engine: %s() takes one argument", name))
		}
		fn := c.compile(e.Children[0])
		return func(env *rowEnv) (Value, error) {
			v, err := fn(env)
			if err != nil {
				return Value{}, err
			}
			if v.Null || v.IsStr {
				return NullVal(), nil
			}
			return NumVal(float64(int64(v.Num + 0.5))), nil
		}
	case "lower", "upper":
		if len(e.Children) == 0 {
			return errFn(fmt.Errorf("engine: %s() takes one argument", name))
		}
		toLower := name == "lower"
		fn := c.compile(e.Children[0])
		return func(env *rowEnv) (Value, error) {
			v, err := fn(env)
			if err != nil {
				return Value{}, err
			}
			if v.Null {
				return NullVal(), nil
			}
			if toLower {
				return StrVal(strings.ToLower(v.Text())), nil
			}
			return StrVal(strings.ToUpper(v.Text())), nil
		}
	default:
		return errFn(fmt.Errorf("engine: unknown function %q", name))
	}
}

func (c *compiler) compileAggregate(e *dt.Node) exprFn {
	name := e.Label
	outsideGroup := fmt.Errorf("engine: aggregate %s() outside grouping context", name)
	star := len(e.Children) == 1 && e.Children[0].Kind == dt.KindStar
	if name == "count" && (star || len(e.Children) == 0) {
		return func(env *rowEnv) (Value, error) {
			if env.groupRows == nil {
				return Value{}, outsideGroup
			}
			return NumVal(float64(len(env.groupRows))), nil
		}
	}
	if len(e.Children) != 1 {
		return func(env *rowEnv) (Value, error) {
			if env.groupRows == nil {
				return Value{}, outsideGroup
			}
			return Value{}, fmt.Errorf("engine: %s() takes one argument", name)
		}
	}
	argFn := c.compile(e.Children[0])
	// forEach streams the non-null argument values of the group; the reused
	// inner env mirrors the interpreter's per-row environment.
	forEach := func(env *rowEnv, visit func(Value) error) error {
		if env.groupRows == nil {
			return outsideGroup
		}
		inner := &rowEnv{outer: env.outer}
		for _, renv := range env.groupRows {
			inner.frames = renv.frames
			v, err := argFn(inner)
			if err != nil {
				return err
			}
			if !v.Null {
				if err := visit(v); err != nil {
					return err
				}
			}
		}
		return nil
	}
	switch name {
	case "count":
		return func(env *rowEnv) (Value, error) {
			n := 0
			if err := forEach(env, func(Value) error { n++; return nil }); err != nil {
				return Value{}, err
			}
			return NumVal(float64(n)), nil
		}
	case "sum", "avg":
		isAvg := name == "avg"
		strErr := fmt.Errorf("engine: %s() over strings", name)
		return func(env *rowEnv) (Value, error) {
			total, n := 0.0, 0
			if err := forEach(env, func(v Value) error {
				if v.IsStr {
					return strErr
				}
				total += v.Num
				n++
				return nil
			}); err != nil {
				return Value{}, err
			}
			if isAvg {
				if n == 0 {
					return NullVal(), nil
				}
				return NumVal(total / float64(n)), nil
			}
			return NumVal(total), nil
		}
	case "min", "max":
		wantLess := name == "min"
		return func(env *rowEnv) (Value, error) {
			var best Value
			have := false
			if err := forEach(env, func(v Value) error {
				if !have {
					best, have = v, true
					return nil
				}
				cmp := Compare(v, best)
				if (wantLess && cmp < 0) || (!wantLess && cmp > 0) {
					best = v
				}
				return nil
			}); err != nil {
				return Value{}, err
			}
			if !have {
				return NullVal(), nil
			}
			return best, nil
		}
	}
	return errFn(fmt.Errorf("engine: unknown aggregate %q", name))
}
