// Package engine is an in-memory SQL execution engine: the "database
// connection" substrate the PI2 paper assumes. It executes the difftree ASTs
// produced by the parser directly, covering the full query surface of the
// paper's workloads: cross joins, derived tables, boolean predicates,
// BETWEEN/IN/LIKE, grouping with aggregates, HAVING with correlated scalar
// subqueries, DISTINCT, ORDER BY, LIMIT, and date arithmetic.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ColType is the storage type of a column.
type ColType uint8

const (
	// TNum is a numeric column (stored as float64).
	TNum ColType = iota
	// TStr is a string column; ISO dates are stored as strings so that
	// lexicographic comparison matches chronological order.
	TStr
)

func (t ColType) String() string {
	if t == TNum {
		return "num"
	}
	return "str"
}

// Value is a single cell. The zero Value is SQL NULL.
type Value struct {
	Null  bool
	IsStr bool
	Num   float64
	Str   string
}

// Num returns a numeric value.
func NumVal(f float64) Value { return Value{Num: f} }

// StrVal returns a string value.
func StrVal(s string) Value { return Value{IsStr: true, Str: s} }

// NullVal returns SQL NULL.
func NullVal() Value { return Value{Null: true} }

// BoolVal encodes booleans as numeric 0/1 (SQL-ish truthiness).
func BoolVal(b bool) Value {
	if b {
		return Value{Num: 1}
	}
	return Value{Num: 0}
}

// Truthy reports whether the value counts as true in a predicate position.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	if v.IsStr {
		return v.Str != ""
	}
	return v.Num != 0
}

// Text renders the value canonically (used for keys, output, and mixed-type
// comparison).
func (v Value) Text() string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsStr:
		return v.Str
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// Compare orders two values: numerics numerically, anything involving a
// string lexicographically by canonical text. NULL sorts before everything.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if !a.IsStr && !b.IsStr {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Text(), b.Text())
}

// EqualVal reports value equality with numeric/string coercion matching
// Compare.
func EqualVal(a, b Value) bool { return !a.Null && !b.Null && Compare(a, b) == 0 }

// Table is a named relation.
type Table struct {
	Name  string
	Cols  []string
	Types []ColType
	Rows  [][]Value
}

// ColIndex returns the index of the (case-insensitive) column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Column returns the values of one column.
func (t *Table) Column(i int) []Value {
	out := make([]Value, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out
}

// String renders the table for debugging and the REPL.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, " | "))
	b.WriteByte('\n')
	for i, row := range t.Rows {
		if i >= 25 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(t.Rows))
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Text()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// DB is a collection of tables plus the fixed "current date" used by
// today(); a fixed clock keeps query results (and therefore interface
// generation) deterministic.
//
// Mutation model: tables are immutable snapshots. Add and Append publish a
// new *Table under db.mu and bump that table's generation counter; readers
// holding a previously-published *Table keep a consistent snapshot for as
// long as they like. Per-table generations (TableGen) let caches invalidate
// only what a write actually touched; the global generation (Generation)
// still moves on every mutation for coarse-grained consumers, and the
// table-set fingerprint (TableSetGeneration) moves only when the set of
// table names changes. See live.go for the append path and the changelog.
type DB struct {
	Tables map[string]*Table
	Now    string // ISO date used by today()

	// gen counts all mutations (Add and Append). Coarse consumers (the
	// mapping layer's per-search exec cache) key on it; fine-grained
	// staleness goes through the per-table counters in gens.
	gen atomic.Uint64

	// setGen counts table-set changes only (Add). Plans that referenced a
	// name that failed to resolve depend on it: registering the missing
	// table later must invalidate the memoized "unknown table" plan.
	setGen atomic.Uint64

	// mu guards the Tables map, the gens/seqs/inval maps, the changelog,
	// and the access cache. Mutations hold it for the whole publish; reads
	// (Table, tableRef, access) hold it only for the lookup. Per-table
	// generation *values* are atomics so Plan.Stale can poll them lock-free.
	mu   sync.Mutex
	gens map[string]*atomic.Uint64 // per-table generation, keyed by lowercased name

	// Changelog state (live.go): ordered append batches with per-table
	// sequence numbers, plus the append counters behind /metrics.
	clog       []ChangeBatch
	seqs       map[string]uint64
	inval      map[string]uint64 // per-table invalidations (snapshot replaced)
	appends    atomic.Uint64
	appendRows atomic.Uint64

	// Access-path state (index.go): lazily-built per-table statistics and
	// per-column indexes, keyed by table snapshot pointer and pruned when a
	// snapshot is replaced, plus the build/hit counters and hook behind
	// /metrics.
	acc *accessCache

	idxBuilds  atomic.Uint64
	idxHits    atomic.Uint64
	statBuilds atomic.Uint64
	buildHook  func(kind string, d time.Duration)

	// Columnar-layer counters (colstore.go / vecexec.go): column-storage
	// builds, processed batches, and total rows across batches. batchHook is
	// an atomic pointer because noteBatch sits on the vectorized hot path —
	// the disabled path is two atomic adds and one nil check, no locks.
	colBuilds atomic.Uint64
	batches   atomic.Uint64
	batchRows atomic.Uint64
	batchHook atomic.Pointer[func(rows int)]
}

// ColumnarCounters is a monotonic snapshot of the columnar layer's activity,
// surfaced through /metrics and the /stats obs object next to IndexCounters.
type ColumnarCounters struct {
	ColumnBuilds uint64 `json:"column_builds"` // per-column storage + columnar hash builds
	Batches      uint64 `json:"batches"`       // vectorized batches processed
	BatchRows    uint64 `json:"batch_rows"`    // total rows across those batches
}

// ColumnarCounters reads the current counter values.
func (db *DB) ColumnarCounters() ColumnarCounters {
	return ColumnarCounters{
		ColumnBuilds: db.colBuilds.Load(),
		Batches:      db.batches.Load(),
		BatchRows:    db.batchRows.Load(),
	}
}

// OnBatch registers fn to observe every vectorized batch with its row count
// (at most batchSize). Register before serving begins; fn runs synchronously
// on the executing goroutine, so it must be cheap and concurrency-safe.
func (db *DB) OnBatch(fn func(rows int)) {
	if fn == nil {
		db.batchHook.Store(nil)
		return
	}
	db.batchHook.Store(&fn)
}

// noteBatch records one processed batch of n rows.
func (db *DB) noteBatch(n int) {
	db.batches.Add(1)
	db.batchRows.Add(uint64(n))
	if fn := db.batchHook.Load(); fn != nil {
		(*fn)(n)
	}
}

// noteBatches records a run of n rows processed as batchSize-row batches.
func (db *DB) noteBatches(n int) {
	for n > batchSize {
		db.noteBatch(batchSize)
		n -= batchSize
	}
	if n > 0 {
		db.noteBatch(n)
	}
}

// NewDB returns an empty database with a fixed clock.
func NewDB(now string) *DB {
	return &DB{Tables: map[string]*Table{}, Now: now}
}

// initLocked lazily creates the mutation-tracking maps, so zero-constructed
// DBs (tests build them with struct literals) work like NewDB ones.
func (db *DB) initLocked() {
	if db.gens == nil {
		db.gens = map[string]*atomic.Uint64{}
	}
	if db.seqs == nil {
		db.seqs = map[string]uint64{}
	}
	if db.inval == nil {
		db.inval = map[string]uint64{}
	}
}

// bumpLocked records a mutation of the table published under key: the
// per-table and global generations move, and if the write replaced an
// existing snapshot, its access-cache entry (stats, indexes, columnar image)
// is dropped — entries for every other table stay warm.
func (db *DB) bumpLocked(key string, old *Table) {
	db.initLocked()
	ctr := db.gens[key]
	if ctr == nil {
		ctr = new(atomic.Uint64)
		db.gens[key] = ctr
	}
	ctr.Add(1)
	db.gen.Add(1)
	if old != nil {
		db.inval[key]++
		if db.acc != nil {
			delete(db.acc.tables, old)
		}
	}
}

// Add registers a table under its lowercased name, bumping its per-table
// generation, the global mutation counter, and the table-set fingerprint.
// Plans and cached results that read the (replaced) name become stale;
// everything else stays valid.
func (db *DB) Add(t *Table) {
	key := strings.ToLower(t.Name)
	db.mu.Lock()
	defer db.mu.Unlock()
	old := db.Tables[key]
	db.Tables[key] = t
	db.bumpLocked(key, old)
	db.setGen.Add(1)
}

// Generation returns the global mutation counter. It changes on every Add
// and Append, so callers can cheaply detect "anything changed"; per-table
// staleness goes through TableGen / Plan.Stale.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// TableSetGeneration returns the table-set fingerprint: it changes only when
// Add registers or replaces a name, never on Append.
func (db *DB) TableSetGeneration() uint64 { return db.setGen.Load() }

// TableGen returns the named table's generation counter (0 if the name has
// never been mutated through Add/Append).
func (db *DB) TableGen(name string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if ctr := db.gens[strings.ToLower(name)]; ctr != nil {
		return ctr.Load()
	}
	return 0
}

// Table looks a table up by case-insensitive name. The returned *Table is an
// immutable snapshot: a later Append publishes a new pointer rather than
// mutating this one, so callers may read it without further locking.
func (db *DB) Table(name string) (*Table, bool) {
	key := strings.ToLower(name)
	db.mu.Lock()
	t, ok := db.Tables[key]
	db.mu.Unlock()
	return t, ok
}

// tableRef resolves a name to its current snapshot together with the
// generation it was read at and the live counter behind it — one atomic
// (snapshot, generation) pair, which is what lets Plan.Stale answer "has
// this exact snapshot been superseded" without locks.
func (db *DB) tableRef(name string) (t *Table, ctr *atomic.Uint64, gen uint64, ok bool) {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok = db.Tables[key]
	if !ok {
		return nil, nil, 0, false
	}
	db.initLocked()
	ctr = db.gens[key]
	if ctr == nil { // table written into the map directly, not via Add
		ctr = new(atomic.Uint64)
		db.gens[key] = ctr
	}
	return t, ctr, ctr.Load(), true
}

// TableDep names one table a plan (or memoized result) depends on, with the
// generation the dependency was resolved at. Names are lowercased.
type TableDep struct {
	Name string
	Gen  uint64
}

// Fresh reports whether every dependency still matches its table's current
// generation — the fine-grained staleness check behind result caches: a
// write to one table leaves results over other tables fresh.
func (db *DB) Fresh(deps []TableDep) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, d := range deps {
		ctr := db.gens[d.Name]
		if ctr == nil {
			if d.Gen != 0 {
				return false
			}
			continue
		}
		if ctr.Load() != d.Gen {
			return false
		}
	}
	return true
}

// TableNames returns the lowercased names of all registered tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	names := make([]string, 0, len(db.Tables))
	for name := range db.Tables {
		names = append(names, name)
	}
	db.mu.Unlock()
	sort.Strings(names)
	return names
}

// InvalidationCount returns how many times the named table's snapshot (and
// with it the table's cached stats/indexes/columnar image) was replaced.
func (db *DB) InvalidationCount(name string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inval[strings.ToLower(name)]
}
