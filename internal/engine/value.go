// Package engine is an in-memory SQL execution engine: the "database
// connection" substrate the PI2 paper assumes. It executes the difftree ASTs
// produced by the parser directly, covering the full query surface of the
// paper's workloads: cross joins, derived tables, boolean predicates,
// BETWEEN/IN/LIKE, grouping with aggregates, HAVING with correlated scalar
// subqueries, DISTINCT, ORDER BY, LIMIT, and date arithmetic.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ColType is the storage type of a column.
type ColType uint8

const (
	// TNum is a numeric column (stored as float64).
	TNum ColType = iota
	// TStr is a string column; ISO dates are stored as strings so that
	// lexicographic comparison matches chronological order.
	TStr
)

func (t ColType) String() string {
	if t == TNum {
		return "num"
	}
	return "str"
}

// Value is a single cell. The zero Value is SQL NULL.
type Value struct {
	Null  bool
	IsStr bool
	Num   float64
	Str   string
}

// Num returns a numeric value.
func NumVal(f float64) Value { return Value{Num: f} }

// StrVal returns a string value.
func StrVal(s string) Value { return Value{IsStr: true, Str: s} }

// NullVal returns SQL NULL.
func NullVal() Value { return Value{Null: true} }

// BoolVal encodes booleans as numeric 0/1 (SQL-ish truthiness).
func BoolVal(b bool) Value {
	if b {
		return Value{Num: 1}
	}
	return Value{Num: 0}
}

// Truthy reports whether the value counts as true in a predicate position.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	if v.IsStr {
		return v.Str != ""
	}
	return v.Num != 0
}

// Text renders the value canonically (used for keys, output, and mixed-type
// comparison).
func (v Value) Text() string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsStr:
		return v.Str
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// Compare orders two values: numerics numerically, anything involving a
// string lexicographically by canonical text. NULL sorts before everything.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if !a.IsStr && !b.IsStr {
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Text(), b.Text())
}

// EqualVal reports value equality with numeric/string coercion matching
// Compare.
func EqualVal(a, b Value) bool { return !a.Null && !b.Null && Compare(a, b) == 0 }

// Table is a named relation.
type Table struct {
	Name  string
	Cols  []string
	Types []ColType
	Rows  [][]Value
}

// ColIndex returns the index of the (case-insensitive) column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Column returns the values of one column.
func (t *Table) Column(i int) []Value {
	out := make([]Value, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out
}

// String renders the table for debugging and the REPL.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, " | "))
	b.WriteByte('\n')
	for i, row := range t.Rows {
		if i >= 25 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(t.Rows))
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.Text()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// DB is a collection of tables plus the fixed "current date" used by
// today(); a fixed clock keeps query results (and therefore interface
// generation) deterministic.
type DB struct {
	Tables map[string]*Table
	Now    string // ISO date used by today()

	// gen counts mutations. Prepared plans and memoized results record the
	// generation they were built at and treat any later mutation as an
	// invalidation signal.
	gen uint64

	// Access-path state (index.go): lazily-built per-table statistics and
	// per-column indexes, keyed by the generation they were built at, plus
	// the build/hit counters and hook behind /metrics.
	mu  sync.Mutex
	acc *accessCache

	idxBuilds  atomic.Uint64
	idxHits    atomic.Uint64
	statBuilds atomic.Uint64
	buildHook  func(kind string, d time.Duration)

	// Columnar-layer counters (colstore.go / vecexec.go): column-storage
	// builds, processed batches, and total rows across batches. batchHook is
	// an atomic pointer because noteBatch sits on the vectorized hot path —
	// the disabled path is two atomic adds and one nil check, no locks.
	colBuilds atomic.Uint64
	batches   atomic.Uint64
	batchRows atomic.Uint64
	batchHook atomic.Pointer[func(rows int)]
}

// ColumnarCounters is a monotonic snapshot of the columnar layer's activity,
// surfaced through /metrics and the /stats obs object next to IndexCounters.
type ColumnarCounters struct {
	ColumnBuilds uint64 `json:"column_builds"` // per-column storage + columnar hash builds
	Batches      uint64 `json:"batches"`       // vectorized batches processed
	BatchRows    uint64 `json:"batch_rows"`    // total rows across those batches
}

// ColumnarCounters reads the current counter values.
func (db *DB) ColumnarCounters() ColumnarCounters {
	return ColumnarCounters{
		ColumnBuilds: db.colBuilds.Load(),
		Batches:      db.batches.Load(),
		BatchRows:    db.batchRows.Load(),
	}
}

// OnBatch registers fn to observe every vectorized batch with its row count
// (at most batchSize). Register before serving begins; fn runs synchronously
// on the executing goroutine, so it must be cheap and concurrency-safe.
func (db *DB) OnBatch(fn func(rows int)) {
	if fn == nil {
		db.batchHook.Store(nil)
		return
	}
	db.batchHook.Store(&fn)
}

// noteBatch records one processed batch of n rows.
func (db *DB) noteBatch(n int) {
	db.batches.Add(1)
	db.batchRows.Add(uint64(n))
	if fn := db.batchHook.Load(); fn != nil {
		(*fn)(n)
	}
}

// noteBatches records a run of n rows processed as batchSize-row batches.
func (db *DB) noteBatches(n int) {
	for n > batchSize {
		db.noteBatch(batchSize)
		n -= batchSize
	}
	if n > 0 {
		db.noteBatch(n)
	}
}

// NewDB returns an empty database with a fixed clock.
func NewDB(now string) *DB {
	return &DB{Tables: map[string]*Table{}, Now: now}
}

// Add registers a table under its lowercased name and bumps the mutation
// generation, invalidating outstanding plans and cached results.
func (db *DB) Add(t *Table) {
	db.gen++
	db.Tables[strings.ToLower(t.Name)] = t
}

// Generation returns the mutation counter. It changes whenever the set of
// tables changes, so callers can cheaply detect staleness.
func (db *DB) Generation() uint64 { return db.gen }

// Table looks a table up by case-insensitive name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.Tables[strings.ToLower(name)]
	return t, ok
}
