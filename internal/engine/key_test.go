package engine

import (
	"testing"

	"pi2/internal/sqlparser"
)

// The old rowKey/groupRows keys joined Value.Text() with a 0x1f separator,
// so two different rows could render to one key. Both collision shapes are
// pinned here, for DISTINCT and for GROUP BY, on the interpreted and the
// planned path (which share the type-tagged encoder in key.go).

// collisionDB holds rows crafted to collide under text keys:
//   - separator smuggling: ("a\x1fb", "c") vs ("a", "b\x1fc") join to the
//     same "a\x1fb\x1fc" text key;
//   - type punning: the number 1 and the string '1' share the text "1".
func collisionDB() *DB {
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "sep",
		Cols:  []string{"x", "y"},
		Types: []ColType{TStr, TStr},
		Rows: [][]Value{
			{StrVal("a\x1fb"), StrVal("c")},
			{StrVal("a"), StrVal("b\x1fc")},
			{StrVal("a\x1fb"), StrVal("c")}, // true duplicate of row 0
		},
	})
	db.Add(&Table{
		Name:  "pun",
		Cols:  []string{"v"},
		Types: []ColType{TStr},
		Rows: [][]Value{
			{NumVal(1)},
			{StrVal("1")},
			{NumVal(1)}, // true duplicate of row 0
			{NullVal()},
			{StrVal("NULL")}, // must not merge with SQL NULL either
		},
	})
	return db
}

// execBoth runs the statement through the interpreter and the pipeline plan
// and asserts they agree on the row count before returning the table.
func execBoth(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	interp, err := Exec(db, ast)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	plan, err := Prepare(db, ast)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	planned, err := plan.Exec()
	if err != nil {
		t.Fatalf("plan exec %q: %v", sql, err)
	}
	if len(interp.Rows) != len(planned.Rows) {
		t.Fatalf("%q: interpreter %d rows, plan %d rows", sql, len(interp.Rows), len(planned.Rows))
	}
	return interp
}

func TestDistinctSeparatorCollision(t *testing.T) {
	res := execBoth(t, collisionDB(), "SELECT DISTINCT x, y FROM sep")
	// Three input rows, one true duplicate: the 0x1f-colliding pair must
	// stay two distinct rows.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2:\n%v", len(res.Rows), res.Rows)
	}
}

func TestGroupBySeparatorCollision(t *testing.T) {
	res := execBoth(t, collisionDB(), "SELECT x, y, count(*) FROM sep GROUP BY x, y")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2:\n%v", len(res.Rows), res.Rows)
	}
	// first-seen order: the duplicated row leads with count 2
	if res.Rows[0][2].Num != 2 || res.Rows[1][2].Num != 1 {
		t.Fatalf("counts = %v", res.Rows)
	}
}

func TestDistinctNumStrCollision(t *testing.T) {
	res := execBoth(t, collisionDB(), "SELECT DISTINCT v FROM pun")
	// num 1, str '1', NULL, str 'NULL' — four distinct values.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].IsStr || res.Rows[1][0].Null || !res.Rows[1][0].IsStr {
		t.Fatalf("first-seen order broken: %v", res.Rows)
	}
}

func TestGroupByNumStrCollision(t *testing.T) {
	res := execBoth(t, collisionDB(), "SELECT v, count(v) FROM pun GROUP BY v")
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4:\n%v", len(res.Rows), res.Rows)
	}
	// the numeric 1 group holds both numeric rows
	if res.Rows[0][0].IsStr || res.Rows[0][1].Num != 2 {
		t.Fatalf("num group = %v", res.Rows[0])
	}
}

// The hash-join key must keep `=`'s coercion even though the group key
// separates types: joining on num 1 = str '1' matches, exactly as the
// nested loop would.
func TestHashJoinKeepsEqualityCoercion(t *testing.T) {
	db := collisionDB()
	db.Add(&Table{
		Name:  "nums",
		Cols:  []string{"k"},
		Types: []ColType{TNum},
		Rows:  [][]Value{{NumVal(1)}, {NumVal(2)}, {NullVal()}},
	})
	res := execBoth(t, db, "SELECT n.k, p.v FROM nums AS n, pun AS p WHERE n.k = p.v")
	// num 1 matches num 1 (twice) and str '1'; NULL matches nothing.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%v", len(res.Rows), res.Rows)
	}
}

// Outer joins share the hash key with inner joins: NULL keys match nothing
// but still surface NULL-padded, and the `=`-coercion (num 1 = str '1',
// -0 = 0) decides matches exactly as the nested loop would.
func TestOuterHashJoinNullAndCoercedKeys(t *testing.T) {
	db := collisionDB()
	db.Add(&Table{
		Name:  "nums",
		Cols:  []string{"k"},
		Types: []ColType{TNum},
		Rows:  [][]Value{{NumVal(1)}, {NumVal(2)}, {NullVal()}},
	})
	checkExecEquivalence(t, db, "SELECT n.k, p.v FROM nums AS n LEFT JOIN pun AS p ON n.k = p.v")
	res := execBoth(t, db, "SELECT n.k, p.v FROM nums AS n LEFT JOIN pun AS p ON n.k = p.v")
	// num 1 matches num 1, str '1', num 1; k=2 and k=NULL pad.
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5:\n%v", len(res.Rows), res.Rows)
	}
	if !res.Rows[3][1].Null || !res.Rows[4][1].Null {
		t.Fatalf("k=2 / k=NULL not padded: %v", res.Rows)
	}

	db.Add(&Table{
		Name:  "zo",
		Cols:  []string{"k", "t"},
		Types: []ColType{TStr, TStr},
		Rows: [][]Value{
			{NumVal(negZero()), StrVal("negzero")},
			{StrVal("1"), StrVal("str1")},
			{StrVal("2.5"), StrVal("str25")},
		},
	})
	checkExecEquivalence(t, db, "SELECT n.k, z.t FROM nums AS n FULL JOIN zo AS z ON n.k = z.k")
	full := execBoth(t, db, "SELECT n.k, z.t FROM nums AS n FULL JOIN zo AS z ON n.k = z.k")
	// 1='1' matches, 2 pads, NULL pads; -0 and '2.5' arrive in the
	// unmatched-build sweep. 0 would have matched -0 — pinned by the
	// coercion cases in TestJoinKeyCoercion.
	if len(full.Rows) != 5 {
		t.Fatalf("full rows = %d, want 5:\n%v", len(full.Rows), full.Rows)
	}
}

func TestGroupKeyEncodingPrefixFree(t *testing.T) {
	// Adjacent values cannot bleed into each other: ("ab","c") != ("a","bc").
	a := groupKey(nil, []Value{StrVal("ab"), StrVal("c")})
	b := groupKey(nil, []Value{StrVal("a"), StrVal("bc")})
	if string(a) == string(b) {
		t.Fatal("group key is not prefix-free")
	}
	// NULL, 0, and "" are three different keys.
	n := groupKey(nil, []Value{NullVal()})
	z := groupKey(nil, []Value{NumVal(0)})
	e := groupKey(nil, []Value{StrVal("")})
	if string(n) == string(z) || string(n) == string(e) || string(z) == string(e) {
		t.Fatal("NULL / 0 / empty string keys collide")
	}
}

func TestJoinKeyCoercion(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{NumVal(1), StrVal("1"), true},
		{NumVal(50), StrVal("50.0"), false}, // non-canonical text differs
		{NumVal(0), NumVal(negZero()), true},
		{StrVal("x"), StrVal("x"), true},
		{NumVal(2), NumVal(3), false},
	}
	for _, c := range cases {
		ka := string(appendJoinKey(nil, c.a))
		kb := string(appendJoinKey(nil, c.b))
		if got := ka == kb; got != c.equal {
			t.Errorf("joinKey(%v) == joinKey(%v): got %v, want %v", c.a, c.b, got, c.equal)
		}
		if want := EqualVal(c.a, c.b); want != c.equal {
			t.Errorf("test case out of sync with EqualVal(%v, %v) = %v", c.a, c.b, want)
		}
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
