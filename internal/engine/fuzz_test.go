package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

// FuzzExecEquivalence cross-checks the five execution paths on randomly
// generated queries: the interpreter (the executable specification), the
// unoptimized plan (filtered cross product, full sort), the optimized plan
// (operator pipeline: pushdown, hash joins, tagged keys, top-K), the
// forced-index plan (every semantically legal index path taken, cost model
// bypassed, including the reversed hash-join build side) and the forced-vec
// plan (columnar batch execution with the row-count gate bypassed, so the
// tiny fuzz tables still route through it whenever the query shape is
// vectorizable) must return identical tables — same columns, same types,
// same rows in the same order — or fail with the same error.
//
// Each seed is checked twice: once against the freshly-loaded database and
// once after a seed-derived batch of DB.Append calls, so the equivalence
// contract is pinned before and after writes — the five paths must agree on
// the appended rows exactly as they agree on the loaded ones.
//
// The generator derives everything from one seed, so every corpus entry is
// reproducible; `go test -run Fuzz` replays the seed corpus in CI.
func FuzzExecEquivalence(f *testing.F) {
	for seed := int64(0); seed < 96; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		// A fresh DB per seed: appends below mutate tables, and seeds must
		// stay independent and reproducible in isolation.
		db := testDB()
		r := rand.New(rand.NewSource(seed))
		sql := genQuery(r)
		checkExecEquivalence(t, db, sql)
		genAppends(t, db, r)
		checkExecEquivalence(t, db, sql)
	})
}

// genAppends applies 1-3 random append batches to the generator tables. All
// randomness flows from r, so a seed fully determines the writes.
func genAppends(t *testing.T, db *DB, r *rand.Rand) {
	t.Helper()
	depts := []string{"eng", "ops", "hr"}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		var err error
		switch r.Intn(4) {
		case 0:
			rows := make([][]Value, 1+r.Intn(3))
			for j := range rows {
				rows[j] = []Value{NumVal(float64(r.Intn(5))), NumVal(float64(r.Intn(4))), NumVal(float64(r.Intn(4)))}
				if r.Intn(6) == 0 {
					rows[j][1] = NullVal()
				}
			}
			err = db.Append("T", rows)
		case 1:
			err = db.Append("emp", [][]Value{
				{NumVal(float64(5 + r.Intn(20))), StrVal(depts[r.Intn(len(depts))]), NumVal(float64(60 + r.Intn(80)))},
			})
		case 2:
			err = db.Append("dept", [][]Value{{StrVal(depts[r.Intn(len(depts))]), StrVal("LA")}})
		default:
			err = db.Append("events", [][]Value{
				{StrVal(fmt.Sprintf("2020-12-%02d", 1+r.Intn(28))), NumVal(float64(r.Intn(12)))},
			})
		}
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

// checkExecEquivalence runs one SQL statement through all five paths and
// compares outcomes bit for bit.
func checkExecEquivalence(t *testing.T, db *DB, sql string) {
	t.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("generator produced unparsable SQL %q: %v", sql, err)
	}
	interp, interpErr := Exec(db, ast)

	modes := []struct {
		name string
		prep func(*DB, *dt.Node) (*Plan, error)
	}{
		{"unoptimized plan", PrepareUnoptimized},
		{"pipeline plan", Prepare},
		{"forced-index plan", prepareForceIndex},
		{"vectorized plan", prepareForceVec},
	}
	for _, m := range modes {
		name := m.name
		plan, err := m.prep(db, ast)
		if err != nil {
			t.Fatalf("%s: prepare error %v for %q", name, err, sql)
		}
		got, gotErr := plan.Exec()
		if (interpErr != nil) != (gotErr != nil) {
			t.Fatalf("%s: error mismatch for %q:\n  interpreter: %v\n  plan:        %v",
				name, sql, interpErr, gotErr)
		}
		if interpErr != nil {
			if interpErr.Error() != gotErr.Error() {
				t.Fatalf("%s: error text mismatch for %q:\n  interpreter: %v\n  plan:        %v",
					name, sql, interpErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(interp.Cols, got.Cols) || !reflect.DeepEqual(interp.Types, got.Types) {
			t.Fatalf("%s: header mismatch for %q:\n  interpreter: %v %v\n  plan:        %v %v",
				name, sql, interp.Cols, interp.Types, got.Cols, got.Types)
		}
		if len(interp.Rows) != len(got.Rows) {
			t.Fatalf("%s: row count mismatch for %s: interpreter %d, plan %d",
				name, sql, len(interp.Rows), len(got.Rows))
		}
		for ri := range interp.Rows {
			if !reflect.DeepEqual(interp.Rows[ri], got.Rows[ri]) {
				t.Fatalf("%s: row %d mismatch for %q:\n  interpreter: %v\n  plan:        %v",
					name, ri, sql, interp.Rows[ri], got.Rows[ri])
			}
		}
	}
}

// --- random query generator -------------------------------------------------

// genTable describes one generator-visible table of testDB.
type genTable struct {
	name    string
	numCols []string
	strCols []string
}

var genTables = []genTable{
	{name: "T", numCols: []string{"p", "a", "b"}},
	{name: "emp", numCols: []string{"id", "salary"}, strCols: []string{"dept"}},
	{name: "dept", strCols: []string{"name", "city"}},
	{name: "events", numCols: []string{"n"}, strCols: []string{"day"}},
}

// genStrLits includes values that exist in the data, values that don't, a
// numeric-looking string (exercising the `=` num/str coercion in joins and
// the type-tagged separation in GROUP BY/DISTINCT) and a LIKE pattern.
var genStrLits = []string{"eng", "ops", "NYC", "SF", "nope", "1", "2020-12-15", "e%"}

type genSource struct {
	alias   string
	tbl     genTable
	derived string // non-empty: a derived-table SQL exposing tbl's columns
}

// genQuery builds one random SELECT over testDB's schema. All randomness
// flows from r, so a seed fully determines the query.
func genQuery(r *rand.Rand) string {
	var sb strings.Builder
	nSrc := 1 + r.Intn(3)
	srcs := make([]genSource, nSrc)
	for i := range srcs {
		srcs[i] = genSource{alias: fmt.Sprintf("s%d", i), tbl: genTables[r.Intn(len(genTables))]}
		if r.Intn(5) == 0 {
			// Derived table exposing the same columns, so the rest of the
			// generator needs no special handling.
			cond := ""
			if len(srcs[i].tbl.numCols) > 0 && r.Intn(2) == 0 {
				cond = fmt.Sprintf(" WHERE %s > %d", srcs[i].tbl.numCols[0], r.Intn(40))
			}
			srcs[i].derived = fmt.Sprintf("(SELECT * FROM %s%s)", srcs[i].tbl.name, cond)
		}
	}

	numCol := func(s genSource) (string, bool) {
		if len(s.tbl.numCols) == 0 {
			return "", false
		}
		return s.alias + "." + s.tbl.numCols[r.Intn(len(s.tbl.numCols))], true
	}
	strCol := func(s genSource) (string, bool) {
		if len(s.tbl.strCols) == 0 {
			return "", false
		}
		return s.alias + "." + s.tbl.strCols[r.Intn(len(s.tbl.strCols))], true
	}
	anyCol := func(s genSource) string {
		if c, ok := numCol(s); ok && r.Intn(2) == 0 {
			return c
		}
		if c, ok := strCol(s); ok {
			return c
		}
		c, _ := numCol(s)
		return c
	}
	src := func() genSource { return srcs[r.Intn(len(srcs))] }

	// FROM clause: each source after the first attaches by comma or by a
	// join flavor with a generated ON condition over the bound prefix.
	srcPart := func(i int) string {
		from := srcs[i].tbl.name
		if srcs[i].derived != "" {
			from = srcs[i].derived
		}
		return fmt.Sprintf("%s AS %s", from, srcs[i].alias)
	}
	joinOn := func(i int) string {
		prev, cur := srcs[r.Intn(i)], srcs[i]
		var conds []string
		switch r.Intn(4) {
		case 0, 1: // equi condition (hash-join candidate)
			conds = append(conds, fmt.Sprintf("%s = %s", anyCol(prev), anyCol(cur)))
		case 2: // non-equi cross condition (nested-loop fallback)
			conds = append(conds, fmt.Sprintf("%s <= %s", anyCol(prev), anyCol(cur)))
		default: // build-side-only predicate
			if c, ok := numCol(cur); ok {
				conds = append(conds, fmt.Sprintf("%s > %d", c, r.Intn(100)))
			} else {
				conds = append(conds, fmt.Sprintf("%s = %s", anyCol(prev), anyCol(cur)))
			}
		}
		switch r.Intn(4) {
		case 0: // impure extra conjunct: forces the whole ON residual
			if c, ok := numCol(cur); ok {
				conds = append(conds, fmt.Sprintf("%s + %d < %d", c, r.Intn(5), r.Intn(120)))
			}
		case 1:
			if c, ok := strCol(cur); ok {
				conds = append(conds, fmt.Sprintf("%s LIKE '%s'", c, genStrLits[r.Intn(len(genStrLits))]))
			}
		}
		return strings.Join(conds, " AND ")
	}
	fromSQL := srcPart(0)
	for i := 1; i < nSrc; i++ {
		if r.Intn(5) < 2 {
			fromSQL += ", " + srcPart(i)
			continue
		}
		flavors := []string{"JOIN", "INNER JOIN", "LEFT JOIN", "LEFT OUTER JOIN",
			"RIGHT JOIN", "RIGHT OUTER JOIN", "FULL JOIN", "FULL OUTER JOIN"}
		fromSQL += fmt.Sprintf(" %s %s ON %s", flavors[r.Intn(len(flavors))], srcPart(i), joinOn(i))
	}

	// WHERE conjuncts, mixing pushable, equi-join, hoistable and residual
	// shapes (arithmetic, subqueries) in random order.
	var conjs []string
	for i, n := 0, r.Intn(4); i < n; i++ {
		switch r.Intn(8) {
		case 0: // single-source numeric comparison (pushdown candidate)
			if c, ok := numCol(src()); ok {
				ops := []string{"<", "<=", ">", ">=", "=", "<>"}
				conjs = append(conjs, fmt.Sprintf("%s %s %d", c, ops[r.Intn(len(ops))], r.Intn(120)))
			}
		case 1: // single-source string predicate
			if c, ok := strCol(src()); ok {
				lit := genStrLits[r.Intn(len(genStrLits))]
				if r.Intn(2) == 0 {
					conjs = append(conjs, fmt.Sprintf("%s = '%s'", c, lit))
				} else {
					conjs = append(conjs, fmt.Sprintf("%s LIKE '%s'", c, lit))
				}
			}
		case 2: // BETWEEN (pushdown candidate)
			if c, ok := numCol(src()); ok {
				lo := r.Intn(80)
				conjs = append(conjs, fmt.Sprintf("%s BETWEEN %d AND %d", c, lo, lo+r.Intn(60)))
			}
		case 3: // IN list, sometimes mixing a numeric-text string
			c := anyCol(src())
			conjs = append(conjs, fmt.Sprintf("%s IN (1, 2, '%s')", c, genStrLits[r.Intn(len(genStrLits))]))
		case 4: // equi-join conjunct (hash join candidate), any column types
			if nSrc >= 2 {
				a, b := srcs[r.Intn(nSrc)], srcs[r.Intn(nSrc)]
				conjs = append(conjs, fmt.Sprintf("%s = %s", anyCol(a), anyCol(b)))
			}
		case 5: // arithmetic: impure, must stay residual
			if c, ok := numCol(src()); ok {
				conjs = append(conjs, fmt.Sprintf("%s + %d > %d", c, r.Intn(10), r.Intn(100)))
			}
		case 6: // non-equi cross-source comparison (hoistable step filter)
			if nSrc >= 2 {
				a, b := srcs[0], srcs[nSrc-1]
				conjs = append(conjs, fmt.Sprintf("%s <= %s", anyCol(a), anyCol(b)))
			}
		case 7: // residual shapes: scalar subquery or a date() comparison
			if r.Intn(3) == 0 {
				s := src()
				if c, ok := strCol(s); ok && s.tbl.name == "events" {
					conjs = append(conjs, fmt.Sprintf("%s > date(today(), '-%d days')", c, 5+r.Intn(40)))
					break
				}
			}
			if c, ok := numCol(src()); ok {
				sub := "SELECT max(salary) FROM emp"
				if r.Intn(2) == 0 {
					sub = fmt.Sprintf("SELECT min(n) + %d FROM events", r.Intn(50))
				}
				conjs = append(conjs, fmt.Sprintf("%s <= (%s)", c, sub))
			}
		}
	}

	grouped := r.Intn(3) == 0
	sb.WriteString("SELECT ")
	if !grouped && r.Intn(4) == 0 {
		sb.WriteString("DISTINCT ")
	}

	var orderCols []string
	if grouped {
		gsrc := src()
		gcol := anyCol(gsrc)
		aggCol, ok := numCol(gsrc)
		if !ok {
			aggCol = gcol
		}
		aggs := []string{"count(*)", "count(%s)", "sum(%s)", "avg(%s)", "min(%s)", "max(%s)"}
		agg := aggs[r.Intn(len(aggs))]
		if strings.Contains(agg, "%s") {
			agg = fmt.Sprintf(agg, aggCol)
		}
		fmt.Fprintf(&sb, "%s, %s AS m", gcol, agg)
		fmt.Fprintf(&sb, " FROM %s", fromSQL)
		writeWhere(&sb, conjs)
		fmt.Fprintf(&sb, " GROUP BY %s", gcol)
		if r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " HAVING %s >= %d", agg, r.Intn(3))
		}
		orderCols = []string{gcol, agg}
	} else {
		nItems := 1 + r.Intn(2)
		var items []string
		for i := 0; i < nItems; i++ {
			items = append(items, anyCol(src()))
		}
		if r.Intn(5) == 0 {
			items = append(items, "*")
		}
		sb.WriteString(strings.Join(items, ", "))
		fmt.Fprintf(&sb, " FROM %s", fromSQL)
		writeWhere(&sb, conjs)
		orderCols = items[:len(items)-boolToInt(items[len(items)-1] == "*")]
	}

	if len(orderCols) > 0 && r.Intn(2) == 0 {
		oc := orderCols[r.Intn(len(orderCols))]
		dir := ""
		if r.Intn(2) == 0 {
			dir = " DESC"
		}
		fmt.Fprintf(&sb, " ORDER BY %s%s", oc, dir)
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(&sb, " LIMIT %d", r.Intn(8))
	}
	return sb.String()
}

func writeWhere(sb *strings.Builder, conjs []string) {
	if len(conjs) == 0 {
		return
	}
	fmt.Fprintf(sb, " WHERE %s", strings.Join(conjs, " AND "))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestExecEquivalenceSeeds drives the fuzz body over a broad deterministic
// seed range so plain `go test` (and CI without fuzzing) still exercises
// thousands of generated queries.
func TestExecEquivalenceSeeds(t *testing.T) {
	db := testDB()
	n := int64(4000)
	if testing.Short() {
		n = 800
	}
	for seed := int64(0); seed < n; seed++ {
		sql := genQuery(rand.New(rand.NewSource(seed)))
		checkExecEquivalence(t, db, sql)
	}
}

// TestExecEquivalenceAfterAppend replays a deterministic seed range through
// the before/after-write variant of the fuzz body, so plain `go test` also
// covers live-append equivalence without the fuzz engine.
func TestExecEquivalenceAfterAppend(t *testing.T) {
	n := int64(600)
	if testing.Short() {
		n = 150
	}
	for seed := int64(0); seed < n; seed++ {
		db := testDB()
		r := rand.New(rand.NewSource(seed))
		sql := genQuery(r)
		checkExecEquivalence(t, db, sql)
		genAppends(t, db, r)
		checkExecEquivalence(t, db, sql)
	}
}
