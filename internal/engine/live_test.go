package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pi2/internal/sqlparser"
)

func TestAppendBasic(t *testing.T) {
	db := testDB()
	before := len(run(t, db, "SELECT * FROM T").Rows)
	if err := db.Append("T", [][]Value{
		{NumVal(9), NumVal(9), NumVal(9)},
		{NumVal(10), NullVal(), NumVal(1)},
	}); err != nil {
		t.Fatal(err)
	}
	// All execution paths see the appended rows.
	checkExecEquivalence(t, db, "SELECT p, a, b FROM T ORDER BY p, a, b")
	if got := len(run(t, db, "SELECT * FROM T").Rows); got != before+2 {
		t.Fatalf("rows after append = %d, want %d", got, before+2)
	}
	res := run(t, db, "SELECT a FROM T WHERE p = 10")
	if len(res.Rows) != 1 || !res.Rows[0][0].Null {
		t.Fatalf("appended NULL row not visible: %+v", res.Rows)
	}
}

func TestAppendErrors(t *testing.T) {
	db := testDB()
	if err := db.Append("nosuch", [][]Value{{NumVal(1)}}); err == nil {
		t.Fatal("append to unknown table succeeded")
	}
	if err := db.Append("T", [][]Value{{NumVal(1)}}); err == nil {
		t.Fatal("ragged append row accepted")
	}
	if err := db.Append("T", nil); err != nil {
		t.Fatalf("empty append errored: %v", err)
	}
}

func TestAppendGenerations(t *testing.T) {
	db := testDB()
	g := db.Generation()
	set := db.TableSetGeneration()
	tGen, empGen := db.TableGen("T"), db.TableGen("emp")

	if err := db.Append("T", [][]Value{{NumVal(1), NumVal(1), NumVal(1)}}); err != nil {
		t.Fatal(err)
	}
	if db.Generation() != g+1 {
		t.Fatalf("global gen = %d, want %d", db.Generation(), g+1)
	}
	if db.TableGen("T") != tGen+1 {
		t.Fatalf("T gen = %d, want %d", db.TableGen("T"), tGen+1)
	}
	if db.TableGen("emp") != empGen {
		t.Fatalf("emp gen moved on write to T: %d -> %d", empGen, db.TableGen("emp"))
	}
	if db.TableSetGeneration() != set {
		t.Fatalf("set fingerprint moved on Append: %d -> %d", set, db.TableSetGeneration())
	}
	db.Add(&Table{Name: "brandnew", Cols: []string{"x"}, Types: []ColType{TNum}})
	if db.TableSetGeneration() != set+1 {
		t.Fatalf("set fingerprint did not move on Add: %d", db.TableSetGeneration())
	}
}

func TestPlanStalePerTable(t *testing.T) {
	db := testDB()
	planT := planFor(t, db, "SELECT p FROM T", Prepare)
	planEmp := planFor(t, db, "SELECT id FROM emp", Prepare)

	if err := db.Append("T", [][]Value{{NumVal(1), NumVal(2), NumVal(3)}}); err != nil {
		t.Fatal(err)
	}
	if !planT.Stale() {
		t.Fatal("plan over written table not stale")
	}
	if _, err := planT.Exec(); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("Exec err = %v, want ErrStalePlan", err)
	}
	if _, _, err := planT.ExecProfiled(); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("ExecProfiled err = %v, want ErrStalePlan", err)
	}
	if planEmp.Stale() {
		t.Fatal("plan over unrelated table staled by write to T")
	}
	if _, err := planEmp.Exec(); err != nil {
		t.Fatal(err)
	}

	// The stale error text is unchanged from the coarse-generation era.
	_, err := planT.Exec()
	if err == nil || err.Error() != "engine: plan is stale (database mutated since Prepare)" {
		t.Fatalf("stale error text changed: %v", err)
	}
}

func TestUnknownTablePlanStalesOnAdd(t *testing.T) {
	db := testDB()
	plan := planFor(t, db, "SELECT x FROM ghost", Prepare)
	if _, err := plan.Exec(); err == nil {
		t.Fatal("unknown-table plan executed")
	}
	if plan.Stale() {
		t.Fatal("unknown-table plan stale before any mutation")
	}
	db.Add(&Table{Name: "ghost", Cols: []string{"x"}, Types: []ColType{TNum},
		Rows: [][]Value{{NumVal(1)}}})
	if !plan.Stale() {
		t.Fatal("unknown-table plan not staled by Add of the missing table")
	}
	if res := run(t, db, "SELECT x FROM ghost"); len(res.Rows) != 1 {
		t.Fatalf("fresh plan rows = %d, want 1", len(res.Rows))
	}
}

func TestPlanDeps(t *testing.T) {
	db := testDB()
	plan := planFor(t, db, "SELECT e.id FROM emp AS e, dept AS d WHERE e.dept = d.name", Prepare)
	deps := plan.Deps()
	if len(deps) != 2 {
		t.Fatalf("deps = %+v, want emp and dept", deps)
	}
	if !db.Fresh(deps) {
		t.Fatal("deps not fresh immediately after prepare")
	}
	if err := db.Append("dept", [][]Value{{StrVal("hr"), StrVal("LA")}}); err != nil {
		t.Fatal(err)
	}
	if db.Fresh(deps) {
		t.Fatal("deps fresh after write to dept")
	}
}

func TestChangelog(t *testing.T) {
	db := testDB()
	g0 := db.Generation()
	if db.ChangelogDepth() != 0 {
		t.Fatalf("fresh db changelog depth = %d", db.ChangelogDepth())
	}
	must := func(table string, rows [][]Value) {
		t.Helper()
		if err := db.Append(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	must("T", [][]Value{{NumVal(1), NumVal(1), NumVal(1)}, {NumVal(2), NumVal(2), NumVal(2)}})
	must("emp", [][]Value{{NumVal(9), StrVal("hr"), NumVal(70)}})
	must("T", [][]Value{{NumVal(3), NumVal(3), NumVal(3)}})

	all := db.Changes(g0)
	if len(all) != 3 {
		t.Fatalf("changelog batches = %d, want 3", len(all))
	}
	if all[0].Table != "t" || all[0].Seq != 1 || len(all[0].Rows) != 2 {
		t.Fatalf("batch 0 = %+v", all[0])
	}
	if all[1].Table != "emp" || all[1].Seq != 1 {
		t.Fatalf("batch 1 = %+v", all[1])
	}
	if all[2].Table != "t" || all[2].Seq != 2 {
		t.Fatalf("batch 2 = %+v", all[2])
	}
	if !(all[0].Global < all[1].Global && all[1].Global < all[2].Global) {
		t.Fatalf("batches not globally ordered: %+v", all)
	}

	// Replay from a mid-stream resume point.
	tail := db.Changes(all[1].Global)
	if len(tail) != 1 || tail[0].Seq != 2 {
		t.Fatalf("resume tail = %+v", tail)
	}

	// Replaying the full changelog into a fresh copy reproduces the table.
	replica := testDB()
	for _, b := range db.Changes(0) {
		if err := replica.Append(b.Table, b.Rows); err != nil {
			t.Fatal(err)
		}
	}
	orig, _ := db.Table("T")
	got, _ := replica.Table("T")
	if len(got.Rows) != len(orig.Rows) {
		t.Fatalf("replica rows = %d, want %d", len(got.Rows), len(orig.Rows))
	}

	db.TrimChangelog(all[1].Global)
	if db.ChangelogDepth() != 1 {
		t.Fatalf("depth after trim = %d, want 1", db.ChangelogDepth())
	}
	c := db.AppendCounters()
	if c.Appends != 3 || c.Rows != 4 || c.ChangelogLen != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestEvictionPrecision pins the tentpole contract at the engine layer: a
// write to one table leaves every other table's stats, hash/sorted indexes,
// and columnar image warm (build counters unchanged), and only the written
// table rebuilds.
func TestEvictionPrecision(t *testing.T) {
	db := NewDB("2020-12-31")
	mk := func(name string) *Table {
		tb := &Table{Name: name, Cols: []string{"k", "v"}, Types: []ColType{TNum, TNum}}
		for i := 0; i < 300; i++ {
			tb.Rows = append(tb.Rows, []Value{NumVal(float64(i % 10)), NumVal(float64(i))})
		}
		return tb
	}
	db.Add(mk("covid"))
	db.Add(mk("cars"))

	warm := func(name string) {
		t.Helper()
		tb, _ := db.Table(name)
		db.tableStats(tb)
		db.hashIndexFor(tb, 0)
		db.sortedIndexFor(tb, 0)
		db.columnsFor(tb)
	}
	warm("covid")
	warm("cars")
	before := db.IndexCounters()
	colBefore := db.ColumnarCounters()

	if err := db.Append("covid", [][]Value{{NumVal(1), NumVal(999)}}); err != nil {
		t.Fatal(err)
	}

	// cars stays fully warm: no rebuilds when re-requested.
	warm("cars")
	if c := db.IndexCounters(); c.Builds != before.Builds || c.StatsBuilds != before.StatsBuilds {
		t.Fatalf("write to covid rebuilt cars access paths: before %+v, after %+v", before, c)
	}
	if c := db.ColumnarCounters(); c.ColumnBuilds != colBefore.ColumnBuilds {
		t.Fatalf("write to covid rebuilt cars columns: before %+v, after %+v", colBefore, c)
	}

	// covid rebuilds against the new snapshot.
	warm("covid")
	after := db.IndexCounters()
	if after.Builds != before.Builds+2 || after.StatsBuilds != before.StatsBuilds+1 {
		t.Fatalf("covid did not rebuild exactly its own paths: before %+v, after %+v", before, after)
	}
	if db.InvalidationCount("covid") != 1 || db.InvalidationCount("cars") != 0 {
		t.Fatalf("invalidation counters: covid=%d cars=%d",
			db.InvalidationCount("covid"), db.InvalidationCount("cars"))
	}
}

// TestAppendChurnRace drives concurrent readers over all five execution
// paths while a writer appends — the single-writer/many-reader contract
// under -race. Readers accept ErrStalePlan (and the unknown-table error for
// torn prepare windows) but nothing else; results are not asserted, the
// interleavings are the test.
func TestAppendChurnRace(t *testing.T) {
	db := testDB()
	const readers = 4
	iters := 300
	if testing.Short() {
		iters = 60
	}
	queries := []string{
		"SELECT p, a FROM T WHERE a = 1",
		"SELECT dept, count(*) FROM emp GROUP BY dept",
		"SELECT e.id FROM emp AS e, dept AS d WHERE e.dept = d.name",
		"SELECT day FROM events ORDER BY n DESC LIMIT 2",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := queries[(r+i)%len(queries)]
				ast, err := sqlparser.Parse(sql)
				if err != nil {
					t.Error(err)
					return
				}
				var plan *Plan
				switch i % 4 {
				case 0:
					plan, err = Prepare(db, ast)
				case 1:
					plan, err = PrepareUnoptimized(db, ast)
				case 2:
					plan, err = prepareForceIndex(db, ast)
				default:
					plan, err = prepareForceVec(db, ast)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := plan.Exec(); err != nil && !errors.Is(err, ErrStalePlan) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if _, err := ExecSQL(db, sql, sqlparser.Parse); err != nil {
					t.Errorf("reader %d interpreter: %v", r, err)
					return
				}
			}
		}(r)
	}
	for i := 0; i < iters; i++ {
		var err error
		switch i % 3 {
		case 0:
			err = db.Append("T", [][]Value{{NumVal(float64(i)), NumVal(1), NumVal(2)}})
		case 1:
			err = db.Append("emp", [][]Value{{NumVal(float64(100 + i)), StrVal("eng"), NumVal(50)}})
		default:
			err = db.Append("events", [][]Value{{StrVal(fmt.Sprintf("2021-01-%02d", i%28+1)), NumVal(float64(i))}})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := db.AppendCounters().Appends; got != uint64(iters) {
		t.Fatalf("appends = %d, want %d", got, iters)
	}
}
