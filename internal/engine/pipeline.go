package engine

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	dt "pi2/internal/difftree"
)

// This file implements the relational operator pipeline the compiled plan
// path executes instead of a filtered cross product. At prepare time the
// WHERE conjunction is decomposed and every conjunct is classified:
//
//   - single-source pure conjuncts are pushed down to that source's scan,
//     filtering rows before any join work;
//   - `a.x = b.y` conjuncts over two different sources become hash equi-join
//     keys: the later source (in FROM order) is the build side, the earlier
//     ones probe — FROM order is kept so the output row order is exactly the
//     interpreter's nested-loop order;
//   - other pure multi-source conjuncts are hoisted to the earliest join
//     level that binds all of their sources;
//   - everything else (subqueries, correlated references, arithmetic that
//     can error, and every conjunct after the first possibly-erroring one)
//     stays in the residual chain, evaluated in original conjunct order on
//     fully joined rows.
//
// "Pure" means the conjunct can be proven at prepare time never to return an
// evaluation error. Hoisting is allowed only when *every* conjunct in the
// WHERE is pure: under three-valued logic a NULL conjunct does not stop the
// interpreter's AND evaluation, so dropping a row early (at a scan, hash
// probe, or hoisted filter) skips the evaluation of every later conjunct on
// that row — which is only unobservable when all of those evaluations are
// provably error-free. When any conjunct may error, the whole conjunction
// stays in the residual chain, evaluated in original order with Kleene
// semantics (FALSE stops, NULL continues) exactly like the interpreter.

// pipePlan is the compiled pipeline for one query's FROM/WHERE.
type pipePlan struct {
	scanPreds [][]exprFn   // per source: pushed-down predicates
	steps     []pipeStep   // per source level; steps[0] never joins
	residual  []exprFn     // remaining conjuncts, original order
	access    []scanAccess // per source: chosen access path (cost.go)
	reverse   bool         // two-source hash join builds over source 0
}

// pipeStep describes how source level i combines with the already-joined
// prefix: by hash equi-join when build/probe keys exist, by nested loop
// otherwise, plus any hoisted filters that bind at this level.
type pipeStep struct {
	probe   []exprFn // key exprs over frames bound at earlier levels
	build   []exprFn // key exprs over this level's frame alone
	filters []exprFn // hoisted pure predicates applied once this frame binds

	// buildCol is the base-table column index when the build key is exactly
	// one bare column reference (the shape whose hash table the DB's column
	// index reproduces bit-for-bit); -1 otherwise.
	buildCol int
}

// hashSide is a built hash table over one source's filtered rows: bucket
// lists hold row indexes in scan order so probing emits matches in the same
// order the nested loop would have visited them.
type hashSide struct {
	idx     map[string]int
	buckets [][]int
}

// scanState caches the per-source scan and build work that is invariant
// across executions of one plan: base tables cannot change under a live plan
// (Plan.Exec refuses to run once the DB generation moves), and pushed
// predicates and build keys are pure functions of the scanned row, so the
// filtered row list and the hash table are computed once and shared by every
// subsequent (possibly concurrent) Exec.
type scanState struct {
	scanOnce sync.Once
	rows     [][]Value
	scanErr  error

	buildOnce sync.Once
	hash      *hashSide
	buildErr  error
}

// conjProps is the prepare-time classification of one WHERE conjunct.
type conjProps struct {
	pure   bool   // provably never returns an evaluation error
	frames uint64 // bitmask of this query's own sources referenced
}

func (p conjProps) with(q conjProps) conjProps {
	return conjProps{pure: p.pure && q.pure, frames: p.frames | q.frames}
}

// flattenAnd decomposes nested AND nodes into the ordered conjunct list.
// AND evaluates children left to right with short-circuit, so flattening
// preserves both value and error semantics.
func flattenAnd(e *dt.Node, out []*dt.Node) []*dt.Node {
	if e.Kind == dt.KindAnd {
		for _, c := range e.Children {
			out = flattenAnd(c, out)
		}
		return out
	}
	return append(out, e)
}

// localFrame resolves an identifier against this query's own sources only,
// mirroring compileIdent's resolution order (first matching frame, first
// matching column). ok is false for correlated and unknown names.
func (c *compiler) localFrame(name string) (int, bool) {
	fi, _, ok := c.localColumn(name)
	return fi, ok
}

// localColumn is localFrame plus the resolved column index within the frame.
func (c *compiler) localColumn(name string) (fi, ci int, ok bool) {
	lower := strings.ToLower(name)
	alias, col := "", lower
	if i := strings.IndexByte(lower, '.'); i >= 0 {
		alias, col = lower[:i], lower[i+1:]
	}
	if c.sc == nil {
		return 0, 0, false
	}
	for fi, ps := range c.sc.sources {
		if alias != "" && ps.alias != alias {
			continue
		}
		for ci, pc := range ps.cols {
			if pc == col {
				return fi, ci, true
			}
		}
	}
	return 0, 0, false
}

// conjunctProps classifies an expression: whether it is provably error-free
// and which of this query's sources it reads. Anything not recognized as
// pure — subqueries, correlated references, arithmetic (which errors on
// strings), date(), unknown functions, aggregates — is conservatively
// impure and stays residual.
func (c *compiler) conjunctProps(e *dt.Node) conjProps {
	switch e.Kind {
	case dt.KindNumber:
		_, err := strconv.ParseFloat(e.Label, 64)
		return conjProps{pure: err == nil}
	case dt.KindString:
		return conjProps{pure: true}
	case dt.KindIdent:
		if fi, ok := c.localFrame(e.Label); ok && fi < 64 {
			return conjProps{pure: true, frames: 1 << uint(fi)}
		}
		return conjProps{}
	case dt.KindAnd, dt.KindOr, dt.KindNot:
		return c.allProps(e.Children)
	case dt.KindBinary:
		switch e.Label {
		case "=", "<>", "<", ">", "<=", ">=", "like":
			return c.allProps(e.Children)
		}
		// +,-,*,/ error on string operands; unknown operators always error.
		return conjProps{}
	case dt.KindBetween:
		return c.allProps(e.Children)
	case dt.KindIn:
		if len(e.Children) != 2 || e.Children[1].Kind == dt.KindQuery {
			return conjProps{}
		}
		return c.conjunctProps(e.Children[0]).with(c.allProps(e.Children[1].Children))
	case dt.KindFunc:
		switch e.Label {
		case "today":
			return conjProps{pure: true} // ignores arguments, never errors
		case "abs", "round", "lower", "upper":
			if len(e.Children) == 0 {
				return conjProps{} // arity error at eval time
			}
			return c.allProps(e.Children)
		}
		return conjProps{}
	default:
		return conjProps{}
	}
}

func (c *compiler) allProps(nodes []*dt.Node) conjProps {
	p := conjProps{pure: true}
	for _, n := range nodes {
		p = p.with(c.conjunctProps(n))
	}
	return p
}

// equiSides recognizes an `a.x = b.y` conjunct over two different local
// sources and returns the AST side bound to each: probe references the
// earlier FROM entry, build the later one (the join's build side).
func (c *compiler) equiSides(e *dt.Node) (probe, build *dt.Node, buildFrame int, ok bool) {
	if e.Kind != dt.KindBinary || e.Label != "=" || len(e.Children) != 2 {
		return nil, nil, 0, false
	}
	l, r := e.Children[0], e.Children[1]
	if l.Kind != dt.KindIdent || r.Kind != dt.KindIdent {
		return nil, nil, 0, false
	}
	fl, okl := c.localFrame(l.Label)
	fr, okr := c.localFrame(r.Label)
	if !okl || !okr || fl == fr {
		return nil, nil, 0, false
	}
	if fl < fr {
		return l, r, fr, true
	}
	return r, l, fl, true
}

// compilePipe decomposes the WHERE conjunction into the operator pipeline
// for a query with at least one source. c must be the inner (scoped)
// compiler of the query.
func (c *compiler) compilePipe(pq *planQuery, where *dt.Node) {
	n := len(pq.sources)
	pipe := &pipePlan{
		scanPreds: make([][]exprFn, n),
		steps:     make([]pipeStep, n),
		access:    make([]scanAccess, n),
	}
	for i := range pipe.steps {
		pipe.steps[i].buildCol = -1
	}
	pq.pipe = pipe
	pq.scans = make([]scanState, n)

	conjs := flattenAnd(where, nil)
	allPure := n <= 64
	for _, e := range conjs {
		if !c.conjunctProps(e).pure {
			allPure = false
			break
		}
	}
	cands := make([][]scanAccess, n)
	for _, e := range conjs {
		props := c.conjunctProps(e)
		if !allPure || props.frames == 0 {
			// Constant pure conjuncts are legal to hoist but worthless —
			// they keep their original slot in the residual chain instead.
			pipe.residual = append(pipe.residual, c.compile(e))
			continue
		}
		if bits.OnesCount64(props.frames) == 1 {
			fi := bits.TrailingZeros64(props.frames)
			pipe.scanPreds[fi] = append(pipe.scanPreds[fi], c.compile(e))
			if cand, ok := c.indexCandidate(pq, fi, e); ok {
				cands[fi] = append(cands[fi], cand)
			}
			continue
		}
		if probe, build, bf, ok := c.equiSides(e); ok {
			st := &pipe.steps[bf]
			st.probe = append(st.probe, c.compile(probe))
			st.build = append(st.build, c.compile(build))
			if len(st.build) == 1 {
				if _, ci, ok := c.localColumn(build.Label); ok {
					st.buildCol = ci
				}
			} else {
				st.buildCol = -1 // composite key: no single-column index fits
			}
			continue
		}
		hi := 63 - bits.LeadingZeros64(props.frames)
		pipe.steps[hi].filters = append(pipe.steps[hi].filters, c.compile(e))
	}
	c.chooseAccess(pq, cands)
	c.chooseBuildSide(pq)
}

// scanRows returns source i's rows filtered by its pushed-down predicates.
// For base-table sources the result is computed once per plan and shared
// across executions; derived tables re-filter per run (their rows change
// with the outer environment).
func (pq *planQuery) scanRows(i int, tbl *Table, cur []frame, probe *rowEnv) ([][]Value, error) {
	preds := pq.pipe.scanPreds[i]
	if len(preds) == 0 {
		return tbl.Rows, nil
	}
	cacheable := pq.sources[i].sub == nil
	if cacheable {
		st := &pq.scans[i]
		st.scanOnce.Do(func() {
			st.rows, st.scanErr = pq.scanSource(i, tbl, preds, cur, probe)
		})
		return st.rows, st.scanErr
	}
	// Derived tables never get an index (nothing durable to index), so the
	// access path is always a full sweep here.
	return filterRows(tbl.Rows, preds, i, cur, probe)
}

// scanSource runs one base-table scan through its chosen access path. An
// index only narrows the candidate row set — a superset of the matching
// rows, in ascending row order — and then *every* pushed predicate,
// including the one the index served, re-evaluates over the candidates.
// The always-true re-check costs one comparison per candidate and buys a
// hard invariant: an over-approximating index can never change results.
func (pq *planQuery) scanSource(i int, tbl *Table, preds []exprFn, cur []frame, probe *rowEnv) ([][]Value, error) {
	a := pq.pipe.access[i]
	if a.mode == accessFull {
		return filterRows(tbl.Rows, preds, i, cur, probe)
	}
	var idxRows []int
	switch a.mode {
	case accessEq:
		idxRows = pq.db.hashIndexFor(tbl, a.col).rowsFor(a.eqKey)
	case accessRange:
		idxRows = pq.db.sortedIndexFor(tbl, a.col).rangeRows(a.lo, a.hasLo, a.loExcl, a.hi, a.hasHi, a.hiExcl)
	}
	pq.db.idxHits.Add(1)
	cand := make([][]Value, len(idxRows))
	for k, ri := range idxRows {
		cand[k] = tbl.Rows[ri]
	}
	return filterRows(cand, preds, i, cur, probe)
}

func filterRows(rows [][]Value, preds []exprFn, i int, cur []frame, probe *rowEnv) ([][]Value, error) {
	var out [][]Value
	for _, row := range rows {
		cur[i].row = row
		keep := true
		for _, pf := range preds {
			v, err := pf(probe)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// buildHash builds the hash table over source i's filtered rows, keyed by
// the step's build expressions. Rows with a NULL key value are excluded —
// `=` never matches NULL. Cached across executions for base-table sources.
func (pq *planQuery) buildHash(i int, rows [][]Value, cur []frame, probe *rowEnv) (*hashSide, error) {
	cacheable := pq.sources[i].sub == nil
	if cacheable {
		st := &pq.scans[i]
		st.buildOnce.Do(func() {
			if pq.buildReusable(i) {
				// rows is exactly the table's full row list here (no pushed
				// predicates, full access), so the per-column index is
				// bit-identical to what buildHashSide would produce.
				st.hash = pq.db.hashIndexFor(pq.sources[i].table, pq.pipe.steps[i].buildCol)
				pq.db.idxHits.Add(1)
				return
			}
			st.hash, st.buildErr = buildHashSide(rows, pq.pipe.steps[i].build, i, cur, probe)
		})
		return st.hash, st.buildErr
	}
	return buildHashSide(rows, pq.pipe.steps[i].build, i, cur, probe)
}

func buildHashSide(rows [][]Value, keys []exprFn, i int, cur []frame, probe *rowEnv) (*hashSide, error) {
	h := &hashSide{idx: make(map[string]int, len(rows))}
	var kb []byte
	for ri, row := range rows {
		cur[i].row = row
		kb = kb[:0]
		null := false
		for _, kf := range keys {
			v, err := kf(probe)
			if err != nil {
				return nil, err
			}
			if v.Null {
				null = true
				break
			}
			kb = appendJoinKey(kb, v)
		}
		if null {
			continue
		}
		if bi, ok := h.idx[string(kb)]; ok {
			h.buckets[bi] = append(h.buckets[bi], ri)
		} else {
			h.idx[string(kb)] = len(h.buckets)
			h.buckets = append(h.buckets, []int{ri})
		}
	}
	return h, nil
}

// runPipe executes the pipeline and returns the surviving row environments
// in the interpreter's nested-loop enumeration order.
func (pq *planQuery) runPipe(tables []*Table, outer *rowEnv, prof *Profile) ([]*rowEnv, error) {
	n := len(pq.sources)
	cur := make([]frame, n)
	for i, ps := range pq.sources {
		cur[i] = frame{alias: ps.alias, cols: ps.cols}
	}
	probe := &rowEnv{frames: cur, outer: outer}

	// Scan every source once, then build the hash tables of equi-join
	// levels over the filtered rows.
	filtered := make([][][]Value, n)
	hashes := make([]*hashSide, n)
	for i := range pq.sources {
		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		rows, err := pq.scanRows(i, tables[i], cur, probe)
		if err != nil {
			return nil, err
		}
		if prof != nil {
			// Base-table scans cache across executions (scanState), so a
			// warm scan legitimately reports ~0 time.
			prof.addPath("scan", pq.sources[i].alias, pq.pipe.access[i].path(), len(tables[i].Rows), len(rows), time.Since(t0))
		}
		filtered[i] = rows
		// A reversed two-source join builds over source 0 instead; its
		// normal build side is skipped entirely (runPipeReversed).
		if len(pq.pipe.steps[i].build) > 0 && !pq.pipe.reverse {
			if prof != nil {
				t0 = time.Now()
			}
			h, err := pq.buildHash(i, rows, cur, probe)
			if err != nil {
				return nil, err
			}
			if prof != nil {
				path := ""
				if pq.buildReusable(i) {
					path = "index(" + pq.sources[i].cols[pq.pipe.steps[i].buildCol] + ")"
				}
				prof.addPath("hash-build", pq.sources[i].alias, path, len(rows), len(h.buckets), time.Since(t0))
			}
			hashes[i] = h
		}
	}
	if pq.pipe.reverse {
		return pq.runPipeReversed(filtered, cur, probe, outer, prof)
	}

	// joined counts tuples reaching the residual chain; residDur isolates
	// residual evaluation from enumeration time (timed only when profiling).
	joined := 0
	var residDur time.Duration
	profResid := prof != nil && len(pq.pipe.residual) > 0

	var out []*rowEnv
	var kb []byte
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			joined++
			if len(pq.pipe.residual) > 0 {
				var t0 time.Time
				if profResid {
					t0 = time.Now()
				}
				pass, err := residualPass(pq.pipe.residual, probe)
				if profResid {
					residDur += time.Since(t0)
				}
				if err != nil {
					return err
				}
				if !pass {
					return nil
				}
			}
			keep := make([]frame, n)
			copy(keep, cur)
			out = append(out, &rowEnv{frames: keep, outer: outer})
			return nil
		}
		st := &pq.pipe.steps[i]
		if hashes[i] != nil {
			// Hash equi-join: probe with the bound prefix, emit this
			// level's matches in scan order.
			kb = kb[:0]
			for _, pf := range st.probe {
				v, err := pf(probe)
				if err != nil {
					return err
				}
				if v.Null {
					return nil // NULL key matches nothing
				}
				kb = appendJoinKey(kb, v)
			}
			bi, ok := hashes[i].idx[string(kb)]
			if !ok {
				return nil
			}
			for _, ri := range hashes[i].buckets[bi] {
				cur[i].row = filtered[i][ri]
				if err := pq.stepInto(st, probe, i, rec); err != nil {
					return err
				}
			}
			return nil
		}
		for _, row := range filtered[i] {
			cur[i].row = row
			if err := pq.stepInto(st, probe, i, rec); err != nil {
				return err
			}
		}
		return nil
	}
	var tj time.Time
	if prof != nil {
		tj = time.Now()
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if prof != nil {
		modes := make([]string, n)
		var builds []string
		for i := range pq.sources {
			switch {
			case hashes[i] != nil:
				modes[i] = "hash"
				builds = append(builds, pq.sources[i].alias)
			case i == 0:
				modes[i] = "scan"
			default:
				modes[i] = "loop"
			}
		}
		path := ""
		if len(builds) > 0 {
			path = "build=" + strings.Join(builds, ",")
		}
		in := 0
		for _, f := range filtered {
			in += len(f)
		}
		prof.addPath("join", strings.Join(modes, "+"), path, in, joined, time.Since(tj)-residDur)
		if len(pq.pipe.residual) > 0 {
			prof.add("residual", "", joined, len(out), residDur)
		}
	}
	return out, nil
}

// runPipeReversed executes a two-source hash equi-join with the build side
// swapped: the hash table is built over source 0's filtered rows (keyed by
// the step's probe expressions, which read frame 0) and probed once per
// source-1 row. The matching (row0, row1) index pairs are then merged back
// into ascending (row0, row1) order — exactly the nested-loop enumeration
// order — before hoisted filters and the residual chain run, so output order
// and error short-circuit order are untouched by the swap.
func (pq *planQuery) runPipeReversed(filtered [][][]Value, cur []frame, probe *rowEnv, outer *rowEnv, prof *Profile) ([]*rowEnv, error) {
	st := &pq.pipe.steps[1]
	var tb time.Time
	if prof != nil {
		tb = time.Now()
	}
	h, err := buildHashSide(filtered[0], st.probe, 0, cur, probe)
	if err != nil {
		return nil, err
	}
	if prof != nil {
		prof.add("hash-build", pq.sources[0].alias, len(filtered[0]), len(h.buckets), time.Since(tb))
	}

	var tj time.Time
	if prof != nil {
		tj = time.Now()
	}
	type pair struct{ r0, r1 int }
	var pairs []pair
	var kb []byte
	for r1, row := range filtered[1] {
		cur[1].row = row
		kb = kb[:0]
		null := false
		for _, bf := range st.build {
			v, err := bf(probe)
			if err != nil {
				return nil, err
			}
			if v.Null {
				null = true // NULL key matches nothing, same as the probe path
				break
			}
			kb = appendJoinKey(kb, v)
		}
		if null {
			continue
		}
		if bi, ok := h.idx[string(kb)]; ok {
			for _, r0 := range h.buckets[bi] {
				pairs = append(pairs, pair{r0, r1})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].r0 != pairs[b].r0 {
			return pairs[a].r0 < pairs[b].r0
		}
		return pairs[a].r1 < pairs[b].r1
	})

	joined := 0
	var residDur time.Duration
	profResid := prof != nil && len(pq.pipe.residual) > 0
	var out []*rowEnv
	for _, p := range pairs {
		cur[0].row = filtered[0][p.r0]
		cur[1].row = filtered[1][p.r1]
		pass := true
		for _, ff := range st.filters {
			v, err := ff(probe)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		joined++
		if len(pq.pipe.residual) > 0 {
			var t0 time.Time
			if profResid {
				t0 = time.Now()
			}
			rp, err := residualPass(pq.pipe.residual, probe)
			if profResid {
				residDur += time.Since(t0)
			}
			if err != nil {
				return nil, err
			}
			if !rp {
				continue
			}
		}
		keep := make([]frame, 2)
		copy(keep, cur)
		out = append(out, &rowEnv{frames: keep, outer: outer})
	}
	if prof != nil {
		in := len(filtered[0]) + len(filtered[1])
		prof.addPath("join", "hash (reversed)", "build="+pq.sources[0].alias, in, joined, time.Since(tj)-residDur)
		if len(pq.pipe.residual) > 0 {
			prof.add("residual", "", joined, len(out), residDur)
		}
	}
	return out, nil
}

// residualPass evaluates the residual chain with Kleene semantics: FALSE
// drops the row immediately, NULL keeps evaluating (a later impure conjunct
// must still surface its error) and drops the row at the end.
func residualPass(residual []exprFn, probe *rowEnv) (bool, error) {
	sawNull := false
	for _, rf := range residual {
		v, err := rf(probe)
		if err != nil {
			return false, err
		}
		if v.Null {
			sawNull = true
		} else if !v.Truthy() {
			return false, nil
		}
	}
	return !sawNull, nil
}

// stepInto applies a level's hoisted filters to the freshly bound frame and
// descends to the next level when they pass.
func (pq *planQuery) stepInto(st *pipeStep, probe *rowEnv, i int, rec func(int) error) error {
	for _, ff := range st.filters {
		v, err := ff(probe)
		if err != nil {
			return err
		}
		if !v.Truthy() {
			return nil
		}
	}
	return rec(i + 1)
}

// --- output sink: DISTINCT + ORDER BY + LIMIT ------------------------------

// rowSink consumes projected rows and applies DISTINCT, ORDER BY and LIMIT
// with the interpreter's semantics. Two modes:
//
//   - collect (the reference behavior): accumulate everything, dedupe, full
//     stable sort, truncate;
//   - top-K (optimized plans with ORDER BY + LIMIT): a bounded heap keeps
//     only the limit rows, with the input sequence number as tiebreaker so
//     the result equals stable-sort-then-truncate without materializing the
//     full sort.
//
// Both modes still consume *every* projected row — projection and key
// evaluation errors must surface in exactly the interpreter's order.
type rowSink struct {
	distinct bool
	desc     []bool

	// collect mode
	rows [][]Value
	keys [][]Value

	// top-K mode
	top  *topKHeap
	seen map[string]bool
	dbuf []byte
	seq  int
}

// initSink picks top-K mode when the plan is optimized and has both an
// ORDER BY and a valid LIMIT; otherwise collect mode. The sink lives on
// the caller's stack — per-execution heap allocation only happens when
// top-K state is actually needed.
func (pq *planQuery) initSink(s *rowSink) {
	s.distinct = pq.distinct
	s.desc = pq.orderDesc
	if pq.opt && pq.limitErr == nil && pq.limit >= 0 && len(pq.order) > 0 {
		s.top = &topKHeap{k: pq.limit, desc: pq.orderDesc}
		if pq.distinct {
			s.seen = map[string]bool{}
		}
	}
}

func (s *rowSink) add(row, keys []Value) {
	if s.top == nil {
		s.rows = append(s.rows, row)
		s.keys = append(s.keys, keys)
		return
	}
	if s.distinct {
		s.dbuf = groupKey(s.dbuf, row)
		if s.seen[string(s.dbuf)] {
			return
		}
		s.seen[string(s.dbuf)] = true
	}
	s.top.offer(row, keys, s.seq)
	s.seq++
}

// finish produces the final row set.
func (s *rowSink) finish() [][]Value {
	if s.top != nil {
		return s.top.sorted()
	}
	rows, keys := s.rows, s.keys
	if s.distinct {
		rows, keys = distinctRows(rows, keys)
	}
	if len(s.desc) > 0 {
		rows = sortRowsStable(rows, keys, s.desc)
	}
	return rows
}

// compareKeys orders two sort-key tuples under the per-key descending
// flags: negative when a sorts before b.
func compareKeys(a, b []Value, desc []bool) int {
	for i := range a {
		c := Compare(a[i], b[i])
		if c == 0 {
			continue
		}
		if desc[i] {
			return -c
		}
		return c
	}
	return 0
}

// topKHeap is a bounded max-heap over (sort keys, input sequence): the root
// is the entry that sorts last among those kept, so a new row replaces the
// root whenever it sorts earlier. Keeping the sequence number as the final
// tiebreaker makes the order total, which is exactly what a stable sort
// followed by truncation produces.
type topKHeap struct {
	k    int
	desc []bool
	rows [][]Value
	keys [][]Value
	seq  []int
}

// after reports whether entry i sorts after entry j (i is "worse").
func (h *topKHeap) after(i, j int) bool {
	if c := compareKeys(h.keys[i], h.keys[j], h.desc); c != 0 {
		return c > 0
	}
	return h.seq[i] > h.seq[j]
}

func (h *topKHeap) swap(i, j int) {
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
}

func (h *topKHeap) offer(row, keys []Value, seq int) {
	if h.k == 0 {
		return
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, row)
		h.keys = append(h.keys, keys)
		h.seq = append(h.seq, seq)
		// sift up: a child that sorts after its parent bubbles toward the root
		for i := len(h.rows) - 1; i > 0; {
			p := (i - 1) / 2
			if !h.after(i, p) {
				break
			}
			h.swap(i, p)
			i = p
		}
		return
	}
	// Full: the candidate only enters if it sorts before the current worst.
	h.rows = append(h.rows, row)
	h.keys = append(h.keys, keys)
	h.seq = append(h.seq, seq)
	last := len(h.rows) - 1
	if h.after(last, 0) {
		h.rows = h.rows[:last]
		h.keys = h.keys[:last]
		h.seq = h.seq[:last]
		return
	}
	h.swap(0, last)
	h.rows = h.rows[:last]
	h.keys = h.keys[:last]
	h.seq = h.seq[:last]
	// sift down from the root
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.rows) && h.after(l, big) {
			big = l
		}
		if r < len(h.rows) && h.after(r, big) {
			big = r
		}
		if big == i {
			break
		}
		h.swap(i, big)
		i = big
	}
}

// sorted extracts the kept rows in output order.
func (h *topKHeap) sorted() [][]Value {
	idx := make([]int, len(h.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return h.after(idx[b], idx[a]) })
	out := make([][]Value, len(idx))
	for i, j := range idx {
		out[i] = h.rows[j]
	}
	return out
}
