package engine

import (
	"math"
	"strings"
	"testing"

	dt "pi2/internal/difftree"
)

// vecDB builds a database exercising the columnar layer's edge cases:
// NULLs in numeric and string columns, a mixed num/str column (legal
// storage, illegal join key), and signed zeros.
func vecDB() *DB {
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "v",
		Cols:  []string{"x", "y", "s", "m"},
		Types: []ColType{TNum, TNum, TStr, TStr},
		Rows: [][]Value{
			{NumVal(1), NumVal(4), StrVal("alpha"), NumVal(1)},
			{NullVal(), NumVal(2), StrVal("beta"), StrVal("1")},
			{NumVal(3), NullVal(), NullVal(), NumVal(2)},
			{NumVal(7), NumVal(7), StrVal("alef"), StrVal("two")},
			{NullVal(), NullVal(), NullVal(), NullVal()},
			{NumVal(5), NumVal(1), StrVal("gamma"), NumVal(3)},
		},
	})
	db.Add(&Table{
		Name:  "za",
		Cols:  []string{"id", "k"},
		Types: []ColType{TNum, TNum},
		Rows: [][]Value{
			{NumVal(1), NumVal(0)},
			{NumVal(2), NumVal(math.Copysign(0, -1))},
			{NumVal(3), NumVal(4)},
			{NumVal(4), NullVal()},
		},
	})
	db.Add(&Table{
		Name:  "zb",
		Cols:  []string{"id", "k"},
		Types: []ColType{TNum, TNum},
		Rows: [][]Value{
			{NumVal(10), NumVal(math.Copysign(0, -1))},
			{NumVal(11), NumVal(0)},
			{NumVal(12), NumVal(4)},
			{NumVal(13), NumVal(4)},
			{NumVal(14), NullVal()},
		},
	})
	return db
}

// vecPlanFor prepares sql with the size gate bypassed and asserts whether the
// vectorized path engaged.
func vecPlanFor(t *testing.T, db *DB, sql string, wantVec bool) *Plan {
	t.Helper()
	plan := planFor(t, db, sql, prepareForceVec)
	if (plan.root.vec != nil) != wantVec {
		t.Fatalf("vectorized engagement = %v, want %v for %q", plan.root.vec != nil, wantVec, sql)
	}
	return plan
}

// TestVecNullThreeValued checks three-valued logic through the NULL bitmaps:
// every vectorizable predicate shape must drop NULL operands exactly like the
// interpreter's Compare-based row path. checkExecEquivalence compares all
// five execution paths bit for bit; the engagement assertion keeps the test
// from passing vacuously through the row fallback.
func TestVecNullThreeValued(t *testing.T) {
	db := vecDB()
	queries := []string{
		// comparison vs literal, every operator, numeric and string
		"SELECT x FROM v WHERE x > 3",
		"SELECT x FROM v WHERE x >= 3",
		"SELECT x FROM v WHERE x < 5",
		"SELECT x FROM v WHERE x <= 5",
		"SELECT x FROM v WHERE x = 3",
		"SELECT x FROM v WHERE x <> 3",
		"SELECT s FROM v WHERE s > 'alpha'",
		"SELECT s FROM v WHERE s = 'beta'",
		// column-vs-column comparison: NULL on either side drops the row
		"SELECT x, y FROM v WHERE x < y",
		"SELECT x, y FROM v WHERE x = y",
		"SELECT x, y FROM v WHERE x <> y",
		// BETWEEN
		"SELECT x FROM v WHERE x BETWEEN 2 AND 6",
		// LIKE and NOT LIKE over a column with NULLs
		"SELECT s FROM v WHERE s LIKE 'al%'",
		"SELECT s FROM v WHERE s NOT LIKE 'al%'",
		// IN with a mixed-type list
		"SELECT x FROM v WHERE x IN (1, 5, 'alpha')",
		"SELECT m FROM v WHERE m IN (1, 'two')",
		// aggregates over columns with NULLs: count skips, sum/avg skip,
		// min/max skip, empty groups
		"SELECT m, count(x) AS c FROM v GROUP BY m",
		"SELECT m, sum(x) AS c FROM v GROUP BY m",
		"SELECT m, avg(y) AS c FROM v GROUP BY m",
		"SELECT m, min(s) AS c FROM v GROUP BY m",
		"SELECT count(x) AS c, sum(y) AS s2, avg(x) AS a, min(y) AS mn, max(x) AS mx FROM v",
		"SELECT count(x) AS c, sum(x) AS s2, avg(x) AS a, min(x) AS mn FROM v WHERE x > 100",
		// DISTINCT over NULL-bearing projections
		"SELECT DISTINCT y FROM v",
		"SELECT DISTINCT x, s FROM v",
	}
	for _, sql := range queries {
		vecPlanFor(t, db, sql, true)
		checkExecEquivalence(t, db, sql)
	}
}

// TestVecNegZeroJoinKey checks that -0 and +0 hash to the same join bucket on
// the vectorized path (joinKeyBits collapses the sign, matching the row
// path's canonical 'g' text) and that NULL keys never match anything.
func TestVecNegZeroJoinKey(t *testing.T) {
	db := vecDB()
	sql := "SELECT za.id, zb.id FROM za, zb WHERE za.k = zb.k"
	plan := vecPlanFor(t, db, sql, true)
	res, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	// +0 and -0 on both sides: 2x2 zero pairs + 1x2 four pairs = 6; the
	// NULL keys on each side contribute nothing.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6:\n%v", len(res.Rows), res.Rows)
	}
	checkExecEquivalence(t, db, sql)
}

// TestVecMixedKeyFallsBack checks that an equi key over a mixed num/str
// column disqualifies the whole query from the vectorized path (the row hash
// join handles `=` coercion; a vectorized nested loop would be slower) while
// results stay identical through the fallback.
func TestVecMixedKeyFallsBack(t *testing.T) {
	db := vecDB()
	sql := "SELECT v.x, za.id FROM v, za WHERE v.m = za.k"
	vecPlanFor(t, db, sql, false)
	checkExecEquivalence(t, db, sql)

	// A NaN in a key column also disqualifies it: joinKeyBits would key NaN
	// by bit pattern, which cannot express Compare's NaN-equals-any-number
	// degeneracy. (The interpreter and the row hash join already disagree on
	// NaN keys — a pre-existing degeneracy outside this layer's contract —
	// so the check here is only that the vectorized path declines.)
	db.Add(&Table{
		Name:  "zn",
		Cols:  []string{"k"},
		Types: []ColType{TNum},
		Rows:  [][]Value{{NumVal(math.NaN())}, {NumVal(4)}},
	})
	sql = "SELECT za.id FROM za, zn WHERE za.k = zn.k"
	plan := vecPlanFor(t, db, sql, false)
	got, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := planFor(t, db, sql, Prepare).Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("forced-vec fallback diverged from Prepare: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}

// TestVecOrderRestoration checks that vectorized output comes back in scan
// order — probe-major, build rows ascending within a bucket — which is
// exactly the nested-loop order of the unoptimized reference plan, even with
// duplicate keys on both sides and a pushed filter shrinking the probe side.
func TestVecOrderRestoration(t *testing.T) {
	db := vecDB()
	for _, sql := range []string{
		"SELECT za.id, zb.id FROM za, zb WHERE za.k = zb.k",
		"SELECT zb.id, za.id FROM zb, za WHERE zb.k = za.k AND zb.id > 10",
		"SELECT x FROM v WHERE x > 0",
	} {
		vecPlanFor(t, db, sql, true)
		checkExecEquivalence(t, db, sql)
	}
}

// TestVecGenerationInvalidation checks that columnar caches are
// generation-gated like the PR 8 indexes: a mutation stales prepared plans,
// and re-preparing rebuilds column storage (the builds counter grows).
func TestVecGenerationInvalidation(t *testing.T) {
	db := vecDB()
	sql := "SELECT x FROM v WHERE x > 2"
	plan := vecPlanFor(t, db, sql, true)
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	c0 := db.ColumnarCounters()
	if c0.ColumnBuilds == 0 {
		t.Fatal("no column builds recorded after a vectorized execution")
	}
	if c0.Batches == 0 || c0.BatchRows == 0 {
		t.Fatalf("batch counters empty: %+v", c0)
	}

	// Warm re-execution of the same plan reuses the cached selection: no new
	// column builds.
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	if c := db.ColumnarCounters(); c.ColumnBuilds != c0.ColumnBuilds {
		t.Fatalf("warm exec rebuilt columns: %d -> %d", c0.ColumnBuilds, c.ColumnBuilds)
	}

	// Adding an unrelated table is not a mutation of anything this plan
	// reads: it stays fresh and keeps its cached columns.
	db.Add(&Table{Name: "zz", Cols: []string{"q"}, Types: []ColType{TNum},
		Rows: [][]Value{{NumVal(1)}}})
	if _, err := plan.Exec(); err != nil {
		t.Fatalf("plan staled by unrelated table: %v", err)
	}
	if c := db.ColumnarCounters(); c.ColumnBuilds != c0.ColumnBuilds {
		t.Fatalf("unrelated Add rebuilt columns: %d -> %d", c0.ColumnBuilds, c.ColumnBuilds)
	}

	// Mutate the table the plan reads: the old plan must refuse to run, and
	// a fresh plan rebuilds.
	if err := db.Append("v", [][]Value{{NumVal(99), NumVal(1), StrVal("zed"), NumVal(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Exec(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale plan executed, err = %v", err)
	}
	plan = vecPlanFor(t, db, sql, true)
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	if c := db.ColumnarCounters(); c.ColumnBuilds <= c0.ColumnBuilds {
		t.Fatalf("re-prepare after mutation did not rebuild columns: %d -> %d",
			c0.ColumnBuilds, c.ColumnBuilds)
	}
}

// TestVecBatchHook checks OnBatch delivery: every batch row count arrives,
// none exceeds batchSize, and the sum matches the BatchRows counter delta.
func TestVecBatchHook(t *testing.T) {
	db := vecDB()
	var rows int
	db.OnBatch(func(n int) {
		if n <= 0 || n > batchSize {
			t.Errorf("batch hook got %d rows, want 1..%d", n, batchSize)
		}
		rows += n
	})
	before := db.ColumnarCounters()
	plan := vecPlanFor(t, db, "SELECT x FROM v WHERE x > 0", true)
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	after := db.ColumnarCounters()
	if got := after.BatchRows - before.BatchRows; uint64(rows) != got {
		t.Fatalf("hook saw %d rows, counters recorded %d", rows, got)
	}
	if rows == 0 {
		t.Fatal("batch hook never fired")
	}
	db.OnBatch(nil)
}

// TestVecDisabledPathAllocFree pins the cost of the columnar layer when it is
// not in use: counter reads and disabled-hook batch notes allocate nothing,
// and queries the chooser routes to the row pipeline carry no vec plan.
func TestVecDisabledPathAllocFree(t *testing.T) {
	db := vecDB()
	if n := testing.AllocsPerRun(100, func() { db.noteBatch(512) }); n != 0 {
		t.Fatalf("noteBatch with no hook allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = db.ColumnarCounters() }); n != 0 {
		t.Fatalf("ColumnarCounters allocates %v per run", n)
	}
	// Under the default size gate these tables are far below minVecRows, so
	// plain Prepare must leave the vectorized plan off entirely.
	plan := planFor(t, db, "SELECT x FROM v WHERE x > 2", Prepare)
	if plan.root.vec != nil {
		t.Fatal("size gate did not keep a tiny table on the row path")
	}
}

// TestVecProfileAndExplain checks the observability surfaces: EXPLAIN names
// the vectorized operators and EXPLAIN ANALYZE reports batch counts.
func TestVecProfileAndExplain(t *testing.T) {
	db := vecDB()
	plan := vecPlanFor(t, db, "SELECT za.id, zb.id FROM za, zb WHERE za.k = zb.k AND za.id > 0", true)
	s := plan.Explain()
	for _, want := range []string{"vectorized-filter", "vectorized hash build=zb"} {
		if !strings.Contains(s, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, s)
		}
	}
	_, prof, err := plan.ExecProfiled()
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	for _, op := range prof.Ops {
		batches += op.Batches
	}
	if batches == 0 {
		t.Fatalf("profile recorded no batches: %+v", prof.Ops)
	}
	if !strings.Contains(prof.String(), "batches") {
		t.Fatalf("profile table missing batches column:\n%s", prof.String())
	}
}

var _ = dt.Node{} // keep the import pinned for planFor's signature
