package engine

// Table statistics for the cost-based access-path chooser (cost.go). Stats
// are computed in one pass on first use, cached on the DB's generation-gated
// access cache (index.go), and thrown away wholesale when the DB mutates —
// a stale estimate can never survive a DB.Add.
//
// Beyond cardinality estimation the stats carry two *correctness* signals:
//
//   - HasNaN: Compare treats NaN as equal to every number, so a NaN row
//     matches every numeric equality under the sweep path while its join-key
//     encoding ("NaN") matches only another NaN. Predicate index use is
//     disabled on such columns — the sweep is the semantics.
//   - type homogeneity (Nums/Strs): Compare is not transitive across mixed
//     numeric/string values (5 < 10, 10 < '3', '3' < '5'), so a sorted index
//     is only a total order — and range probing only sound — when every
//     non-null value in the column has the same type.

// TableStats summarizes one base table at a DB generation.
type TableStats struct {
	Rows int
	Cols []ColStats
}

// ColStats summarizes one column.
type ColStats struct {
	NDV    int   // distinct non-null values under join-key identity (`=` coercion)
	Nulls  int   // NULL cells
	Nums   int   // non-null numeric cells
	Strs   int   // non-null string cells
	HasNaN bool  // any numeric cell is NaN
	Min    Value // smallest/largest non-null value; valid only when
	Max    Value // Homogeneous() and the column has non-null cells
}

// Homogeneous reports whether every non-null value has one type, which is
// what makes Compare a total order over the column.
func (cs ColStats) Homogeneous() bool { return cs.Nums == 0 || cs.Strs == 0 }

// computeStats scans the table once. Rows shorter than the schema (possible
// in hand-built tables) count missing cells as NULL, matching how a sweep
// would fail to read them only if referenced.
func computeStats(t *Table) *TableStats {
	st := &TableStats{Rows: len(t.Rows), Cols: make([]ColStats, len(t.Cols))}
	var kb []byte
	for ci := range t.Cols {
		cs := &st.Cols[ci]
		distinct := make(map[string]struct{})
		have := false
		for _, row := range t.Rows {
			if ci >= len(row) || row[ci].Null {
				cs.Nulls++
				continue
			}
			v := row[ci]
			if v.IsStr {
				cs.Strs++
			} else {
				cs.Nums++
				if v.Num != v.Num {
					cs.HasNaN = true
				}
			}
			kb = appendJoinKey(kb[:0], v)
			distinct[string(kb)] = struct{}{}
			if !have {
				cs.Min, cs.Max, have = v, v, true
				continue
			}
			// Min/Max are only reported for homogeneous columns, where
			// Compare restricted to the column is a total order.
			if Compare(v, cs.Min) < 0 {
				cs.Min = v
			}
			if Compare(v, cs.Max) > 0 {
				cs.Max = v
			}
		}
		cs.NDV = len(distinct)
	}
	return st
}
