package engine

import (
	"math"
	"time"
)

// Columnar storage: the per-table column arrays behind the vectorized
// execution path (vec.go / vecexec.go). Like the hash and sorted indexes
// (index.go), column arrays are built lazily on first use and cached on the
// DB's snapshot-keyed access cache — a write (Add/Append) publishes a new
// table snapshot and prunes only that table's entry, so a live Plan can
// never observe stale column data for the same reason it can never observe
// a stale table pointer, and a write to one table leaves every other
// table's columnar image warm.
//
// Layout: one colData per column, holding parallel num/str slices plus two
// bitmaps (NULL, is-string). A cell is reconstructed bit-identically to the
// row-store Value it came from; build verifies that every cell is in the
// canonical Value encoding (NullVal/NumVal/StrVal shapes) and that no row is
// shorter than the schema — tables violating either are marked ineligible
// and the planner keeps them on the row path, where the original semantics
// (including the interpreter's panic on ragged direct access) are preserved.

// batchSize is the fixed vectorized batch width: operators walk selections
// in chunks of this many rows, which keeps the working set cache-resident
// and gives the rows-per-batch histogram its natural bucket ceiling.
const batchSize = 1024

// colData is one table column in columnar form.
type colData struct {
	nums  []float64 // numeric cells (zero elsewhere)
	strs  []string  // string cells (empty elsewhere)
	null  []uint64  // bitmap: cell is NULL
	isStr []uint64  // bitmap: cell is a non-null string

	numCells int  // non-null numeric cells
	strCells int  // non-null string cells
	hasNaN   bool // any numeric cell is NaN

	// Small-integer profile, filled during build: allInt means every non-null
	// numeric cell is a finite integral float64 that is not -0 (so raw-bits
	// group identity — ±0 distinct, NaN payloads distinct — coincides with
	// plain int identity), with intMin/intMax bounding the values. The
	// grouped path uses it to replace per-row hashing with a dense array.
	allInt bool
	intMin int64
	intMax int64
}

func bitGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<uint(i&63)) != 0 }
func bitSet(bm []uint64, i int)      { bm[i>>6] |= 1 << uint(i&63) }

func (cd *colData) isNull(i int) bool   { return bitGet(cd.null, i) }
func (cd *colData) isString(i int) bool { return bitGet(cd.isStr, i) }

// allNum reports whether every non-null cell is numeric (NULLs allowed).
func (cd *colData) allNum() bool { return cd.strCells == 0 }

// allStr reports whether every non-null cell is a string (NULLs allowed).
func (cd *colData) allStr() bool { return cd.numCells == 0 }

// value reconstructs the cell at row i, bit-identical to the row-store cell
// (build rejects non-canonical cells, so this cannot lose information).
func (cd *colData) value(i int) Value {
	if cd.isNull(i) {
		return Value{Null: true}
	}
	if cd.isString(i) {
		return Value{IsStr: true, Str: cd.strs[i]}
	}
	return Value{Num: cd.nums[i]}
}

// tableCols is one table's columnar image.
type tableCols struct {
	ok   bool // false: ragged rows or non-canonical cells; vec ineligible
	rows int
	cols []colData
}

// buildTableCols converts a table to columnar form in one pass.
func buildTableCols(t *Table) *tableCols {
	n := len(t.Rows)
	tc := &tableCols{ok: true, rows: n, cols: make([]colData, len(t.Cols))}
	words := (n + 63) / 64
	for ci := range tc.cols {
		cd := &tc.cols[ci]
		cd.nums = make([]float64, n)
		cd.strs = make([]string, n)
		cd.null = make([]uint64, words)
		cd.isStr = make([]uint64, words)
		cd.allInt = true
	}
	for ri, row := range t.Rows {
		if len(row) < len(t.Cols) {
			tc.ok = false // ragged: direct row access would panic; stay row-path
		}
		for ci := range tc.cols {
			if ci >= len(row) {
				bitSet(tc.cols[ci].null, ri)
				continue
			}
			cd := &tc.cols[ci]
			v := row[ci]
			switch {
			case v.Null:
				if v.IsStr || v.Num != 0 || v.Str != "" {
					tc.ok = false // non-canonical NULL: gather could not reproduce it
				}
				bitSet(cd.null, ri)
			case v.IsStr:
				if v.Num != 0 {
					tc.ok = false
				}
				bitSet(cd.isStr, ri)
				cd.strs[ri] = v.Str
				cd.strCells++
			default:
				if v.Str != "" {
					tc.ok = false
				}
				cd.nums[ri] = v.Num
				cd.numCells++
				if v.Num != v.Num {
					cd.hasNaN = true
				}
				if cd.allInt {
					iv := int64(v.Num)
					// Excludes NaN/±Inf/fractions (float64(iv) != v.Num for
					// all of them) and -0 (bits differ from +0).
					if float64(iv) != v.Num || (iv == 0 && math.Signbit(v.Num)) {
						cd.allInt = false
					} else {
						if cd.numCells == 1 || iv < cd.intMin {
							cd.intMin = iv
						}
						if cd.numCells == 1 || iv > cd.intMax {
							cd.intMax = iv
						}
					}
				}
			}
		}
	}
	return tc
}

// columnsFor returns the table's columnar image, building it on first use.
// Cached on the snapshot-keyed access cache next to stats and indexes.
func (db *DB) columnsFor(t *Table) *tableCols {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if ta.cols == nil {
		t0 := time.Now()
		ta.cols = buildTableCols(t)
		db.colBuilds.Add(uint64(len(t.Cols)))
		db.observeBuild("columnar", time.Since(t0))
	}
	return ta.cols
}

// numHashIndex is a hash table over one all-numeric NaN-free column under
// join-key identity: keys are normalized float64 bits (joinKeyBits), bucket
// lists hold row indexes ascending. For finite floats the canonical text
// encoding appendJoinKey produces is injective, so bit identity with -0
// collapsed onto +0 yields exactly the `=` equivalence classes — columns
// containing NaN or strings are refused by the eligibility chooser instead.
type numHashIndex struct {
	tab     u64table
	buckets [][]int32
}

func buildNumHash(cd *colData, sel []int32, n int) *numHashIndex {
	count := n
	if sel != nil {
		count = len(sel)
	}
	h := &numHashIndex{tab: newU64Table(count)}
	for k := 0; k < count; k++ {
		ri := k
		if sel != nil {
			ri = int(sel[k])
		}
		if cd.isNull(ri) {
			continue // NULL never matches under `=`
		}
		slot := h.tab.insert(joinKeyBits(cd.nums[ri]))
		if *slot < 0 {
			*slot = int32(len(h.buckets))
			h.buckets = append(h.buckets, nil)
		}
		h.buckets[*slot] = append(h.buckets[*slot], int32(ri))
	}
	return h
}

// strHashIndex is the all-string analog: raw string keys (for two non-null
// strings, Compare==0 iff the strings are byte-equal, so no encoding needed).
type strHashIndex struct {
	idx     map[string]int32
	buckets [][]int32
}

func buildStrHash(cd *colData, sel []int32, n int) *strHashIndex {
	count := n
	if sel != nil {
		count = len(sel)
	}
	h := &strHashIndex{idx: make(map[string]int32, count)}
	for k := 0; k < count; k++ {
		ri := k
		if sel != nil {
			ri = int(sel[k])
		}
		if cd.isNull(ri) {
			continue
		}
		bi, ok := h.idx[cd.strs[ri]]
		if !ok {
			bi = int32(len(h.buckets))
			h.idx[cd.strs[ri]] = bi
			h.buckets = append(h.buckets, nil)
		}
		h.buckets[bi] = append(h.buckets[bi], int32(ri))
	}
	return h
}

// numHashFor returns the cached whole-column join hash for an all-numeric
// NaN-free column — the columnar analog of hashIndexFor, reused by any plan
// whose build side has no pushed predicates.
func (db *DB) numHashFor(t *Table, col int) *numHashIndex {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if h, ok := ta.numHash[col]; ok {
		return h
	}
	tc := ta.cols // columnsFor has always run before join planning
	t0 := time.Now()
	h := buildNumHash(&tc.cols[col], nil, tc.rows)
	if ta.numHash == nil {
		ta.numHash = map[int]*numHashIndex{}
	}
	ta.numHash[col] = h
	db.colBuilds.Add(1)
	db.observeBuild("columnar-hash", time.Since(t0))
	return h
}

// strHashFor is numHashFor for all-string columns.
func (db *DB) strHashFor(t *Table, col int) *strHashIndex {
	ta := db.access(t)
	ta.mu.Lock()
	defer ta.mu.Unlock()
	if h, ok := ta.strHash[col]; ok {
		return h
	}
	tc := ta.cols
	t0 := time.Now()
	h := buildStrHash(&tc.cols[col], nil, tc.rows)
	if ta.strHash == nil {
		ta.strHash = map[int]*strHashIndex{}
	}
	ta.strHash[col] = h
	db.colBuilds.Add(1)
	db.observeBuild("columnar-hash", time.Since(t0))
	return h
}

// u64table is a linear-probing open-addressing map from uint64 keys to int32
// values, sized once at build. It exists because Go's map[uint64]int32 costs
// ~3-4x more per probe, and the join/group hot loops do one probe per row.
type u64table struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int // claimed slots; maintained only by insertGrow
}

func newU64Table(n int) u64table {
	size := uint64(8)
	for size < uint64(n)*2 {
		size <<= 1
	}
	t := u64table{keys: make([]uint64, size), vals: make([]int32, size), mask: size - 1}
	for i := range t.vals {
		t.vals[i] = -1
	}
	return t
}

// u64hash is the murmur3 finalizer: full avalanche, so float64 bit patterns
// (whose entropy sits in the high bits) spread across the table.
func u64hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// find returns the value stored for k, or -1.
func (t *u64table) find(k uint64) int32 {
	i := u64hash(k) & t.mask
	for {
		if t.vals[i] < 0 {
			return -1
		}
		if t.keys[i] == k {
			return t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// insert returns the slot for k, claiming an empty one if absent. A slot is
// empty iff its value is -1, so callers MUST store a non-negative value into
// the returned slot before the next find/insert call; a -1 result value
// means the key is new.
func (t *u64table) insert(k uint64) *int32 {
	i := u64hash(k) & t.mask
	for {
		if t.vals[i] < 0 {
			t.keys[i] = k
			return &t.vals[i]
		}
		if t.keys[i] == k {
			return &t.vals[i]
		}
		i = (i + 1) & t.mask
	}
}

// insertGrow is insert for callers that cannot size the table up front (the
// grouped path: group count is unknown until the data is seen). The table
// starts small and doubles whenever occupancy would cross half load. The
// returned slot is invalidated by the next insertGrow call, so callers must
// store through it immediately; n counts claimed slots and relies on that.
func (t *u64table) insertGrow(k uint64) *int32 {
	if uint64(t.n)*2 >= uint64(len(t.keys)) {
		t.grow()
	}
	slot := t.insert(k)
	if *slot < 0 {
		t.n++
	}
	return slot
}

func (t *u64table) grow() {
	old := *t
	size := uint64(len(old.keys)) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = size - 1
	for i := range t.vals {
		t.vals[i] = -1
	}
	for i, v := range old.vals {
		if v >= 0 {
			*t.insert(old.keys[i]) = v
		}
	}
}
