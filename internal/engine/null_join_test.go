package engine

// Regression tests for the three-valued NULL contract (comparisons, AND/OR/
// NOT, BETWEEN, IN, LIKE) and for outer-join emission. Every SQL-level case
// runs through checkExecEquivalence first, so the interpreter, the
// unoptimized plan and the operator pipeline are asserted bit-for-bit
// identical before the expected rows are checked against the interpreter.

import (
	"reflect"
	"strings"
	"testing"
)

// nullJoinDB builds tables with NULLs in predicate and join-key positions:
//
//	L: (1,10) (2,NULL) (3,30) (4,40)
//	R: (10,'ten') (NULL,'null-key') (30,'thirty') (30,'thirty-b') (99,'noL')
//	nv: (1,1,'x') (2,NULL,'y') (3,3,NULL)
func nullJoinDB() *DB {
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "L",
		Cols:  []string{"id", "k"},
		Types: []ColType{TNum, TNum},
		Rows: [][]Value{
			{NumVal(1), NumVal(10)},
			{NumVal(2), NullVal()},
			{NumVal(3), NumVal(30)},
			{NumVal(4), NumVal(40)},
		},
	})
	db.Add(&Table{
		Name:  "R",
		Cols:  []string{"k", "v"},
		Types: []ColType{TNum, TStr},
		Rows: [][]Value{
			{NumVal(10), StrVal("ten")},
			{NullVal(), StrVal("null-key")},
			{NumVal(30), StrVal("thirty")},
			{NumVal(30), StrVal("thirty-b")},
			{NumVal(99), StrVal("noL")},
		},
	})
	db.Add(&Table{
		Name:  "nv",
		Cols:  []string{"id", "a", "s"},
		Types: []ColType{TNum, TNum, TStr},
		Rows: [][]Value{
			{NumVal(1), NumVal(1), StrVal("x")},
			{NumVal(2), NullVal(), StrVal("y")},
			{NumVal(3), NumVal(3), NullVal()},
		},
	})
	return db
}

// expectRows asserts all three execution paths agree on sql and that the
// result renders (Text, pipe-joined) exactly as want, in order.
func expectRows(t *testing.T, db *DB, sql string, want []string) {
	t.Helper()
	checkExecEquivalence(t, db, sql)
	res := run(t, db, sql)
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.Text()
		}
		got[i] = strings.Join(parts, "|")
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s:\n  got  %v\n  want %v", sql, got, want)
	}
}

// --- three-valued logic ------------------------------------------------------

func TestNullComparisonThreeValued(t *testing.T) {
	db := nullJoinDB()
	// A NULL comparison is NULL, and NOT(NULL) stays NULL: the row with
	// a = NULL must not leak through the negation.
	expectRows(t, db, "SELECT id FROM nv WHERE a = 1", []string{"1"})
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (a = 1)", []string{"3"})
	// Excluded middle fails on NULL: neither branch admits row 2.
	expectRows(t, db, "SELECT id FROM nv WHERE a = 1 OR NOT (a = 1)", []string{"1", "3"})
	// Kleene OR: NULL OR TRUE is TRUE, so row 2 qualifies via s = 'y'.
	expectRows(t, db, "SELECT id FROM nv WHERE a <> 1 OR s = 'y'", []string{"2", "3"})
	// Kleene AND: NULL AND NULL is NULL, filtered out.
	expectRows(t, db, "SELECT id FROM nv WHERE a <> 1 AND a <> 99", []string{"3"})
}

func TestNullBetween(t *testing.T) {
	db := nullJoinDB()
	// Every non-NULL a is in [0,5] and the NULL one yields NULL, so the
	// negation admits nothing.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (a BETWEEN 0 AND 5)", nil)
	// A definite bound failure beats a NULL on the other bound: 10 > 5 makes
	// the BETWEEN FALSE for every row, including a = NULL.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (10 BETWEEN a AND 5)", []string{"1", "2", "3"})
}

func TestInListNull(t *testing.T) {
	db := nullJoinDB()
	// Without the NULL element the negated IN admits every row.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (5 IN (1))", []string{"1", "2", "3"})
	// With a NULL element (via column a on row 2) the verdict for that row
	// becomes NULL, not FALSE — so NOT flips it to NULL, not TRUE.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (5 IN (1, a))", []string{"1", "3"})
	expectRows(t, db, "SELECT id FROM nv WHERE 5 IN (1, a)", nil)
	// NULL operand: row 2's membership test is NULL either way.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (a IN (1, 2))", []string{"3"})
	// Subquery list containing NULL: no definite match ever becomes a
	// definite non-match, so the negation admits nothing.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (a IN (SELECT k FROM R))", nil)
}

func TestLikeNullOperand(t *testing.T) {
	db := nullJoinDB()
	// s = NULL on row 3: LIKE is NULL, NOT keeps it NULL, row stays out.
	expectRows(t, db, "SELECT id FROM nv WHERE NOT (s LIKE 'x%')", []string{"2"})
}

func TestLikeMatchEdgeCases(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		// empty pattern / empty string
		{"", "", true},
		{"", "%", true},
		{"", "%%", true},
		{"", "_", false},
		{"a", "", false},
		// wildcards
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "a_c", true},
		{"abc", "___", true},
		{"abc", "____", false},
		{"abc", "%%%", true},
		{"abc", "%b%", true},
		{"abc", "_%_", true},
		// backslash escapes: \% and \_ match the literal character
		{"a%c", `a\%c`, true},
		{"abc", `a\%c`, false},
		{"a_c", `a\_c`, true},
		{"axc", `a\_c`, false},
		{"%", `\%`, true},
		{"x", `\%`, false},
		// escaped backslash, and a trailing lone backslash stays literal
		{`a\c`, `a\\c`, true},
		{`\`, `\\`, true},
		{`a\`, `a\`, true},
		{"a", `a\`, false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pattern); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

// --- outer joins -------------------------------------------------------------

func TestInnerJoinNullKeysNeverMatch(t *testing.T) {
	expectRows(t, nullJoinDB(),
		"SELECT l.id, r.v FROM L AS l JOIN R AS r ON l.k = r.k",
		[]string{"1|ten", "3|thirty", "3|thirty-b"})
}

func TestLeftJoinPadding(t *testing.T) {
	db := nullJoinDB()
	// Unmatched probe rows (including the NULL-key one) pad in place,
	// preserving L's scan order.
	expectRows(t, db,
		"SELECT l.id, r.v FROM L AS l LEFT JOIN R AS r ON l.k = r.k",
		[]string{"1|ten", "2|NULL", "3|thirty", "3|thirty-b", "4|NULL"})
	// WHERE applies after padding, never below the join.
	expectRows(t, db,
		"SELECT l.id, r.v FROM L AS l LEFT JOIN R AS r ON l.k = r.k WHERE r.v = 'ten'",
		[]string{"1|ten"})
}

func TestLeftJoinResidualConjunct(t *testing.T) {
	// Equi key plus a pure residual: the residual must narrow the match set
	// before the padding decision, so id 3 keeps only 'thirty-b'.
	expectRows(t, nullJoinDB(),
		"SELECT l.id, r.v FROM L AS l LEFT JOIN R AS r ON l.k = r.k AND r.v <> 'thirty'",
		[]string{"1|ten", "2|NULL", "3|thirty-b", "4|NULL"})
}

func TestRightJoinPadding(t *testing.T) {
	// Matched rows first in probe order, then R's unmatched rows — the
	// NULL-key build row among them — appended in R's scan order.
	expectRows(t, nullJoinDB(),
		"SELECT l.id, r.v FROM L AS l RIGHT JOIN R AS r ON l.k = r.k",
		[]string{"1|ten", "3|thirty", "3|thirty-b", "NULL|null-key", "NULL|noL"})
}

func TestFullJoinPadding(t *testing.T) {
	expectRows(t, nullJoinDB(),
		"SELECT l.id, r.v FROM L AS l FULL JOIN R AS r ON l.k = r.k",
		[]string{"1|ten", "2|NULL", "3|thirty", "3|thirty-b", "4|NULL", "NULL|null-key", "NULL|noL"})
}

func TestLeftJoinNonEquiOn(t *testing.T) {
	// No equi conjunct: the compiled path falls back to a filtered nested
	// loop. The NULL key compares NULL against everything and pads.
	expectRows(t, nullJoinDB(),
		"SELECT l.id, r.v FROM L AS l LEFT JOIN R AS r ON l.k < r.k",
		[]string{"1|thirty", "1|thirty-b", "1|noL", "2|NULL", "3|noL", "4|noL"})
}

func TestLeftJoinOnTestDB(t *testing.T) {
	// Mixed equi + residual over the shared fixture: ops has no employee
	// above 95 and pads.
	expectRows(t, testDB(),
		"SELECT d.name, e.id FROM dept AS d LEFT JOIN emp AS e ON e.dept = d.name AND e.salary > 95",
		[]string{"eng|1", "eng|2", "ops|NULL"})
}
