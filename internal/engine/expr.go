package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	dt "pi2/internal/difftree"
)

// evalExpr evaluates an expression AST in a row (or group) environment.
func evalExpr(db *DB, e *dt.Node, env *rowEnv) (Value, error) {
	switch e.Kind {
	case dt.KindNumber:
		f, err := strconv.ParseFloat(e.Label, 64)
		if err != nil {
			return Value{}, fmt.Errorf("engine: bad number %q", e.Label)
		}
		return NumVal(f), nil
	case dt.KindString:
		return StrVal(e.Label), nil
	case dt.KindIdent:
		if v, ok := env.lookup(e.Label); ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("engine: unknown column %q", e.Label)
	case dt.KindAnd:
		// Kleene three-valued AND: FALSE short-circuits, NULL is absorbing
		// only against TRUE. NULL conjuncts do not stop evaluation, so later
		// conjuncts still surface their errors.
		sawNull := false
		for _, c := range e.Children {
			v, err := evalExpr(db, c, env)
			if err != nil {
				return Value{}, err
			}
			if v.Null {
				sawNull = true
			} else if !v.Truthy() {
				return BoolVal(false), nil
			}
		}
		if sawNull {
			return NullVal(), nil
		}
		return BoolVal(true), nil
	case dt.KindOr:
		// Kleene OR, the dual: TRUE short-circuits, NULL | FALSE = NULL.
		sawNull := false
		for _, c := range e.Children {
			v, err := evalExpr(db, c, env)
			if err != nil {
				return Value{}, err
			}
			if v.Null {
				sawNull = true
			} else if v.Truthy() {
				return BoolVal(true), nil
			}
		}
		if sawNull {
			return NullVal(), nil
		}
		return BoolVal(false), nil
	case dt.KindNot:
		v, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		if v.Null {
			return NullVal(), nil
		}
		return BoolVal(!v.Truthy()), nil
	case dt.KindBinary:
		return evalBinary(db, e, env)
	case dt.KindBetween:
		v, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		lo, err := evalExpr(db, e.Children[1], env)
		if err != nil {
			return Value{}, err
		}
		hi, err := evalExpr(db, e.Children[2], env)
		if err != nil {
			return Value{}, err
		}
		// BETWEEN is the Kleene AND of v >= lo and v <= hi: a definite
		// failure on either bound wins over a NULL on the other.
		if !v.Null && !lo.Null && Compare(v, lo) < 0 {
			return BoolVal(false), nil
		}
		if !v.Null && !hi.Null && Compare(v, hi) > 0 {
			return BoolVal(false), nil
		}
		if v.Null || lo.Null || hi.Null {
			return NullVal(), nil
		}
		return BoolVal(true), nil
	case dt.KindIn:
		return evalIn(db, e, env)
	case dt.KindFunc:
		return evalFunc(db, e, env)
	case dt.KindQuery:
		// scalar subquery
		t, err := execQuery(db, e, env)
		if err != nil {
			return Value{}, err
		}
		if len(t.Rows) == 0 || len(t.Rows[0]) == 0 {
			return NullVal(), nil
		}
		return t.Rows[0][0], nil
	case dt.KindStar:
		return Value{}, fmt.Errorf("engine: '*' outside count()")
	default:
		return Value{}, fmt.Errorf("engine: cannot evaluate %v node", e.Kind)
	}
}

func evalBinary(db *DB, e *dt.Node, env *rowEnv) (Value, error) {
	l, err := evalExpr(db, e.Children[0], env)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(db, e.Children[1], env)
	if err != nil {
		return Value{}, err
	}
	switch e.Label {
	case "=", "<>", "<", ">", "<=", ">=":
		if l.Null || r.Null {
			return NullVal(), nil
		}
		c := Compare(l, r)
		switch e.Label {
		case "=":
			return BoolVal(c == 0), nil
		case "<>":
			return BoolVal(c != 0), nil
		case "<":
			return BoolVal(c < 0), nil
		case ">":
			return BoolVal(c > 0), nil
		case "<=":
			return BoolVal(c <= 0), nil
		default:
			return BoolVal(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.Null || r.Null {
			return NullVal(), nil
		}
		if l.IsStr || r.IsStr {
			return Value{}, fmt.Errorf("engine: arithmetic on string values")
		}
		switch e.Label {
		case "+":
			return NumVal(l.Num + r.Num), nil
		case "-":
			return NumVal(l.Num - r.Num), nil
		case "*":
			return NumVal(l.Num * r.Num), nil
		default:
			if r.Num == 0 {
				return NullVal(), nil
			}
			return NumVal(l.Num / r.Num), nil
		}
	case "like":
		if l.Null || r.Null {
			return NullVal(), nil
		}
		return BoolVal(likeMatch(l.Text(), r.Text())), nil
	default:
		return Value{}, fmt.Errorf("engine: unknown operator %q", e.Label)
	}
}

func evalIn(db *DB, e *dt.Node, env *rowEnv) (Value, error) {
	v, err := evalExpr(db, e.Children[0], env)
	if err != nil {
		return Value{}, err
	}
	// IN is the Kleene OR of v = elem over the list: TRUE on a match,
	// otherwise NULL when the operand or any compared element is NULL
	// (the element might have been equal), otherwise FALSE. A match still
	// short-circuits, so elements after it are never evaluated.
	var found, sawNull bool
	target := e.Children[1]
	if target.Kind == dt.KindQuery {
		t, err := execQuery(db, target, env)
		if err != nil {
			return Value{}, err
		}
		for _, row := range t.Rows {
			if len(row) == 0 {
				continue
			}
			if EqualVal(v, row[0]) {
				found = true
				break
			}
			if row[0].Null {
				sawNull = true
			}
		}
	} else {
		for _, c := range target.Children {
			cv, err := evalExpr(db, c, env)
			if err != nil {
				return Value{}, err
			}
			if EqualVal(v, cv) {
				found = true
				break
			}
			if cv.Null {
				sawNull = true
			}
		}
	}
	return inVerdict(e.Label == "not in", found, sawNull || v.Null), nil
}

// inVerdict folds the scan outcome of an IN list into its three-valued
// result, negating for NOT IN (Kleene NOT maps NULL to NULL).
func inVerdict(negate, found, sawNull bool) Value {
	switch {
	case found:
		return BoolVal(!negate)
	case sawNull:
		return NullVal()
	default:
		return BoolVal(negate)
	}
}

func evalFunc(db *DB, e *dt.Node, env *rowEnv) (Value, error) {
	name := e.Label
	if isAggregate(name) {
		return evalAggregate(db, e, env)
	}
	switch name {
	case "today":
		return StrVal(db.Now), nil
	case "date":
		if len(e.Children) != 2 {
			return Value{}, fmt.Errorf("engine: date() takes (base, offset)")
		}
		base, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		off, err := evalExpr(db, e.Children[1], env)
		if err != nil {
			return Value{}, err
		}
		return dateOffset(base.Text(), off.Text())
	case "abs":
		v, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		if v.Null || v.IsStr {
			return NullVal(), nil
		}
		if v.Num < 0 {
			return NumVal(-v.Num), nil
		}
		return v, nil
	case "round":
		v, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		if v.Null || v.IsStr {
			return NullVal(), nil
		}
		return NumVal(float64(int64(v.Num + 0.5))), nil
	case "lower", "upper":
		v, err := evalExpr(db, e.Children[0], env)
		if err != nil {
			return Value{}, err
		}
		if v.Null {
			return NullVal(), nil
		}
		if name == "lower" {
			return StrVal(strings.ToLower(v.Text())), nil
		}
		return StrVal(strings.ToUpper(v.Text())), nil
	default:
		return Value{}, fmt.Errorf("engine: unknown function %q", name)
	}
}

func evalAggregate(db *DB, e *dt.Node, env *rowEnv) (Value, error) {
	rows := env.groupRows
	if rows == nil {
		return Value{}, fmt.Errorf("engine: aggregate %s() outside grouping context", e.Label)
	}
	star := len(e.Children) == 1 && e.Children[0].Kind == dt.KindStar
	if e.Label == "count" && (star || len(e.Children) == 0) {
		return NumVal(float64(len(rows))), nil
	}
	if len(e.Children) != 1 {
		return Value{}, fmt.Errorf("engine: %s() takes one argument", e.Label)
	}
	var vals []Value
	for _, renv := range rows {
		inner := &rowEnv{frames: renv.frames, outer: env.outer}
		v, err := evalExpr(db, e.Children[0], inner)
		if err != nil {
			return Value{}, err
		}
		if !v.Null {
			vals = append(vals, v)
		}
	}
	switch e.Label {
	case "count":
		return NumVal(float64(len(vals))), nil
	case "sum", "avg":
		total := 0.0
		for _, v := range vals {
			if v.IsStr {
				return Value{}, fmt.Errorf("engine: %s() over strings", e.Label)
			}
			total += v.Num
		}
		if e.Label == "avg" {
			if len(vals) == 0 {
				return NullVal(), nil
			}
			return NumVal(total / float64(len(vals))), nil
		}
		return NumVal(total), nil
	case "min", "max":
		if len(vals) == 0 {
			return NullVal(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (e.Label == "min" && c < 0) || (e.Label == "max" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("engine: unknown aggregate %q", e.Label)
}

// dateOffset applies offsets of the form "-30 days", "+2 days", "-1 months"
// to an ISO date string.
func dateOffset(base, offset string) (Value, error) {
	t, err := time.Parse("2006-01-02", base)
	if err != nil {
		return Value{}, fmt.Errorf("engine: bad date %q", base)
	}
	fields := strings.Fields(strings.TrimSpace(offset))
	if len(fields) != 2 {
		return Value{}, fmt.Errorf("engine: bad date offset %q", offset)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return Value{}, fmt.Errorf("engine: bad date offset %q", offset)
	}
	unit := strings.TrimSuffix(strings.ToLower(fields[1]), "s")
	switch unit {
	case "day":
		t = t.AddDate(0, 0, n)
	case "month":
		t = t.AddDate(0, n, 0)
	case "year":
		t = t.AddDate(n, 0, 0)
	default:
		return Value{}, fmt.Errorf("engine: bad date unit %q", fields[1])
	}
	return StrVal(t.Format("2006-01-02")), nil
}

// likeMatch implements SQL LIKE with % (any run), _ (any single char), and
// backslash escapes: \%, \_ and \\ match the literal character. A trailing
// lone backslash matches a literal backslash.
func likeMatch(s, pattern string) bool {
	// Pre-scan the pattern into per-position ops so escapes collapse to
	// literal matches before the DP over pattern/string positions.
	type patOp struct {
		ch      byte
		literal bool
	}
	ops := make([]patOp, 0, len(pattern))
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '\\' && i+1 < len(pattern) {
			i++
			ops = append(ops, patOp{pattern[i], true})
			continue
		}
		ops = append(ops, patOp{c, c != '%' && c != '_'})
	}
	m, n := len(ops), len(s)
	dp := make([][]bool, m+1)
	for i := range dp {
		dp[i] = make([]bool, n+1)
	}
	dp[0][0] = true
	for i := 1; i <= m; i++ {
		if !ops[i-1].literal && ops[i-1].ch == '%' {
			dp[i][0] = dp[i-1][0]
		}
		for j := 1; j <= n; j++ {
			switch {
			case !ops[i-1].literal && ops[i-1].ch == '%':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case !ops[i-1].literal && ops[i-1].ch == '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && ops[i-1].ch == s[j-1]
			}
		}
	}
	return dp[m][n]
}

// inferColType statically infers a result column's type from its expression.
func inferColType(db *DB, item *dt.Node, sources []source, outer *rowEnv) ColType {
	return inferExprType(db, item.Children[0], sources, outer)
}

func inferExprType(db *DB, e *dt.Node, sources []source, outer *rowEnv) ColType {
	switch e.Kind {
	case dt.KindNumber:
		return TNum
	case dt.KindString:
		return TStr
	case dt.KindIdent:
		name := strings.ToLower(e.Label)
		alias := ""
		if i := strings.IndexByte(name, '.'); i >= 0 {
			alias, name = name[:i], name[i+1:]
		}
		for _, s := range sources {
			if alias != "" && s.alias != alias {
				continue
			}
			if ci := s.table.ColIndex(name); ci >= 0 {
				return s.table.Types[ci]
			}
		}
		// fall back: correlated reference — unknowable here; assume str
		return TStr
	case dt.KindFunc:
		switch e.Label {
		case "count", "sum", "avg", "abs", "round":
			return TNum
		case "min", "max":
			if len(e.Children) == 1 {
				return inferExprType(db, e.Children[0], sources, outer)
			}
			return TNum
		case "today", "date", "lower", "upper":
			return TStr
		}
		return TNum
	case dt.KindBinary:
		if e.Label == "like" {
			return TNum
		}
		switch e.Label {
		case "+", "-", "*", "/":
			return TNum
		}
		return TNum // comparisons are boolean 0/1
	case dt.KindAnd, dt.KindOr, dt.KindNot, dt.KindBetween, dt.KindIn:
		return TNum
	case dt.KindQuery:
		return TNum
	default:
		return TStr
	}
}
