package engine

import (
	"fmt"
	"strings"
	"testing"

	"pi2/internal/sqlparser"
)

// profiled prepares sql, runs it both plain and profiled, and asserts the
// profiled result is identical to the plain one before returning the
// profile. The hooks must observe, never change what executes.
func profiled(t *testing.T, db *DB, sql string) *Profile {
	t.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := Prepare(db, ast)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	want, err := plan.Exec()
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	got, prof, err := plan.ExecProfiled()
	if err != nil {
		t.Fatalf("profiled exec %q: %v", sql, err)
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Fatalf("profiled result differs from plain Exec for %q:\n got %v\nwant %v", sql, got, want)
	}
	if prof.Total <= 0 {
		t.Fatalf("profile total = %v, want > 0", prof.Total)
	}
	return prof
}

// opsByName indexes the profile's operators; duplicate ops keep the first.
func opsByName(p *Profile) map[string]OpStat {
	out := map[string]OpStat{}
	for _, op := range p.Ops {
		if _, ok := out[op.Op]; !ok {
			out[op.Op] = op
		}
	}
	return out
}

func TestProfileHashJoin(t *testing.T) {
	// Comma join with an equi conjunct: the pipeline scans both sources,
	// builds a hash over the later one, and probes.
	prof := profiled(t, testDB(),
		"SELECT emp.id, dept.city FROM emp, dept WHERE emp.dept = dept.name AND emp.salary > 85")
	ops := opsByName(prof)
	scanCount := 0
	for _, op := range prof.Ops {
		if op.Op == "scan" {
			scanCount++
		}
	}
	if scanCount != 2 {
		t.Fatalf("want one scan per source, got %d ops: %+v", scanCount, prof.Ops)
	}
	hb, ok := ops["hash-build"]
	if !ok {
		t.Fatalf("no hash-build op in %+v", prof.Ops)
	}
	if hb.RowsIn != 2 { // dept has 2 rows, no scan predicate on it
		t.Fatalf("hash-build rows in = %d, want 2", hb.RowsIn)
	}
	jn, ok := ops["join"]
	if !ok {
		t.Fatalf("no join op in %+v", prof.Ops)
	}
	if !strings.Contains(jn.Detail, "hash") {
		t.Fatalf("join mode = %q, want hash", jn.Detail)
	}
	if jn.RowsOut != 3 { // salaries 100, 120, 90 survive the scan filter
		t.Fatalf("join rows out = %d, want 3", jn.RowsOut)
	}
	// Scan on emp must show the pushdown: 4 rows in, 3 out.
	for _, op := range prof.Ops {
		if op.Op == "scan" && op.Detail == "emp" {
			if op.RowsIn != 4 || op.RowsOut != 3 {
				t.Fatalf("emp scan %d->%d, want 4->3", op.RowsIn, op.RowsOut)
			}
		}
	}
}

func TestProfileJoinKeyword(t *testing.T) {
	prof := profiled(t, testDB(),
		"SELECT emp.id, dept.city FROM emp LEFT JOIN dept ON emp.dept = dept.name")
	ops := opsByName(prof)
	if _, ok := ops["hash-build"]; !ok {
		t.Fatalf("no hash-build op for ON equi-join: %+v", prof.Ops)
	}
	jn, ok := ops["join"]
	if !ok {
		t.Fatalf("no join op in %+v", prof.Ops)
	}
	if !strings.Contains(jn.Detail, "left") || !strings.Contains(jn.Detail, "hash") {
		t.Fatalf("join detail = %q, want left hash", jn.Detail)
	}
	if jn.RowsIn != 4 || jn.RowsOut != 4 { // probe side: one env per emp row
		t.Fatalf("join %d->%d, want 4->4", jn.RowsIn, jn.RowsOut)
	}
}

func TestProfileTopKAndGroup(t *testing.T) {
	prof := profiled(t, testDB(),
		"SELECT dept, sum(salary) FROM emp GROUP BY dept ORDER BY sum(salary) DESC LIMIT 1")
	ops := opsByName(prof)
	g, ok := ops["group"]
	if !ok {
		t.Fatalf("no group op in %+v", prof.Ops)
	}
	if g.RowsIn != 4 || g.RowsOut != 2 {
		t.Fatalf("group %d->%d, want 4->2", g.RowsIn, g.RowsOut)
	}
	tk, ok := ops["top-k"]
	if !ok {
		t.Fatalf("no top-k op in %+v", prof.Ops)
	}
	if tk.RowsIn != 2 || tk.RowsOut != 1 || tk.Detail != "limit 1" {
		t.Fatalf("top-k = %+v, want 2->1 limit 1", tk)
	}
}

func TestProfileSingleSourceScanAndString(t *testing.T) {
	// T has only 5 rows, so the cost model keeps the full sweep — and a
	// single-source sweep drops the pipeline entirely, falling back to the
	// in-place cross-filter path.
	prof := profiled(t, testDB(), "SELECT p FROM T WHERE a = 1")
	ops := opsByName(prof)
	cf, ok := ops["cross-filter"]
	if !ok {
		t.Fatalf("single-source sweep should use cross-filter: %+v", prof.Ops)
	}
	if cf.RowsIn != 5 || cf.RowsOut != 3 {
		t.Fatalf("cross-filter %d->%d, want 5->3", cf.RowsIn, cf.RowsOut)
	}
	// The report's access column is exercised on an index-choosing query
	// (big fixture: 200 rows, selective point predicate).
	db := bigDB()
	prof = profiled(t, db, "SELECT v FROM big WHERE k = 7")
	sc, ok := opsByName(prof)["scan"]
	if !ok || sc.Path != "index-scan(k)" {
		t.Fatalf("scan path = %q (ok=%v), want index-scan(k)", sc.Path, ok)
	}
	s := prof.String()
	for _, want := range []string{"operator", "access", "rows in", "rows out", "index-scan(k)", "total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestProfileCrossFilterNoWhere(t *testing.T) {
	// Without a WHERE clause there is no pipeline; the cross product path
	// still reports its operator.
	prof := profiled(t, testDB(), "SELECT p FROM T")
	if _, ok := opsByName(prof)["cross-filter"]; !ok {
		t.Fatalf("no-WHERE query should use cross-filter: %+v", prof.Ops)
	}
}

func TestProfileResidual(t *testing.T) {
	// salary/10 can error on strings, so it stays residual.
	prof := profiled(t, testDB(),
		"SELECT emp.id FROM emp, dept WHERE emp.dept = dept.name AND emp.salary / 10 > 9")
	ops := opsByName(prof)
	rs, ok := ops["residual"]
	if !ok {
		t.Fatalf("no residual op in %+v", prof.Ops)
	}
	if rs.RowsOut >= rs.RowsIn {
		t.Fatalf("residual should filter rows: %+v", rs)
	}
}

func TestExecUnaffectedByProfiledRun(t *testing.T) {
	// Interleaved profiled and plain executions of one plan must agree
	// (scan caches are shared; profiling must not corrupt them).
	db := testDB()
	ast, err := sqlparser.Parse("SELECT emp.id FROM emp, dept WHERE emp.dept = dept.name")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Prepare(db, ast)
	if err != nil {
		t.Fatal(err)
	}
	a, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = plan.ExecProfiled()
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatalf("plain exec changed after profiled run:\n%v\n%v", a, b)
	}
}
