package engine

import (
	"reflect"
	"testing"

	"pi2/internal/sqlparser"
)

// planRun prepares and executes sql on the compiled path.
func planRun(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	plan, err := Prepare(db, sqlparser.MustParse(sql))
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	res, err := plan.Exec()
	if err != nil {
		t.Fatalf("exec plan %q: %v", sql, err)
	}
	return res
}

// TestPlanMatchesInterpreterBattery cross-checks the compiled path against
// the interpreter on constructs the workload logs do not all exercise:
// correlated subqueries, derived tables, HAVING, short-circuit evaluation,
// string functions, and aggregates over empty input.
func TestPlanMatchesInterpreterBattery(t *testing.T) {
	db := testDB()
	queries := []string{
		`SELECT p, a FROM T WHERE a = 1`,
		`SELECT * FROM T ORDER BY p DESC, a LIMIT 3`,
		`SELECT DISTINCT p FROM T ORDER BY p`,
		`SELECT p, count(*), sum(b) FROM T GROUP BY p ORDER BY p`,
		`SELECT dept, avg(salary) FROM emp GROUP BY dept HAVING avg(salary) > 90`,
		`SELECT count(*) FROM emp WHERE salary > 1000`,
		`SELECT min(salary), max(salary), avg(salary) FROM emp WHERE dept = 'none'`,
		`SELECT e.id, d.city FROM emp e, dept d WHERE e.dept = d.name ORDER BY e.id`,
		`SELECT id FROM emp WHERE salary > (SELECT avg(salary) FROM emp)`,
		`SELECT id FROM emp e WHERE salary > (SELECT avg(salary) FROM emp WHERE dept = e.dept)`,
		`SELECT id FROM emp WHERE dept IN (SELECT name FROM dept WHERE city = 'NYC')`,
		`SELECT id FROM emp WHERE dept NOT IN ('eng')`,
		`SELECT x.p, x.n FROM (SELECT p, count(*) AS n FROM T GROUP BY p) x WHERE x.n > 1`,
		`SELECT upper(dept), lower(dept) FROM emp WHERE id = 1`,
		`SELECT day FROM events WHERE day > date(today(), '-30 days')`,
		`SELECT id FROM emp WHERE dept LIKE 'e%'`,
		`SELECT id, salary + 1, salary - 1, salary * 2, salary / 0 FROM emp WHERE id = 1`,
		`SELECT p FROM T WHERE a BETWEEN 1 AND 1 AND b BETWEEN 2 AND 3`,
		`SELECT 1 + 2`,
		`SELECT p FROM T WHERE 1 = 2 AND nosuchcolumn = 3`, // short-circuit: never evaluated
		`SELECT p FROM T WHERE 1 = 2 AND abs() > 0`,        // zero-arg func, never evaluated
		// star + aggregate over an empty implicit group: the interpreter
		// emits a ragged row with no star values
		`SELECT *, count(a) FROM T WHERE a > 100`,
		// outer star over a derived table whose rows are ragged (shorter
		// than its schema) — must not panic, must match the interpreter
		`SELECT * FROM (SELECT max(a), * FROM T WHERE a > 100) d`,
		`SELECT * FROM (SELECT count(a), * FROM T WHERE a > 100) d, dept`,
	}
	for _, sql := range queries {
		ast := sqlparser.MustParse(sql)
		direct, directErr := Exec(db, ast)
		plan, err := Prepare(db, ast)
		if err != nil {
			t.Fatalf("%q: prepare: %v", sql, err)
		}
		planned, plannedErr := plan.Exec()
		if (directErr != nil) != (plannedErr != nil) {
			t.Fatalf("%q: error mismatch: interpreter=%v planned=%v", sql, directErr, plannedErr)
		}
		if directErr != nil {
			continue
		}
		if !reflect.DeepEqual(direct.Cols, planned.Cols) || !reflect.DeepEqual(direct.Types, planned.Types) {
			t.Errorf("%q: header mismatch: (%v,%v) vs (%v,%v)",
				sql, direct.Cols, direct.Types, planned.Cols, planned.Types)
		}
		if !reflect.DeepEqual(direct.Rows, planned.Rows) {
			t.Errorf("%q: rows mismatch:\n  interpreter %v\n  planned     %v",
				sql, direct.Rows, planned.Rows)
		}
	}
}

// Errors the interpreter only raises at evaluation time must surface from
// Exec, not Prepare, so that never-evaluated branches stay silent.
func TestPlanDefersEvaluationErrors(t *testing.T) {
	db := testDB()
	for _, sql := range []string{
		`SELECT nosuch FROM T`,
		`SELECT p FROM nosuchtable`,
		`SELECT abs() FROM T`, // zero-arg scalar function (interpreter panics; plan must error)
		`SELECT lower() FROM T`,
	} {
		plan, err := Prepare(db, sqlparser.MustParse(sql))
		if err != nil {
			t.Fatalf("%q: Prepare should defer the error, got %v", sql, err)
		}
		if _, err := plan.Exec(); err == nil {
			t.Fatalf("%q: Exec should fail", sql)
		}
	}
}

func TestPlanStaleAfterDBMutation(t *testing.T) {
	db := testDB()
	plan, err := Prepare(db, sqlparser.MustParse(`SELECT p FROM T`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stale() {
		t.Fatal("fresh plan reported stale")
	}
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	db.Add(&Table{Name: "T", Cols: []string{"p"}, Types: []ColType{TNum}})
	if !plan.Stale() {
		t.Fatal("plan not stale after db.Add")
	}
	if _, err := plan.Exec(); err == nil {
		t.Fatal("stale plan executed without error")
	}
}

func TestPlanColsTypesKnownBeforeExec(t *testing.T) {
	db := testDB()
	plan, err := Prepare(db, sqlparser.MustParse(`SELECT dept, count(*) AS n FROM emp GROUP BY dept`))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Cols(); !reflect.DeepEqual(got, []string{"dept", "n"}) {
		t.Fatalf("cols = %v", got)
	}
	if got := plan.Types(); !reflect.DeepEqual(got, []ColType{TStr, TNum}) {
		t.Fatalf("types = %v", got)
	}
	res := planRun(t, db, `SELECT dept, count(*) AS n FROM emp GROUP BY dept`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// BenchmarkExecInterpreted/BenchmarkExecPlanned quantify what Prepare buys
// on one workload-shaped grouped aggregate (plan compiled once, run many).
func benchQuery() string {
	return `SELECT p, count(*), sum(b) FROM T WHERE a BETWEEN 1 AND 2 GROUP BY p ORDER BY p`
}

func BenchmarkExecInterpreted(b *testing.B) {
	db := testDB()
	ast := sqlparser.MustParse(benchQuery())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, ast); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPlanned(b *testing.B) {
	db := testDB()
	plan, err := Prepare(db, sqlparser.MustParse(benchQuery()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}
