package engine

import (
	"fmt"
	"strings"
)

// Live data: the append path and its changelog.
//
// Append is copy-on-write over immutable snapshots: it builds a new *Table
// whose Rows slice extends the old one and publishes it under db.mu. The
// new slice may share the old backing array (appending into spare capacity
// writes only indexes >= the old length, which no reader of the old snapshot
// ever touches), so concurrent Plan.Exec / interpreter runs against the
// previous snapshot are race-free by construction — there is no row-level
// locking anywhere in the engine.
//
// Concurrency contract: any number of concurrent readers; writers (Add,
// Append) are serialized internally by db.mu, so concurrent writers are
// safe too, but the system is designed for a single logical writer (one
// ingest tailer or HTTP ingest handler) — ordering between concurrent
// writers is whatever the mutex arbitration yields. The append-churn race
// tests pin the reader/writer interleavings.

// ChangeBatch is one committed append: the rows added to a table in a single
// Append call. Batches are totally ordered by Global (the global generation
// the batch committed at) and per table by Seq (1-based, gapless per table),
// which is what makes the changelog replayable as a replication primitive.
// Rows shares the table snapshot's backing storage; treat it as immutable.
type ChangeBatch struct {
	Table  string // lowercased table name
	Seq    uint64 // per-table sequence number, 1-based
	Global uint64 // global generation at commit
	Rows   [][]Value
}

// Append adds rows to the named table, publishing a new snapshot and
// recording the batch in the changelog. Every row must have exactly one
// value per column; rows are shared with the table (callers must not mutate
// them afterwards). Appending zero rows is a no-op.
func (db *DB) Append(table string, rows [][]Value) error {
	if len(rows) == 0 {
		return nil
	}
	key := strings.ToLower(table)
	db.mu.Lock()
	defer db.mu.Unlock()
	old, ok := db.Tables[key]
	if !ok {
		return fmt.Errorf("engine: append to unknown table %q", table)
	}
	for i, row := range rows {
		if len(row) != len(old.Cols) {
			return fmt.Errorf("engine: append row %d has %d values, table %q has %d columns",
				i, len(row), old.Name, len(old.Cols))
		}
	}
	nt := &Table{Name: old.Name, Cols: old.Cols, Types: old.Types, Rows: append(old.Rows, rows...)}
	db.Tables[key] = nt
	db.bumpLocked(key, old)
	db.seqs[key]++
	db.clog = append(db.clog, ChangeBatch{
		Table:  key,
		Seq:    db.seqs[key],
		Global: db.gen.Load(),
		Rows:   nt.Rows[len(old.Rows):],
	})
	db.appends.Add(1)
	db.appendRows.Add(uint64(len(rows)))
	return nil
}

// Changes returns the changelog batches committed after the given global
// generation, in commit order — the resume point for a replica that saw
// everything up to sinceGlobal.
func (db *DB) Changes(sinceGlobal uint64) []ChangeBatch {
	db.mu.Lock()
	defer db.mu.Unlock()
	i := len(db.clog)
	for i > 0 && db.clog[i-1].Global > sinceGlobal {
		i--
	}
	if i == len(db.clog) {
		return nil
	}
	out := make([]ChangeBatch, len(db.clog)-i)
	copy(out, db.clog[i:])
	return out
}

// ChangelogDepth reports the number of batches currently retained.
func (db *DB) ChangelogDepth() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.clog)
}

// TrimChangelog drops batches committed at or before the given global
// generation, bounding changelog memory once replicas have caught up.
func (db *DB) TrimChangelog(uptoGlobal uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	i := 0
	for i < len(db.clog) && db.clog[i].Global <= uptoGlobal {
		i++
	}
	if i > 0 {
		db.clog = append([]ChangeBatch(nil), db.clog[i:]...)
	}
}

// AppendCounters is a monotonic snapshot of the append path's activity,
// surfaced through /metrics and the /stats obs object next to IndexCounters
// and ColumnarCounters.
type AppendCounters struct {
	Appends       uint64 `json:"appends"`       // committed Append batches
	Rows          uint64 `json:"rows"`          // total rows across those batches
	ChangelogLen  uint64 `json:"changelog_len"` // batches currently retained
	Invalidations uint64 `json:"invalidations"` // table snapshots replaced (all tables)
}

// AppendCounters reads the current counter values.
func (db *DB) AppendCounters() AppendCounters {
	db.mu.Lock()
	var inv uint64
	for _, n := range db.inval {
		inv += n
	}
	depth := uint64(len(db.clog))
	db.mu.Unlock()
	return AppendCounters{
		Appends:       db.appends.Load(),
		Rows:          db.appendRows.Load(),
		ChangelogLen:  depth,
		Invalidations: inv,
	}
}
