package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

// bigDB builds a database large enough for the cost model to choose index
// paths on its own: `big` has 200 rows with k cycling 0..19 (so `k = c`
// selects 10 rows, well under rows/indexAdvantage) and v ascending but
// stored in descending row order, which makes range-scan order restoration
// observable.
func bigDB() *DB {
	db := NewDB("2020-12-31")
	t := &Table{
		Name:  "big",
		Cols:  []string{"k", "v", "s"},
		Types: []ColType{TNum, TNum, TStr},
	}
	for i := 0; i < 200; i++ {
		t.Rows = append(t.Rows, []Value{
			NumVal(float64(i % 20)),
			NumVal(float64(200 - i)), // descending: row order != value order
			StrVal(fmt.Sprintf("s%02d", i%7)),
		})
	}
	db.Add(t)
	db.Add(&Table{
		Name:  "tiny",
		Cols:  []string{"k", "lbl"},
		Types: []ColType{TNum, TStr},
		Rows: [][]Value{
			{NumVal(3), StrVal("three")},
			{NumVal(7), StrVal("seven")},
		},
	})
	return db
}

func planFor(t *testing.T, db *DB, sql string, prep func(*DB, *dt.Node) (*Plan, error)) *Plan {
	t.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := prep(db, ast)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	return plan
}

// scanPath executes the plan profiled and returns the first scan op's Path.
// A single-source query whose chooser kept the sweep drops the pipeline and
// runs through cross-filter — that is the full scan.
func scanPath(t *testing.T, plan *Plan) string {
	t.Helper()
	_, prof, err := plan.ExecProfiled()
	if err != nil {
		t.Fatalf("exec profiled: %v", err)
	}
	for _, op := range prof.Ops {
		if op.Op == "scan" {
			return op.Path
		}
	}
	for _, op := range prof.Ops {
		if op.Op == "cross-filter" {
			return "full-scan"
		}
	}
	t.Fatalf("no scan or cross-filter op in %+v", prof.Ops)
	return ""
}

func TestCostModelChoosesIndexPaths(t *testing.T) {
	db := bigDB()
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT v FROM big WHERE k = 7", "index-scan(k)"},
		{"SELECT v FROM big WHERE k BETWEEN 3 AND 4", "range-scan(k)"},
		{"SELECT k FROM big WHERE v < 20", "range-scan(v)"},
		// 1/7 of the string values match: selective enough for the hash index.
		{"SELECT v FROM big WHERE s = 's03'", "index-scan(s)"},
		// Low selectivity: the chooser must keep the sweep, which the
		// vectorized path then runs as a batched columnar filter.
		{"SELECT k FROM big WHERE v > 5", "vectorized-filter"},
		// A non-vectorizable predicate shape keeps the row-path sweep.
		{"SELECT k FROM big WHERE lower(s) <> 'zz'", "full-scan"},
	}
	for _, tc := range cases {
		got := scanPath(t, planFor(t, db, tc.sql, Prepare))
		if got != tc.want {
			t.Errorf("%s: access path = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestIndexResultsMatchSweep(t *testing.T) {
	db := bigDB()
	for _, sql := range []string{
		"SELECT v FROM big WHERE k = 7",
		"SELECT v, s FROM big WHERE k BETWEEN 3 AND 4",
		"SELECT k FROM big WHERE v < 20",
		"SELECT v FROM big WHERE s = 's03'",
		"SELECT v FROM big WHERE k = 7 AND v > 100",
		"SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k",
		"SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k AND big.v > 50",
	} {
		checkExecEquivalence(t, db, sql)
	}
}

func TestRangeScanRestoresRowOrder(t *testing.T) {
	// big.v descends with the row index, so the sorted index visits rows in
	// reverse; the emitted rows must still come back in table order.
	db := bigDB()
	res, err := planExec(t, db, "SELECT v FROM big WHERE v BETWEEN 1 AND 5", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 4, 3, 2, 1} // rows 195..199 in table order
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, row := range res.Rows {
		if row[0].Num != want[i] {
			t.Fatalf("row %d = %v, want %v (scan order not restored)", i, row[0].Num, want[i])
		}
	}
}

func planExec(t *testing.T, db *DB, sql string, prep func(*DB, *dt.Node) (*Plan, error)) (*Table, error) {
	t.Helper()
	return planFor(t, db, sql, prep).Exec()
}

func TestIndexInvalidationOnAdd(t *testing.T) {
	db := bigDB()
	plan := planFor(t, db, "SELECT v FROM big WHERE k = 7", Prepare)
	if _, err := plan.Exec(); err != nil {
		t.Fatal(err)
	}
	before := db.IndexCounters()
	if before.Builds == 0 || before.Hits == 0 {
		t.Fatalf("expected index build+hit before mutation: %+v", before)
	}

	// Adding an unrelated table leaves the plan fresh and its index warm.
	db.Add(&Table{Name: "other", Cols: []string{"x"}, Types: []ColType{TNum}})
	if _, err := plan.Exec(); err != nil {
		t.Fatalf("plan staled by unrelated DB.Add: %v", err)
	}
	if c := db.IndexCounters(); c.Builds != before.Builds {
		t.Fatalf("unrelated Add rebuilt indexes: before %+v, after %+v", before, c)
	}

	// Mutating the table the plan reads stales it and drops that table's
	// access-cache entry.
	if err := db.Append("big", [][]Value{{NumVal(7), NumVal(500), StrVal("s99")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Exec(); err == nil {
		t.Fatal("stale plan executed after Append to its table")
	}

	// A fresh plan over the new snapshot rebuilds the index from scratch.
	plan2 := planFor(t, db, "SELECT v FROM big WHERE k = 7", Prepare)
	if _, err := plan2.Exec(); err != nil {
		t.Fatal(err)
	}
	after := db.IndexCounters()
	if after.Builds <= before.Builds {
		t.Fatalf("index not rebuilt after Append: before %+v, after %+v", before, after)
	}
	if after.StatsBuilds <= before.StatsBuilds {
		t.Fatalf("stats not recomputed after Append: before %+v, after %+v", before, after)
	}
}

func TestIndexKeySemantics(t *testing.T) {
	// Keys that exercise the sweep path's equality quirks: -0 vs 0, the
	// number 1 vs the string '1', NULLs, and a mixed num/str column. All
	// four execution paths must agree bit for bit.
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "q",
		Cols:  []string{"n", "m", "s"},
		Types: []ColType{TNum, TNum, TStr},
		Rows: [][]Value{
			{NumVal(math.Copysign(0, -1)), NumVal(1), StrVal("a")},
			{NumVal(0), NumVal(2), StrVal("b")},
			{NullVal(), NumVal(3), StrVal("1")},
			{NumVal(1), NullVal(), NullVal()},
			{NumVal(2), NumVal(1), StrVal("a")},
		},
	})
	db.Add(&Table{
		Name:  "mixed",
		Cols:  []string{"x"},
		Types: []ColType{TStr},
		Rows: [][]Value{
			{NumVal(1)}, {StrVal("1")}, {NumVal(10)}, {StrVal("3")}, {NullVal()},
		},
	})
	for _, sql := range []string{
		"SELECT m FROM q WHERE n = 0",   // -0 must hash with +0
		"SELECT m FROM q WHERE n = '1'", // str literal on num column coerces
		"SELECT m FROM q WHERE s = '1'", // num-looking string key
		"SELECT m FROM q WHERE s = 1",   // num literal on str column coerces
		"SELECT m FROM q WHERE n >= 0",  // range over a column with NULLs
		"SELECT m FROM q WHERE n BETWEEN -1 AND 1",
		"SELECT x FROM mixed WHERE x = 1", // eq on a mixed-type column is legal
		"SELECT x FROM mixed WHERE x < 5", // range on mixed types must stay a sweep
		"SELECT x FROM mixed WHERE x BETWEEN 1 AND 10",
		"SELECT a.m, b.x FROM q AS a, mixed AS b WHERE a.n = b.x",
	} {
		checkExecEquivalence(t, db, sql)
	}
}

func TestNaNColumnDisablesIndex(t *testing.T) {
	// Compare(NaN, x) == 0 for every number x, so under the sweep a NaN row
	// matches any numeric equality; the hash index would key it as "NaN" and
	// miss. The chooser must refuse the index even when forced.
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "nan",
		Cols:  []string{"n", "m"},
		Types: []ColType{TNum, TNum},
		Rows: [][]Value{
			{NumVal(1), NumVal(10)},
			{NumVal(math.NaN()), NumVal(20)},
			{NumVal(5), NumVal(30)},
		},
	})
	for _, sql := range []string{
		"SELECT m FROM nan WHERE n = 5",
		"SELECT m FROM nan WHERE n = 1",
		"SELECT m FROM nan WHERE n >= 2",
		"SELECT m FROM nan WHERE n BETWEEN 0 AND 3",
	} {
		checkExecEquivalence(t, db, sql)
	}
	got := scanPath(t, planFor(t, db, "SELECT m FROM nan WHERE n = 5", prepareForceIndex))
	if got != "full-scan" {
		t.Fatalf("forced plan on NaN column used %q, want full-scan", got)
	}
}

func TestJoinBuildReusesColumnIndex(t *testing.T) {
	db := bigDB()
	// The vectorized join reuses the DB-cached whole-column columnar hash.
	plan := planFor(t, db, "SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k", Prepare)
	_, prof, err := plan.ExecProfiled()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range prof.Ops {
		if op.Op == "hash-build" && op.Path == "columnar(k)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("vectorized join build did not reuse the columnar hash: %+v", prof.Ops)
	}

	// A non-vectorizable conjunct keeps the row pipeline, whose build side
	// reuses the per-column hash index.
	plan = planFor(t, db, "SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k AND lower(tiny.lbl) >= ''", Prepare)
	_, prof, err = plan.ExecProfiled()
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, op := range prof.Ops {
		if op.Op == "hash-build" && op.Path == "index(k)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("row-path join build did not reuse the column index: %+v", prof.Ops)
	}
}

func TestReversedBuildSide(t *testing.T) {
	// tiny (2 rows) probes big (200 rows); big carries a scan predicate so
	// its build cannot reuse the column index, and the estimate gap makes
	// the chooser build over tiny instead. The lower() conjunct (always
	// true) keeps the query off the vectorized path so the row pipeline's
	// reversed join stays exercised.
	db := bigDB()
	sql := "SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k AND big.v > 50 AND lower(tiny.lbl) >= ''"
	plan := planFor(t, db, sql, Prepare)
	_, prof, err := plan.ExecProfiled()
	if err != nil {
		t.Fatal(err)
	}
	var join OpStat
	for _, op := range prof.Ops {
		if op.Op == "join" {
			join = op
		}
	}
	if !strings.Contains(join.Detail, "reversed") || join.Path != "build=tiny" {
		t.Fatalf("expected reversed join building over tiny, got %+v", prof.Ops)
	}
	checkExecEquivalence(t, db, sql)
}

func TestExplainPlanText(t *testing.T) {
	db := bigDB()
	plan := planFor(t, db, "SELECT v FROM big WHERE k = 7 ORDER BY v LIMIT 3", Prepare)
	s := plan.Explain()
	for _, want := range []string{"index-scan(k)", "top-k", "limit: 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, s)
		}
	}
	join := planFor(t, db, "SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k", Prepare)
	s = join.Explain()
	if !strings.Contains(s, "vectorized hash build=big (reuses columnar(k))") {
		t.Fatalf("EXPLAIN missing columnar-reuse note:\n%s", s)
	}
	rowJoin := planFor(t, db, "SELECT big.v, tiny.lbl FROM tiny, big WHERE tiny.k = big.k AND lower(tiny.lbl) >= ''", Prepare)
	s = rowJoin.Explain()
	if !strings.Contains(s, "hash build=big (reuses index(k))") {
		t.Fatalf("EXPLAIN missing index-reuse note:\n%s", s)
	}
	// Explain must not execute: it works on plans whose DB has since moved.
	db.Add(&Table{Name: "other", Cols: []string{"x"}, Types: []ColType{TNum}})
	if plan.Explain() == "" {
		t.Fatal("Explain on a stale plan should still render")
	}
}
