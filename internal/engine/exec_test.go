package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pi2/internal/sqlparser"
)

// testDB builds a small database used across the engine tests.
func testDB() *DB {
	db := NewDB("2020-12-31")
	db.Add(&Table{
		Name:  "T",
		Cols:  []string{"p", "a", "b"},
		Types: []ColType{TNum, TNum, TNum},
		Rows: [][]Value{
			{NumVal(1), NumVal(1), NumVal(2)},
			{NumVal(1), NumVal(2), NumVal(2)},
			{NumVal(2), NumVal(1), NumVal(3)},
			{NumVal(3), NumVal(2), NumVal(2)},
			{NumVal(3), NumVal(1), NumVal(1)},
		},
	})
	db.Add(&Table{
		Name:  "emp",
		Cols:  []string{"id", "dept", "salary"},
		Types: []ColType{TNum, TStr, TNum},
		Rows: [][]Value{
			{NumVal(1), StrVal("eng"), NumVal(100)},
			{NumVal(2), StrVal("eng"), NumVal(120)},
			{NumVal(3), StrVal("ops"), NumVal(90)},
			{NumVal(4), StrVal("ops"), NumVal(80)},
		},
	})
	db.Add(&Table{
		Name:  "dept",
		Cols:  []string{"name", "city"},
		Types: []ColType{TStr, TStr},
		Rows: [][]Value{
			{StrVal("eng"), StrVal("NYC")},
			{StrVal("ops"), StrVal("SF")},
		},
	})
	db.Add(&Table{
		Name:  "events",
		Cols:  []string{"day", "n"},
		Types: []ColType{TStr, TNum},
		Rows: [][]Value{
			{StrVal("2020-12-01"), NumVal(5)},
			{StrVal("2020-12-15"), NumVal(7)},
			{StrVal("2020-12-30"), NumVal(9)},
		},
	})
	return db
}

func run(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	res, err := ExecSQL(db, sql, sqlparser.Parse)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestSelectWhere(t *testing.T) {
	res := run(t, testDB(), "SELECT p, a FROM T WHERE a = 1")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Cols[0] != "p" || res.Cols[1] != "a" {
		t.Fatalf("cols = %v", res.Cols)
	}
	for _, row := range res.Rows {
		if row[1].Num != 1 {
			t.Fatalf("filter failed: %v", row)
		}
	}
}

func TestGroupByCount(t *testing.T) {
	res := run(t, testDB(), "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3 (p=1,2,3)", len(res.Rows))
	}
	if res.Cols[1] != "count" {
		t.Fatalf("cols = %v", res.Cols)
	}
	byP := map[float64]float64{}
	for _, r := range res.Rows {
		byP[r[0].Num] = r[1].Num
	}
	if byP[1] != 1 || byP[2] != 1 || byP[3] != 1 {
		t.Fatalf("counts = %v", byP)
	}
}

func TestAggregates(t *testing.T) {
	res := run(t, testDB(), "SELECT dept, sum(salary), avg(salary), min(salary), max(salary) FROM emp GROUP BY dept")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].Str == "eng" {
			if r[1].Num != 220 || r[2].Num != 110 || r[3].Num != 100 || r[4].Num != 120 {
				t.Fatalf("eng aggregates = %v", r)
			}
		}
	}
	if res.Cols[1] != "sum_salary" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestAggregateNoGroupBy(t *testing.T) {
	res := run(t, testDB(), "SELECT count(*) FROM emp")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 4 {
		t.Fatalf("count = %v", res.Rows)
	}
	// empty input still yields one row with count 0
	res = run(t, testDB(), "SELECT count(*) FROM emp WHERE salary > 1000")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 0 {
		t.Fatalf("count over empty = %v", res.Rows)
	}
}

func TestJoinTwoTables(t *testing.T) {
	res := run(t, testDB(), "SELECT e.id, d.city FROM emp AS e, dept AS d WHERE e.dept = d.name AND e.salary >= 100")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].Str != "NYC" {
			t.Fatalf("join row = %v", r)
		}
	}
}

func TestBetweenAndIn(t *testing.T) {
	res := run(t, testDB(), "SELECT id FROM emp WHERE salary BETWEEN 85 AND 110")
	if len(res.Rows) != 2 {
		t.Fatalf("between rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT id FROM emp WHERE dept IN ('eng')")
	if len(res.Rows) != 2 {
		t.Fatalf("in rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT id FROM emp WHERE dept NOT IN ('eng')")
	if len(res.Rows) != 2 {
		t.Fatalf("not-in rows = %v", res.Rows)
	}
}

func TestInExpressionAsColumn(t *testing.T) {
	res := run(t, testDB(), "SELECT id, id in (1, 2) as color FROM emp")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[1] != "color" {
		t.Fatalf("cols = %v", res.Cols)
	}
	for _, r := range res.Rows {
		want := 0.0
		if r[0].Num <= 2 {
			want = 1.0
		}
		if r[1].Num != want {
			t.Fatalf("bool col: %v", r)
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	res := run(t, testDB(), "SELECT id FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCorrelatedSubqueryInHaving(t *testing.T) {
	// For each dept, keep groups whose total equals the max group total of
	// that same dept — the structure of the paper's sales Q1.
	sql := `SELECT dept, salary, count(*) FROM emp AS e1 GROUP BY dept, salary
	        HAVING salary >= (SELECT max(salary) FROM emp AS e2 WHERE e2.dept = e1.dept)`
	res := run(t, testDB(), sql)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	seen := map[string]float64{}
	for _, r := range res.Rows {
		seen[r[0].Str] = r[1].Num
	}
	if seen["eng"] != 120 || seen["ops"] != 90 {
		t.Fatalf("per-dept max rows = %v", seen)
	}
}

func TestDerivedTable(t *testing.T) {
	sql := `SELECT d.dept, d.total FROM (SELECT dept, sum(salary) AS total FROM emp GROUP BY dept) AS d WHERE d.total > 200`
	res := run(t, testDB(), sql)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "eng" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinctOrderLimit(t *testing.T) {
	res := run(t, testDB(), "SELECT DISTINCT a FROM T ORDER BY a DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT DISTINCT a FROM T ORDER BY a")
	if len(res.Rows) != 2 || res.Rows[0][0].Num != 1 || res.Rows[1][0].Num != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDateFunctions(t *testing.T) {
	res := run(t, testDB(), "SELECT day FROM events WHERE day > date(today(), '-20 days')")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT today() FROM events LIMIT 1")
	if res.Rows[0][0].Str != "2020-12-31" {
		t.Fatalf("today = %v", res.Rows[0][0])
	}
}

func TestStarExpansion(t *testing.T) {
	res := run(t, testDB(), "SELECT * FROM dept")
	if len(res.Cols) != 2 || res.Cols[0] != "name" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestArithmeticAndBooleans(t *testing.T) {
	res := run(t, testDB(), "SELECT salary * 2 + 1 AS x FROM emp WHERE id = 1")
	if res.Rows[0][0].Num != 201 {
		t.Fatalf("x = %v", res.Rows[0][0])
	}
	res = run(t, testDB(), "SELECT id FROM emp WHERE dept = 'eng' OR salary < 85")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT id FROM emp WHERE NOT (dept = 'eng')")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLike(t *testing.T) {
	res := run(t, testDB(), "SELECT name FROM dept WHERE name LIKE 'e%'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "eng" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = run(t, testDB(), "SELECT name FROM dept WHERE name LIKE '_ps'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ops" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := testDB()
	bad := []string{
		"SELECT x FROM nosuch",
		"SELECT nosuchcol FROM T",
		"SELECT unknownfn(a) FROM T",
		"SELECT sum(dept) FROM emp",
	}
	for _, sql := range bad {
		if _, err := ExecSQL(db, sql, sqlparser.Parse); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestResultTypes(t *testing.T) {
	res := run(t, testDB(), "SELECT dept, count(*), salary FROM emp GROUP BY dept, salary")
	if res.Types[0] != TStr || res.Types[1] != TNum || res.Types[2] != TNum {
		t.Fatalf("types = %v", res.Types)
	}
}

func TestValueCompareProperties(t *testing.T) {
	// Compare is antisymmetric and consistent with EqualVal.
	f := func(a, b float64) bool {
		va, vb := NumVal(a), NumVal(b)
		c1, c2 := Compare(va, vb), Compare(vb, va)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == EqualVal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatchProperties(t *testing.T) {
	// '%' alone matches everything; exact strings match themselves.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := r.Intn(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(4))
		}
		s := string(b)
		if !likeMatch(s, "%") {
			t.Fatalf("%% should match %q", s)
		}
		if !likeMatch(s, s) {
			t.Fatalf("%q should match itself", s)
		}
		if n > 0 && !likeMatch(s, "%"+s[n-1:]) {
			t.Fatalf("suffix pattern failed for %q", s)
		}
	}
	if likeMatch("abc", "a_") {
		t.Fatal("underscore should match exactly one char")
	}
}

func TestDateOffset(t *testing.T) {
	v, err := dateOffset("2020-12-31", "-30 days")
	if err != nil || v.Str != "2020-12-01" {
		t.Fatalf("got %v, %v", v, err)
	}
	v, err = dateOffset("2020-01-31", "+1 month")
	if err != nil {
		t.Fatal(err)
	}
	if v.Str == "" {
		t.Fatal("empty result")
	}
	if _, err := dateOffset("junk", "-1 days"); err == nil {
		t.Fatal("expected error for bad date")
	}
	if _, err := dateOffset("2020-01-01", "soon"); err == nil {
		t.Fatal("expected error for bad offset")
	}
}

func TestOrderByExpression(t *testing.T) {
	res := run(t, testDB(), "SELECT id, salary FROM emp ORDER BY salary DESC, id")
	if res.Rows[0][0].Num != 2 || res.Rows[3][0].Num != 4 {
		t.Fatalf("order = %v", res.Rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	res := run(t, testDB(), "SELECT 1 + 2 AS three")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
