package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	dt "pi2/internal/difftree"
)

// The vectorized execution path: compile-time half. compileVec recognizes a
// restricted query class and attaches a vecPlan when — and only when — every
// piece of the query is vectorizable:
//
//   - one or two base-table FROM sources joined by comma (no JOIN keyword,
//     no derived tables), with canonical columnar images (colstore.go);
//   - every WHERE conjunct is a recognized pure shape: `col op literal`,
//     `col op col` (same source), `col BETWEEN lit AND lit`, `col LIKE lit`,
//     `col [NOT] IN (literals)`, or a cross-source comparison `a.x op b.y`;
//   - for two sources, any `a.x = b.y` hash key joins columns that are both
//     all-numeric NaN-free or both all-string — the classes where keying on
//     raw column data reproduces appendJoinKey's `=` coercion bit for bit
//     (key.go: joinKeyBits / raw strings). Mixed-type or NaN-bearing key
//     columns fall back to the row pipeline's encoded-key hash join;
//   - select items, GROUP BY keys and ORDER BY keys are bare local columns
//     (grouped queries additionally allow literals and count/sum/avg/min/max
//     over a bare column, and HAVING one comparison over those atoms).
//
// Everything else keeps the row pipeline. Because every recognized conjunct
// is provably pure (no evaluation errors) the pushdown/hoisting soundness
// argument from pipeline.go applies wholesale, and the runtime (vecexec.go)
// re-materializes batch output in the interpreter's nested-loop scan order,
// so the vectorized path is bit-identical to the other four — including
// error text, which for grouped plans is replayed per group in exactly the
// row path's HAVING → select items → order keys evaluation order.

// vecCol identifies one column of one FROM source.
type vecCol struct{ src, col int }

type vecCmpOp uint8

const (
	vecEq vecCmpOp = iota
	vecNe
	vecLt
	vecLe
	vecGt
	vecGe
)

// cmpTest applies op to a Compare result.
func cmpTest(op vecCmpOp, c int) bool {
	switch op {
	case vecEq:
		return c == 0
	case vecNe:
		return c != 0
	case vecLt:
		return c < 0
	case vecLe:
		return c <= 0
	case vecGt:
		return c > 0
	default:
		return c >= 0
	}
}

func vecOpFor(label string) (vecCmpOp, bool) {
	switch label {
	case "=":
		return vecEq, true
	case "<>":
		return vecNe, true
	case "<":
		return vecLt, true
	case "<=":
		return vecLe, true
	case ">":
		return vecGt, true
	case ">=":
		return vecGe, true
	}
	return 0, false
}

func flipOp(op vecCmpOp) vecCmpOp {
	switch op {
	case vecLt:
		return vecGt
	case vecGt:
		return vecLt
	case vecLe:
		return vecGe
	case vecGe:
		return vecLe
	}
	return op // = and <> are symmetric
}

type vecPredKind uint8

const (
	predCmpLit vecPredKind = iota
	predCmpCol
	predBetween
	predLike
	predIn
)

// Fast-path class resolved at compile time from the columnar image.
type vecFast uint8

const (
	fastNone vecFast = iota // generic: reconstruct Values, Compare
	fastNum                 // all-numeric column, numeric literal(s)
	fastStr                 // all-string column, string literal(s)
)

// vecPred is one pushed-down single-source conjunct.
type vecPred struct {
	kind    vecPredKind
	col     int
	col2    int // predCmpCol: right-hand column, same source
	op      vecCmpOp
	lit     Value
	lo, hi  Value   // predBetween bounds
	pattern string  // predLike
	elems   []Value // predIn literal list
	negate  bool    // NOT IN / NOT LIKE
	fast    vecFast
}

// vecCross is a cross-source pair predicate, evaluated per joined pair via
// Compare (NULL on either side drops the pair, exactly like the row path).
type vecCross struct {
	op   vecCmpOp
	l, r vecCol
}

type vecAggKind uint8

const (
	aggCountStar vecAggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// vecAgg is one distinct aggregate computed over the group's pairs.
type vecAgg struct {
	kind   vecAggKind
	col    vecCol // unused for aggCountStar
	strErr error  // precomputed "engine: sum()/avg() over strings"
}

type gExprKind uint8

const (
	gLit gExprKind = iota
	gCol
	gAgg
)

// gExpr is a per-group scalar: a literal, a representative-row column, or a
// precomputed aggregate.
type gExpr struct {
	kind       gExprKind
	lit        Value
	col        vecCol
	lower      string // lowered name for the empty-group outer-scope lookup
	errUnknown error  // "unknown column" with the original spelling
	agg        int    // index into vecPlan.aggs
}

// gCmp is the recognized HAVING shape: one comparison (or one bare atom,
// judged by truthiness).
type gCmp struct {
	cmp  bool
	op   vecCmpOp
	l, r gExpr
}

// vecPlan is the compiled vectorized query.
type vecPlan struct {
	nsrc      int
	tabs      []*Table
	cols      []*tableCols
	scanPreds [][]vecPred

	// two-source join
	hasKey bool
	key0   int // key column in source 0 (probe side)
	key1   int // key column in source 1 (build side)
	keyNum bool
	cross  []vecCross

	// non-grouped output
	items     []vecCol
	orderCols []vecCol
	distinct  bool // vec dedupes itself; the sink's distinct is disabled

	// grouped output
	grouped    bool
	hasGroupBy bool
	groupBy    []vecCol
	aggs       []vecAgg
	gItems     []gExpr
	gHaving    *gCmp
	gOrder     []gExpr
}

// vecState is the per-plan runtime cache: selections and the build-side hash
// are pure functions of immutable base tables, so they are computed once and
// shared by every (possibly concurrent) Exec, mirroring scanState. Durations
// are kept so a profiled run after an unprofiled cold run still reports the
// warm truth (~0, like a warm scanState scan).
type vecState struct {
	selOnce sync.Once
	sel     [][]int32 // per source; nil = all rows (no pushed predicates)
	selDur  []time.Duration

	buildOnce sync.Once
	numBuild  *numHashIndex
	strBuild  *strHashIndex
	buildDur  time.Duration
}

// minVecRows gates the vectorized path by size: below this the row path is
// already micro-seconds fast and building columnar storage buys nothing.
// Forced mode (prepareForceVec) bypasses the gate but never eligibility.
const minVecRows = 64

// compileVec attaches a vectorized plan to pq when the query is eligible.
// Must run after the pipeline/pred compilation (it defers to chosen index
// access paths) and after grouped/hasStar/distinct are known. c must be the
// inner (scoped) compiler.
func (c *compiler) compileVec(pq *planQuery, sel, where, groupby, having, orderby *dt.Node) {
	if c.noVec || pq.err != nil || !pq.opt || pq.hasJoin || pq.hasStar {
		return
	}
	n := len(pq.sources)
	if n < 1 || n > 2 {
		return
	}
	total := 0
	for _, ps := range pq.sources {
		if ps.sub != nil || ps.table == nil {
			return
		}
		total += len(ps.table.Rows)
	}
	if pq.pipe != nil {
		for i := range pq.pipe.access {
			if pq.pipe.access[i].mode != accessFull {
				return // the cost chooser picked an index; keep that win
			}
		}
	}
	if !c.vecForce && total < minVecRows {
		return
	}

	vp := &vecPlan{
		nsrc:      n,
		tabs:      make([]*Table, n),
		cols:      make([]*tableCols, n),
		scanPreds: make([][]vecPred, n),
		key0:      -1, key1: -1,
		grouped:    pq.grouped,
		hasGroupBy: pq.hasGroupBy,
	}
	for i, ps := range pq.sources {
		tc := c.db.columnsFor(ps.table)
		if !tc.ok {
			return // ragged rows or non-canonical cells: row semantics only
		}
		vp.tabs[i] = ps.table
		vp.cols[i] = tc
	}

	// WHERE: every conjunct must be a recognized shape.
	type equi struct{ l, r vecCol }
	var equis []equi
	if where != nil {
		for _, e := range flattenAnd(where, nil) {
			p, cr, eq, ok := c.vecConjunct(vp, e)
			switch {
			case !ok:
				return
			case eq != nil:
				equis = append(equis, equi{eq[0], eq[1]})
			case cr != nil:
				vp.cross = append(vp.cross, *cr)
			default:
				vp.scanPreds[p.colSrc] = append(vp.scanPreds[p.colSrc], p.pred)
			}
		}
	}
	// Pick the first hash-keyable equi conjunct; the rest become Compare
	// cross predicates (exact `=` semantics). An equi conjunct that cannot
	// be keyed (mixed-type or NaN column) makes the whole query ineligible —
	// the row pipeline's encoded-key hash join handles it better than a
	// vectorized nested loop would.
	for _, eq := range equis {
		if !vp.hasKey {
			c0, c1 := &vp.cols[0].cols[eq.l.col], &vp.cols[1].cols[eq.r.col]
			switch {
			case c0.allNum() && c1.allNum() && !c0.hasNaN && !c1.hasNaN:
				vp.hasKey, vp.keyNum = true, true
				vp.key0, vp.key1 = eq.l.col, eq.r.col
				continue
			case c0.allStr() && c1.allStr():
				vp.hasKey, vp.keyNum = true, false
				vp.key0, vp.key1 = eq.l.col, eq.r.col
				continue
			default:
				return
			}
		}
		vp.cross = append(vp.cross, vecCross{op: vecEq, l: vecCol{0, eq.l.col}, r: vecCol{1, eq.r.col}})
	}

	// Output shapes.
	if pq.grouped {
		if !c.vecGrouped(vp, sel, groupby, having, orderby) {
			return
		}
	} else {
		for _, item := range sel.Children {
			col, ok := c.vecLocalCol(item.Children[0])
			if !ok {
				return
			}
			vp.items = append(vp.items, col)
		}
		for _, oi := range orderItems(orderby) {
			col, ok := c.vecLocalCol(oi.Children[0])
			if !ok {
				return
			}
			vp.orderCols = append(vp.orderCols, col)
		}
		vp.distinct = pq.distinct
	}

	pq.vec = vp
	pq.vecst = &vecState{}
}

// vecLocalCol recognizes a bare reference to one of this query's own columns.
func (c *compiler) vecLocalCol(e *dt.Node) (vecCol, bool) {
	if e.Kind != dt.KindIdent {
		return vecCol{}, false
	}
	fi, ci, ok := c.localColumn(e.Label)
	if !ok {
		return vecCol{}, false
	}
	return vecCol{src: fi, col: ci}, true
}

// vecConjResult distinguishes the three destinations of a recognized
// conjunct: a pushed single-source predicate, a cross-source predicate, or
// an equi-join key candidate.
type vecPushed struct {
	colSrc int
	pred   vecPred
}

// vecConjunct classifies one WHERE conjunct. Exactly one of (pushed, cross,
// equi) is set on ok; equi is the [probe, build] column pair for `a.x = b.y`
// across the two sources.
func (c *compiler) vecConjunct(vp *vecPlan, e *dt.Node) (pushed vecPushed, cross *vecCross, equi *[2]vecCol, ok bool) {
	switch e.Kind {
	case dt.KindNot:
		// NOT LIKE only: a non-NULL operand yields a definite boolean to
		// negate, and a NULL operand stays NULL under NOT, dropping the row
		// either way. Other negations keep the row path.
		if len(e.Children) == 1 && e.Children[0].Kind == dt.KindBinary && e.Children[0].Label == "like" {
			p, _, _, okLike := c.vecConjunct(vp, e.Children[0])
			if okLike && p.pred.kind == predLike {
				p.pred.negate = true
				return p, nil, nil, true
			}
		}
		return pushed, nil, nil, false
	case dt.KindBinary:
		if e.Label == "like" {
			col, okCol := c.vecLocalCol(e.Children[0])
			lit, okLit := litValue(e.Children[1])
			if !okCol || !okLit {
				return pushed, nil, nil, false
			}
			return vecPushed{col.src, vecPred{kind: predLike, col: col.col, pattern: lit.Text()}}, nil, nil, true
		}
		op, okOp := vecOpFor(e.Label)
		if !okOp || len(e.Children) != 2 {
			return pushed, nil, nil, false
		}
		l, okL := c.vecLocalCol(e.Children[0])
		r, okR := c.vecLocalCol(e.Children[1])
		switch {
		case okL && okR:
			if l.src == r.src {
				return vecPushed{l.src, vecPred{kind: predCmpCol, col: l.col, col2: r.col, op: op}}, nil, nil, true
			}
			// Orient so l references source 0.
			if l.src != 0 {
				l, r, op = r, l, flipOp(op)
			}
			if op == vecEq {
				return pushed, nil, &[2]vecCol{l, r}, true
			}
			return pushed, &vecCross{op: op, l: l, r: r}, nil, true
		case okL:
			lit, okLit := litValue(e.Children[1])
			if !okLit {
				return pushed, nil, nil, false
			}
			return vecPushed{l.src, c.cmpLitPred(vp, l, op, lit)}, nil, nil, true
		case okR:
			lit, okLit := litValue(e.Children[0])
			if !okLit {
				return pushed, nil, nil, false
			}
			return vecPushed{r.src, c.cmpLitPred(vp, r, flipOp(op), lit)}, nil, nil, true
		}
		return pushed, nil, nil, false
	case dt.KindBetween:
		if len(e.Children) != 3 {
			return pushed, nil, nil, false
		}
		col, okCol := c.vecLocalCol(e.Children[0])
		lo, okLo := litValue(e.Children[1])
		hi, okHi := litValue(e.Children[2])
		if !okCol || !okLo || !okHi {
			return pushed, nil, nil, false
		}
		p := vecPred{kind: predBetween, col: col.col, lo: lo, hi: hi}
		cd := &vp.cols[col.src].cols[col.col]
		switch {
		case cd.allNum() && !lo.IsStr && !hi.IsStr:
			p.fast = fastNum
		case cd.allStr() && lo.IsStr && hi.IsStr:
			p.fast = fastStr
		}
		return vecPushed{col.src, p}, nil, nil, true
	case dt.KindIn:
		if len(e.Children) != 2 || e.Children[1].Kind == dt.KindQuery {
			return pushed, nil, nil, false
		}
		col, okCol := c.vecLocalCol(e.Children[0])
		if !okCol {
			return pushed, nil, nil, false
		}
		p := vecPred{kind: predIn, col: col.col, negate: e.Label == "not in"}
		for _, el := range e.Children[1].Children {
			lit, okLit := litValue(el)
			if !okLit {
				return pushed, nil, nil, false
			}
			p.elems = append(p.elems, lit)
		}
		return vecPushed{col.src, p}, nil, nil, true
	}
	return pushed, nil, nil, false
}

func (c *compiler) cmpLitPred(vp *vecPlan, col vecCol, op vecCmpOp, lit Value) vecPred {
	p := vecPred{kind: predCmpLit, col: col.col, op: op, lit: lit}
	cd := &vp.cols[col.src].cols[col.col]
	switch {
	case cd.allNum() && !lit.IsStr:
		p.fast = fastNum
	case cd.allStr() && lit.IsStr:
		p.fast = fastStr
	}
	return p
}

// vecGrouped recognizes the grouped output shapes: GROUP BY keys are bare
// columns; select items, HAVING operands and ORDER BY keys are atoms
// (literal, bare column, or aggregate over a bare column).
func (c *compiler) vecGrouped(vp *vecPlan, sel, groupby, having, orderby *dt.Node) bool {
	if groupby.Kind == dt.KindGroupBy {
		for _, g := range groupby.Children {
			col, ok := c.vecLocalCol(g)
			if !ok {
				return false
			}
			vp.groupBy = append(vp.groupBy, col)
		}
	}
	for _, item := range sel.Children {
		a, ok := c.gAtom(vp, item.Children[0])
		if !ok {
			return false
		}
		vp.gItems = append(vp.gItems, a)
	}
	if having.Kind == dt.KindHaving {
		h := having.Children[0]
		if h.Kind == dt.KindBinary {
			if op, okOp := vecOpFor(h.Label); okOp && len(h.Children) == 2 {
				l, okL := c.gAtom(vp, h.Children[0])
				r, okR := c.gAtom(vp, h.Children[1])
				if !okL || !okR {
					return false
				}
				vp.gHaving = &gCmp{cmp: true, op: op, l: l, r: r}
			} else {
				return false
			}
		} else {
			a, ok := c.gAtom(vp, h)
			if !ok {
				return false
			}
			vp.gHaving = &gCmp{l: a}
		}
	}
	for _, oi := range orderItems(orderby) {
		a, ok := c.gAtom(vp, oi.Children[0])
		if !ok {
			return false
		}
		vp.gOrder = append(vp.gOrder, a)
	}
	return true
}

// gAtom recognizes one grouped-context atom, interning aggregates.
func (c *compiler) gAtom(vp *vecPlan, e *dt.Node) (gExpr, bool) {
	switch e.Kind {
	case dt.KindNumber:
		lit, ok := litValue(e)
		if !ok {
			return gExpr{}, false
		}
		return gExpr{kind: gLit, lit: lit}, true
	case dt.KindString:
		return gExpr{kind: gLit, lit: StrVal(e.Label)}, true
	case dt.KindIdent:
		col, ok := c.vecLocalCol(e)
		if !ok {
			return gExpr{}, false
		}
		return gExpr{
			kind:       gCol,
			col:        col,
			lower:      strings.ToLower(e.Label),
			errUnknown: fmt.Errorf("engine: unknown column %q", e.Label),
		}, true
	case dt.KindFunc:
		if !isAggregate(e.Label) {
			return gExpr{}, false
		}
		a, ok := c.vecAggregate(e)
		if !ok {
			return gExpr{}, false
		}
		return gExpr{kind: gAgg, agg: vp.internAgg(a)}, true
	}
	return gExpr{}, false
}

func (c *compiler) vecAggregate(e *dt.Node) (vecAgg, bool) {
	name := e.Label
	star := len(e.Children) == 1 && e.Children[0].Kind == dt.KindStar
	if name == "count" && (star || len(e.Children) == 0) {
		return vecAgg{kind: aggCountStar}, true
	}
	if len(e.Children) != 1 {
		return vecAgg{}, false
	}
	col, ok := c.vecLocalCol(e.Children[0])
	if !ok {
		return vecAgg{}, false
	}
	switch name {
	case "count":
		return vecAgg{kind: aggCount, col: col}, true
	case "sum", "avg":
		k := aggSum
		if name == "avg" {
			k = aggAvg
		}
		return vecAgg{kind: k, col: col, strErr: fmt.Errorf("engine: %s() over strings", name)}, true
	case "min":
		return vecAgg{kind: aggMin, col: col}, true
	case "max":
		return vecAgg{kind: aggMax, col: col}, true
	}
	return vecAgg{}, false
}

// internAgg dedupes aggregates by (kind, column) and returns the index.
func (vp *vecPlan) internAgg(a vecAgg) int {
	for i := range vp.aggs {
		if vp.aggs[i].kind == a.kind && vp.aggs[i].col == a.col {
			return i
		}
	}
	vp.aggs = append(vp.aggs, a)
	return len(vp.aggs) - 1
}
