package engine

import (
	"encoding/binary"
	"math"
	"strconv"
)

// Map-key encodings for the hash-based relational operators. Two distinct
// encodings exist because SQL has two distinct equality notions in play:
//
//   - GROUP BY / DISTINCT partition rows by *value identity*: NULL is its own
//     group, the number 1 and the string '1' are different keys, and any byte
//     (including the historical 0x1f separator) may appear inside a string.
//     appendGroupKey encodes that identity with a type tag per value — no
//     Text() rendering, no separator to collide with.
//
//   - Hash equi-joins must agree exactly with the `=` operator, which
//     compares via Compare: numerics numerically, anything involving a
//     string by canonical text (so the number 1 *does* equal the string
//     '1'). appendJoinKey encodes that coercion. NULL never equals anything,
//     so callers skip NULL values instead of encoding them.
//
// Both encodings are length-delimited and therefore prefix-free per value:
// concatenating the per-column encodings of a row cannot collide with any
// other row's concatenation.
const (
	keyTagNull byte = 0
	keyTagNum  byte = 1
	keyTagStr  byte = 2
)

// appendGroupKey appends the type-tagged identity encoding of v to buf.
// Encodings are equal iff the values are identical (same nullness, same
// type, same contents); ±0 and distinct NaN payloads follow float64 bit
// identity, matching the distinction the old text keys already made.
func appendGroupKey(buf []byte, v Value) []byte {
	switch {
	case v.Null:
		return append(buf, keyTagNull)
	case v.IsStr:
		buf = append(buf, keyTagStr)
		buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
		return append(buf, v.Str...)
	default:
		buf = append(buf, keyTagNum)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Num))
	}
}

// groupKey renders a whole row as one group/distinct key, reusing buf.
// Callers look maps up with string(returnedBuf) — Go elides the allocation
// for lookups, so a string materializes only when a new key is inserted.
func groupKey(buf []byte, row []Value) []byte {
	buf = buf[:0]
	for _, v := range row {
		buf = appendGroupKey(buf, v)
	}
	return buf
}

// joinKeyBits is appendJoinKey's equivalence relation restricted to finite
// floats, as one uint64: -0 collapses onto +0 and everything else keys by
// bit pattern. Sound because strconv's shortest 'g' rendering is injective
// over finite floats — two finite non-NaN numbers have equal appendJoinKey
// encodings iff they have equal joinKeyBits. The vectorized join keys whole
// column slices this way instead of formatting one string per row; columns
// containing NaN (where Compare degenerates) or strings are refused by the
// eligibility chooser and stay on the encoded-key row path.
func joinKeyBits(f float64) uint64 {
	if f == 0 {
		return 0 // +0 and -0 share bucket, matching appendJoinKey
	}
	return math.Float64bits(f)
}

// appendJoinKey appends the `=`-coercion encoding of v to buf: two non-NULL
// values get the same encoding iff Compare(a, b) == 0. Numbers render as
// their canonical text (the exact string Compare coerces to), with -0
// normalized to 0 so that -0 = 0 keeps holding. v must not be NULL — NULL
// join keys match nothing and are skipped by the caller.
func appendJoinKey(buf []byte, v Value) []byte {
	if v.IsStr {
		buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
		return append(buf, v.Str...)
	}
	n := v.Num
	if n == 0 {
		n = 0 // collapse -0 onto +0: Compare treats them as equal
	}
	var tmp [32]byte
	s := strconv.AppendFloat(tmp[:0], n, 'g', -1, 64)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
