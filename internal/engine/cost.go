package engine

import (
	"strconv"

	dt "pi2/internal/difftree"
)

// The cost-based access-path chooser. compilePipe collects index *candidates*
// from the pushed-down conjuncts; chooseAccess judges them against the
// table's statistics and picks at most one per source; chooseBuildSide
// decides whether a two-source hash join should build over the smaller side.
//
// Two invariants keep this layer incapable of changing results:
//
//   - a chosen index only narrows the candidate row set fed to the scan's
//     predicate loop — every pushed conjunct (including the one the index
//     serves) still evaluates over the candidates, so the index must merely
//     produce a superset of the matching rows in ascending row order;
//   - eligibility (accessEstimate) is a semantic judgment, not a cost one:
//     NaN columns and mixed-type range probes are rejected even under
//     forced-index mode, because there the sweep and the index disagree.

// Cost model knobs. The constants are deliberately coarse: the point is to
// avoid indexing tables where a sweep is already cheap, and to only swap a
// join's build side when the win is clear.
const (
	minIndexRows     = 64 // below this a sweep beats probe + order bookkeeping
	indexAdvantage   = 4  // index must beat the sweep by this factor
	reverseAdvantage = 4  // build-side swap must shrink the build this much
)

type accessMode uint8

const (
	accessFull accessMode = iota
	accessEq
	accessRange
)

// scanAccess is the chosen (or candidate) access path for one source.
type scanAccess struct {
	mode           accessMode
	col            int    // column index in the base table
	colName        string // lowercased, for EXPLAIN and profiles
	eqKey          Value  // accessEq probe key
	lo, hi         Value  // accessRange bounds
	hasLo, hasHi   bool
	loExcl, hiExcl bool
	estRows        int // statistics estimate, for EXPLAIN and build-side choice
}

// path renders the access path the way EXPLAIN and Profile report it.
func (a scanAccess) path() string {
	switch a.mode {
	case accessEq:
		return "index-scan(" + a.colName + ")"
	case accessRange:
		return "range-scan(" + a.colName + ")"
	default:
		return "full-scan"
	}
}

// litValue evaluates a plan-time literal. NaN literals cannot be written in
// the grammar, but reject them defensively: NaN keys poison both index kinds.
func litValue(e *dt.Node) (Value, bool) {
	switch e.Kind {
	case dt.KindNumber:
		f, err := strconv.ParseFloat(e.Label, 64)
		if err != nil || f != f {
			return Value{}, false
		}
		return NumVal(f), true
	case dt.KindString:
		return StrVal(e.Label), true
	}
	return Value{}, false
}

// indexCandidate recognizes a pushed-down conjunct an index could serve:
// `col op literal` (either operand order; op in =,<,>,<=,>=) or
// `col BETWEEN literal AND literal`, where col is a bare reference to source
// fi's base table. Derived tables never qualify — their rows are rebuilt per
// execution, so there is nothing durable to index.
func (c *compiler) indexCandidate(pq *planQuery, fi int, e *dt.Node) (scanAccess, bool) {
	if pq.sources[fi].table == nil {
		return scanAccess{}, false
	}
	ident := func(n *dt.Node) (int, bool) {
		if n.Kind != dt.KindIdent {
			return 0, false
		}
		f, ci, ok := c.localColumn(n.Label)
		if !ok || f != fi {
			return 0, false
		}
		return ci, true
	}
	switch e.Kind {
	case dt.KindBinary:
		if len(e.Children) != 2 {
			return scanAccess{}, false
		}
		op := e.Label
		ci, okCol := ident(e.Children[0])
		lit, okLit := litValue(e.Children[1])
		if !okCol || !okLit {
			ci, okCol = ident(e.Children[1])
			lit, okLit = litValue(e.Children[0])
			if !okCol || !okLit {
				return scanAccess{}, false
			}
			// literal op col reads as col (flipped op) literal
			switch op {
			case "<":
				op = ">"
			case ">":
				op = "<"
			case "<=":
				op = ">="
			case ">=":
				op = "<="
			}
		}
		a := scanAccess{col: ci, colName: pq.sources[fi].cols[ci]}
		switch op {
		case "=":
			a.mode, a.eqKey = accessEq, lit
		case "<":
			a.mode, a.hi, a.hasHi, a.hiExcl = accessRange, lit, true, true
		case "<=":
			a.mode, a.hi, a.hasHi = accessRange, lit, true
		case ">":
			a.mode, a.lo, a.hasLo, a.loExcl = accessRange, lit, true, true
		case ">=":
			a.mode, a.lo, a.hasLo = accessRange, lit, true
		default:
			return scanAccess{}, false
		}
		return a, true
	case dt.KindBetween:
		if len(e.Children) != 3 {
			return scanAccess{}, false
		}
		ci, okCol := ident(e.Children[0])
		lo, okLo := litValue(e.Children[1])
		hi, okHi := litValue(e.Children[2])
		if !okCol || !okLo || !okHi {
			return scanAccess{}, false
		}
		return scanAccess{
			mode: accessRange, col: ci, colName: pq.sources[fi].cols[ci],
			lo: lo, hasLo: true, hi: hi, hasHi: true,
		}, true
	}
	return scanAccess{}, false
}

// accessEstimate judges a candidate against the table's statistics. eligible
// reports whether the index agrees with the sweep semantics at all — false
// is binding even under forced-index mode. est is the predicted surviving
// row count under the usual uniformity assumptions.
func accessEstimate(st *TableStats, a scanAccess) (est int, eligible bool) {
	if a.col >= len(st.Cols) {
		return 0, false
	}
	cs := st.Cols[a.col]
	if cs.HasNaN {
		// Compare treats NaN as equal to every number, so under the sweep a
		// NaN row matches every numeric comparison — no index reproduces that.
		return 0, false
	}
	nonNull := st.Rows - cs.Nulls
	switch a.mode {
	case accessEq:
		if cs.NDV == 0 {
			return 0, true
		}
		est = nonNull / cs.NDV
		if est < 1 {
			est = 1
		}
		return est, true
	case accessRange:
		// Binary search needs Compare to be a total order along the sorted
		// run: only true for type-homogeneous columns, and only for bounds
		// of the column's own type (text order is not numeric order).
		if !cs.Homogeneous() {
			return 0, false
		}
		if nonNull == 0 {
			return 0, true
		}
		isStr := cs.Strs > 0
		if (a.hasLo && a.lo.IsStr != isStr) || (a.hasHi && a.hi.IsStr != isStr) {
			return 0, false
		}
		return rangeEstimate(cs, nonNull, a), true
	}
	return st.Rows, true
}

// rangeEstimate interpolates a numeric range against the column's [min,max]
// span; string ranges fall back to a fixed 1/3 selectivity.
func rangeEstimate(cs ColStats, nonNull int, a scanAccess) int {
	if cs.Min.IsStr {
		return (nonNull + 2) / 3
	}
	mn, mx := cs.Min.Num, cs.Max.Num
	lo, hi := mn, mx
	if a.hasLo {
		lo = a.lo.Num
	}
	if a.hasHi {
		hi = a.hi.Num
	}
	if lo < mn {
		lo = mn
	}
	if hi > mx {
		hi = mx
	}
	if lo > hi {
		return 0
	}
	span := mx - mn
	if span <= 0 {
		return nonNull
	}
	est := int((hi - lo) / span * float64(nonNull))
	if est < 1 {
		est = 1
	}
	return est
}

// chooseAccess picks at most one eligible candidate per source — the one
// with the smallest estimate — and installs it when it beats a sweep by
// indexAdvantage on a table of at least minIndexRows. Forced mode skips the
// cost threshold but never the eligibility judgment.
func (c *compiler) chooseAccess(pq *planQuery, cands [][]scanAccess) {
	for i, list := range cands {
		if len(list) == 0 {
			continue
		}
		st := c.db.tableStats(pq.sources[i].table)
		best, bestEst := -1, 0
		for k := range list {
			est, ok := accessEstimate(st, list[k])
			if !ok {
				continue
			}
			if best < 0 || est < bestEst {
				best, bestEst = k, est
			}
		}
		if best < 0 {
			continue
		}
		if !c.force && (st.Rows < minIndexRows || bestEst*indexAdvantage > st.Rows) {
			continue
		}
		a := list[best]
		a.estRows = bestEst
		pq.pipe.access[i] = a
	}
}

// estSourceRows estimates how many rows of source i survive its scan: the
// chosen access path's estimate if any, discounted by a default selectivity
// per remaining pushed predicate. ok is false for derived tables.
func (c *compiler) estSourceRows(pq *planQuery, i int) (int, bool) {
	ps := pq.sources[i]
	if ps.table == nil {
		return 0, false
	}
	st := c.db.tableStats(ps.table)
	est := float64(st.Rows)
	extra := len(pq.pipe.scanPreds[i])
	if a := pq.pipe.access[i]; a.mode != accessFull {
		est = float64(a.estRows)
		extra--
	}
	for ; extra > 0; extra-- {
		est /= 3
	}
	return int(est), true
}

// chooseBuildSide decides whether a two-source hash equi-join should build
// its table over source 0 instead of source 1 (runPipeReversed). The swap is
// worthwhile when the normal build side is much larger than the probe side
// and its hash table is not already a free ride on the column index.
func (c *compiler) chooseBuildSide(pq *planQuery) {
	if len(pq.sources) != 2 || len(pq.pipe.steps[1].build) == 0 {
		return
	}
	if c.force {
		pq.pipe.reverse = true
		return
	}
	if pq.buildReusable(1) {
		return // cached column index: the normal build is already amortized
	}
	r0, ok0 := c.estSourceRows(pq, 0)
	r1, ok1 := c.estSourceRows(pq, 1)
	if !ok0 || !ok1 || r1 < minIndexRows {
		return
	}
	if r0*reverseAdvantage <= r1 {
		pq.pipe.reverse = true
	}
}

// buildReusable reports whether pipeline level i's hash build can be served
// by the DB's per-column hash index: a single bare-column key over an
// unfiltered base table, where the index's buckets are bit-identical to what
// buildHashSide would produce.
func (pq *planQuery) buildReusable(i int) bool {
	return pq.sources[i].sub == nil &&
		pq.pipe.steps[i].buildCol >= 0 &&
		len(pq.pipe.scanPreds[i]) == 0 &&
		pq.pipe.access[i].mode == accessFull
}
