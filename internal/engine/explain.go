package engine

import (
	"fmt"
	"strings"
)

// Explain renders the compiled plan without executing anything: per-source
// access paths with statistics estimates, join strategy and build sides,
// predicate placement, and the output stages. This is the plan-only EXPLAIN
// surface behind pi2sql's `EXPLAIN <query>` and /sql?explain=plan;
// EXPLAIN ANALYZE (ExecProfiled) reports what actually ran.
func (p *Plan) Explain() string {
	var sb strings.Builder
	p.root.explain(&sb, "")
	return sb.String()
}

func (pq *planQuery) explain(sb *strings.Builder, ind string) {
	if pq.err != nil {
		fmt.Fprintf(sb, "%serror: %v\n", ind, pq.err)
		return
	}
	for i, ps := range pq.sources {
		if ps.sub != nil {
			fmt.Fprintf(sb, "%sderived %s:\n", ind, ps.alias)
			ps.sub.explain(sb, ind+"  ")
			continue
		}
		if pq.vec != nil {
			// Columnar batch execution; absence of a vectorized marker means
			// the operator runs row-at-a-time.
			if n := len(pq.vec.scanPreds[i]); n > 0 {
				fmt.Fprintf(sb, "%sscan %s [vectorized-filter, %d pushed pred(s), batch %d]\n", ind, ps.alias, n, batchSize)
			} else {
				fmt.Fprintf(sb, "%sscan %s [vectorized, batch %d]\n", ind, ps.alias, batchSize)
			}
			continue
		}
		fmt.Fprintf(sb, "%sscan %s [%s", ind, ps.alias, pq.accessPath(i))
		if pq.pipe != nil {
			if a := pq.pipe.access[i]; a.mode != accessFull {
				fmt.Fprintf(sb, " ~%d of %d rows", a.estRows, len(ps.table.Rows))
			}
			if n := len(pq.pipe.scanPreds[i]); n > 0 {
				fmt.Fprintf(sb, ", %d pushed pred(s)", n)
			}
		}
		sb.WriteString("]\n")
	}
	switch {
	case pq.vec != nil:
		if pq.vec.nsrc == 2 {
			mode := "vectorized nested-loop"
			if pq.vec.hasKey {
				mode = "vectorized hash build=" + pq.sources[1].alias
				if len(pq.vec.scanPreds[1]) == 0 {
					mode += " (reuses columnar(" + pq.sources[1].cols[pq.vec.key1] + "))"
				}
			}
			if len(pq.vec.cross) > 0 {
				mode += fmt.Sprintf(" +%d cross pred(s)", len(pq.vec.cross))
			}
			fmt.Fprintf(sb, "%sjoin %s: %s\n", ind, pq.sources[1].alias, mode)
		}
	case pq.hasJoin:
		for i := range pq.joins {
			jn := &pq.joins[i]
			if jn.on == nil {
				continue
			}
			mode := "nested-loop"
			if jn.hash {
				mode = "hash build=" + pq.sources[i].alias
				if jn.buildCol >= 0 && pq.sources[i].sub == nil {
					mode += " (reuses index(" + pq.sources[i].cols[jn.buildCol] + "))"
				}
			}
			fmt.Fprintf(sb, "%sjoin %s %s: %s\n", ind, jn.typ, pq.sources[i].alias, mode)
		}
		if pq.pred != nil {
			fmt.Fprintf(sb, "%sfilter: WHERE (monolithic, post-join)\n", ind)
		}
	case pq.pipe != nil:
		for i := 1; i < len(pq.sources); i++ {
			st := &pq.pipe.steps[i]
			var mode string
			switch {
			case len(st.build) > 0 && pq.pipe.reverse:
				mode = "hash build=" + pq.sources[0].alias + " (reversed, order-restoring merge)"
			case len(st.build) > 0:
				mode = "hash build=" + pq.sources[i].alias
				if pq.buildReusable(i) {
					mode += " (reuses index(" + pq.sources[i].cols[st.buildCol] + "))"
				}
			default:
				mode = "nested-loop"
			}
			if len(st.filters) > 0 {
				mode += fmt.Sprintf(" +%d hoisted filter(s)", len(st.filters))
			}
			fmt.Fprintf(sb, "%sjoin %s: %s\n", ind, pq.sources[i].alias, mode)
		}
		if len(pq.pipe.residual) > 0 {
			fmt.Fprintf(sb, "%sresidual: %d conjunct(s), original order\n", ind, len(pq.pipe.residual))
		}
	case pq.pred != nil:
		fmt.Fprintf(sb, "%sfilter: WHERE (monolithic)\n", ind)
	}
	vecMark := ""
	if pq.vec != nil {
		vecMark = " (vectorized)"
	}
	if pq.grouped {
		if pq.hasGroupBy {
			fmt.Fprintf(sb, "%sgroup by: %d key(s)%s\n", ind, len(pq.groupBy), vecMark)
		} else {
			fmt.Fprintf(sb, "%sgroup: implicit (aggregates without GROUP BY)%s\n", ind, vecMark)
		}
	}
	if pq.having != nil {
		fmt.Fprintf(sb, "%shaving\n", ind)
	}
	if pq.distinct {
		mark := ""
		if pq.vec != nil && pq.vec.distinct {
			mark = " (vectorized)"
		}
		fmt.Fprintf(sb, "%sdistinct%s\n", ind, mark)
	}
	if len(pq.order) > 0 {
		line := fmt.Sprintf("%sorder by: %d key(s)", ind, len(pq.order))
		if pq.opt && pq.limitErr == nil && pq.limit >= 0 {
			line += fmt.Sprintf(" (top-k heap, limit %d)", pq.limit)
		}
		sb.WriteString(line + "\n")
	}
	if pq.limitErr == nil && pq.limit >= 0 {
		fmt.Fprintf(sb, "%slimit: %d\n", ind, pq.limit)
	}
}

// accessPath names source i's access path for EXPLAIN output.
func (pq *planQuery) accessPath(i int) string {
	if pq.pipe == nil {
		return "full-scan"
	}
	return pq.pipe.access[i].path()
}
