package engine

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// Profile is the per-operator execution report behind EXPLAIN ANALYZE: one
// OpStat per physical operator the plan actually ran, in execution order,
// plus the total wall time.
//
// Profiling is opt-in per execution: Plan.Exec passes a nil *Profile down
// the operator tree and every instrumentation site is gated on `prof !=
// nil`, so an unprofiled run pays one branch per operator — no timestamps,
// no allocations. ExecProfiled is the only way to turn the hooks on.
type Profile struct {
	Ops   []OpStat
	Total time.Duration
}

// OpStat describes one executed operator.
type OpStat struct {
	Op      string // "scan", "hash-build", "join", "residual", "group", "project", "top-k", ...
	Detail  string // operator-specific: source alias, join mode, limit
	Path    string // access path / execution mode: "full-scan", "index-scan(col)", "vectorized", "vectorized-filter", ...
	RowsIn  int
	RowsOut int
	Batches int // vectorized batches processed; 0 for row-at-a-time operators
	Dur     time.Duration
}

func (p *Profile) add(op, detail string, in, out int, d time.Duration) {
	p.addPath(op, detail, "", in, out, d)
}

func (p *Profile) addPath(op, detail, path string, in, out int, d time.Duration) {
	p.Ops = append(p.Ops, OpStat{Op: op, Detail: detail, Path: path, RowsIn: in, RowsOut: out, Dur: d})
}

// addVec records a vectorized operator with its batch count.
func (p *Profile) addVec(op, detail, path string, in, out, batches int, d time.Duration) {
	p.Ops = append(p.Ops, OpStat{Op: op, Detail: detail, Path: path, RowsIn: in, RowsOut: out, Batches: batches, Dur: d})
}

// String renders the report as an aligned EXPLAIN ANALYZE-style table. The
// batches column is blank for row-at-a-time operators (and for vectorized
// ones that reused a cached selection or hash this execution).
func (p *Profile) String() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "operator\tdetail\taccess\trows in\trows out\tbatches\ttime")
	for _, op := range p.Ops {
		batches := ""
		if op.Batches > 0 {
			batches = fmt.Sprintf("%d", op.Batches)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\t%s\n", op.Op, op.Detail, op.Path, op.RowsIn, op.RowsOut, batches, fmtDur(op.Dur))
	}
	fmt.Fprintf(tw, "total\t\t\t\t\t\t%s\n", fmtDur(p.Total))
	tw.Flush()
	return sb.String()
}

// fmtDur rounds for readability without losing sub-microsecond operators.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= 10*time.Microsecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// ExecProfiled runs the plan like Exec while collecting per-operator row
// counts and wall times. The result table is identical to Exec's — the
// profile hooks observe, they never change what executes.
func (p *Plan) ExecProfiled() (*Table, *Profile, error) {
	if p.Stale() {
		return nil, nil, ErrStalePlan
	}
	prof := &Profile{}
	t0 := time.Now()
	t, err := p.root.run(nil, prof)
	prof.Total = time.Since(t0)
	if err != nil {
		return nil, prof, err
	}
	return t, prof, nil
}
