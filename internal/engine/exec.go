package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	dt "pi2/internal/difftree"
)

// Exec executes a concrete query AST against the database and returns the
// result table. The AST must contain no choice nodes (resolve Difftrees
// first).
func Exec(db *DB, q *dt.Node) (*Table, error) {
	if q == nil || q.Kind != dt.KindQuery {
		return nil, fmt.Errorf("engine: expected query node, got %v", q)
	}
	return execQuery(db, q, nil)
}

// ExecSQL parses and executes a SQL string (convenience for tests, the REPL
// and the interface runtime).
func ExecSQL(db *DB, sql string, parse func(string) (*dt.Node, error)) (*Table, error) {
	q, err := parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(db, q)
}

// frame is one FROM-clause source bound to the current row.
type frame struct {
	alias string   // lowercased alias (or table name)
	cols  []string // lowercased column names
	row   []Value
}

// rowEnv resolves column references for the row being evaluated; outer
// chains to enclosing queries for correlated subqueries. When groupRows is
// non-nil, the environment is a "group context": aggregate functions iterate
// over the group's rows and plain references resolve against the group's
// representative row.
type rowEnv struct {
	frames    []frame
	outer     *rowEnv
	groupRows []*rowEnv
}

func (e *rowEnv) lookup(name string) (Value, bool) {
	return e.lookupLower(strings.ToLower(name))
}

// lookupLower is lookup for an already-lowercased name; the compiled plan
// path pre-lowers identifiers once at prepare time and calls this directly.
func (e *rowEnv) lookupLower(lower string) (Value, bool) {
	if i := strings.IndexByte(lower, '.'); i >= 0 {
		alias, col := lower[:i], lower[i+1:]
		for env := e; env != nil; env = env.outer {
			for _, f := range env.frames {
				if f.alias != alias {
					continue
				}
				for ci, c := range f.cols {
					if c == col {
						return f.row[ci], true
					}
				}
			}
		}
		return Value{}, false
	}
	for env := e; env != nil; env = env.outer {
		for _, f := range env.frames {
			for ci, c := range f.cols {
				if c == lower {
					return f.row[ci], true
				}
			}
		}
	}
	return Value{}, false
}

// source is an evaluated FROM entry.
type source struct {
	alias string
	table *Table
}

// fromEntry is one FROM-clause source with its join role: "cross" for
// comma-separated entries (and the leading table), or the join type with its
// ON condition for JOIN steps.
type fromEntry struct {
	ref *dt.Node // the KindTableRef node
	typ string   // "cross", "inner", "left", "right" or "full"
	on  *dt.Node // AND-wrapped ON expression; nil for "cross"
}

// fromEntries flattens a FROM child list into per-source entries, unwrapping
// KindJoin nodes. hasJoin reports whether any JOIN step is present, which
// selects the level-by-level join evaluator over the filtered cross product.
func fromEntries(from *dt.Node) (entries []fromEntry, hasJoin bool, err error) {
	for _, c := range from.Children {
		e := fromEntry{ref: c, typ: "cross"}
		if c.Kind == dt.KindJoin {
			if len(entries) == 0 {
				return nil, false, fmt.Errorf("engine: JOIN without a left-hand table")
			}
			e = fromEntry{ref: c.Children[0], typ: c.Label, on: c.Children[1]}
			hasJoin = true
		}
		entries = append(entries, e)
	}
	return entries, hasJoin, nil
}

func execQuery(db *DB, q *dt.Node, outer *rowEnv) (*Table, error) {
	sel, from, where := q.Children[0], q.Children[1], q.Children[2]
	groupby, having, orderby, limit := q.Children[3], q.Children[4], q.Children[5], q.Children[6]

	// 1. FROM: evaluate sources (tables and derived tables, which may be
	// correlated with the outer query).
	var sources []source
	var entries []fromEntry
	hasJoin := false
	if from.Kind == dt.KindFrom {
		var err error
		entries, hasJoin, err = fromEntries(from)
		if err != nil {
			return nil, err
		}
		for _, en := range entries {
			src, alias := en.ref.Children[0], en.ref.Children[1]
			var tbl *Table
			switch src.Kind {
			case dt.KindIdent:
				t, ok := db.Table(src.Label)
				if !ok {
					return nil, fmt.Errorf("engine: unknown table %q", src.Label)
				}
				tbl = t
			case dt.KindQuery:
				t, err := execQuery(db, src, outer)
				if err != nil {
					return nil, err
				}
				tbl = t
			default:
				return nil, fmt.Errorf("engine: bad table ref %v", src)
			}
			name := tbl.Name
			if alias.Kind == dt.KindIdent {
				name = alias.Label
			}
			if name == "" {
				name = fmt.Sprintf("t%d", len(sources))
			}
			sources = append(sources, source{alias: strings.ToLower(name), table: tbl})
		}
	}

	// 2. Enumerate the joined rows: the level-by-level join evaluator when
	// any JOIN step is present, the filtered cross product otherwise.
	var rows []*rowEnv
	var err error
	if hasJoin {
		rows, err = joinRows(db, sources, entries, where, outer)
	} else {
		rows, err = crossFilter(db, sources, where, outer)
	}
	if err != nil {
		return nil, err
	}

	// 3. Output column metadata.
	items := sel.Children
	outCols, err := outputNames(items, sources)
	if err != nil {
		return nil, err
	}

	grouped := groupby.Kind == dt.KindGroupBy || anyAggregate(items) || (having.Kind == dt.KindHaving && anyAggregate([]*dt.Node{having}))

	var outRows [][]Value
	var sortKeys [][]Value
	orderExprs := orderItems(orderby)

	if grouped {
		for _, g := range groupRows(db, rows, groupby) {
			genv := &rowEnv{outer: outer, groupRows: g}
			if len(g) > 0 {
				genv.frames = g[0].frames
			} else {
				genv.groupRows = []*rowEnv{} // empty group: count(*)=0
			}
			if having.Kind == dt.KindHaving {
				hv, err := evalExpr(db, having.Children[0], genv)
				if err != nil {
					return nil, err
				}
				if !hv.Truthy() {
					continue
				}
			}
			row, keys, err := projectRow(db, items, orderExprs, genv)
			if err != nil {
				return nil, err
			}
			outRows = append(outRows, row)
			sortKeys = append(sortKeys, keys)
		}
	} else {
		for _, env := range rows {
			env.outer = outer
			row, keys, err := projectRow(db, items, orderExprs, env)
			if err != nil {
				return nil, err
			}
			outRows = append(outRows, row)
			sortKeys = append(sortKeys, keys)
		}
	}

	// 4. DISTINCT.
	if sel.Label == "distinct" {
		outRows, sortKeys = distinctRows(outRows, sortKeys)
	}

	// 5. ORDER BY (stable).
	if len(orderExprs) > 0 {
		dirs := make([]bool, len(orderExprs)) // true = desc
		for i, oi := range orderExprs {
			dirs[i] = oi.Label == "desc"
		}
		outRows = sortRowsStable(outRows, sortKeys, dirs)
	}

	// 6. LIMIT.
	if limit.Kind == dt.KindLimit {
		n, err := strconv.Atoi(limit.Label)
		if err != nil {
			return nil, fmt.Errorf("engine: bad limit %q", limit.Label)
		}
		if n < len(outRows) {
			outRows = outRows[:n]
		}
	}

	// 7. Output types, inferred from expressions (and data as a fallback).
	types := make([]ColType, len(outCols))
	for i, item := range expandItems(items, sources) {
		types[i] = inferColType(db, item, sources, outer)
	}
	return &Table{Cols: outCols, Types: types, Rows: outRows}, nil
}

// crossFilter enumerates the cross product of the sources, applying the
// WHERE predicate per combined row. This is the executable specification
// the operator pipeline (pipeline.go) is tested against — it stays naive on
// purpose.
func crossFilter(db *DB, sources []source, where *dt.Node, outer *rowEnv) ([]*rowEnv, error) {
	var pred *dt.Node
	if where.Kind == dt.KindWhere {
		pred = where.Children[0]
	}
	var out []*rowEnv
	frames := make([]frame, len(sources))
	for i, s := range sources {
		cols := make([]string, len(s.table.Cols))
		for j, c := range s.table.Cols {
			cols[j] = strings.ToLower(c)
		}
		frames[i] = frame{alias: s.alias, cols: cols}
	}
	var rec func(i int, cur []frame) error
	rec = func(i int, cur []frame) error {
		if i == len(sources) {
			env := &rowEnv{frames: append([]frame(nil), cur...), outer: outer}
			if pred != nil {
				v, err := evalExpr(db, pred, env)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			out = append(out, env)
			return nil
		}
		for _, row := range sources[i].table.Rows {
			f := frames[i]
			f.row = row
			if err := rec(i+1, append(cur, f)); err != nil {
				return err
			}
		}
		return nil
	}
	if len(sources) == 0 {
		// SELECT without FROM: a single empty row.
		env := &rowEnv{outer: outer}
		if pred != nil {
			v, err := evalExpr(db, pred, env)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				return nil, nil
			}
		}
		return []*rowEnv{env}, nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// joinRows evaluates a FROM clause containing JOIN steps, one source level
// at a time. This is the executable specification of join semantics: the
// compiled paths (naive and hash-optimized) must be observably identical to
// it on both result rows and error text.
//
// Level i materializes every surviving row prefix before level i+1 starts,
// so all ON evaluations (and their errors) at one level happen before any at
// the next. Per prefix, candidate rows are scanned in table order and the ON
// condition is evaluated with three-valued logic; TRUE emits the combined
// row. LEFT/FULL prefixes with no match emit once with the new frame
// NULL-padded, in place. RIGHT/FULL build rows that matched no prefix are
// appended after the level's matched output, in scan order, with every
// earlier frame NULL-padded. The WHERE predicate applies after all joins,
// per row in emission order — it is never pushed below an outer join, where
// removing rows early would resurrect NULL-padded ones.
func joinRows(db *DB, sources []source, entries []fromEntry, where *dt.Node, outer *rowEnv) ([]*rowEnv, error) {
	n := len(sources)
	metas := make([]frame, n)
	nullRows := make([][]Value, n)
	for i, s := range sources {
		cols := make([]string, len(s.table.Cols))
		nr := make([]Value, len(cols))
		for j, c := range s.table.Cols {
			cols[j] = strings.ToLower(c)
			nr[j] = NullVal()
		}
		metas[i] = frame{alias: s.alias, cols: cols}
		nullRows[i] = nr
	}

	envs := []*rowEnv{{outer: outer}}
	for i := range sources {
		en := entries[i]
		rows := sources[i].table.Rows
		var next []*rowEnv
		extend := func(prefix []frame, row []Value) {
			fr := make([]frame, len(prefix)+1)
			copy(fr, prefix)
			fr[len(prefix)] = frame{alias: metas[i].alias, cols: metas[i].cols, row: row}
			next = append(next, &rowEnv{frames: fr, outer: outer})
		}

		if en.on == nil { // comma entry: plain cross product step
			for _, env := range envs {
				for _, row := range rows {
					extend(env.frames, row)
				}
			}
			envs = next
			continue
		}

		padLeft := en.typ == "left" || en.typ == "full"
		var matched []bool
		if en.typ == "right" || en.typ == "full" {
			matched = make([]bool, len(rows))
		}
		cand := &rowEnv{frames: make([]frame, i+1), outer: outer}
		for _, env := range envs {
			copy(cand.frames, env.frames)
			cand.frames[i] = metas[i]
			sawMatch := false
			for ri, row := range rows {
				cand.frames[i].row = row
				v, err := evalExpr(db, en.on, cand)
				if err != nil {
					return nil, err
				}
				if v.Truthy() {
					sawMatch = true
					if matched != nil {
						matched[ri] = true
					}
					extend(env.frames, row)
				}
			}
			if !sawMatch && padLeft {
				extend(env.frames, nullRows[i])
			}
		}
		if matched != nil {
			pad := make([]frame, i)
			for j := 0; j < i; j++ {
				pad[j] = metas[j]
				pad[j].row = nullRows[j]
			}
			for ri, row := range rows {
				if !matched[ri] {
					extend(pad, row)
				}
			}
		}
		envs = next
	}

	if where.Kind == dt.KindWhere {
		var out []*rowEnv
		for _, env := range envs {
			v, err := evalExpr(db, where.Children[0], env)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, env)
			}
		}
		return out, nil
	}
	return envs, nil
}

// groupRows partitions rows into groups by the GROUP BY key (or a single
// group when the clause is absent but aggregates are used) in first-seen
// order. Keys are type-tagged encodings (see key.go), so a string
// containing the old 0x1f separator — or a number whose canonical text
// equals a string, like 1 vs '1' — can no longer merge two groups.
func groupRows(db *DB, rows []*rowEnv, groupby *dt.Node) [][]*rowEnv {
	idx := map[string]int{}
	var groups [][]*rowEnv
	var buf []byte
	for _, env := range rows {
		buf = buf[:0]
		if groupby.Kind == dt.KindGroupBy {
			for _, g := range groupby.Children {
				v, err := evalExpr(db, g, env)
				if err != nil {
					v = NullVal()
				}
				buf = appendGroupKey(buf, v)
			}
		}
		if gi, ok := idx[string(buf)]; ok {
			groups[gi] = append(groups[gi], env)
		} else {
			idx[string(buf)] = len(groups)
			groups = append(groups, []*rowEnv{env})
		}
	}
	if groupby.Kind != dt.KindGroupBy && len(rows) == 0 {
		// aggregate over empty input still yields one (empty) group
		groups = append(groups, nil)
	}
	return groups
}

// projectRow evaluates the select items (expanding *) and order-by
// expressions for a row or group environment.
func projectRow(db *DB, items []*dt.Node, orderExprs []*dt.Node, env *rowEnv) ([]Value, []Value, error) {
	var row []Value
	for _, item := range items {
		if item.Children[0].Kind == dt.KindStar {
			for _, f := range env.frames {
				row = append(row, f.row...)
			}
			continue
		}
		v, err := evalExpr(db, item.Children[0], env)
		if err != nil {
			return nil, nil, err
		}
		row = append(row, v)
	}
	var keys []Value
	for _, oi := range orderExprs {
		v, err := evalExpr(db, oi.Children[0], env)
		if err != nil {
			return nil, nil, err
		}
		keys = append(keys, v)
	}
	return row, keys, nil
}

func orderItems(orderby *dt.Node) []*dt.Node {
	if orderby.Kind != dt.KindOrderBy {
		return nil
	}
	return orderby.Children
}

// expandItems flattens * into per-column pseudo-items for naming and typing.
func expandItems(items []*dt.Node, sources []source) []*dt.Node {
	var out []*dt.Node
	for _, item := range items {
		if item.Children[0].Kind == dt.KindStar {
			for _, s := range sources {
				for _, c := range s.table.Cols {
					out = append(out, dt.New(dt.KindSelectItem, "",
						dt.Ident(s.alias+"."+c), dt.NewNone()))
				}
			}
			continue
		}
		out = append(out, item)
	}
	return out
}

// outputNames derives result column names: explicit alias, identifier leaf
// name, "fn" or "fn_arg" for function calls, or exprN.
func outputNames(items []*dt.Node, sources []source) ([]string, error) {
	var names []string
	for _, item := range expandItems(items, sources) {
		alias := item.Children[1]
		if alias.Kind == dt.KindIdent {
			names = append(names, alias.Label)
			continue
		}
		names = append(names, exprName(item.Children[0], len(names)))
	}
	return names, nil
}

func exprName(e *dt.Node, i int) string {
	switch e.Kind {
	case dt.KindIdent:
		name := e.Label
		if j := strings.LastIndexByte(name, '.'); j >= 0 {
			name = name[j+1:]
		}
		return name
	case dt.KindFunc:
		if len(e.Children) == 1 && e.Children[0].Kind == dt.KindIdent {
			return e.Label + "_" + exprName(e.Children[0], i)
		}
		return e.Label
	default:
		return fmt.Sprintf("expr%d", i+1)
	}
}

// distinctRows drops duplicate rows (first occurrence wins, by type-tagged
// value identity — see key.go), keeping each surviving row's sort keys
// aligned. Shared by the interpreted and planned execution paths so
// DISTINCT semantics cannot diverge between them.
func distinctRows(rows, keys [][]Value) ([][]Value, [][]Value) {
	seen := map[string]bool{}
	var dr [][]Value
	var dk [][]Value
	var buf []byte
	for i, row := range rows {
		buf = groupKey(buf, row)
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		dr = append(dr, row)
		dk = append(dk, keys[i])
	}
	return dr, dk
}

// sortRowsStable stable-sorts rows by their sort keys with per-key
// descending flags. Shared by the interpreted and planned execution paths.
func sortRowsStable(rows, keys [][]Value, desc []bool) [][]Value {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range ka {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if desc[i] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([][]Value, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	return sorted
}

// anyAggregate reports whether any expression in the nodes contains an
// aggregate function call, without descending into subqueries.
func anyAggregate(nodes []*dt.Node) bool {
	for _, n := range nodes {
		found := false
		n.Walk(func(m *dt.Node) bool {
			if m != n && m.Kind == dt.KindQuery {
				return false
			}
			if m.Kind == dt.KindFunc && isAggregate(m.Label) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isAggregate(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}
