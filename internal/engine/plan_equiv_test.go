package engine_test

// Golden cross-check for the compiled plan path: for every query in every
// workload log, planned execution must return a table identical to the
// interpreted Exec path — same column names, same types, same rows,
// bit-for-bit. This is the safety net that lets the serving hot path run on
// plans while the interpreter remains the executable specification.

import (
	"reflect"
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
	"pi2/internal/workload"
)

func TestPlannedExecutionMatchesInterpreterOnAllWorkloads(t *testing.T) {
	db := dataset.NewDB()
	for _, log := range workload.All() {
		for qi, sql := range log.Queries {
			ast, err := sqlparser.Parse(sql)
			if err != nil {
				t.Fatalf("%s[%d]: parse: %v", log.Name, qi, err)
			}
			direct, directErr := engine.Exec(db, ast)
			plan, prepErr := engine.Prepare(db, ast)
			if prepErr != nil {
				t.Fatalf("%s[%d]: prepare: %v", log.Name, qi, prepErr)
			}
			planned, plannedErr := plan.Exec()
			if (directErr != nil) != (plannedErr != nil) {
				t.Fatalf("%s[%d]: error mismatch: interpreter=%v planned=%v",
					log.Name, qi, directErr, plannedErr)
			}
			if directErr != nil {
				continue
			}
			if !reflect.DeepEqual(direct.Cols, planned.Cols) {
				t.Errorf("%s[%d]: cols differ:\n  interpreter %v\n  planned     %v",
					log.Name, qi, direct.Cols, planned.Cols)
			}
			if !reflect.DeepEqual(direct.Types, planned.Types) {
				t.Errorf("%s[%d]: types differ:\n  interpreter %v\n  planned     %v",
					log.Name, qi, direct.Types, planned.Types)
			}
			if len(direct.Rows) != len(planned.Rows) {
				t.Fatalf("%s[%d]: row count differs: interpreter %d, planned %d",
					log.Name, qi, len(direct.Rows), len(planned.Rows))
			}
			for ri := range direct.Rows {
				if !reflect.DeepEqual(direct.Rows[ri], planned.Rows[ri]) {
					t.Fatalf("%s[%d]: row %d differs:\n  interpreter %v\n  planned     %v\n  sql: %s",
						log.Name, qi, ri, direct.Rows[ri], planned.Rows[ri], sql)
				}
			}
		}
	}
}

// Re-executing a plan must be deterministic: the hot path serves the same
// table for the same binding state many times over.
func TestPlanExecIsRepeatable(t *testing.T) {
	db := dataset.NewDB()
	ast := sqlparser.MustParse(`SELECT hour, count(*) FROM flights WHERE delay BETWEEN 0 AND 50 GROUP BY hour`)
	plan, err := engine.Prepare(db, ast)
	if err != nil {
		t.Fatal(err)
	}
	first, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	second, err := plan.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatal("repeated plan executions disagree")
	}
}
