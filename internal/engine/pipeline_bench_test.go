package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pi2/internal/sqlparser"
)

// Micro-benchmarks for the operator pipeline, each paired with its
// unoptimized (cross product + full sort) baseline so the speedup is
// visible in one `go test -bench BenchmarkEngine` run. CI runs these for
// one iteration under -race to exercise the pipeline's shared scan/build
// caches concurrently-safely.

// benchDB builds a fact table (rows rows) and a dim table (dims rows) with
// a foreign-key-like join column and skewed value columns.
func benchDB(rows, dims int) *DB {
	r := rand.New(rand.NewSource(42))
	db := NewDB("2020-12-31")
	dim := &Table{Name: "dim", Cols: []string{"k", "label"}, Types: []ColType{TNum, TStr}}
	for i := 0; i < dims; i++ {
		dim.Rows = append(dim.Rows, []Value{NumVal(float64(i)), StrVal(fmt.Sprintf("d%d", i))})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v", "grp"}, Types: []ColType{TNum, TNum, TNum}}
	for i := 0; i < rows; i++ {
		fact.Rows = append(fact.Rows, []Value{
			NumVal(float64(r.Intn(dims))),
			NumVal(r.Float64() * 100),
			NumVal(float64(r.Intn(50))),
		})
	}
	db.Add(dim)
	db.Add(fact)
	return db
}

func benchPlan(b *testing.B, db *DB, sql string, optimized bool) {
	b.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	prep := PrepareUnoptimized
	if optimized {
		prep = Prepare
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-prepare each iteration so the per-plan scan/build caches do
		// not amortize away the work being measured.
		plan, err := prep(db, ast)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

const benchJoinSQL = `SELECT f.v, d.label FROM fact AS f, dim AS d WHERE f.k = d.k AND f.v > 25`

func BenchmarkEngineJoin(b *testing.B) {
	db := benchDB(2000, 200)
	b.Run("hash", func(b *testing.B) { benchPlan(b, db, benchJoinSQL, true) })
	b.Run("crossproduct", func(b *testing.B) { benchPlan(b, db, benchJoinSQL, false) })
}

// BenchmarkEngineJoinCached measures the serving-shaped case: one prepared
// plan executed repeatedly, where the pipeline's scan/build caches kick in.
func BenchmarkEngineJoinCached(b *testing.B) {
	db := benchDB(2000, 200)
	ast, err := sqlparser.Parse(benchJoinSQL)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Prepare(db, ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// Grouping and DISTINCT run the same operator on every path (the win over
// earlier revisions is the type-tagged key encoder replacing per-row Text()
// rendering and string joins), so they report one trajectory number each
// rather than a pipeline/naive split.
const benchGroupSQL = `SELECT grp, count(*), sum(v), avg(v) FROM fact GROUP BY grp`

func BenchmarkEngineGroupBy(b *testing.B) {
	db := benchDB(20000, 10)
	benchPlan(b, db, benchGroupSQL, true)
}

const benchTopKSQL = `SELECT k, v FROM fact WHERE v > 10 ORDER BY v DESC LIMIT 10`

func BenchmarkEngineTopK(b *testing.B) {
	db := benchDB(20000, 10)
	b.Run("heap", func(b *testing.B) { benchPlan(b, db, benchTopKSQL, true) })
	b.Run("fullsort", func(b *testing.B) { benchPlan(b, db, benchTopKSQL, false) })
}

const benchDistinctSQL = `SELECT DISTINCT grp FROM fact`

func BenchmarkEngineDistinct(b *testing.B) {
	db := benchDB(20000, 10)
	benchPlan(b, db, benchDistinctSQL, true)
}
