package engine

import (
	"fmt"
	"math/rand"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

// Micro-benchmarks for the operator pipeline, each paired with its
// unoptimized (cross product + full sort) baseline so the speedup is
// visible in one `go test -bench BenchmarkEngine` run. CI runs these for
// one iteration under -race to exercise the pipeline's shared scan/build
// caches concurrently-safely.

// benchDB builds a fact table (rows rows) and a dim table (dims rows) with
// a foreign-key-like join column and skewed value columns.
func benchDB(rows, dims int) *DB {
	r := rand.New(rand.NewSource(42))
	db := NewDB("2020-12-31")
	dim := &Table{Name: "dim", Cols: []string{"k", "label"}, Types: []ColType{TNum, TStr}}
	for i := 0; i < dims; i++ {
		dim.Rows = append(dim.Rows, []Value{NumVal(float64(i)), StrVal(fmt.Sprintf("d%d", i))})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v", "grp"}, Types: []ColType{TNum, TNum, TNum}}
	for i := 0; i < rows; i++ {
		fact.Rows = append(fact.Rows, []Value{
			NumVal(float64(r.Intn(dims))),
			NumVal(r.Float64() * 100),
			NumVal(float64(r.Intn(50))),
		})
	}
	db.Add(dim)
	db.Add(fact)
	return db
}

func benchPlan(b *testing.B, db *DB, sql string, optimized bool) {
	b.Helper()
	prep := PrepareUnoptimized
	if optimized {
		prep = Prepare
	}
	benchPlanMode(b, db, sql, prep)
}

func benchPlanMode(b *testing.B, db *DB, sql string, prep func(*DB, *dt.Node) (*Plan, error)) {
	b.Helper()
	ast, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-prepare each iteration so the per-plan scan/build caches do
		// not amortize away the work being measured.
		plan, err := prep(db, ast)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

const benchJoinSQL = `SELECT f.v, d.label FROM fact AS f, dim AS d WHERE f.k = d.k AND f.v > 25`

func BenchmarkEngineJoin(b *testing.B) {
	db := benchDB(2000, 200)
	b.Run("hash", func(b *testing.B) { benchPlan(b, db, benchJoinSQL, true) })
	b.Run("crossproduct", func(b *testing.B) { benchPlan(b, db, benchJoinSQL, false) })
}

// BenchmarkEngineJoinCached measures the serving-shaped case: one prepared
// plan executed repeatedly, where the pipeline's scan/build caches kick in.
func BenchmarkEngineJoinCached(b *testing.B) {
	db := benchDB(2000, 200)
	ast, err := sqlparser.Parse(benchJoinSQL)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Prepare(db, ast)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// Grouping and DISTINCT run the same operator on every path (the win over
// earlier revisions is the type-tagged key encoder replacing per-row Text()
// rendering and string joins), so they report one trajectory number each
// rather than a pipeline/naive split.
const benchGroupSQL = `SELECT grp, count(*), sum(v), avg(v) FROM fact GROUP BY grp`

// BenchmarkEngineGroupBy contrasts the vectorized aggregation (columnar
// accumulation over a u64 open-addressing group table) with the row
// pipeline's type-tagged key encoder on the same 50-group query, plus a
// high-cardinality run (2000 groups) where per-group overheads dominate.
// The flat pre-PR9 "EngineGroupBy" number corresponds to the "row" case.
func BenchmarkEngineGroupBy(b *testing.B) {
	db := benchDB(20000, 10)
	b.Run("vectorized", func(b *testing.B) { benchPlan(b, db, benchGroupSQL, true) })
	b.Run("row", func(b *testing.B) { benchPlanMode(b, db, benchGroupSQL, PrepareNoVec) })
	hdb := benchDB(20000, 2000)
	const hiSQL = `SELECT k, count(*), sum(v) FROM fact GROUP BY k`
	b.Run("high-cardinality-group", func(b *testing.B) { benchPlan(b, hdb, hiSQL, true) })
}

const benchTopKSQL = `SELECT k, v FROM fact WHERE v > 10 ORDER BY v DESC LIMIT 10`

func BenchmarkEngineTopK(b *testing.B) {
	db := benchDB(20000, 10)
	b.Run("heap", func(b *testing.B) { benchPlan(b, db, benchTopKSQL, true) })
	b.Run("fullsort", func(b *testing.B) { benchPlan(b, db, benchTopKSQL, false) })
}

const benchDistinctSQL = `SELECT DISTINCT grp FROM fact`

func BenchmarkEngineDistinct(b *testing.B) {
	db := benchDB(20000, 10)
	benchPlan(b, db, benchDistinctSQL, true)
}

// benchScanDB builds the access-path fixture: `scan` is large enough for
// the cost model to prefer indexes (20k rows, k cycling 0..199 so a point
// lookup selects 0.5%), plus a two-row `tiny` table for build-side reversal.
func benchScanDB() *DB {
	r := rand.New(rand.NewSource(7))
	db := NewDB("2020-12-31")
	scan := &Table{Name: "scan", Cols: []string{"k", "v"}, Types: []ColType{TNum, TNum}}
	for i := 0; i < 20000; i++ {
		scan.Rows = append(scan.Rows, []Value{
			NumVal(float64(i % 200)),
			NumVal(r.Float64() * 100),
		})
	}
	db.Add(scan)
	db.Add(&Table{
		Name: "tiny", Cols: []string{"k", "lbl"}, Types: []ColType{TNum, TStr},
		Rows: [][]Value{
			{NumVal(3), StrVal("three")},
			{NumVal(7), StrVal("seven")},
		},
	})
	return db
}

// BenchmarkEngineScan contrasts the three access paths on the same point
// and range predicates: the unoptimized sweep, the hash-index point lookup,
// and the sorted-index range scan. The per-column indexes are cached at the
// DB level, so re-preparing per iteration (benchPlan) still amortizes the
// build — exactly the serving-shaped behavior being measured.
func BenchmarkEngineScan(b *testing.B) {
	db := benchScanDB()
	const pointSQL = `SELECT v FROM scan WHERE k = 7`
	const rangeSQL = `SELECT v FROM scan WHERE k BETWEEN 7 AND 9`
	b.Run("full", func(b *testing.B) { benchPlan(b, db, pointSQL, false) })
	b.Run("index-point", func(b *testing.B) { benchPlan(b, db, pointSQL, true) })
	b.Run("index-range", func(b *testing.B) { benchPlan(b, db, rangeSQL, true) })
	// A low-selectivity sweep the cost model keeps off the indexes: the
	// chooser leaves it on the full scan, which the vectorized path then
	// runs as a batched columnar filter.
	const sweepSQL = `SELECT v FROM scan WHERE v > 25`
	b.Run("vectorized-filter", func(b *testing.B) { benchPlan(b, db, sweepSQL, true) })
}

// BenchmarkEngineJoinBuildSide measures the reversed hash join: the scan
// predicate on the big side defeats index reuse, and the two-row tiny side
// wins the build by estimated cardinality, leaving an order-restoring merge
// on the probe output.
func BenchmarkEngineJoinBuildSide(b *testing.B) {
	db := benchScanDB()
	benchPlan(b, db, `SELECT t.lbl, s.v FROM tiny AS t, scan AS s WHERE t.k = s.k AND s.v > 25`, true)
}
