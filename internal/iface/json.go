package iface

import (
	"encoding/json"
	"sort"

	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

// Spec is the serializable form of a generated interface — what a separate
// front end would consume to render and wire the interface.
type Spec struct {
	Charts       []ChartSpec       `json:"charts"`
	Widgets      []WidgetJSON      `json:"widgets"`
	Interactions []InteractionJSON `json:"interactions"`
	Trees        []TreeJSON        `json:"trees"`
	Layout       []BoxJSON         `json:"layout"`
	Cost         float64           `json:"cost"`
}

// ChartSpec is one visualization.
type ChartSpec struct {
	ID      string            `json:"id"`
	Tree    int               `json:"tree"`
	Type    string            `json:"type"`
	Encode  map[string]string `json:"encode"` // visual variable -> column name
	Columns []string          `json:"columns"`
}

// WidgetJSON is one widget.
type WidgetJSON struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"`
	Label   string   `json:"label"`
	Options []string `json:"options,omitempty"`
	Min     float64  `json:"min,omitempty"`
	Max     float64  `json:"max,omitempty"`
	Tree    int      `json:"tree"`
	Node    int      `json:"node"`
	Cover   []int    `json:"cover"`
}

// InteractionJSON is one visualization interaction.
type InteractionJSON struct {
	SourceChart string `json:"sourceChart"`
	Kind        string `json:"kind"`
	Stream      string `json:"stream"`
	Columns     []int  `json:"columns"`
	TargetTree  int    `json:"targetTree"`
	TargetNode  int    `json:"targetNode"`
	Cover       []int  `json:"cover"`
}

// TreeJSON is one Difftree, rendered as annotated SQL, with the input
// queries it expresses.
type TreeJSON struct {
	SQL     string `json:"sql"`
	Queries []int  `json:"queries"`
	Choices int    `json:"choiceNodes"`
}

// BoxJSON is one laid-out element.
type BoxJSON struct {
	ID string  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	W  float64 `json:"w"`
	H  float64 `json:"h"`
}

// ToSpec converts an Interface to its serializable form.
func ToSpec(ifc *Interface) Spec {
	spec := Spec{Cost: ifc.Cost}
	for _, v := range ifc.Vis {
		encode := map[string]string{}
		for vvar, ci := range v.Mapping.Assign {
			if ci >= 0 && ci < len(v.Cols) {
				encode[vvar] = v.Cols[ci]
			}
		}
		spec.Charts = append(spec.Charts, ChartSpec{
			ID: v.ElemID, Tree: v.Tree, Type: v.Mapping.Vis.Type.String(),
			Encode: encode, Columns: v.Cols,
		})
	}
	for _, w := range ifc.Widgets {
		spec.Widgets = append(spec.Widgets, WidgetJSON{
			ID: w.ElemID, Kind: string(w.Kind), Label: w.Label,
			Options: w.Options, Min: w.Min, Max: w.Max,
			Tree: w.Tree, Node: w.NodeID, Cover: w.Cover,
		})
	}
	for _, v := range ifc.VisInts {
		spec.Interactions = append(spec.Interactions, InteractionJSON{
			SourceChart: ifc.Vis[v.SourceVis].ElemID,
			Kind:        string(v.Kind), Stream: v.Stream.Name,
			Columns: v.Cols, TargetTree: v.Tree, TargetNode: v.NodeID,
			Cover: v.Cover,
		})
	}
	spec.Trees = treesJSON(ifc.State)
	// Emit the layout in sorted element order (as RenderText does): Boxes is
	// a map, and ranging it directly made the JSON spec differ between
	// otherwise byte-identical same-seed runs.
	ids := make([]string, 0, len(ifc.Boxes))
	for id := range ifc.Boxes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b := ifc.Boxes[id]
		spec.Layout = append(spec.Layout, BoxJSON{ID: id, X: b.X, Y: b.Y, W: b.W, H: b.H})
	}
	return spec
}

func treesJSON(state *transform.State) []TreeJSON {
	var out []TreeJSON
	for _, t := range state.Trees {
		out = append(out, TreeJSON{
			SQL:     sqlparser.ToSQL(t.Root),
			Queries: t.Queries,
			Choices: len(t.Root.ChoiceNodes()),
		})
	}
	return out
}

// MarshalJSON serializes the whole interface spec (indented).
func MarshalJSON(ifc *Interface) ([]byte, error) {
	return json.MarshalIndent(ToSpec(ifc), "", "  ")
}
