// Package iface defines the generated interface artifact I = (V, M, L):
// visualization specs, interaction specs (widgets and visualization
// interactions), and the layout tree (paper §2, §4). It also provides the
// interaction runtime (manipulate → bind → resolve → execute) and text/HTML
// renderers.
package iface

import (
	"fmt"

	dt "pi2/internal/difftree"
	"pi2/internal/layout"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/widget"
)

// VisSpec maps one Difftree's result to a visualization (V).
type VisSpec struct {
	ElemID  string
	Tree    int // index into State.Trees
	Mapping vis.Mapping
	Cols    []string // result column display names
	Title   string
}

// WidgetSpec maps a dynamic node to a widget (part of M).
type WidgetSpec struct {
	ElemID  string
	Kind    widget.Kind
	Label   string
	Options []string // option labels for enumerating widgets
	Min     float64
	Max     float64
	Tree    int
	NodeID  int   // the bound dynamic node
	Cover   []int // covered choice-node IDs within Tree
	Manip   float64
}

// VisIntSpec maps a dynamic node to a visualization interaction (part of M).
// The source chart may belong to a different Difftree than the target node —
// that is what links multi-view interfaces (paper Figure 5).
type VisIntSpec struct {
	SourceVis int // index into Interface.Vis
	Kind      vis.InteractionKind
	Stream    vis.EventStream
	Cols      []int // source result columns, one per stream variable
	Tree      int   // target Difftree
	NodeID    int
	Cover     []int
	Manip     float64
}

// Interface is a fully mapped interface.
type Interface struct {
	State   *transform.State
	Vis     []VisSpec
	Widgets []WidgetSpec
	VisInts []VisIntSpec

	LayoutTree *layout.Node
	Boxes      map[string]layout.Box
	TotalBox   layout.Box

	Cm   float64 // manipulation cost (layout independent)
	Cost float64 // full cost C(I, Q)
}

// InteractionCount returns the total number of mapped interactions.
func (ifc *Interface) InteractionCount() int {
	return len(ifc.Widgets) + len(ifc.VisInts)
}

// VisForTree returns the VisSpec rendering the given tree, or nil.
func (ifc *Interface) VisForTree(tree int) *VisSpec {
	for i := range ifc.Vis {
		if ifc.Vis[i].Tree == tree {
			return &ifc.Vis[i]
		}
	}
	return nil
}

// widgetSize estimates a widget's rendered size from its initialization
// parameters (paper §4.3: "we also estimate text and widget sizes based on
// their initialization parameters").
func widgetSize(w *WidgetSpec) (float64, float64) {
	maxOpt := len(w.Label)
	for _, o := range w.Options {
		if len(o) > maxOpt {
			maxOpt = len(o)
		}
	}
	textW := float64(maxOpt)*7 + 24
	switch w.Kind {
	case widget.Radio, widget.Checkbox:
		return maxf(90, textW), float64(20*len(w.Options)) + 16
	case widget.Button:
		return maxf(90, float64(len(w.Options))*60), 30
	case widget.Dropdown:
		return maxf(110, textW), 28
	case widget.Toggle:
		return maxf(70, textW), 26
	case widget.Slider:
		return 170, 34
	case widget.RangeSlider:
		return 170, 38
	case widget.Textbox:
		return 130, 28
	case widget.Adder:
		return 170, 64
	}
	return 120, 30
}

// visSize estimates a chart's rendered size.
func visSize(v *VisSpec) (float64, float64) {
	if v.Mapping.Vis.Type == vis.Table {
		return 360, 220
	}
	return 330, 250
}

// BuildLayoutTree constructs the layout tree L (paper §4.3): per Difftree, a
// widget tree mirroring the Difftree's LCA structure, grouped with the
// tree's visualization; a root layout node groups the per-tree layouts.
// Widgets on nodes with widget-bearing descendants become layout widgets
// (headers above their nested sub-interface).
func (ifc *Interface) BuildLayoutTree() *layout.Node {
	root := layout.Group()
	for ti := range ifc.State.Trees {
		var parts []*layout.Node
		if wt := ifc.widgetTreeFor(ti); wt != nil {
			parts = append(parts, wt)
		}
		if v := ifc.VisForTree(ti); v != nil {
			w, h := visSize(v)
			parts = append(parts, layout.Leaf(v.ElemID, w, h))
		}
		switch len(parts) {
		case 0:
		case 1:
			root.Children = append(root.Children, parts[0])
		default:
			root.Children = append(root.Children, layout.Group(parts...))
		}
	}
	if len(root.Children) == 1 {
		return root.Children[0]
	}
	return root
}

// widgetTreeFor builds W_Δ for one tree.
func (ifc *Interface) widgetTreeFor(ti int) *layout.Node {
	byNode := map[int]*WidgetSpec{}
	for i := range ifc.Widgets {
		w := &ifc.Widgets[i]
		if w.Tree == ti {
			byNode[w.NodeID] = w
		}
	}
	if len(byNode) == 0 {
		return nil
	}
	tree := ifc.State.Trees[ti]
	var build func(n *dt.Node) *layout.Node
	build = func(n *dt.Node) *layout.Node {
		var childNodes []*layout.Node
		for _, c := range n.Children {
			if cn := build(c); cn != nil {
				childNodes = append(childNodes, cn)
			}
		}
		w := byNode[n.ID]
		if w == nil {
			switch len(childNodes) {
			case 0:
				return nil
			case 1:
				return childNodes[0]
			default:
				return layout.Group(childNodes...)
			}
		}
		ww, wh := widgetSize(w)
		leaf := layout.Leaf(w.ElemID, ww, wh)
		if len(childNodes) == 0 {
			return leaf
		}
		// layout widget: header above its nested sub-interface
		g := layout.Group(childNodes...)
		g.Header = leaf
		return g
	}
	return build(tree.Root)
}

// Arrange lays out the interface with the current direction assignment.
func (ifc *Interface) Arrange() {
	if ifc.LayoutTree == nil {
		ifc.LayoutTree = ifc.BuildLayoutTree()
	}
	ifc.Boxes = map[string]layout.Box{}
	ifc.TotalBox = ifc.LayoutTree.Arrange(0, 0, ifc.Boxes)
}

// Summary renders a one-line description for logs and experiments.
func (ifc *Interface) Summary() string {
	return fmt.Sprintf("%d charts, %d widgets, %d vis-interactions, cost %.1f",
		len(ifc.Vis), len(ifc.Widgets), len(ifc.VisInts), ifc.Cost)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
