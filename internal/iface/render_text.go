package iface

import (
	"fmt"
	"sort"
	"strings"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

// RenderText renders the interface spec as readable text: one block per
// chart with its visualization mapping and attached interactions, one line
// per widget, and the layout's bounding boxes.
func RenderText(ifc *Interface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interface: %s\n", ifc.Summary())
	for vi, v := range ifc.Vis {
		fmt.Fprintf(&b, "  chart %s: %s", v.ElemID, v.Mapping.Vis.Type)
		var parts []string
		for _, vvar := range []string{"x", "y", "color", "shape", "size"} {
			if ci := v.Mapping.Col(vvar); ci >= 0 && ci < len(v.Cols) {
				parts = append(parts, fmt.Sprintf("%s=%s", vvar, v.Cols[ci]))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
		for _, it := range ifc.VisInts {
			if it.SourceVis == vi {
				fmt.Fprintf(&b, "    interaction %s -> tree %d node %d\n", it.Kind, it.Tree, it.NodeID)
			}
		}
	}
	for _, w := range ifc.Widgets {
		fmt.Fprintf(&b, "  widget %s: %s %q", w.ElemID, w.Kind, w.Label)
		if len(w.Options) > 0 {
			fmt.Fprintf(&b, " options=[%s]", strings.Join(w.Options, " | "))
		}
		if w.Min != 0 || w.Max != 0 {
			fmt.Fprintf(&b, " range=[%g, %g]", w.Min, w.Max)
		}
		fmt.Fprintf(&b, " -> tree %d node %d\n", w.Tree, w.NodeID)
	}
	if len(ifc.Boxes) > 0 {
		b.WriteString("  layout:\n")
		ids := make([]string, 0, len(ifc.Boxes))
		for id := range ifc.Boxes {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			box := ifc.Boxes[id]
			fmt.Fprintf(&b, "    %-6s at (%4.0f,%4.0f) %gx%g\n", id, box.X, box.Y, box.W, box.H)
		}
		fmt.Fprintf(&b, "    total %gx%g\n", ifc.TotalBox.W, ifc.TotalBox.H)
	}
	return b.String()
}

// RenderTrees renders the state's Difftrees as annotated SQL-ish text, for
// inspection and the CLI.
func RenderTrees(state *transform.State) string {
	var b strings.Builder
	for ti, t := range state.Trees {
		fmt.Fprintf(&b, "tree %d (queries %v): %s\n", ti, t.Queries, sqlparser.ToSQL(t.Root))
		choices := t.Root.ChoiceNodes()
		if len(choices) > 0 {
			var names []string
			for _, c := range choices {
				names = append(names, fmt.Sprintf("%s#%d", kindName(c), c.ID))
			}
			fmt.Fprintf(&b, "  choice nodes: %s\n", strings.Join(names, ", "))
		}
	}
	return b.String()
}

func kindName(n *dt.Node) string { return n.Kind.String() }
