package iface

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRegistryClosed is returned by Acquire after Close: the server is
// draining and no new sessions may be created or resumed.
var ErrRegistryClosed = errors.New("iface: session registry closed")

// DefaultMaxSessions is the registry capacity when RegistryOptions leaves
// MaxSessions unset.
const DefaultMaxSessions = 64

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// MaxSessions bounds the number of live sessions; at the cap the least
	// recently used session is evicted to admit a new one. <= 0 means
	// DefaultMaxSessions.
	MaxSessions int
	// TTL evicts sessions idle longer than this (checked on Acquire and
	// Sweep). 0 disables idle expiry.
	TTL time.Duration
	// Plans, when set, is reported in Stats (occupancy and compile count).
	// The registry does not manage it; the factory decides whether sessions
	// share it (see NewSessionWithPlans).
	Plans *PlanCache
	// Now is the clock, injectable for TTL tests. nil means time.Now.
	Now func() time.Time
}

// RegistryStats is the multi-session serving aggregate: registry occupancy
// and eviction counters plus the cache counters summed over every session
// that ever lived — live sessions are read via their lock-free atomic
// counters, and an evicted session's counter block is retained (and keeps
// absorbing writes from requests that were in flight at eviction time), so
// eviction never loses traffic accounting.
type RegistryStats struct {
	LiveSessions int    `json:"live_sessions"`
	Created      uint64 `json:"created"`      // sessions built by the factory
	Hits         uint64 `json:"hits"`         // Acquires answered by a live session
	EvictedLRU   uint64 `json:"evicted_lru"`  // evicted for capacity
	ExpiredTTL   uint64 `json:"expired_ttl"`  // evicted for idleness
	SharedPlans  int    `json:"shared_plans"` // resident entries in the shared PlanCache
	PlanCompiles uint64 `json:"plan_compiles"`

	Cache CacheStats `json:"cache"` // summed over live + retired sessions
}

// Registry serves per-user sessions created on demand: Acquire(key) returns
// the live session for the key or builds one via the factory, enforcing an
// LRU capacity bound and an idle TTL. It is the multi-tenant core of the
// serving layer — one generated interface, many concurrent users, each with
// independent binding state.
//
// Locking hierarchy (top to bottom; a holder may only take locks below its
// own):
//
//	registry.mu  >  session.mu  >  PlanCache shard mu
//
// The registry mutex is an RWMutex guarding only the session table: the
// Acquire fast path takes the read lock for a map lookup (recency is an
// atomic timestamp, so no list juggling under a write lock), and all query
// execution happens after release, under the per-session mutex. Sessions
// therefore never serialize on each other — two users brushing two sessions
// run concurrently, contending only for microseconds on the table lock and,
// on plan misses, on one shard of the shared PlanCache. The registry never
// calls into a session while holding its own lock, except to read the
// lock-free atomic stats counters of sessions it retires.
//
// An evicted session stays valid for requests already holding its pointer
// (its own mutex still protects it); it has merely left the table, so the
// next Acquire of its key builds a fresh session back at the interface's
// initial state.
type Registry struct {
	factory func() (*Session, error)
	max     int
	ttl     time.Duration
	now     func() time.Time
	plans   *PlanCache

	mu       sync.RWMutex
	sessions map[string]*regEntry
	closed   bool
	// mutated only under mu (write); read under mu (read or write)
	created, evictedLRU, expiredTTL uint64
	// retired keeps the atomic counter blocks (not numeric snapshots) of
	// recently evicted sessions: a request that was mid-interaction when
	// its session was evicted keeps counting into the same block, so the
	// aggregate is exact once requests quiesce — eviction never loses
	// traffic. To keep memory bounded on a long-running server, blocks
	// older than retiredGrace (by then any straggler request has long
	// finished) are folded into retiredBase and dropped; see
	// compactRetiredLocked.
	retired     []retiredEntry
	retiredBase CacheStats

	hits atomic.Uint64 // bumped on the read-locked fast path
}

// retiredEntry is one evicted session's counter block plus its retirement
// time; retired stays append-ordered by time.
type retiredEntry struct {
	stats *sessionStats
	at    time.Time
}

// retiredGrace is how long an evicted session's counter block stays live
// before being folded into the base aggregate. Requests holding an evicted
// session finish in well under this, so folding loses nothing in practice;
// a pathological request still running a minute past eviction would lose
// only its own post-fold counter bumps, never correctness.
const retiredGrace = time.Minute

// regEntry is one live session. lastAccess is atomic so the Acquire fast
// path can refresh recency under the registry's read lock.
type regEntry struct {
	key        string
	sess       *Session
	lastAccess atomic.Int64 // unix nanoseconds
}

// NewRegistry builds a registry over a session factory. The factory runs
// under the registry write lock (session creation is rare and cheap next to
// query execution) and must not call back into the registry.
func NewRegistry(factory func() (*Session, error), opts RegistryOptions) *Registry {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Registry{
		factory:  factory,
		max:      opts.MaxSessions,
		ttl:      opts.TTL,
		now:      opts.Now,
		plans:    opts.Plans,
		sessions: map[string]*regEntry{},
	}
}

// Lookup returns the live session for key without creating one on miss.
// Read-only endpoints use it so scrapes, typos, and probes can never churn
// session creation or evict an active user. A hit refreshes recency.
func (r *Registry) Lookup(key string) (*Session, bool) {
	now := r.now()
	r.mu.RLock()
	e := r.sessions[key]
	r.mu.RUnlock()
	if e == nil || r.expired(e, now) {
		return nil, false
	}
	e.lastAccess.Store(now.UnixNano())
	r.hits.Add(1)
	return e.sess, true
}

// Acquire returns the session for key, creating it on demand. The returned
// session remains valid even if it is later evicted.
func (r *Registry) Acquire(key string) (*Session, error) {
	now := r.now()
	r.mu.RLock()
	e, closed := r.sessions[key], r.closed
	r.mu.RUnlock()
	if e != nil && !r.expired(e, now) {
		e.lastAccess.Store(now.UnixNano())
		r.hits.Add(1)
		return e.sess, nil
	}
	if closed {
		return nil, ErrRegistryClosed
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	if e := r.sessions[key]; e != nil {
		if !r.expired(e, now) { // lost the race to another creator: reuse
			e.lastAccess.Store(now.UnixNano())
			r.hits.Add(1)
			return e.sess, nil
		}
		r.retireLocked(e, &r.expiredTTL)
	}
	r.sweepLocked(now)
	for len(r.sessions) >= r.max {
		r.retireLocked(r.lruVictimLocked(), &r.evictedLRU)
	}
	sess, err := r.factory()
	if err != nil {
		return nil, err
	}
	e = &regEntry{key: key, sess: sess}
	e.lastAccess.Store(now.UnixNano())
	r.sessions[key] = e
	r.created++
	return sess, nil
}

func (r *Registry) expired(e *regEntry, now time.Time) bool {
	return r.ttl > 0 && now.Sub(time.Unix(0, e.lastAccess.Load())) > r.ttl
}

// lruVictimLocked picks the least recently used entry; ties break toward
// the smaller key so eviction under an injected coarse clock stays
// deterministic.
func (r *Registry) lruVictimLocked() *regEntry {
	var victim *regEntry
	for _, e := range r.sessions {
		if victim == nil {
			victim = e
			continue
		}
		ea, va := e.lastAccess.Load(), victim.lastAccess.Load()
		if ea < va || (ea == va && e.key < victim.key) {
			victim = e
		}
	}
	return victim
}

// retireLocked removes the entry, keeps its counter block in the retired
// aggregate, and bumps the given eviction counter. Nothing here touches the
// session mutex, so retiring never blocks on an in-flight request still
// using the session.
func (r *Registry) retireLocked(e *regEntry, counter *uint64) {
	delete(r.sessions, e.key)
	now := r.now()
	r.compactRetiredLocked(now)
	r.retired = append(r.retired, retiredEntry{stats: e.sess.stats, at: now})
	*counter++
}

// compactRetiredLocked folds counter blocks retired longer than
// retiredGrace ago into retiredBase and drops them, bounding the retired
// list to roughly one grace period of evictions. Called on every retire
// and sweep, so sustained eviction churn compacts continuously.
func (r *Registry) compactRetiredLocked(now time.Time) {
	i := 0
	for ; i < len(r.retired) && now.Sub(r.retired[i].at) > retiredGrace; i++ {
		r.retiredBase.Add(r.retired[i].stats.snapshot())
	}
	if i > 0 {
		r.retired = append(r.retired[:0], r.retired[i:]...)
	}
}

// sweepLocked retires every TTL-expired session, returning how many.
func (r *Registry) sweepLocked(now time.Time) int {
	r.compactRetiredLocked(now)
	if r.ttl <= 0 {
		return 0
	}
	n := 0
	for _, e := range r.sessions {
		if r.expired(e, now) {
			r.retireLocked(e, &r.expiredTTL)
			n++
		}
	}
	return n
}

// Sweep retires idle sessions past the TTL; servers call it periodically so
// an abandoned fleet shrinks without waiting for the next Acquire.
func (r *Registry) Sweep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepLocked(r.now())
}

// Len reports the number of live sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Stats aggregates registry occupancy, eviction counters, and cache
// counters across every session, live and retired. Live sessions are read
// through their atomic counters — no session mutex is taken, so the
// aggregate never stalls behind (or stalls) a long-running interaction.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := RegistryStats{
		LiveSessions: len(r.sessions),
		Created:      r.created,
		Hits:         r.hits.Load(),
		EvictedLRU:   r.evictedLRU,
		ExpiredTTL:   r.expiredTTL,
	}
	st.Cache.Add(r.retiredBase)
	for _, re := range r.retired {
		st.Cache.Add(re.stats.snapshot())
	}
	for _, e := range r.sessions {
		st.Cache.Add(e.sess.Stats())
	}
	if r.plans != nil {
		st.SharedPlans = r.plans.Len()
		st.PlanCompiles = r.plans.Compiles()
	}
	return st
}

// Close drains the registry: every live session is retired into the
// aggregate (their pointers stay valid for requests still finishing) and
// subsequent Acquires fail with ErrRegistryClosed. Safe to call more than
// once.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	now := r.now()
	for _, e := range r.sessions {
		delete(r.sessions, e.key)
		r.retired = append(r.retired, retiredEntry{stats: e.sess.stats, at: now})
	}
}
