package iface

import (
	"sync"
	"sync/atomic"

	dt "pi2/internal/difftree"
	"pi2/internal/engine"
)

// PlanCache is a compiled-plan cache shared read-only across sessions.
//
// A compiled engine.Plan depends only on the resolved query AST and the
// database snapshot it was prepared against — it is binding-independent
// (distinct binding states that resolve to the same SQL share one plan) and
// session-independent (no per-user state leaks into compilation). So one
// registry-wide cache can serve every session: entries are keyed by
// difftree.Hash(ast) ⊕ DB generation, which makes entries from a mutated
// database unreachable rather than requiring a flush (they age out of the
// LRU under capacity pressure). Per-binding *result* tables, by contrast,
// stay session-private — see Session.
//
// Compilation is single-flighted exactly like the search layer's
// rewardCache: the per-entry sync.Once runs Prepare at most once across all
// sessions and blocks concurrent requesters until the plan (or its error —
// Prepare failures are deterministic for a fixed AST and generation, so
// they are memoized too) is ready. Sharding keeps sessions from
// serializing on one lock; each shard's LRU bounds residency.
type PlanCache struct {
	shards   [planShards]planShard
	compiles atomic.Uint64 // Prepare calls actually run (for tests/stats)
}

const (
	planShards           = 8
	maxSharedPlansPerShd = 128 // 8 shards × 128 = 1024 plans registry-wide
)

type planShard struct {
	mu  sync.Mutex
	lru *lruCache[uint64, *planEntry]
}

// planEntry single-flights one (resolved AST, DB generation) compilation.
// ast and gen guard against 64-bit key collisions; they are set before the
// entry is published and never written again.
type planEntry struct {
	once sync.Once
	ast  *dt.Node
	gen  uint64
	plan *engine.Plan
	err  error
}

// NewPlanCache returns an empty shared plan cache.
func NewPlanCache() *PlanCache {
	pc := &PlanCache{}
	for i := range pc.shards {
		pc.shards[i].lru = newLRU[uint64, *planEntry](maxSharedPlansPerShd)
	}
	return pc
}

// planKey folds the DB generation into the AST hash so a mutated database
// sees only fresh entries. The multiply spreads small generation deltas
// across all 64 bits (fibonacci hashing); collisions are still guarded by
// the entry's ast/gen fields.
func planKey(qh, gen uint64) uint64 {
	return qh ^ (gen+1)*0x9e3779b97f4a7c15
}

// Get returns the compiled plan for ast against db's current generation,
// compiling at most once across all sessions. hit reports whether the entry
// already existed (the caller may have waited for another session's
// in-flight compilation, but no compilation ran on its behalf).
func (pc *PlanCache) Get(db *engine.DB, ast *dt.Node) (plan *engine.Plan, hit bool, err error) {
	gen := db.Generation()
	key := planKey(dt.Hash(ast), gen)
	sh := &pc.shards[key%planShards]
	sh.mu.Lock()
	e, ok := sh.lru.get(key)
	if ok && (e.gen != gen || !dt.Equal(e.ast, ast)) {
		ok = false // 64-bit collision: replace rather than serve a stranger's plan
	}
	if !ok {
		e = &planEntry{ast: ast, gen: gen}
		sh.lru.put(key, e)
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		pc.compiles.Add(1)
		e.plan, e.err = engine.Prepare(db, ast)
	})
	return e.plan, ok, e.err
}

// Len reports the number of resident plans across all shards.
func (pc *PlanCache) Len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += sh.lru.len()
		sh.mu.Unlock()
	}
	return n
}

// Compiles reports how many Prepare calls actually ran — under single
// flight this stays at one per distinct (query, generation) no matter how
// many sessions request it concurrently.
func (pc *PlanCache) Compiles() uint64 { return pc.compiles.Load() }
