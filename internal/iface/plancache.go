package iface

import (
	"sync"
	"sync/atomic"

	dt "pi2/internal/difftree"
	"pi2/internal/engine"
)

// PlanCache is a compiled-plan cache shared read-only across sessions.
//
// A compiled engine.Plan depends only on the resolved query AST and the
// table snapshots it was prepared against — it is binding-independent
// (distinct binding states that resolve to the same SQL share one plan) and
// session-independent (no per-user state leaks into compilation). So one
// registry-wide cache can serve every session: entries are keyed by
// difftree.Hash(ast) alone and validated per use against the referenced
// tables' generations (engine.Plan.Stale) — a write to one table replaces
// only the entries whose plans actually read it; every other plan stays
// resident and hot. Per-binding *result* tables, by contrast, stay
// session-private — see Session.
//
// Compilation is single-flighted exactly like the search layer's
// rewardCache: the per-entry sync.Once runs Prepare at most once across all
// sessions and blocks concurrent requesters until the plan (or its error —
// Prepare failures are deterministic for a fixed AST and generation, so
// they are memoized too) is ready. Sharding keeps sessions from
// serializing on one lock; each shard's LRU bounds residency.
type PlanCache struct {
	shards   [planShards]planShard
	compiles atomic.Uint64 // Prepare calls actually run (for tests/stats)
}

const (
	planShards           = 8
	maxSharedPlansPerShd = 128 // 8 shards × 128 = 1024 plans registry-wide
)

type planShard struct {
	mu  sync.Mutex
	lru *lruCache[uint64, *planEntry]
}

// planEntry single-flights one resolved-AST compilation. ast guards against
// 64-bit key collisions; it is set before the entry is published and never
// written again. plan/err are written once inside once.Do.
type planEntry struct {
	once sync.Once
	ast  *dt.Node
	plan *engine.Plan
	err  error
}

// NewPlanCache returns an empty shared plan cache.
func NewPlanCache() *PlanCache {
	pc := &PlanCache{}
	for i := range pc.shards {
		pc.shards[i].lru = newLRU[uint64, *planEntry](maxSharedPlansPerShd)
	}
	return pc
}

// planStaleRetries bounds how many times Get replaces a stale entry and
// recompiles before giving up and returning the (possibly still stale) plan
// — under a sustained writer the caller's Exec surfaces ErrStalePlan and
// the request layer decides what to do.
const planStaleRetries = 3

// Get returns the compiled plan for ast, compiling at most once across all
// sessions. Resident plans are validated against the generations of the
// tables they read (engine.Plan.Stale); a stale entry is replaced in place
// and recompiled, which touches only the written table's plans — unrelated
// entries stay hot. hit reports whether a still-fresh entry already existed
// (the caller may have waited for another session's in-flight compilation,
// but no compilation ran on its behalf).
func (pc *PlanCache) Get(db *engine.DB, ast *dt.Node) (plan *engine.Plan, hit bool, err error) {
	key := dt.Hash(ast)
	sh := &pc.shards[key%planShards]
	for attempt := 0; ; attempt++ {
		sh.mu.Lock()
		e, ok := sh.lru.get(key)
		if ok && !dt.Equal(e.ast, ast) {
			ok = false // 64-bit collision: replace rather than serve a stranger's plan
		}
		if !ok {
			e = &planEntry{ast: ast}
			sh.lru.put(key, e)
		}
		sh.mu.Unlock()
		e.once.Do(func() {
			pc.compiles.Add(1)
			e.plan, e.err = engine.Prepare(db, ast)
		})
		if e.err == nil && e.plan.Stale() && attempt < planStaleRetries {
			// Replace the stale entry (only if it is still the resident one —
			// another session may have already swapped it) and recompile.
			sh.mu.Lock()
			if cur, live := sh.lru.get(key); live && cur == e {
				sh.lru.put(key, &planEntry{ast: ast})
			}
			sh.mu.Unlock()
			continue
		}
		return e.plan, ok && attempt == 0, e.err
	}
}

// Len reports the number of resident plans across all shards.
func (pc *PlanCache) Len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += sh.lru.len()
		sh.mu.Unlock()
	}
	return n
}

// Compiles reports how many Prepare calls actually ran — under single
// flight this stays at one per distinct (query, generation) no matter how
// many sessions request it concurrently.
func (pc *PlanCache) Compiles() uint64 { return pc.compiles.Load() }
