package iface

import (
	"strings"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/layout"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/widget"
)

var (
	testDB  = dataset.NewDB()
	testCat = catalog.Build(testDB, dataset.Keys())
)

// buildSliderInterface hand-builds a one-chart one-slider interface over
// SELECT p, count(*) FROM T WHERE a = VAL GROUP BY p. It takes testing.TB
// so tests, benchmarks, and fuzz targets all share the fixture.
func buildSliderInterface(t testing.TB) (*Interface, *transform.Context) {
	t.Helper()
	q1 := sqlparser.MustParse("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	q2 := sqlparser.MustParse("SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	tree := q1.Clone()
	val := dt.New(dt.KindVal, "num", dt.Number("1"), dt.Number("2"))
	tree.Children[2].Children[0].Children[0].Children[1] = val
	tree.Renumber()
	ctx := &transform.Context{Queries: []*dt.Node{q1, q2}, Cat: testCat}
	state := &transform.State{Trees: []*transform.Tree{{Root: tree, Queries: []int{0, 1}}}}
	if !state.Valid(ctx) {
		t.Fatal("hand-built state invalid")
	}
	valID := tree.ChoiceNodes()[0].ID
	ifc := &Interface{
		State: state,
		Vis: []VisSpec{{
			ElemID: "vis0", Tree: 0,
			Mapping: vis.Mapping{Vis: vis.Catalog()[2], Assign: map[string]int{"x": 0, "y": 1}},
			Cols:    []string{"p", "count"},
		}},
		Widgets: []WidgetSpec{{
			ElemID: "w0", Kind: widget.Slider, Label: "T.a",
			Min: 1, Max: 4, Tree: 0, NodeID: valID, Cover: []int{valID}, Manip: 150,
		}},
	}
	ifc.Arrange()
	return ifc, ctx
}

func TestSessionInitializesFromFirstQuery(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := sess.CurrentSQL(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "a = 1") {
		t.Fatalf("initial sql = %s", sql)
	}
}

func TestSliderManipulationRewritesQuery(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	if err := sess.SetSlider("w0", 3); err != nil {
		t.Fatal(err)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 3") {
		t.Fatalf("sql after slider = %s", sql)
	}
	res, err := sess.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 {
		t.Fatalf("result cols = %v", res.Cols)
	}
}

func TestSetTextValidation(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	ifc.Widgets[0].Kind = widget.Textbox
	sess, _ := NewSession(ifc, ctx, testDB)
	if err := sess.SetText("w0", "xyz"); err == nil {
		t.Fatal("non-numeric text accepted for num VAL")
	}
	if err := sess.SetText("w0", "2"); err != nil {
		t.Fatal(err)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 2") {
		t.Fatalf("sql = %s", sql)
	}
}

func TestUnknownWidgetErrors(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	if err := sess.SetSlider("nope", 1); err == nil {
		t.Fatal("unknown widget accepted")
	}
	if err := sess.SetOption("w0", 0); err == nil {
		t.Fatal("SetOption on a slider VAL without options should fail gracefully or bind an option")
	}
}

func TestLayoutWidgetNesting(t *testing.T) {
	// a widget on a node with widget-bearing descendants becomes a header
	q := sqlparser.MustParse("SELECT p FROM T WHERE a = 1")
	tree := q.Clone()
	val := dt.New(dt.KindVal, "num", dt.Number("1"))
	opt := dt.New(dt.KindOpt, "", dt.New(dt.KindBinary, "=", dt.Ident("a"), val))
	tree.Children[2].Children[0].Children[0] = opt
	tree.Renumber()
	state := &transform.State{Trees: []*transform.Tree{{Root: tree, Queries: []int{0}}}}
	ifc := &Interface{
		State: state,
		Vis: []VisSpec{{ElemID: "vis0", Tree: 0,
			Mapping: vis.Mapping{Vis: vis.Catalog()[0], Assign: map[string]int{}}, Cols: []string{"p"}}},
		Widgets: []WidgetSpec{
			{ElemID: "w0", Kind: widget.Toggle, Tree: 0, NodeID: opt.ID, Cover: []int{opt.ID}},
			{ElemID: "w1", Kind: widget.Slider, Tree: 0, NodeID: val.ID, Cover: []int{val.ID}, Min: 1, Max: 4},
		},
	}
	ifc.Arrange()
	tb, ok1 := ifc.Boxes["w0"]
	sb, ok2 := ifc.Boxes["w1"]
	if !ok1 || !ok2 {
		t.Fatalf("boxes missing: %v", ifc.Boxes)
	}
	// the toggle is a layout widget: its box sits above the nested slider
	if tb.Y >= sb.Y {
		t.Fatalf("toggle at %v should be above slider at %v", tb, sb)
	}
}

func TestRenderTextContainsEverything(t *testing.T) {
	ifc, _ := buildSliderInterface(t)
	out := RenderText(ifc)
	for _, want := range []string{"chart vis0", "bar", "widget w0", "slider", "layout"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderText missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTreesShowsChoiceNodes(t *testing.T) {
	ifc, _ := buildSliderInterface(t)
	out := RenderTrees(ifc.State)
	if !strings.Contains(out, "VAL") {
		t.Fatalf("RenderTrees = %s", out)
	}
}

func TestRenderHTMLSnapshot(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	html, err := RenderHTML(sess)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "input type=\"range\""} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// charts must render marks from the executed result
	if !strings.Contains(html, "<rect") {
		t.Error("bar chart has no bars")
	}
}

func TestRenderHTMLTable(t *testing.T) {
	q := sqlparser.MustParse("SELECT p, a, b FROM T")
	tree := q.Clone()
	tree.Renumber()
	ctx := &transform.Context{Queries: []*dt.Node{q}, Cat: testCat}
	state := &transform.State{Trees: []*transform.Tree{{Root: tree, Queries: []int{0}}}}
	ifc := &Interface{
		State: state,
		Vis: []VisSpec{{ElemID: "vis0", Tree: 0,
			Mapping: vis.Mapping{Vis: vis.Catalog()[0], Assign: map[string]int{}},
			Cols:    []string{"p", "a", "b"}}},
	}
	ifc.Arrange()
	sess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	html, err := RenderHTML(sess)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "<table>") || !strings.Contains(html, "<th>p</th>") {
		t.Fatalf("table rendering missing:\n%s", html[:300])
	}
}

func TestArrangeProducesBoxes(t *testing.T) {
	ifc, _ := buildSliderInterface(t)
	if ifc.TotalBox.W <= 0 || ifc.TotalBox.H <= 0 {
		t.Fatalf("total box = %+v", ifc.TotalBox)
	}
	if _, ok := ifc.Boxes["vis0"]; !ok {
		t.Fatal("chart box missing")
	}
	// boxes must not overlap
	a, b := ifc.Boxes["vis0"], ifc.Boxes["w0"]
	if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
		t.Fatalf("chart and widget overlap: %+v %+v", a, b)
	}
	_ = layout.Box{}
}
