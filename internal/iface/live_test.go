package iface

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/engine"
)

// liveSession builds a slider-interface session over its own private DB so
// tests can append without contaminating the package-wide testDB fixture.
func liveSession(t *testing.T, plans *PlanCache) (*Session, *engine.DB) {
	t.Helper()
	ifc, ctx := buildSliderInterface(t)
	db := dataset.NewDB()
	sess, err := NewSessionWithPlans(ifc, ctx, db, plans)
	if err != nil {
		t.Fatal(err)
	}
	return sess, db
}

func appendT(t *testing.T, db *engine.DB) {
	t.Helper()
	if err := db.Append("T", [][]engine.Value{{engine.NumVal(1), engine.NumVal(1), engine.NumVal(1)}}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionEvictionPrecision: a write to a table a session's queries never
// read leaves its cached results and the shared plans warm; a write to the
// table they do read invalidates exactly them.
func TestSessionEvictionPrecision(t *testing.T) {
	plans := NewPlanCache()
	sess, db := liveSession(t, plans) // the interface reads only table T
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	warmCompiles := plans.Compiles()

	// Unrelated write: Cars is not referenced by any tree.
	if err := db.Append("Cars", [][]engine.Value{{
		engine.NumVal(9999), engine.NumVal(100), engine.NumVal(30), engine.NumVal(200), engine.StrVal("USA"),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.ResultHits != 1 {
		t.Fatalf("after unrelated write: result hits = %d, want 1 (cached result must stay warm)", st.ResultHits)
	}
	if st.Invalidations != 0 {
		t.Fatalf("after unrelated write: invalidations = %d, want 0", st.Invalidations)
	}
	if got := plans.Compiles(); got != warmCompiles {
		t.Fatalf("after unrelated write: plan compiles %d -> %d (shared plan must stay resident)", warmCompiles, got)
	}

	// Write to T: this session's one result must be discarded and recomputed.
	appendT(t, db)
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("after write to T: invalidations = %d, want 1", st.Invalidations)
	}
	if st.ResultHits != 1 {
		t.Fatalf("after write to T: result hits = %d, want still 1", st.ResultHits)
	}
	if plans.Compiles() != warmCompiles+1 {
		t.Fatalf("after write to T: plan compiles = %d, want %d (stale plan recompiled once)",
			plans.Compiles(), warmCompiles+1)
	}
	// The recomputed result must include the appended row (p=1, a=1 matches
	// the initial binding a = 1).
	sum := 0.0
	for _, row := range res[0].Rows {
		sum += row[1].Num
	}
	prev, _ := sess.Results() // now a hit again
	_ = prev
	if st2 := sess.Stats(); st2.ResultHits != 2 {
		t.Fatalf("re-read after invalidation: hits = %d, want 2", st2.ResultHits)
	}
	if sum == 0 {
		t.Fatal("recomputed result is empty")
	}
}

// TestSessionStaleExecRetries: a writer landing between plan resolution and
// execution is absorbed by the bounded retry (one-shot mutation), while a
// writer that outpaces every retry surfaces engine.ErrStalePlan.
func TestSessionStaleExecRetries(t *testing.T) {
	sess, db := liveSession(t, nil)
	fired := false
	sess.execHook = func() {
		if !fired {
			fired = true
			appendT(t, db)
		}
	}
	if _, err := sess.Results(); err != nil {
		t.Fatalf("one-shot mid-request write should be retried away, got %v", err)
	}

	sess.execHook = func() { appendT(t, db) } // sustained writer
	sess.ResetCache()
	if _, err := sess.Results(); !errors.Is(err, engine.ErrStalePlan) {
		t.Fatalf("sustained mid-request writer: err = %v, want ErrStalePlan", err)
	}
}

// TestExplainAnalyzeStale: same window, profiled path — retried once, clean
// sentinel error under a sustained writer (never a panic, never a profile
// over a half-mutated view).
func TestExplainAnalyzeStale(t *testing.T) {
	sess, db := liveSession(t, nil)
	fired := false
	sess.execHook = func() {
		if !fired {
			fired = true
			appendT(t, db)
		}
	}
	if _, _, err := sess.ExplainAnalyze(0); err != nil {
		t.Fatalf("one-shot mid-profile write should be retried away, got %v", err)
	}
	sess.execHook = func() { appendT(t, db) }
	if _, _, err := sess.ExplainAnalyze(0); !errors.Is(err, engine.ErrStalePlan) {
		t.Fatalf("sustained writer: err = %v, want ErrStalePlan", err)
	}
}

func newLiveServer(t *testing.T) (*httptest.Server, *Session, *engine.DB) {
	t.Helper()
	sess, db := liveSession(t, nil)
	srv := httptest.NewServer(NewServer(sess).WithIngest(db).Handler())
	t.Cleanup(srv.Close)
	return srv, sess, db
}

// TestServerStaleMapsTo409: a request that loses the race against a
// sustained writer is a 409 Conflict (retry), not a 500 — on the page, and
// on both /sql explain variants.
func TestServerStaleMapsTo409(t *testing.T) {
	srv, sess, db := newLiveServer(t)
	sess.execHook = func() { appendT(t, db) }
	if code, body := get(t, srv.URL+"/"); code != http.StatusConflict || !strings.Contains(body, "stale") {
		t.Fatalf("GET / under sustained writer: code=%d body=%q, want 409 with stale message", code, body)
	}
	if code, body := get(t, srv.URL+"/sql?explain=1"); code != http.StatusConflict || !strings.Contains(body, "stale") {
		t.Fatalf("GET /sql?explain=1 under sustained writer: code=%d body=%q, want 409", code, body)
	}
	// Plan-only explain never executes, so it cannot lose the race.
	if code, _ := get(t, srv.URL+"/sql?explain=plan"); code != http.StatusOK {
		t.Fatalf("GET /sql?explain=plan: code=%d, want 200", code)
	}
	// One-shot mutation: absorbed by the retry, served normally.
	fired := false
	sess.execHook = func() {
		if !fired {
			fired = true
			appendT(t, db)
		}
	}
	if code, body := get(t, srv.URL+"/sql?explain=1"); code != http.StatusOK {
		t.Fatalf("GET /sql?explain=1 with one-shot write: code=%d body=%q, want 200", code, body)
	}
	sess.execHook = nil
	if code, _ := get(t, srv.URL+"/"); code != http.StatusOK {
		t.Fatalf("GET / after writer stopped: code=%d, want 200", code)
	}
}

// TestServerIngest drives the write path end to end: NDJSON rows land in
// the live table, the response reports the new generation, and the serving
// page immediately reflects the write.
func TestServerIngest(t *testing.T) {
	srv, sess, db := newLiveServer(t)
	before, _ := db.Table("T")
	n0 := len(before.Rows)
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/ingest?table=T", "application/x-ndjson",
		strings.NewReader(`{"p":1,"a":1,"b":2}`+"\n"+`{"p":2,"b":null}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: code=%d body=%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"rows":2`) || !strings.Contains(string(body), `"table":"T"`) {
		t.Fatalf("ingest response = %s", body)
	}
	after, _ := db.Table("T")
	if len(after.Rows) != n0+2 {
		t.Fatalf("table has %d rows, want %d", len(after.Rows), n0+2)
	}
	if !after.Rows[n0+1][1].Null {
		t.Fatal("missing key should ingest as NULL")
	}
	// The session notices: its cached result is invalidated and recomputed.
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}

	// Error contract: method, parameter, table, and payload failures are
	// client errors and write nothing.
	for _, tc := range []struct {
		method, url, body string
		want              int
	}{
		{"GET", "/ingest?table=T", "", http.StatusMethodNotAllowed},
		{"POST", "/ingest", `{"p":1}`, http.StatusBadRequest},
		{"POST", "/ingest?table=nope", `{"p":1}`, http.StatusNotFound},
		{"POST", "/ingest?table=T", `{"zz":1}`, http.StatusBadRequest},
		{"POST", "/ingest?table=T", `{"p":"x"}`, http.StatusBadRequest},
		{"POST", "/ingest?table=T", `not json`, http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.url, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s: code=%d, want %d", tc.method, tc.url, resp.StatusCode, tc.want)
		}
	}
	if got, _ := db.Table("T"); len(got.Rows) != n0+2 {
		t.Fatalf("failed requests wrote rows: %d, want %d", len(got.Rows), n0+2)
	}
}

// TestServeLiveAppendChurn hammers one serving session with concurrent page
// loads while a writer streams appends through /ingest: every response must
// be a 200 or a 409 (the bounded-retry loss), nothing else, and every
// accepted batch must be durable in the table. Run under -race in CI.
func TestServeLiveAppendChurn(t *testing.T) {
	srv, _, db := newLiveServer(t)
	before, _ := db.Table("T")
	n0 := len(before.Rows)

	const writes = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					t.Errorf("GET /: unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		resp, err := http.Post(srv.URL+"/ingest?table=T", "application/x-ndjson",
			strings.NewReader(fmt.Sprintf(`{"p":%d,"a":1,"b":1}`, i%6+1)+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest write %d: status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	after, _ := db.Table("T")
	if len(after.Rows) != n0+writes {
		t.Fatalf("table has %d rows, want %d", len(after.Rows), n0+writes)
	}
	if got := db.AppendCounters(); got.Appends != writes {
		t.Fatalf("append batches = %d, want %d", got.Appends, writes)
	}
	// The quiesced server serves cleanly again.
	if code, _ := get(t, srv.URL+"/"); code != http.StatusOK {
		t.Fatalf("GET / after churn: code=%d, want 200", code)
	}
}
