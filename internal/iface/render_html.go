package iface

import (
	"fmt"
	"html"
	"math"
	"strings"

	"pi2/internal/engine"
	"pi2/internal/vis"
)

// RenderHTML renders a static, self-contained HTML snapshot of the
// interface: charts drawn as SVG from the session's current results,
// widgets as form elements, all positioned by the optimized layout. The
// snapshot documents the generated design; live interactivity runs through
// the Go Session runtime (DESIGN.md §4).
func RenderHTML(s *Session) (string, error) {
	results, err := s.Results()
	if err != nil {
		return "", err
	}
	ifc := s.Ifc
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>PI2 interface</title>\n")
	b.WriteString(`<style>
body { font-family: sans-serif; }
.elem { position: absolute; }
.widget { border: 1px solid #ccc; border-radius: 4px; padding: 4px 6px; font-size: 12px; background: #fafafa; }
.widget .lbl { font-weight: bold; display: block; margin-bottom: 2px; }
.chart { border: 1px solid #ddd; }
table { border-collapse: collapse; font-size: 11px; }
td, th { border: 1px solid #ccc; padding: 1px 4px; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<div style=\"position:relative;width:%.0fpx;height:%.0fpx\">\n",
		ifc.TotalBox.W+20, ifc.TotalBox.H+20)
	for _, v := range ifc.Vis {
		box, ok := ifc.Boxes[v.ElemID]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "<div class=\"elem chart\" style=\"left:%.0fpx;top:%.0fpx;width:%.0fpx;height:%.0fpx\">\n",
			box.X, box.Y, box.W, box.H)
		renderChart(&b, &v, results[v.Tree], box.W, box.H)
		b.WriteString("</div>\n")
	}
	for _, w := range ifc.Widgets {
		box, ok := ifc.Boxes[w.ElemID]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "<div class=\"elem widget\" style=\"left:%.0fpx;top:%.0fpx;width:%.0fpx\">\n",
			box.X, box.Y, box.W)
		renderWidget(&b, &w)
		b.WriteString("</div>\n")
	}
	b.WriteString("</div></body></html>\n")
	return b.String(), nil
}

func renderWidget(b *strings.Builder, w *WidgetSpec) {
	esc := html.EscapeString
	fmt.Fprintf(b, "<span class=\"lbl\">%s</span>", esc(w.Label))
	switch w.Kind {
	case "radio", "button":
		for i, o := range w.Options {
			checked := ""
			if i == 0 {
				checked = " checked"
			}
			fmt.Fprintf(b, "<label><input type=\"radio\" name=\"%s\"%s>%s</label><br>", esc(w.ElemID), checked, esc(o))
		}
	case "dropdown":
		fmt.Fprintf(b, "<select>")
		for _, o := range w.Options {
			fmt.Fprintf(b, "<option>%s</option>", esc(o))
		}
		fmt.Fprintf(b, "</select>")
	case "checkbox":
		for _, o := range w.Options {
			fmt.Fprintf(b, "<label><input type=\"checkbox\">%s</label><br>", esc(o))
		}
	case "toggle":
		fmt.Fprintf(b, "<label><input type=\"checkbox\" checked> enabled</label>")
	case "slider":
		fmt.Fprintf(b, "<input type=\"range\" min=\"%g\" max=\"%g\">", w.Min, w.Max)
	case "rangeslider":
		fmt.Fprintf(b, "<input type=\"range\" min=\"%g\" max=\"%g\"><input type=\"range\" min=\"%g\" max=\"%g\">",
			w.Min, w.Max, w.Min, w.Max)
	case "textbox":
		fmt.Fprintf(b, "<input type=\"text\">")
	case "adder":
		fmt.Fprintf(b, "<button>+ add</button>")
	}
}

func renderChart(b *strings.Builder, v *VisSpec, res *engine.Table, w, h float64) {
	if v.Mapping.Vis.Type == vis.Table {
		renderTable(b, res)
		return
	}
	xi, yi := v.Mapping.Col("x"), v.Mapping.Col("y")
	if xi < 0 || yi < 0 || len(res.Rows) == 0 {
		fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\"></svg>", w, h)
		return
	}
	ci := v.Mapping.Col("color")
	const pad = 30.0
	xs := scaler(res, xi, pad, w-10)
	ys := scaler(res, yi, h-20, 10) // inverted
	palette := []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}
	colorOf := func(row []engine.Value) string {
		if ci < 0 {
			return palette[0]
		}
		return palette[hashIdx(row[ci].Text(), len(palette))]
	}
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\">", w, h)
	fmt.Fprintf(b, "<text x=\"4\" y=\"12\" font-size=\"10\">%s</text>", html.EscapeString(v.Title))
	switch v.Mapping.Vis.Type {
	case vis.Bar:
		bw := math.Max(2, (w-pad-10)/float64(len(res.Rows))-2)
		for _, row := range res.Rows {
			x := xs(row[xi])
			y := ys(row[yi])
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\"/>",
				x-bw/2, y, bw, (h-20)-y, colorOf(row))
		}
	case vis.Line:
		var pts []string
		for _, row := range res.Rows {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xs(row[xi]), ys(row[yi])))
		}
		fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>",
			strings.Join(pts, " "), palette[0])
	default: // point
		for _, row := range res.Rows {
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"/>",
				xs(row[xi]), ys(row[yi]), colorOf(row))
		}
	}
	b.WriteString("</svg>")
}

func renderTable(b *strings.Builder, res *engine.Table) {
	b.WriteString("<table><tr>")
	for _, c := range res.Cols {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(c))
	}
	b.WriteString("</tr>")
	for i, row := range res.Rows {
		if i >= 12 {
			fmt.Fprintf(b, "<tr><td colspan=\"%d\">… %d rows total</td></tr>", len(res.Cols), len(res.Rows))
			break
		}
		b.WriteString("<tr>")
		for _, v := range row {
			fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(v.Text()))
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
}

// scaler maps a column's values onto pixel range [lo, hi]; categorical
// values are spread by rank.
func scaler(res *engine.Table, col int, lo, hi float64) func(engine.Value) float64 {
	numeric := true
	for _, row := range res.Rows {
		if row[col].IsStr {
			numeric = false
			break
		}
	}
	if numeric {
		min, max := res.Rows[0][col].Num, res.Rows[0][col].Num
		for _, row := range res.Rows {
			v := row[col].Num
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		span := max - min
		if span == 0 {
			span = 1
		}
		return func(v engine.Value) float64 { return lo + (v.Num-min)/span*(hi-lo) }
	}
	rank := map[string]int{}
	for _, row := range res.Rows {
		t := row[col].Text()
		if _, ok := rank[t]; !ok {
			rank[t] = len(rank)
		}
	}
	n := float64(len(rank))
	if n <= 1 {
		n = 2
	}
	return func(v engine.Value) float64 { return lo + float64(rank[v.Text()])/(n-1)*(hi-lo) }
}

func hashIdx(s string, mod int) int {
	h := 0
	for _, c := range s {
		h = (h*31 + int(c)) % 1_000_003
	}
	return h % mod
}
