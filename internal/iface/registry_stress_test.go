package iface

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryStress hammers one registry from many goroutines across many
// session keys, with the capacity bound set low enough that LRU eviction
// churns continuously. It runs in CI under -race (the short suite shrinks
// the iteration counts, not the shape) and asserts three contracts:
//
//  1. No lost updates: with one goroutine per key, every interaction's
//     result matches the single-session reference for the value just set —
//     sessions never leak binding state into each other, and an evicted
//     session recreated mid-stream answers identically.
//  2. Exact eviction accounting: after quiescence, the aggregate cache
//     counters over live + retired sessions equal the interactions issued.
//  3. Race freedom across the registry fast path, eviction, the shared
//     plan cache's single flight, and concurrent same-session traffic.
func TestRegistryStress(t *testing.T) {
	goroutines, iters := 8, 120
	if testing.Short() {
		goroutines, iters = 4, 40
	}

	ifc, ctx := buildSliderInterface(t)
	pc := NewPlanCache()
	factory := func() (*Session, error) { return NewSessionWithPlans(ifc, ctx, testDB, pc) }
	// Capacity below the key count so eviction churns the whole run.
	reg := NewRegistry(factory, RegistryOptions{MaxSessions: goroutines/2 + 1, Plans: pc})

	// Reference answers from a plain standalone session, value -> rendered
	// result table.
	refSess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 2, 3}
	ref := map[float64]string{}
	for _, v := range values {
		if err := refSess.SetSlider("w0", v); err != nil {
			t.Fatal(err)
		}
		res, err := refSess.Results()
		if err != nil {
			t.Fatal(err)
		}
		ref[v] = res[0].String()
	}

	var interactions atomic.Uint64
	var wg sync.WaitGroup

	// Phase 1: one goroutine per key — per-key traffic is sequential, so
	// every Results must reflect the SetSlider just issued even when the
	// session is evicted and recreated between iterations.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("user-%d", g)
			for i := 0; i < iters; i++ {
				v := values[(g+i)%len(values)]
				sess, err := reg.Acquire(key)
				if err != nil {
					t.Errorf("acquire %s: %v", key, err)
					return
				}
				if err := sess.SetSlider("w0", v); err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				res, err := sess.Results()
				if err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				interactions.Add(1)
				if got := res[0].String(); got != ref[v] {
					t.Errorf("%s iter %d: result for %v diverged:\n%s\nwant\n%s", key, i, v, got, ref[v])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: all goroutines share two keys — concurrent traffic on the
	// same session serializes on its mutex; results must come back healthy
	// (they reflect whichever slider write landed last, so only errors and
	// races are checkable here).
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("shared-%d", g%2)
			for i := 0; i < iters; i++ {
				sess, err := reg.Acquire(key)
				if err != nil {
					t.Errorf("acquire %s: %v", key, err)
					return
				}
				if err := sess.SetSlider("w0", values[(g+i)%len(values)]); err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				if _, err := sess.Results(); err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				interactions.Add(1)
				if _, statErr := sess.CurrentSQL(0); statErr != nil {
					t.Errorf("%s: %v", key, statErr)
					return
				}
				_ = reg.Stats() // aggregate reads race-tested against everything above
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := reg.Stats()
	want := interactions.Load()
	if got := st.Cache.ResultHits + st.Cache.ResultMisses; got != want {
		t.Fatalf("aggregate result lookups = %d, want %d — eviction lost counter updates (%+v)", got, want, st)
	}
	if st.LiveSessions > goroutines/2+1 {
		t.Fatalf("live sessions = %d exceeds the cap %d", st.LiveSessions, goroutines/2+1)
	}
	if st.EvictedLRU == 0 {
		t.Fatal("stress run never evicted — capacity bound not exercised")
	}
	if st.Created != st.EvictedLRU+uint64(st.LiveSessions) {
		t.Fatalf("session accounting inconsistent: created %d != evicted %d + live %d",
			st.Created, st.EvictedLRU, st.LiveSessions)
	}
	// Three distinct slider values resolve to three distinct queries; the
	// shared single-flight cache must have compiled each exactly once no
	// matter how many sessions raced for it.
	if n := pc.Compiles(); n != uint64(len(values)) {
		t.Fatalf("shared plan compiles = %d, want %d", n, len(values))
	}

	// Evicted-then-recreated sessions answer identically after the storm.
	sess, err := reg.Acquire("user-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetSlider("w0", values[0]); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].String(); got != ref[values[0]] {
		t.Fatalf("post-stress session diverged:\n%s\nwant\n%s", got, ref[values[0]])
	}
}
