package iface

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Session) {
	t.Helper()
	ifc, ctx := buildSliderInterface(t)
	sess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sess).Handler())
	t.Cleanup(srv.Close)
	return srv, sess
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func postForm(t *testing.T, u string, form url.Values) int {
	t.Helper()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(u, form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestServerIndexRendersInterface(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"<svg", "Manipulations", "slider"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestServerWidgetManipulationRewritesSQL(t *testing.T) {
	srv, sess := newTestServer(t)
	code := postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}, "value": {"3"}})
	if code != http.StatusSeeOther {
		t.Fatalf("status = %d", code)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 3") {
		t.Fatalf("sql = %s", sql)
	}
	_, body := get(t, srv.URL+"/sql")
	if !strings.Contains(body, "a = 3") {
		t.Fatalf("/sql = %s", body)
	}
}

func TestServerRejectsBadManipulation(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := postForm(t, srv.URL+"/widget", url.Values{"id": {"nope"}, "value": {"3"}}); code != http.StatusBadRequest {
		t.Fatalf("unknown widget status = %d", code)
	}
	if code := postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}}); code != http.StatusBadRequest {
		t.Fatalf("missing parameter status = %d", code)
	}
	if code := postForm(t, srv.URL+"/interact", url.Values{"vis": {"vis0"}, "kind": {"brush-x"}}); code != http.StatusBadRequest {
		t.Fatalf("missing interaction parameter status = %d", code)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
}

func TestServerReset(t *testing.T) {
	srv, sess := newTestServer(t)
	postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}, "value": {"4"}})
	if code := postForm(t, srv.URL+"/reset", nil); code != http.StatusSeeOther {
		t.Fatalf("reset status = %d", code)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 1") {
		t.Fatalf("after reset sql = %s", sql)
	}
}
