package iface

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Session) {
	t.Helper()
	ifc, ctx := buildSliderInterface(t)
	sess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sess).Handler())
	t.Cleanup(srv.Close)
	return srv, sess
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func postForm(t *testing.T, u string, form url.Values) int {
	t.Helper()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(u, form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestServerIndexRendersInterface(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"<svg", "Manipulations", "slider"} {
		if !strings.Contains(body, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestServerWidgetManipulationRewritesSQL(t *testing.T) {
	srv, sess := newTestServer(t)
	code := postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}, "value": {"3"}})
	if code != http.StatusSeeOther {
		t.Fatalf("status = %d", code)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 3") {
		t.Fatalf("sql = %s", sql)
	}
	_, body := get(t, srv.URL+"/sql")
	if !strings.Contains(body, "a = 3") {
		t.Fatalf("/sql = %s", body)
	}
}

func TestServerRejectsBadManipulation(t *testing.T) {
	srv, _ := newTestServer(t)
	if code := postForm(t, srv.URL+"/widget", url.Values{"id": {"nope"}, "value": {"3"}}); code != http.StatusBadRequest {
		t.Fatalf("unknown widget status = %d", code)
	}
	if code := postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}}); code != http.StatusBadRequest {
		t.Fatalf("missing parameter status = %d", code)
	}
	if code := postForm(t, srv.URL+"/interact", url.Values{"vis": {"vis0"}, "kind": {"brush-x"}}); code != http.StatusBadRequest {
		t.Fatalf("missing interaction parameter status = %d", code)
	}
}

func TestServerHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
}

// newRegistryTestServer serves the slider interface multi-tenant, with a
// shared plan cache, like pi2serve does.
func newRegistryTestServer(t *testing.T, opts RegistryOptions) (*httptest.Server, *Registry) {
	t.Helper()
	ifc, ctx := buildSliderInterface(t)
	pc := NewPlanCache()
	if opts.Plans == nil {
		opts.Plans = pc
	}
	reg := NewRegistry(func() (*Session, error) {
		return NewSessionWithPlans(ifc, ctx, testDB, opts.Plans)
	}, opts)
	srv := httptest.NewServer(NewRegistryServer(reg).Handler())
	t.Cleanup(srv.Close)
	return srv, reg
}

// Two explicitly keyed sessions must hold independent widget state end to
// end over HTTP.
func TestServerMultiSessionIndependentState(t *testing.T) {
	srv, reg := newRegistryTestServer(t, RegistryOptions{})
	if code := postForm(t, srv.URL+"/widget", url.Values{"session": {"alice"}, "id": {"w0"}, "value": {"3"}}); code != http.StatusSeeOther {
		t.Fatalf("alice widget status = %d", code)
	}
	if code := postForm(t, srv.URL+"/widget", url.Values{"session": {"bob"}, "id": {"w0"}, "value": {"4"}}); code != http.StatusSeeOther {
		t.Fatalf("bob widget status = %d", code)
	}
	_, aliceSQL := get(t, srv.URL+"/sql?session=alice")
	_, bobSQL := get(t, srv.URL+"/sql?session=bob")
	if !strings.Contains(aliceSQL, "a = 3") {
		t.Fatalf("alice /sql = %s", aliceSQL)
	}
	if !strings.Contains(bobSQL, "a = 4") {
		t.Fatalf("bob /sql = %s", bobSQL)
	}
	if st := reg.Stats(); st.LiveSessions != 2 || st.Created != 2 {
		t.Fatalf("registry stats = %+v, want 2 live sessions", st)
	}
}

// A manipulation POSTed with an explicit key must redirect back to that
// session so cookie-less clients stay on it.
func TestServerExplicitKeyRedirectKeepsSession(t *testing.T) {
	srv, _ := newRegistryTestServer(t, RegistryOptions{})
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(srv.URL+"/widget", url.Values{"session": {"alice"}, "id": {"w0"}, "value": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "/?session=alice" {
		t.Fatalf("redirect location = %q, want /?session=alice", loc)
	}
}

// A request without a key gets a fresh session via Set-Cookie, and the
// cookie routes subsequent requests back to it.
func TestServerCookieAssignsSession(t *testing.T) {
	srv, reg := newRegistryTestServer(t, RegistryOptions{})
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	resp, err := client.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	u, _ := url.Parse(srv.URL)
	var key string
	for _, c := range jar.Cookies(u) {
		if c.Name == "pi2session" {
			key = c.Value
		}
	}
	if key == "" {
		t.Fatal("no pi2session cookie assigned")
	}
	// The cookie-bound manipulation must land on the cookie's session.
	resp, err = client.PostForm(srv.URL+"/widget", url.Values{"id": {"w0"}, "value": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := get(t, srv.URL+"/sql?session="+key)
	if !strings.Contains(body, "a = 3") {
		t.Fatalf("cookie session /sql = %s", body)
	}
	if st := reg.Stats(); st.Created != 1 {
		t.Fatalf("created = %d, want 1 (cookie reuses the assigned session)", st.Created)
	}
}

// Malformed session keys are the client's fault: 400, not 500.
func TestServerRejectsBadSessionKey(t *testing.T) {
	srv, _ := newRegistryTestServer(t, RegistryOptions{})
	for _, bad := range []string{"has space", "semi;colon", "sl/ash", strings.Repeat("x", 65)} {
		code := postForm(t, srv.URL+"/widget", url.Values{"session": {bad}, "id": {"w0"}, "value": {"3"}})
		if code != http.StatusBadRequest {
			t.Errorf("session %q status = %d, want 400", bad, code)
		}
	}
}

// A closed (draining) registry answers 503, not 500.
func TestServerClosedRegistryUnavailable(t *testing.T) {
	srv, reg := newRegistryTestServer(t, RegistryOptions{})
	reg.Close()
	code, _ := get(t, srv.URL+"/?session=alice")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status after Close = %d, want 503", code)
	}
}

// The read-only /sql never creates a session: an unknown key is a 404 and
// the registry stays untouched, so scrapes cannot churn eviction.
func TestServerSQLDoesNotCreateSessions(t *testing.T) {
	srv, reg := newRegistryTestServer(t, RegistryOptions{})
	if code, _ := get(t, srv.URL+"/sql?session=ghost"); code != http.StatusNotFound {
		t.Fatalf("/sql for unknown session = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/sql"); code != http.StatusNotFound {
		t.Fatalf("/sql with no key = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/sql?session=bad%20key"); code != http.StatusBadRequest {
		t.Fatalf("/sql with malformed key = %d, want 400", code)
	}
	if st := reg.Stats(); st.Created != 0 || st.LiveSessions != 0 {
		t.Fatalf("read-only traffic created sessions: %+v", st)
	}
}

// Malformed manipulations are rejected before the registry is touched:
// garbage POSTs with fresh keys must not create sessions (or evict live
// users' to make room).
func TestServerBadManipulationDoesNotCreateSession(t *testing.T) {
	srv, reg := newRegistryTestServer(t, RegistryOptions{})
	// no manipulation parameter at all
	if code := postForm(t, srv.URL+"/widget", url.Values{"session": {"fresh1"}, "id": {"w0"}}); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	// malformed manipulation values
	if code := postForm(t, srv.URL+"/widget", url.Values{"session": {"fresh2"}, "id": {"w0"}, "option": {"frog"}}); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if code := postForm(t, srv.URL+"/interact", url.Values{"session": {"fresh3"}, "vis": {"vis0"}, "kind": {"click"}, "row": {"NaNrow"}}); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if st := reg.Stats(); st.Created != 0 {
		t.Fatalf("malformed manipulations created %d sessions", st.Created)
	}
	// A well-formed manipulation on an unknown widget still resolves the
	// session first (it must: widget existence is interface state).
	if code := postForm(t, srv.URL+"/widget", url.Values{"session": {"fresh4"}, "id": {"zombie"}, "value": {"3"}}); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if st := reg.Stats(); st.Created != 1 {
		t.Fatalf("created = %d, want 1", st.Created)
	}
}

// The assigned session cookie must carry HttpOnly and SameSite=Lax: the
// key is the session's sole credential.
func TestServerCookieHardened(t *testing.T) {
	srv, _ := newRegistryTestServer(t, RegistryOptions{})
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var found bool
	for _, c := range resp.Cookies() {
		if c.Name != sessionCookie {
			continue
		}
		found = true
		if !c.HttpOnly {
			t.Error("session cookie missing HttpOnly")
		}
		if c.SameSite != http.SameSiteLaxMode {
			t.Errorf("session cookie SameSite = %v, want Lax", c.SameSite)
		}
	}
	if !found {
		t.Fatal("no session cookie assigned")
	}
}

// /stats in registry mode reports the multi-session aggregate.
func TestServerStatsAggregates(t *testing.T) {
	srv, _ := newRegistryTestServer(t, RegistryOptions{})
	postForm(t, srv.URL+"/widget", url.Values{"session": {"alice"}, "id": {"w0"}, "value": {"3"}})
	get(t, srv.URL+"/?session=alice") // render: executes and caches results
	get(t, srv.URL+"/?session=bob")
	code, body := get(t, srv.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	var st RegistryStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/stats not RegistryStats JSON: %v\n%s", err, body)
	}
	if st.LiveSessions != 2 || st.Created != 2 {
		t.Fatalf("stats = %+v, want 2 live sessions", st)
	}
	if st.Cache.ResultMisses == 0 {
		t.Fatalf("aggregate cache counters empty: %+v", st)
	}
	if st.PlanCompiles == 0 || st.SharedPlans == 0 {
		t.Fatalf("shared plan cache not reported: %+v", st)
	}
}

func TestServerReset(t *testing.T) {
	srv, sess := newTestServer(t)
	postForm(t, srv.URL+"/widget", url.Values{"id": {"w0"}, "value": {"4"}})
	if code := postForm(t, srv.URL+"/reset", nil); code != http.StatusSeeOther {
		t.Fatalf("reset status = %d", code)
	}
	sql, _ := sess.CurrentSQL(0)
	if !strings.Contains(sql, "a = 1") {
		t.Fatalf("after reset sql = %s", sql)
	}
}
