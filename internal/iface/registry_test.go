package iface

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable registry clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func sliderFactory(t testing.TB, pc *PlanCache) func() (*Session, error) {
	ifc, ctx := buildSliderInterface(t)
	return func() (*Session, error) { return NewSessionWithPlans(ifc, ctx, testDB, pc) }
}

func TestRegistryAcquireReusesLiveSession(t *testing.T) {
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{})
	a1, err := reg.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := reg.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("same key returned different sessions")
	}
	b, err := reg.Acquire("bob")
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Fatal("distinct keys share a session")
	}
	st := reg.Stats()
	if st.Created != 2 || st.Hits != 1 || st.LiveSessions != 2 {
		t.Fatalf("stats = %+v, want 2 created / 1 hit / 2 live", st)
	}
}

// Two sessions must hold independent binding state: a manipulation in one
// must not leak into the other.
func TestRegistrySessionsIndependent(t *testing.T) {
	reg := NewRegistry(sliderFactory(t, NewPlanCache()), RegistryOptions{})
	a, _ := reg.Acquire("alice")
	b, _ := reg.Acquire("bob")
	if err := a.SetSlider("w0", 3); err != nil {
		t.Fatal(err)
	}
	aSQL, _ := a.CurrentSQL(0)
	bSQL, _ := b.CurrentSQL(0)
	if !strings.Contains(aSQL, "a = 3") {
		t.Fatalf("alice sql = %s", aSQL)
	}
	if !strings.Contains(bSQL, "a = 1") {
		t.Fatalf("bob sql leaked alice's manipulation: %s", bSQL)
	}
}

func TestRegistryMaxSessionsEvictsLRU(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{MaxSessions: 2, Now: clock.now})
	reg.Acquire("a")
	clock.advance(time.Second)
	reg.Acquire("b")
	clock.advance(time.Second)
	reg.Acquire("a") // refresh a: b is now least recently used
	clock.advance(time.Second)
	reg.Acquire("c") // at cap: must evict b, not a
	if reg.Len() != 2 {
		t.Fatalf("live = %d, want 2", reg.Len())
	}
	st := reg.Stats()
	if st.EvictedLRU != 1 {
		t.Fatalf("evicted = %d, want 1", st.EvictedLRU)
	}
	// "a" must still be live: acquiring it is a hit, not a creation.
	before := reg.Stats().Created
	reg.Acquire("a")
	if after := reg.Stats().Created; after != before {
		t.Fatal("recently used session was evicted instead of the LRU one")
	}
	// "b" was evicted: acquiring it recreates.
	reg.Acquire("b")
	if got := reg.Stats(); got.Created != before+1 || got.EvictedLRU != 2 {
		t.Fatalf("after reacquiring b: %+v", got)
	}
}

func TestRegistryTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{TTL: time.Minute, Now: clock.now})
	reg.Acquire("a")
	reg.Acquire("b")
	clock.advance(30 * time.Second)
	reg.Acquire("a") // keep a warm
	clock.advance(45 * time.Second)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("sweep retired %d sessions, want 1 (only b is past the TTL)", n)
	}
	if st := reg.Stats(); st.ExpiredTTL != 1 || st.LiveSessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// An expired session is also replaced on direct Acquire, not resumed.
	clock.advance(2 * time.Minute)
	before := reg.Stats().Created
	reg.Acquire("a")
	if st := reg.Stats(); st.Created != before+1 || st.ExpiredTTL != 2 {
		t.Fatalf("expired session resumed instead of recreated: %+v", st)
	}
}

// An evicted key, when reacquired, must answer exactly like the original
// fresh session did — eviction loses cached work, never correctness.
func TestRegistryEvictedSessionRecreatedIdentically(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(sliderFactory(t, NewPlanCache()), RegistryOptions{MaxSessions: 1, Now: clock.now})
	a1, _ := reg.Acquire("a")
	if err := a1.SetSlider("w0", 2); err != nil {
		t.Fatal(err)
	}
	ref, err := a1.Results()
	if err != nil {
		t.Fatal(err)
	}
	refSQL, _ := a1.CurrentSQL(0)
	clock.advance(time.Second)
	reg.Acquire("other") // cap 1: evicts a
	clock.advance(time.Second)
	a2, _ := reg.Acquire("a")
	if a2 == a1 {
		t.Fatal("session was not evicted")
	}
	// Recreated sessions restart at the interface's initial state...
	if sql, _ := a2.CurrentSQL(0); !strings.Contains(sql, "a = 1") {
		t.Fatalf("recreated session sql = %s, want initial state", sql)
	}
	// ...and answer the same manipulation identically.
	if err := a2.SetSlider("w0", 2); err != nil {
		t.Fatal(err)
	}
	got, err := a2.Results()
	if err != nil {
		t.Fatal(err)
	}
	if sql, _ := a2.CurrentSQL(0); sql != refSQL {
		t.Fatalf("recreated sql = %s, want %s", sql, refSQL)
	}
	if len(got) != len(ref) || got[0].String() != ref[0].String() {
		t.Fatalf("recreated session answers differently:\n%s\nvs\n%s", got[0], ref[0])
	}
}

// Eviction must not lose cache-traffic accounting: the aggregate over live
// + retired sessions equals the total interactions ever served.
func TestRegistryEvictionAccounting(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{MaxSessions: 2, Now: clock.now})
	total := 0
	for i, key := range []string{"a", "b", "c", "d", "a"} {
		sess, err := reg.Acquire(key)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			if err := sess.SetSlider("w0", float64(j)); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Results(); err != nil {
				t.Fatal(err)
			}
			total++
		}
		clock.advance(time.Second)
	}
	st := reg.Stats()
	if got := st.Cache.ResultHits + st.Cache.ResultMisses; got != uint64(total) {
		t.Fatalf("aggregate result lookups = %d, want %d (evictions lost counters: %+v)", got, total, st)
	}
	if st.EvictedLRU != 3 {
		t.Fatalf("evictions = %d, want 3", st.EvictedLRU)
	}
}

// Retired counter blocks must not accumulate forever: once past the grace
// period they are folded into the base aggregate (keeping totals exact)
// and dropped, so a long-running server under eviction churn stays flat.
func TestRegistryRetiredStatsCompacted(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{MaxSessions: 1, Now: clock.now})
	const churn = 20
	for i := 0; i < churn; i++ {
		sess, err := reg.Acquire(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second)
	}
	reg.mu.RLock()
	live := len(reg.retired)
	reg.mu.RUnlock()
	if live != churn-1 {
		t.Fatalf("retired blocks = %d, want %d (all within grace)", live, churn-1)
	}
	before := reg.Stats()
	clock.advance(retiredGrace + time.Second)
	reg.Sweep() // compaction rides on sweep/retire
	reg.mu.RLock()
	live = len(reg.retired)
	reg.mu.RUnlock()
	if live != 0 {
		t.Fatalf("retired blocks after grace = %d, want 0 (folded into base)", live)
	}
	if after := reg.Stats(); after.Cache != before.Cache {
		t.Fatalf("compaction changed the aggregate: %+v -> %+v", before.Cache, after.Cache)
	}
}

func TestRegistryCloseDrains(t *testing.T) {
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{})
	sess, _ := reg.Acquire("a")
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, err := reg.Acquire("b"); err != ErrRegistryClosed {
		t.Fatalf("Acquire after Close = %v, want ErrRegistryClosed", err)
	}
	if _, err := reg.Acquire("a"); err != ErrRegistryClosed {
		t.Fatalf("Acquire of a drained session = %v, want ErrRegistryClosed", err)
	}
	// The drained sessions' counters survive in the aggregate.
	if st := reg.Stats(); st.LiveSessions != 0 || st.Cache.ResultMisses == 0 {
		t.Fatalf("post-close stats = %+v", st)
	}
	reg.Close() // idempotent
}

// The /stats fix: aggregation must not take session locks, so a session
// stuck mid-interaction (here: its mutex held outright) cannot stall the
// registry aggregate.
func TestRegistryStatsDoesNotTakeSessionLocks(t *testing.T) {
	reg := NewRegistry(sliderFactory(t, nil), RegistryOptions{})
	sess, _ := reg.Acquire("stuck")
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	sess.mu.Lock() // simulate a long-running interaction
	defer sess.mu.Unlock()
	done := make(chan RegistryStats, 1)
	go func() { done <- reg.Stats() }()
	select {
	case st := <-done:
		if st.Cache.ResultMisses == 0 {
			t.Fatalf("aggregate missing the stuck session's counters: %+v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Stats blocked on a busy session's lock")
	}
	// The lock-free path must also hold for the session's own snapshot.
	if st := sess.Stats(); st.ResultMisses == 0 {
		t.Fatalf("session snapshot = %+v", st)
	}
}

// The shared plan cache compiles each distinct resolved query once across
// sessions, and sessions with private caches each compile their own.
func TestSharedPlanCacheCompilesOnceAcrossSessions(t *testing.T) {
	pc := NewPlanCache()
	reg := NewRegistry(sliderFactory(t, pc), RegistryOptions{Plans: pc})
	for _, key := range []string{"a", "b", "c"} {
		sess, _ := reg.Acquire(key)
		if err := sess.SetSlider("w0", 2); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
	}
	if n := pc.Compiles(); n != 1 {
		t.Fatalf("compiles = %d, want 1 (one distinct resolved query)", n)
	}
	st := reg.Stats()
	if st.Cache.PlanMisses != 1 || st.Cache.PlanHits != 2 {
		t.Fatalf("plan stats = %+v, want 1 miss + 2 shared hits", st.Cache)
	}
	if st.SharedPlans != 1 || st.PlanCompiles != 1 {
		t.Fatalf("registry plan stats = %+v", st)
	}
	// Different resolved query -> new compilation.
	sess, _ := reg.Acquire("a")
	if err := sess.SetSlider("w0", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	if n := pc.Compiles(); n != 2 {
		t.Fatalf("compiles = %d, want 2", n)
	}
}
