package iface

import (
	"reflect"
	"sync"
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/engine"
)

// A repeated identical interaction must be answered from the result cache:
// no parse, no plan, no execution.
func TestSecondIdenticalInteractionHitsCache(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, err := NewSession(ifc, ctx, testDB)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetSlider("w0", 3); err != nil {
		t.Fatal(err)
	}
	first, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.ResultMisses == 0 || st.ResultHits != 0 {
		t.Fatalf("cold stats = %+v, want misses only", st)
	}
	// the same widget event again: identical binding state
	if err := sess.SetSlider("w0", 3); err != nil {
		t.Fatal(err)
	}
	second, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	st2 := sess.Stats()
	if st2.ResultHits == 0 {
		t.Fatalf("stats after repeat = %+v, want a result hit", st2)
	}
	if st2.ResultMisses != st.ResultMisses {
		t.Fatalf("repeat interaction re-executed: %+v -> %+v", st, st2)
	}
	if !reflect.DeepEqual(first[0].Rows, second[0].Rows) {
		t.Fatal("cached result differs from computed result")
	}
}

// Sliding away and back must hit for both states once each was computed —
// the slider back-and-forth pattern the cache exists for.
func TestSliderBackAndForthHitsCache(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	for _, v := range []float64{1, 2, 1, 2, 1, 2} {
		if err := sess.SetSlider("w0", v); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.ResultMisses != 2 {
		t.Fatalf("misses = %d, want 2 (one per distinct state)", st.ResultMisses)
	}
	if st.ResultHits != 4 {
		t.Fatalf("hits = %d, want 4", st.ResultHits)
	}
}

// Each distinct resolved query compiles exactly one plan.
func TestPlanCachePerDistinctQuery(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	for _, v := range []float64{1, 2, 3} {
		if err := sess.SetSlider("w0", v); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	// three distinct literals -> three distinct queries -> three plans
	if st.PlanMisses != 3 || st.PlanHits != 0 {
		t.Fatalf("plan stats = %+v", st)
	}
}

// When a binding state's memoized result is gone (evicted) but its resolved
// query's plan survives, the plan is reused: only execution runs.
func TestPlanCacheHitAfterResultEviction(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	if err := sess.SetSlider("w0", 3); err != nil {
		t.Fatal(err)
	}
	first, err := sess.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	// evict the result layer only, as cap pressure would
	sess.mu.Lock()
	sess.results[0] = newLRU[uint64, cachedResult](maxCachedResultsPerTree)
	sess.mu.Unlock()
	second, err := sess.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("plan stats = %+v, want one miss then one hit", st)
	}
	if st.ResultMisses != 2 {
		t.Fatalf("result stats = %+v, want two misses", st)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatal("plan-hit execution disagrees with original")
	}
}

// Mutating the database must invalidate both cache layers: the next
// interaction recomputes against fresh data.
func TestCacheInvalidatesOnDBMutation(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	db := dataset.NewDB()
	sess, err := NewSession(ifc, ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) == 0 {
		t.Fatal("no rows before mutation")
	}
	// replace T with an empty table of the same shape
	db.Add(&engine.Table{Name: "T", Cols: []string{"p", "a", "b"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum}})
	after, err := sess.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 0 {
		t.Fatalf("stale rows served after mutation: %v", after.Rows)
	}
	if st := sess.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

// ResetCache forces the next interaction down the full cold path.
func TestResetCacheForcesRecomputation(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	misses := sess.Stats().ResultMisses
	sess.ResetCache()
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.ResultMisses != misses+1 {
		t.Fatalf("stats after reset = %+v, want a fresh miss", st)
	}
}

// The result cache must stay bounded under an unbounded stream of distinct
// binding states (every drag step of a slider is a new state).
func TestResultCacheBounded(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	for i := 0; i < maxCachedResultsPerTree*3; i++ {
		if err := sess.SetSlider("w0", float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
	}
	sess.mu.Lock()
	nResults := sess.results[0].len()
	nPlans := sess.plans.len()
	sess.mu.Unlock()
	if nResults > maxCachedResultsPerTree {
		t.Fatalf("result cache grew to %d entries (cap %d)", nResults, maxCachedResultsPerTree)
	}
	if nPlans > maxCachedPlans {
		t.Fatalf("plan cache grew to %d entries (cap %d)", nPlans, maxCachedPlans)
	}
}

// Concurrent interactions and reads must be race-free under the session
// mutex (run with -race to check).
func TestSessionConcurrentAccess(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := sess.SetSlider("w0", float64(1+(g+i)%3)); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Results(); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.CurrentSQL(0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := sess.Stats()
	if st.ResultHits+st.ResultMisses != 4*25 {
		t.Fatalf("stats = %+v, want 100 result lookups", st)
	}
}

// LRU unit behavior: lookups refresh recency, the least recently used entry
// is the one evicted, and replacing a key does not grow the cache.
func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU[uint64, int](3)
	c.put(1, 10)
	c.put(2, 20)
	c.put(3, 30)
	if _, ok := c.get(1); !ok { // refresh 1: order now 1,3,2
		t.Fatal("entry 1 missing")
	}
	c.put(4, 40) // evicts 2
	if _, ok := c.get(2); ok {
		t.Fatal("least recently used entry 2 survived")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %d evicted, want resident", k)
		}
	}
	c.put(4, 44) // replace in place
	if c.len() != 3 {
		t.Fatalf("len = %d after replace, want 3", c.len())
	}
	if v, _ := c.get(4); v != 44 {
		t.Fatalf("replaced value = %d, want 44", v)
	}
}

// The session's hottest binding state must survive cap pressure: under the
// old arbitrary-entry eviction a full cache could drop the state the user
// keeps returning to; under LRU it cannot.
func TestHotEntrySurvivesEviction(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)
	sess, _ := NewSession(ifc, ctx, testDB)
	if err := sess.SetSlider("w0", -1); err != nil { // the hot state
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxCachedResultsPerTree*2; i++ {
		// a cold stream of distinct states, re-touching the hot state each
		// time so it stays the most recently used
		if err := sess.SetSlider("w0", float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
		if err := sess.SetSlider("w0", -1); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Results(); err != nil {
			t.Fatal(err)
		}
	}
	before := sess.Stats()
	if err := sess.SetSlider("w0", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatal(err)
	}
	after := sess.Stats()
	if after.ResultHits != before.ResultHits+1 || after.ResultMisses != before.ResultMisses {
		t.Fatalf("hot state evicted under pressure: %+v -> %+v", before, after)
	}
}
