package iface

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// fuzzHandler serves the slider interface through a small registry (cap 4,
// so fuzz inputs with distinct session keys also churn eviction) exactly as
// the registry server wires it. Built once per fuzz process.
var (
	fuzzOnce    sync.Once
	fuzzHandle  http.Handler
	fuzzHandler = func(tb testing.TB) http.Handler {
		fuzzOnce.Do(func() {
			ifc, ctx := buildSliderInterface(tb)
			pc := NewPlanCache()
			reg := NewRegistry(func() (*Session, error) {
				return NewSessionWithPlans(ifc, ctx, testDB, pc)
			}, RegistryOptions{MaxSessions: 4, Plans: pc})
			fuzzHandle = NewRegistryServer(reg).Handler()
		})
		return fuzzHandle
	}
)

// FuzzInteractionRequest fuzzes the HTTP form/binding decoding path of the
// multi-session server: whatever arrives — bad session keys, stale element
// ids, malformed numbers, broken percent-encoding, hostile cookie values —
// the server must neither panic nor blame itself (5xx). Client mistakes are
// 4xx; redirects and successes are fine.
func FuzzInteractionRequest(f *testing.F) {
	// Valid traffic, so mutations start near the accepted grammar.
	f.Add("/widget", "session=k1&id=w0&value=3", "", "")
	f.Add("/widget", "session=k1&id=w0&lo=1&hi=5", "", "")
	f.Add("/widget", "id=w0&option=0", "", "pi2session=cookie-user")
	f.Add("/widget", "", "session=k1&id=w0&text=2", "")
	f.Add("/interact", "session=k2&vis=vis0&kind=brush-x&bounds=10,50", "", "")
	f.Add("/interact", "vis=vis0&kind=click&row=0", "", "")
	f.Add("/interact", "vis=vis0&kind=brush-x&clear=1", "", "")
	f.Add("/reset", "session=k1", "", "")
	f.Add("/sql", "session=k1", "", "")
	f.Add("/stats", "", "", "")
	// Known-bad traffic: each must be a 4xx, never a 5xx or panic.
	f.Add("/widget", "session=bad key&id=w0&value=3", "", "")          // invalid key
	f.Add("/widget", "session="+strings.Repeat("x", 99), "", "")       // oversized key
	f.Add("/widget", "session=k1&id=zombie&value=3", "", "")           // stale element id
	f.Add("/widget", "session=k1&id=w0&value=NaNana", "", "")          // malformed value
	f.Add("/widget", "session=k1&id=w0&checked=1,frog", "", "")        // malformed list
	f.Add("/widget", "session=k1&id=w0&option=99", "", "")             // out of range
	f.Add("/interact", "session=k1&vis=nope&kind=click&row=0", "", "") // unknown vis
	f.Add("/interact", "session=k1&vis=vis0&kind=click&row=9999", "", "")
	f.Add("/interact", "session=k1&vis=vis0&kind=warp&bounds=1", "", "")
	f.Add("/widget", "%zz=broken&id=w0", "", "")                    // invalid percent-encoding
	f.Add("/widget", "id=w0&value=3", "", "pi2session=bad key")     // hostile cookie value
	f.Add("/widget", "id=w0&value=3", "", "pi2session=\x00\x7f;;=") // unparsable cookie

	f.Fuzz(func(t *testing.T, path, rawQuery, body, cookie string) {
		h := fuzzHandler(t)
		// Build the request by hand: httptest.NewRequest panics on
		// unparsable targets, and raw fuzz bytes must reach ParseForm, not
		// the test harness.
		req := &http.Request{
			Method: http.MethodPost,
			URL:    &url.URL{Path: "/" + strings.TrimPrefix(path, "/"), RawQuery: rawQuery},
			Header: http.Header{"Content-Type": {"application/x-www-form-urlencoded"}},
			Body:   io.NopCloser(strings.NewReader(body)),
			Host:   "fuzz.local",
		}
		if cookie != "" {
			req.Header.Set("Cookie", cookie)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		if rec.Code >= 500 {
			t.Fatalf("POST %s?%s (body %q) = %d:\n%s", path, rawQuery, body, rec.Code, rec.Body.String())
		}
	})
}
