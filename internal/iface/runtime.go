package iface

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/obs"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

// CacheStats counts interaction-cache traffic. A result hit means a widget
// event was answered entirely from memoized state — no parse, plan, or
// execution; a plan hit means only execution ran (with a shared PlanCache
// it also means the compiled plan may have come from another session).
type CacheStats struct {
	ResultHits    uint64
	ResultMisses  uint64
	PlanHits      uint64
	PlanMisses    uint64
	Invalidations uint64 // cached results discarded because a table they read mutated
}

// Add accumulates o into c — how the registry folds per-session counters
// into one multi-session aggregate.
func (c *CacheStats) Add(o CacheStats) {
	c.ResultHits += o.ResultHits
	c.ResultMisses += o.ResultMisses
	c.PlanHits += o.PlanHits
	c.PlanMisses += o.PlanMisses
	c.Invalidations += o.Invalidations
}

// sessionStats is CacheStats with each counter updated atomically, so a
// snapshot never needs the session mutex. The registry's /stats aggregation
// reads every live session's counters without blocking on (or serializing)
// in-flight interactions — the alternative, taking every session lock at
// once, would stall the whole fleet behind the slowest request.
type sessionStats struct {
	resultHits    atomic.Uint64
	resultMisses  atomic.Uint64
	planHits      atomic.Uint64
	planMisses    atomic.Uint64
	invalidations atomic.Uint64
}

func (c *sessionStats) snapshot() CacheStats {
	return CacheStats{
		ResultHits:    c.resultHits.Load(),
		ResultMisses:  c.resultMisses.Load(),
		PlanHits:      c.planHits.Load(),
		PlanMisses:    c.planMisses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// cachedResult memoizes one tree's result table for a binding state. The
// canonical key string guards against 64-bit hash collisions. gen and deps
// make the entry self-validating: it is served only while every table the
// producing plan read is still at the generation it was read at (with the
// global generation as a lock-free fast path), so a write invalidates only
// the results that actually touched the written table.
type cachedResult struct {
	key  string
	tbl  *engine.Table
	gen  uint64            // global DB generation when execution started
	deps []engine.TableDep // tables the result read, with their generations
}

// cachedPlan memoizes a compiled plan for a resolved query. The AST guards
// against hash collisions; the Stale() check at the use site validates the
// plan against the generations of the tables it reads.
type cachedPlan struct {
	ast  *dt.Node
	plan *engine.Plan
}

// Session is the interaction runtime: the in-process stand-in for the
// browser (DESIGN.md §4). It holds the current binding of every Difftree;
// manipulating a widget or visualization interaction routes an event tuple
// to the covered choice nodes (paper §4.2.1), after which the bound queries
// re-resolve and re-execute.
//
// The session caches aggressively on the serving hot path: plans are keyed
// by the hash of the resolved query (so distinct binding states that
// resolve to the same SQL share one compiled plan) and result tables are
// memoized per tree per binding state (so repeated widget events — a slider
// dragged back and forth, a filter toggled — skip parse, plan, and
// execution entirely). Both layers validate per entry against the
// generations of the tables each entry actually read (engine.TableDep), so
// a live write invalidates only the plans and results over the written
// table; everything else stays warm. All exported methods lock a
// per-session mutex, so one Session can serve concurrent HTTP requests.
//
// Under a Registry, many sessions run side by side: each keeps its own
// bindings, result caches, and mutex, while the plan layer is swapped for a
// shared read-only PlanCache (NewSessionWithPlans) so the fleet compiles
// each distinct resolved query once.
type Session struct {
	Ifc *Interface
	Ctx *transform.Context
	DB  *engine.DB

	mu       sync.Mutex
	bindings []dt.Binding // per tree

	shared  *PlanCache                        // cross-session plan cache; nil -> private plans
	plans   *lruCache[uint64, cachedPlan]     // private: resolved-AST hash -> compiled plan
	results []*lruCache[uint64, cachedResult] // per tree: binding hash -> result

	// stats lives behind a pointer so the registry can keep just the
	// counters of an evicted session (a few dozen bytes) while the session
	// itself — bindings, caches, memoized tables — is garbage collected.
	stats *sessionStats

	// execHook, when set, runs between plan resolution and execution on
	// every attempt of the cached-execution and explain paths. Test-only: it
	// lets the mutated-mid-request window be exercised deterministically.
	execHook func()
}

// NewSession initializes the runtime with each tree bound to its first
// input query (the interface's initial state).
func NewSession(ifc *Interface, ctx *transform.Context, db *engine.DB) (*Session, error) {
	return NewSessionWithPlans(ifc, ctx, db, nil)
}

// NewSessionWithPlans is NewSession with a shared read-only plan cache:
// compiled plans are looked up in (and published to) plans instead of the
// session-private plan LRU, so a fleet of sessions over one interface
// compiles each distinct resolved query once. Result tables remain
// session-private (they are keyed by this session's binding states). A nil
// plans is equivalent to NewSession.
func NewSessionWithPlans(ifc *Interface, ctx *transform.Context, db *engine.DB, plans *PlanCache) (*Session, error) {
	s := &Session{Ifc: ifc, Ctx: ctx, DB: db, shared: plans, stats: &sessionStats{}}
	for ti, tree := range ifc.State.Trees {
		qb, ok := tree.Bind(ctx)
		if !ok || len(qb.PerQuery) == 0 {
			return nil, fmt.Errorf("iface: tree %d has no query binding", ti)
		}
		s.bindings = append(s.bindings, qb.PerQuery[0].Clone())
	}
	s.resetCacheLocked()
	return s, nil
}

// Stats returns a snapshot of the cache counters. It is lock-free (the
// counters are atomics), so monitoring never blocks on — and never blocks —
// an in-flight interaction holding the session mutex.
func (s *Session) Stats() CacheStats { return s.stats.snapshot() }

// ResetCache drops this session's memoized plans and result tables
// (counters are kept). The next interaction takes the full
// parse/plan/execute path. A shared PlanCache is not flushed — it belongs
// to every session, and its entries are validated per use against the
// generations of the tables they read, so they can never serve stale plans.
func (s *Session) ResetCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetCacheLocked()
}

func (s *Session) resetCacheLocked() {
	s.plans = newLRU[uint64, cachedPlan](maxCachedPlans)
	s.results = make([]*lruCache[uint64, cachedResult], len(s.bindings))
	for i := range s.results {
		s.results[i] = newLRU[uint64, cachedResult](maxCachedResultsPerTree)
	}
}

// Binding exposes the current binding of a tree (for tests). It returns a
// deep copy: the live map is mutated in place by widget events, so handing
// it out would leak unsynchronized interior state past the session mutex.
func (s *Session) Binding(tree int) dt.Binding {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bindings[tree].Clone()
}

// CurrentSQL resolves a tree under its current binding and renders SQL.
func (s *Session) CurrentSQL(tree int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ast, err := dt.Resolve(s.Ifc.State.Trees[tree].Root, s.bindings[tree])
	if err != nil {
		return "", err
	}
	return sqlparser.ToSQL(ast), nil
}

// TreeSQL is one tree's rendered SQL (or the resolution error) from an
// atomic CurrentSQLAll snapshot.
type TreeSQL struct {
	SQL string
	Err error
}

// CurrentSQLAll resolves every tree under one lock acquisition, so the
// snapshot is consistent even while concurrent requests rebind widgets.
func (s *Session) CurrentSQLAll() []TreeSQL {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TreeSQL, len(s.bindings))
	for ti, tree := range s.Ifc.State.Trees {
		ast, err := dt.Resolve(tree.Root, s.bindings[ti])
		if err != nil {
			out[ti] = TreeSQL{Err: err}
			continue
		}
		out[ti] = TreeSQL{SQL: sqlparser.ToSQL(ast)}
	}
	return out
}

// Results executes every tree under its current binding, serving repeated
// binding states from the interaction cache. The returned tables are
// shared with the cache (and across callers): treat them as immutable.
func (s *Session) Results() ([]*engine.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultsLocked(nil)
}

// ResultsTraced is Results with a request trace attached: each tree that
// misses the result cache records "plan.tN" and "exec.tN" spans, so a slow
// request's log shows exactly which tree recompiled or re-executed. A nil
// trace makes it exactly Results.
func (s *Session) ResultsTraced(tr *obs.Trace) ([]*engine.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultsLocked(tr)
}

func (s *Session) resultsLocked(tr *obs.Trace) ([]*engine.Table, error) {
	out := make([]*engine.Table, len(s.bindings))
	for ti := range s.bindings {
		res, err := s.resultLocked(ti, tr)
		if err != nil {
			return nil, err
		}
		out[ti] = res
	}
	return out, nil
}

// Result executes one tree (cached like Results; the returned table is
// shared with the cache — treat it as immutable).
func (s *Session) Result(tree int) (*engine.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultLocked(tree, nil)
}

// ExplainAnalyze resolves one tree under its current binding and executes it
// with per-operator profiling (engine.Plan.ExecProfiled). The plan comes
// through the normal plan-cache path, but the result cache is bypassed in
// both directions — profiling only means anything when the query actually
// runs — and left untouched, so explaining never perturbs serving state.
// If the DB mutates between plan resolution and the profiled execution, the
// plan is re-resolved and retried; a sustained writer eventually surfaces
// engine.ErrStalePlan, which the HTTP layer maps to a client error, not a
// 500.
func (s *Session) ExplainAnalyze(tree int) (string, *engine.Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tree < 0 || tree >= len(s.bindings) {
		return "", nil, fmt.Errorf("iface: tree %d out of range", tree)
	}
	ast, err := dt.Resolve(s.Ifc.State.Trees[tree].Root, s.bindings[tree])
	if err != nil {
		return "", nil, err
	}
	for attempt := 0; ; attempt++ {
		plan, err := s.planFor(ast)
		if err != nil {
			return "", nil, err
		}
		if s.execHook != nil {
			s.execHook()
		}
		_, prof, err := plan.ExecProfiled()
		if err == nil {
			return sqlparser.ToSQL(ast), prof, nil
		}
		if !errors.Is(err, engine.ErrStalePlan) || attempt >= execStaleRetries {
			return "", nil, err
		}
	}
}

// ExplainPlan resolves one tree under its current binding and renders the
// compiled plan without executing it (engine.Plan.Explain): access paths and
// their statistics estimates, join strategy and build sides, predicate
// placement. The plan comes through the normal plan-cache path; no result is
// produced and no cache is touched beyond that.
func (s *Session) ExplainPlan(tree int) (string, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tree < 0 || tree >= len(s.bindings) {
		return "", "", fmt.Errorf("iface: tree %d out of range", tree)
	}
	ast, err := dt.Resolve(s.Ifc.State.Trees[tree].Root, s.bindings[tree])
	if err != nil {
		return "", "", err
	}
	plan, err := s.planFor(ast)
	if err != nil {
		return "", "", err
	}
	return sqlparser.ToSQL(ast), plan.Explain(), nil
}

// Cache size caps. A long-lived serving session sees an unbounded stream
// of binding states (every drag step of a brush is a new state), so both
// layers are LRU-bounded: at the cap the least recently used entry is
// evicted per insert, keeping steady-state memory flat while guaranteeing
// the recently-hot states stay resident.
const (
	maxCachedResultsPerTree = 512
	maxCachedPlans          = 256
)

// execStaleRetries bounds how many times the execution paths re-resolve a
// plan that went stale between resolution and execution (a live writer hit
// the window). Past the bound the engine.ErrStalePlan surfaces to the
// caller, which maps it to a retryable client error at the HTTP layer.
const execStaleRetries = 3

// resultLocked is the cached execution path for one tree: result cache by
// binding hash, then plan cache by resolved-query hash, then compile. A
// cached result is served only while the tables it read are unchanged
// (fast path: the global generation hasn't moved at all; slow path: the
// per-table dependency check), so a write to one table evicts only the
// results over that table. tr (nil on untraced calls) receives plan/exec
// spans on the miss path only — a result-cache hit records nothing, keeping
// the hot path alloc-free.
func (s *Session) resultLocked(tree int, tr *obs.Trace) (*engine.Table, error) {
	b := s.bindings[tree]
	bkey := b.KeyString()
	bh := dt.HashKey(bkey)
	if cr, ok := s.results[tree].get(bh); ok && cr.key == bkey {
		if cr.gen == s.DB.Generation() || s.DB.Fresh(cr.deps) {
			s.stats.resultHits.Add(1)
			return cr.tbl, nil
		}
		// A table this result read has mutated: discard and re-execute.
		s.stats.invalidations.Add(1)
	}
	s.stats.resultMisses.Add(1)
	var end func()
	if tr != nil {
		end = tr.Span("plan.t" + strconv.Itoa(tree))
	}
	ast, err := dt.Resolve(s.Ifc.State.Trees[tree].Root, b)
	if err != nil {
		return nil, err
	}
	var res *engine.Table
	var plan *engine.Plan
	// gen is snapshotted before execution so the cached entry's fast path
	// can never claim freshness across a write that landed mid-execution.
	gen := s.DB.Generation()
	for attempt := 0; ; attempt++ {
		plan, err = s.planFor(ast)
		if end != nil {
			end()
			end = nil
		}
		if err != nil {
			return nil, err
		}
		if tr != nil {
			end = tr.Span("exec.t" + strconv.Itoa(tree))
		}
		if s.execHook != nil {
			s.execHook()
		}
		gen = s.DB.Generation()
		res, err = plan.Exec()
		if end != nil {
			end()
			end = nil
		}
		if err == nil {
			break
		}
		if !errors.Is(err, engine.ErrStalePlan) || attempt >= execStaleRetries {
			return nil, err
		}
	}
	s.results[tree].put(bh, cachedResult{key: bkey, tbl: res, gen: gen, deps: plan.Deps()})
	return res, nil
}

// planFor returns the compiled plan for a resolved query: from the shared
// cross-session cache when one is attached, else from the session-private
// plan LRU (compiling on miss). Called with the session mutex held; the
// shared cache takes only its own shard lock underneath (see the locking
// hierarchy in ARCHITECTURE.md).
func (s *Session) planFor(ast *dt.Node) (*engine.Plan, error) {
	if s.shared != nil {
		plan, hit, err := s.shared.Get(s.DB, ast)
		if err != nil {
			return nil, err
		}
		if hit {
			s.stats.planHits.Add(1)
		} else {
			s.stats.planMisses.Add(1)
		}
		return plan, nil
	}
	qh := dt.Hash(ast)
	if cp, ok := s.plans.get(qh); ok && !cp.plan.Stale() && dt.Equal(cp.ast, ast) {
		s.stats.planHits.Add(1)
		return cp.plan, nil
	}
	s.stats.planMisses.Add(1)
	plan, err := engine.Prepare(s.DB, ast)
	if err != nil {
		return nil, err
	}
	s.plans.put(qh, cachedPlan{ast: ast, plan: plan})
	return plan, nil
}

func (s *Session) widget(elemID string) (*WidgetSpec, error) {
	for i := range s.Ifc.Widgets {
		if s.Ifc.Widgets[i].ElemID == elemID {
			return &s.Ifc.Widgets[i], nil
		}
	}
	return nil, fmt.Errorf("iface: no widget %q", elemID)
}

func (s *Session) node(tree, id int) (*dt.Node, error) {
	n := s.Ifc.State.Trees[tree].Root.Find(id)
	if n == nil {
		return nil, fmt.Errorf("iface: node %d missing in tree %d", id, tree)
	}
	return n, nil
}

// SetOption binds an enumerating widget (radio, dropdown, button, also
// checkbox-as-single) to its i-th option.
func (s *Session) SetOption(elemID string, option int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	switch n.Kind {
	case dt.KindAny:
		if option < 0 || option >= len(n.Children) {
			return fmt.Errorf("iface: option %d out of range", option)
		}
		s.bindings[w.Tree][n.ID] = dt.BindValue{Index: option}
		return nil
	case dt.KindVal:
		if option < 0 || option >= len(w.Options) {
			return fmt.Errorf("iface: option %d out of range", option)
		}
		kind := dt.KindString
		if w.Kind == "dropdown" && isNumeric(w.Options[option]) {
			kind = dt.KindNumber
		}
		s.bindings[w.Tree][n.ID] = dt.BindValue{Lit: w.Options[option], LitKind: kind}
		return nil
	}
	return fmt.Errorf("iface: SetOption unsupported for node kind %v", n.Kind)
}

// SetToggle binds a toggle's OPT node.
func (s *Session) SetToggle(elemID string, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	if n.Kind != dt.KindOpt {
		return fmt.Errorf("iface: SetToggle on non-OPT node")
	}
	s.bindings[w.Tree][n.ID] = dt.BindValue{Present: on}
	if on {
		// nested choice nodes need bindings; default them to the first
		// query that has the OPT present.
		s.defaultSubtree(w.Tree, n)
	}
	return nil
}

// SetSlider binds a numeric VAL.
func (s *Session) SetSlider(elemID string, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	if n.Kind != dt.KindVal {
		return fmt.Errorf("iface: SetSlider on non-VAL node")
	}
	s.bindings[w.Tree][n.ID] = dt.BindValue{Lit: formatNum(v), LitKind: dt.KindNumber}
	return nil
}

// SetText binds a textbox VAL.
func (s *Session) SetText(elemID, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	if n.Kind != dt.KindVal {
		return fmt.Errorf("iface: SetText on non-VAL node")
	}
	kind := dt.KindString
	if n.Label == "num" {
		if !isNumeric(text) {
			return fmt.Errorf("iface: %q is not numeric", text)
		}
		kind = dt.KindNumber
	}
	s.bindings[w.Tree][n.ID] = dt.BindValue{Lit: text, LitKind: kind}
	return nil
}

// SetRange binds a range slider (two covered VAL nodes, lo ≤ hi).
func (s *Session) SetRange(elemID string, lo, hi float64) error {
	if lo > hi {
		return fmt.Errorf("iface: range slider requires lo <= hi")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	vals := valNodes(n)
	if len(vals) != 2 {
		return fmt.Errorf("iface: range slider covers %d VALs, want 2", len(vals))
	}
	s.bindings[w.Tree][vals[0].ID] = dt.BindValue{Lit: formatNum(lo), LitKind: dt.KindNumber}
	s.bindings[w.Tree][vals[1].ID] = dt.BindValue{Lit: formatNum(hi), LitKind: dt.KindNumber}
	return nil
}

// SetChecked binds a checkbox list: a SUBSET selection or MULTI repetitions.
func (s *Session) SetChecked(elemID string, options []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.widget(elemID)
	if err != nil {
		return err
	}
	n, err := s.node(w.Tree, w.NodeID)
	if err != nil {
		return err
	}
	switch n.Kind {
	case dt.KindSubset:
		idx := append([]int(nil), options...)
		s.bindings[w.Tree][n.ID] = dt.BindValue{Indices: idx}
		return nil
	case dt.KindMulti:
		pattern := n.Children[0]
		var reps []dt.Binding
		for _, o := range options {
			rep := dt.Binding{}
			if pattern.Kind == dt.KindAny {
				if o < 0 || o >= len(pattern.Children) {
					return fmt.Errorf("iface: option %d out of range", o)
				}
				rep[pattern.ID] = dt.BindValue{Index: o}
			}
			reps = append(reps, rep)
		}
		s.bindings[w.Tree][n.ID] = dt.BindValue{Reps: reps}
		return nil
	}
	return fmt.Errorf("iface: SetChecked unsupported for node kind %v", n.Kind)
}

// visInt locates a mapped visualization interaction.
func (s *Session) visInt(sourceElem string, kind string) (*VisIntSpec, error) {
	for i := range s.Ifc.VisInts {
		v := &s.Ifc.VisInts[i]
		if s.Ifc.Vis[v.SourceVis].ElemID == sourceElem && string(v.Kind) == kind {
			return v, nil
		}
	}
	return nil, fmt.Errorf("iface: no %s interaction on %s", kind, sourceElem)
}

// Click simulates clicking the i-th rendered mark of a chart; the event
// value (the mark's value for the stream's column) binds the target VAL.
func (s *Session) Click(sourceElem string, row int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.visInt(sourceElem, "click")
	if err != nil {
		return err
	}
	srcTree := s.Ifc.Vis[v.SourceVis].Tree
	res, err := s.resultLocked(srcTree, nil)
	if err != nil {
		return err
	}
	if row < 0 || row >= len(res.Rows) {
		return fmt.Errorf("iface: row %d out of range (%d rows)", row, len(res.Rows))
	}
	val := res.Rows[row][v.Cols[0]]
	n, err := s.node(v.Tree, v.NodeID)
	if err != nil {
		return err
	}
	kind := dt.KindString
	if !val.IsStr {
		kind = dt.KindNumber
	}
	s.bindings[v.Tree][n.ID] = dt.BindValue{Lit: val.Text(), LitKind: kind}
	return nil
}

// Brush simulates a 1-D or 2-D brush / pan / zoom: bounds bind the covered
// VAL nodes in order; an OPT wrapper becomes present.
func (s *Session) Brush(sourceElem string, kind string, bounds ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.visInt(sourceElem, kind)
	if err != nil {
		return err
	}
	n, err := s.node(v.Tree, v.NodeID)
	if err != nil {
		return err
	}
	if n.Kind == dt.KindOpt {
		s.bindings[v.Tree][n.ID] = dt.BindValue{Present: true}
	}
	vals := valNodes(n)
	if len(vals) != len(bounds) {
		return fmt.Errorf("iface: %d bounds for %d VAL nodes", len(bounds), len(vals))
	}
	for i, b := range bounds {
		kind := dt.KindString
		if isNumeric(b) {
			kind = dt.KindNumber
		}
		s.bindings[v.Tree][vals[i].ID] = dt.BindValue{Lit: b, LitKind: kind}
	}
	return nil
}

// ClearBrush simulates clearing a togglable brush: the OPT target resolves
// absent (paper §7.1: "clearing the brush disables the predicate").
func (s *Session) ClearBrush(sourceElem string, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.visInt(sourceElem, kind)
	if err != nil {
		return err
	}
	n, err := s.node(v.Tree, v.NodeID)
	if err != nil {
		return err
	}
	if n.Kind != dt.KindOpt {
		return fmt.Errorf("iface: interaction target is not optional")
	}
	s.bindings[v.Tree][n.ID] = dt.BindValue{Present: false}
	return nil
}

// ApplyQuery sets every tree that expresses the qi-th input query to that
// query's binding — the runtime face of the paper's expressiveness
// guarantee: for every input query there is a set of manipulations that
// reproduces it exactly.
func (s *Session) ApplyQuery(qi int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyQueryLocked(qi)
}

func (s *Session) applyQueryLocked(qi int) error {
	if qi < 0 || qi >= len(s.Ctx.Queries) {
		return fmt.Errorf("iface: query %d out of range", qi)
	}
	for ti, tree := range s.Ifc.State.Trees {
		pos := -1
		for i, q := range tree.Queries {
			if q == qi {
				pos = i
				break
			}
		}
		if pos < 0 {
			continue
		}
		qb, ok := tree.Bind(s.Ctx)
		if !ok {
			return fmt.Errorf("iface: tree %d lost its bindings", ti)
		}
		s.bindings[ti] = qb.PerQuery[pos].Clone()
	}
	return nil
}

// ExpressesAll verifies the guarantee end to end: applying each input
// query's bindings must resolve its tree to exactly that query.
func (s *Session) ExpressesAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for qi, q := range s.Ctx.Queries {
		if err := s.applyQueryLocked(qi); err != nil {
			return err
		}
		for ti, tree := range s.Ifc.State.Trees {
			expressed := false
			for _, tq := range tree.Queries {
				if tq == qi {
					expressed = true
					break
				}
			}
			if !expressed {
				continue
			}
			ast, err := dt.Resolve(tree.Root, s.bindings[ti])
			if err != nil {
				return fmt.Errorf("iface: tree %d query %d: %w", ti, qi, err)
			}
			if !dt.Equal(ast, q) {
				return fmt.Errorf("iface: tree %d resolves query %d to %q, want %q",
					ti, qi, sqlparser.ToSQL(ast), sqlparser.ToSQL(q))
			}
		}
	}
	return nil
}

// defaultSubtree fills missing bindings under a node from the first input
// query whose binding covers them.
func (s *Session) defaultSubtree(tree int, n *dt.Node) {
	qb, ok := s.Ifc.State.Trees[tree].Bind(s.Ctx)
	if !ok {
		return
	}
	for _, c := range n.ChoiceNodes() {
		if _, bound := s.bindings[tree][c.ID]; bound {
			continue
		}
		for _, b := range qb.PerQuery {
			if v, ok := b[c.ID]; ok {
				s.bindings[tree][c.ID] = v.Clone()
				break
			}
		}
	}
}

func valNodes(n *dt.Node) []*dt.Node {
	var out []*dt.Node
	for _, c := range n.ChoiceNodes() {
		if c.Kind == dt.KindVal {
			out = append(out, c)
		}
	}
	return out
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
