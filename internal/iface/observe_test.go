package iface

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"pi2/internal/obs"
)

// newObsHandler builds a registry-mode server with full observability
// attached, driven synchronously via ResponseRecorders (no test server, no
// goroutines — after ServeHTTP returns, every metric and slow-log line is
// written).
func newObsHandler(t *testing.T, slow *obs.SlowLog) (http.Handler, *ServerObs, *Registry) {
	t.Helper()
	ifc, ctx := buildSliderInterface(t)
	pc := NewPlanCache()
	reg := NewRegistry(func() (*Session, error) {
		return NewSessionWithPlans(ifc, ctx, testDB, pc)
	}, RegistryOptions{Plans: pc})
	m := obs.NewRegistry()
	o := NewServerObs(m, slow)
	RegisterServingMetrics(m, reg)
	o.ObserveEngine(testDB)
	return NewRegistryServer(reg).WithObs(o).Handler(), o, reg
}

func doReq(h http.Handler, method, target string, form url.Values) *httptest.ResponseRecorder {
	var req *http.Request
	if form != nil {
		req = httptest.NewRequest(method, target, strings.NewReader(form.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestMetricsEndpointScrape(t *testing.T) {
	h, _, _ := newObsHandler(t, nil)
	doReq(h, "GET", "/?session=alice", nil)
	doReq(h, "GET", "/?session=alice", nil)
	doReq(h, "POST", "/widget", url.Values{"session": {"alice"}, "id": {"w0"}, "value": {"3"}})

	rr := doReq(h, "GET", "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rr.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`pi2_http_requests_total{path="/"} 2`,
		`pi2_http_request_seconds_bucket{path="/",le="+Inf"} 2`,
		`pi2_http_request_seconds_count{path="/"} 2`,
		`pi2_phase_seconds_count{phase="acquire"}`,
		`pi2_cache_hits_total{layer="result"}`,
		`pi2_cache_misses_total{layer="plan"}`,
		"pi2_sessions_live 1",
		"pi2_sessions_created_total 1",
		"pi2_uptime_seconds",
		"pi2_http_in_flight",
		"pi2_engine_index_builds_total",
		"pi2_engine_index_hits_total",
		"pi2_engine_stats_builds_total",
		`pi2_engine_index_build_seconds_bucket{kind="hash",le="+Inf"}`,
		"pi2_engine_column_builds_total",
		"pi2_engine_batches_total",
		`pi2_engine_batch_rows_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestMetricsRouteAbsentWithoutObs(t *testing.T) {
	srv, _ := newTestServer(t) // no WithObs
	// Without observability /metrics is not routed: the catch-all "/" serves
	// the interface page, and no Prometheus text leaks anywhere.
	_, body := get(t, srv.URL+"/metrics")
	if strings.Contains(body, "pi2_http_requests_total") {
		t.Fatalf("uninstrumented server exposes metrics:\n%s", body)
	}
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Trace-Id") != "" {
		t.Fatal("uninstrumented response carries X-Trace-Id")
	}
}

func TestTraceIDHeader(t *testing.T) {
	h, _, _ := newObsHandler(t, nil)
	rr := doReq(h, "GET", "/healthz", nil)
	if rr.Header().Get("X-Trace-Id") == "" {
		t.Fatal("instrumented response missing X-Trace-Id")
	}
}

func TestIndexRecordsPhaseHistograms(t *testing.T) {
	h, o, _ := newObsHandler(t, nil)
	doReq(h, "GET", "/?session=alice", nil)
	for _, phase := range []string{"acquire", "plan", "exec", "render"} {
		if n := o.phase[phase].Count(); n == 0 {
			t.Errorf("phase %q recorded no observations", phase)
		}
	}
	// Second hit: results come from the cache, so no new plan/exec spans.
	plans := o.phase["plan"].Count()
	doReq(h, "GET", "/?session=alice", nil)
	if n := o.phase["plan"].Count(); n != plans {
		t.Errorf("cached page load recorded %d new plan spans", n-plans)
	}
	if n := o.phase["render"].Count(); n < 2 {
		t.Errorf("render spans = %d, want one per page load", n)
	}
}

// TestStatsJSONByteCompatible pins the contract that attaching observability
// only appends to the /stats object: the uninstrumented encoding minus its
// closing brace must be a byte prefix of the instrumented encoding, in both
// registry and single-session modes.
func TestStatsJSONByteCompatible(t *testing.T) {
	ifc, ctx := buildSliderInterface(t)

	t.Run("registry", func(t *testing.T) {
		pc := NewPlanCache()
		factory := func() (*Session, error) { return NewSessionWithPlans(ifc, ctx, testDB, pc) }
		reg := NewRegistry(factory, RegistryOptions{Plans: pc})
		plain := doReq(NewRegistryServer(reg).Handler(), "GET", "/stats", nil).Body.String()
		instr := doReq(NewRegistryServer(reg).WithObs(NewServerObs(obs.NewRegistry(), nil)).Handler(),
			"GET", "/stats", nil).Body.String()
		prefix := strings.TrimSuffix(strings.TrimSpace(plain), "}")
		if !strings.HasPrefix(instr, prefix) {
			t.Fatalf("instrumented /stats does not extend the plain encoding:\nplain: %s\ninstr: %s", plain, instr)
		}
	})

	t.Run("single", func(t *testing.T) {
		sess, err := NewSession(ifc, ctx, testDB)
		if err != nil {
			t.Fatal(err)
		}
		plain := doReq(NewServer(sess).Handler(), "GET", "/stats", nil).Body.String()
		instr := doReq(NewServer(sess).WithObs(NewServerObs(obs.NewRegistry(), nil)).Handler(),
			"GET", "/stats", nil).Body.String()
		prefix := strings.TrimSuffix(strings.TrimSpace(plain), "}")
		if !strings.HasPrefix(instr, prefix) {
			t.Fatalf("instrumented /stats does not extend the plain encoding:\nplain: %s\ninstr: %s", plain, instr)
		}
	})
}

func TestStatsObsFields(t *testing.T) {
	h, _, _ := newObsHandler(t, nil)
	doReq(h, "GET", "/?session=alice", nil)
	rr := doReq(h, "GET", "/stats", nil)
	var got struct {
		LiveSessions int `json:"live_sessions"`
		Obs          struct {
			UptimeSeconds float64           `json:"uptime_seconds"`
			InFlight      int64             `json:"in_flight"`
			Requests      map[string]uint64 `json:"requests"`
			Index         *struct {
				Builds uint64 `json:"builds"`
				Hits   uint64 `json:"hits"`
			} `json:"index"`
			Columnar *struct {
				ColumnBuilds uint64 `json:"column_builds"`
				Batches      uint64 `json:"batches"`
				BatchRows    uint64 `json:"batch_rows"`
			} `json:"columnar"`
		} `json:"obs"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode /stats: %v\n%s", err, rr.Body.String())
	}
	if got.LiveSessions != 1 {
		t.Errorf("live_sessions = %d, want 1", got.LiveSessions)
	}
	if got.Obs.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", got.Obs.UptimeSeconds)
	}
	if got.Obs.Requests["/"] != 1 {
		t.Errorf(`requests["/"] = %d, want 1`, got.Obs.Requests["/"])
	}
	// /stats runs inside the middleware, so it counts itself as in flight.
	if got.Obs.InFlight != 1 {
		t.Errorf("in_flight = %d, want 1 (the /stats request itself)", got.Obs.InFlight)
	}
	// With the engine observed, the obs object carries the index counters
	// and the columnar counters.
	if got.Obs.Index == nil {
		t.Error("obs.index missing from /stats with ObserveEngine attached")
	}
	if got.Obs.Columnar == nil {
		t.Error("obs.columnar missing from /stats with ObserveEngine attached")
	}
}

func TestSlowLogEmission(t *testing.T) {
	var buf bytes.Buffer
	slow := obs.NewSlowLog(&buf, time.Nanosecond) // everything is slow
	h, _, _ := newObsHandler(t, slow)
	doReq(h, "GET", "/?session=alice", nil)
	line, _, _ := strings.Cut(buf.String(), "\n")
	var entry struct {
		Kind   string  `json:"kind"`
		Detail string  `json:"detail"`
		Ms     float64 `json:"ms"`
		Trace  string  `json:"trace"`
		Spans  []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log line not JSON: %v\n%q", err, line)
	}
	if entry.Kind != "http" || entry.Detail != "GET /" || entry.Trace == "" {
		t.Fatalf("entry = %+v", entry)
	}
	names := map[string]bool{}
	for _, sp := range entry.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"acquire", "plan.t0", "exec.t0", "render"} {
		if !names[want] {
			t.Errorf("slow entry missing span %q (have %v)", want, entry.Spans)
		}
	}
}

func TestSQLExplainAnalyze(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/sql?explain=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d\n%s", code, body)
	}
	for _, want := range []string{"tree 0:", "operator", "rows in", "rows out", "total"} {
		if !strings.Contains(body, want) {
			t.Errorf("explain output missing %q:\n%s", want, body)
		}
	}
	// Explaining must not disturb the plain /sql view.
	_, plain := get(t, srv.URL+"/sql")
	if strings.Contains(plain, "operator") {
		t.Fatalf("plain /sql shows profile output:\n%s", plain)
	}
}

func TestSQLExplainPlan(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/sql?explain=plan")
	if code != http.StatusOK {
		t.Fatalf("status = %d\n%s", code, body)
	}
	for _, want := range []string{"tree 0:", "scan"} {
		if !strings.Contains(body, want) {
			t.Errorf("plan output missing %q:\n%s", want, body)
		}
	}
	// Plan-only: no per-operator execution report.
	for _, ban := range []string{"operator", "rows in", "total"} {
		if strings.Contains(body, ban) {
			t.Errorf("explain=plan leaked execution output %q:\n%s", ban, body)
		}
	}
}
