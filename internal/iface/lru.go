package iface

import "container/list"

// lruCache is a size-bounded map with least-recently-used eviction: lookups
// and inserts both count as use, so the entries that keep answering
// interactions (the slider positions a user oscillates between) stay
// resident while stale drag states age out. The arbitrary-map-order
// eviction it replaces could evict the hottest entry at the cap.
//
// The key is any comparable type: the session caches key by 64-bit hashes,
// the shared plan cache by hash⊕generation, and tests by whatever is
// convenient. Not safe for concurrent use; callers hold their own lock.
type lruCache[K comparable, V any] struct {
	cap     int
	order   *list.List // front = most recently used
	entries map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	return &lruCache[K, V]{cap: capacity, order: list.New(), entries: map[K]*list.Element{}}
}

// get returns the entry and marks it most recently used.
func (c *lruCache[K, V]) get(k K) (V, bool) {
	if e, ok := c.entries[k]; ok {
		c.order.MoveToFront(e)
		return e.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or replaces the entry, marking it most recently used and
// evicting the least recently used entry when the cache is at capacity.
func (c *lruCache[K, V]) put(k K, v V) {
	if e, ok := c.entries[k]; ok {
		e.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		if back := c.order.Back(); back != nil {
			delete(c.entries, back.Value.(*lruEntry[K, V]).key)
			c.order.Remove(back)
		}
	}
	c.entries[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
}

// len reports the number of resident entries.
func (c *lruCache[K, V]) len() int { return len(c.entries) }
