package iface

import "container/list"

// lruCache is a size-bounded uint64-keyed map with least-recently-used
// eviction: lookups and inserts both count as use, so the entries that keep
// answering interactions (the slider positions a user oscillates between)
// stay resident while stale drag states age out. The arbitrary-map-order
// eviction it replaces could evict the hottest entry at the cap.
type lruCache[V any] struct {
	cap     int
	order   *list.List // front = most recently used
	entries map[uint64]*list.Element
}

type lruEntry[V any] struct {
	key uint64
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, order: list.New(), entries: map[uint64]*list.Element{}}
}

// get returns the entry and marks it most recently used.
func (c *lruCache[V]) get(k uint64) (V, bool) {
	if e, ok := c.entries[k]; ok {
		c.order.MoveToFront(e)
		return e.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or replaces the entry, marking it most recently used and
// evicting the least recently used entry when the cache is at capacity.
func (c *lruCache[V]) put(k uint64, v V) {
	if e, ok := c.entries[k]; ok {
		e.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		if back := c.order.Back(); back != nil {
			delete(c.entries, back.Value.(*lruEntry[V]).key)
			c.order.Remove(back)
		}
	}
	c.entries[k] = c.order.PushFront(&lruEntry[V]{key: k, val: v})
}

// len reports the number of resident entries.
func (c *lruCache[V]) len() int { return len(c.entries) }
