package iface

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestMarshalJSONRoundTrips(t *testing.T) {
	ifc, _ := buildSliderInterface(t)
	data, err := MarshalJSON(ifc)
	if err != nil {
		t.Fatal(err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(spec.Charts) != 1 || spec.Charts[0].Type != "bar" {
		t.Fatalf("charts = %+v", spec.Charts)
	}
	if spec.Charts[0].Encode["x"] != "p" || spec.Charts[0].Encode["y"] != "count" {
		t.Fatalf("encode = %v", spec.Charts[0].Encode)
	}
	if len(spec.Widgets) != 1 || spec.Widgets[0].Kind != "slider" {
		t.Fatalf("widgets = %+v", spec.Widgets)
	}
	if len(spec.Trees) != 1 || spec.Trees[0].Choices != 1 {
		t.Fatalf("trees = %+v", spec.Trees)
	}
	if !strings.Contains(spec.Trees[0].SQL, "VAL<num>") {
		t.Fatalf("tree sql = %s", spec.Trees[0].SQL)
	}
	if len(spec.Layout) == 0 {
		t.Fatal("layout boxes missing")
	}
}
