package iface

import (
	"net/http"
	"strings"
	"time"

	"pi2/internal/engine"
	"pi2/internal/obs"
)

// servedEndpoints is the fixed label set for per-endpoint serving metrics.
// The list is closed on purpose: labels from request paths would let a
// client mint unbounded time series.
var servedEndpoints = []string{
	"/", "/widget", "/interact", "/reset", "/sql", "/ingest", "/stats", "/healthz", "/metrics",
}

// servedPhases are the span-name prefixes (the part before the first '.')
// aggregated into per-phase latency histograms: acquire = session lookup or
// construction, plan = resolve+compile on a cache miss, exec = query
// execution, render = HTML assembly, apply = widget/interaction mutation.
var servedPhases = []string{"acquire", "plan", "exec", "render", "apply"}

// ServerObs is the serving observability bundle: a metrics registry fed by
// per-endpoint middleware, per-phase latency histograms fed from request
// traces, and an optional slow-query log. A nil *ServerObs disables
// everything — Server.Handler wires routes straight through and the request
// path carries no trace.
type ServerObs struct {
	Metrics *obs.Registry
	Slow    *obs.SlowLog

	start     time.Time
	inFlight  *obs.Gauge
	slowTotal *obs.Counter
	lat       map[string]*obs.Histogram
	phase     map[string]*obs.Histogram
	engineIdx func() engine.IndexCounters    // set by ObserveEngine; nil until then
	engineCol func() engine.ColumnarCounters // set by ObserveEngine; nil until then
	engineApp func() engine.AppendCounters   // set by ObserveEngine; nil until then
}

// NewServerObs builds the serving instruments on m (which must be non-nil)
// and attaches slow (which may be nil: no slow log).
func NewServerObs(m *obs.Registry, slow *obs.SlowLog) *ServerObs {
	o := &ServerObs{
		Metrics: m,
		Slow:    slow,
		start:   time.Now(),
		lat:     make(map[string]*obs.Histogram, len(servedEndpoints)),
		phase:   make(map[string]*obs.Histogram, len(servedPhases)),
	}
	o.inFlight = m.Gauge("pi2_http_in_flight", "Requests currently being served.")
	o.slowTotal = m.Counter("pi2_http_slow_requests_total", "Requests that exceeded the slow-query threshold.")
	m.GaugeFunc("pi2_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(o.start).Seconds()
	})
	for _, p := range servedEndpoints {
		h := m.Histogram("pi2_http_request_seconds", "HTTP request latency in seconds, by endpoint.", nil, "path", p)
		o.lat[p] = h
		// The request count is the latency histogram's observation count,
		// read at scrape time — one fewer atomic write (and cache line) on
		// the per-request hot path than a separate counter.
		m.CounterFunc("pi2_http_requests_total", "HTTP requests served, by endpoint.", func() float64 {
			return float64(h.Count())
		}, "path", p)
	}
	for _, ph := range servedPhases {
		o.phase[ph] = m.Histogram("pi2_phase_seconds", "Request phase latency in seconds (from trace spans).", nil, "phase", ph)
	}
	return o
}

// wrap instruments one route: it opens a request trace (propagated via the
// request context so session/engine layers can attach spans), counts the
// request, observes its latency and per-phase span durations, and feeds the
// slow log when the request exceeds the threshold. On a nil receiver it
// returns h unchanged — the disabled server serves exactly the seed handler
// chain.
func (o *ServerObs) wrap(path string, h http.HandlerFunc) http.HandlerFunc {
	if o == nil {
		return h
	}
	lat := o.lat[path]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := obs.NowMono()
		o.inFlight.Inc()
		tr := obs.NewTrace("")
		w.Header().Set("X-Trace-Id", tr.ID)
		h(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		d := obs.NowMono() - t0
		o.inFlight.Dec()
		lat.ObserveDuration(d)
		for _, sp := range tr.Spans() {
			if ph := o.phase[phaseOf(sp.Name)]; ph != nil {
				ph.ObserveDuration(sp.Dur)
			}
		}
		if o.Slow.Slow(d) {
			o.slowTotal.Inc()
			o.Slow.Record("http", r.Method+" "+path, d, tr)
		}
	}
}

// phaseOf maps a span name to its phase bucket: the prefix before the first
// '.' ("exec.t1" -> "exec"), or the whole name when there is none.
func phaseOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// statsExt feeds the /stats JSON extension fields.
func (o *ServerObs) statsExt() (uptimeSeconds float64, inFlight int64, requests map[string]uint64) {
	requests = make(map[string]uint64, len(o.lat))
	for p, h := range o.lat {
		requests[p] = h.Count()
	}
	return time.Since(o.start).Seconds(), o.inFlight.Value(), requests
}

// ObserveEngine exposes the engine's access-path instrumentation for db:
// func-backed counters for index builds, index hits, and statistics builds
// (read at scrape time from the DB's own atomics — no double counting, no
// extra work on the query path) plus a per-kind build-latency histogram fed
// by the engine's build hook. The counters also surface in /stats as the
// obs object's "index" field. Either nil is a no-op.
func (o *ServerObs) ObserveEngine(db *engine.DB) {
	if o == nil || db == nil {
		return
	}
	m := o.Metrics
	m.CounterFunc("pi2_engine_index_builds_total", "Per-column indexes built (hash and sorted).", func() float64 {
		return float64(db.IndexCounters().Builds)
	})
	m.CounterFunc("pi2_engine_index_hits_total", "Scans and join builds served from a per-column index.", func() float64 {
		return float64(db.IndexCounters().Hits)
	})
	m.CounterFunc("pi2_engine_stats_builds_total", "Table-statistics computations.", func() float64 {
		return float64(db.IndexCounters().StatsBuilds)
	})
	hists := make(map[string]*obs.Histogram, 3)
	for _, kind := range []string{"hash", "sorted", "stats"} {
		hists[kind] = m.Histogram("pi2_engine_index_build_seconds",
			"Index and statistics build latency in seconds, by kind.", nil, "kind", kind)
	}
	db.OnIndexBuild(func(kind string, d time.Duration) {
		if h := hists[kind]; h != nil {
			h.ObserveDuration(d)
		}
	})
	o.engineIdx = db.IndexCounters

	// Columnar-layer instruments: func-backed counters over the engine's
	// atomics, plus a rows-per-batch histogram fed by the batch hook. The
	// bucket edges cover the power-of-two sub-batch sizes up to the full
	// batch — a healthy vectorized workload should pile up in the last one.
	m.CounterFunc("pi2_engine_column_builds_total", "Columnar storage and columnar-hash builds.", func() float64 {
		return float64(db.ColumnarCounters().ColumnBuilds)
	})
	m.CounterFunc("pi2_engine_batches_total", "Vectorized batches processed.", func() float64 {
		return float64(db.ColumnarCounters().Batches)
	})
	batchHist := m.Histogram("pi2_engine_batch_rows",
		"Rows per vectorized batch.", []float64{64, 256, 512, 1024})
	db.OnBatch(func(rows int) {
		batchHist.Observe(float64(rows))
	})
	o.engineCol = db.ColumnarCounters

	// Live-table instruments: append traffic, changelog retention, and
	// per-table invalidation counters. The table label set is closed at
	// registration time (mirrors servedEndpoints: labels minted from runtime
	// state would be unbounded) — tables added after startup are still
	// counted in the aggregate append counters, just not per-label.
	m.CounterFunc("pi2_engine_appends_total", "Append batches committed to live tables.", func() float64 {
		return float64(db.AppendCounters().Appends)
	})
	m.CounterFunc("pi2_engine_append_rows_total", "Rows appended to live tables.", func() float64 {
		return float64(db.AppendCounters().Rows)
	})
	m.GaugeFunc("pi2_engine_changelog_depth", "Change batches currently retained in the in-memory changelog.", func() float64 {
		return float64(db.ChangelogDepth())
	})
	for _, name := range db.TableNames() {
		name := name
		m.CounterFunc("pi2_engine_table_invalidations_total", "Cache invalidations caused by writes, by table.", func() float64 {
			return float64(db.InvalidationCount(name))
		}, "table", name)
	}
	o.engineApp = db.AppendCounters
}

// RegisterServingMetrics exposes a Registry's session and cache counters on
// m as func-backed metrics, read from the same atomics /stats reports — no
// double counting, no extra bookkeeping on the serving path. Either nil is
// a no-op.
func RegisterServingMetrics(m *obs.Registry, reg *Registry) {
	if m == nil || reg == nil {
		return
	}
	m.GaugeFunc("pi2_sessions_live", "Sessions currently resident in the registry.", func() float64 {
		return float64(reg.Stats().LiveSessions)
	})
	m.CounterFunc("pi2_sessions_created_total", "Sessions built by the factory.", func() float64 {
		return float64(reg.Stats().Created)
	})
	m.CounterFunc("pi2_sessions_hits_total", "Acquires answered by a live session.", func() float64 {
		return float64(reg.Stats().Hits)
	})
	m.CounterFunc("pi2_sessions_evicted_total", "Sessions evicted from the registry.", func() float64 {
		return float64(reg.Stats().EvictedLRU)
	}, "reason", "lru")
	m.CounterFunc("pi2_sessions_evicted_total", "Sessions evicted from the registry.", func() float64 {
		return float64(reg.Stats().ExpiredTTL)
	}, "reason", "ttl")
	m.GaugeFunc("pi2_shared_plans", "Compiled plans resident in the shared cross-session cache.", func() float64 {
		return float64(reg.Stats().SharedPlans)
	})
	m.CounterFunc("pi2_plan_compiles_total", "Queries compiled by the shared plan cache.", func() float64 {
		return float64(reg.Stats().PlanCompiles)
	})
	registerCacheMetrics(m, func() CacheStats { return reg.Stats().Cache })
}

// RegisterSessionMetrics is RegisterServingMetrics for single-session mode.
func RegisterSessionMetrics(m *obs.Registry, s *Session) {
	if m == nil || s == nil {
		return
	}
	registerCacheMetrics(m, s.Stats)
}

func registerCacheMetrics(m *obs.Registry, stats func() CacheStats) {
	hit := func(layer string, f func(CacheStats) uint64) {
		m.CounterFunc("pi2_cache_hits_total", "Interaction-cache hits, by layer.", func() float64 {
			return float64(f(stats()))
		}, "layer", layer)
	}
	miss := func(layer string, f func(CacheStats) uint64) {
		m.CounterFunc("pi2_cache_misses_total", "Interaction-cache misses, by layer.", func() float64 {
			return float64(f(stats()))
		}, "layer", layer)
	}
	hit("result", func(c CacheStats) uint64 { return c.ResultHits })
	miss("result", func(c CacheStats) uint64 { return c.ResultMisses })
	hit("plan", func(c CacheStats) uint64 { return c.PlanHits })
	miss("plan", func(c CacheStats) uint64 { return c.PlanMisses })
	m.CounterFunc("pi2_cache_invalidations_total", "Cache flushes triggered by DB mutation.", func() float64 {
		return float64(stats().Invalidations)
	})
}
