package iface

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"pi2/internal/widget"
)

// Server serves a generated interface as a live web application: widgets
// render as HTML forms, manipulations post back, the Session rebinds and
// re-executes the underlying queries (via the session's interaction cache),
// and the page re-renders — the browser/server/database stack the paper's
// generated interfaces deploy to, built on net/http alone.
//
// Concurrency is handled per session: every Session method takes the
// session's own mutex, so concurrent HTTP requests against the same session
// serialize on its state while leaving other sessions untouched.
type Server struct {
	sess *Session
}

// NewServer wraps a session.
func NewServer(sess *Session) *Server { return &Server{sess: sess} }

// Handler returns the http.Handler serving the interface.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", sv.handleIndex)
	mux.HandleFunc("/widget", sv.handleWidget)
	mux.HandleFunc("/interact", sv.handleInteract)
	mux.HandleFunc("/reset", sv.handleReset)
	mux.HandleFunc("/sql", sv.handleSQL)
	mux.HandleFunc("/stats", sv.handleStats)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	return mux
}

// handleHealthz is the liveness/readiness probe: it answers without taking
// the session lock, so a long-running interaction cannot fail a health
// check, and load balancers can poll it cheaply.
func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (sv *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	page, err := sv.renderPage()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// handleWidget applies a widget manipulation: ?id=w0&option=1, ?id=w0&value=3,
// ?id=w0&on=true, ?id=w0&lo=1&hi=5, ?id=w0&checked=0,2.
func (sv *Server) handleWidget(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := r.Form.Get("id")
	var err error
	switch {
	case r.Form.Get("option") != "":
		var opt int
		opt, err = strconv.Atoi(r.Form.Get("option"))
		if err == nil {
			err = sv.sess.SetOption(id, opt)
		}
	case r.Form.Get("value") != "":
		var v float64
		v, err = strconv.ParseFloat(r.Form.Get("value"), 64)
		if err == nil {
			err = sv.sess.SetSlider(id, v)
		} else {
			err = sv.sess.SetText(id, r.Form.Get("value"))
		}
	case r.Form.Get("text") != "":
		err = sv.sess.SetText(id, r.Form.Get("text"))
	case r.Form.Get("on") != "":
		err = sv.sess.SetToggle(id, r.Form.Get("on") == "true")
	case r.Form.Get("lo") != "" && r.Form.Get("hi") != "":
		var lo, hi float64
		lo, err = strconv.ParseFloat(r.Form.Get("lo"), 64)
		if err == nil {
			hi, err = strconv.ParseFloat(r.Form.Get("hi"), 64)
		}
		if err == nil {
			err = sv.sess.SetRange(id, lo, hi)
		}
	case r.Form.Get("checked") != "":
		var idxs []int
		for _, p := range strings.Split(r.Form.Get("checked"), ",") {
			var i int
			if i, err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
				break
			}
			idxs = append(idxs, i)
		}
		if err == nil {
			err = sv.sess.SetChecked(id, idxs)
		}
	default:
		err = fmt.Errorf("no manipulation parameter")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// handleInteract applies a visualization interaction:
// ?vis=vis0&kind=brush-x&bounds=10,50  or ?vis=vis0&kind=click&row=3 or
// ?vis=vis0&kind=brush-x&clear=1.
func (sv *Server) handleInteract(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	visID := r.Form.Get("vis")
	kind := r.Form.Get("kind")
	var err error
	switch {
	case r.Form.Get("clear") != "":
		err = sv.sess.ClearBrush(visID, kind)
	case r.Form.Get("row") != "":
		var row int
		row, err = strconv.Atoi(r.Form.Get("row"))
		if err == nil {
			err = sv.sess.Click(visID, row)
		}
	case r.Form.Get("bounds") != "":
		bounds := strings.Split(r.Form.Get("bounds"), ",")
		for i := range bounds {
			bounds[i] = strings.TrimSpace(bounds[i])
		}
		err = sv.sess.Brush(visID, kind, bounds...)
	default:
		err = fmt.Errorf("no interaction parameter")
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (sv *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if err := sv.sess.ApplyQuery(0); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// handleSQL reports the current bound SQL of every tree (text/plain). The
// snapshot is taken under a single session lock so concurrent
// manipulations cannot tear it across trees.
func (sv *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for ti, ts := range sv.sess.CurrentSQLAll() {
		if ts.Err != nil {
			fmt.Fprintf(w, "tree %d: error: %v\n", ti, ts.Err)
			continue
		}
		fmt.Fprintf(w, "tree %d: %s\n", ti, ts.SQL)
	}
}

// handleStats reports interaction-cache counters as JSON, for monitoring
// the serving hot path.
func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(sv.sess.Stats())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// renderPage renders the snapshot plus manipulation forms.
func (sv *Server) renderPage() (string, error) {
	snapshot, err := RenderHTML(sv.sess)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	// strip the closing tags so we can append the control panel
	trimmed := strings.Replace(snapshot, "</body></html>", "", 1)
	b.WriteString(trimmed)
	b.WriteString(`<div style="margin-top:16px;border-top:1px solid #ccc;padding-top:8px">`)
	b.WriteString(`<h3>Manipulations</h3>`)
	for _, ws := range sv.sess.Ifc.Widgets {
		fmt.Fprintf(&b, `<form method="POST" action="/widget" style="margin:4px 0">`)
		fmt.Fprintf(&b, `<input type="hidden" name="id" value="%s">`, html.EscapeString(ws.ElemID))
		fmt.Fprintf(&b, `<b>%s</b> (%s) `, html.EscapeString(ws.ElemID), ws.Kind)
		switch ws.Kind {
		case widget.Radio, widget.Dropdown, widget.Button:
			b.WriteString(`<select name="option">`)
			for i, o := range ws.Options {
				fmt.Fprintf(&b, `<option value="%d">%s</option>`, i, html.EscapeString(o))
			}
			b.WriteString(`</select>`)
		case widget.Toggle:
			b.WriteString(`<select name="on"><option value="true">on</option><option value="false">off</option></select>`)
		case widget.Slider:
			fmt.Fprintf(&b, `<input name="value" type="number" step="any" min="%g" max="%g">`, ws.Min, ws.Max)
		case widget.RangeSlider:
			fmt.Fprintf(&b, `<input name="lo" type="number" step="any"> – <input name="hi" type="number" step="any">`)
		case widget.Textbox:
			b.WriteString(`<input name="text" type="text">`)
		case widget.Checkbox, widget.Adder:
			b.WriteString(`<input name="checked" type="text" placeholder="0,2">`)
		}
		b.WriteString(`<button type="submit">apply</button></form>`)
	}
	for _, v := range sv.sess.Ifc.VisInts {
		src := sv.sess.Ifc.Vis[v.SourceVis].ElemID
		fmt.Fprintf(&b, `<form method="POST" action="/interact" style="margin:4px 0">`)
		fmt.Fprintf(&b, `<input type="hidden" name="vis" value="%s"><input type="hidden" name="kind" value="%s">`,
			html.EscapeString(src), html.EscapeString(string(v.Kind)))
		fmt.Fprintf(&b, `<b>%s on %s</b> → tree %d `, v.Kind, html.EscapeString(src), v.Tree)
		switch v.Kind {
		case "click", "multiclick":
			b.WriteString(`row <input name="row" type="number" min="0">`)
		default:
			b.WriteString(`bounds <input name="bounds" type="text" placeholder="lo,hi[,lo2,hi2]">`)
		}
		b.WriteString(`<button type="submit">apply</button></form>`)
	}
	b.WriteString(`<form method="POST" action="/reset"><button type="submit">reset to first query</button></form>`)
	b.WriteString(`<p><a href="/sql">current SQL</a></p>`)
	b.WriteString(`</div></body></html>`)
	return b.String(), nil
}
