package iface

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"pi2/internal/engine"
	"pi2/internal/ingest"
	"pi2/internal/obs"
	"pi2/internal/widget"
)

// Server serves a generated interface as a live web application: widgets
// render as HTML forms, manipulations post back, the Session rebinds and
// re-executes the underlying queries (via the session's interaction cache),
// and the page re-renders — the browser/server/database stack the paper's
// generated interfaces deploy to, built on net/http alone.
//
// In registry mode (NewRegistryServer) the server is multi-tenant: each
// request is routed to a per-user Session picked by the session-key
// protocol below, sessions are created on demand, and /stats reports the
// registry aggregate. In single-session mode (NewServer) every request
// shares one Session — the original one-user deployment, kept for embedding
// and tests.
//
// Session-key protocol: a request addresses its session with the `session`
// form/query parameter if present, else with the `pi2session` cookie; a
// request carrying neither is assigned a fresh random key via Set-Cookie
// (HttpOnly, SameSite=Lax — the key is the session's sole credential).
// Keys are 1–64 characters of [A-Za-z0-9._~-]; anything else is a 400.
// Redirects after manipulations propagate an explicitly passed key in the
// URL so cookie-less clients (curl, tests, load generators) stay on their
// session. Sessions are created by the page ("/") and by well-formed
// manipulations; malformed manipulations are rejected before any session
// is acquired, and the read-only /sql never creates one (unknown key →
// 404) — so garbage traffic cannot churn creation or evict live users.
//
// Concurrency is handled per session: every Session method takes the
// session's own mutex, so concurrent requests against the same session
// serialize on its state while leaving other sessions untouched.
type Server struct {
	reg    *Registry
	single *Session
	obs    *ServerObs // nil: no metrics, no tracing, no /metrics route
	ingest *engine.DB // nil: no /ingest route
}

// NewServer wraps a single session: every request addresses it, session
// keys are ignored.
func NewServer(sess *Session) *Server { return &Server{single: sess} }

// NewRegistryServer serves per-user sessions out of a registry.
func NewRegistryServer(reg *Registry) *Server { return &Server{reg: reg} }

// WithObs attaches serving observability (request metrics, traces, slow
// log) and enables the /metrics route. Call before Handler. Returns sv for
// chaining; a nil o leaves the server uninstrumented.
func (sv *Server) WithObs(o *ServerObs) *Server {
	sv.obs = o
	return sv
}

// WithIngest enables the write path: POST /ingest appends NDJSON rows to
// db's live tables. Call before Handler with the same DB the sessions
// serve. Returns sv for chaining; a nil db leaves the server read-only.
func (sv *Server) WithIngest(db *engine.DB) *Server {
	sv.ingest = db
	return sv
}

// errStatus maps a request-time execution error to its HTTP status. A stale
// plan is not a server fault: a live writer moved a table between plan
// resolution and execution faster than the bounded retries could catch up,
// and the client should simply retry — 409 Conflict, not 500.
func errStatus(err error) int {
	if errors.Is(err, engine.ErrStalePlan) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// Handler returns the http.Handler serving the interface. With observability
// attached every route is wrapped in the tracing/metrics middleware and
// /metrics is served; without it the routes are bare — no trace, no
// timestamps, not even a nil check per request.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", sv.obs.wrap("/", sv.handleIndex))
	mux.HandleFunc("/widget", sv.obs.wrap("/widget", sv.handleWidget))
	mux.HandleFunc("/interact", sv.obs.wrap("/interact", sv.handleInteract))
	mux.HandleFunc("/reset", sv.obs.wrap("/reset", sv.handleReset))
	mux.HandleFunc("/sql", sv.obs.wrap("/sql", sv.handleSQL))
	if sv.ingest != nil {
		mux.HandleFunc("/ingest", sv.obs.wrap("/ingest", sv.handleIngest))
	}
	mux.HandleFunc("/stats", sv.obs.wrap("/stats", sv.handleStats))
	mux.HandleFunc("/healthz", sv.obs.wrap("/healthz", sv.handleHealthz))
	if sv.obs != nil {
		mux.HandleFunc("/metrics", sv.obs.wrap("/metrics", sv.handleMetrics))
	}
	return mux
}

// handleMetrics serves the Prometheus text exposition. Reads go through the
// same atomics the record path writes, so a scrape never blocks serving.
func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	sv.obs.Metrics.WritePrometheus(w)
}

// sessionCookie names the cookie carrying a browser's session key.
const sessionCookie = "pi2session"

// validSessionKey accepts 1–64 characters of [A-Za-z0-9._~-] (the URL
// "unreserved" set): enough for generated hex keys and human-chosen names,
// and safe to echo into cookies, URLs, and HTML attributes.
func validSessionKey(key string) bool {
	if len(key) == 0 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '~' || c == '-':
		default:
			return false
		}
	}
	return true
}

func newSessionKey() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; keys only need to be
		// distinct per browser, so a fixed fallback still serves (as one
		// shared session) rather than crashing the server.
		return "fallback"
	}
	return hex.EncodeToString(b[:])
}

// sessionFor resolves the session a request addresses and reports the key
// to propagate (empty in single-session mode) plus whether the client named
// it explicitly in the request parameters. On failure it writes the HTTP
// error — bad keys are the client's fault (400), a draining registry is
// unavailability (503) — and returns ok=false.
func (sv *Server) sessionFor(w http.ResponseWriter, r *http.Request) (sess *Session, key string, explicit bool, ok bool) {
	if sv.single != nil {
		return sv.single, "", false, true
	}
	key = r.FormValue("session")
	explicit = key != ""
	fromCookie := false
	if key == "" {
		if c, err := r.Cookie(sessionCookie); err == nil {
			key, fromCookie = c.Value, true
		}
	}
	generated := key == ""
	if generated {
		key = newSessionKey()
	}
	if !validSessionKey(key) {
		if fromCookie {
			// An unusable cookie would otherwise 400 the client forever;
			// replace it with a fresh session instead.
			key, generated = newSessionKey(), true
		} else {
			http.Error(w, "invalid session key", http.StatusBadRequest)
			return nil, "", false, false
		}
	}
	sess, err := sv.reg.Acquire(key)
	if err != nil {
		if errors.Is(err, ErrRegistryClosed) {
			http.Error(w, "server is shutting down", http.StatusServiceUnavailable)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return nil, "", false, false
	}
	if generated {
		// The key is the session's sole credential: keep it away from
		// scripts and cross-site form posts.
		http.SetCookie(w, &http.Cookie{
			Name: sessionCookie, Value: key, Path: "/",
			HttpOnly: true, SameSite: http.SameSiteLaxMode,
		})
	}
	return sess, key, explicit, true
}

// requestKey resolves the session key a request addresses (parameter, then
// cookie) without creating anything. ok is false when the key is missing
// or malformed.
func (sv *Server) requestKey(r *http.Request) (key string, ok bool) {
	key = r.FormValue("session")
	if key == "" {
		if c, err := r.Cookie(sessionCookie); err == nil {
			key = c.Value
		}
	}
	return key, validSessionKey(key)
}

// redirectTarget keeps an explicitly addressed session on its key across
// the post/redirect/get cycle; cookie-addressed sessions need nothing in
// the URL.
func redirectTarget(key string, explicit bool) string {
	if explicit {
		return "/?session=" + url.QueryEscape(key)
	}
	return "/"
}

// handleHealthz is the liveness/readiness probe: it answers without taking
// any session or registry lock, so a long-running interaction cannot fail a
// health check, and load balancers can poll it cheaply.
func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (sv *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	var end func()
	if tr != nil {
		end = tr.Span("acquire")
	}
	sess, key, explicit, ok := sv.sessionFor(w, r)
	if end != nil {
		end()
	}
	if !ok {
		return
	}
	if !explicit {
		key = "" // cookie-bound: keep session keys out of forms and URLs
	}
	if tr != nil {
		// Pre-execute the trees with the trace attached so plan/exec spans
		// attribute to this request; renderPage's own Results call then hits
		// the result cache.
		if _, err := sess.ResultsTraced(tr); err != nil {
			http.Error(w, err.Error(), errStatus(err))
			return
		}
		end = tr.Span("render")
	}
	page, err := sv.renderPage(sess, key)
	if end != nil {
		end()
	}
	if err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// widgetAction decodes a widget manipulation (?id=w0&option=1,
// ?id=w0&value=3, ?id=w0&on=true, ?id=w0&lo=1&hi=5, ?id=w0&checked=0,2)
// into a deferred application. Decoding happens before any session is
// acquired, so malformed requests are rejected without ever creating a
// session (or evicting a live user's to make room for one).
func widgetAction(form url.Values) (func(*Session) error, error) {
	id := form.Get("id")
	switch {
	case form.Get("option") != "":
		opt, err := strconv.Atoi(form.Get("option"))
		if err != nil {
			return nil, err
		}
		return func(s *Session) error { return s.SetOption(id, opt) }, nil
	case form.Get("value") != "":
		if v, err := strconv.ParseFloat(form.Get("value"), 64); err == nil {
			return func(s *Session) error { return s.SetSlider(id, v) }, nil
		}
		return func(s *Session) error { return s.SetText(id, form.Get("value")) }, nil
	case form.Get("text") != "":
		return func(s *Session) error { return s.SetText(id, form.Get("text")) }, nil
	case form.Get("on") != "":
		on := form.Get("on") == "true"
		return func(s *Session) error { return s.SetToggle(id, on) }, nil
	case form.Get("lo") != "" && form.Get("hi") != "":
		lo, err := strconv.ParseFloat(form.Get("lo"), 64)
		if err != nil {
			return nil, err
		}
		hi, err := strconv.ParseFloat(form.Get("hi"), 64)
		if err != nil {
			return nil, err
		}
		return func(s *Session) error { return s.SetRange(id, lo, hi) }, nil
	case form.Get("checked") != "":
		var idxs []int
		for _, p := range strings.Split(form.Get("checked"), ",") {
			i, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			idxs = append(idxs, i)
		}
		return func(s *Session) error { return s.SetChecked(id, idxs) }, nil
	}
	return nil, fmt.Errorf("no manipulation parameter")
}

// interactAction decodes a visualization interaction
// (?vis=vis0&kind=brush-x&bounds=10,50, ?vis=vis0&kind=click&row=3,
// ?vis=vis0&kind=brush-x&clear=1) into a deferred application; same
// decode-before-acquire contract as widgetAction.
func interactAction(form url.Values) (func(*Session) error, error) {
	visID := form.Get("vis")
	kind := form.Get("kind")
	switch {
	case form.Get("clear") != "":
		return func(s *Session) error { return s.ClearBrush(visID, kind) }, nil
	case form.Get("row") != "":
		row, err := strconv.Atoi(form.Get("row"))
		if err != nil {
			return nil, err
		}
		return func(s *Session) error { return s.Click(visID, row) }, nil
	case form.Get("bounds") != "":
		bounds := strings.Split(form.Get("bounds"), ",")
		for i := range bounds {
			bounds[i] = strings.TrimSpace(bounds[i])
		}
		return func(s *Session) error { return s.Brush(visID, kind, bounds...) }, nil
	}
	return nil, fmt.Errorf("no interaction parameter")
}

// handleManipulation is the shared skeleton of /widget and /interact:
// parse, decode (reject garbage before touching the registry), resolve the
// session, apply, redirect.
func (sv *Server) handleManipulation(w http.ResponseWriter, r *http.Request,
	decode func(url.Values) (func(*Session) error, error)) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	apply, err := decode(r.Form)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr := obs.FromContext(r.Context())
	var end func()
	if tr != nil {
		end = tr.Span("acquire")
	}
	sess, key, explicit, ok := sv.sessionFor(w, r)
	if end != nil {
		end()
	}
	if !ok {
		return
	}
	if tr != nil {
		end = tr.Span("apply")
	}
	err = apply(sess)
	if end != nil {
		end()
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, redirectTarget(key, explicit), http.StatusSeeOther)
}

func (sv *Server) handleWidget(w http.ResponseWriter, r *http.Request) {
	sv.handleManipulation(w, r, widgetAction)
}

func (sv *Server) handleInteract(w http.ResponseWriter, r *http.Request) {
	sv.handleManipulation(w, r, interactAction)
}

func (sv *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	sess, key, explicit, ok := sv.sessionFor(w, r)
	if !ok {
		return
	}
	if err := sess.ApplyQuery(0); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	http.Redirect(w, r, redirectTarget(key, explicit), http.StatusSeeOther)
}

// handleSQL reports the current bound SQL of every tree (text/plain). The
// snapshot is taken under a single session lock so concurrent
// manipulations cannot tear it across trees. Read-only, so it never
// creates a session: an unknown or absent key is a 404, and scrapes can
// neither churn creation nor evict a live user.
//
// With ?explain=plan each tree's compiled plan is rendered without running
// it (plan-only EXPLAIN): access paths with statistics estimates, join
// strategy and build sides, predicate placement. With any other non-zero
// ?explain value each tree is re-executed with per-operator profiling
// (EXPLAIN ANALYZE): the report shows rows in/out and wall time for every
// physical operator the plan ran. The profiled run bypasses the result
// cache — that is the point — but leaves serving state untouched.
func (sv *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	sess := sv.single
	if sess == nil {
		key, ok := sv.requestKey(r)
		if key == "" {
			http.Error(w, "no session addressed", http.StatusNotFound)
			return
		}
		if !ok {
			http.Error(w, "invalid session key", http.StatusBadRequest)
			return
		}
		s, live := sv.reg.Lookup(key)
		if !live {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		sess = s
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.FormValue("explain") == "plan" {
		sv.explainAll(w, sess, func(ti int) (string, string, error) { return sess.ExplainPlan(ti) })
		return
	}
	if ex := r.FormValue("explain"); ex != "" && ex != "0" {
		sv.explainAll(w, sess, func(ti int) (string, string, error) {
			sql, prof, err := sess.ExplainAnalyze(ti)
			if err != nil {
				return "", "", err
			}
			return sql, fmt.Sprint(prof), nil
		})
		return
	}
	for ti, ts := range sess.CurrentSQLAll() {
		if ts.Err != nil {
			fmt.Fprintf(w, "tree %d: error: %v\n", ti, ts.Err)
			continue
		}
		fmt.Fprintf(w, "tree %d: %s\n", ti, ts.SQL)
	}
}

// explainAll runs one explain variant over every tree, buffering the report
// so the status line can still reflect a stale-plan loss: if a live writer
// outpaced the bounded re-prepare retries on any tree, the whole report is
// a 409 (retry and it will almost certainly win) rather than a 500 — the
// server did nothing wrong. Other per-tree errors keep the seed behavior:
// inline in a 200 body, since partial explain output is still useful.
func (sv *Server) explainAll(w http.ResponseWriter, sess *Session, explain func(int) (string, string, error)) {
	var buf strings.Builder
	stale := false
	for ti := range sess.Ifc.State.Trees {
		sql, text, err := explain(ti)
		if err != nil {
			stale = stale || errors.Is(err, engine.ErrStalePlan)
			fmt.Fprintf(&buf, "tree %d: error: %v\n\n", ti, err)
			continue
		}
		fmt.Fprintf(&buf, "tree %d: %s\n%s\n", ti, sql, text)
	}
	if stale {
		w.WriteHeader(http.StatusConflict)
	}
	fmt.Fprint(w, buf.String())
}

// maxIngestBytes bounds one /ingest request body (32 MiB). Live appends are
// meant to be incremental; bulk loads belong in the offline ingest CLI.
const maxIngestBytes = 32 << 20

// handleIngest is the write path: POST /ingest?table=name with an NDJSON
// body (one flat object per line, keys addressing the table's columns)
// appends the decoded rows to the live table and reports the new global
// generation. Decoding is all-or-nothing — a bad line rejects the whole
// batch with a 400 before anything is written — so a client never has to
// guess how much of a failed batch landed. Sessions notice the write via
// per-table generations: only plans and cached results that read the
// written table re-execute; everything else stays hot.
func (sv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// The table name rides in the query string on purpose: FormValue would
	// swallow the body as form data.
	name := r.URL.Query().Get("table")
	if name == "" {
		http.Error(w, "missing table parameter", http.StatusBadRequest)
		return
	}
	tbl, ok := sv.ingest.Table(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no such table %q", name), http.StatusNotFound)
		return
	}
	rows, err := ingest.DecodeRows(http.MaxBytesReader(w, r.Body, maxIngestBytes), tbl)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := sv.ingest.Append(tbl.Name, rows); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(struct {
		Table      string `json:"table"`
		Rows       int    `json:"rows"`
		Generation uint64 `json:"generation"`
	}{tbl.Name, len(rows), sv.ingest.Generation()})
	w.Write(append(body, '\n'))
}

// handleStats reports the serving counters as JSON: the registry aggregate
// (occupancy, evictions, summed per-session cache traffic) in registry
// mode, the single session's CacheStats otherwise. Per-session counters are
// atomics and the registry takes only its read lock, so /stats never waits
// on an in-flight interaction.
//
// With observability attached the object gains uptime_seconds, in_flight,
// and a per-endpoint requests map. The pre-existing fields are embedded
// first, so the byte prefix of the JSON is identical to the uninstrumented
// encoding — pinned by TestStatsJSONByteCompatible.
func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var v any
	if sv.reg != nil {
		v = sv.reg.Stats()
	} else {
		v = sv.single.Stats()
	}
	if sv.obs != nil {
		up, inflight, reqs := sv.obs.statsExt()
		// Index is appended after the pre-existing fields (and omitted when
		// the engine is not observed), so the JSON prefix stays identical.
		ext := struct {
			UptimeSeconds float64                  `json:"uptime_seconds"`
			InFlight      int64                    `json:"in_flight"`
			Requests      map[string]uint64        `json:"requests"`
			Index         *engine.IndexCounters    `json:"index,omitempty"`
			Columnar      *engine.ColumnarCounters `json:"columnar,omitempty"`
			Append        *engine.AppendCounters   `json:"append,omitempty"`
		}{up, inflight, reqs, nil, nil, nil}
		if sv.obs.engineIdx != nil {
			ic := sv.obs.engineIdx()
			ext.Index = &ic
		}
		if sv.obs.engineCol != nil {
			cc := sv.obs.engineCol()
			ext.Columnar = &cc
		}
		if sv.obs.engineApp != nil {
			ac := sv.obs.engineApp()
			ext.Append = &ac
		}
		if sv.reg != nil {
			v = struct {
				RegistryStats
				X any `json:"obs"`
			}{v.(RegistryStats), ext}
		} else {
			v = struct {
				CacheStats
				X any `json:"obs"`
			}{v.(CacheStats), ext}
		}
	}
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// renderPage renders the snapshot plus manipulation forms. A non-empty key
// is embedded as a hidden field in every form (and in the reset/SQL links)
// so explicitly addressed sessions survive the round trip.
func (sv *Server) renderPage(sess *Session, key string) (string, error) {
	snapshot, err := RenderHTML(sess)
	if err != nil {
		return "", err
	}
	sessionField := ""
	if key != "" {
		sessionField = fmt.Sprintf(`<input type="hidden" name="session" value="%s">`, html.EscapeString(key))
	}
	var b strings.Builder
	// strip the closing tags so we can append the control panel
	trimmed := strings.Replace(snapshot, "</body></html>", "", 1)
	b.WriteString(trimmed)
	b.WriteString(`<div style="margin-top:16px;border-top:1px solid #ccc;padding-top:8px">`)
	b.WriteString(`<h3>Manipulations</h3>`)
	for _, ws := range sess.Ifc.Widgets {
		fmt.Fprintf(&b, `<form method="POST" action="/widget" style="margin:4px 0">`)
		b.WriteString(sessionField)
		fmt.Fprintf(&b, `<input type="hidden" name="id" value="%s">`, html.EscapeString(ws.ElemID))
		fmt.Fprintf(&b, `<b>%s</b> (%s) `, html.EscapeString(ws.ElemID), ws.Kind)
		switch ws.Kind {
		case widget.Radio, widget.Dropdown, widget.Button:
			b.WriteString(`<select name="option">`)
			for i, o := range ws.Options {
				fmt.Fprintf(&b, `<option value="%d">%s</option>`, i, html.EscapeString(o))
			}
			b.WriteString(`</select>`)
		case widget.Toggle:
			b.WriteString(`<select name="on"><option value="true">on</option><option value="false">off</option></select>`)
		case widget.Slider:
			fmt.Fprintf(&b, `<input name="value" type="number" step="any" min="%g" max="%g">`, ws.Min, ws.Max)
		case widget.RangeSlider:
			fmt.Fprintf(&b, `<input name="lo" type="number" step="any"> – <input name="hi" type="number" step="any">`)
		case widget.Textbox:
			b.WriteString(`<input name="text" type="text">`)
		case widget.Checkbox, widget.Adder:
			b.WriteString(`<input name="checked" type="text" placeholder="0,2">`)
		}
		b.WriteString(`<button type="submit">apply</button></form>`)
	}
	for _, v := range sess.Ifc.VisInts {
		src := sess.Ifc.Vis[v.SourceVis].ElemID
		fmt.Fprintf(&b, `<form method="POST" action="/interact" style="margin:4px 0">`)
		b.WriteString(sessionField)
		fmt.Fprintf(&b, `<input type="hidden" name="vis" value="%s"><input type="hidden" name="kind" value="%s">`,
			html.EscapeString(src), html.EscapeString(string(v.Kind)))
		fmt.Fprintf(&b, `<b>%s on %s</b> → tree %d `, v.Kind, html.EscapeString(src), v.Tree)
		switch v.Kind {
		case "click", "multiclick":
			b.WriteString(`row <input name="row" type="number" min="0">`)
		default:
			b.WriteString(`bounds <input name="bounds" type="text" placeholder="lo,hi[,lo2,hi2]">`)
		}
		b.WriteString(`<button type="submit">apply</button></form>`)
	}
	fmt.Fprintf(&b, `<form method="POST" action="/reset">%s<button type="submit">reset to first query</button></form>`, sessionField)
	sqlHref := "/sql"
	if key != "" {
		sqlHref += "?session=" + url.QueryEscape(key)
	}
	fmt.Fprintf(&b, `<p><a href="%s">current SQL</a></p>`, sqlHref)
	b.WriteString(`</div></body></html>`)
	return b.String(), nil
}
