// Package experiment regenerates the paper's evaluation artifacts
// (§7, Figures 14–19 and the scalability study). Each experiment prints the
// same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/workload"
)

// Env bundles the shared database and catalogue.
type Env struct {
	DB  *engine.DB
	Cat *catalog.Catalog
}

// NewEnv builds the standard environment.
func NewEnv() *Env {
	db := dataset.NewDB()
	return &Env{DB: db, Cat: catalog.Build(db, dataset.Keys())}
}

// Run is one generation run under one parameter condition.
type Run struct {
	Log        string
	ES, P, S   int
	Seed       int64
	SearchTime time.Duration
	MapTime    time.Duration
	Cost       float64
	Iterations int
	Charts     int
	Widgets    int
	VisInts    int
}

// Total returns the end-to-end generation time.
func (r Run) Total() time.Duration { return r.SearchTime + r.MapTime }

// RunOnce generates an interface for the log under (es, p, s).
func (e *Env) RunOnce(log workload.Log, es, p, s int, seed int64) (Run, *core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.Search.EarlyStop = es
	cfg.Search.Workers = p
	cfg.Search.SyncInterval = s
	cfg.Search.Seed = seed
	res, err := core.Generate(log.Queries, e.DB, e.Cat, cfg)
	if err != nil {
		return Run{}, nil, err
	}
	return Run{
		Log: log.Name, ES: es, P: p, S: s, Seed: seed,
		SearchTime: res.SearchTime, MapTime: res.MapTime,
		Cost:       res.Interface.Cost,
		Iterations: res.Iterations,
		Charts:     len(res.Interface.Vis),
		Widgets:    len(res.Interface.Widgets),
		VisInts:    len(res.Interface.VisInts),
	}, res, nil
}

// Quality computes the paper's interface-quality metric c*/c per run,
// where c* is the minimum cost observed for the run's log across all
// evaluated conditions (1 = optimal, lower = worse).
func Quality(runs []Run) map[int]float64 {
	best := map[string]float64{}
	for _, r := range runs {
		if b, ok := best[r.Log]; !ok || r.Cost < b {
			best[r.Log] = r.Cost
		}
	}
	out := map[int]float64{}
	for i, r := range runs {
		if r.Cost > 0 {
			out[i] = best[r.Log] / r.Cost
		}
	}
	return out
}

// Figure16 sweeps (es, s, p) over the given logs and reports the
// runtime-quality trade-off (paper Figure 16). full widens the grid to the
// paper's resolution.
func Figure16(w io.Writer, e *Env, logs []workload.Log, full bool) []Run {
	esGrid := []int{5, 30, 100}
	sGrid := []int{5, 10, 50}
	pGrid := []int{1, 3}
	if full {
		esGrid, sGrid = nil, nil
		for v := 5; v <= 100; v += 5 {
			esGrid = append(esGrid, v)
			sGrid = append(sGrid, v)
		}
		pGrid = []int{1, 2, 3, 4}
	}
	var runs []Run
	for _, log := range logs {
		for _, es := range esGrid {
			for _, s := range sGrid {
				for _, p := range pGrid {
					r, _, err := e.RunOnce(log, es, p, s, 1)
					if err != nil {
						fmt.Fprintf(w, "# %s es=%d s=%d p=%d: %v\n", log.Name, es, s, p, err)
						continue
					}
					runs = append(runs, r)
				}
			}
		}
	}
	q := Quality(runs)
	fmt.Fprintln(w, "log\tes\ts\tp\truntime_ms\tquality")
	for i, r := range runs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.3f\n",
			r.Log, r.ES, r.S, r.P, float64(r.Total().Microseconds())/1000, q[i])
	}
	return runs
}

// Figure17 varies each parameter independently and reports MCTS time,
// mapping time, and quality (paper Figure 17; rows = metrics, cols =
// parameters) for Explore, Filter and Covid.
func Figure17(w io.Writer, e *Env) []Run {
	logs := []workload.Log{workload.Explore(), workload.Filter(), workload.Covid()}
	type cond struct {
		name     string
		es, p, s int
	}
	var conds []cond
	for _, es := range []int{5, 15, 30, 60, 100} {
		conds = append(conds, cond{"early-stop", es, 3, 10})
	}
	for _, p := range []int{1, 2, 3, 4} {
		conds = append(conds, cond{"parallelism", 30, p, 10})
	}
	for _, s := range []int{5, 10, 30, 60, 100} {
		conds = append(conds, cond{"sync-interval", 30, 3, s})
	}
	var runs []Run
	fmt.Fprintln(w, "param\tvalue\tlog\tmcts_ms\tmap_ms\tcost")
	for _, c := range conds {
		for _, log := range logs {
			r, _, err := e.RunOnce(log, c.es, c.p, c.s, 1)
			if err != nil {
				continue
			}
			runs = append(runs, r)
			val := c.es
			if c.name == "parallelism" {
				val = c.p
			} else if c.name == "sync-interval" {
				val = c.s
			}
			fmt.Fprintf(w, "%s\t%d\t%s\t%.1f\t%.1f\t%.0f\n",
				c.name, val, log.Name,
				float64(r.SearchTime.Microseconds())/1000,
				float64(r.MapTime.Microseconds())/1000, r.Cost)
		}
	}
	// quality per condition relative to the best seen per log
	q := Quality(runs)
	fmt.Fprintln(w, "# quality per run")
	for i, r := range runs {
		fmt.Fprintf(w, "# %s es=%d p=%d s=%d quality=%.3f\n", r.Log, r.ES, r.P, r.S, q[i])
	}
	return runs
}

// Scalability duplicates the Filter log and reports runtime versus query
// count (§7.3: "runtime increases roughly linearly from a few seconds to
// ≈2000s for 900 queries" on the paper's hardware).
func Scalability(w io.Writer, e *Env, factors []int) []Run {
	base := workload.Filter()
	var runs []Run
	fmt.Fprintln(w, "queries\truntime_ms\tmcts_ms\tmap_ms")
	for _, f := range factors {
		log := workload.Log{Name: fmt.Sprintf("Filter×%d", f)}
		for i := 0; i < f; i++ {
			log.Queries = append(log.Queries, base.Queries...)
		}
		r, _, err := e.RunOnce(log, 30, 3, 10, 1)
		if err != nil {
			fmt.Fprintf(w, "# ×%d: %v\n", f, err)
			continue
		}
		runs = append(runs, r)
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\n",
			len(log.Queries),
			float64(r.Total().Microseconds())/1000,
			float64(r.SearchTime.Microseconds())/1000,
			float64(r.MapTime.Microseconds())/1000)
	}
	return runs
}

// Latency measures default-parameter end-to-end generation for every log
// (the paper's headline: 2–19 s, median 6 s on 4×2.2 GHz VMs).
func Latency(w io.Writer, e *Env) []Run {
	var runs []Run
	fmt.Fprintln(w, "log\truntime_ms\tcharts\twidgets\tvis_interactions\tcost")
	for _, log := range workload.All() {
		r, _, err := e.RunOnce(log, 30, 3, 10, 1)
		if err != nil {
			fmt.Fprintf(w, "# %s: %v\n", log.Name, err)
			continue
		}
		runs = append(runs, r)
		fmt.Fprintf(w, "%s\t%.1f\t%d\t%d\t%d\t%.0f\n",
			r.Log, float64(r.Total().Microseconds())/1000, r.Charts, r.Widgets, r.VisInts, r.Cost)
	}
	if len(runs) > 0 {
		times := make([]time.Duration, len(runs))
		for i, r := range runs {
			times[i] = r.Total()
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		fmt.Fprintf(w, "# min=%v median=%v max=%v\n", times[0], times[len(times)/2], times[len(times)-1])
	}
	return runs
}

// Taxonomy verifies Figure 14's interaction-taxonomy coverage: each of
// Yi et al.'s data-oriented interaction types must appear in the interface
// generated for its workload.
func Taxonomy(w io.Writer, e *Env) map[string]bool {
	out := map[string]bool{}
	check := func(name string, log workload.Log, pred func(*iface.Interface) bool) {
		_, res, err := e.RunOnce(log, 30, 3, 10, 1)
		if err != nil {
			fmt.Fprintf(w, "%s\tERROR: %v\n", name, err)
			out[name] = false
			return
		}
		ok := pred(res.Interface)
		out[name] = ok
		fmt.Fprintf(w, "%s\t%v\t%s\n", name, ok, res.Interface.Summary())
	}
	hasRange := func(ifc *iface.Interface) bool {
		for _, v := range ifc.VisInts {
			switch v.Kind {
			case "pan", "zoom", "brush-x", "brush-y", "brush-xy":
				return true
			}
		}
		return false
	}
	check("Explore(pan/zoom)", workload.Explore(), hasRange)
	check("Abstract(range over dates)", workload.Abstract(), func(ifc *iface.Interface) bool {
		return hasRange(ifc) || len(ifc.Widgets) > 0
	})
	check("Connect(linked selection)", workload.Connect(), func(ifc *iface.Interface) bool {
		for _, v := range ifc.VisInts {
			if v.Kind == "click" || v.Kind == "multiclick" {
				return true
			}
		}
		return false
	})
	check("Filter(cross-filtering)", workload.Filter(), func(ifc *iface.Interface) bool {
		cross := 0
		for _, v := range ifc.VisInts {
			if v.Tree != ifc.Vis[v.SourceVis].Tree {
				cross++
			}
		}
		return cross >= 2 && len(ifc.Vis) >= 3
	})
	return out
}

// CaseStudies verifies Figure 15's three case studies structurally.
func CaseStudies(w io.Writer, e *Env) map[string]bool {
	out := map[string]bool{}
	check := func(name string, log workload.Log, pred func(*iface.Interface) bool) {
		_, res, err := e.RunOnce(log, 30, 3, 10, 1)
		if err != nil {
			fmt.Fprintf(w, "%s\tERROR: %v\n", name, err)
			out[name] = false
			return
		}
		ok := pred(res.Interface)
		out[name] = ok
		fmt.Fprintf(w, "%s\t%v\t%s\n", name, ok, res.Interface.Summary())
	}
	check("SDSS(table+sky scatter)", workload.SDSS(), func(ifc *iface.Interface) bool {
		hasTable, hasScatter := false, false
		for _, v := range ifc.Vis {
			switch v.Mapping.Vis.Type.String() {
			case "table":
				hasTable = true
			case "point":
				hasScatter = true
			}
		}
		return hasTable && hasScatter && len(ifc.VisInts) > 0
	})
	check("Covid(metric/state/interval)", workload.Covid(), func(ifc *iface.Interface) bool {
		return ifc.InteractionCount() >= 3 && len(ifc.Vis) <= 4
	})
	check("Sales(brush-linked dashboard)", workload.Sales(), func(ifc *iface.Interface) bool {
		for _, v := range ifc.VisInts {
			if v.Kind == "brush-x" && v.Tree != ifc.Vis[v.SourceVis].Tree {
				return true
			}
		}
		return false
	})
	return out
}
