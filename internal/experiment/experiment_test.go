package experiment

import (
	"bytes"
	"strings"
	"testing"

	"pi2/internal/workload"
)

func TestRunOnceProducesInterface(t *testing.T) {
	e := NewEnv()
	r, res, err := e.RunOnce(workload.Explore(), 10, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Charts == 0 || res.Interface == nil {
		t.Fatalf("run = %+v", r)
	}
	if r.Total() <= 0 {
		t.Fatal("zero runtime")
	}
}

func TestQualityMetric(t *testing.T) {
	runs := []Run{
		{Log: "A", Cost: 100},
		{Log: "A", Cost: 200},
		{Log: "B", Cost: 50},
	}
	q := Quality(runs)
	if q[0] != 1.0 || q[1] != 0.5 || q[2] != 1.0 {
		t.Fatalf("quality = %v", q)
	}
}

func TestTaxonomyCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := NewEnv()
	var buf bytes.Buffer
	out := Taxonomy(&buf, e)
	for name, ok := range out {
		if !ok {
			t.Errorf("taxonomy check failed: %s\n%s", name, buf.String())
		}
	}
	if len(out) != 4 {
		t.Fatalf("checks = %d, want 4", len(out))
	}
}

func TestCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := NewEnv()
	var buf bytes.Buffer
	out := CaseStudies(&buf, e)
	for name, ok := range out {
		if !ok {
			t.Errorf("case study failed: %s\n%s", name, buf.String())
		}
	}
}

func TestScalabilityRowsAndLinearShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := NewEnv()
	var buf bytes.Buffer
	runs := Scalability(&buf, e, []int{1, 2})
	if len(runs) != 2 {
		t.Fatalf("runs = %d\n%s", len(runs), buf.String())
	}
	if !strings.Contains(buf.String(), "queries") {
		t.Fatal("missing header")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := NewEnv()
	var buf bytes.Buffer
	runs := Ablations(&buf, e, workload.Explore())
	if len(runs) != 5 {
		t.Fatalf("variants = %d\n%s", len(runs), buf.String())
	}
}
