package experiment

import (
	"fmt"
	"io"

	"pi2/internal/core"
	"pi2/internal/workload"
)

// Ablations evaluates the design choices DESIGN.md calls out: safety
// checking on/off (the §7.3 bottleneck), the UCT variance term on/off,
// Cadiaplayer max-reward vs average-reward return, and result-schema
// clustering of the initial state on/off. Reports runtime and final cost
// per variant on the given log.
func Ablations(w io.Writer, e *Env, log workload.Log) []Run {
	type variant struct {
		name string
		mod  func(*core.Config)
	}
	variants := []variant{
		{"baseline", func(c *core.Config) {}},
		{"no-safety", func(c *core.Config) {
			c.Search.MapOpts.CheckSafety = false
			c.Mapping.CheckSafety = false
		}},
		{"no-variance-term", func(c *core.Config) { c.Search.UseVariance = false }},
		{"avg-return", func(c *core.Config) { c.Search.MaxReturn = false }},
		{"no-cluster-init", func(c *core.Config) { c.Search.ClusterInit = false }},
	}
	var runs []Run
	fmt.Fprintln(w, "variant\truntime_ms\tcost\tcharts\tinteractions")
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.Search.EarlyStop = 30
		cfg.Search.Workers = 3
		cfg.Search.SyncInterval = 10
		cfg.Search.Seed = 1
		v.mod(&cfg)
		res, err := core.Generate(log.Queries, e.DB, e.Cat, cfg)
		if err != nil {
			fmt.Fprintf(w, "%s\tERROR: %v\n", v.name, err)
			continue
		}
		r := Run{
			Log:        log.Name + "/" + v.name,
			SearchTime: res.SearchTime, MapTime: res.MapTime,
			Cost:   res.Interface.Cost,
			Charts: len(res.Interface.Vis),
		}
		runs = append(runs, r)
		fmt.Fprintf(w, "%s\t%.1f\t%.0f\t%d\t%d\n",
			v.name, float64(r.Total().Microseconds())/1000, r.Cost,
			len(res.Interface.Vis), res.Interface.InteractionCount())
	}
	return runs
}

// QualitySpread reproduces the appendix's observation (Figures 18–19):
// non-optimal interfaces produced under tight search budgets score close to
// the optimum; quality ≥ 0.85 is "nearly the same as the optimal".
func QualitySpread(w io.Writer, e *Env, log workload.Log) []Run {
	budgets := []int{2, 5, 10, 30, 60}
	var runs []Run
	for _, es := range budgets {
		for seed := int64(1); seed <= 3; seed++ {
			r, _, err := e.RunOnce(log, es, 3, 10, seed)
			if err != nil {
				continue
			}
			runs = append(runs, r)
		}
	}
	q := Quality(runs)
	fmt.Fprintln(w, "early_stop\tseed\tcost\tquality")
	for i, r := range runs {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.3f\n", r.ES, r.Seed, r.Cost, q[i])
	}
	return runs
}
