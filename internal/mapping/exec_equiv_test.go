package mapping

import (
	"reflect"
	"sync"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

// TestPlannedSafetyExecutionMatchesInterpreter is the golden equivalence
// proof for the compiled safety-check path: for every candidate query of
// every built-in workload log, executing the Difftree under each query's
// binding through the ExecCache (Prepare/Plan.Exec, memoized) must produce
// the exact table the interpreted engine.Exec produces on the resolved AST.
func TestPlannedSafetyExecutionMatchesInterpreter(t *testing.T) {
	for _, log := range workload.All() {
		log := log
		t.Run(log.Name, func(t *testing.T) {
			qs, err := sqlparser.ParseAll(log.Queries)
			if err != nil {
				t.Fatal(err)
			}
			ctx := &transform.Context{Queries: qs, Cat: testCat}
			for _, clustered := range []bool{false, true} {
				exec := NewExecCache(testDB)
				s := transform.InitState(ctx, clustered)
				for ti, tree := range s.Trees {
					qb, ok := tree.Bind(ctx)
					if !ok {
						t.Fatalf("tree %d does not bind", ti)
					}
					for qi := range tree.Queries {
						b := qb.PerQuery[qi]
						ast, err := dt.Resolve(tree.Root, b)
						if err != nil {
							t.Fatalf("tree %d query %d: resolve: %v", ti, qi, err)
						}
						want, wantErr := engine.Exec(testDB, ast)
						got, gotErr := exec.Run(tree.Root, b)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("tree %d query %d: interpreted err=%v planned err=%v", ti, qi, wantErr, gotErr)
						}
						if wantErr != nil {
							continue
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("tree %d query %d (clustered=%v):\ninterpreted:\n%s\nplanned:\n%s",
								ti, qi, clustered, want, got)
						}
						// a second Run must serve the identical cached table
						again, err := exec.Run(tree.Root, b)
						if err != nil || again != got {
							t.Fatalf("tree %d query %d: cache did not serve the same table (err=%v)", ti, qi, err)
						}
					}
				}
			}
		})
	}
}

// TestExecCacheSingleFlight: concurrent Runs of the same query execute it
// exactly once and all callers observe the same result table.
func TestExecCacheSingleFlight(t *testing.T) {
	ctx := ctxFor(t, "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60")
	s := transform.InitState(ctx, false)
	tree := s.Trees[0]
	qb, ok := tree.Bind(ctx)
	if !ok {
		t.Fatal("bind failed")
	}
	exec := NewExecCache(testDB)
	const goroutines = 16
	tables := make([]*engine.Table, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tbl, err := exec.Run(tree.Root, qb.PerQuery[0])
			if err != nil {
				t.Error(err)
				return
			}
			tables[g] = tbl
		}(g)
	}
	wg.Wait()
	if got := exec.Execs(); got != 1 {
		t.Fatalf("Execs() = %d, want exactly 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if tables[g] != tables[0] {
			t.Fatal("goroutines observed different table instances")
		}
	}
}

// TestExecCacheMemoizesErrors: a failing query is executed once and its
// error is served from cache afterwards.
func TestExecCacheMemoizesErrors(t *testing.T) {
	qs, err := sqlparser.ParseAll([]string{"SELECT nosuchcol FROM Cars"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &transform.Context{Queries: qs, Cat: testCat}
	s := transform.InitState(ctx, false)
	tree := s.Trees[0]
	qb, ok := tree.Bind(ctx)
	if !ok {
		t.Fatal("bind failed")
	}
	exec := NewExecCache(testDB)
	_, err1 := exec.Run(tree.Root, qb.PerQuery[0])
	_, err2 := exec.Run(tree.Root, qb.PerQuery[0])
	if err1 == nil || err2 == nil {
		t.Fatal("expected execution errors for unknown column")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("errors differ: %v vs %v", err1, err2)
	}
}

// TestExecCacheInvalidatesOnDBMutation: results cached before a database
// mutation must not be served afterwards.
func TestExecCacheInvalidatesOnDBMutation(t *testing.T) {
	db := engine.NewDB("2020-01-01")
	db.Add(&engine.Table{
		Name:  "kv",
		Cols:  []string{"k"},
		Types: []engine.ColType{engine.TNum},
		Rows:  [][]engine.Value{{engine.NumVal(1)}},
	})
	qs, err := sqlparser.ParseAll([]string{"SELECT k FROM kv"})
	if err != nil {
		t.Fatal(err)
	}
	root := qs[0].Clone()
	root.Renumber()
	exec := NewExecCache(db)
	before, err := exec.Run(root, dt.Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(before.Rows))
	}
	// mutate: the table grows a row, bumping the DB generation
	db.Add(&engine.Table{
		Name:  "kv",
		Cols:  []string{"k"},
		Types: []engine.ColType{engine.TNum},
		Rows:  [][]engine.Value{{engine.NumVal(1)}, {engine.NumVal(2)}},
	})
	after, err := exec.Run(root, dt.Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 2 {
		t.Fatalf("rows after mutation = %d, want 2 (stale cache served)", len(after.Rows))
	}
	if exec.Execs() != 2 {
		t.Fatalf("Execs() = %d, want 2", exec.Execs())
	}
}

// The safety verdict memo must key on enough of the candidate that distinct
// candidates do not collide: same node via different streams/columns.
func TestSafeKeyDistinguishesCandidates(t *testing.T) {
	a := safeKey{src: 0, target: 1, nodeID: 3, stream: "x-range", cols: "0,"}
	b := safeKey{src: 0, target: 1, nodeID: 3, stream: "x-range", cols: "1,"}
	c := safeKey{src: 0, target: 1, nodeID: 3, stream: "y-range", cols: "0,"}
	if a == b || a == c {
		t.Fatal("safeKey collides for distinct candidates")
	}
	set := map[safeKey]bool{a: true, b: true, c: true}
	if len(set) != 3 {
		t.Fatalf("distinct keys = %d, want 3", len(set))
	}
}
