package mapping

import (
	"math/rand"
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/transform"
	"pi2/internal/vis"
)

// exploreState builds the pushed+VAL Explore state (1 tree, 4 VALs).
func exploreState(t *testing.T) (*transform.State, *transform.Context) {
	t.Helper()
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	return s, ctx
}

func TestBoundedInteractionsAreCrossViewOnly(t *testing.T) {
	// a brush whose target is its own chart's tree would erase itself;
	// only pan/zoom (unbounded) may self-target.
	s, ctx := exploreState(t)
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	var scatter vis.Mapping
	for _, m := range sa.PerTree[0].VisCands {
		if m.Vis.Type == vis.Point {
			scatter = m
			break
		}
	}
	icands := sa.interactionCandidates([]vis.Mapping{scatter}, nil)
	for _, ic := range icands {
		if ic.TargetTree == ic.SourceTree && !ic.Stream.Unbounded {
			t.Errorf("bounded %s self-targets tree %d", ic.Kind, ic.TargetTree)
		}
	}
	// pan must exist and may self-target
	foundPan := false
	for _, ic := range icands {
		if ic.Kind == vis.Pan {
			foundPan = true
		}
	}
	if !foundPan {
		t.Fatal("pan candidate missing")
	}
}

func TestRangeTargetsMustBeVAL(t *testing.T) {
	// before ANY→VAL, the ranges are ANY nodes: no range interaction may
	// bind them (an ANY can only resolve to its enumerated children).
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop") // no ANY→VAL
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	var scatter vis.Mapping
	for _, m := range sa.PerTree[0].VisCands {
		if m.Vis.Type == vis.Point {
			scatter = m
			break
		}
	}
	for _, ic := range sa.interactionCandidates([]vis.Mapping{scatter}, nil) {
		if ic.Stream.Shape == vis.ShapeRange {
			for _, c := range ic.Node.ChoiceNodes() {
				if c.Kind == dt.KindAny {
					t.Fatalf("range stream bound an ANY node %d", c.ID)
				}
			}
		}
	}
}

func TestAttributeAgreementBlocksWrongAxis(t *testing.T) {
	// a pan over (hp, mpg) axes must not bind a dist-typed range in
	// another tree.
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30",
		"SELECT dist, count(*) FROM flights WHERE delay BETWEEN 0 AND 50 GROUP BY dist",
		"SELECT dist, count(*) FROM flights WHERE delay BETWEEN 10 AND 60 GROUP BY dist")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	V := make([]vis.Mapping, len(sa.PerTree))
	for ti, ta := range sa.PerTree {
		V[ti] = ta.VisCands[0]
		for _, m := range ta.VisCands {
			if m.Vis.Type != vis.Table {
				V[ti] = m
				break
			}
		}
	}
	for _, ic := range sa.interactionCandidates(V, nil) {
		if ic.SourceTree == ic.TargetTree {
			continue
		}
		// the cars chart must never drive the flights tree and vice versa
		srcIsCars := sa.PerTree[ic.SourceTree].RS.Cols[0].Qualified == "Cars.hp"
		dstIsCars := sa.PerTree[ic.TargetTree].RS.Cols[0].Qualified == "Cars.hp"
		if srcIsCars != dstIsCars {
			t.Errorf("cross-dataset binding: %s from tree %d to tree %d", ic.Kind, ic.SourceTree, ic.TargetTree)
		}
	}
}

func TestGreedyMatchesBestOrWorse(t *testing.T) {
	// Greedy is a heuristic: it must produce a valid interface whose cost
	// is no better than the exhaustive Algorithm 1 result.
	s, ctx := exploreState(t)
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := Greedy(sa, testDB, DefaultOptions())
	if !ok {
		t.Fatal("greedy failed")
	}
	best, err := Best(s, ctx, testDB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > g.Cost+1e-9 {
		t.Fatalf("exhaustive (%g) worse than greedy (%g)", best.Cost, g.Cost)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	s, ctx := exploreState(t)
	sa, _ := Analyze(s, ctx)
	a, ok1 := Greedy(sa, testDB, DefaultOptions())
	b, ok2 := Greedy(sa, testDB, DefaultOptions())
	if !ok1 || !ok2 || a.Cost != b.Cost {
		t.Fatalf("greedy nondeterministic: %v %v", a, b)
	}
}

func TestUnboundedSafetyExemption(t *testing.T) {
	// pan/zoom may express ranges beyond the rendered extent: the safety
	// check must pass even though the bindings exceed the filtered result.
	s, ctx := exploreState(t)
	sa, _ := Analyze(s, ctx)
	exec := NewExecCache(testDB)
	var scatter vis.Mapping
	for _, m := range sa.PerTree[0].VisCands {
		if m.Vis.Type == vis.Point {
			scatter = m
			break
		}
	}
	withSafety := sa.interactionCandidates([]vis.Mapping{scatter}, exec)
	foundPan := false
	for _, ic := range withSafety {
		if ic.Kind == vis.Pan {
			foundPan = true
		}
	}
	if !foundPan {
		t.Fatal("safety check rejected the unbounded pan")
	}
}

func TestRandomRespectsCompatibility(t *testing.T) {
	s, ctx := exploreState(t)
	sa, _ := Analyze(s, ctx)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		ifc, ok := Random(sa, testDB, rng, DefaultOptions())
		if !ok {
			continue
		}
		// no two vis interactions may duplicate (source, kind, stream, target)
		seen := map[string]bool{}
		for _, v := range ifc.VisInts {
			key := string(v.Kind) + v.Stream.Name + colsKey(v.Cols) +
				string(rune('0'+v.SourceVis)) + string(rune('0'+v.Tree))
			if seen[key] {
				t.Fatal("duplicate interaction instance")
			}
			seen[key] = true
		}
	}
}
