package mapping

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"strings"

	"pi2/internal/cost"
	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/layout"
	"pi2/internal/sqlparser"
	"pi2/internal/vis"
	"pi2/internal/widget"
)

// buildInterface materializes an iface.Interface from a (V, M) selection.
func buildInterface(sa *StateAnalysis, V []vis.Mapping, ints []ICand, widgets []*WCand) *iface.Interface {
	ifc := &iface.Interface{State: sa.State}
	for ti, m := range V {
		ta := sa.PerTree[ti]
		var cols []string
		for _, c := range ta.RS.Cols {
			cols = append(cols, c.Name)
		}
		ifc.Vis = append(ifc.Vis, iface.VisSpec{
			ElemID:  fmt.Sprintf("vis%d", ti),
			Tree:    ti,
			Mapping: m,
			Cols:    cols,
			Title:   strings.Join(cols, ", "),
		})
	}
	// widgets in global DFS order (lowest covered bit)
	ws := append([]*WCand(nil), widgets...)
	sort.Slice(ws, func(i, j int) bool {
		return bits.TrailingZeros64(ws[i].Mask) < bits.TrailingZeros64(ws[j].Mask)
	})
	for wi, w := range ws {
		spec := widgetSpec(sa, w)
		spec.ElemID = fmt.Sprintf("w%d", wi)
		ifc.Widgets = append(ifc.Widgets, spec)
	}
	for _, ic := range ints {
		ifc.VisInts = append(ifc.VisInts, iface.VisIntSpec{
			SourceVis: ic.SourceVis,
			Kind:      ic.Kind,
			Stream:    ic.Stream,
			Cols:      append([]int(nil), ic.Cols...),
			Tree:      ic.TargetTree,
			NodeID:    ic.Node.ID,
			Cover:     coverIDs(sa, ic),
			Manip:     ic.Manip,
		})
	}
	return ifc
}

func coverIDs(sa *StateAnalysis, ic ICand) []int {
	var out []int
	for _, c := range ic.Node.ChoiceNodes() {
		out = append(out, c.ID)
	}
	return out
}

// widgetSpec instantiates a widget: labels and options render the bound
// subtrees as SQL fragments, sliders take the attribute domain, dropdowns
// over VAL nodes enumerate the catalogue values (paper §4.2: widgets are
// initialized from the dynamic node's information, making them safe by
// construction).
func widgetSpec(sa *StateAnalysis, w *WCand) iface.WidgetSpec {
	ta := sa.PerTree[w.Tree]
	n := w.Node
	spec := iface.WidgetSpec{
		Kind:   w.Cand.Kind,
		Tree:   w.Tree,
		NodeID: n.ID,
		Cover:  append([]int(nil), w.Cand.Cover...),
		Min:    w.Cand.Min,
		Max:    w.Cand.Max,
		Manip:  w.Manip,
	}
	label := func(m *dt.Node) string { return trim(sqlparser.ToSQL(m), 28) }
	switch n.Kind {
	case dt.KindAny:
		for _, c := range n.Children {
			spec.Options = append(spec.Options, label(c))
		}
		spec.Label = "choose"
		if t, ok := ta.Info.SchemaOf(n).SingleType(); ok && len(t.Attrs) > 0 {
			spec.Label = t.String()
		}
	case dt.KindOpt:
		spec.Label = label(n.Children[0])
		spec.Options = []string{"on", "off"}
	case dt.KindVal:
		t, _ := ta.Info.SchemaOf(n).SingleType()
		spec.Label = t.String()
		if w.Cand.Kind == widget.Dropdown {
			_, _, values, _, _ := t.Domain()
			spec.Options = values
		}
	case dt.KindSubset:
		for _, c := range n.Children {
			spec.Options = append(spec.Options, label(c))
		}
		spec.Label = "include"
	case dt.KindMulti:
		spec.Label = "items"
		if p := n.Children[0]; p.Kind == dt.KindAny {
			for _, c := range p.Children {
				spec.Options = append(spec.Options, label(c))
			}
		} else {
			spec.Options = []string{label(n.Children[0])}
		}
	default:
		// ancestor nodes (range sliders)
		spec.Label = label(n)
	}
	return spec
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// costInteractions assembles the cost-model view of an interface: one entry
// per interaction in DFS order, with per-use manipulation cost and global
// cover mask. Widgets navigate to their own box; visualization interactions
// navigate to their source chart's box.
func costInteractions(sa *StateAnalysis, ifc *iface.Interface) []cost.Interaction {
	type ordered struct {
		order int
		ci    cost.Interaction
	}
	var list []ordered
	for i := range ifc.Widgets {
		w := &ifc.Widgets[i]
		mask := sa.Mask(w.Tree, w.Cover)
		list = append(list, ordered{bits.TrailingZeros64(mask), cost.Interaction{
			ElemID: w.ElemID, Manip: w.Manip, Cover: mask,
		}})
	}
	for i := range ifc.VisInts {
		v := &ifc.VisInts[i]
		mask := sa.Mask(v.Tree, v.Cover)
		list = append(list, ordered{bits.TrailingZeros64(mask), cost.Interaction{
			ElemID: ifc.Vis[v.SourceVis].ElemID, Manip: v.Manip, Cover: mask,
		}})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].order < list[j].order })
	out := make([]cost.Interaction, len(list))
	for i, o := range list {
		out[i] = o.ci
	}
	return out
}

// finishLayout builds the layout tree and either optimizes directions
// (branch and bound) or assigns them randomly (MCTS reward sampling), then
// finalizes the interface cost C = Cm + Cnav + CL.
func finishLayout(sa *StateAnalysis, ifc *iface.Interface, model cost.Model, random bool, rng *rand.Rand) {
	ints := costInteractions(sa, ifc)
	ifc.Cm = model.Manipulation(ints, sa.Changed)
	// The visit sequence is layout-independent; compute it once instead of
	// once per direction assignment inside the optimizer.
	seq := cost.NavSequence(ints, sa.Changed)
	vBase := 0.0
	for _, v := range ifc.Vis {
		vBase += visRenderCost(v.Mapping, sa.PerTree[v.Tree].RS)
	}
	ifc.LayoutTree = ifc.BuildLayoutTree()
	if random && rng != nil {
		ifc.LayoutTree.AssignDirs(func() layout.Dir {
			if rng.Intn(2) == 0 {
				return layout.Horiz
			}
			return layout.Vert
		})
		ifc.Boxes = map[string]layout.Box{}
		ifc.TotalBox = ifc.LayoutTree.Arrange(0, 0, ifc.Boxes)
		ifc.Cost = ifc.Cm + vBase + model.NavigationAlong(seq, ifc.Boxes) + model.LayoutPenalty(ifc.TotalBox)
		return
	}
	boxes, total, nav := layout.Optimize(ifc.LayoutTree, func(b map[string]layout.Box, t layout.Box) float64 {
		return model.NavigationAlong(seq, b) + model.LayoutPenalty(t)
	})
	ifc.Boxes = boxes
	ifc.TotalBox = total
	ifc.Cost = ifc.Cm + vBase + nav
}

// Greedy generates one locally-cheap interface mapping: the lowest-cost
// visualization per tree and, per choice node, the cheapest compatible
// candidate. It anchors the MCTS reward estimate (one greedy + K−1 random
// samples) so good states are not underestimated by sampling noise.
func Greedy(sa *StateAnalysis, db *engine.DB, opts Options) (*iface.Interface, bool) {
	var exec *ExecCache
	if opts.CheckSafety && db != nil {
		exec = opts.Exec
		if exec == nil {
			exec = NewExecCache(db)
		}
	}
	V := make([]vis.Mapping, len(sa.PerTree))
	for ti, ta := range sa.PerTree {
		if len(ta.VisCands) == 0 {
			return nil, false
		}
		best := 0
		bestCost := math.Inf(1)
		for i, m := range ta.VisCands {
			if c := visRenderCost(m, ta.RS); c < bestCost {
				bestCost = c
				best = i
			}
		}
		V[ti] = ta.VisCands[best]
	}
	icands := sa.interactionCandidates(V, exec)
	wcands := sa.WidgetCandidates()

	uncovered := sa.AllMask()
	var ints []ICand
	var ws []*WCand
	for bit := 0; bit < sa.NBits; bit++ {
		if uncovered&(1<<uint(bit)) == 0 {
			continue
		}
		bestCost := math.Inf(1)
		var bestIC *ICand
		var bestW *WCand
		for i := range icands {
			ic := &icands[i]
			if ic.Mask&(1<<uint(bit)) == 0 || ic.Mask&^uncovered != 0 {
				continue
			}
			if !compatibleWithChosen(ints, ic) {
				continue
			}
			if ic.SeqCost < bestCost {
				bestCost = ic.SeqCost
				bestIC, bestW = ic, nil
			}
		}
		for i := range wcands {
			w := &wcands[i]
			if w.Mask&(1<<uint(bit)) == 0 || w.Mask&^uncovered != 0 {
				continue
			}
			if w.SeqCost < bestCost {
				bestCost = w.SeqCost
				bestIC, bestW = nil, w
			}
		}
		switch {
		case bestIC != nil:
			ints = append(ints, *bestIC)
			uncovered &^= bestIC.Mask
		case bestW != nil:
			ws = append(ws, bestW)
			uncovered &^= bestW.Mask
		default:
			return nil, false
		}
	}
	ifc := buildInterface(sa, V, ints, ws)
	finishLayout(sa, ifc, opts.Model, false, nil)
	return ifc, true
}

// Random generates one random valid interface mapping for the state — the
// paper's reward estimator runs K of these per MCTS rollout (§6.2.1 step 4).
func Random(sa *StateAnalysis, db *engine.DB, rng *rand.Rand, opts Options) (*iface.Interface, bool) {
	var exec *ExecCache
	if opts.CheckSafety && db != nil {
		exec = opts.Exec
		if exec == nil {
			exec = NewExecCache(db)
		}
	}
	// random V
	V := make([]vis.Mapping, len(sa.PerTree))
	for ti, ta := range sa.PerTree {
		if len(ta.VisCands) == 0 {
			return nil, false
		}
		V[ti] = ta.VisCands[rng.Intn(len(ta.VisCands))]
	}
	icands := sa.interactionCandidates(V, exec)
	wcands := sa.WidgetCandidates()

	icAt := make([][]*ICand, sa.NBits)
	for i := range icands {
		ic := &icands[i]
		b := bits.TrailingZeros64(ic.Mask)
		if b < sa.NBits {
			icAt[b] = append(icAt[b], ic)
		}
	}
	wAt := make([][]*WCand, sa.NBits)
	for i := range wcands {
		w := &wcands[i]
		m := w.Mask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			wAt[b] = append(wAt[b], w)
			m &^= 1 << uint(b)
		}
	}

	uncovered := sa.AllMask()
	var ints []ICand
	var ws []*WCand
	for bit := 0; bit < sa.NBits; bit++ {
		if uncovered&(1<<uint(bit)) == 0 {
			continue
		}
		type pick struct {
			ic *ICand
			w  *WCand
		}
		var picks []pick
		for _, ic := range icAt[bit] {
			if ic.Mask&^uncovered == 0 && compatibleWithChosen(ints, ic) {
				picks = append(picks, pick{ic: ic})
			}
		}
		for _, w := range wAt[bit] {
			if w.Mask&^uncovered == 0 {
				picks = append(picks, pick{w: w})
			}
		}
		if len(picks) == 0 {
			return nil, false
		}
		p := picks[rng.Intn(len(picks))]
		if p.ic != nil {
			ints = append(ints, *p.ic)
			uncovered &^= p.ic.Mask
		} else {
			ws = append(ws, p.w)
			uncovered &^= p.w.Mask
		}
	}
	ifc := buildInterface(sa, V, ints, ws)
	finishLayout(sa, ifc, opts.Model, true, rng)
	return ifc, true
}
