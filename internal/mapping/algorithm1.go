package mapping

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"pi2/internal/cost"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/obs"
	"pi2/internal/schema"
	"pi2/internal/transform"
	"pi2/internal/vis"
)

// Options configures the mapping search.
type Options struct {
	K             int  // top-k (V, M) mappings carried into layout (paper: 10)
	CheckSafety   bool // §4.2.2 safety checking (ablatable)
	MaxVisPerTree int  // cap on per-tree visualization candidates
	Model         cost.Model
	// Exec, when non-nil, memoizes safety-check query execution across
	// calls. The cache is concurrency-safe, so one instance is shared by
	// all MCTS workers and the final mapping search of a generation run;
	// nil builds a fresh cache per call.
	Exec *ExecCache
	// Trace, when non-nil, accumulates "map.search" and "map.layout"
	// aggregate timers. Observational only — it never changes what the
	// search enumerates.
	Trace *obs.Trace
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{K: 10, CheckSafety: true, MaxVisPerTree: 6, Model: cost.Default()}
}

// entry is one (V, M) mapping found by searchM.
type entry struct {
	cm      float64
	V       []vis.Mapping
	ints    []ICand
	widgets []*WCand
}

// topK keeps the k lowest-cost entries.
type topK struct {
	k       int
	entries []entry
}

func (t *topK) worst() float64 {
	if len(t.entries) < t.k {
		return math.Inf(1)
	}
	return t.entries[len(t.entries)-1].cm
}

func (t *topK) push(e entry) {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].cm > e.cm })
	t.entries = append(t.entries, entry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	if len(t.entries) > t.k {
		t.entries = t.entries[:t.k]
	}
}

// Best runs the full mapping search (Algorithm 1 + layout optimization) and
// returns the lowest-cost interface for the state.
func Best(state *transform.State, ctx *transform.Context, db *engine.DB, opts Options) (*iface.Interface, error) {
	sa, err := Analyze(state, ctx)
	if err != nil {
		return nil, err
	}
	return bestFromAnalysis(sa, db, opts)
}

func bestFromAnalysis(sa *StateAnalysis, db *engine.DB, opts Options) (*iface.Interface, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	var exec *ExecCache
	if opts.CheckSafety {
		exec = opts.Exec
		if exec == nil {
			exec = NewExecCache(db)
		}
	}
	wcands := sa.WidgetCandidates()
	heap := &topK{k: opts.K}

	// searchV: enumerate all per-tree visualization assignments.
	var t0 time.Time
	if opts.Trace != nil {
		t0 = time.Now()
	}
	assignments := visAssignments(sa, opts.MaxVisPerTree)
	for _, V := range assignments {
		icands := sa.interactionCandidates(V, exec)
		searchM(sa, V, icands, wcands, heap, visBaseCost(sa, V))
	}
	if opts.Trace != nil {
		opts.Trace.AddTimer("map.search", time.Since(t0))
	}
	if len(heap.entries) == 0 {
		return nil, fmt.Errorf("mapping: no valid interface mapping (choice nodes uncoverable)")
	}

	// layout optimization for the top-k, pick the overall best (§6.2.2).
	if opts.Trace != nil {
		t0 = time.Now()
	}
	var best *iface.Interface
	for _, e := range heap.entries {
		ifc := buildInterface(sa, e.V, e.ints, e.widgets)
		finishLayout(sa, ifc, opts.Model, false, nil)
		if best == nil || ifc.Cost < best.Cost {
			best = ifc
		}
	}
	if opts.Trace != nil {
		opts.Trace.AddTimer("map.layout", time.Since(t0))
	}
	return best, nil
}

// visAssignments enumerates the cross product of per-tree vis candidates,
// capped per tree for tractability.
func visAssignments(sa *StateAnalysis, maxPerTree int) [][]vis.Mapping {
	if maxPerTree <= 0 {
		maxPerTree = 6
	}
	perTree := make([][]vis.Mapping, len(sa.PerTree))
	for i, ta := range sa.PerTree {
		c := ta.VisCands
		if len(c) > maxPerTree {
			c = c[:maxPerTree]
		}
		perTree[i] = c
	}
	var out [][]vis.Mapping
	cur := make([]vis.Mapping, len(perTree))
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= 512 { // hard cap on assignment explosion
			return
		}
		if i == len(perTree) {
			out = append(out, append([]vis.Mapping(nil), cur...))
			return
		}
		for _, m := range perTree[i] {
			cur[i] = m
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// searchM implements Algorithm 1's interaction search: enumerate compatible
// visualization-interaction selections per choice node, complete each with
// the optimal widget exact cover via dynamic programming (F/G), and prune
// with the widget-cost lower bound (line 27).
func searchM(sa *StateAnalysis, V []vis.Mapping, icands []ICand, wcands []WCand, heap *topK, vBase float64) {
	n := sa.NBits
	all := sa.AllMask()
	// index interaction candidates by the lowest bit of their mask
	icAt := make([][]*ICand, n)
	for i := range icands {
		ic := &icands[i]
		b := bits.TrailingZeros64(ic.Mask)
		if b < n {
			icAt[b] = append(icAt[b], ic)
		}
	}
	dp := newWidgetDP(sa, wcands, heap.k)

	var chosen []ICand
	var rec func(bit int, uncovered, skipped uint64, intsCost float64)
	rec = func(bit int, uncovered, skipped uint64, intsCost float64) {
		// prune: the skipped prefix can only be covered by widgets
		if intsCost+dp.g(skipped) >= heap.worst() {
			return
		}
		if bit == n {
			for _, wc := range dp.f(uncovered) {
				total := intsCost + wc.cost
				if total >= heap.worst() {
					break
				}
				heap.push(entry{
					cm: total, V: append([]vis.Mapping(nil), V...),
					ints:    append([]ICand(nil), chosen...),
					widgets: append([]*WCand(nil), wc.widgets...),
				})
			}
			return
		}
		if uncovered&(1<<uint(bit)) == 0 {
			rec(bit+1, uncovered, skipped, intsCost)
			return
		}
		for _, ic := range icAt[bit] {
			if ic.Mask&^uncovered != 0 {
				continue
			}
			if !compatibleWithChosen(chosen, ic) {
				continue
			}
			chosen = append(chosen, *ic)
			rec(bit+1, uncovered&^ic.Mask, skipped, intsCost+ic.SeqCost)
			chosen = chosen[:len(chosen)-1]
		}
		// leave the bit to widgets
		rec(bit+1, uncovered, skipped|1<<uint(bit), intsCost)
	}
	rec(0, all, 0, vBase)
}

// visBaseCost expresses PI2's chart preferences as a base cost per V
// assignment: tables are a last resort, bar charts suit grouped results,
// line charts suit temporal x axes. The term breaks ties among otherwise
// equal-cost mappings the way the paper's case studies resolve them.
func visBaseCost(sa *StateAnalysis, V []vis.Mapping) float64 {
	total := 0.0
	for ti, m := range V {
		total += visRenderCost(m, sa.PerTree[ti].RS)
	}
	return total
}

func visRenderCost(m vis.Mapping, rs *schema.ResultSchema) float64 {
	base := 0.0
	// Heterogeneous-encoding penalty: a chart whose axis unions attributes
	// with different names relabels its encoding on every interaction; the
	// paper's Partition-then-Split behavior keeps such semantics apart.
	for _, c := range rs.Cols {
		if strings.Contains(c.Name, "∪") {
			base += 400
		}
	}
	switch m.Vis.Type {
	case vis.Table:
		return base + 2500
	case vis.Bar:
		return base + 950
	case vis.Point:
		return base + 1000
	case vis.Line:
		if x := m.Col("x"); x >= 0 && x < len(rs.Cols) {
			t := rs.Cols[x].Type
			if t.Continuous() && !t.IsNumeric() { // date axis
				return base + 970
			}
		}
		return base + 1100
	}
	return base + 1500
}

// compatibleWithChosen enforces Algorithm 1's side conditions: the same
// event stream binds at most one node per target Difftree (①), and
// conflicting interaction kinds cannot share a source chart (②).
func compatibleWithChosen(chosen []ICand, ic *ICand) bool {
	for i := range chosen {
		c := &chosen[i]
		if c.SourceVis == ic.SourceVis {
			if c.Kind != ic.Kind && vis.ConflictsWith(c.Kind, ic.Kind) {
				return false
			}
			if c.Kind == ic.Kind && c.Stream.Name == ic.Stream.Name &&
				colsKey(c.Cols) == colsKey(ic.Cols) && c.TargetTree == ic.TargetTree {
				return false
			}
		}
	}
	return true
}

func colsKey(cols []int) string {
	out := make([]byte, 0, len(cols)*2)
	for _, c := range cols {
		out = append(out, byte('0'+c), ',')
	}
	return string(out)
}

// widgetDP memoizes the exact-cover dynamic programs G (min cost) and F
// (top-k covers) over uncovered choice-node masks.
type widgetDP struct {
	at    [][]*WCand // candidates whose mask contains the bit
	gMemo map[uint64]float64
	fMemo map[uint64][]wcover
	k     int
	nbits int
}

type wcover struct {
	cost    float64
	widgets []*WCand
}

func newWidgetDP(sa *StateAnalysis, wcands []WCand, k int) *widgetDP {
	dp := &widgetDP{
		at:    make([][]*WCand, sa.NBits),
		gMemo: map[uint64]float64{},
		fMemo: map[uint64][]wcover{},
		k:     k,
		nbits: sa.NBits,
	}
	for i := range wcands {
		w := &wcands[i]
		m := w.Mask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			dp.at[b] = append(dp.at[b], w)
			m &^= 1 << uint(b)
		}
	}
	return dp
}

// g is Algorithm 1's G(N): the lowest widget cost covering exactly N.
func (dp *widgetDP) g(N uint64) float64 {
	if N == 0 {
		return 0
	}
	if v, ok := dp.gMemo[N]; ok {
		return v
	}
	best := math.Inf(1)
	b := bits.TrailingZeros64(N)
	if b < dp.nbits {
		for _, w := range dp.at[b] {
			if w.Mask&^N != 0 {
				continue
			}
			c := w.SeqCost + dp.g(N&^w.Mask)
			if c < best {
				best = c
			}
		}
	}
	dp.gMemo[N] = best
	return best
}

// f is Algorithm 1's F(N): the top-k exact widget covers of N.
func (dp *widgetDP) f(N uint64) []wcover {
	if N == 0 {
		return []wcover{{cost: 0}}
	}
	if v, ok := dp.fMemo[N]; ok {
		return v
	}
	var out []wcover
	b := bits.TrailingZeros64(N)
	if b < dp.nbits {
		for _, w := range dp.at[b] {
			if w.Mask&^N != 0 {
				continue
			}
			for _, sub := range dp.f(N &^ w.Mask) {
				ws := make([]*WCand, 0, len(sub.widgets)+1)
				ws = append(ws, w)
				ws = append(ws, sub.widgets...)
				out = append(out, wcover{cost: w.SeqCost + sub.cost, widgets: ws})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cost < out[j].cost })
	if len(out) > dp.k {
		out = out[:dp.k]
	}
	dp.fMemo[N] = out
	return out
}
