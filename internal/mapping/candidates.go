// Package mapping generates candidate interface mappings and searches for
// the lowest-cost one: visualization mapping V, interaction mapping M
// (Algorithm 1 with the widget-cover dynamic program and branch-and-bound
// pruning), and layout optimization for the top-k (V, M) mappings
// (paper §4, §6.2.2).
package mapping

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pi2/internal/cost"
	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/obs"
	"pi2/internal/schema"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/widget"
)

// TreeAnalysis bundles per-Difftree analysis results.
type TreeAnalysis struct {
	Tree     *transform.Tree
	QB       *dt.QueryBindings
	Info     *schema.Info
	RS       *schema.ResultSchema
	VisCands []vis.Mapping
	Choice   []*dt.Node // choice nodes in DFS order
	Dynamic  []*dt.Node // dynamic nodes in DFS order (precomputed walk)
}

// StateAnalysis bundles the full state analysis: per-tree results, the
// global bit index over choice nodes, and the per-query changed-bit masks
// the cost model consumes.
//
// A StateAnalysis additionally memoizes work that repeats across the many
// Greedy/Random/Best mapping evaluations of one state: safety-check query
// executions per (tree, query) and safety verdicts per candidate. It is not
// safe for concurrent use; in the search every state is analyzed by exactly
// one goroutine (the shared reward cache's single-flight guarantees it).
type StateAnalysis struct {
	State   *transform.State
	Ctx     *transform.Context
	PerTree []*TreeAnalysis
	NBits   int
	Changed []uint64 // per input query, global bits whose binding changed

	bitIndex  map[bitKey]int     // (tree, nodeID) -> global bit
	execMemo  [][]*execEntry     // [tree][query position], lazily filled
	safeMemo  map[safeKey]bool   // safety verdicts, V-independent
	icandMemo map[string][]ICand // per-source-chart candidates, see below
}

type bitKey struct{ tree, nodeID int }

// safeKey identifies a safety check. The verdict depends only on the source
// tree's query results and the target node's required values — not on the
// V assignment — so one verdict serves every assignment that enumerates the
// same (source, stream, columns, target) candidate.
type safeKey struct {
	src, target, nodeID int
	stream              string
	cols                string
}

// Bit returns the global bit of a choice node, or -1.
func (sa *StateAnalysis) Bit(tree, nodeID int) int {
	if b, ok := sa.bitIndex[bitKey{tree, nodeID}]; ok {
		return b
	}
	return -1
}

// Mask converts a tree's cover ID list to a global bitmask.
func (sa *StateAnalysis) Mask(tree int, cover []int) uint64 {
	var m uint64
	for _, id := range cover {
		b := sa.Bit(tree, id)
		if b < 0 || b >= 64 {
			return 0
		}
		m |= 1 << uint(b)
	}
	return m
}

// AllMask returns the mask with every choice bit set.
func (sa *StateAnalysis) AllMask() uint64 {
	if sa.NBits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(sa.NBits)) - 1
}

// Analyze validates and annotates a search state. It fails when a tree no
// longer expresses its queries, its result schema is undefined, or the
// choice-node count exceeds the 64-bit cover budget.
func Analyze(state *transform.State, ctx *transform.Context) (*StateAnalysis, error) {
	sa := &StateAnalysis{
		State: state, Ctx: ctx,
		safeMemo:  map[safeKey]bool{},
		icandMemo: map[string][]ICand{},
	}
	total := 0
	for ti, tree := range state.Trees {
		qb, ok := tree.Bind(ctx)
		if !ok {
			return nil, fmt.Errorf("mapping: tree %d does not express its queries", ti)
		}
		qs := tree.QueryASTs(ctx)
		info := schema.Analyze(tree.Root, qs, ctx.Cat)
		if info.Result == nil {
			return nil, fmt.Errorf("mapping: tree %d has undefined result schema", ti)
		}
		ta := &TreeAnalysis{
			Tree:     tree,
			QB:       qb,
			Info:     info,
			RS:       info.Result,
			VisCands: vis.CandidateMappings(info.Result),
			Choice:   tree.Root.ChoiceNodes(),
		}
		// One walk up front: candidate enumeration consults the dynamic-node
		// list once per (stream, column, tree) combination, far too often to
		// re-walk the tree each time.
		ta.Tree.Root.Walk(func(n *dt.Node) bool {
			if ta.Info.Dynamic[n] {
				ta.Dynamic = append(ta.Dynamic, n)
			}
			return true
		})
		total += len(ta.Choice)
		sa.PerTree = append(sa.PerTree, ta)
	}
	if total > 64 {
		return nil, fmt.Errorf("mapping: %d choice nodes exceed the 64-bit cover budget", total)
	}
	sa.NBits = total
	sa.bitIndex = make(map[bitKey]int, total)
	b := 0
	for ti, ta := range sa.PerTree {
		for _, c := range ta.Choice {
			sa.bitIndex[bitKey{ti, c.ID}] = b
			b++
		}
	}
	sa.execMemo = make([][]*execEntry, len(sa.PerTree))
	sa.computeChanged()
	return sa, nil
}

// computeChanged derives, per input query, the set of choice nodes whose
// binding differs from the previous query that used the node's tree. The
// first use of a node counts as a change (the user must set it).
func (sa *StateAnalysis) computeChanged() {
	nq := len(sa.Ctx.Queries)
	sa.Changed = make([]uint64, nq)
	bit := 0
	for _, ta := range sa.PerTree {
		// per-query index within the tree's query list
		qpos := map[int]int{}
		for i, qi := range ta.Tree.Queries {
			qpos[qi] = i
		}
		for _, c := range ta.Choice {
			last := ""
			for qi := 0; qi < nq; qi++ {
				pos, ok := qpos[qi]
				if !ok {
					continue
				}
				key := "∅"
				if v, bound := ta.QB.PerQuery[pos][c.ID]; bound {
					key = v.Key()
				}
				if key != last {
					if bit < 64 {
						sa.Changed[qi] |= 1 << uint(bit)
					}
					last = key
				}
			}
			bit++
		}
	}
}

// UsageCount returns how many queries manipulate any node in the mask.
func (sa *StateAnalysis) UsageCount(mask uint64) int {
	n := 0
	for _, ch := range sa.Changed {
		if ch&mask != 0 {
			n++
		}
	}
	return n
}

// WCand is a widget candidate with its global mask and per-sequence cost.
type WCand struct {
	Tree    int
	Cand    widget.Candidate
	Node    *dt.Node
	Mask    uint64
	Manip   float64 // per-use manipulation cost
	SeqCost float64 // Manip × number of queries that use it
}

// WidgetCandidates enumerates widget candidates across all trees.
func (sa *StateAnalysis) WidgetCandidates() []WCand {
	var out []WCand
	for ti, ta := range sa.PerTree {
		for _, n := range dynamicNodes(ta) {
			for _, c := range widget.CandidatesFor(n, ta.Info, ta.QB) {
				mask := sa.Mask(ti, c.Cover)
				if mask == 0 {
					continue
				}
				manip := cost.WidgetManip(c.Kind, c.DomainSize)
				out = append(out, WCand{
					Tree: ti, Cand: c, Node: n, Mask: mask,
					Manip: manip, SeqCost: manip * float64(sa.UsageCount(mask)),
				})
			}
		}
	}
	return out
}

func dynamicNodes(ta *TreeAnalysis) []*dt.Node { return ta.Dynamic }

// ICand is a visualization-interaction candidate: an event stream of a
// chart (rendering SourceTree under Mapping) bound to a dynamic node of
// TargetTree — possibly a different tree, which is what links multi-view
// interfaces.
type ICand struct {
	SourceTree int
	SourceVis  int // index in the current V assignment
	Kind       vis.InteractionKind
	Stream     vis.EventStream
	Cols       []int
	TargetTree int
	Node       *dt.Node
	Mask       uint64
	Manip      float64
	SeqCost    float64
}

// interactionCandidates enumerates the vis-interaction candidates for one V
// assignment (one vis.Mapping per tree). exec caches query execution for
// safety checks; nil disables safety (the §7.3 ablation).
//
// The candidates of one source chart depend only on that chart's own
// mapping (its type and column assignment), never on the other trees'
// assignments, so per-source lists are memoized across the many V
// assignments Greedy, Random and Best enumerate over one state.
func (sa *StateAnalysis) interactionCandidates(V []vis.Mapping, exec *ExecCache) []ICand {
	var out []ICand
	for srcIdx := range V {
		out = append(out, sa.sourceCandidates(srcIdx, &V[srcIdx], exec)...)
	}
	return out
}

// sourceCandidates returns the interaction candidates of one source chart
// under one mapping, memoized by (source tree, mapping signature, safety).
func (sa *StateAnalysis) sourceCandidates(srcIdx int, m *vis.Mapping, exec *ExecCache) []ICand {
	key := sourceCandKey(srcIdx, m, exec != nil)
	if cands, ok := sa.icandMemo[key]; ok {
		return cands
	}
	// cands stays nil (not an empty slice) when nothing matches, so the
	// memo still records the miss.
	var cands []ICand
	srcTA := sa.PerTree[srcIdx]
	for _, tpl := range vis.InteractionsFor(m.Vis.Type) {
		for _, stream := range tpl.Streams {
			for _, cols := range streamColumns(stream, *m, srcTA.RS) {
				for ti, ta := range sa.PerTree {
					for _, n := range dynamicNodes(ta) {
						cand, ok := sa.matchStream(srcIdx, srcTA, tpl.Kind, stream, cols, ti, ta, n)
						if !ok {
							continue
						}
						if exec != nil && !sa.safe(cand, exec) {
							continue
						}
						cands = append(cands, cand)
					}
				}
			}
		}
	}
	sa.icandMemo[key] = cands
	return cands
}

// sourceCandKey renders the memo key: source index, visualization type and
// the column assignment in schema-variable order (deterministic without
// sorting), plus whether safety filtering applies.
func sourceCandKey(srcIdx int, m *vis.Mapping, safety bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%v", srcIdx, m.Vis.Type, safety)
	for _, v := range m.Vis.Vars {
		if c, ok := m.Assign[v.Name]; ok {
			fmt.Fprintf(&b, "|%s=%d", v.Name, c)
		}
	}
	return b.String()
}

// streamColumns resolves a stream's visual variables to result columns of
// the source chart. The table's "*" stream expands to one variant per
// column.
func streamColumns(stream vis.EventStream, m vis.Mapping, rs *schema.ResultSchema) [][]int {
	if len(stream.Vars) == 1 && stream.Vars[0] == "*" {
		var out [][]int
		for ci := range rs.Cols {
			out = append(out, []int{ci})
		}
		return out
	}
	cols := make([]int, len(stream.Vars))
	for i, v := range stream.Vars {
		ci := m.Col(v)
		if ci < 0 {
			return nil
		}
		cols[i] = ci
	}
	return [][]int{cols}
}

// matchStream checks the schema match between a dynamic node and an event
// stream (paper §4.2.1): arity and per-position type compatibility, with
// the node shapes each stream kind can bind.
func (sa *StateAnalysis) matchStream(srcIdx int, srcTA *TreeAnalysis, kind vis.InteractionKind, stream vis.EventStream, cols []int, ti int, ta *TreeAnalysis, n *dt.Node) (ICand, bool) {
	// Bounded interactions (click, multi-click, brush) select within the
	// rendered data, so they may only drive *other* views: a selection that
	// rewrote its own chart's query would erase itself. Pan and zoom move
	// the viewport and may self-target (the paper's Explore interface).
	if ti == srcIdx && !stream.Unbounded {
		return ICand{}, false
	}
	mk := func(node *dt.Node, cover []int) (ICand, bool) {
		mask := sa.Mask(ti, cover)
		if mask == 0 {
			return ICand{}, false
		}
		return ICand{
			SourceTree: srcIdx, SourceVis: srcIdx,
			Kind: kind, Stream: stream, Cols: cols,
			TargetTree: ti, Node: node, Mask: mask,
			Manip:   cost.VisInteractionManip,
			SeqCost: cost.VisInteractionManip * float64(sa.UsageCount(mask)),
		}, true
	}
	colType := func(i int) schema.Type { return srcTA.RS.Cols[cols[i]].Type }
	switch stream.Shape {
	case vis.ShapeValue:
		if n.Kind != dt.KindVal {
			return ICand{}, false
		}
		t, ok := ta.Info.SchemaOf(n).SingleType()
		if !ok || !typesAgree(t, colType(0)) {
			return ICand{}, false
		}
		return mk(n, []int{n.ID})
	case vis.ShapeSet:
		if n.Kind != dt.KindMulti || n.Children[0].Kind != dt.KindVal {
			return ICand{}, false
		}
		it, ok := ta.Info.SchemaOf(n.Children[0]).SingleType()
		if !ok || !typesAgree(it, colType(0)) {
			return ICand{}, false
		}
		cover := []int{n.ID, n.Children[0].ID}
		return mk(n, cover)
	case vis.ShapeRange:
		target := n
		var cover []int
		sch := ta.Info.SchemaOf(n)
		if n.Kind == dt.KindOpt {
			if !stream.Togglable {
				return ICand{}, false
			}
			sch = ta.Info.SchemaOf(n.Children[0])
		} else if n.Kind.IsChoice() {
			return ICand{}, false
		}
		types, ok := sch.ContinuousTypes()
		if !ok || len(types) != len(cols) {
			return ICand{}, false
		}
		for i, t := range types {
			if !typesAgree(t, colType(i)) {
				return ICand{}, false
			}
		}
		// the range's event tuple carries arbitrary values between the
		// bounds, so every bound position must be a VAL pattern (an ANY
		// can only resolve to its enumerated children).
		vals := rangeValIDs(target)
		if len(vals) != len(cols) {
			return ICand{}, false
		}
		if target.Kind == dt.KindOpt {
			cover = append(cover, target.ID)
		}
		cover = append(cover, vals...)
		if len(target.ChoiceNodes()) != len(cover) {
			return ICand{}, false // other choice nodes hide in the subtree
		}
		return mk(target, cover)
	}
	return ICand{}, false
}

// typesAgree checks base compatibility in either direction plus attribute
// agreement: an attribute-typed dynamic node only accepts event streams
// whose column shares one of its attributes — a pan over the mpg (or a
// count) axis cannot write id values even though all are numeric. Plain
// primitive nodes accept any base-compatible stream (the paper's §4.2.2
// VAL<num> example), with the safety check carrying the rest.
func typesAgree(node, col schema.Type) bool {
	if !schema.Compatible(node, col) && !schema.Compatible(col, node) {
		return false
	}
	if len(node.Attrs) == 0 {
		return true
	}
	for _, a := range node.Attrs {
		for _, b := range col.Attrs {
			if a.Qualified() == b.Qualified() {
				return true
			}
		}
	}
	return false
}

// ExecCache memoizes query execution during safety checking. It is safe for
// concurrent use: during MCTS the database is read-only, so one cache is
// shared by every search worker (and by the final mapping search), and a
// query executes exactly once no matter how many workers reach it.
//
// Queries run compiled: each distinct resolved AST is Prepared once into an
// engine.Plan (keyed by difftree.Hash of the AST, mixed with the DB
// generation so a mutated database cannot serve stale plans or results) and
// executed via Plan.Exec. Errors are memoized too — a failing safety query
// is not re-executed per candidate.
type ExecCache struct {
	DB     *engine.DB
	shards [execShards]execShard
	execs  atomic.Int64

	// Trace, when non-nil, accumulates a "safety.exec" aggregate timer
	// covering actual executions only (cache hits record nothing).
	Trace *obs.Trace
}

const execShards = 16

type execShard struct {
	mu      sync.Mutex
	entries map[uint64]*execEntry
}

// execEntry is the single-flight compute slot for one resolved query, plus
// lazily-built per-column indexes the safety check consumes.
type execEntry struct {
	once  sync.Once
	plan  *engine.Plan // compiled form, kept so Run never re-prepares
	table *engine.Table
	err   error

	mu   sync.Mutex
	sets []map[engine.Value]bool // per column: distinct values, type-tagged
	exts []*colExtentCache       // per column: [min, max] extent
}

type colExtentCache struct {
	lo, hi engine.Value
	ok     bool
}

// NewExecCache returns a cache over the database.
func NewExecCache(db *engine.DB) *ExecCache {
	ec := &ExecCache{DB: db}
	for i := range ec.shards {
		ec.shards[i].entries = map[uint64]*execEntry{}
	}
	return ec
}

// Execs returns the number of actual query executions (cache misses), for
// the §7.3 ablation.
func (ec *ExecCache) Execs() int { return int(ec.execs.Load()) }

// Run resolves and executes a Difftree under one binding.
func (ec *ExecCache) Run(root *dt.Node, b dt.Binding) (*engine.Table, error) {
	e, err := ec.entry(root, b)
	if err != nil {
		return nil, err
	}
	return e.table, e.err
}

// entry resolves the tree, keys the result by structural hash and computes
// it at most once across all goroutines.
func (ec *ExecCache) entry(root *dt.Node, b dt.Binding) (*execEntry, error) {
	ast, err := dt.Resolve(root, b)
	if err != nil {
		return nil, err
	}
	// Mix the DB generation into the key: entries from before a mutation
	// become unreachable rather than stale. (Collisions on the 64-bit key
	// are tolerated, as everywhere difftree.Hash is used for identity.)
	key := dt.Hash(ast) ^ (ec.DB.Generation() * 0x9e3779b97f4a7c15)
	sh := &ec.shards[key%execShards]
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &execEntry{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		var t0 time.Time
		if ec.Trace != nil {
			t0 = time.Now()
		}
		e.plan, e.err = engine.Prepare(ec.DB, ast)
		if e.err == nil {
			ec.execs.Add(1)
			e.table, e.err = e.plan.Exec()
		}
		if ec.Trace != nil {
			ec.Trace.AddTimer("safety.exec", time.Since(t0))
		}
	})
	return e, nil
}

// colSet returns the distinct values of one result column, built once per
// (query result, column) instead of once per candidate check. Values key
// the map directly (engine.Value is comparable), so building the set
// renders no text and allocates nothing per row — the same type-tagged
// identity the engine's scan pipeline uses for grouping.
func (e *execEntry) colSet(col int) map[engine.Value]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.sets) <= col {
		e.sets = append(e.sets, nil)
	}
	if e.sets[col] == nil {
		have := make(map[engine.Value]bool, len(e.table.Rows))
		for _, row := range e.table.Rows {
			have[row[col]] = true
		}
		e.sets[col] = have
	}
	return e.sets[col]
}

// colExtent returns the [min, max] extent of one result column, memoized.
func (e *execEntry) colExtent(col int) (engine.Value, engine.Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.exts) <= col {
		e.exts = append(e.exts, nil)
	}
	if e.exts[col] == nil {
		c := &colExtentCache{}
		if len(e.table.Rows) > 0 {
			c.lo, c.hi, c.ok = e.table.Rows[0][col], e.table.Rows[0][col], true
			for _, row := range e.table.Rows[1:] {
				v := row[col]
				if engine.Compare(v, c.lo) < 0 {
					c.lo = v
				}
				if engine.Compare(v, c.hi) > 0 {
					c.hi = v
				}
			}
		}
		e.exts[col] = c
	}
	c := e.exts[col]
	return c.lo, c.hi, c.ok
}

// execFor memoizes the safety-check execution of one source tree under one
// query's binding for the lifetime of this analysis, so Resolve runs once
// per (tree, query) rather than once per candidate check.
func (sa *StateAnalysis) execFor(tree, qi int, exec *ExecCache) *execEntry {
	if sa.execMemo[tree] == nil {
		sa.execMemo[tree] = make([]*execEntry, len(sa.PerTree[tree].Tree.Queries))
	}
	if e := sa.execMemo[tree][qi]; e != nil {
		return e
	}
	ta := sa.PerTree[tree]
	e, err := exec.entry(ta.Tree.Root, ta.QB.PerQuery[qi])
	if err != nil {
		e = &execEntry{err: err}
	}
	sa.execMemo[tree][qi] = e
	return e
}

// safe implements the §4.2.2 safety heuristic: instantiate the source chart
// with each input query's result and check whether some single query's
// result can express every query binding of the target node. Verdicts are
// memoized per candidate — they do not depend on the V assignment, so one
// check serves every assignment enumerating the same candidate.
func (sa *StateAnalysis) safe(c ICand, exec *ExecCache) bool {
	if c.Stream.Unbounded {
		// pan/zoom move the viewport itself; they can express any range
		// regardless of the rendered extent.
		return true
	}
	key := safeKey{
		src: c.SourceVis, target: c.TargetTree, nodeID: c.Node.ID,
		stream: c.Stream.Name, cols: colsKey(c.Cols),
	}
	if v, ok := sa.safeMemo[key]; ok {
		return v
	}
	v := sa.safeUncached(c, exec)
	sa.safeMemo[key] = v
	return v
}

func (sa *StateAnalysis) safeUncached(c ICand, exec *ExecCache) bool {
	srcTA := sa.PerTree[c.SourceVis]
	required := sa.requiredValues(c)
	if required == nil {
		return false
	}
	if len(required) == 0 {
		return true // nothing to express (e.g. all bindings absent)
	}
	for qi := range srcTA.Tree.Queries {
		e := sa.execFor(c.SourceVis, qi, exec)
		if e.err != nil {
			continue
		}
		if sa.resultExpresses(c, e, required) {
			return true
		}
	}
	return false
}

// requirement is one tuple of values the interaction must express.
type requirement []string

// requiredValues collects the target node's query bindings as value tuples
// aligned with the stream positions. nil signals an unexpressible shape.
func (sa *StateAnalysis) requiredValues(c ICand) []requirement {
	ta := sa.PerTree[c.TargetTree]
	switch c.Stream.Shape {
	case vis.ShapeValue:
		var out []requirement
		for _, v := range ta.QB.ValuesFor(c.Node.ID) {
			out = append(out, requirement{v.Lit})
		}
		return out
	case vis.ShapeSet:
		valID := c.Node.Children[0].ID
		var out []requirement
		for _, v := range ta.QB.ValuesFor(c.Node.ID) {
			for _, rep := range v.Reps {
				if bv, ok := rep[valID]; ok {
					out = append(out, requirement{bv.Lit})
				}
			}
		}
		return out
	case vis.ShapeRange:
		// per query: the covered VAL literals in DFS order
		valIDs := rangeValIDs(c.Node)
		if len(valIDs) != len(c.Cols) {
			return nil
		}
		var out []requirement
		for _, b := range ta.QB.PerQuery {
			if c.Node.Kind == dt.KindOpt {
				if v, ok := b[c.Node.ID]; !ok || !v.Present {
					continue // absent: expressible by clearing the brush
				}
			}
			tuple := make(requirement, 0, len(valIDs))
			complete := true
			for _, id := range valIDs {
				v, ok := b[id]
				if !ok {
					complete = false
					break
				}
				tuple = append(tuple, v.Lit)
			}
			if complete {
				out = append(out, tuple)
			}
		}
		return out
	}
	return nil
}

// rangeValIDs lists the VAL choice nodes under a range-bound node in DFS
// order, skipping the optional OPT wrapper itself.
func rangeValIDs(n *dt.Node) []int {
	var out []int
	for _, c := range n.ChoiceNodes() {
		if c.Kind == dt.KindVal {
			out = append(out, c.ID)
		}
	}
	return out
}

// resultExpresses checks one rendered result against the requirements,
// using the entry's memoized per-column value sets and extents.
func (sa *StateAnalysis) resultExpresses(c ICand, e *execEntry, required []requirement) bool {
	res := e.table
	switch c.Stream.Shape {
	case vis.ShapeValue, vis.ShapeSet:
		col := c.Cols[0]
		if col >= len(res.Cols) {
			return false
		}
		have := e.colSet(col)
		for _, req := range required {
			if !valuePresent(have, req[0]) {
				return false
			}
		}
		return true
	case vis.ShapeRange:
		// bounds per stream position: required values must fall within the
		// rendered column's [min, max]
		for pos, col := range c.Cols {
			if col >= len(res.Cols) {
				return false
			}
			lo, hi, ok := e.colExtent(col)
			if !ok {
				return false
			}
			for _, req := range required {
				if !withinExtent(req[pos], lo, hi) {
					return false
				}
			}
		}
		return true
	}
	return false
}

func valuePresent(have map[engine.Value]bool, lit string) bool {
	if have[engine.StrVal(lit)] {
		return true
	}
	// Numeric literals must match both numeric cells ("50" vs 50.0) and
	// string cells holding the canonical text ("50.0" vs str "50") — the
	// same coercion the engine's `=` applies.
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		if have[engine.NumVal(f)] {
			return true
		}
		return have[engine.StrVal(strconv.FormatFloat(f, 'g', -1, 64))]
	}
	return false
}

func withinExtent(lit string, lo, hi engine.Value) bool {
	var v engine.Value
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		v = engine.NumVal(f)
	} else {
		v = engine.StrVal(lit)
	}
	return engine.Compare(v, lo) >= 0 && engine.Compare(v, hi) <= 0
}
