package mapping

import (
	"math/rand"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/widget"
)

var (
	testDB  = dataset.NewDB()
	testCat = catalog.Build(testDB, dataset.Keys())
)

func ctxFor(t *testing.T, sqls ...string) *transform.Context {
	t.Helper()
	qs, err := sqlparser.ParseAll(sqls)
	if err != nil {
		t.Fatal(err)
	}
	return &transform.Context{Queries: qs, Cat: testCat}
}

// drive applies the named rules greedily until none applies (bounded).
func drive(t *testing.T, s *transform.State, ctx *transform.Context, rules ...string) *transform.State {
	t.Helper()
	allowed := map[string]bool{}
	for _, r := range rules {
		allowed[r] = true
	}
	for step := 0; step < 40; step++ {
		applied := false
		for _, a := range transform.Applicable(s, ctx) {
			if !allowed[a.Rule] {
				continue
			}
			next, ok := a.Run()
			if !ok {
				continue
			}
			s = next
			applied = true
			break
		}
		if !applied {
			return s
		}
	}
	return s
}

func TestBestStaticBarChart(t *testing.T) {
	ctx := ctxFor(t, "SELECT hour, count(*) FROM flights GROUP BY hour")
	s := transform.InitState(ctx, true)
	ifc, err := Best(s, ctx, testDB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ifc.Vis) != 1 {
		t.Fatalf("vis count = %d", len(ifc.Vis))
	}
	if got := ifc.Vis[0].Mapping.Vis.Type; got != vis.Bar && got != vis.Point && got != vis.Line {
		t.Fatalf("vis type = %v, want a chart (not table)", got)
	}
	if ifc.InteractionCount() != 0 {
		t.Fatalf("static query should have no interactions, got %d", ifc.InteractionCount())
	}
	if ifc.TotalBox.W <= 0 || ifc.TotalBox.H <= 0 {
		t.Fatalf("layout box = %+v", ifc.TotalBox)
	}
}

func TestBestSliderForVAL(t *testing.T) {
	// Figure 3(c): a = VAL<num> should map to a slider (or the chart).
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NBits != 1 {
		t.Fatalf("choice bits = %d, want 1 (single VAL)", sa.NBits)
	}
	ifc, err := Best(s, ctx, testDB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ifc.InteractionCount() != 1 {
		t.Fatalf("interactions = %d, want 1", ifc.InteractionCount())
	}
}

func TestExplorePanZoomCandidates(t *testing.T) {
	// The Explore workload (Listing 1): after pushing ANY down and lifting
	// literals to VALs, the AND node has schema <hp,hp,mpg,mpg> and the
	// scatterplot's pan/zoom xy-viewport stream must be a candidate.
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NBits != 4 {
		t.Fatalf("choice bits = %d, want 4 VALs; tree: %v", sa.NBits, s.Trees[0].Root)
	}
	// scatter mapping must exist
	var scatter *vis.Mapping
	for i, m := range sa.PerTree[0].VisCands {
		if m.Vis.Type == vis.Point {
			scatter = &sa.PerTree[0].VisCands[i]
			break
		}
	}
	if scatter == nil {
		t.Fatalf("no scatterplot candidate; cands = %v", sa.PerTree[0].VisCands)
	}
	exec := NewExecCache(testDB)
	icands := sa.interactionCandidates([]vis.Mapping{*scatter}, exec)
	foundRange4 := false
	for _, ic := range icands {
		if ic.Stream.Name == "xy-viewport" || ic.Stream.Name == "xy-range" {
			foundRange4 = true
		}
	}
	if !foundRange4 {
		t.Fatalf("no 4-var range candidate; icands = %d", len(icands))
	}
	// end-to-end Best should prefer the vis interaction over 4 sliders
	ifc, err := Best(s, ctx, testDB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ifc.VisInts) == 0 {
		t.Fatalf("expected a visualization interaction; got widgets %v", ifc.Widgets)
	}
}

func TestSafetyRejectsUnexpressibleClick(t *testing.T) {
	// §4.2.2: a chart filtered to exclude a required binding value must not
	// be a safe click source.
	ctx := ctxFor(t,
		"SELECT a, count(*) FROM T WHERE p = 1 GROUP BY a",
		"SELECT a, count(*) FROM T WHERE p = 2 GROUP BY a")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// find VAL node and its required values
	valNode := findVal(s)
	if valNode == nil {
		t.Skip("no VAL produced")
	}
	// With safety on, click candidates bound to p-VAL must verify the
	// chart's a-column actually contains the p literals. The a column in
	// the toy table covers 1..4 and p covers 1..6, so this can pass or fail
	// depending on data; the point is that safety executes and filters.
	exec := NewExecCache(testDB)
	m := sa.PerTree[0].VisCands[0]
	icands := sa.interactionCandidates([]vis.Mapping{m}, exec)
	icandsNoSafety := sa.interactionCandidates([]vis.Mapping{m}, nil)
	if len(icands) > len(icandsNoSafety) {
		t.Fatal("safety checking added candidates")
	}
	if exec.Execs() == 0 && len(icandsNoSafety) > 0 {
		t.Fatal("safety checking never executed a query")
	}
}

func findVal(s *transform.State) *dt.Node {
	for _, tr := range s.Trees {
		var out *dt.Node
		tr.Root.Walk(func(n *dt.Node) bool {
			if n.Kind == dt.KindVal {
				out = n
			}
			return out == nil
		})
		if out != nil {
			return out
		}
	}
	return nil
}

func TestWidgetCandidatesForOptAndAny(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT date, cases FROM covid WHERE state = 'CA'",
		"SELECT date, cases FROM covid WHERE state = 'WA'")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	wc := sa.WidgetCandidates()
	if len(wc) == 0 {
		t.Fatal("no widget candidates")
	}
	kinds := map[widget.Kind]bool{}
	for _, w := range wc {
		kinds[w.Cand.Kind] = true
	}
	if !kinds[widget.Radio] && !kinds[widget.Dropdown] && !kinds[widget.Textbox] {
		t.Fatalf("no enumerating widget candidate: %v", kinds)
	}
}

func TestRandomInterfaceValid(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	okCount := 0
	for i := 0; i < 10; i++ {
		ifc, ok := Random(sa, testDB, rng, DefaultOptions())
		if !ok {
			continue
		}
		okCount++
		if ifc.Cost <= 0 {
			t.Fatalf("random interface cost = %v", ifc.Cost)
		}
		// exact cover: every choice bit covered once
		var covered uint64
		for _, w := range ifc.Widgets {
			m := sa.Mask(w.Tree, w.Cover)
			if covered&m != 0 {
				t.Fatal("overlapping widget covers")
			}
			covered |= m
		}
		for _, v := range ifc.VisInts {
			m := sa.Mask(v.Tree, v.Cover)
			if covered&m != 0 {
				t.Fatal("overlapping interaction covers")
			}
			covered |= m
		}
		if covered != sa.AllMask() {
			t.Fatalf("cover incomplete: %b vs %b", covered, sa.AllMask())
		}
	}
	if okCount == 0 {
		t.Fatal("random mapping never succeeded")
	}
}

func TestChangedBitsSequence(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s := transform.InitState(ctx, true)
	s = drive(t, s, ctx, "PushANY", "Noop", "ANY→VAL")
	sa, err := Analyze(s, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sa.NBits != 1 {
		t.Fatalf("bits = %d", sa.NBits)
	}
	// q0 sets the value, q1 changes it, q2 repeats it (no change)
	if sa.Changed[0] == 0 || sa.Changed[1] == 0 {
		t.Fatalf("changed = %b %b", sa.Changed[0], sa.Changed[1])
	}
	if sa.Changed[2] != 0 {
		t.Fatalf("identical query should not change bindings: %b", sa.Changed[2])
	}
	if got := sa.UsageCount(1); got != 2 {
		t.Fatalf("usage = %d, want 2", got)
	}
}

func TestAnalyzeRejectsOverBudget(t *testing.T) {
	// a tree with >64 choice nodes must be rejected
	var sqls []string
	for i := 0; i < 2; i++ {
		sqls = append(sqls, "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	}
	ctx := ctxFor(t, sqls...)
	s := transform.InitState(ctx, false)
	// fabricate an over-budget tree
	anyN := dt.New(dt.KindAny, "")
	for i := 0; i < 70; i++ {
		anyN.Children = append(anyN.Children, dt.New(dt.KindVal, "num", dt.Number("1")))
	}
	s.Trees[0].Root.Children[2] = dt.New(dt.KindWhere, "", dt.New(dt.KindAnd, "", anyN))
	s.Trees[0].Root.Renumber()
	if _, err := Analyze(s, ctx); err == nil {
		t.Fatal("expected over-budget rejection")
	}
}

func TestTableAlwaysAvailable(t *testing.T) {
	// 9-attribute SDSS projection: chart mappings fail, table must remain.
	ctx := ctxFor(t,
		`SELECT DISTINCT gal.objID, gal.u, gal.g, gal.r, gal.i, gal.z, s.z, s.ra, s.dec
		 FROM galaxy as gal, specObj as s WHERE s.bestObjID = gal.objID`)
	s := transform.InitState(ctx, true)
	ifc, err := Best(s, ctx, testDB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ifc.Vis[0].Mapping.Vis.Type != vis.Table {
		t.Fatalf("vis = %v, want table", ifc.Vis[0].Mapping.Vis.Type)
	}
}

// valuePresent must reproduce the engine's `=` coercion over the
// Value-keyed sets: a numeric literal matches numeric cells and string
// cells holding its canonical text, but non-canonical text stays distinct.
func TestValuePresentCoercion(t *testing.T) {
	have := map[engine.Value]bool{
		engine.NumVal(50):     true,
		engine.StrVal("60"):   true,
		engine.StrVal("70.5"): true,
		engine.StrVal("eng"):  true,
	}
	cases := []struct {
		lit  string
		want bool
	}{
		{"50", true},    // num cell, exact
		{"50.0", true},  // num cell via parsed value
		{"60", true},    // str cell, exact
		{"60.0", true},  // str cell via canonical text
		{"70.5", true},  // str cell, exact
		{"70.50", true}, // canonicalizes to "70.5"
		{"eng", true},
		{"51", false},
		{"ops", false},
	}
	for _, c := range cases {
		if got := valuePresent(have, c.lit); got != c.want {
			t.Errorf("valuePresent(%q) = %v, want %v", c.lit, got, c.want)
		}
	}
}
