package widget

import (
	"testing"
	"testing/quick"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/schema"
	"pi2/internal/sqlparser"
)

var testCat = catalog.Build(dataset.NewDB(), dataset.Keys())

// analyze builds a tree with the given predicate subtree at the WHERE slot.
func analyze(t *testing.T, pred *dt.Node) (*schema.Info, *dt.QueryBindings, *dt.Node) {
	t.Helper()
	q := sqlparser.MustParse("SELECT p FROM T WHERE a = 1")
	tree := q.Clone()
	tree.Children[2] = dt.New(dt.KindWhere, "", dt.New(dt.KindAnd, "", pred))
	tree.Renumber()
	info := schema.Analyze(tree, []*dt.Node{q}, testCat)
	return info, nil, tree
}

func kindsOf(cands []Candidate) map[Kind]bool {
	out := map[Kind]bool{}
	for _, c := range cands {
		out[c.Kind] = true
	}
	return out
}

func TestAnyGetsEnumeratingWidgets(t *testing.T) {
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	info, _, _ := analyze(t, anyN)
	cands := CandidatesFor(anyN, info, nil)
	kinds := kindsOf(cands)
	if !kinds[Radio] || !kinds[Dropdown] || !kinds[Button] {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, c := range cands {
		if len(c.Cover) != 1 || c.Cover[0] != anyN.ID {
			t.Errorf("ANY widget cover = %v", c.Cover)
		}
		if c.Options != 2 {
			t.Errorf("options = %d", c.Options)
		}
	}
}

func TestValNumGetsSlider(t *testing.T) {
	val := dt.New(dt.KindVal, "num", dt.Number("1"), dt.Number("2"))
	pred := dt.New(dt.KindBinary, "=", dt.Ident("a"), val)
	info, _, _ := analyze(t, pred)
	cands := CandidatesFor(val, info, nil)
	kinds := kindsOf(cands)
	if !kinds[Slider] || !kinds[Textbox] {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, c := range cands {
		if c.Kind == Slider {
			if c.Min >= c.Max {
				t.Errorf("slider domain [%g, %g]", c.Min, c.Max)
			}
		}
	}
}

func TestValStrGetsDropdownFromCatalog(t *testing.T) {
	// state VAL over covid.state: the dropdown enumerates all 5 states.
	q := sqlparser.MustParse("SELECT date, cases FROM covid WHERE state = 'CA'")
	tree := q.Clone()
	val := dt.New(dt.KindVal, "str", dt.Str("CA"), dt.Str("WA"))
	tree.Children[2].Children[0].Children[0].Children[1] = val
	tree.Renumber()
	info := schema.Analyze(tree, []*dt.Node{q}, testCat)
	cands := CandidatesFor(val, info, nil)
	var dd *Candidate
	for i := range cands {
		if cands[i].Kind == Dropdown {
			dd = &cands[i]
		}
	}
	if dd == nil {
		t.Fatalf("no dropdown; kinds = %v", kindsOf(cands))
	}
	if dd.Options != 5 {
		t.Errorf("dropdown options = %d, want 5 states", dd.Options)
	}
}

func TestOptGetsToggle(t *testing.T) {
	opt := dt.New(dt.KindOpt, "", dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")))
	info, _, _ := analyze(t, opt)
	kinds := kindsOf(CandidatesFor(opt, info, nil))
	if !kinds[Toggle] {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestRangeSliderOnBetween(t *testing.T) {
	v1 := dt.New(dt.KindVal, "num", dt.Number("1"))
	v2 := dt.New(dt.KindVal, "num", dt.Number("3"))
	between := dt.New(dt.KindBetween, "", dt.Ident("a"), v1, v2)
	info, _, tree := analyze(t, between)
	_ = tree
	// valid bindings (1, 3) and (2, 4)
	qb := dt.CollectQueryBindings([]dt.Binding{
		{v1.ID: dt.BindValue{Lit: "1", LitKind: dt.KindNumber}, v2.ID: dt.BindValue{Lit: "3", LitKind: dt.KindNumber}},
		{v1.ID: dt.BindValue{Lit: "2", LitKind: dt.KindNumber}, v2.ID: dt.BindValue{Lit: "4", LitKind: dt.KindNumber}},
	})
	cands := CandidatesFor(between, info, qb)
	kinds := kindsOf(cands)
	if !kinds[RangeSlider] {
		t.Fatalf("no range slider; kinds = %v", kinds)
	}
	for _, c := range cands {
		if c.Kind == RangeSlider && len(c.Cover) != 2 {
			t.Errorf("cover = %v", c.Cover)
		}
	}
}

func TestRangeSliderConstraintViolation(t *testing.T) {
	// binding (5, 3) violates s <= e (paper Example 6's constraint)
	v1 := dt.New(dt.KindVal, "num", dt.Number("5"))
	v2 := dt.New(dt.KindVal, "num", dt.Number("3"))
	between := dt.New(dt.KindBetween, "", dt.Ident("a"), v1, v2)
	info, _, _ := analyze(t, between)
	qb := dt.CollectQueryBindings([]dt.Binding{
		{v1.ID: dt.BindValue{Lit: "5", LitKind: dt.KindNumber}, v2.ID: dt.BindValue{Lit: "3", LitKind: dt.KindNumber}},
	})
	kinds := kindsOf(CandidatesFor(between, info, qb))
	if kinds[RangeSlider] {
		t.Fatal("range slider offered despite s > e binding")
	}
}

func TestSubsetGetsCheckbox(t *testing.T) {
	sub := dt.New(dt.KindSubset, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	info, _, _ := analyze(t, sub)
	kinds := kindsOf(CandidatesFor(sub, info, nil))
	if !kinds[Checkbox] {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestMultiGetsAdderAndCheckbox(t *testing.T) {
	pattern := dt.New(dt.KindAny, "", dt.Ident("a"), dt.Ident("b"))
	multi := dt.New(dt.KindMulti, "", pattern)
	// place in a group-by list
	q := sqlparser.MustParse("SELECT p FROM T GROUP BY a")
	tree := q.Clone()
	tree.Children[3] = dt.New(dt.KindGroupBy, "", multi)
	tree.Renumber()
	info := schema.Analyze(tree, []*dt.Node{q}, testCat)
	qb := dt.CollectQueryBindings([]dt.Binding{
		{multi.ID: dt.BindValue{Reps: []dt.Binding{{pattern.ID: dt.BindValue{Index: 0}}}}},
	})
	cands := CandidatesFor(multi, info, qb)
	kinds := kindsOf(cands)
	if !kinds[Adder] || !kinds[Checkbox] {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, c := range cands {
		if len(c.Cover) != 2 {
			t.Errorf("multi cover should include the pattern ANY: %v", c.Cover)
		}
	}
}

func TestCheckboxRejectsDuplicateReps(t *testing.T) {
	pattern := dt.New(dt.KindAny, "", dt.Ident("a"), dt.Ident("b"))
	multi := dt.New(dt.KindMulti, "", pattern)
	q := sqlparser.MustParse("SELECT p FROM T GROUP BY a")
	tree := q.Clone()
	tree.Children[3] = dt.New(dt.KindGroupBy, "", multi)
	tree.Renumber()
	info := schema.Analyze(tree, []*dt.Node{q}, testCat)
	// duplicate repetitions [a, a] cannot be expressed by a checkbox
	qb := dt.CollectQueryBindings([]dt.Binding{
		{multi.ID: dt.BindValue{Reps: []dt.Binding{
			{pattern.ID: dt.BindValue{Index: 0}},
			{pattern.ID: dt.BindValue{Index: 0}},
		}}},
	})
	kinds := kindsOf(CandidatesFor(multi, info, qb))
	if kinds[Checkbox] {
		t.Fatal("checkbox offered despite duplicate repetitions")
	}
	if !kinds[Adder] {
		t.Fatal("adder should still be offered")
	}
}

func TestCostCoeffsMonotone(t *testing.T) {
	// Cm grows with domain size for enumerating widgets.
	for _, k := range []Kind{Button, Radio, Dropdown, Checkbox} {
		a0, a1, a2 := CostCoeffs(k)
		f := func(d uint8) bool {
			x := float64(d % 64)
			c1 := a0 + a1*x + a2*x*x
			c2 := a0 + a1*(x+1) + a2*(x+1)*(x+1)
			return c2 > c1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestEffectiveDomainWeighsLabelSize(t *testing.T) {
	small := []*dt.Node{dt.Str("CA"), dt.Str("WA")}
	big := []*dt.Node{
		sqlparser.MustParse("SELECT a, b, c FROM T WHERE a = 1 GROUP BY a"),
		sqlparser.MustParse("SELECT a, b, c FROM T WHERE b = 2 GROUP BY a"),
	}
	if effectiveDomain(small) >= effectiveDomain(big) {
		t.Fatalf("whole-query options should weigh more: %d vs %d",
			effectiveDomain(small), effectiveDomain(big))
	}
}

func TestSchemaPatternsComplete(t *testing.T) {
	for _, k := range Kinds() {
		if SchemaPattern(k) == "" {
			t.Errorf("%s has no schema pattern", k)
		}
	}
	if Constraint(RangeSlider) != "s <= e" {
		t.Error("range slider constraint missing")
	}
}
