// Package widget implements PI2's widget library (paper §4.2, Table 2):
// widget schemas, constraints, schema matching against dynamic-node schemas,
// and the per-widget manipulation-cost coefficients used by the SUPPLE cost
// model (§5).
package widget

import (
	"strconv"

	dt "pi2/internal/difftree"
	"pi2/internal/schema"
)

// Kind is a widget type.
type Kind string

const (
	Button      Kind = "button"
	Radio       Kind = "radio"
	Dropdown    Kind = "dropdown"
	Checkbox    Kind = "checkbox"
	Toggle      Kind = "toggle"
	Slider      Kind = "slider"
	RangeSlider Kind = "rangeslider"
	Textbox     Kind = "textbox"
	Adder       Kind = "adder"
)

// Kinds lists all widget kinds (Table 2's library).
func Kinds() []Kind {
	return []Kind{Button, Radio, Dropdown, Checkbox, Toggle, Slider, RangeSlider, Textbox, Adder}
}

// SchemaPattern documents the widget's schema in the paper's notation.
func SchemaPattern(k Kind) string {
	switch k {
	case Button, Radio, Dropdown, Textbox:
		return "<v:_>"
	case Toggle:
		return "<v:_?>"
	case Checkbox, Adder:
		return "<v:_*>"
	case Slider:
		return "<v:num>"
	case RangeSlider:
		return "<s:num,e:num>"
	}
	return ""
}

// Constraint documents the widget's binding constraint, if any.
func Constraint(k Kind) string {
	if k == RangeSlider {
		return "s <= e"
	}
	return ""
}

// CostCoeffs returns the SUPPLE manipulation-cost polynomial coefficients
// Cm(w) = a0 + a1·|w.d| + a2·|w.d|² (paper §5), fit per widget kind on an
// estimated-milliseconds scale so they are commensurable with the paper's
// literal Fitts'-law constants (a=1, b=25, ~50–150 per movement). Widgets
// that enumerate options define |w.d| as the option count; others use 0.
func CostCoeffs(k Kind) (a0, a1, a2 float64) {
	switch k {
	case Button:
		return 110, 20, 8
	case Radio:
		return 120, 20, 8
	case Dropdown:
		return 160, 12, 8
	case Checkbox:
		return 130, 25, 8
	case Toggle:
		return 80, 0, 0
	case Slider:
		return 150, 0, 0
	case RangeSlider:
		return 210, 0, 0
	case Textbox:
		return 450, 0, 0
	case Adder:
		return 280, 20, 0
	}
	return 200, 0, 0
}

// Candidate is one valid widget mapping for a dynamic node.
type Candidate struct {
	Kind       Kind
	NodeID     int   // the dynamic node the widget binds
	Cover      []int // choice-node IDs the widget expresses
	DomainSize int   // |w.d| for the cost model
	Options    int   // enumerated option count (== DomainSize for enumerating widgets)
	Min, Max   float64
	NumDomain  bool
}

// CandidatesFor enumerates the widget candidates for a dynamic node, given
// the analysis info and the node's query bindings (paper §4.2.1: a mapping
// is valid if the schemas match and the bindings satisfy the constraints).
func CandidatesFor(n *dt.Node, info *schema.Info, qb *dt.QueryBindings) []Candidate {
	if !info.Dynamic[n] {
		return nil
	}
	s := info.SchemaOf(n)
	if s == nil {
		return nil
	}
	var out []Candidate
	switch n.Kind {
	case dt.KindAny:
		// Radio / dropdown / button choose one of the children. Cover is
		// the ANY itself; dynamic children keep their own widgets (nested
		// sub-interfaces, §4.3 layout widgets). The cost-model domain size
		// weights each option by its rendered label length: scanning a list
		// of whole SQL statements takes far longer than scanning 'CA'/'WA'.
		k := len(n.Children)
		d := effectiveDomain(n.Children)
		for _, w := range []Kind{Radio, Dropdown, Button} {
			out = append(out, Candidate{Kind: w, NodeID: n.ID, Cover: []int{n.ID}, DomainSize: d, Options: k})
		}
	case dt.KindOpt:
		out = append(out, Candidate{Kind: Toggle, NodeID: n.ID, Cover: []int{n.ID}, DomainSize: 0, Options: 2})
	case dt.KindVal:
		t, _ := s.SingleType()
		min, max, values, card, hasDomain := t.Domain()
		if t.IsNumeric() {
			c := Candidate{Kind: Slider, NodeID: n.ID, Cover: []int{n.ID}, NumDomain: true}
			if hasDomain {
				c.Min, c.Max = min, max
			} else {
				c.Min, c.Max = bindingRange(qb, n.ID)
			}
			out = append(out, c)
		}
		if hasDomain && len(values) > 0 && card < 64 {
			out = append(out, Candidate{Kind: Dropdown, NodeID: n.ID, Cover: []int{n.ID}, DomainSize: len(values), Options: len(values)})
		}
		out = append(out, Candidate{Kind: Textbox, NodeID: n.ID, Cover: []int{n.ID}})
	case dt.KindSubset:
		if allStaticChildren(info, n) {
			k := len(n.Children)
			out = append(out, Candidate{Kind: Checkbox, NodeID: n.ID, Cover: []int{n.ID}, DomainSize: k, Options: k})
		}
	case dt.KindMulti:
		cover := choiceIDs(n)
		pattern := n.Children[0]
		if staticOptions := multiOptionCount(info, pattern); staticOptions > 0 && noDuplicateReps(qb, n.ID) {
			out = append(out, Candidate{Kind: Checkbox, NodeID: n.ID, Cover: cover, DomainSize: staticOptions, Options: staticOptions})
		}
		out = append(out, Candidate{Kind: Adder, NodeID: n.ID, Cover: cover, DomainSize: maxReps(qb, n.ID)})
	default:
		// Dynamic ancestor nodes: a range slider matches a <num, num>
		// cross-product schema covering exactly two choice nodes
		// (paper Figure 8's list node).
		if types, ok := s.NumericTypes(); ok && len(types) == 2 {
			cover := choiceIDs(n)
			if len(cover) == 2 && rangeBindingsValid(qb, cover) {
				min1, max1, _, _, ok1 := types[0].Domain()
				min2, max2, _, _, ok2 := types[1].Domain()
				c := Candidate{Kind: RangeSlider, NodeID: n.ID, Cover: cover, NumDomain: true}
				if ok1 && ok2 {
					c.Min, c.Max = minf(min1, min2), maxf(max1, max2)
				} else {
					lo1, hi1 := bindingRange(qb, cover[0])
					lo2, hi2 := bindingRange(qb, cover[1])
					c.Min, c.Max = minf(lo1, lo2), maxf(hi1, hi2)
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// effectiveDomain weights each enumerated option by its rendered size:
// an option roughly the size of an attribute value counts 1; an option
// that is a whole query fragment counts several (SUPPLE-style visual
// search grows with the amount of text scanned).
func effectiveDomain(options []*dt.Node) int {
	total := 0.0
	for _, o := range options {
		sz := o.Size() // subtree node count approximates label length
		total += 1 + float64(sz)/4
	}
	return int(total + 0.5)
}

// choiceIDs returns the IDs of all choice nodes in the subtree.
func choiceIDs(n *dt.Node) []int {
	var out []int
	for _, c := range n.ChoiceNodes() {
		out = append(out, c.ID)
	}
	return out
}

func allStaticChildren(info *schema.Info, n *dt.Node) bool {
	for _, c := range n.Children {
		if info.Dynamic[c] {
			return false
		}
	}
	return true
}

// multiOptionCount returns the enumerable option count of a MULTI pattern:
// a static item counts 1, an ANY over static items counts its children;
// 0 when the pattern is not enumerable.
func multiOptionCount(info *schema.Info, pattern *dt.Node) int {
	if !info.Dynamic[pattern] {
		return 1
	}
	if pattern.Kind == dt.KindAny && allStaticChildren(info, pattern) {
		return len(pattern.Children)
	}
	return 0
}

// noDuplicateReps verifies no query binding repeats an item (checkboxes
// cannot express duplicate list entries).
func noDuplicateReps(qb *dt.QueryBindings, id int) bool {
	if qb == nil {
		return true
	}
	for _, v := range qb.ValuesFor(id) {
		seen := map[string]bool{}
		for _, rep := range v.Reps {
			k := rep.KeyString()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
	}
	return true
}

func maxReps(qb *dt.QueryBindings, id int) int {
	max := 0
	if qb == nil {
		return 0
	}
	for _, v := range qb.ValuesFor(id) {
		if len(v.Reps) > max {
			max = len(v.Reps)
		}
	}
	return max
}

// bindingRange computes the numeric extent of a VAL node's query bindings.
func bindingRange(qb *dt.QueryBindings, id int) (float64, float64) {
	lo, hi := 0.0, 0.0
	first := true
	if qb == nil {
		return 0, 0
	}
	for _, v := range qb.ValuesFor(id) {
		f, err := strconv.ParseFloat(v.Lit, 64)
		if err != nil {
			continue
		}
		if first || f < lo {
			lo = f
		}
		if first || f > hi {
			hi = f
		}
		first = false
	}
	return lo, hi
}

// rangeBindingsValid checks the range-slider constraint s ≤ e over every
// query binding (paper §4.2.1 Example 6).
func rangeBindingsValid(qb *dt.QueryBindings, cover []int) bool {
	if qb == nil {
		return true
	}
	for _, b := range qb.PerQuery {
		lo, okLo := b[cover[0]]
		hi, okHi := b[cover[1]]
		if !okLo || !okHi {
			continue
		}
		flo, err1 := strconv.ParseFloat(lo.Lit, 64)
		fhi, err2 := strconv.ParseFloat(hi.Lit, 64)
		if err1 != nil || err2 != nil {
			return false
		}
		if flo > fhi {
			return false
		}
	}
	return true
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
