// Package layout implements PI2's hierarchical interface layout (paper
// §4.3): a layout tree whose internal nodes lay children out horizontally or
// vertically, bounding-box estimation, and a branch-and-bound direction
// optimizer in the style of SUPPLE [17].
package layout

import "math"

// Dir is a layout direction.
type Dir uint8

const (
	Horiz Dir = iota
	Vert
)

// Box is an axis-aligned bounding box.
type Box struct {
	X, Y, W, H float64
}

// Center returns the box centroid.
func (b Box) Center() (float64, float64) { return b.X + b.W/2, b.Y + b.H/2 }

// Node is a layout-tree node. Leaves carry an element ID and its estimated
// size; internal nodes lay out their children in Dir. A non-nil Header is a
// "layout widget" (paper: a toggle or radio that chooses sub-interfaces)
// rendered above its children at the top-left.
type Node struct {
	ID       string // leaf element ID ("" for internal nodes)
	W, H     float64
	Children []*Node
	Dir      Dir
	Header   *Node
}

// Leaf constructs a leaf node.
func Leaf(id string, w, h float64) *Node { return &Node{ID: id, W: w, H: h} }

// Group constructs an internal node.
func Group(children ...*Node) *Node { return &Node{Children: children} }

const gap = 8 // pixels between siblings

// Arrange computes every element's box for the current direction
// assignment. It returns the root bounding box and fills boxes (keyed by
// leaf ID; internal nodes are anonymous).
func (n *Node) Arrange(x, y float64, boxes map[string]Box) Box {
	if len(n.Children) == 0 && n.Header == nil {
		b := Box{X: x, Y: y, W: n.W, H: n.H}
		if n.ID != "" {
			boxes[n.ID] = b
		}
		return b
	}
	cx, cy := x, y
	total := Box{X: x, Y: y}
	if n.Header != nil {
		hb := n.Header.Arrange(x, y, boxes)
		cy = y + hb.H + gap
		total.W = hb.W
		total.H = hb.H + gap
	}
	maxW, maxH := 0.0, 0.0
	for i, c := range n.Children {
		var b Box
		if n.Dir == Horiz {
			b = c.Arrange(cx, cy, boxes)
			cx += b.W
			if i < len(n.Children)-1 {
				cx += gap
			}
			if b.H > maxH {
				maxH = b.H
			}
		} else {
			b = c.Arrange(cx, cy, boxes)
			cy += b.H
			if i < len(n.Children)-1 {
				cy += gap
			}
			if b.W > maxW {
				maxW = b.W
			}
		}
	}
	if n.Dir == Horiz {
		total.W = math.Max(total.W, cx-x)
		total.H = (cy - y) + maxH
	} else {
		total.W = math.Max(math.Max(total.W, maxW), 0)
		total.H = cy - y
	}
	// recompute exact extent from descendants for robustness
	ext := extent(n, boxes)
	if ext.W > 0 || ext.H > 0 {
		total = ext
	}
	return total
}

func extent(n *Node, boxes map[string]Box) Box {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	var walk func(m *Node)
	walk = func(m *Node) {
		if m.ID != "" {
			if b, ok := boxes[m.ID]; ok {
				minX = math.Min(minX, b.X)
				minY = math.Min(minY, b.Y)
				maxX = math.Max(maxX, b.X+b.W)
				maxY = math.Max(maxY, b.Y+b.H)
			}
		}
		if m.Header != nil {
			walk(m.Header)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	if math.IsInf(minX, 1) {
		return Box{}
	}
	return Box{X: minX, Y: minY, W: maxX - minX, H: maxY - minY}
}

// internalNodes collects the internal nodes (direction slots) in DFS order.
func internalNodes(n *Node) []*Node {
	var out []*Node
	var walk func(m *Node)
	walk = func(m *Node) {
		if len(m.Children) > 0 {
			out = append(out, m)
		}
		if m.Header != nil {
			walk(m.Header)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// maxExhaustive bounds the exhaustive direction search; larger trees fall
// back to a greedy alternating assignment (branch-and-bound in SUPPLE's
// spirit, bounded for predictable latency).
const maxExhaustive = 10

// Optimize searches direction assignments for the layout tree, minimizing
// cost (a callback receiving the element boxes and the root box). It
// returns the best boxes, root box and cost; the tree is left holding the
// best assignment.
func Optimize(root *Node, cost func(boxes map[string]Box, total Box) float64) (map[string]Box, Box, float64) {
	slots := internalNodes(root)
	if len(slots) > maxExhaustive {
		// greedy: alternate directions by depth
		assignAlternating(root, 0)
		boxes := map[string]Box{}
		total := root.Arrange(0, 0, boxes)
		return boxes, total, cost(boxes, total)
	}
	best := math.Inf(1)
	var bestDirs []Dir
	dirs := make([]Dir, len(slots))
	var rec func(i int)
	rec = func(i int) {
		if i == len(slots) {
			for j, s := range slots {
				s.Dir = dirs[j]
			}
			boxes := map[string]Box{}
			total := root.Arrange(0, 0, boxes)
			c := cost(boxes, total)
			if c < best {
				best = c
				bestDirs = append([]Dir(nil), dirs...)
			}
			return
		}
		for _, d := range []Dir{Horiz, Vert} {
			dirs[i] = d
			rec(i + 1)
		}
	}
	rec(0)
	for j, s := range slots {
		s.Dir = bestDirs[j]
	}
	boxes := map[string]Box{}
	total := root.Arrange(0, 0, boxes)
	return boxes, total, best
}

// AssignDirs sets every internal node's direction from the callback (used
// for random layouts during MCTS reward estimation).
func (n *Node) AssignDirs(pick func() Dir) {
	for _, s := range internalNodes(n) {
		s.Dir = pick()
	}
}

func assignAlternating(n *Node, depth int) {
	if len(n.Children) > 0 {
		if depth%2 == 0 {
			n.Dir = Vert
		} else {
			n.Dir = Horiz
		}
	}
	if n.Header != nil {
		assignAlternating(n.Header, depth+1)
	}
	for _, c := range n.Children {
		assignAlternating(c, depth+1)
	}
}
