// Package layout implements PI2's hierarchical interface layout (paper
// §4.3): a layout tree whose internal nodes lay children out horizontally or
// vertically, bounding-box estimation, and a branch-and-bound direction
// optimizer in the style of SUPPLE [17].
package layout

import "math"

// Dir is a layout direction.
type Dir uint8

const (
	Horiz Dir = iota
	Vert
)

// Box is an axis-aligned bounding box.
type Box struct {
	X, Y, W, H float64
}

// Center returns the box centroid.
func (b Box) Center() (float64, float64) { return b.X + b.W/2, b.Y + b.H/2 }

// Node is a layout-tree node. Leaves carry an element ID and its estimated
// size; internal nodes lay out their children in Dir. A non-nil Header is a
// "layout widget" (paper: a toggle or radio that chooses sub-interfaces)
// rendered above its children at the top-left.
type Node struct {
	ID       string // leaf element ID ("" for internal nodes)
	W, H     float64
	Children []*Node
	Dir      Dir
	Header   *Node
}

// Leaf constructs a leaf node.
func Leaf(id string, w, h float64) *Node { return &Node{ID: id, W: w, H: h} }

// Group constructs an internal node.
func Group(children ...*Node) *Node { return &Node{Children: children} }

const gap = 8 // pixels between siblings

// Arrange computes every element's box for the current direction
// assignment. It returns the root bounding box and fills boxes (keyed by
// leaf ID; internal nodes are anonymous).
func (n *Node) Arrange(x, y float64, boxes map[string]Box) Box {
	b, _ := n.arrange(x, y, boxes)
	return b
}

// arrange is Arrange plus an incremental exact-extent computation: named
// reports whether the subtree recorded at least one named leaf box, in which
// case the returned box is the bounding box over exactly those leaves (what
// a full descendant walk would recompute — done in one pass here instead of
// once per internal node).
func (n *Node) arrange(x, y float64, boxes map[string]Box) (Box, bool) {
	if len(n.Children) == 0 && n.Header == nil {
		b := Box{X: x, Y: y, W: n.W, H: n.H}
		if n.ID != "" {
			boxes[n.ID] = b
			return b, true
		}
		return b, false
	}
	cx, cy := x, y
	total := Box{X: x, Y: y}
	var ext Box
	named := false
	acc := func(b Box, ok bool) {
		if !ok {
			return
		}
		if !named {
			ext, named = b, true
			return
		}
		x2 := math.Max(ext.X+ext.W, b.X+b.W)
		y2 := math.Max(ext.Y+ext.H, b.Y+b.H)
		ext.X = math.Min(ext.X, b.X)
		ext.Y = math.Min(ext.Y, b.Y)
		ext.W = x2 - ext.X
		ext.H = y2 - ext.Y
	}
	if n.Header != nil {
		hb, hn := n.Header.arrange(x, y, boxes)
		acc(hb, hn)
		cy = y + hb.H + gap
		total.W = hb.W
		total.H = hb.H + gap
	}
	maxW, maxH := 0.0, 0.0
	for i, c := range n.Children {
		var b Box
		var bn bool
		if n.Dir == Horiz {
			b, bn = c.arrange(cx, cy, boxes)
			cx += b.W
			if i < len(n.Children)-1 {
				cx += gap
			}
			if b.H > maxH {
				maxH = b.H
			}
		} else {
			b, bn = c.arrange(cx, cy, boxes)
			cy += b.H
			if i < len(n.Children)-1 {
				cy += gap
			}
			if b.W > maxW {
				maxW = b.W
			}
		}
		acc(b, bn)
	}
	if n.Dir == Horiz {
		total.W = math.Max(total.W, cx-x)
		total.H = (cy - y) + maxH
	} else {
		total.W = math.Max(math.Max(total.W, maxW), 0)
		total.H = cy - y
	}
	// the exact extent over named descendants wins when it is non-degenerate
	// (mirroring the previous recomputation-from-boxes behavior)
	if named && (ext.W > 0 || ext.H > 0) {
		return ext, true
	}
	return total, named
}

// internalNodes collects the internal nodes (direction slots) in DFS order.
func internalNodes(n *Node) []*Node {
	var out []*Node
	var walk func(m *Node)
	walk = func(m *Node) {
		if len(m.Children) > 0 {
			out = append(out, m)
		}
		if m.Header != nil {
			walk(m.Header)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// maxExhaustive bounds the exhaustive direction search; larger trees fall
// back to a greedy alternating assignment (branch-and-bound in SUPPLE's
// spirit, bounded for predictable latency).
const maxExhaustive = 10

// Optimize searches direction assignments for the layout tree, minimizing
// cost (a callback receiving the element boxes and the root box). It
// returns the best boxes, root box and cost; the tree is left holding the
// best assignment.
func Optimize(root *Node, cost func(boxes map[string]Box, total Box) float64) (map[string]Box, Box, float64) {
	slots := internalNodes(root)
	if len(slots) > maxExhaustive {
		// greedy: alternate directions by depth
		assignAlternating(root, 0)
		boxes := map[string]Box{}
		total := root.Arrange(0, 0, boxes)
		return boxes, total, cost(boxes, total)
	}
	best := math.Inf(1)
	var bestDirs []Dir
	dirs := make([]Dir, len(slots))
	// One scratch box map serves the whole 2^k enumeration; only the final
	// winning arrangement below allocates the map the caller keeps.
	scratch := map[string]Box{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(slots) {
			for j, s := range slots {
				s.Dir = dirs[j]
			}
			clear(scratch)
			total := root.Arrange(0, 0, scratch)
			c := cost(scratch, total)
			if c < best {
				best = c
				bestDirs = append([]Dir(nil), dirs...)
			}
			return
		}
		for _, d := range []Dir{Horiz, Vert} {
			dirs[i] = d
			rec(i + 1)
		}
	}
	rec(0)
	for j, s := range slots {
		s.Dir = bestDirs[j]
	}
	boxes := map[string]Box{}
	total := root.Arrange(0, 0, boxes)
	return boxes, total, best
}

// AssignDirs sets every internal node's direction from the callback (used
// for random layouts during MCTS reward estimation).
func (n *Node) AssignDirs(pick func() Dir) {
	for _, s := range internalNodes(n) {
		s.Dir = pick()
	}
}

func assignAlternating(n *Node, depth int) {
	if len(n.Children) > 0 {
		if depth%2 == 0 {
			n.Dir = Vert
		} else {
			n.Dir = Horiz
		}
	}
	if n.Header != nil {
		assignAlternating(n.Header, depth+1)
	}
	for _, c := range n.Children {
		assignAlternating(c, depth+1)
	}
}
