package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrangeHorizontal(t *testing.T) {
	root := Group(Leaf("a", 100, 50), Leaf("b", 80, 60))
	root.Dir = Horiz
	boxes := map[string]Box{}
	total := root.Arrange(0, 0, boxes)
	a, b := boxes["a"], boxes["b"]
	if a.X != 0 || b.X != 100+gap {
		t.Fatalf("horizontal positions: a=%+v b=%+v", a, b)
	}
	if total.W != 100+gap+80 {
		t.Fatalf("total width = %g", total.W)
	}
	if total.H != 60 {
		t.Fatalf("total height = %g", total.H)
	}
}

func TestArrangeVertical(t *testing.T) {
	root := Group(Leaf("a", 100, 50), Leaf("b", 80, 60))
	root.Dir = Vert
	boxes := map[string]Box{}
	total := root.Arrange(0, 0, boxes)
	if boxes["b"].Y != 50+gap {
		t.Fatalf("vertical position b = %+v", boxes["b"])
	}
	if total.H != 50+gap+60 || total.W != 100 {
		t.Fatalf("total = %+v", total)
	}
}

func TestHeaderAboveChildren(t *testing.T) {
	// layout widgets (toggle/tab) render above their sub-interface
	g := Group(Leaf("child", 100, 100))
	g.Header = Leaf("toggle", 60, 20)
	boxes := map[string]Box{}
	g.Arrange(0, 0, boxes)
	if boxes["toggle"].Y != 0 {
		t.Fatalf("header y = %g", boxes["toggle"].Y)
	}
	if boxes["child"].Y <= boxes["toggle"].Y+boxes["toggle"].H-1 {
		t.Fatalf("child not below header: %+v vs %+v", boxes["child"], boxes["toggle"])
	}
}

func TestOptimizePicksCheaperDirection(t *testing.T) {
	// cost = total width → optimizer must stack vertically
	root := Group(Leaf("a", 100, 50), Leaf("b", 100, 50))
	boxes, total, c := Optimize(root, func(_ map[string]Box, t Box) float64 { return t.W })
	if root.Dir != Vert {
		t.Fatalf("dir = %v, want vertical", root.Dir)
	}
	if total.W != 100 || c != 100 {
		t.Fatalf("total = %+v cost %g", total, c)
	}
	if len(boxes) != 2 {
		t.Fatalf("boxes = %v", boxes)
	}
	// cost = total height → horizontal
	_, total, _ = Optimize(root, func(_ map[string]Box, t Box) float64 { return t.H })
	if root.Dir != Horiz || total.H != 50 {
		t.Fatalf("dir = %v total = %+v", root.Dir, total)
	}
}

func TestOptimizeLargeTreeFallsBackGreedy(t *testing.T) {
	// more than maxExhaustive internal nodes: alternating assignment
	root := Group()
	cur := root
	for i := 0; i < maxExhaustive+3; i++ {
		child := Group(Leaf(string(rune('a'+i)), 50, 20))
		cur.Children = append(cur.Children, child)
		cur = child
	}
	boxes, total, _ := Optimize(root, func(_ map[string]Box, t Box) float64 { return t.W + t.H })
	if len(boxes) == 0 || total.W <= 0 {
		t.Fatalf("greedy layout failed: %v %v", boxes, total)
	}
}

func TestAssignDirs(t *testing.T) {
	root := Group(Group(Leaf("a", 10, 10)), Leaf("b", 10, 10))
	rng := rand.New(rand.NewSource(1))
	root.AssignDirs(func() Dir { return Dir(rng.Intn(2)) })
	boxes := map[string]Box{}
	root.Arrange(0, 0, boxes)
	if len(boxes) != 2 {
		t.Fatalf("boxes = %v", boxes)
	}
}

// Property: no two leaf boxes overlap, for random trees and directions.
func TestQuickNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var id int
		var build func(depth int) *Node
		build = func(depth int) *Node {
			if depth == 0 || rng.Intn(3) == 0 {
				id++
				return Leaf(string(rune('a'+id)), float64(20+rng.Intn(100)), float64(10+rng.Intn(80)))
			}
			n := rng.Intn(3) + 1
			g := Group()
			for i := 0; i < n; i++ {
				g.Children = append(g.Children, build(depth-1))
			}
			g.Dir = Dir(rng.Intn(2))
			return g
		}
		id = 0
		root := build(3)
		boxes := map[string]Box{}
		root.Arrange(0, 0, boxes)
		ids := make([]string, 0, len(boxes))
		for k := range boxes {
			ids = append(ids, k)
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if overlap(boxes[ids[i]], boxes[ids[j]]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func overlap(a, b Box) bool {
	return a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H
}

// Property: the total box contains every leaf box.
func TestQuickTotalContainsLeaves(t *testing.T) {
	f := func(w1, h1, w2, h2 uint8) bool {
		root := Group(Leaf("a", float64(w1%100)+1, float64(h1%100)+1),
			Leaf("b", float64(w2%100)+1, float64(h2%100)+1))
		for _, d := range []Dir{Horiz, Vert} {
			root.Dir = d
			boxes := map[string]Box{}
			total := root.Arrange(0, 0, boxes)
			for _, b := range boxes {
				if b.X < total.X-1e-9 || b.Y < total.Y-1e-9 ||
					b.X+b.W > total.X+total.W+1e-9 || b.Y+b.H > total.Y+total.H+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxCenter(t *testing.T) {
	cx, cy := (Box{X: 10, Y: 20, W: 30, H: 40}).Center()
	if cx != 25 || cy != 40 {
		t.Fatalf("center = (%g, %g)", cx, cy)
	}
}
