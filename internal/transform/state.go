// Package transform implements the Difftree transformation rules of PI2
// (paper §6.1, Figure 13). A search State is a forest of Difftrees, each
// expressing a subset of the input queries; rules rewrite choice-node
// subtrees while preserving expressiveness. Every application re-verifies
// expressiveness by re-deriving the query bindings (difftree.BindAll), so a
// heuristic rewrite that would lose a query is rejected rather than applied.
package transform

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"pi2/internal/catalog"
	dt "pi2/internal/difftree"
	"pi2/internal/schema"
)

// MaxChoiceNodes caps the choice nodes per tree. Trees beyond the cap are
// unusable for interface mapping (the exact-cover search uses 64-bit masks)
// and the paper observes such Difftrees are poor interfaces anyway.
const MaxChoiceNodes = 60

// Context carries the immutable inputs of a generation run.
type Context struct {
	Queries []*dt.Node // concrete input ASTs, in sequence order
	Cat     *catalog.Catalog
}

// Tree is one Difftree plus the indexes of the input queries it expresses.
type Tree struct {
	Root    *dt.Node
	Queries []int
}

// QueryASTs returns the concrete ASTs this tree must express.
func (t *Tree) QueryASTs(ctx *Context) []*dt.Node {
	out := make([]*dt.Node, len(t.Queries))
	for i, qi := range t.Queries {
		out[i] = ctx.Queries[qi]
	}
	return out
}

// Bind re-derives the per-query bindings for the tree.
func (t *Tree) Bind(ctx *Context) (*dt.QueryBindings, bool) {
	return dt.BindAll(t.Root, t.QueryASTs(ctx))
}

// State is a forest of Difftrees covering all input queries.
//
// States produced by Application.Run (and InitState) are immutable: the
// search, mapping and interface layers only read them. Rule applications
// always Clone first and mutate the clone before it escapes, which is what
// makes the memoized Hash below (and sharing states across MCTS workers
// without defensive copies) safe.
type State struct {
	Trees []*Tree

	hash   uint64 // memoized Hash; valid only when hashOK
	hashOK bool
}

// Clone deep-copies the state. The clone starts with no memoized hash: rule
// applications mutate clones in place before publishing them.
func (s *State) Clone() *State {
	out := &State{Trees: make([]*Tree, len(s.Trees))}
	for i, t := range s.Trees {
		out.Trees[i] = &Tree{Root: t.Root.Clone(), Queries: append([]int(nil), t.Queries...)}
	}
	return out
}

// Hash identifies structurally identical states (tree order insensitive).
// The value is memoized on first call — search hashes each state several
// times (expansion dedup, reward-cache lookups) — relying on the
// immutable-once-published convention above. Not safe for concurrent first
// calls; in the search each state is hashed by the worker that created it.
func (s *State) Hash() uint64 {
	if s.hashOK {
		return s.hash
	}
	hashes := make([]uint64, len(s.Trees))
	for i, t := range s.Trees {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|", t.Queries)
		hashes[i] = dt.Hash(t.Root) ^ h.Sum64()
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	h := fnv.New64a()
	for _, x := range hashes {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	s.hash, s.hashOK = h.Sum64(), true
	return s.hash
}

// ChoiceCount returns the total number of choice nodes in the forest.
func (s *State) ChoiceCount() int {
	total := 0
	for _, t := range s.Trees {
		total += len(t.Root.ChoiceNodes())
	}
	return total
}

// Valid reports whether every tree still expresses its queries and stays
// within the choice-node budget.
func (s *State) Valid(ctx *Context) bool {
	for _, t := range s.Trees {
		if len(t.Root.ChoiceNodes()) > MaxChoiceNodes {
			return false
		}
		if _, ok := t.Bind(ctx); !ok {
			return false
		}
	}
	return true
}

// InitState builds the starting state: one static Difftree per query. When
// clustered is set, queries with union-compatible result schemas are merged
// under a root ANY first — the paper's "Partition is used to initially
// cluster the input queries by their result schema" optimization.
func InitState(ctx *Context, clustered bool) *State {
	if !clustered {
		s := &State{}
		for qi, q := range ctx.Queries {
			root := q.Clone()
			root.Renumber()
			s.Trees = append(s.Trees, &Tree{Root: root, Queries: []int{qi}})
		}
		return s
	}
	type cluster struct {
		queries []int
	}
	var clusters []*cluster
	for qi := range ctx.Queries {
		placed := false
		for _, c := range clusters {
			probe := make([]*dt.Node, 0, len(c.queries)+1)
			for _, j := range c.queries {
				probe = append(probe, ctx.Queries[j])
			}
			probe = append(probe, ctx.Queries[qi])
			rs := schema.InferResultSchema(probe, ctx.Cat)
			if rs == nil || hasUnionNames(rs) {
				continue // incompatible, or the union would mix attributes
			}
			c.queries = append(c.queries, qi)
			placed = true
			break
		}
		if !placed {
			clusters = append(clusters, &cluster{queries: []int{qi}})
		}
	}
	s := &State{}
	for _, c := range clusters {
		if len(c.queries) == 1 {
			root := ctx.Queries[c.queries[0]].Clone()
			root.Renumber()
			s.Trees = append(s.Trees, &Tree{Root: root, Queries: c.queries})
			continue
		}
		anyN := dt.New(dt.KindAny, "")
		seen := map[uint64]bool{}
		for _, qi := range c.queries {
			q := ctx.Queries[qi]
			h := dt.Hash(q)
			if seen[h] {
				continue
			}
			seen[h] = true
			anyN.Children = append(anyN.Children, q.Clone())
		}
		var root *dt.Node
		if len(anyN.Children) == 1 {
			root = anyN.Children[0]
		} else {
			root = anyN
		}
		root.Renumber()
		s.Trees = append(s.Trees, &Tree{Root: root, Queries: c.queries})
	}
	return s
}

// hasUnionNames reports whether the union schema mixed differently named
// attributes (the initial clustering keeps those apart; the Merge rule can
// still join them during search when the cost model favors it).
func hasUnionNames(rs *schema.ResultSchema) bool {
	for _, c := range rs.Cols {
		if strings.Contains(c.Name, "∪") {
			return true
		}
	}
	return false
}

// replaceByID returns root with the node of the given ID replaced (root is
// mutated in place; callers operate on clones). Returns false if not found.
// Every ancestor of the replaced node drops its memoized structural hash —
// clones carry their source's cached hashes, which this splice makes stale.
func replaceByID(root *dt.Node, id int, repl *dt.Node) (*dt.Node, bool) {
	if root.ID == id {
		return repl, true
	}
	var rec func(n *dt.Node) bool
	rec = func(n *dt.Node) bool {
		for i, c := range n.Children {
			if c.ID == id {
				n.Children[i] = repl
				n.InvalidateHash()
				return true
			}
			if rec(c) {
				n.InvalidateHash()
				return true
			}
		}
		return false
	}
	done := rec(root)
	return root, done
}
