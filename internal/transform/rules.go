package transform

import (
	"fmt"

	dt "pi2/internal/difftree"
	"pi2/internal/schema"
)

// Application is one candidate rule instance. Run executes it, returning the
// successor state; ok is false when the rewrite failed verification (the new
// tree no longer expresses its queries) and must be discarded.
type Application struct {
	Rule   string
	Tree   int // index of the primary tree
	NodeID int // target node (-1 for cross-tree rules)
	Other  int // second tree for Merge (-1 otherwise)
	Run    func() (*State, bool)
}

func (a Application) String() string {
	if a.Other >= 0 {
		return fmt.Sprintf("%s(t%d,t%d)", a.Rule, a.Tree, a.Other)
	}
	return fmt.Sprintf("%s(t%d,n%d)", a.Rule, a.Tree, a.NodeID)
}

// Applicable enumerates every rule application on the state (paper §6.1's
// transition function). The enumeration order is deterministic.
func Applicable(s *State, ctx *Context) []Application {
	return AppendApplicable(nil, s, ctx)
}

// AppendApplicable is Applicable appending into a caller-provided buffer
// (pass apps[:0] to reuse it), for hot loops that enumerate rules once per
// rollout step.
func AppendApplicable(apps []Application, s *State, ctx *Context) []Application {
	for ti, tree := range s.Trees {
		root := tree.Root
		root.Walk(func(n *dt.Node) bool {
			apps = append(apps, nodeRules(s, ctx, ti, n)...)
			return true
		})
		if root.Kind == dt.KindAny && len(root.Children) >= 2 {
			apps = append(apps, splitApp(s, ctx, ti))
		}
	}
	// Merge every union-compatible tree pair.
	for i := 0; i < len(s.Trees); i++ {
		for j := i + 1; j < len(s.Trees); j++ {
			if mergeCompatible(s, ctx, i, j) {
				apps = append(apps, mergeApp(s, ctx, i, j))
			}
		}
	}
	return apps
}

// nodeRules enumerates single-node rules for one node.
func nodeRules(s *State, ctx *Context, ti int, n *dt.Node) []Application {
	var apps []Application
	add := func(rule string, build func(clone *dt.Node, target *dt.Node) (*dt.Node, bool)) {
		id := n.ID
		apps = append(apps, Application{
			Rule: rule, Tree: ti, NodeID: id, Other: -1,
			Run: func() (*State, bool) {
				return applyNodeRule(s, ctx, ti, id, build)
			},
		})
	}
	switch n.Kind {
	case dt.KindAny:
		if len(n.Children) == 1 || allEqualChildren(n) {
			add("Noop", ruleNoop)
		}
		if hasDuplicateChildren(n) {
			add("Dedup", ruleDedup)
		}
		if anyChildIsANY(n) {
			add("MergeANY", ruleMergeANY)
		}
		if hasNoneChild(n) {
			add("OptIntro", ruleOptIntro)
		}
		if partitionApplies(n) {
			add("Partition", rulePartition)
		}
		if pushANYApplies(n) {
			add("PushANY", rulePushANY)
		}
		if anyToValApplies(n) {
			add("ANY→VAL", ruleAnyToVal)
		}
		if anyListChildren(n) {
			add("ANY→MULTI", ruleAnyToMulti)
			add("ANY→SUBSET", ruleAnyToSubset)
		}
	case dt.KindOpt:
		if pushOPT2Applies(n) {
			add("PushOPT2", rulePushOPT2)
		}
		if pushOPT1Applies(n) {
			add("PushOPT1", rulePushOPT1)
		}
	default:
		if listMutable(n) {
			add("ToMULTI", ruleListToMulti)
			add("ToSUBSET", ruleListToSubset)
		}
	}
	return apps
}

// applyNodeRule clones the tree, rewrites the target node, renumbers, and
// verifies expressiveness.
func applyNodeRule(s *State, ctx *Context, ti, nodeID int, build func(clone, target *dt.Node) (*dt.Node, bool)) (*State, bool) {
	next := s.Clone()
	tree := next.Trees[ti]
	target := tree.Root.Find(nodeID)
	if target == nil {
		return nil, false
	}
	repl, ok := build(tree.Root, target)
	if !ok {
		return nil, false
	}
	newRoot, ok := replaceByID(tree.Root, nodeID, repl)
	if !ok {
		return nil, false
	}
	tree.Root = newRoot
	tree.Root.Renumber()
	if len(tree.Root.ChoiceNodes()) > MaxChoiceNodes {
		return nil, false
	}
	if _, ok := tree.Bind(ctx); !ok {
		return nil, false
	}
	return next, true
}

func allEqualChildren(n *dt.Node) bool {
	for _, c := range n.Children[1:] {
		if !dt.Equal(n.Children[0], c) {
			return false
		}
	}
	return len(n.Children) > 0
}

func hasDuplicateChildren(n *dt.Node) bool {
	seen := map[uint64]bool{}
	for _, c := range n.Children {
		h := dt.Hash(c)
		if seen[h] {
			return true
		}
		seen[h] = true
	}
	return false
}

func anyChildIsANY(n *dt.Node) bool {
	for _, c := range n.Children {
		if c.Kind == dt.KindAny {
			return true
		}
	}
	return false
}

func hasNoneChild(n *dt.Node) bool {
	for _, c := range n.Children {
		if c.Kind == dt.KindNone {
			return true
		}
	}
	return false
}

// mergeCompatible gates Merge on union-compatible result schemas ("If union
// compatible" in Figure 13).
func mergeCompatible(s *State, ctx *Context, i, j int) bool {
	var probe []*dt.Node
	for _, qi := range s.Trees[i].Queries {
		probe = append(probe, ctx.Queries[qi])
	}
	for _, qj := range s.Trees[j].Queries {
		probe = append(probe, ctx.Queries[qj])
	}
	return schema.InferResultSchema(probe, ctx.Cat) != nil
}

func mergeApp(s *State, ctx *Context, i, j int) Application {
	return Application{
		Rule: "Merge", Tree: i, NodeID: -1, Other: j,
		Run: func() (*State, bool) {
			next := s.Clone()
			a, b := next.Trees[i], next.Trees[j]
			anyN := dt.New(dt.KindAny, "")
			appendFlat := func(root *dt.Node) {
				if root.Kind == dt.KindAny {
					anyN.Children = append(anyN.Children, root.Children...)
				} else {
					anyN.Children = append(anyN.Children, root)
				}
			}
			appendFlat(a.Root)
			appendFlat(b.Root)
			merged := &Tree{Root: anyN, Queries: append(append([]int{}, a.Queries...), b.Queries...)}
			merged.Root.Renumber()
			var trees []*Tree
			for k, t := range next.Trees {
				if k != i && k != j {
					trees = append(trees, t)
				}
			}
			trees = append(trees, merged)
			next.Trees = trees
			if len(merged.Root.ChoiceNodes()) > MaxChoiceNodes {
				return nil, false
			}
			if _, ok := merged.Bind(ctx); !ok {
				return nil, false
			}
			return next, true
		},
	}
}

func splitApp(s *State, ctx *Context, ti int) Application {
	return Application{
		Rule: "Split", Tree: ti, NodeID: 0, Other: -1,
		Run: func() (*State, bool) {
			next := s.Clone()
			tree := next.Trees[ti]
			var newTrees []*Tree
			for _, c := range tree.Root.Children {
				root := c.Clone()
				root.Renumber()
				newTrees = append(newTrees, &Tree{Root: root})
			}
			// assign each query to the first child tree that expresses it
			for _, qi := range tree.Queries {
				assigned := false
				for _, nt := range newTrees {
					if _, ok := dt.Match(nt.Root, ctx.Queries[qi]); ok {
						nt.Queries = append(nt.Queries, qi)
						assigned = true
						break
					}
				}
				if !assigned {
					return nil, false
				}
			}
			var trees []*Tree
			for k, t := range next.Trees {
				if k != ti {
					trees = append(trees, t)
				}
			}
			for _, nt := range newTrees {
				if len(nt.Queries) > 0 {
					trees = append(trees, nt)
				}
			}
			next.Trees = trees
			return next, true
		},
	}
}
