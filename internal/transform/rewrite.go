package transform

import (
	"strings"

	dt "pi2/internal/difftree"
)

// ---- Simplification rules (Figure 13, bottom-right) ----

// ruleNoop collapses ANY nodes with a single (or all-equal) child.
func ruleNoop(_, target *dt.Node) (*dt.Node, bool) {
	if len(target.Children) == 0 {
		return nil, false
	}
	return target.Children[0], true
}

// ruleDedup removes duplicate ANY children.
func ruleDedup(_, target *dt.Node) (*dt.Node, bool) {
	uniq := dedupByHash(target.Children)
	if len(uniq) == len(target.Children) {
		return nil, false
	}
	if len(uniq) == 1 {
		return uniq[0], true
	}
	return dt.New(dt.KindAny, "", uniq...), true
}

// ruleMergeANY flattens a cascade of ANY nodes into one.
func ruleMergeANY(_, target *dt.Node) (*dt.Node, bool) {
	out := dt.New(dt.KindAny, "")
	for _, c := range target.Children {
		if c.Kind == dt.KindAny {
			out.Children = append(out.Children, c.Children...)
		} else {
			out.Children = append(out.Children, c)
		}
	}
	out.Children = dedupByHash(out.Children)
	if len(out.Children) == 1 {
		return out.Children[0], true
	}
	return out, true
}

// ruleOptIntro rewrites ANY(∅, x, ...) as OPT — the paper's "special case
// when ANY has two children, where one is an empty subtree" made explicit so
// toggles can map to it.
func ruleOptIntro(_, target *dt.Node) (*dt.Node, bool) {
	var rest []*dt.Node
	for _, c := range target.Children {
		if c.Kind != dt.KindNone {
			rest = append(rest, c)
		}
	}
	if len(rest) == len(target.Children) || len(rest) == 0 {
		return nil, false
	}
	rest = dedupByHash(rest)
	if len(rest) == 1 {
		return dt.New(dt.KindOpt, "", rest[0]), true
	}
	return dt.New(dt.KindOpt, "", dt.New(dt.KindAny, "", rest...)), true
}

// ---- Refactoring rules ----

// partitionApplies: grouping the ANY children by root production must yield
// at least two groups with some group of size ≥ 2.
func partitionApplies(n *dt.Node) bool {
	if len(n.Children) < 3 {
		return false
	}
	groups := groupByRootKey(n.Children)
	if len(groups) < 2 {
		return false
	}
	for _, g := range groups {
		if len(g) >= 2 {
			return true
		}
	}
	return false
}

// rulePartition groups an ANY node's children into homogeneous clusters
// (Figure 12): ANY(x, x', y) → ANY(ANY(x, x'), y).
func rulePartition(_, target *dt.Node) (*dt.Node, bool) {
	groups := groupByRootKey(target.Children)
	out := dt.New(dt.KindAny, "")
	for _, g := range groups {
		if len(g) == 1 {
			out.Children = append(out.Children, g[0])
		} else {
			out.Children = append(out.Children, dt.New(dt.KindAny, "", g...))
		}
	}
	return out, true
}

func groupByRootKey(children []*dt.Node) [][]*dt.Node {
	order := []string{}
	groups := map[string][]*dt.Node{}
	for _, c := range children {
		k := dt.RootKey(c)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	out := make([][]*dt.Node, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// pushANYApplies: every child shares the same root production and is not
// itself a choice node, with aligned fixed arity or a list root.
func pushANYApplies(n *dt.Node) bool {
	if len(n.Children) < 2 {
		return false
	}
	first := n.Children[0]
	if first.Kind.IsChoice() || first.Kind == dt.KindNone {
		return false
	}
	key := dt.RootKey(first)
	for _, c := range n.Children[1:] {
		if c.Kind.IsChoice() || dt.RootKey(c) != key {
			return false
		}
	}
	if first.Kind.IsList() {
		return true
	}
	if len(first.Children) == 0 {
		return false // leaves have nothing to push into
	}
	for _, c := range n.Children[1:] {
		if len(c.Children) != len(first.Children) {
			return false
		}
	}
	return true
}

// rulePushANY pushes an ANY below the shared root of its children, creating
// per-position ANY nodes for differing subtrees, and cascades the push to a
// fixpoint (Figure 3(a)→(b) splits both operands in one step). List children
// of differing lengths are aligned by item key, with missing items wrapped
// in OPT.
func rulePushANY(_, target *dt.Node) (*dt.Node, bool) {
	out, ok := pushANYOnce(target)
	if !ok {
		return nil, false
	}
	return cascadePush(out), true
}

func pushANYOnce(target *dt.Node) (*dt.Node, bool) {
	kids := target.Children
	first := kids[0]
	if first.Kind.IsList() {
		return alignLists(kids)
	}
	out := dt.New(first.Kind, first.Label)
	for j := range first.Children {
		variants := make([]*dt.Node, len(kids))
		for i, k := range kids {
			variants[i] = k.Children[j]
		}
		uniq := dedupByHash(variants)
		if len(uniq) == 1 {
			out.Children = append(out.Children, uniq[0])
		} else {
			out.Children = append(out.Children, dt.New(dt.KindAny, "", uniq...))
		}
	}
	return out, true
}

// cascadePush re-applies the push wherever the rewrite created a new ANY
// whose children again share a root production. ANY nodes over mixed root
// productions are partitioned into homogeneous groups on the way (with an
// empty-subtree group folding into OPT), so one PushANY application
// normalizes a whole merged subtree — matching the paper's Figure 12
// sequence without requiring the search to chain each micro-step.
func cascadePush(n *dt.Node) *dt.Node {
	if n.Kind == dt.KindAny {
		n = partitionMixed(n)
	}
	if n.Kind == dt.KindAny && pushANYApplies(n) {
		if repl, ok := pushANYOnce(n); ok {
			n = repl
		}
	}
	// The child splice below may rewrite subtrees of nodes that were already
	// hashed (dedupByHash memoizes hashes on every node it compares), so the
	// cached value must be dropped before this node is hashed again.
	n.InvalidateHash()
	for i, c := range n.Children {
		n.Children[i] = cascadePush(c)
	}
	return n
}

// partitionMixed groups a heterogeneous ANY's children by root production;
// a group of empty subtrees folds the rest into OPT.
func partitionMixed(n *dt.Node) *dt.Node {
	children := dedupByHash(n.Children)
	if len(children) == 1 {
		return children[0]
	}
	groups := groupByRootKey(children)
	if len(groups) <= 1 {
		if len(children) != len(n.Children) {
			return dt.New(dt.KindAny, "", children...)
		}
		return n
	}
	hasNone := false
	var parts []*dt.Node
	for _, g := range groups {
		if g[0].Kind == dt.KindNone {
			hasNone = true
			continue
		}
		if len(g) == 1 {
			parts = append(parts, g[0])
		} else {
			parts = append(parts, dt.New(dt.KindAny, "", g...))
		}
	}
	var out *dt.Node
	if len(parts) == 1 {
		out = parts[0]
	} else {
		out = dt.New(dt.KindAny, "", parts...)
	}
	if hasNone {
		out = dt.New(dt.KindOpt, "", out)
	}
	return out
}

// alignLists merges k same-kind list nodes into one list whose columns hold
// per-position variation. Position-semantic lists (projections, GROUP BY)
// of equal length align by position; set-semantic lists (conjunctions) and
// unequal lengths align against the longest list by an item key (root
// production + subject attribute), with items missing from some lists
// becoming OPT columns. The heuristic result is verified by BindAll, so a
// bad alignment is rejected rather than miscompiled.
func alignLists(kids []*dt.Node) (*dt.Node, bool) {
	if positionalKind(kids[0].Kind) && sameLengths(kids) {
		return alignPositional(kids), true
	}
	ref := kids[0]
	for _, k := range kids[1:] {
		if len(k.Children) > len(ref.Children) {
			ref = k
		}
	}
	type column struct {
		variants []*dt.Node
		present  int // how many lists contribute
	}
	cols := make([]*column, len(ref.Children))
	for i, item := range ref.Children {
		cols[i] = &column{variants: []*dt.Node{item}, present: 1}
	}
	var extras []*column
	for _, k := range kids {
		if k == ref {
			continue
		}
		matches := lcsByKey(ref.Children, k.Children)
		used := map[int]bool{}
		for ri, ki := range matches {
			cols[ri].variants = append(cols[ri].variants, k.Children[ki])
			cols[ri].present++
			used[ki] = true
		}
		for ki, item := range k.Children {
			if !used[ki] {
				extras = append(extras, &column{variants: []*dt.Node{item}, present: 1})
			}
		}
	}
	out := dt.New(ref.Kind, ref.Label)
	total := len(kids)
	emit := func(c *column) {
		uniq := dedupByHash(c.variants)
		var inner *dt.Node
		if len(uniq) == 1 {
			inner = uniq[0]
		} else {
			inner = dt.New(dt.KindAny, "", uniq...)
		}
		if c.present < total {
			inner = dt.New(dt.KindOpt, "", inner)
		}
		out.Children = append(out.Children, inner)
	}
	for _, c := range cols {
		emit(c)
	}
	for _, c := range extras {
		emit(c)
	}
	return out, true
}

// positionalKind reports whether a list's item positions carry meaning
// (the i-th projection is the i-th output column), as opposed to
// set-semantic conjunct lists.
func positionalKind(k dt.Kind) bool {
	switch k {
	case dt.KindSelectList, dt.KindGroupBy, dt.KindOrderBy, dt.KindExprList, dt.KindFrom:
		return true
	}
	return false
}

func sameLengths(kids []*dt.Node) bool {
	for _, k := range kids[1:] {
		if len(k.Children) != len(kids[0].Children) {
			return false
		}
	}
	return true
}

// alignPositional zips equal-length lists column-wise: SELECT date, cases
// and SELECT date, deaths become SELECT date, ANY{cases | deaths}.
func alignPositional(kids []*dt.Node) *dt.Node {
	first := kids[0]
	out := dt.New(first.Kind, first.Label)
	for j := range first.Children {
		variants := make([]*dt.Node, len(kids))
		for i, k := range kids {
			variants[i] = k.Children[j]
		}
		uniq := dedupByHash(variants)
		if len(uniq) == 1 {
			out.Children = append(out.Children, uniq[0])
		} else {
			out.Children = append(out.Children, dt.New(dt.KindAny, "", uniq...))
		}
	}
	return out
}

// lcsByKey computes a longest common subsequence between two item lists
// using itemKey equality; it returns refIndex → otherIndex matches.
func lcsByKey(ref, other []*dt.Node) map[int]int {
	n, m := len(ref), len(other)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if itemKey(ref[i]) == itemKey(other[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	out := map[int]int{}
	i, j := 0, 0
	for i < n && j < m {
		if itemKey(ref[i]) == itemKey(other[j]) {
			out[i] = j
			i++
			j++
		} else if dp[i+1][j] >= dp[i][j+1] {
			i++
		} else {
			j++
		}
	}
	return out
}

// itemKey identifies alignable list items: the root production plus the
// first attribute referenced in the subtree ("state = 'CA'" aligns with
// "state = 'WA'" but not with "date > ...").
func itemKey(n *dt.Node) string {
	key := dt.RootKey(n)
	ident := ""
	n.Walk(func(m *dt.Node) bool {
		if ident == "" && m.Kind == dt.KindIdent {
			ident = strings.ToLower(m.Label)
		}
		return ident == ""
	})
	return key + "#" + ident
}

// ---- PushOPT rules ----

// pushOPT2Applies: the OPT wraps a list node directly.
func pushOPT2Applies(n *dt.Node) bool {
	c := n.Children[0]
	return c.Kind.IsList() && len(c.Children) > 0 && !allOpt(c.Children)
}

// rulePushOPT2 distributes an OPT over a list node's children: OPT(L(x,y,z))
// → L(OPT x, OPT y, OPT z). Strictly more expressive (any subset of items).
func rulePushOPT2(_, target *dt.Node) (*dt.Node, bool) {
	list := target.Children[0]
	out := dt.New(list.Kind, list.Label)
	for _, c := range list.Children {
		if c.Kind == dt.KindOpt {
			out.Children = append(out.Children, c)
		} else {
			out.Children = append(out.Children, dt.New(dt.KindOpt, "", c))
		}
	}
	return out, true
}

// pushOPT1Applies: the OPT wraps a WHERE/HAVING clause whose conjunct list
// can absorb the optionality (the clause node itself plays Figure 13's
// CO-OPT role: it disappears when all pushed OPTs resolve absent, via
// difftree's canonicalization).
func pushOPT1Applies(n *dt.Node) bool {
	c := n.Children[0]
	if c.Kind != dt.KindWhere && c.Kind != dt.KindHaving {
		return false
	}
	inner := c.Children[0]
	return inner.Kind == dt.KindAnd && len(inner.Children) > 0 && !allOpt(inner.Children)
}

// rulePushOPT1 pushes the OPT through a clause wrapper onto each conjunct:
// OPT(WHERE(AND(c1..ck))) → WHERE(AND(OPT c1 .. OPT ck)).
func rulePushOPT1(_, target *dt.Node) (*dt.Node, bool) {
	clause := target.Children[0]
	and := clause.Children[0]
	newAnd := dt.New(and.Kind, and.Label)
	for _, c := range and.Children {
		if c.Kind == dt.KindOpt {
			newAnd.Children = append(newAnd.Children, c)
		} else {
			newAnd.Children = append(newAnd.Children, dt.New(dt.KindOpt, "", c))
		}
	}
	return dt.New(clause.Kind, clause.Label, newAnd), true
}

func allOpt(children []*dt.Node) bool {
	for _, c := range children {
		if c.Kind != dt.KindOpt {
			return false
		}
	}
	return true
}

// ---- Mutation rules ----

// anyToValApplies: every ANY child is a literal.
func anyToValApplies(n *dt.Node) bool {
	if len(n.Children) < 2 {
		return false
	}
	for _, c := range n.Children {
		if !c.Kind.IsLiteral() {
			return false
		}
	}
	return true
}

// ruleAnyToVal lifts an ANY over literals to a VAL pattern (Figure 3(b)→(c)),
// generalizing the widget beyond the input literals.
func ruleAnyToVal(_, target *dt.Node) (*dt.Node, bool) {
	label := "num"
	for _, c := range target.Children {
		if c.Kind != dt.KindNumber {
			label = "str"
			break
		}
	}
	return dt.New(dt.KindVal, label, dedupByHash(target.Children)...), true
}

// anyListChildren: every ANY child is a list node of the same kind.
func anyListChildren(n *dt.Node) bool {
	if len(n.Children) < 2 {
		return false
	}
	first := n.Children[0]
	if !first.Kind.IsList() {
		return false
	}
	for _, c := range n.Children[1:] {
		if c.Kind != first.Kind || c.Label != first.Label {
			return false
		}
	}
	return true
}

// ruleAnyToMulti rewrites ANY over same-kind lists as a repetition of the
// union item pattern: ANY(L(a,a), L(b)) → L(MULTI(ANY(a,b))).
func ruleAnyToMulti(_, target *dt.Node) (*dt.Node, bool) {
	var items []*dt.Node
	for _, list := range target.Children {
		items = append(items, list.Children...)
	}
	uniq := dedupByHash(items)
	if len(uniq) == 0 {
		return nil, false
	}
	var pattern *dt.Node
	if len(uniq) == 1 {
		pattern = uniq[0]
	} else {
		pattern = dt.New(dt.KindAny, "", uniq...)
	}
	first := target.Children[0]
	return dt.New(first.Kind, first.Label, dt.New(dt.KindMulti, "", pattern)), true
}

// ruleAnyToSubset rewrites ANY over same-kind lists as an ordered SUBSET of
// the union items: ANY(L(x,y), L(x,y,z)) → L(SUBSET(x,y,z)). Fails when the
// lists cannot be ordered consistently.
func ruleAnyToSubset(_, target *dt.Node) (*dt.Node, bool) {
	union, ok := orderedUnion(target.Children)
	if !ok || len(union) == 0 {
		return nil, false
	}
	first := target.Children[0]
	return dt.New(first.Kind, first.Label, dt.New(dt.KindSubset, "", union...)), true
}

// orderedUnion merges the item sequences so every input list is a
// subsequence of the result; reports false on order conflicts.
func orderedUnion(lists []*dt.Node) ([]*dt.Node, bool) {
	var out []*dt.Node
	index := map[uint64]int{}
	for _, list := range lists {
		last := -1
		for _, item := range list.Children {
			h := dt.Hash(item)
			if pos, ok := index[h]; ok {
				if pos < last {
					return nil, false // order conflict
				}
				last = pos
				continue
			}
			// insert right after `last`
			pos := last + 1
			out = append(out, nil)
			copy(out[pos+1:], out[pos:])
			out[pos] = item
			for k, v := range index {
				if v >= pos {
					index[k] = v + 1
				}
			}
			index[h] = pos
			last = pos
		}
	}
	return out, true
}

// ---- Post-push list mutations ----
// After PushANY, variation lives in per-position ANY/OPT children of a list
// node (e.g. exprlist(ANY(1,20), ANY(2,22))). The MULTI/SUBSET mutations of
// Figure 13 apply to this shape as well: the list rewrites to a repetition
// or ordered subset of the union of all item alternatives.

// listMutable reports whether every list child is enumerable: a static
// item, an ANY over static items, or an OPT over either.
func listMutable(n *dt.Node) bool {
	if !n.Kind.IsList() || len(n.Children) == 0 {
		return false
	}
	hasChoice := false
	for _, c := range n.Children {
		alts := itemAlternatives(c)
		if alts == nil {
			return false
		}
		if c.Kind.IsChoice() {
			hasChoice = true
		}
	}
	// a list that is already a single MULTI/SUBSET needs no mutation
	if len(n.Children) == 1 && (n.Children[0].Kind == dt.KindMulti || n.Children[0].Kind == dt.KindSubset) {
		return false
	}
	return hasChoice
}

// itemAlternatives expands one list child into its static alternatives;
// nil marks a non-enumerable child.
func itemAlternatives(c *dt.Node) []*dt.Node {
	switch c.Kind {
	case dt.KindAny:
		var out []*dt.Node
		for _, alt := range c.Children {
			sub := itemAlternatives(alt)
			if sub == nil {
				return nil
			}
			out = append(out, sub...)
		}
		return out
	case dt.KindOpt:
		return itemAlternatives(c.Children[0])
	case dt.KindVal, dt.KindMulti, dt.KindSubset:
		return nil
	default:
		if c.HasChoice() {
			return nil
		}
		return []*dt.Node{c}
	}
}

// ruleListToMulti rewrites a list with enumerable variation as a repetition
// over the union pattern: exprlist(ANY(1,20), ANY(2,22)) →
// exprlist(MULTI(ANY(1,2,20,22))).
func ruleListToMulti(_, target *dt.Node) (*dt.Node, bool) {
	var items []*dt.Node
	for _, c := range target.Children {
		alts := itemAlternatives(c)
		if alts == nil {
			return nil, false
		}
		items = append(items, alts...)
	}
	uniq := dedupByHash(items)
	if len(uniq) == 0 {
		return nil, false
	}
	var pattern *dt.Node
	if len(uniq) == 1 {
		pattern = uniq[0]
	} else {
		pattern = dt.New(dt.KindAny, "", uniq...)
	}
	return dt.New(target.Kind, target.Label, dt.New(dt.KindMulti, "", pattern)), true
}

// ruleListToSubset rewrites a list with enumerable variation as an ordered
// subset over all item alternatives.
func ruleListToSubset(_, target *dt.Node) (*dt.Node, bool) {
	var items []*dt.Node
	for _, c := range target.Children {
		alts := itemAlternatives(c)
		if alts == nil {
			return nil, false
		}
		items = append(items, alts...)
	}
	uniq := dedupByHash(items)
	if len(uniq) == 0 {
		return nil, false
	}
	return dt.New(target.Kind, target.Label, dt.New(dt.KindSubset, "", uniq...)), true
}

func dedupByHash(nodes []*dt.Node) []*dt.Node {
	seen := map[uint64]bool{}
	var out []*dt.Node
	for _, n := range nodes {
		h := dt.Hash(n)
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, n)
	}
	return out
}
