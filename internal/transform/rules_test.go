package transform

import (
	"strings"
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

var testCat = catalog.Build(dataset.NewDB(), dataset.Keys())

func ctxFor(t *testing.T, sqls ...string) *Context {
	t.Helper()
	qs, err := sqlparser.ParseAll(sqls)
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Queries: qs, Cat: testCat}
}

// findApp locates the first application of the named rule.
func findApp(t *testing.T, s *State, ctx *Context, rule string) Application {
	t.Helper()
	for _, a := range Applicable(s, ctx) {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("rule %s not applicable; available: %v", rule, ruleNames(s, ctx))
	return Application{}
}

func hasRule(s *State, ctx *Context, rule string) bool {
	for _, a := range Applicable(s, ctx) {
		if a.Rule == rule {
			return true
		}
	}
	return false
}

func ruleNames(s *State, ctx *Context) []string {
	var out []string
	for _, a := range Applicable(s, ctx) {
		out = append(out, a.String())
	}
	return out
}

func mustRun(t *testing.T, a Application) *State {
	t.Helper()
	next, ok := a.Run()
	if !ok {
		t.Fatalf("application %v failed verification", a)
	}
	return next
}

func TestInitStateUnclustered(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p")
	s := InitState(ctx, false)
	if len(s.Trees) != 2 {
		t.Fatalf("trees = %d", len(s.Trees))
	}
	if !s.Valid(ctx) {
		t.Fatal("initial state invalid")
	}
}

func TestInitStateClustered(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
		"SELECT a FROM T")
	s := InitState(ctx, true)
	if len(s.Trees) != 2 {
		t.Fatalf("clusters = %d, want 2 (the two count queries merge)", len(s.Trees))
	}
	if !s.Valid(ctx) {
		t.Fatal("clustered state invalid")
	}
	// the merged tree must express both queries
	var merged *Tree
	for _, tr := range s.Trees {
		if len(tr.Queries) == 2 {
			merged = tr
		}
	}
	if merged == nil || merged.Root.Kind != dt.KindAny {
		t.Fatalf("merged tree = %+v", merged)
	}
}

// TestFigure12Pipeline follows the paper's Figure 12: Merge, Partition,
// Split, PushANY, ANY→VAL on queries a=1, b=2, avg(c).
func TestFigure12Pipeline(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s := InitState(ctx, false)

	s = mustRun(t, findApp(t, s, ctx, "Merge"))
	if len(s.Trees) != 1 || s.Trees[0].Root.Kind != dt.KindAny {
		t.Fatalf("after merge: %v", s.Trees[0].Root)
	}

	// PushANY through query → ... until the ANY sits over the literals.
	for i := 0; i < 10 && hasRule(s, ctx, "PushANY"); i++ {
		s = mustRun(t, findApp(t, s, ctx, "PushANY"))
	}
	if !hasRule(s, ctx, "ANY→VAL") {
		t.Fatalf("ANY→VAL never became applicable; state: %v", s.Trees[0].Root)
	}
	s = mustRun(t, findApp(t, s, ctx, "ANY→VAL"))

	// the tree now contains a VAL node and still expresses both queries
	hasVal := false
	s.Trees[0].Root.Walk(func(n *dt.Node) bool {
		if n.Kind == dt.KindVal {
			hasVal = true
		}
		return true
	})
	if !hasVal {
		t.Fatal("no VAL node after ANY→VAL")
	}
	if !s.Valid(ctx) {
		t.Fatal("state invalid after pipeline")
	}
	// generalization: the VAL tree should now also express a = 5
	q5 := sqlparser.MustParse("SELECT p, count(*) FROM T WHERE a = 5 GROUP BY p")
	if _, ok := dt.Match(s.Trees[0].Root, q5); !ok {
		t.Fatal("VAL tree should generalize to unseen literals")
	}
}

func TestPushANYFixedArity(t *testing.T) {
	// ANY(a=1, b=2) → =(ANY(a,b), ANY(1,2))
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	got, ok := rulePushANY(nil, anyN)
	if !ok {
		t.Fatal("push failed")
	}
	if got.Kind != dt.KindBinary || got.Label != "=" {
		t.Fatalf("root = %v", got)
	}
	if got.Children[0].Kind != dt.KindAny || got.Children[1].Kind != dt.KindAny {
		t.Fatalf("children = %v", got)
	}
}

func TestPushANYSharedOperand(t *testing.T) {
	// ANY(a=1, a=2) → =(a, ANY(1,2)): the shared operand is not wrapped.
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("2")))
	got, _ := rulePushANY(nil, anyN)
	if got.Children[0].Kind != dt.KindIdent {
		t.Fatalf("shared operand wrapped: %v", got)
	}
	if got.Children[1].Kind != dt.KindAny {
		t.Fatalf("literal variants not wrapped: %v", got)
	}
}

func TestAlignListsDifferentLengths(t *testing.T) {
	// AND(state=, date>) vs AND(state=): date> column becomes OPT.
	mk := func(attr, lit string) *dt.Node {
		return dt.New(dt.KindBinary, "=", dt.Ident(attr), dt.Str(lit))
	}
	l1 := dt.New(dt.KindAnd, "", mk("state", "CA"), dt.New(dt.KindBinary, ">", dt.Ident("date"), dt.Str("2020-01-01")))
	l2 := dt.New(dt.KindAnd, "", mk("state", "WA"))
	got, ok := alignLists([]*dt.Node{l1, l2})
	if !ok {
		t.Fatal("alignment failed")
	}
	if len(got.Children) != 2 {
		t.Fatalf("columns = %v", got)
	}
	foundOpt := false
	foundAny := false
	for _, c := range got.Children {
		if c.Kind == dt.KindOpt {
			foundOpt = true
		}
		if c.Kind == dt.KindAny {
			foundAny = true
		}
	}
	if !foundOpt || !foundAny {
		t.Fatalf("expected OPT and ANY columns, got %v", got)
	}
}

func TestPartition(t *testing.T) {
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")),
		dt.New(dt.KindFunc, "avg", dt.Ident("c")))
	if !partitionApplies(anyN) {
		t.Fatal("partition should apply")
	}
	got, _ := rulePartition(nil, anyN)
	if len(got.Children) != 2 {
		t.Fatalf("groups = %v", got)
	}
	if got.Children[0].Kind != dt.KindAny || len(got.Children[0].Children) != 2 {
		t.Fatalf("equality group = %v", got.Children[0])
	}
	if got.Children[1].Kind != dt.KindFunc {
		t.Fatalf("singleton group = %v", got.Children[1])
	}
}

func TestOptIntro(t *testing.T) {
	anyN := dt.New(dt.KindAny, "", dt.NewNone(),
		dt.New(dt.KindWhere, "", dt.New(dt.KindAnd, "", dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")))))
	got, ok := ruleOptIntro(nil, anyN)
	if !ok || got.Kind != dt.KindOpt {
		t.Fatalf("got %v", got)
	}
	if got.Children[0].Kind != dt.KindWhere {
		t.Fatalf("inner = %v", got.Children[0])
	}
}

func TestPushOPT1ThroughWhere(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT date, price FROM sp500",
		"SELECT date, price FROM sp500 WHERE date > '2001-01-01' AND date < '2003-01-01'")
	s := InitState(ctx, true)
	// drive: push the root ANY down to the where clause
	for i := 0; i < 12; i++ {
		switch {
		case hasRule(s, ctx, "PushANY"):
			s = mustRun(t, findApp(t, s, ctx, "PushANY"))
		case hasRule(s, ctx, "OptIntro"):
			s = mustRun(t, findApp(t, s, ctx, "OptIntro"))
		case hasRule(s, ctx, "Noop"):
			s = mustRun(t, findApp(t, s, ctx, "Noop"))
		}
	}
	if !hasRule(s, ctx, "PushOPT1") {
		t.Fatalf("PushOPT1 unavailable; state = %v", s.Trees[0].Root)
	}
	s = mustRun(t, findApp(t, s, ctx, "PushOPT1"))
	if !s.Valid(ctx) {
		t.Fatal("state invalid after PushOPT1")
	}
	// after the push, individual conjuncts are optional
	optCount := 0
	s.Trees[0].Root.Walk(func(n *dt.Node) bool {
		if n.Kind == dt.KindOpt {
			optCount++
		}
		return true
	})
	if optCount < 2 {
		t.Fatalf("opt conjuncts = %d, want >= 2", optCount)
	}
}

func TestAnyToMulti(t *testing.T) {
	// ANY over two select lists with different projections
	l1 := dt.New(dt.KindExprList, "", dt.Ident("a"), dt.Ident("a"))
	l2 := dt.New(dt.KindExprList, "", dt.Ident("b"))
	anyN := dt.New(dt.KindAny, "", l1, l2)
	got, ok := ruleAnyToMulti(nil, anyN)
	if !ok {
		t.Fatal("multi failed")
	}
	if got.Kind != dt.KindExprList || got.Children[0].Kind != dt.KindMulti {
		t.Fatalf("got %v", got)
	}
	inner := got.Children[0].Children[0]
	if inner.Kind != dt.KindAny || len(inner.Children) != 2 {
		t.Fatalf("pattern = %v", inner)
	}
}

func TestAnyToSubset(t *testing.T) {
	x := dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1"))
	y := dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2"))
	z := dt.New(dt.KindBinary, "=", dt.Ident("c"), dt.Number("3"))
	l1 := dt.New(dt.KindAnd, "", x, y)
	l2 := dt.New(dt.KindAnd, "", x.Clone(), y.Clone(), z)
	anyN := dt.New(dt.KindAny, "", l1, l2)
	got, ok := ruleAnyToSubset(nil, anyN)
	if !ok {
		t.Fatal("subset failed")
	}
	sub := got.Children[0]
	if sub.Kind != dt.KindSubset || len(sub.Children) != 3 {
		t.Fatalf("subset = %v", sub)
	}
	// conflicting order must fail
	bad := dt.New(dt.KindAny, "",
		dt.New(dt.KindAnd, "", x.Clone(), y.Clone()),
		dt.New(dt.KindAnd, "", y.Clone(), x.Clone()))
	if _, ok := ruleAnyToSubset(nil, bad); ok {
		t.Fatal("order conflict should fail")
	}
}

func TestMergeANYFlattens(t *testing.T) {
	inner := dt.New(dt.KindAny, "", dt.Number("1"), dt.Number("2"))
	outer := dt.New(dt.KindAny, "", inner, dt.Number("3"))
	got, _ := ruleMergeANY(nil, outer)
	if len(got.Children) != 3 {
		t.Fatalf("flattened = %v", got)
	}
}

func TestSplitAssignsQueries(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p")
	s := InitState(ctx, true)
	if len(s.Trees) != 1 {
		t.Fatalf("want single merged tree, got %d", len(s.Trees))
	}
	s2 := mustRun(t, findApp(t, s, ctx, "Split"))
	if len(s2.Trees) != 2 {
		t.Fatalf("split trees = %d", len(s2.Trees))
	}
	for _, tr := range s2.Trees {
		if len(tr.Queries) != 1 {
			t.Fatalf("query assignment = %v", tr.Queries)
		}
	}
}

func TestMergeGateRejectsIncompatible(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T GROUP BY p",
		"SELECT a FROM T")
	s := InitState(ctx, false)
	for _, a := range Applicable(s, ctx) {
		if a.Rule == "Merge" {
			t.Fatal("merge offered for union-incompatible trees")
		}
	}
}

func TestStateHashDistinguishes(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s1 := InitState(ctx, false)
	s2 := InitState(ctx, true)
	if s1.Hash() == s2.Hash() {
		t.Fatal("different states share a hash")
	}
	if s1.Hash() != InitState(ctx, false).Hash() {
		t.Fatal("identical states hash differently")
	}
}

func TestApplicationsPreserveExpressiveness(t *testing.T) {
	// Property-style: run every applicable rule once on the covid log's
	// initial state; every successful application must keep the state valid.
	ctx := ctxFor(t,
		"SELECT date, cases FROM covid WHERE state = 'CA'",
		"SELECT date, cases FROM covid WHERE state = 'WA' AND date > date(today(), '-30 days')",
		"SELECT date, cases FROM covid WHERE state = 'CA' AND date > date(today(), '-7 days')")
	s := InitState(ctx, true)
	apps := Applicable(s, ctx)
	if len(apps) == 0 {
		t.Fatal("no applicable rules")
	}
	ran := 0
	for _, a := range apps {
		next, ok := a.Run()
		if !ok {
			continue
		}
		ran++
		if !next.Valid(ctx) {
			t.Fatalf("rule %v produced invalid state", a)
		}
		// original state untouched
		if !s.Valid(ctx) {
			t.Fatalf("rule %v mutated the source state", a)
		}
	}
	if ran == 0 {
		t.Fatal("no application succeeded")
	}
}

func TestChoiceBudgetEnforced(t *testing.T) {
	if MaxChoiceNodes > 64 {
		t.Fatal("choice budget must fit the 64-bit cover mask")
	}
}

func TestRuleNamesRenderable(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	s := InitState(ctx, true)
	names := ruleNames(s, ctx)
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "(t0") {
		t.Fatalf("names = %v", names)
	}
}
