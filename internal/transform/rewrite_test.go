package transform

import (
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

func TestCascadePushPartitionsMixedChildren(t *testing.T) {
	// ANY(None, W1, W2): the None group folds into OPT and the Where group
	// pushes, all within one PushANY application.
	w1 := dt.New(dt.KindWhere, "", dt.New(dt.KindAnd, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1"))))
	w2 := dt.New(dt.KindWhere, "", dt.New(dt.KindAnd, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("2"))))
	mixed := dt.New(dt.KindAny, "", dt.NewNone(), w1, w2)
	got := cascadePush(mixed)
	if got.Kind != dt.KindOpt {
		t.Fatalf("expected OPT root, got %v", got)
	}
	// inside: Where(And(a = ANY(1,2)))
	hasAny := false
	got.Walk(func(n *dt.Node) bool {
		if n.Kind == dt.KindAny {
			hasAny = true
		}
		return true
	})
	if !hasAny {
		t.Fatalf("literal variation lost: %v", got)
	}
}

func TestPositionalAlignmentForSelectLists(t *testing.T) {
	// SELECT date, cases vs SELECT date, deaths → date, ANY{cases|deaths}
	mk := func(col string) *dt.Node {
		return dt.New(dt.KindSelectList, "",
			dt.New(dt.KindSelectItem, "", dt.Ident("date"), dt.NewNone()),
			dt.New(dt.KindSelectItem, "", dt.Ident(col), dt.NewNone()))
	}
	got, ok := alignLists([]*dt.Node{mk("cases"), mk("deaths")})
	if !ok {
		t.Fatal("alignment failed")
	}
	if len(got.Children) != 2 {
		t.Fatalf("columns = %d", len(got.Children))
	}
	if got.Children[0].Kind != dt.KindSelectItem {
		t.Fatalf("shared column wrapped: %v", got.Children[0])
	}
	if got.Children[1].Kind != dt.KindAny || len(got.Children[1].Children) != 2 {
		t.Fatalf("metric column = %v", got.Children[1])
	}
}

func TestKeyBasedAlignmentForConjunctions(t *testing.T) {
	// AND lists align by subject attribute even at equal length:
	// (state=, date>) vs (date>, ... ) — here same length but different
	// subjects per position must not zip positionally.
	state := dt.New(dt.KindBinary, "=", dt.Ident("state"), dt.Str("CA"))
	date := dt.New(dt.KindBinary, ">", dt.Ident("date"), dt.Str("2020-01-01"))
	l1 := dt.New(dt.KindAnd, "", state, date)
	l2 := dt.New(dt.KindAnd, "", state.Clone(), date.Clone())
	got, ok := alignLists([]*dt.Node{l1, l2})
	if !ok {
		t.Fatal("alignment failed")
	}
	// identical lists: both columns shared, no choice nodes
	if got.HasChoice() {
		t.Fatalf("identical conjuncts produced choice nodes: %v", got)
	}
}

func TestListToMultiOnPushedExprList(t *testing.T) {
	// exprlist(ANY(1,20), ANY(2,22)) → exprlist(MULTI(ANY(1,20,2,22)))
	list := dt.New(dt.KindExprList, "",
		dt.New(dt.KindAny, "", dt.Number("1"), dt.Number("20")),
		dt.New(dt.KindAny, "", dt.Number("2"), dt.Number("22")))
	if !listMutable(list) {
		t.Fatal("list should be mutable")
	}
	got, ok := ruleListToMulti(nil, list)
	if !ok {
		t.Fatal("ToMULTI failed")
	}
	multi := got.Children[0]
	if multi.Kind != dt.KindMulti {
		t.Fatalf("got %v", got)
	}
	if len(multi.Children[0].Children) != 4 {
		t.Fatalf("pattern alternatives = %v", multi.Children[0])
	}
}

func TestListToSubsetKeepsOrder(t *testing.T) {
	list := dt.New(dt.KindAnd, "",
		dt.New(dt.KindOpt, "", dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1"))),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	got, ok := ruleListToSubset(nil, list)
	if !ok {
		t.Fatal("ToSUBSET failed")
	}
	sub := got.Children[0]
	if sub.Kind != dt.KindSubset || len(sub.Children) != 2 {
		t.Fatalf("subset = %v", sub)
	}
}

func TestListMutableRejectsValChildren(t *testing.T) {
	list := dt.New(dt.KindExprList, "",
		dt.New(dt.KindVal, "num", dt.Number("1")))
	if listMutable(list) {
		t.Fatal("VAL children are not enumerable")
	}
}

func TestConnectReachesMultiClickShape(t *testing.T) {
	// end-to-end rule chain for the Connect IN-list: PushANY then ToMULTI
	// then ANY→VAL yields exprlist(MULTI(VAL)) that multi-click can bind.
	ctx := ctxFor(t,
		"SELECT mpg, disp, id IN (1, 2) AS color FROM Cars",
		"SELECT mpg, disp, id IN (20, 22) AS color FROM Cars")
	s := InitState(ctx, true)
	s = applyAll(t, s, ctx, "PushANY")
	s = applyAll(t, s, ctx, "ToMULTI")
	s = applyAll(t, s, ctx, "ANY→VAL")
	if !s.Valid(ctx) {
		t.Fatal("state invalid")
	}
	foundMultiVal := false
	s.Trees[0].Root.Walk(func(n *dt.Node) bool {
		if n.Kind == dt.KindMulti && n.Children[0].Kind == dt.KindVal {
			foundMultiVal = true
		}
		return true
	})
	if !foundMultiVal {
		t.Fatalf("no MULTI(VAL): %s", sqlparser.ToSQL(s.Trees[0].Root))
	}
	// the generalized tree must express an unseen id set of length 3
	q := sqlparser.MustParse("SELECT mpg, disp, id IN (5, 7, 9) AS color FROM Cars")
	if _, ok := dt.Match(s.Trees[0].Root, q); !ok {
		t.Fatal("MULTI(VAL) failed to generalize to longer lists")
	}
}

func applyAll(t *testing.T, s *State, ctx *Context, rule string) *State {
	t.Helper()
	for i := 0; i < 20; i++ {
		applied := false
		for _, a := range Applicable(s, ctx) {
			if a.Rule != rule {
				continue
			}
			if next, ok := a.Run(); ok {
				s = next
				applied = true
				break
			}
		}
		if !applied {
			return s
		}
	}
	return s
}

func TestPartitionMixedDedupes(t *testing.T) {
	a := dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1"))
	mixed := dt.New(dt.KindAny, "", a, a.Clone())
	got := partitionMixed(mixed)
	if got.Kind == dt.KindAny {
		t.Fatalf("duplicate children should collapse: %v", got)
	}
}
