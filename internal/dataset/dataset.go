// Package dataset builds the synthetic databases used by the paper's seven
// workloads. The paper evaluates on real data (UCI Cars, S&P-500, flight
// delays, Covid-19 counts, Kaggle supermarket sales, SDSS DR16); interface
// generation only depends on schemas, types, domains, cardinalities and
// functional dependencies, so deterministic generators that reproduce those
// properties stand in for the raw data (see DESIGN.md §4).
//
// All generators are seeded; repeated calls yield identical databases.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pi2/internal/engine"
)

// Now is the fixed "current date" for today(); the covid table ends here.
const Now = "2020-12-31"

// NewDB builds a database containing every workload table.
func NewDB() *engine.DB {
	db := engine.NewDB(Now)
	db.Add(Toy())
	db.Add(Cars())
	db.Add(SP500())
	db.Add(Flights())
	db.Add(Covid())
	db.Add(Sales())
	db.Add(Galaxy())
	db.Add(SpecObj())
	return db
}

// Keys lists the primary keys of each table, used for functional-dependency
// inference in the catalogue.
func Keys() map[string][]string {
	return map[string][]string{
		"cars":    {"id"},
		"sp500":   {"date"},
		"galaxy":  {"objID"},
		"specObj": {"bestObjID"},
	}
}

// Toy returns the table T(p, a, b) from the paper's running example (§2).
func Toy() *engine.Table {
	r := rand.New(rand.NewSource(11))
	t := &engine.Table{
		Name:  "T",
		Cols:  []string{"p", "a", "b"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum},
	}
	for i := 0; i < 60; i++ {
		t.Rows = append(t.Rows, []engine.Value{
			engine.NumVal(float64(1 + r.Intn(6))),
			engine.NumVal(float64(1 + r.Intn(4))),
			engine.NumVal(float64(1 + r.Intn(4))),
		})
	}
	return t
}

// Cars returns a synthetic UCI-Cars-like table: id (key), hp, mpg, disp,
// origin (3 countries). hp and mpg are negatively correlated, as in the real
// data, so the Explore scatterplot looks plausible.
func Cars() *engine.Table {
	r := rand.New(rand.NewSource(42))
	t := &engine.Table{
		Name:  "Cars",
		Cols:  []string{"id", "hp", "mpg", "disp", "origin"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum, engine.TNum, engine.TStr},
	}
	origins := []string{"USA", "Europe", "Japan"}
	for i := 0; i < 300; i++ {
		hp := 45 + r.Float64()*185 // 45..230
		mpg := 46 - hp/6.5 + r.NormFloat64()*3
		if mpg < 8 {
			mpg = 8 + r.Float64()*3
		}
		disp := hp*1.8 + r.NormFloat64()*25
		t.Rows = append(t.Rows, []engine.Value{
			engine.NumVal(float64(i + 1)),
			engine.NumVal(math.Round(hp)),
			engine.NumVal(math.Round(mpg)),
			engine.NumVal(math.Round(disp)),
			engine.StrVal(origins[r.Intn(3)]),
		})
	}
	return t
}

// SP500 returns a daily random-walk price series over 2000-01-01 ..
// 2004-12-31 (the Abstract workload's brushable date range).
func SP500() *engine.Table {
	r := rand.New(rand.NewSource(7))
	t := &engine.Table{
		Name:  "sp500",
		Cols:  []string{"date", "price"},
		Types: []engine.ColType{engine.TStr, engine.TNum},
	}
	day, _ := time.Parse("2006-01-02", "2000-01-01")
	end, _ := time.Parse("2006-01-02", "2004-12-31")
	price := 1400.0
	for !day.After(end) {
		price += r.NormFloat64() * 12
		if price < 700 {
			price = 700 + r.Float64()*20
		}
		t.Rows = append(t.Rows, []engine.Value{
			engine.StrVal(day.Format("2006-01-02")),
			engine.NumVal(math.Round(price*100) / 100),
		})
		day = day.AddDate(0, 0, 3) // every third day keeps the table compact
	}
	return t
}

// Flights returns a flight-delay table. Domains are deliberately coarse so
// the grouping attributes stay below the paper's categorical threshold of 20
// distinct values (hour 6..21, delay multiples of 5 in 0..90, dist multiples
// of 250): the Filter workload's three group-by charts then admit bar-chart
// mappings exactly as in Figure 14d.
func Flights() *engine.Table {
	r := rand.New(rand.NewSource(99))
	t := &engine.Table{
		Name:  "flights",
		Cols:  []string{"hour", "delay", "dist"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum},
	}
	for i := 0; i < 2500; i++ {
		hour := 6 + r.Intn(16)               // 16 distinct
		delay := 5 * r.Intn(19)              // 0..90, 19 distinct
		dist := 250 * (1 + r.Intn(18))       // 250..4500, 18 distinct
		if r.Float64() < 0.3 && delay > 30 { // skew: most flights on time
			delay = 5 * r.Intn(6)
		}
		t.Rows = append(t.Rows, []engine.Value{
			engine.NumVal(float64(hour)),
			engine.NumVal(float64(delay)),
			engine.NumVal(float64(dist)),
		})
	}
	return t
}

// Covid returns daily cases/deaths per state for the 92 days ending at Now.
func Covid() *engine.Table {
	r := rand.New(rand.NewSource(2020))
	t := &engine.Table{
		Name:  "covid",
		Cols:  []string{"state", "date", "cases", "deaths"},
		Types: []engine.ColType{engine.TStr, engine.TStr, engine.TNum, engine.TNum},
	}
	states := []string{"CA", "WA", "NY", "TX", "FL"}
	end, _ := time.Parse("2006-01-02", Now)
	for _, st := range states {
		base := 2000 + r.Float64()*8000
		for d := 91; d >= 0; d-- {
			day := end.AddDate(0, 0, -d)
			base *= 1 + (r.Float64()-0.45)*0.08
			cases := math.Round(base)
			deaths := math.Round(base*0.015 + r.Float64()*10)
			t.Rows = append(t.Rows, []engine.Value{
				engine.StrVal(st),
				engine.StrVal(day.Format("2006-01-02")),
				engine.NumVal(cases),
				engine.NumVal(deaths),
			})
		}
	}
	return t
}

// Sales returns a Kaggle-supermarket-sales-like table over Jan–Mar 2019.
func Sales() *engine.Table {
	r := rand.New(rand.NewSource(555))
	t := &engine.Table{
		Name:  "sales",
		Cols:  []string{"city", "branch", "product", "date", "total"},
		Types: []engine.ColType{engine.TStr, engine.TStr, engine.TStr, engine.TStr, engine.TNum},
	}
	cities := []string{"Yangon", "Naypyitaw", "Mandalay"}
	branches := []string{"A", "B", "C"}
	products := []string{
		"Health and beauty", "Electronics", "Lifestyle",
		"Food and beverages", "Sports and travel", "Home and lifestyle",
	}
	start, _ := time.Parse("2006-01-02", "2019-01-01")
	for i := 0; i < 1200; i++ {
		ci := r.Intn(3)
		day := start.AddDate(0, 0, r.Intn(89))
		t.Rows = append(t.Rows, []engine.Value{
			engine.StrVal(cities[ci]),
			engine.StrVal(branches[ci]), // branch is determined by city, as in the real data
			engine.StrVal(products[r.Intn(len(products))]),
			engine.StrVal(day.Format("2006-01-02")),
			engine.NumVal(math.Round((20+r.Float64()*1000)*100) / 100),
		})
	}
	return t
}

// Galaxy returns an SDSS-like photometric table keyed by objID.
func Galaxy() *engine.Table {
	r := rand.New(rand.NewSource(16))
	t := &engine.Table{
		Name:  "galaxy",
		Cols:  []string{"objID", "u", "g", "r", "i", "z"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum, engine.TNum, engine.TNum, engine.TNum},
	}
	for i := 0; i < 400; i++ {
		base := 15 + r.Float64()*7
		t.Rows = append(t.Rows, []engine.Value{
			engine.NumVal(float64(1000 + i)),
			engine.NumVal(round3(base + 1.5 + r.Float64())),
			engine.NumVal(round3(base + 0.8 + r.Float64()*0.5)),
			engine.NumVal(round3(base)),
			engine.NumVal(round3(base - 0.3 + r.Float64()*0.3)),
			engine.NumVal(round3(base - 0.5 + r.Float64()*0.3)),
		})
	}
	return t
}

// SpecObj returns an SDSS-like spectroscopic table; bestObjID joins galaxy,
// and (ra, dec, z) cover the celestial window the SDSS log queries probe.
func SpecObj() *engine.Table {
	r := rand.New(rand.NewSource(61))
	t := &engine.Table{
		Name:  "specObj",
		Cols:  []string{"bestObjID", "z", "ra", "dec"},
		Types: []engine.ColType{engine.TNum, engine.TNum, engine.TNum, engine.TNum},
	}
	for i := 0; i < 400; i++ {
		t.Rows = append(t.Rows, []engine.Value{
			engine.NumVal(float64(1000 + i)),
			engine.NumVal(round3(0.13 + r.Float64()*0.02)), // redshift 0.13..0.15
			engine.NumVal(round3(213.0 + r.Float64()*1.2)), // ra 213..214.2
			engine.NumVal(round3(-1.0 + r.Float64()*1.0)),  // dec -1..0
		})
	}
	return t
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// Summary prints one line per table (name, columns, rows) — used by the
// REPL's \d command and smoke tests.
func Summary(db *engine.DB) []string {
	var out []string
	for _, name := range []string{"T", "Cars", "sp500", "flights", "covid", "sales", "galaxy", "specObj"} {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		out = append(out, fmt.Sprintf("%s(%d cols, %d rows)", t.Name, len(t.Cols), len(t.Rows)))
	}
	return out
}
