package dataset

import (
	"testing"

	"pi2/internal/engine"
	"pi2/internal/sqlparser"
)

func TestNewDBDeterministic(t *testing.T) {
	a, b := NewDB(), NewDB()
	for name := range a.Tables {
		ta := a.Tables[name]
		tb := b.Tables[name]
		if tb == nil {
			t.Fatalf("table %s missing on second build", name)
		}
		if len(ta.Rows) != len(tb.Rows) {
			t.Fatalf("%s: %d vs %d rows", name, len(ta.Rows), len(tb.Rows))
		}
		for i := range ta.Rows {
			for j := range ta.Rows[i] {
				if ta.Rows[i][j].Text() != tb.Rows[i][j].Text() {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
}

func TestFlightsDomainsStayCategorical(t *testing.T) {
	// The Filter workload needs each grouping attribute to stay below the
	// paper's categorical threshold of 20 distinct values.
	f := Flights()
	for ci, col := range f.Cols {
		distinct := map[float64]bool{}
		for _, row := range f.Rows {
			distinct[row[ci].Num] = true
		}
		if len(distinct) >= 20 {
			t.Errorf("flights.%s has %d distinct values, want < 20", col, len(distinct))
		}
	}
}

func TestAllWorkloadTablesPresent(t *testing.T) {
	db := NewDB()
	for _, name := range []string{"T", "cars", "sp500", "flights", "covid", "sales", "galaxy", "specobj"} {
		if _, ok := db.Table(name); !ok {
			t.Errorf("missing table %s", name)
		}
	}
	if got := len(Summary(db)); got != 8 {
		t.Errorf("Summary lines = %d, want 8", got)
	}
}

func TestCovidEndsAtNow(t *testing.T) {
	db := NewDB()
	res, err := engine.ExecSQL(db, "SELECT max(date) FROM covid", sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != Now {
		t.Fatalf("max covid date = %s, want %s", res.Rows[0][0].Str, Now)
	}
}

func TestSalesBranchDeterminedByCity(t *testing.T) {
	s := Sales()
	cityBranch := map[string]string{}
	for _, row := range s.Rows {
		city, branch := row[0].Str, row[1].Str
		if prev, ok := cityBranch[city]; ok && prev != branch {
			t.Fatalf("city %s maps to branches %s and %s", city, prev, branch)
		}
		cityBranch[city] = branch
	}
	if len(cityBranch) != 3 {
		t.Fatalf("cities = %v", cityBranch)
	}
}

func TestSDSSJoinProducesRows(t *testing.T) {
	db := NewDB()
	sql := `SELECT DISTINCT gal.objID, s.ra, s.dec FROM galaxy as gal, specObj as s
	        WHERE s.bestObjID = gal.objID AND s.ra BETWEEN 213.3 AND 214.1 AND s.dec BETWEEN -0.9 AND -0.2`
	res, err := engine.ExecSQL(db, sql, sqlparser.Parse)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("SDSS join returned no rows; domains do not overlap the workload predicates")
	}
}

func TestWorkloadPredicatesSelectData(t *testing.T) {
	db := NewDB()
	cases := []string{
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT date, price FROM sp500 WHERE date > '2001-01-01' AND date < '2003-01-01'",
		"SELECT hour, count(*) FROM flights WHERE delay BETWEEN 0 AND 50 AND dist BETWEEN 400 AND 800 GROUP BY hour",
		"SELECT date, cases FROM covid WHERE state='CA' AND date > date(today(), '-30 days')",
		"SELECT date, sum(total) FROM sales WHERE branch = 'A' AND product = 'Health and beauty' GROUP BY date",
	}
	for _, sql := range cases {
		res, err := engine.ExecSQL(db, sql, sqlparser.Parse)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows; dataset domains don't cover the workload", sql)
		}
	}
}
