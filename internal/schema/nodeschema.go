package schema

import "strings"

// Op is a node-schema expression operator (paper §3.2.3: {|, ?, *} with
// regular-expression semantics over types and schemas).
type Op uint8

const (
	OpType Op = iota // a plain type expression
	OpOr             // e1 | e2 | ... (ANY with dynamic children)
	OpOpt            // e?           (OPT, SUBSET elements)
	OpRep            // e*           (MULTI)
)

// Expr is one type expression in a node schema.
type Expr struct {
	Op   Op
	T    Type      // when Op == OpType
	Subs []*Schema // OpOr: alternatives; OpOpt/OpRep: exactly one element
}

// Schema is a node schema: a list of type expressions whose cross product
// describes the structural variation a dynamic node expresses.
type Schema struct {
	Exprs []*Expr
}

// TypeSchema wraps a single plain type.
func TypeSchema(t Type) *Schema {
	return &Schema{Exprs: []*Expr{{Op: OpType, T: t}}}
}

// String renders schemas like "<T.a, num?>" (paper Figure 7 annotations).
func (s *Schema) String() string {
	if s == nil {
		return "<>"
	}
	parts := make([]string, len(s.Exprs))
	for i, e := range s.Exprs {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (e *Expr) String() string {
	switch e.Op {
	case OpType:
		return e.T.String()
	case OpOr:
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = s.compactString()
		}
		return strings.Join(parts, "|")
	case OpOpt:
		return e.Subs[0].compactString() + "?"
	case OpRep:
		return e.Subs[0].compactString() + "*"
	}
	return "?"
}

// compactString drops the angle brackets for single-expression schemas so
// nested renderings stay readable, e.g. "<<str>*>" → "<str*>".
func (s *Schema) compactString() string {
	if len(s.Exprs) == 1 && s.Exprs[0].Op == OpType {
		return s.Exprs[0].T.String()
	}
	return s.String()
}

// SingleType returns (type, true) when the schema is exactly one plain type
// expression — the shape sliders, textboxes and VAL-style interactions need.
func (s *Schema) SingleType() (Type, bool) {
	if s != nil && len(s.Exprs) == 1 && s.Exprs[0].Op == OpType {
		return s.Exprs[0].T, true
	}
	return Type{}, false
}

// AllOptional reports whether every expression is an OPT (the SUBSET shape
// checkbox lists match).
func (s *Schema) AllOptional() bool {
	if s == nil || len(s.Exprs) == 0 {
		return false
	}
	for _, e := range s.Exprs {
		if e.Op != OpOpt {
			return false
		}
	}
	return true
}

// Arity returns the number of type expressions.
func (s *Schema) Arity() int {
	if s == nil {
		return 0
	}
	return len(s.Exprs)
}

// NumericTypes returns the plain types of all expressions if every
// expression is a numeric type expression (the range-slider shape), else
// nil, false.
func (s *Schema) NumericTypes() ([]Type, bool) {
	if s == nil || len(s.Exprs) == 0 {
		return nil, false
	}
	out := make([]Type, len(s.Exprs))
	for i, e := range s.Exprs {
		if e.Op != OpType || !e.T.IsNumeric() {
			return nil, false
		}
		out[i] = e.T
	}
	return out, true
}

// ContinuousTypes returns the plain types of all expressions if every
// expression is a continuous type (numeric or date) — the brush/pan/zoom
// range shape, which unlike range sliders accepts orderable dates.
func (s *Schema) ContinuousTypes() ([]Type, bool) {
	if s == nil || len(s.Exprs) == 0 {
		return nil, false
	}
	out := make([]Type, len(s.Exprs))
	for i, e := range s.Exprs {
		if e.Op != OpType || !e.T.Continuous() {
			return nil, false
		}
		out[i] = e.T
	}
	return out, true
}
