package schema

import (
	"strings"
	"testing"
	"testing/quick"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
)

var testCat = catalog.Build(dataset.NewDB(), dataset.Keys())

func TestTypeUnionHierarchy(t *testing.T) {
	if got := Union(NumType(), NumType()); got.Base != BaseNum {
		t.Errorf("num ∪ num = %v", got)
	}
	if got := Union(NumType(), StrType()); got.Base != BaseStr {
		t.Errorf("num ∪ str = %v", got)
	}
	if got := Union(StrType(), ASTType()); got.Base != BaseAST {
		t.Errorf("str ∪ AST = %v", got)
	}
}

func TestTypeUnionAttrs(t *testing.T) {
	a := testCat.Lookup("T.a", nil)[0]
	b := testCat.Lookup("T.b", nil)[0]
	ta, tb := AttrType(a), AttrType(b)
	u := Union(ta, ta)
	if len(u.Attrs) != 1 || u.Attrs[0] != a {
		t.Errorf("T.a ∪ T.a = %v", u)
	}
	u = Union(ta, tb)
	if len(u.Attrs) != 2 || u.Base != BaseNum {
		t.Errorf("T.a ∪ T.b = %v", u)
	}
	min, max, _, card, ok := u.Domain()
	if !ok || min >= max || card <= 0 {
		t.Errorf("union domain = %v %v %v %v", min, max, card, ok)
	}
}

func TestCompatibleSubsetRule(t *testing.T) {
	if !Compatible(NumType(), StrType()) {
		t.Error("num should be compatible with str")
	}
	if Compatible(StrType(), NumType()) {
		t.Error("str should not be compatible with num")
	}
	if !Compatible(NumType(), ASTType()) || !Compatible(StrType(), ASTType()) {
		t.Error("everything should be compatible with AST")
	}
}

// Property: Union is commutative and idempotent on bases.
func TestQuickUnionProperties(t *testing.T) {
	bases := []Type{NumType(), StrType(), ASTType()}
	f := func(i, j uint8) bool {
		a, b := bases[int(i)%3], bases[int(j)%3]
		ab, ba := Union(a, b), Union(b, a)
		if ab.Base != ba.Base {
			return false
		}
		aa := Union(a, a)
		return aa.Base == a.Base && Compatible(a, ab) && Compatible(b, ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func analyzeSQL(t *testing.T, sqls ...string) (*Info, []*dt.Node) {
	t.Helper()
	queries, err := sqlparser.ParseAll(sqls)
	if err != nil {
		t.Fatal(err)
	}
	tree := queries[0].Clone()
	tree.Renumber()
	return Analyze(tree, queries[:1], testCat), queries
}

func TestLiteralSpecialization(t *testing.T) {
	info, _ := analyzeSQL(t, "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	// find the literal "1"
	var lit *dt.Node
	info.Tree.Walk(func(m *dt.Node) bool {
		if m.Kind == dt.KindNumber && m.Label == "1" {
			lit = m
		}
		return true
	})
	ty := info.TypeOf(lit)
	if len(ty.Attrs) != 1 || !strings.EqualFold(ty.Attrs[0].Qualified(), "T.a") {
		t.Fatalf("literal type = %v, want T.a", ty)
	}
}

func TestBetweenSpecialization(t *testing.T) {
	info, _ := analyzeSQL(t, "SELECT hp FROM Cars WHERE hp BETWEEN 50 AND 60")
	count := 0
	info.Tree.Walk(func(m *dt.Node) bool {
		if m.Kind == dt.KindNumber {
			ty := info.TypeOf(m)
			if len(ty.Attrs) == 1 && ty.Attrs[0].Name == "hp" {
				count++
			}
		}
		return true
	})
	if count != 2 {
		t.Fatalf("specialized literals = %d, want 2 (lo and hi)", count)
	}
}

func TestAnySchemaAllStaticChildren(t *testing.T) {
	// ANY(a=1, b=2): paper Figure 3(a). The ANY node's children are static
	// comparison subtrees, so its schema is the union of child types (AST).
	q1 := sqlparser.MustParse("SELECT p FROM T WHERE a = 1")
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	tree := q1.Clone()
	tree.Children[2].Children[0] = anyN
	tree.Renumber()
	info := Analyze(tree, []*dt.Node{q1}, testCat)
	s := info.SchemaOf(anyN)
	if s == nil || s.Arity() != 1 {
		t.Fatalf("ANY schema = %v", s)
	}
	if ty, ok := s.SingleType(); !ok || ty.Base != BaseAST {
		t.Fatalf("ANY type = %v", s)
	}
}

func TestAnySchemaOverLiteralsGetsAttrUnion(t *testing.T) {
	// a = ANY(1, 2): the ANY's children are literals compared to attribute
	// a, so the ANY's type specializes to T.a (paper §2 Schemas).
	anyN := dt.New(dt.KindAny, "", dt.Number("1"), dt.Number("2"))
	pred := dt.New(dt.KindBinary, "=", dt.Ident("a"), anyN)
	q := sqlparser.MustParse("SELECT p FROM T WHERE a = 1")
	tree := q.Clone()
	tree.Children[2].Children[0] = pred
	tree.Renumber()
	info := Analyze(tree, []*dt.Node{q}, testCat)
	s := info.SchemaOf(anyN)
	ty, ok := s.SingleType()
	if !ok || len(ty.Attrs) != 1 || ty.Attrs[0].Name != "a" {
		t.Fatalf("ANY-over-literals schema = %v", s)
	}
	if !ty.IsNumeric() {
		t.Fatalf("type should be numeric: %v", ty)
	}
}

func TestNestedSchemas(t *testing.T) {
	// MULTI(ANY(a, b)) inside a select list: schema <<str>*> (Figure 7b).
	anyN := dt.New(dt.KindAny, "", dt.Ident("a"), dt.Ident("b"))
	multi := dt.New(dt.KindMulti, "", anyN)
	list := dt.New(dt.KindExprList, "", multi)
	list.Renumber()
	info := Analyze(list, nil, testCat)
	s := info.SchemaOf(multi)
	if s.Arity() != 1 || s.Exprs[0].Op != OpRep {
		t.Fatalf("MULTI schema = %v", s)
	}
	inner := s.Exprs[0].Subs[0]
	if ty, ok := inner.SingleType(); !ok || ty.Base != BaseStr {
		t.Fatalf("inner schema = %v", inner)
	}
	// the list node is a dynamic ancestor: cross product = the MULTI schema
	ls := info.SchemaOf(list)
	if ls.Arity() != 1 || ls.Exprs[0].Op != OpRep {
		t.Fatalf("list schema = %v", ls)
	}
}

func TestSubsetSchemaAllOptional(t *testing.T) {
	sub := dt.New(dt.KindSubset, "", dt.Ident("a"), dt.Ident("b"))
	list := dt.New(dt.KindAnd, "", sub)
	list.Renumber()
	info := Analyze(list, nil, testCat)
	s := info.SchemaOf(sub)
	if !s.AllOptional() || s.Arity() != 2 {
		t.Fatalf("SUBSET schema = %v", s)
	}
}

func TestResultSchemaGroupBy(t *testing.T) {
	q := sqlparser.MustParse("SELECT hour, count(*) FROM flights GROUP BY hour")
	rs := InferResultSchema([]*dt.Node{q}, testCat)
	if rs == nil || len(rs.Cols) != 2 {
		t.Fatalf("rs = %+v", rs)
	}
	if !rs.Grouped {
		t.Error("grouped flag missing")
	}
	if !rs.Cols[0].GroupKey || rs.Cols[1].GroupKey {
		t.Errorf("group keys = %v %v", rs.Cols[0].GroupKey, rs.Cols[1].GroupKey)
	}
	if !rs.Cols[1].IsAgg || !rs.Cols[1].Quant || rs.Cols[1].Cat {
		t.Errorf("agg col = %+v", rs.Cols[1])
	}
	if !rs.Cols[0].Cat {
		t.Errorf("hour should be categorical: %+v", rs.Cols[0])
	}
	if !rs.FDHolds([]int{0}, 1) {
		t.Error("hour should determine count")
	}
	if rs.FDHolds([]int{1}, 0) {
		t.Error("count should not determine hour")
	}
}

func TestResultSchemaPinnedKeyFD(t *testing.T) {
	// covid: key is conceptually (state, date); with state pinned by an
	// equality predicate, date determines cases within the result.
	db := dataset.NewDB()
	cat := catalog.Build(db, map[string][]string{"covid": {"state", "date"}})
	q := sqlparser.MustParse("SELECT date, cases FROM covid WHERE state = 'CA'")
	rs := InferResultSchema([]*dt.Node{q}, cat)
	if rs == nil {
		t.Fatal("rs undefined")
	}
	if !rs.FDHolds([]int{0}, 1) {
		t.Error("date should determine cases when state is pinned")
	}
}

func TestResultSchemaUnionCompatible(t *testing.T) {
	q1 := sqlparser.MustParse("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	q2 := sqlparser.MustParse("SELECT a, count(*) FROM T GROUP BY a")
	rs := InferResultSchema([]*dt.Node{q1, q2}, testCat)
	if rs == nil {
		t.Fatal("union compatible queries reported incompatible")
	}
	if !strings.Contains(rs.Cols[0].Name, "∪") {
		t.Errorf("union name = %q", rs.Cols[0].Name)
	}
	// arity mismatch → undefined
	q3 := sqlparser.MustParse("SELECT a FROM T")
	if rs := InferResultSchema([]*dt.Node{q1, q3}, testCat); rs != nil {
		t.Error("arity mismatch should be undefined")
	}
}

func TestResultSchemaBoolColumn(t *testing.T) {
	q := sqlparser.MustParse("SELECT mpg, disp, id in (1,2) as color FROM Cars")
	rs := InferResultSchema([]*dt.Node{q}, testCat)
	if rs == nil {
		t.Fatal("rs undefined")
	}
	c := rs.Cols[2]
	if c.Name != "color" || c.Distinct != 2 || !c.Cat {
		t.Fatalf("bool col = %+v", c)
	}
}

func TestResultSchemaDistinctMakesKey(t *testing.T) {
	q := sqlparser.MustParse("SELECT DISTINCT ra, dec FROM specObj WHERE ra BETWEEN 213.2 AND 213.6")
	rs := InferResultSchema([]*dt.Node{q}, testCat)
	if rs == nil {
		t.Fatal("rs undefined")
	}
	if !rs.FDHolds([]int{0, 1}, 0) {
		t.Error("distinct projection should act as a key")
	}
}

func TestResultSchemaKeyColumn(t *testing.T) {
	q := sqlparser.MustParse("SELECT id, hp FROM Cars")
	rs := InferResultSchema([]*dt.Node{q}, testCat)
	if rs == nil {
		t.Fatal("rs undefined")
	}
	if !rs.FDHolds([]int{0}, 1) {
		t.Error("id (key) should determine hp")
	}
}

func TestSchemaStringRendering(t *testing.T) {
	s := &Schema{Exprs: []*Expr{
		{Op: OpType, T: NumType()},
		{Op: OpOpt, Subs: []*Schema{TypeSchema(StrType())}},
	}}
	if got := s.String(); got != "<num, str?>" {
		t.Errorf("String() = %q", got)
	}
	rep := &Schema{Exprs: []*Expr{{Op: OpRep, Subs: []*Schema{TypeSchema(StrType())}}}}
	if got := rep.String(); got != "<str*>" {
		t.Errorf("String() = %q", got)
	}
}

func TestNumericTypesShape(t *testing.T) {
	s := &Schema{Exprs: []*Expr{
		{Op: OpType, T: NumType()},
		{Op: OpType, T: NumType()},
	}}
	types, ok := s.NumericTypes()
	if !ok || len(types) != 2 {
		t.Fatalf("NumericTypes = %v %v", types, ok)
	}
	s2 := &Schema{Exprs: []*Expr{{Op: OpType, T: StrType()}}}
	if _, ok := s2.NumericTypes(); ok {
		t.Error("str schema should not be numeric")
	}
}
