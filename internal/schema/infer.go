package schema

import (
	"strings"

	"pi2/internal/catalog"
	dt "pi2/internal/difftree"
)

// Info is the full analysis of one Difftree: node types for static nodes,
// node schemas for dynamic nodes, and the unified result schema of the
// queries the tree expresses.
type Info struct {
	Cat     *catalog.Catalog
	Tree    *dt.Node
	Scope   map[string]string // lowercased alias -> lowercased table
	Types   map[*dt.Node]Type
	Dynamic map[*dt.Node]bool
	Schemas map[*dt.Node]*Schema
	Result  *ResultSchema // nil when the expressed queries are not union compatible
}

// Analyze annotates the Difftree (paper §3.2). queries are the concrete
// input ASTs the tree expresses; they drive result-schema inference.
func Analyze(tree *dt.Node, queries []*dt.Node, cat *catalog.Catalog) *Info {
	info := &Info{
		Cat:     cat,
		Tree:    tree,
		Scope:   map[string]string{},
		Types:   map[*dt.Node]Type{},
		Dynamic: map[*dt.Node]bool{},
		Schemas: map[*dt.Node]*Schema{},
	}
	collectScope(tree, info.Scope)
	for _, q := range queries {
		collectScope(q, info.Scope)
	}
	info.initTypes(tree)
	info.specializeComparisons(tree)
	info.markDynamic(tree)
	info.inferSchema(tree)
	info.Result = InferResultSchema(queries, cat)
	return info
}

// SchemaOf returns the node schema of a dynamic node (nil for static nodes).
func (in *Info) SchemaOf(n *dt.Node) *Schema { return in.Schemas[n] }

// TypeOf returns the inferred type of a node (BaseAST if unknown).
func (in *Info) TypeOf(n *dt.Node) Type {
	if t, ok := in.Types[n]; ok {
		return t
	}
	return ASTType()
}

// collectScope records alias→table bindings from every TableRef.
func collectScope(n *dt.Node, scope map[string]string) {
	n.Walk(func(m *dt.Node) bool {
		if m.Kind == dt.KindTableRef && len(m.Children) == 2 {
			src, alias := m.Children[0], m.Children[1]
			if src.Kind == dt.KindIdent {
				table := strings.ToLower(src.Label)
				scope[table] = table
				if alias.Kind == dt.KindIdent {
					scope[strings.ToLower(alias.Label)] = table
				}
			}
		}
		return true
	})
}

// initTypes assigns initial types (paper §3.2.1 Initialization): literals by
// grammar rule, identifiers str (they denote names, not attribute values),
// functions by catalogue return type, internal nodes AST.
func (in *Info) initTypes(n *dt.Node) {
	n.Walk(func(m *dt.Node) bool {
		switch m.Kind {
		case dt.KindNumber:
			in.Types[m] = NumType()
		case dt.KindString:
			in.Types[m] = StrType()
		case dt.KindIdent:
			in.Types[m] = StrType()
		case dt.KindFunc:
			switch catalog.FuncReturn(m.Label) {
			case "num":
				in.Types[m] = NumType()
			case "str":
				in.Types[m] = StrType()
			default:
				in.Types[m] = ASTType()
			}
		case dt.KindVal:
			if m.Label == "num" {
				in.Types[m] = NumType()
			} else {
				in.Types[m] = StrType()
			}
		default:
			in.Types[m] = ASTType()
		}
		return true
	})
}

// specializeComparisons implements §3.2.1 Inference: in comparison contexts
// (attr = val, attr BETWEEN lo AND hi, attr IN (...)), the literal side's
// type is specialized to the attribute's type. The heuristic extends the
// paper's equality rule to the other comparison forms its own workloads use.
func (in *Info) specializeComparisons(n *dt.Node) {
	n.Walk(func(m *dt.Node) bool {
		switch m.Kind {
		case dt.KindBinary:
			switch m.Label {
			case "=", "<>", "<", ">", "<=", ">=":
				l, r := m.Children[0], m.Children[1]
				if t, ok := in.attrTypeOf(l); ok {
					in.applyAttrType(r, t)
				} else if t, ok := in.attrTypeOf(r); ok {
					in.applyAttrType(l, t)
				}
			}
		case dt.KindBetween:
			if t, ok := in.attrTypeOf(m.Children[0]); ok {
				in.applyAttrType(m.Children[1], t)
				in.applyAttrType(m.Children[2], t)
			}
		case dt.KindIn:
			if t, ok := in.attrTypeOf(m.Children[0]); ok {
				if m.Children[1].Kind == dt.KindExprList {
					for _, c := range m.Children[1].Children {
						in.applyAttrType(c, t)
					}
				}
			}
		}
		return true
	})
}

// attrTypeOf resolves a subtree that denotes an attribute reference — an
// identifier, or an ANY over identifiers — to its attribute type.
func (in *Info) attrTypeOf(n *dt.Node) (Type, bool) {
	switch n.Kind {
	case dt.KindIdent:
		cols := in.Cat.Lookup(n.Label, in.Scope)
		if len(cols) == 0 {
			return Type{}, false
		}
		t := AttrType(cols[0])
		for _, c := range cols[1:] {
			t = Union(t, AttrType(c))
		}
		return t, true
	case dt.KindAny:
		var t Type
		ok := false
		for _, c := range n.Children {
			ct, cok := in.attrTypeOf(c)
			if !cok {
				return Type{}, false
			}
			if !ok {
				t, ok = ct, true
			} else {
				t = Union(t, ct)
			}
		}
		return t, ok
	case dt.KindFunc:
		// date(x, off) keeps the date attribute's domain
		if n.Label == "date" && len(n.Children) > 0 {
			return Type{}, false
		}
	}
	return Type{}, false
}

// applyAttrType specializes literal and VAL nodes in a value-denoting
// subtree to the attribute's type; choice nodes recurse.
func (in *Info) applyAttrType(n *dt.Node, t Type) {
	switch n.Kind {
	case dt.KindNumber, dt.KindString, dt.KindVal:
		in.Types[n] = t
	case dt.KindAny, dt.KindOpt, dt.KindMulti, dt.KindSubset:
		for _, c := range n.Children {
			in.applyAttrType(c, t)
		}
	}
}

// markDynamic computes the Dynamic flag: choice nodes and their ancestors.
func (in *Info) markDynamic(n *dt.Node) bool {
	dyn := n.Kind.IsChoice()
	for _, c := range n.Children {
		if in.markDynamic(c) {
			dyn = true
		}
	}
	in.Dynamic[n] = dyn
	return dyn
}

// inferSchema assigns node schemas to dynamic nodes, bottom-up (paper
// §3.2.3). It also refines the types of all-static ANY nodes to the union of
// their child types.
func (in *Info) inferSchema(n *dt.Node) {
	for _, c := range n.Children {
		in.inferSchema(c)
	}
	if !in.Dynamic[n] {
		return
	}
	childSchema := func(c *dt.Node) *Schema {
		if s, ok := in.Schemas[c]; ok {
			return s
		}
		return TypeSchema(in.TypeOf(c))
	}
	switch n.Kind {
	case dt.KindAny:
		allStatic := true
		for _, c := range n.Children {
			if in.Dynamic[c] {
				allStatic = false
				break
			}
		}
		if allStatic {
			t := in.TypeOf(n.Children[0])
			for _, c := range n.Children[1:] {
				t = Union(t, in.TypeOf(c))
			}
			in.Types[n] = t
			in.Schemas[n] = TypeSchema(t)
			return
		}
		e := &Expr{Op: OpOr}
		for _, c := range n.Children {
			e.Subs = append(e.Subs, childSchema(c))
		}
		in.Schemas[n] = &Schema{Exprs: []*Expr{e}}
	case dt.KindOpt:
		in.Schemas[n] = &Schema{Exprs: []*Expr{{Op: OpOpt, Subs: []*Schema{childSchema(n.Children[0])}}}}
	case dt.KindVal:
		in.Schemas[n] = TypeSchema(in.TypeOf(n))
	case dt.KindMulti:
		in.Schemas[n] = &Schema{Exprs: []*Expr{{Op: OpRep, Subs: []*Schema{childSchema(n.Children[0])}}}}
	case dt.KindSubset:
		s := &Schema{}
		for _, c := range n.Children {
			s.Exprs = append(s.Exprs, &Expr{Op: OpOpt, Subs: []*Schema{childSchema(c)}})
		}
		in.Schemas[n] = s
	default:
		// static node with dynamic descendants: cross product of the
		// dynamic children's schemas
		s := &Schema{}
		for _, c := range n.Children {
			if in.Dynamic[c] {
				s.Exprs = append(s.Exprs, childSchema(c).Exprs...)
			}
		}
		in.Schemas[n] = s
	}
}
