// Package schema implements PI2's type and schema inference (paper §3.2):
// the AST→str→num type hierarchy with attribute specialization, node-schema
// inference for dynamic nodes, result-schema inference with union
// compatibility, and the functional-dependency facts visualization mapping
// needs.
package schema

import (
	"sort"
	"strings"

	"pi2/internal/catalog"
)

// Base is a primitive type in the paper's trivial hierarchy AST → str → num
// (num specializes str, str specializes AST).
type Base uint8

const (
	BaseAST Base = iota
	BaseStr
	BaseNum
)

func (b Base) String() string {
	switch b {
	case BaseNum:
		return "num"
	case BaseStr:
		return "str"
	default:
		return "AST"
	}
}

// Type is a node type: a primitive base optionally specialized by one or
// more attributes (an ANY over literals compared against both a and b gets
// the union attribute set {a, b}, paper §2 "Schemas").
type Type struct {
	Base  Base
	Attrs []*catalog.Column // sorted by qualified name; empty = plain primitive
}

// NumType and StrType are the plain primitives.
func NumType() Type { return Type{Base: BaseNum} }
func StrType() Type { return Type{Base: BaseStr} }
func ASTType() Type { return Type{Base: BaseAST} }

// AttrType specializes the column's primitive to its domain.
func AttrType(c *catalog.Column) Type {
	b := BaseStr
	if c.IsNum {
		b = BaseNum
	}
	return Type{Base: b, Attrs: []*catalog.Column{c}}
}

// String renders e.g. "num", "T.a", "{T.a|T.b}".
func (t Type) String() string {
	switch len(t.Attrs) {
	case 0:
		return t.Base.String()
	case 1:
		return t.Attrs[0].Qualified()
	default:
		names := make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			names[i] = a.Qualified()
		}
		return "{" + strings.Join(names, "|") + "}"
	}
}

// Union returns the least common ancestor type (paper §3.2.1). Attribute
// sets with equal bases union; otherwise specialization is dropped.
func Union(a, b Type) Type {
	base := a.Base
	if b.Base < base {
		base = b.Base // smaller enum = more general (AST < str < num)
	}
	if len(a.Attrs) > 0 && len(b.Attrs) > 0 && a.Base == b.Base {
		return Type{Base: base, Attrs: unionAttrs(a.Attrs, b.Attrs)}
	}
	return Type{Base: base}
}

func unionAttrs(a, b []*catalog.Column) []*catalog.Column {
	seen := map[string]*catalog.Column{}
	for _, c := range a {
		seen[c.Qualified()] = c
	}
	for _, c := range b {
		seen[c.Qualified()] = c
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*catalog.Column, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

// Compatible reports whether sub's domain is a subset of super's domain at
// the base level (paper: "a type t1 is compatible with t2 if its domain is a
// subset of t2's domain"). num ⊆ str ⊆ AST; attribute types use their base.
func Compatible(sub, super Type) bool {
	return sub.Base >= super.Base
}

// IsNumeric reports whether values of the type are numbers (sliders and
// range sliders require this).
func (t Type) IsNumeric() bool { return t.Base == BaseNum }

// Continuous reports whether the type supports range interactions (brush,
// pan, zoom): numeric types, and date-attribute types whose ISO strings are
// orderable (the paper's sp500/covid brushes operate on dates).
func (t Type) Continuous() bool {
	if t.IsNumeric() {
		return true
	}
	if len(t.Attrs) == 0 {
		return false
	}
	for _, a := range t.Attrs {
		if !a.IsDate {
			return false
		}
	}
	return true
}

// Domain summarizes the value domain of an attribute-specialized type for
// widget initialization: numeric [Min,Max], the distinct value list (for
// enumerating widgets), and total cardinality. ok is false for plain
// primitives, whose domains are unbounded.
func (t Type) Domain() (min, max float64, values []string, card int, ok bool) {
	if len(t.Attrs) == 0 {
		return 0, 0, nil, 0, false
	}
	seen := map[string]bool{}
	for i, a := range t.Attrs {
		if i == 0 || a.Min < min {
			min = a.Min
		}
		if i == 0 || a.Max > max {
			max = a.Max
		}
		card += a.Distinct
		for _, v := range a.Values {
			if !seen[v] {
				seen[v] = true
				values = append(values, v)
			}
		}
	}
	sort.Strings(values)
	return min, max, values, card, true
}
