package schema

import (
	"strings"

	"pi2/internal/catalog"
	dt "pi2/internal/difftree"
)

// bigCardinality marks continuous / unbounded output columns (aggregates,
// arithmetic) that can never be treated as categorical.
const bigCardinality = 1 << 20

// ResultCol describes one column of a Difftree's result schema.
type ResultCol struct {
	Name      string
	Type      Type
	Distinct  int
	IsAgg     bool   // value of an aggregate function
	GroupKey  bool   // grouping attribute in every expressed query
	Quant     bool   // compatible with quantitative visual variables
	Cat       bool   // compatible with categorical visual variables
	Qualified string // qualified source attribute ("table.col"), "" otherwise
}

// ResultSchema is the union schema over all queries a Difftree expresses
// (paper §3.2.2), plus the functional-dependency facts visualization
// constraints need (§4.1).
type ResultSchema struct {
	Cols    []ResultCol
	Grouped bool    // every query aggregates (GROUP BY or bare aggregates)
	Keys    [][]int // result-column index sets that form candidate keys
}

// GroupKeyIdx returns the indexes of the grouping columns.
func (rs *ResultSchema) GroupKeyIdx() []int {
	var out []int
	for i, c := range rs.Cols {
		if c.GroupKey {
			out = append(out, i)
		}
	}
	return out
}

// FDHolds reports whether the determinant columns functionally determine
// the dependent column: grouping attributes determine aggregates, and any
// candidate key determines everything.
func (rs *ResultSchema) FDHolds(determinants []int, dep int) bool {
	dset := map[int]bool{}
	for _, d := range determinants {
		dset[d] = true
	}
	if rs.Grouped && rs.Cols[dep].IsAgg {
		all := true
		for _, g := range rs.GroupKeyIdx() {
			if !dset[g] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	for _, key := range rs.Keys {
		covered := true
		for _, k := range key {
			if !dset[k] {
				covered = false
				break
			}
		}
		if covered && len(key) > 0 {
			return true
		}
	}
	return false
}

// InferResultSchema computes the union result schema of the queries; nil
// when they are not union compatible.
func InferResultSchema(queries []*dt.Node, cat *catalog.Catalog) *ResultSchema {
	if len(queries) == 0 {
		return nil
	}
	var out *ResultSchema
	for _, q := range queries {
		qs := queryResultSchema(q, cat)
		if qs == nil {
			return nil
		}
		if out == nil {
			out = qs
			continue
		}
		out = unionSchemas(out, qs)
		if out == nil {
			return nil
		}
	}
	return out
}

func unionSchemas(a, b *ResultSchema) *ResultSchema {
	if len(a.Cols) != len(b.Cols) {
		return nil
	}
	out := &ResultSchema{Grouped: a.Grouped && b.Grouped}
	for i := range a.Cols {
		ca, cb := a.Cols[i], b.Cols[i]
		name := unionName(ca.Name, cb.Name)
		qual := ca.Qualified
		if cb.Qualified != qual {
			qual = ""
		}
		out.Cols = append(out.Cols, ResultCol{
			Name:      name,
			Type:      Union(ca.Type, cb.Type),
			Distinct:  maxInt(ca.Distinct, cb.Distinct),
			IsAgg:     ca.IsAgg && cb.IsAgg,
			GroupKey:  ca.GroupKey && cb.GroupKey,
			Quant:     ca.Quant && cb.Quant,
			Cat:       ca.Cat && cb.Cat,
			Qualified: qual,
		})
	}
	out.Keys = intersectKeys(a.Keys, b.Keys)
	return out
}

// unionName concatenates the distinct attribute names of a unioned column
// (paper §3.2.2: "each attribute name is a concatenation of the unique
// attribute names").
func unionName(a, b string) string {
	parts := strings.Split(a, "∪")
	for _, p := range strings.Split(b, "∪") {
		found := false
		for _, q := range parts {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "∪")
}

func intersectKeys(a, b [][]int) [][]int {
	var out [][]int
	for _, ka := range a {
		for _, kb := range b {
			if equalIntSets(ka, kb) {
				out = append(out, ka)
				break
			}
		}
	}
	return out
}

func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// queryResultSchema statically analyzes one concrete query AST.
func queryResultSchema(q *dt.Node, cat *catalog.Catalog) *ResultSchema {
	if q.Kind != dt.KindQuery {
		return nil
	}
	scope := map[string]string{}
	collectScope(q, scope)
	// restrict scope to THIS query's from clause for name resolution
	localScope := map[string]string{}
	from := q.Children[1]
	if from.Kind == dt.KindFrom {
		for _, ref := range from.Children {
			if ref.Kind == dt.KindJoin { // unwrap a join step to its table ref
				ref = ref.Children[0]
			}
			src, alias := ref.Children[0], ref.Children[1]
			if src.Kind == dt.KindIdent {
				t := strings.ToLower(src.Label)
				localScope[t] = t
				if alias.Kind == dt.KindIdent {
					localScope[strings.ToLower(alias.Label)] = t
				}
			}
		}
	}
	if len(localScope) == 0 {
		localScope = scope
	}

	sel, groupby, where := q.Children[0], q.Children[3], q.Children[2]
	rs := &ResultSchema{}

	var groupExprs []*dt.Node
	if groupby.Kind == dt.KindGroupBy {
		groupExprs = groupby.Children
	}
	hasAgg := containsAggregate(sel) || containsAggregate(q.Children[4])
	rs.Grouped = len(groupExprs) > 0 || hasAgg

	// pinned columns: top-level equality predicates fix an attribute to a
	// constant, so it participates in key coverage implicitly.
	pinned := pinnedCols(where, cat, localScope)

	type colInfo struct {
		rc   ResultCol
		expr *dt.Node
	}
	var cols []colInfo
	items := sel.Children
	for _, item := range items {
		expr := item.Children[0]
		alias := item.Children[1]
		if expr.Kind == dt.KindStar {
			for _, tname := range sortedScopeTables(localScope) {
				tm := cat.Tables[tname]
				if tm == nil {
					continue
				}
				for _, c := range tm.Columns {
					rc := attrResultCol(c)
					cols = append(cols, colInfo{rc, dt.Ident(c.Qualified())})
				}
			}
			continue
		}
		rc := exprResultCol(expr, cat, localScope)
		if alias.Kind == dt.KindIdent {
			rc.Name = alias.Label
		}
		cols = append(cols, colInfo{rc, expr})
	}

	// grouping flags: a column is a group key when its expression matches a
	// GROUP BY expression structurally or by attribute name.
	for i := range cols {
		for _, g := range groupExprs {
			if dt.Equal(cols[i].expr, g) || sameAttrRef(cols[i].expr, g) {
				cols[i].rc.GroupKey = true
			}
		}
		rs.Cols = append(rs.Cols, cols[i].rc)
	}

	// candidate keys: for each table key, check coverage by result columns
	// and pinned attributes.
	for _, tname := range sortedScopeTables(localScope) {
		tm := cat.Tables[tname]
		if tm == nil {
			continue
		}
		for _, key := range tm.Keys {
			var idxs []int
			covered := true
			for _, kc := range key {
				qual := strings.ToLower(tm.Name + "." + kc)
				if pinned[qual] {
					continue
				}
				found := -1
				for i, c := range rs.Cols {
					if strings.ToLower(c.Qualified) == qual {
						found = i
						break
					}
				}
				if found < 0 {
					covered = false
					break
				}
				idxs = append(idxs, found)
			}
			if covered && len(idxs) > 0 {
				rs.Keys = append(rs.Keys, idxs)
			}
		}
	}
	// DISTINCT over the full projection makes the whole row a key.
	if sel.Label == "distinct" {
		all := make([]int, len(rs.Cols))
		for i := range all {
			all[i] = i
		}
		rs.Keys = append(rs.Keys, all)
	}
	return rs
}

func sortedScopeTables(scope map[string]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range scope {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	// deterministic order
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// sameAttrRef reports whether two expressions reference the same attribute
// by (possibly differently qualified) name.
func sameAttrRef(a, b *dt.Node) bool {
	if a.Kind != dt.KindIdent || b.Kind != dt.KindIdent {
		return false
	}
	return shortName(a.Label) == shortName(b.Label)
}

func shortName(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return strings.ToLower(s[i+1:])
	}
	return strings.ToLower(s)
}

// pinnedCols finds attributes fixed by top-level equality predicates.
func pinnedCols(where *dt.Node, cat *catalog.Catalog, scope map[string]string) map[string]bool {
	out := map[string]bool{}
	if where.Kind != dt.KindWhere {
		return out
	}
	var conjuncts []*dt.Node
	if where.Children[0].Kind == dt.KindAnd {
		conjuncts = where.Children[0].Children
	} else {
		conjuncts = []*dt.Node{where.Children[0]}
	}
	for _, c := range conjuncts {
		if c.Kind == dt.KindBinary && c.Label == "=" {
			l, r := c.Children[0], c.Children[1]
			if l.Kind == dt.KindIdent && r.Kind.IsLiteral() {
				for _, col := range cat.Lookup(l.Label, scope) {
					out[strings.ToLower(col.Qualified())] = true
				}
			}
			if r.Kind == dt.KindIdent && l.Kind.IsLiteral() {
				for _, col := range cat.Lookup(r.Label, scope) {
					out[strings.ToLower(col.Qualified())] = true
				}
			}
		}
	}
	return out
}

func containsAggregate(n *dt.Node) bool {
	if n.Kind == dt.KindNone {
		return false
	}
	found := false
	n.Walk(func(m *dt.Node) bool {
		if m != n && m.Kind == dt.KindQuery {
			return false
		}
		if m.Kind == dt.KindFunc {
			switch m.Label {
			case "count", "sum", "avg", "min", "max":
				found = true
			}
		}
		return !found
	})
	return found
}

func attrResultCol(c *catalog.Column) ResultCol {
	return ResultCol{
		Name:      c.Name,
		Type:      AttrType(c),
		Distinct:  c.Distinct,
		Quant:     c.Quantitative(),
		Cat:       c.Categorical(),
		Qualified: c.Qualified(),
	}
}

// exprResultCol derives column metadata from a select expression.
func exprResultCol(e *dt.Node, cat *catalog.Catalog, scope map[string]string) ResultCol {
	switch e.Kind {
	case dt.KindIdent:
		cols := cat.Lookup(e.Label, scope)
		if len(cols) > 0 {
			rc := attrResultCol(cols[0])
			rc.Name = shortDisplayName(e.Label)
			return rc
		}
		return ResultCol{Name: shortDisplayName(e.Label), Type: StrType(), Distinct: bigCardinality}
	case dt.KindFunc:
		name := e.Label
		if len(e.Children) == 1 && e.Children[0].Kind == dt.KindIdent {
			name = e.Label + "_" + shortDisplayName(e.Children[0].Label)
		}
		switch e.Label {
		case "count", "sum", "avg", "min", "max":
			return ResultCol{Name: name, Type: NumType(), Distinct: bigCardinality, IsAgg: true, Quant: true}
		case "date", "today":
			return ResultCol{Name: name, Type: StrType(), Distinct: bigCardinality, Quant: true}
		default:
			return ResultCol{Name: name, Type: NumType(), Distinct: bigCardinality, Quant: true}
		}
	case dt.KindIn, dt.KindBinary, dt.KindBetween, dt.KindAnd, dt.KindOr, dt.KindNot:
		if e.Kind == dt.KindBinary {
			switch e.Label {
			case "+", "-", "*", "/":
				return ResultCol{Name: "expr", Type: NumType(), Distinct: bigCardinality, Quant: true}
			}
		}
		// boolean: two values, categorical and quantitative
		return ResultCol{Name: "expr", Type: NumType(), Distinct: 2, Quant: true, Cat: true}
	case dt.KindNumber:
		return ResultCol{Name: "expr", Type: NumType(), Distinct: 1, Quant: true, Cat: true}
	case dt.KindString:
		return ResultCol{Name: "expr", Type: StrType(), Distinct: 1, Cat: true}
	default:
		return ResultCol{Name: "expr", Type: ASTType(), Distinct: bigCardinality}
	}
}

// shortDisplayName strips the qualifier: "gal.objID" → "objID".
func shortDisplayName(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}
