package ingest_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pi2/internal/engine"
	"pi2/internal/ingest"
)

func writeFile(t *testing.T, path, data string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendFile(t *testing.T, path, data string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadFollowTornTail: the initial load consumes only complete records;
// a torn final record is left for the tailer, and arrives once terminated.
func TestLoadFollowTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.csv")
	writeFile(t, path, "k,v\n1,a\n2,b\n3,")
	tbl, rep, off, err := ingest.LoadFollow(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || rep.Rows != 2 {
		t.Fatalf("initial load got %d rows, want 2 (torn record must not ingest)", len(tbl.Rows))
	}
	if off != int64(len("k,v\n1,a\n2,b\n")) {
		t.Fatalf("offset = %d, want %d", off, len("k,v\n1,a\n2,b\n"))
	}
	db := engine.NewDB("2020-12-31")
	db.Add(tbl)
	tl := ingest.NewTailer(db, tbl.Name, path, ingest.FormatCSV, off)
	// Nothing new: the torn record is still torn.
	if n, err := tl.Poll(); err != nil || n != 0 {
		t.Fatalf("poll on torn tail: n=%d err=%v, want 0,nil", n, err)
	}
	// Terminate the torn record and add one more.
	appendFile(t, path, "c\n4,d\n")
	n, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("poll ingested %d rows, want 2", n)
	}
	got, _ := db.Table(tbl.Name)
	if len(got.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(got.Rows))
	}
	if got.Rows[2][1].Str != "c" || got.Rows[3][1].Str != "d" {
		t.Fatalf("appended rows wrong: %v", got.Rows[2:])
	}
	if tl.Offset() != int64(len("k,v\n1,a\n2,b\n3,c\n4,d\n")) {
		t.Fatalf("offset after poll = %d", tl.Offset())
	}
}

// TestTailQuotedNewline: a newline inside an RFC 4180 quoted field is
// payload, not a record boundary — the splitter must not hand half a quoted
// record to the parser.
func TestTailQuotedNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.csv")
	writeFile(t, path, "k,v\n1,a\n")
	tbl, _, off, err := ingest.LoadFollow(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB("2020-12-31")
	db.Add(tbl)
	tl := ingest.NewTailer(db, tbl.Name, path, ingest.FormatCSV, off)
	// A quoted field containing a newline, torn right after that newline.
	appendFile(t, path, "2,\"x\ny")
	if n, err := tl.Poll(); err != nil || n != 0 {
		t.Fatalf("poll mid-quote: n=%d err=%v, want 0,nil", n, err)
	}
	appendFile(t, path, "z\"\n")
	n, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("poll ingested %d rows, want 1", n)
	}
	got, _ := db.Table(tbl.Name)
	if got.Rows[1][1].Str != "x\nyz" {
		t.Fatalf("quoted field = %q, want %q", got.Rows[1][1].Str, "x\nyz")
	}
}

// TestTailNDJSON: ndjson tailing decodes against the served schema —
// missing keys are NULL, unknown keys and type mismatches are errors that
// leave the table untouched.
func TestTailNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.ndjson")
	writeFile(t, path, `{"day":"mon","n":1}`+"\n")
	tbl, _, off, err := ingest.LoadFollow(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB("2020-12-31")
	db.Add(tbl)
	tl := ingest.NewTailer(db, tbl.Name, path, ingest.FormatNDJSON, off)
	appendFile(t, path, `{"n":2}`+"\n"+`{"day":"tue","n":3}`+"\n")
	if n, err := tl.Poll(); err != nil || n != 2 {
		t.Fatalf("poll: n=%d err=%v, want 2,nil", n, err)
	}
	got, _ := db.Table(tbl.Name)
	if !got.Rows[1][0].Null {
		t.Fatalf("missing key should be NULL, got %v", got.Rows[1][0])
	}
	appendFile(t, path, `{"bogus":1}`+"\n")
	if _, err := tl.Poll(); err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("unknown key: err=%v, want unknown column error", err)
	}
	if got, _ := db.Table(tbl.Name); len(got.Rows) != 3 {
		t.Fatalf("failed poll mutated the table: %d rows", len(got.Rows))
	}
}

// TestTailRefusals: gzip inputs and files that shrink beneath the consumed
// offset are hard errors, not silent corruption.
func TestTailRefusals(t *testing.T) {
	dir := t.TempDir()
	gz := filepath.Join(dir, "g.csv.gz")
	if err := os.WriteFile(gz, gzipped("k,v\n1,a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ingest.LoadFollow(gz, nil); err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Fatalf("LoadFollow(gzip): err=%v, want gzip refusal", err)
	}

	path := filepath.Join(dir, "s.csv")
	writeFile(t, path, "k,v\n1,a\n2,b\n")
	tbl, _, off, err := ingest.LoadFollow(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB("2020-12-31")
	db.Add(tbl)
	tl := ingest.NewTailer(db, tbl.Name, path, ingest.FormatCSV, off)
	writeFile(t, path, "k,v\n") // truncate below the consumed offset
	if _, err := tl.Poll(); err == nil || !strings.Contains(err.Error(), "shrank") {
		t.Fatalf("poll after truncation: err=%v, want shrank error", err)
	}
}

// TestDecodeRowsSchema pins the /ingest decoding contract directly.
func TestDecodeRowsSchema(t *testing.T) {
	tbl := &engine.Table{
		Name:  "m",
		Cols:  []string{"K", "V"},
		Types: []engine.ColType{engine.TNum, engine.TStr},
	}
	rows, err := ingest.DecodeRows(strings.NewReader(
		`{"k":1,"v":"a"}`+"\n"+`{"K":2}`+"\n"+`{"v":null,"k":true}`+"\n"), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0][0].Num != 1 || rows[0][1].Str != "a" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if !rows[1][1].Null {
		t.Fatalf("missing key not NULL: %v", rows[1])
	}
	if rows[2][0].Num != 1 || !rows[2][1].Null {
		t.Fatalf("row 2 = %v (bool should coerce to 1, explicit null stays NULL)", rows[2])
	}
	if _, err := ingest.DecodeRows(strings.NewReader(`{"k":"NaN"}`+"\n"), tbl); err == nil {
		t.Fatal("non-numeric value for num column accepted")
	}
	if _, err := ingest.DecodeRows(strings.NewReader(`{"zz":1}`+"\n"), tbl); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := ingest.DecodeRows(strings.NewReader(`{"k":{"a":1}}`+"\n"), tbl); err == nil {
		t.Fatal("nested value accepted")
	}
}

// FuzzTail cross-checks incremental tailing against one-shot ingestion: for
// any payload and any cut point, load-then-tail must end with exactly the
// rows a single ReadTable over the consumed prefix produces — torn lines,
// quoted newlines, gzip and mid-record EOF included. Inputs either of the
// paths rejects are fine (refusal is a valid answer); divergence or a panic
// is not.
func FuzzTail(f *testing.F) {
	f.Add([]byte("k,v\n1,a\n2,b\n3,c\n"), 8)
	f.Add([]byte("k,v\n1,a\n2,b\n3,"), 6)                 // mid-record EOF
	f.Add([]byte("k,v\n1,\"a\n2\",b\n"), 7)               // quoted newline, cut inside
	f.Add([]byte("k,v\n1,a\n"), 0)                        // everything tailed
	f.Add(gzipped("k,v\n1,a\n"), 4)                       // gzip refusal
	f.Add([]byte("k,v\n1,a\nx,b\n"), 8)                   // type break: str after num inference
	f.Add([]byte("k,v\n\"say \"\"hi\"\"\",2\n1,3\n"), 10) // escaped quotes
	f.Add([]byte("k\n1\n2\n3\n4\n"), 3)                   // single column
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if len(data) == 0 {
			return
		}
		cut = ((cut % len(data)) + len(data)) % len(data)
		dir := t.TempDir()
		path := filepath.Join(dir, "f.csv")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tbl, _, off, err := ingest.LoadFollow(path, nil)
		if err != nil {
			return // rejected initial prefix: fine
		}
		db := engine.NewDB("2020-12-31")
		db.Add(tbl)
		tl := ingest.NewTailer(db, tbl.Name, path, ingest.FormatCSV, off)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := tl.Poll(); err != nil {
			return // appended records broke the schema: refusal is fine
		}
		// Oracle: one-shot ingestion of exactly the consumed prefix. The
		// incremental path pins types from the initial prefix, so the oracle
		// may legally differ in *types* (later records can widen inference);
		// compare only when the schemas agree.
		oracle, _, err := ingest.ReadTable(bytes.NewReader(data[:tl.Offset()]), tbl.Name, ingest.FormatCSV, nil)
		if err != nil {
			t.Fatalf("tailer consumed a prefix one-shot ingestion rejects: %v", err)
		}
		got, _ := db.Table(tbl.Name)
		if len(oracle.Types) != len(got.Types) {
			t.Fatalf("column count diverged: %d vs %d", len(got.Types), len(oracle.Types))
		}
		for i := range oracle.Types {
			if oracle.Types[i] != got.Types[i] {
				return // inference widened post-cut; values are incomparable
			}
		}
		if len(oracle.Rows) != len(got.Rows) {
			t.Fatalf("row count diverged: tailed %d, one-shot %d", len(got.Rows), len(oracle.Rows))
		}
		for ri := range oracle.Rows {
			for ci := range oracle.Rows[ri] {
				a, b := got.Rows[ri][ci], oracle.Rows[ri][ci]
				if a.Null != b.Null || a.IsStr != b.IsStr || a.Num != b.Num || a.Str != b.Str {
					t.Fatalf("row %d col %d diverged: tailed %v, one-shot %v", ri, ci, a, b)
				}
			}
		}
	})
}
