// Package ingest loads external datasets and SQL query logs so interfaces
// can be generated for databases that do not ship with the repository. The
// PI2 paper's premise is that generation needs only a query log, a database
// connection and the catalogue; this package supplies all three from plain
// files: tabular data (CSV, TSV, newline-delimited JSON, each optionally
// gzip-compressed) is materialized into engine.DB tables with per-column
// type inference, an optional JSON manifest declares table names, primary
// keys and type overrides, and a query-log file is parsed and validated
// against the ingested catalogue with line-anchored errors.
package ingest

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pi2/internal/engine"
)

// DefaultNow is the fixed "current date" an ingested database uses for
// today() when the manifest does not declare one. A fixed clock keeps
// interface generation deterministic, exactly as internal/dataset does.
const DefaultNow = "2020-12-31"

// Format identifies the on-disk layout of one data file.
type Format uint8

const (
	// FormatCSV is comma-separated values with a header row; quoting per
	// RFC 4180 (embedded separators, quotes and newlines).
	FormatCSV Format = iota
	// FormatTSV is tab-separated values with a header row.
	FormatTSV
	// FormatNDJSON is newline-delimited JSON: one flat object per line.
	FormatNDJSON
)

func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatTSV:
		return "tsv"
	default:
		return "ndjson"
	}
}

// DetectFormat maps a file name to its format by extension, looking through
// a trailing ".gz". ok is false for unrecognized extensions.
func DetectFormat(path string) (Format, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".gz")
	switch strings.ToLower(filepath.Ext(base)) {
	case ".csv":
		return FormatCSV, true
	case ".tsv", ".tab":
		return FormatTSV, true
	case ".json", ".ndjson", ".jsonl":
		return FormatNDJSON, true
	}
	return FormatCSV, false
}

// TableStem is the default table name for a data file: the base name with
// compression and format extensions removed, sanitized to an identifier.
func TableStem(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), ".gz")
	stem := strings.TrimSuffix(base, filepath.Ext(base))
	var b strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('t')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Result is an ingested database plus everything downstream layers need:
// the primary keys for catalogue functional-dependency inference and a
// per-table ingestion report.
type Result struct {
	DB     *engine.DB
	Keys   map[string][]string
	Tables []*TableReport
}

// Load materializes every data file into one database. The manifest (may be
// nil) contributes table names, keys, type overrides and the clock.
func Load(paths []string, m *Manifest) (*Result, error) {
	res, _, err := LoadFollowing(paths, m, nil)
	return res, err
}

// LoadFollowing is Load for a live deployment: paths listed in follow are
// loaded via LoadFollow — only their complete-record prefix is ingested, so
// a producer mid-write cannot poison the initial load — and a ready Tailer
// is returned for each (in follow order), resuming at the exact byte offset
// the load consumed. Every follow path must also appear in paths.
func LoadFollowing(paths []string, m *Manifest, follow []string) (*Result, []*Tailer, error) {
	followSet := map[string]bool{}
	for _, p := range follow {
		ok := false
		for _, q := range paths {
			if q == p {
				ok = true
				break
			}
		}
		if !ok {
			return nil, nil, fmt.Errorf("ingest: follow file %s is not among the data files", p)
		}
		followSet[p] = true
	}
	now := DefaultNow
	if m != nil && m.Now != "" {
		now = m.Now
	}
	res := &Result{DB: engine.NewDB(now), Keys: map[string][]string{}}
	tailerFor := map[string]*Tailer{}
	matched := map[*TableManifest]bool{}
	for _, path := range paths {
		tm := m.forFile(path)
		matched[tm] = true
		var tbl *engine.Table
		var rep *TableReport
		var err error
		if followSet[path] {
			var off int64
			tbl, rep, off, err = LoadFollow(path, tm)
			if err != nil {
				return nil, nil, err
			}
			format, _ := DetectFormat(path)
			tailerFor[path] = NewTailer(res.DB, tbl.Name, path, format, off)
		} else {
			tbl, rep, err = LoadTable(path, tm)
			if err != nil {
				return nil, nil, err
			}
		}
		if _, dup := res.DB.Table(tbl.Name); dup {
			return nil, nil, fmt.Errorf("ingest: %s: duplicate table name %q", path, tbl.Name)
		}
		res.DB.Add(tbl)
		res.Tables = append(res.Tables, rep)
		if tm != nil && len(tm.Keys) > 0 {
			for _, k := range tm.Keys {
				if tbl.ColIndex(k) < 0 {
					return nil, nil, fmt.Errorf("ingest: %s: manifest key column %q not in table %q", path, k, tbl.Name)
				}
			}
			res.Keys[tbl.Name] = append([]string(nil), tm.Keys...)
		}
	}
	if len(res.Tables) == 0 {
		return nil, nil, fmt.Errorf("ingest: no data files given")
	}
	// a manifest entry matching no data file is almost certainly a typo;
	// silently dropping its keys and type overrides would corrupt the
	// schema without a trace, so fail loudly (mirrors ReadManifest's
	// unknown-field rejection).
	if m != nil {
		for i := range m.Tables {
			if !matched[&m.Tables[i]] {
				return nil, nil, fmt.Errorf("ingest: manifest entry %q matches none of the data files", m.Tables[i].File)
			}
		}
	}
	tailers := make([]*Tailer, len(follow))
	for i, p := range follow {
		tailers[i] = tailerFor[p]
	}
	return res, tailers, nil
}

// LoadAll is the one-call facade behind pi2.GeneratorFromFiles and the
// CLIs: ingest the data files (with optional manifest), parse the query
// log, and validate every statement against the ingested tables.
func LoadAll(dataPaths []string, queryLogPath, manifestPath string) (*Result, []Statement, error) {
	res, stmts, _, err := LoadAllFollowing(dataPaths, queryLogPath, manifestPath, nil)
	return res, stmts, err
}

// LoadAllFollowing is LoadAll with a follow set: the listed data files are
// ingested complete-records-only and returned as ready Tailers for live
// serving (see LoadFollowing).
func LoadAllFollowing(dataPaths []string, queryLogPath, manifestPath string, follow []string) (*Result, []Statement, []*Tailer, error) {
	var m *Manifest
	if manifestPath != "" {
		var err error
		m, err = ReadManifest(manifestPath)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	res, tailers, err := LoadFollowing(dataPaths, m, follow)
	if err != nil {
		return nil, nil, nil, err
	}
	stmts, err := ReadLog(queryLogPath)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := Validate(stmts, res.DB, queryLogPath); err != nil {
		return nil, nil, nil, err
	}
	return res, stmts, tailers, nil
}

// SplitList splits a comma-separated CLI path list, dropping empty
// segments so a trailing or doubled comma doesn't surface as a cryptic
// "unrecognized extension" error for a blank filename.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// LoadFiles is Load plus manifest reading: manifestPath may be empty.
func LoadFiles(dataPaths []string, manifestPath string) (*Result, error) {
	var m *Manifest
	if manifestPath != "" {
		var err error
		m, err = ReadManifest(manifestPath)
		if err != nil {
			return nil, err
		}
	}
	return Load(dataPaths, m)
}

// LoadTable ingests one data file. The manifest entry (may be nil) renames
// the table and overrides inferred column types.
func LoadTable(path string, tm *TableManifest) (*engine.Table, *TableReport, error) {
	format, ok := DetectFormat(path)
	if !ok {
		return nil, nil, fmt.Errorf("ingest: %s: unrecognized extension (want .csv, .tsv, .json/.ndjson/.jsonl, optionally .gz)", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	name := TableStem(path)
	if tm != nil && tm.Name != "" {
		name = tm.Name
	}
	if name == "" {
		return nil, nil, fmt.Errorf("ingest: %s: cannot derive a table name; declare one in the manifest", path)
	}
	tbl, rep, err := ReadTable(f, name, format, tm)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	rep.File = path
	return tbl, rep, nil
}

// ReadTable ingests one table from a stream (gzip detected transparently by
// magic bytes). It reads the input exactly once, inferring column types as
// rows stream in, then materializes typed engine values.
func ReadTable(r io.Reader, name string, format Format, tm *TableManifest) (*engine.Table, *TableReport, error) {
	in, err := sniffGzip(r)
	if err != nil {
		return nil, nil, err
	}
	var raw *rawTable
	switch format {
	case FormatCSV:
		raw, err = readSeparated(in, ',')
	case FormatTSV:
		raw, err = readSeparated(in, '\t')
	case FormatNDJSON:
		raw, err = readNDJSON(in)
	default:
		return nil, nil, fmt.Errorf("unknown format %v", format)
	}
	if err != nil {
		return nil, nil, err
	}
	return raw.materialize(name, tm)
}

// sniffGzip wraps the stream in a gzip reader when the gzip magic bytes
// lead, and is a no-op otherwise.
func sniffGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		return zr, nil
	}
	return br, nil
}
