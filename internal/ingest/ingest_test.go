package ingest

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pi2/internal/engine"
)

func readCSV(t *testing.T, src string, tm *TableManifest) (*engine.Table, *TableReport) {
	t.Helper()
	tbl, rep, err := ReadTable(strings.NewReader(src), "t", FormatCSV, tm)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, rep
}

func TestInferIntFloatStr(t *testing.T) {
	tbl, rep := readCSV(t, "a,b,c,d\n1,1.5,x,2020-01-01\n2,2,y,2020-01-02\n", nil)
	wantTypes := []engine.ColType{engine.TNum, engine.TNum, engine.TStr, engine.TStr}
	for i, want := range wantTypes {
		if tbl.Types[i] != want {
			t.Errorf("col %s type = %v, want %v", tbl.Cols[i], tbl.Types[i], want)
		}
	}
	wantKinds := []ColKind{ColInt, ColFloat, ColStr, ColStr}
	for i, want := range wantKinds {
		if rep.Columns[i].Kind != want {
			t.Errorf("col %s kind = %v, want %v", tbl.Cols[i], rep.Columns[i].Kind, want)
		}
	}
	if tbl.Rows[0][1].Num != 1.5 || tbl.Rows[1][0].Num != 2 {
		t.Errorf("numeric cells mis-parsed: %v", tbl.Rows)
	}
}

// A single non-numeric cell flips the whole column to str, and the numeric
// cells keep their literal text.
func TestMixedColumnBecomesStr(t *testing.T) {
	tbl, rep := readCSV(t, "a\n1\n2\noops\n", nil)
	if tbl.Types[0] != engine.TStr || rep.Columns[0].Kind != ColStr {
		t.Fatalf("mixed column = %v/%v, want str", tbl.Types[0], rep.Columns[0].Kind)
	}
	if tbl.Rows[0][0].Str != "1" {
		t.Errorf("numeric text = %q, want \"1\"", tbl.Rows[0][0].Str)
	}
}

func TestEmptyFieldsAreNull(t *testing.T) {
	tbl, rep := readCSV(t, "a,b\n1,\n,x\n", nil)
	if !tbl.Rows[0][1].Null || !tbl.Rows[1][0].Null {
		t.Fatalf("empty fields not NULL: %v", tbl.Rows)
	}
	// nulls don't demote the column type
	if tbl.Types[0] != engine.TNum {
		t.Errorf("col a with nulls = %v, want num", tbl.Types[0])
	}
	if rep.Columns[0].Nulls != 1 || rep.Columns[1].Nulls != 1 {
		t.Errorf("null counts = %+v, want 1 each", rep.Columns)
	}
}

func TestAllNullColumnDefaultsToStr(t *testing.T) {
	tbl, _ := readCSV(t, "a,b\n,1\n,2\n", nil)
	if tbl.Types[0] != engine.TStr {
		t.Errorf("all-null column = %v, want str", tbl.Types[0])
	}
}

func TestQuotedSeparatorsAndQuotes(t *testing.T) {
	tbl, _ := readCSV(t, "name,score\n\"Doe, Jane\",5\n\"say \"\"hi\"\"\",6\n", nil)
	if got := tbl.Rows[0][0].Str; got != "Doe, Jane" {
		t.Errorf("quoted comma field = %q", got)
	}
	if got := tbl.Rows[1][0].Str; got != `say "hi"` {
		t.Errorf("escaped quote field = %q", got)
	}
	if tbl.Types[1] != engine.TNum {
		t.Errorf("score type = %v, want num", tbl.Types[1])
	}
}

// Quoted numeric text is still numeric — CSV quoting is transport, not
// typing (unlike JSON, where strings stay strings).
func TestQuotedNumbersStayNumeric(t *testing.T) {
	tbl, _ := readCSV(t, "a\n\"1\"\n\"2\"\n", nil)
	if tbl.Types[0] != engine.TNum {
		t.Errorf("quoted digits column = %v, want num", tbl.Types[0])
	}
}

func TestNaNInfUnderscoreAreStrings(t *testing.T) {
	tbl, _ := readCSV(t, "a,b,c\nNaN,Inf,1_000\n", nil)
	for i := range tbl.Cols {
		if tbl.Types[i] != engine.TStr {
			t.Errorf("col %s = %v, want str", tbl.Cols[i], tbl.Types[i])
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, _, err := ReadTable(strings.NewReader("a,,c\n1,2,3\n"), "t", FormatCSV, nil); err == nil {
		t.Error("empty column name accepted")
	}
	if _, _, err := ReadTable(strings.NewReader("a,A\n1,2\n"), "t", FormatCSV, nil); err == nil {
		t.Error("case-insensitive duplicate column accepted")
	}
	if _, _, err := ReadTable(strings.NewReader(""), "t", FormatCSV, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRaggedRowIsPositionedError(t *testing.T) {
	_, _, err := ReadTable(strings.NewReader("a,b\n1,2\n3\n"), "t", FormatCSV, nil)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("ragged row error = %v, want line 3 position", err)
	}
}

func TestGzipTransparent(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte("a,b\n1,x\n2,y\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	tbl, _, err := ReadTable(&buf, "t", FormatCSV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Types[0] != engine.TNum || tbl.Types[1] != engine.TStr {
		t.Errorf("gzip round trip: %+v", tbl)
	}
}

func TestTSV(t *testing.T) {
	tbl, _, err := ReadTable(strings.NewReader("a\tb\n1\thello world\n"), "t", FormatTSV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1].Str != "hello world" {
		t.Errorf("tsv field = %q", tbl.Rows[0][1].Str)
	}
}

func TestNDJSON(t *testing.T) {
	src := `{"a": 1, "b": "x"}
{"a": 2.5, "c": true}
{"b": "7", "a": null}
`
	tbl, rep, err := ReadTable(strings.NewReader(src), "t", FormatNDJSON, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(tbl.Cols, ","); got != "a,b,c" {
		t.Fatalf("columns = %s, want first-appearance order a,b,c", got)
	}
	// a: int then float then null -> float/num
	if rep.Columns[0].Kind != ColFloat || tbl.Types[0] != engine.TNum {
		t.Errorf("a = %v/%v, want float/num", rep.Columns[0].Kind, tbl.Types[0])
	}
	// b: JSON strings stay strings even when numeric-looking
	if tbl.Types[1] != engine.TStr || tbl.Rows[2][1].Str != "7" {
		t.Errorf("b = %v %v, want str \"7\"", tbl.Types[1], tbl.Rows[2][1])
	}
	// c: bool -> 0/1 num; missing in rows 1 and 3 -> NULL (backfilled)
	if tbl.Types[2] != engine.TNum || !tbl.Rows[0][2].Null || tbl.Rows[1][2].Num != 1 || !tbl.Rows[2][2].Null {
		t.Errorf("c column wrong: %v", tbl.Rows)
	}
	if !tbl.Rows[2][0].Null {
		t.Errorf("explicit JSON null not NULL")
	}
}

func TestNDJSONNestedRejectedWithLine(t *testing.T) {
	_, _, err := ReadTable(strings.NewReader("{\"a\": 1}\n{\"a\": {\"b\": 2}}\n"), "t", FormatNDJSON, nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("nested object error = %v, want line 2", err)
	}
}

// An empty JSON key would become a column no SQL statement can reference;
// reject it like the CSV header validation does.
func TestNDJSONEmptyKeyRejected(t *testing.T) {
	_, _, err := ReadTable(strings.NewReader("{\"a\": 1}\n{\"\": 2}\n"), "t", FormatNDJSON, nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("empty key error = %v, want line 2 rejection", err)
	}
}

// Trailing data after the object on a line is row loss, not noise.
func TestNDJSONTrailingDataRejected(t *testing.T) {
	for _, src := range []string{
		"{\"a\": 1} {\"a\": 99}\n",
		"{\"a\": 1}{\"a\": 99}\n",
		"{\"a\": 1} x\n",
	} {
		_, _, err := ReadTable(strings.NewReader(src), "t", FormatNDJSON, nil)
		if err == nil || !strings.Contains(err.Error(), "trailing data") {
			t.Errorf("trailing data accepted for %q: err = %v", src, err)
		}
	}
	// trailing whitespace is fine
	if _, _, err := ReadTable(strings.NewReader("{\"a\": 1}  \n"), "t", FormatNDJSON, nil); err != nil {
		t.Errorf("trailing whitespace rejected: %v", err)
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList("a.csv, b.csv,,c.csv,")
	want := []string{"a.csv", "b.csv", "c.csv"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitList = %v, want %v", got, want)
	}
	if SplitList("") != nil {
		t.Errorf("SplitList(\"\") = %v, want nil", SplitList(""))
	}
}

func TestManifestTypeOverrides(t *testing.T) {
	tm := &TableManifest{Types: map[string]string{"zip": "str", "id": "num"}}
	tbl, rep, err := ReadTable(strings.NewReader("zip,id\n02139,1\n10001,2\n"), "t", FormatCSV, tm)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Types[0] != engine.TStr || tbl.Rows[0][0].Str != "02139" {
		t.Errorf("zip override: %v %v", tbl.Types[0], tbl.Rows[0][0])
	}
	if tbl.Types[1] != engine.TNum {
		t.Errorf("id override: %v", tbl.Types[1])
	}
	if !rep.Columns[0].Overridden || !rep.Columns[1].Overridden {
		t.Errorf("report overrides = %+v", rep.Columns)
	}
	// num override over non-numeric data is an error with a position
	_, _, err = ReadTable(strings.NewReader("a\nx\n"), "t", FormatCSV,
		&TableManifest{Types: map[string]string{"a": "num"}})
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Errorf("bad num override error = %v, want row position", err)
	}
	// the override must not bypass classify's NaN/Inf/underscore rejection:
	// a NaN "number" would compare equal to everything in the engine
	for _, bad := range []string{"NaN", "Inf", "1_000"} {
		_, _, err = ReadTable(strings.NewReader("a\n1\n"+bad+"\n"), "t", FormatCSV,
			&TableManifest{Types: map[string]string{"a": "num"}})
		if err == nil || !strings.Contains(err.Error(), "row 2") {
			t.Errorf("num override accepted %q: err = %v, want row 2 rejection", bad, err)
		}
	}
	// a JSON digit string forced to num is the override's designed use
	tbl, _, err = ReadTable(strings.NewReader("{\"a\": \"5\"}\n"), "t", FormatNDJSON,
		&TableManifest{Types: map[string]string{"a": "num"}})
	if err != nil || tbl.Types[0] != engine.TNum || tbl.Rows[0][0].Num != 5 {
		t.Errorf("JSON string->num override: %v %v", err, tbl)
	}
}

// A manifest entry that matches no data file must fail loudly: silently
// dropping its keys and type overrides would corrupt the schema untraced.
func TestUnmatchedManifestEntryFails(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "cars.csv", "id,hp\n1,100\n")
	m := &Manifest{Tables: []TableManifest{
		{File: "cars.csv", Keys: []string{"id"}},
		{File: "cars.cvs", Types: map[string]string{"hp": "str"}}, // typo
	}}
	_, err := Load([]string{data}, m)
	if err == nil || !strings.Contains(err.Error(), "cars.cvs") {
		t.Errorf("unmatched manifest entry error = %v, want mention of cars.cvs", err)
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWithManifest(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "cars.csv", "id,hp\n1,100\n2,150\n")
	manifest := writeFile(t, dir, "manifest.json",
		`{"now": "2021-06-01", "tables": [{"file": "cars.csv", "name": "Cars", "keys": ["id"]}]}`)
	res, err := LoadFiles([]string{data}, manifest)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Now != "2021-06-01" {
		t.Errorf("Now = %q", res.DB.Now)
	}
	tbl, ok := res.DB.Table("Cars")
	if !ok || tbl.Name != "Cars" || len(tbl.Rows) != 2 {
		t.Fatalf("Cars table missing or wrong: %v %v", ok, tbl)
	}
	if got := res.Keys["Cars"]; len(got) != 1 || got[0] != "id" {
		t.Errorf("keys = %v", res.Keys)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "t.csv", "a\n1\n")
	if _, err := Load([]string{data, data}, nil); err == nil || !strings.Contains(err.Error(), "duplicate table") {
		t.Errorf("duplicate table error = %v", err)
	}
	if _, err := Load([]string{writeFile(t, dir, "t.xls", "x")}, nil); err == nil || !strings.Contains(err.Error(), "unrecognized extension") {
		t.Errorf("bad extension error = %v", err)
	}
	m := &Manifest{Tables: []TableManifest{{File: "t.csv", Keys: []string{"nope"}}}}
	if _, err := Load([]string{data}, m); err == nil || !strings.Contains(err.Error(), "key column") {
		t.Errorf("bad key error = %v", err)
	}
	if _, err := Load(nil, nil); err == nil {
		t.Error("empty load accepted")
	}
}

func TestReadManifestRejectsTypos(t *testing.T) {
	dir := t.TempDir()
	bad := writeFile(t, dir, "m.json", `{"tables": [{"file": "x.csv", "key": ["id"]}]}`)
	if _, err := ReadManifest(bad); err == nil {
		t.Error("unknown field accepted")
	}
	bad2 := writeFile(t, dir, "m2.json", `{"tables": [{"file": "x.csv", "types": {"a": "int"}}]}`)
	if _, err := ReadManifest(bad2); err == nil || !strings.Contains(err.Error(), `"num" or "str"`) {
		t.Errorf("bad type value error = %v", err)
	}
}

func TestQueryLogPerLine(t *testing.T) {
	src := `# cars exploration
SELECT hp, mpg FROM Cars

-- trailing comment line
SELECT hp FROM Cars WHERE hp > 100
`
	stmts, err := ParseLog(strings.NewReader(src), "log.sql")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("got %d statements, want 2", len(stmts))
	}
	if stmts[0].Line != 2 || stmts[1].Line != 5 {
		t.Errorf("lines = %d, %d, want 2, 5", stmts[0].Line, stmts[1].Line)
	}
}

func TestQueryLogSemicolons(t *testing.T) {
	src := `SELECT hp
FROM Cars; # first

SELECT mpg FROM Cars
WHERE origin = 'a;b'; SELECT 1 FROM Cars`
	stmts, err := ParseLog(strings.NewReader(src), "log.sql")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements, want 3: %+v", len(stmts), stmts)
	}
	if stmts[0].Line != 1 || stmts[1].Line != 4 || stmts[2].Line != 5 {
		t.Errorf("lines = %d,%d,%d, want 1,4,5", stmts[0].Line, stmts[1].Line, stmts[2].Line)
	}
	if !strings.Contains(stmts[1].SQL, "a;b") {
		t.Errorf("semicolon in literal split: %q", stmts[1].SQL)
	}
}

func TestQueryLogParseErrorsAnchored(t *testing.T) {
	src := "SELECT hp FROM Cars\nSELECT FROM\nSELECT mpg FROM Cars\nNOT SQL AT ALL\n"
	_, err := ParseLog(strings.NewReader(src), "bad.sql")
	if err == nil {
		t.Fatal("malformed log accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad.sql:2") || !strings.Contains(msg, "bad.sql:4") {
		t.Errorf("error = %v, want both bad.sql:2 and bad.sql:4", err)
	}
}

func TestQueryLogEmpty(t *testing.T) {
	if _, err := ParseLog(strings.NewReader("# nothing\n\n"), "e.sql"); err == nil {
		t.Error("comment-only log accepted")
	}
}

func TestValidateUnknownTable(t *testing.T) {
	db := engine.NewDB(DefaultNow)
	db.Add(&engine.Table{Name: "Cars", Cols: []string{"hp"}, Types: []engine.ColType{engine.TNum}})
	stmts, err := ParseLog(strings.NewReader("SELECT hp FROM Cars\nSELECT x FROM Trucks\n"), "log.sql")
	if err != nil {
		t.Fatal(err)
	}
	verr := Validate(stmts, db, "log.sql")
	if verr == nil {
		t.Fatal("unknown table accepted")
	}
	if !strings.Contains(verr.Error(), "log.sql:2") || !strings.Contains(verr.Error(), `"Trucks"`) || !strings.Contains(verr.Error(), "Cars") {
		t.Errorf("validate error = %v, want position, bad name, and available tables", verr)
	}
	if err := Validate(stmts[:1], db, "log.sql"); err != nil {
		t.Errorf("valid statement rejected: %v", err)
	}
}

// Validate must see the table ref inside a JOIN step — a join node wraps its
// ref one level down from a plain FROM entry.
func TestValidateOuterJoinLog(t *testing.T) {
	db := engine.NewDB(DefaultNow)
	db.Add(&engine.Table{Name: "Cars", Cols: []string{"hp", "origin"}, Types: []engine.ColType{engine.TNum, engine.TStr}})
	db.Add(&engine.Table{Name: "Makers", Cols: []string{"origin", "region"}, Types: []engine.ColType{engine.TStr, engine.TStr}})
	src := "SELECT c.hp, m.region FROM Cars AS c LEFT JOIN Makers AS m ON c.origin = m.origin\n" +
		"SELECT c.hp FROM Cars AS c FULL OUTER JOIN Wheels AS w ON c.hp = w.hp\n"
	stmts, err := ParseLog(strings.NewReader(src), "log.sql")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(stmts[:1], db, "log.sql"); err != nil {
		t.Errorf("valid outer-join statement rejected: %v", err)
	}
	verr := Validate(stmts, db, "log.sql")
	if verr == nil {
		t.Fatal("unknown join table accepted")
	}
	if !strings.Contains(verr.Error(), "log.sql:2") || !strings.Contains(verr.Error(), `"Wheels"`) {
		t.Errorf("validate error = %v, want position and bad join table name", verr)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	src := &engine.Table{
		Name:  "t",
		Cols:  []string{"a", "b"},
		Types: []engine.ColType{engine.TNum, engine.TStr},
		Rows: [][]engine.Value{
			{engine.NumVal(1.25), engine.StrVal("x,y")},
			{engine.NullVal(), engine.StrVal(`quote "q"`)},
			{engine.NumVal(-3e9), engine.NullVal()},
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTable(&buf, "t", FormatCSV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(src.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(src.Rows))
	}
	for ri := range src.Rows {
		for ci := range src.Cols {
			a, b := src.Rows[ri][ci], got.Rows[ri][ci]
			if a.Null != b.Null || (!a.Null && engine.Compare(a, b) != 0) || a.IsStr != b.IsStr {
				t.Errorf("cell (%d,%d): %v -> %v", ri, ci, a, b)
			}
		}
	}
}

func TestTableStem(t *testing.T) {
	for in, want := range map[string]string{
		"/data/cars.csv": "cars",
		"cars.csv.gz":    "cars",
		"my-data.ndjson": "my_data",
		"2020 sales.tsv": "t2020_sales",
		"covid.jsonl.gz": "covid",
	} {
		if got := TableStem(in); got != want {
			t.Errorf("TableStem(%q) = %q, want %q", in, got, want)
		}
	}
}
