package ingest_test

// Native fuzz target for the CSV ingestion path. Under `go test` only the
// seed corpus runs (fast, CI-safe); explore further with
// `go test -fuzz FuzzIngestCSV ./internal/ingest`.

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"pi2/internal/engine"
	"pi2/internal/ingest"
)

func gzipped(s string) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(s))
	zw.Close()
	return buf.Bytes()
}

// FuzzIngestCSV asserts ingestion never panics, and that any accepted input
// yields a structurally valid table with a sound inferred schema.
func FuzzIngestCSV(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte("a,b,c\n1,2.5,x\n,,\n3,4,y\n"),
		[]byte("id,hp,mpg,disp,origin\n1,114,29,193,USA\n2,53,41,80,Japan\n"),
		[]byte("name,score\n\"Doe, Jane\",5\n\"say \"\"hi\"\"\",6\n"),
		[]byte("a\n\"multi\nline\"\n"),
		[]byte("a,b\n1,2\n3\n"),          // ragged
		[]byte("a,a\n1,2\n"),             // duplicate column
		[]byte("a,\n1,2\n"),              // empty column name
		[]byte(""),                       // empty input
		[]byte("NaN,Inf\nNaN,1_000\n"),   // numeric-parser edge cases
		[]byte("a\n-1.5e300\n0.0\n-0\n"), // float extremes
		gzipped("a,b\n1,x\n2,y\n"),       // transparent gzip
		{0x1f, 0x8b, 0xff, 0xff},         // gzip magic, corrupt stream
		[]byte("\"unterminated\n1\n"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, rep, err := ingest.ReadTable(bytes.NewReader(data), "fuzz", ingest.FormatCSV, nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(tbl.Cols) == 0 {
			t.Fatal("accepted table has no columns")
		}
		if len(tbl.Types) != len(tbl.Cols) || len(rep.Columns) != len(tbl.Cols) {
			t.Fatalf("schema shape mismatch: %d cols, %d types, %d report columns",
				len(tbl.Cols), len(tbl.Types), len(rep.Columns))
		}
		seen := map[string]bool{}
		for i, c := range tbl.Cols {
			if strings.TrimSpace(c) == "" {
				t.Fatalf("column %d has blank name", i)
			}
			if seen[strings.ToLower(c)] {
				t.Fatalf("duplicate column name %q", c)
			}
			seen[strings.ToLower(c)] = true
			if rep.Columns[i].Kind.EngineType() != tbl.Types[i] {
				t.Fatalf("column %q: report kind %v disagrees with table type %v",
					c, rep.Columns[i].Kind, tbl.Types[i])
			}
		}
		if rep.Rows != len(tbl.Rows) {
			t.Fatalf("report rows %d != table rows %d", rep.Rows, len(tbl.Rows))
		}
		for ri, row := range tbl.Rows {
			if len(row) != len(tbl.Cols) {
				t.Fatalf("row %d has %d cells, want %d", ri, len(row), len(tbl.Cols))
			}
			for ci, v := range row {
				if v.Null {
					continue
				}
				if tbl.Types[ci] == engine.TNum && v.IsStr {
					t.Fatalf("row %d col %q: string value in num column", ri, tbl.Cols[ci])
				}
				if tbl.Types[ci] == engine.TStr && !v.IsStr {
					t.Fatalf("row %d col %q: numeric value in str column", ri, tbl.Cols[ci])
				}
			}
		}
		// Re-exporting and re-ingesting an accepted table must succeed and
		// preserve the schema (cell text may legally change only for \r\n
		// normalization inside quoted fields).
		var buf bytes.Buffer
		if err := ingest.WriteCSV(&buf, tbl); err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		tbl2, _, err := ingest.ReadTable(&buf, "fuzz", ingest.FormatCSV, nil)
		if err != nil {
			t.Fatalf("re-ingest failed: %v", err)
		}
		if len(tbl2.Rows) != len(tbl.Rows) || len(tbl2.Cols) != len(tbl.Cols) {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				len(tbl.Rows), len(tbl.Cols), len(tbl2.Rows), len(tbl2.Cols))
		}
		for i, typ := range tbl.Types {
			if tbl2.Types[i] != typ {
				t.Fatalf("round trip changed column %q type %v -> %v", tbl.Cols[i], typ, tbl2.Types[i])
			}
		}
	})
}
