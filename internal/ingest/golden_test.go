package ingest_test

// Golden round-trip proofs: exporting the built-in synthetic datasets to
// CSV and ingesting them back must reproduce the exact same tables — and
// therefore the exact same generated interface, byte for byte. This is the
// end-to-end guarantee that the file-ingestion path is a faithful stand-in
// for an in-process database.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pi2"
	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/iface"
	"pi2/internal/ingest"
	"pi2/internal/workload"
)

// exportAll writes every built-in table as <Name>.csv under dir and returns
// the paths plus a manifest carrying the built-in key declarations.
func exportAll(t *testing.T, dir string) ([]string, *ingest.Manifest) {
	t.Helper()
	db := dataset.NewDB()
	m := &ingest.Manifest{Now: db.Now}
	var paths []string
	for _, tbl := range db.Tables {
		path := filepath.Join(dir, tbl.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ingest.WriteCSV(f, tbl); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
		tm := ingest.TableManifest{File: tbl.Name + ".csv", Name: tbl.Name}
		for kt, keys := range dataset.Keys() {
			if strings.EqualFold(kt, tbl.Name) {
				tm.Keys = keys
			}
		}
		m.Tables = append(m.Tables, tm)
	}
	return paths, m
}

// Ingesting the CSV export of every built-in table must reproduce the
// built-in tables exactly: names, columns, types, and every value.
func TestGoldenTablesRoundTrip(t *testing.T) {
	paths, m := exportAll(t, t.TempDir())
	res, err := ingest.Load(paths, m)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.NewDB()
	if len(res.DB.Tables) != len(want.Tables) {
		t.Fatalf("ingested %d tables, want %d", len(res.DB.Tables), len(want.Tables))
	}
	for lname, wt := range want.Tables {
		gt, ok := res.DB.Tables[lname]
		if !ok {
			t.Errorf("table %s missing after round trip", wt.Name)
			continue
		}
		if gt.Name != wt.Name {
			t.Errorf("table name %q, want %q", gt.Name, wt.Name)
		}
		if !reflect.DeepEqual(gt.Cols, wt.Cols) {
			t.Errorf("%s columns %v, want %v", wt.Name, gt.Cols, wt.Cols)
		}
		if !reflect.DeepEqual(gt.Types, wt.Types) {
			t.Errorf("%s types %v, want %v", wt.Name, gt.Types, wt.Types)
		}
		if !reflect.DeepEqual(gt.Rows, wt.Rows) {
			t.Errorf("%s rows differ after round trip", wt.Name)
		}
	}
	if res.DB.Now != want.Now {
		t.Errorf("Now = %q, want %q", res.DB.Now, want.Now)
	}
	// key declarations are equivalent up to table-name case (catalog.Build
	// normalizes to lowercase)
	if !reflect.DeepEqual(lowerKeys(res.Keys), lowerKeys(dataset.Keys())) {
		t.Errorf("keys = %v, want %v", res.Keys, dataset.Keys())
	}
}

func lowerKeys(m map[string][]string) map[string][]string {
	out := map[string][]string{}
	for k, v := range m {
		out[strings.ToLower(k)] = v
	}
	return out
}

// The full pipeline on ingested data must produce a byte-identical
// interface: same rendered text, same JSON spec.
func TestGoldenInterfaceRoundTrip(t *testing.T) {
	paths, m := exportAll(t, t.TempDir())
	res, err := ingest.Load(paths, m)
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := workload.ByName("Explore")

	builtin := dataset.NewDB()
	wantRes, err := core.Generate(wl.Queries, builtin, catalog.Build(builtin, dataset.Keys()), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := core.Generate(wl.Queries, res.DB, catalog.Build(res.DB, res.Keys), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	wantText, gotText := iface.RenderText(wantRes.Interface), iface.RenderText(gotRes.Interface)
	if wantText != gotText {
		t.Errorf("rendered interface differs:\n--- built-in ---\n%s\n--- ingested ---\n%s", wantText, gotText)
	}
	wantJSON, err := iface.MarshalJSON(wantRes.Interface)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := iface.MarshalJSON(gotRes.Interface)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("JSON spec differs:\n--- built-in ---\n%s\n--- ingested ---\n%s", wantJSON, gotJSON)
	}
}

// The committed example exports must stay in lockstep with internal/dataset
// (regenerate with `go run ./examples/data/export`).
func TestExampleExportsInSync(t *testing.T) {
	for _, tc := range []struct {
		path  string
		table *engine.Table
	}{
		{"../../examples/data/cars.csv", dataset.Cars()},
		{"../../examples/data/covid.csv", dataset.Covid()},
	} {
		var want bytes.Buffer
		if err := ingest.WriteCSV(&want, tc.table); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("%s is stale; regenerate with `go run ./examples/data/export`", tc.path)
		}
	}
}

// GeneratorFromFiles on the committed penguins example — datasets that do
// not exist in internal/dataset, with a LEFT JOIN across them in the log —
// must generate a working interface.
func TestGeneratorFromFilesPenguins(t *testing.T) {
	gen, queries, err := pi2.GeneratorFromFiles(
		[]string{"../../examples/data/penguins.csv", "../../examples/data/islands.csv"},
		"../../examples/data/penguins.sql",
		"../../examples/data/penguins.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 3 {
		t.Fatalf("got %d queries, want 3", len(queries))
	}
	if _, ok := gen.DB.Table("penguins"); !ok {
		t.Fatal("penguins table missing")
	}
	if _, ok := gen.DB.Table("islands"); !ok {
		t.Fatal("islands table missing")
	}
	res, err := gen.Generate(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Interface.Vis) == 0 {
		t.Fatal("no charts generated for penguins")
	}
	if res.Interface.InteractionCount() == 0 {
		t.Fatal("no interactions generated for penguins")
	}
}
