package ingest

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pi2/internal/engine"
)

// This file is the live half of ingestion: instead of materializing a file
// once, a Tailer follows it as an external writer appends records, feeding
// each complete record into engine.DB.Append. The invariant throughout is
// that a partial final record is never ingested: the consumed offset only
// ever advances past a record boundary (a newline outside any CSV quoted
// field), so a torn write — half a line flushed by the producer — stays in
// the file until its terminator arrives, and a restart can resume from the
// exact offset without re-reading or double-ingesting anything.

// completeLen reports how many leading bytes of data form whole records:
// everything up to and including the last record-terminating newline. For
// NDJSON every newline terminates a record; for CSV/TSV a newline inside an
// RFC 4180 quoted field is payload, so the scan tracks quote parity (the ""
// escape toggles twice, landing back inside the quote, which is exactly
// right). data must start at a record boundary.
func completeLen(data []byte, format Format) int {
	if format == FormatNDJSON {
		return bytes.LastIndexByte(data, '\n') + 1
	}
	inQuotes := false
	last := 0
	for i := 0; i < len(data); i++ {
		switch data[i] {
		case '"':
			inQuotes = !inQuotes
		case '\n':
			if !inQuotes {
				last = i + 1
			}
		}
	}
	return last
}

// isGzip reports whether data leads with the gzip magic bytes. Compressed
// files cannot be tailed — a byte offset into the compressed stream is
// meaningless for resume — so the follow paths refuse them up front rather
// than ingesting garbage.
func isGzip(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// fieldValue converts one raw CSV/TSV field to a typed engine value for an
// existing column. Empty fields are NULL (matching readSeparated); a num
// column rejects anything classify would not call numeric, so NaN, Inf and
// underscore literals cannot sneak into a live table that batch ingestion
// would have refused.
func fieldValue(field string, typ engine.ColType, col string) (engine.Value, error) {
	if field == "" {
		return engine.NullVal(), nil
	}
	if typ == engine.TNum {
		if classify(field) == ColStr {
			return engine.Value{}, fmt.Errorf("column %q: %q is not numeric", col, field)
		}
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return engine.Value{}, fmt.Errorf("column %q: %q is not numeric", col, field)
		}
		return engine.NumVal(f), nil
	}
	return engine.StrVal(field), nil
}

// decodeCSVRows parses whole CSV/TSV records (no header) against an existing
// table's schema. Every record must have exactly one field per column.
func decodeCSVRows(chunk []byte, comma rune, t *engine.Table) ([][]engine.Value, error) {
	cr := csv.NewReader(bytes.NewReader(chunk))
	cr.Comma = comma
	cr.FieldsPerRecord = len(t.Cols)
	var rows [][]engine.Value
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		row := make([]engine.Value, len(rec))
		for i, field := range rec {
			v, err := fieldValue(field, t.Types[i], t.Cols[i])
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}

// DecodeRows parses newline-delimited JSON objects against an existing
// table's schema: keys address columns case-insensitively, keys missing
// from a line become NULL, unknown keys are an error (a live writer using a
// wrong field name should hear about it, not silently widen nothing), and
// values must fit the column's type — numbers and booleans for num columns,
// any scalar's text for str columns. This is the decoder behind both the
// /ingest endpoint and NDJSON tailing, where the schema is fixed by the
// already-served table rather than inferred from the payload.
func DecodeRows(r io.Reader, t *engine.Table) ([][]engine.Value, error) {
	colIdx := map[string]int{}
	for i, c := range t.Cols {
		colIdx[strings.ToLower(c)] = i
	}
	var rows [][]engine.Value
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		row := make([]engine.Value, len(t.Cols))
		for i := range row {
			row[i] = engine.NullVal()
		}
		var cellErr error
		if err := decodeObject(data, func(key string, c cell) {
			if cellErr != nil {
				return
			}
			idx, ok := colIdx[strings.ToLower(key)]
			if !ok {
				cellErr = fmt.Errorf("unknown column %q (table %q has: %s)",
					key, t.Name, strings.Join(t.Cols, ", "))
				return
			}
			if c.null {
				return
			}
			if t.Types[idx] == engine.TNum {
				if c.kind == ColStr {
					cellErr = fmt.Errorf("column %q: %q is not numeric", t.Cols[idx], c.text)
					return
				}
				f, err := strconv.ParseFloat(c.text, 64)
				if err != nil {
					cellErr = fmt.Errorf("column %q: %q is not numeric", t.Cols[idx], c.text)
					return
				}
				row[idx] = engine.NumVal(f)
				return
			}
			row[idx] = engine.StrVal(c.text)
		}); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if cellErr != nil {
			return nil, fmt.Errorf("line %d: %w", line, cellErr)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// LoadFollow ingests the complete-record prefix of a growing data file and
// reports the byte offset where tailing should resume. Unlike LoadTable it
// tolerates a torn final record — the producer may be mid-write — by simply
// leaving it for the first Poll. Gzip files are refused (no resumable
// offsets into a compressed stream).
func LoadFollow(path string, tm *TableManifest) (*engine.Table, *TableReport, int64, error) {
	format, ok := DetectFormat(path)
	if !ok {
		return nil, nil, 0, fmt.Errorf("ingest: %s: unrecognized extension (want .csv, .tsv, .json/.ndjson/.jsonl)", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ingest: %w", err)
	}
	if isGzip(data) {
		return nil, nil, 0, fmt.Errorf("ingest: %s: gzip files cannot be tailed (no resumable offset)", path)
	}
	n := completeLen(data, format)
	if n == 0 {
		return nil, nil, 0, fmt.Errorf("ingest: %s: no complete records yet (want a newline-terminated header)", path)
	}
	name := TableStem(path)
	if tm != nil && tm.Name != "" {
		name = tm.Name
	}
	if name == "" {
		return nil, nil, 0, fmt.Errorf("ingest: %s: cannot derive a table name; declare one in the manifest", path)
	}
	tbl, rep, err := ReadTable(bytes.NewReader(data[:n]), name, format, tm)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("ingest: %s: %w", path, err)
	}
	rep.File = path
	return tbl, rep, int64(n), nil
}

// Tailer incrementally ingests one growing file into one live table. It is
// a single-goroutine poller — call Poll from one goroutine at a time — and
// composes with the engine's single-logical-writer contract: run one Tailer
// per table, or serialize tailers with other writers externally.
type Tailer struct {
	db     *engine.DB
	table  string
	path   string
	format Format
	pos    int64
}

// NewTailer follows path into the named table starting at offset (typically
// the offset LoadFollow returned, or a persisted Offset from a previous
// run). The table must already exist in db with the schema the file's
// records conform to.
func NewTailer(db *engine.DB, table, path string, format Format, offset int64) *Tailer {
	return &Tailer{db: db, table: table, path: path, format: format, pos: offset}
}

// Offset reports the byte offset of the first unconsumed byte — always a
// record boundary, so persisting it across restarts resumes exactly.
func (tl *Tailer) Offset() int64 { return tl.pos }

// Poll ingests every record appended since the last call, returning how
// many rows it wrote. A partial final record is left in place for the next
// poll; a file that shrank below the consumed offset is an error (the
// producer truncated or rotated it — resuming would ingest garbage).
func (tl *Tailer) Poll() (int, error) {
	f, err := os.Open(tl.path)
	if err != nil {
		return 0, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("ingest: %w", err)
	}
	if fi.Size() < tl.pos {
		return 0, fmt.Errorf("ingest: %s: file shrank below consumed offset %d (truncated or rotated?)", tl.path, tl.pos)
	}
	if fi.Size() == tl.pos {
		return 0, nil
	}
	if _, err := f.Seek(tl.pos, io.SeekStart); err != nil {
		return 0, fmt.Errorf("ingest: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("ingest: %w", err)
	}
	if tl.pos == 0 && isGzip(data) {
		return 0, fmt.Errorf("ingest: %s: gzip files cannot be tailed (no resumable offset)", tl.path)
	}
	n := completeLen(data, tl.format)
	if n == 0 {
		return 0, nil // only a torn record so far; wait for its terminator
	}
	tbl, ok := tl.db.Table(tl.table)
	if !ok {
		return 0, fmt.Errorf("ingest: table %q no longer in database", tl.table)
	}
	var rows [][]engine.Value
	switch tl.format {
	case FormatCSV:
		rows, err = decodeCSVRows(data[:n], ',', tbl)
	case FormatTSV:
		rows, err = decodeCSVRows(data[:n], '\t', tbl)
	default:
		rows, err = DecodeRows(bytes.NewReader(data[:n]), tbl)
	}
	if err != nil {
		return 0, fmt.Errorf("ingest: %s: %w", tl.path, err)
	}
	if len(rows) > 0 {
		if err := tl.db.Append(tl.table, rows); err != nil {
			return 0, err
		}
	}
	tl.pos += int64(n)
	return len(rows), nil
}
