package ingest

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pi2/internal/engine"
)

// ColKind is the inferred kind of one column. The engine stores both int
// and float columns as TNum (float64); the int/float distinction is kept in
// the ingestion report because it is what users check when a column they
// meant to be integral picks up a stray decimal.
type ColKind uint8

const (
	// ColInt means every non-null cell is an integer literal.
	ColInt ColKind = iota
	// ColFloat means every non-null cell is numeric, at least one non-integral.
	ColFloat
	// ColStr means at least one non-null cell is not numeric (or the column
	// came from JSON strings, which are never reinterpreted as numbers).
	ColStr
)

func (k ColKind) String() string {
	switch k {
	case ColInt:
		return "int"
	case ColFloat:
		return "float"
	default:
		return "str"
	}
}

// EngineType maps the inferred kind to the engine's storage type.
func (k ColKind) EngineType() engine.ColType {
	if k == ColStr {
		return engine.TStr
	}
	return engine.TNum
}

// TableReport summarizes one ingested table.
type TableReport struct {
	Table   string
	File    string
	Rows    int
	Columns []ColReport
}

// ColReport is the inference verdict for one column.
type ColReport struct {
	Name       string
	Kind       ColKind
	Nulls      int
	Overridden bool // manifest type override applied
}

// String renders e.g. "cars(id int, hp int, origin str) 300 rows".
func (r *TableReport) String() string {
	cols := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = c.Name + " " + c.Kind.String()
		if c.Overridden {
			cols[i] += "*"
		}
	}
	return fmt.Sprintf("%s(%s) %d rows", r.Table, strings.Join(cols, ", "), r.Rows)
}

// cell is one raw parsed cell: its canonical text plus the kind this cell
// alone admits. A JSON string cell is pinned to ColStr even when its text
// is numeric; CSV cells classify by parsing.
type cell struct {
	null bool
	text string
	kind ColKind
}

func classify(text string) ColKind {
	// Go's parsers accept underscores, NaN and infinities; none of those
	// should silently become numbers in somebody's dataset.
	if strings.ContainsRune(text, '_') {
		return ColStr
	}
	if _, err := strconv.ParseInt(text, 10, 64); err == nil {
		return ColInt
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return ColFloat
	}
	return ColStr
}

// rawTable is the single-pass accumulation: header, cells, and per-column
// running inference state (the join of the cell kinds seen so far).
type rawTable struct {
	cols  []string
	kinds []ColKind // running join; ColInt is the bottom element
	nulls []int
	seen  []int // non-null cells per column
	rows  [][]cell
}

func newRawTable(cols []string) (*rawTable, error) {
	lower := map[string]int{}
	for i, c := range cols {
		c = strings.TrimSpace(c)
		if c == "" {
			return nil, fmt.Errorf("column %d has an empty name", i+1)
		}
		if j, dup := lower[strings.ToLower(c)]; dup {
			return nil, fmt.Errorf("duplicate column name %q (columns %d and %d)", c, j+1, i+1)
		}
		lower[strings.ToLower(c)] = i
		cols[i] = c
	}
	return &rawTable{
		cols:  cols,
		kinds: make([]ColKind, len(cols)),
		nulls: make([]int, len(cols)),
		seen:  make([]int, len(cols)),
	}, nil
}

func (rt *rawTable) add(row []cell) {
	for i, c := range row {
		if c.null {
			rt.nulls[i]++
			continue
		}
		rt.seen[i]++
		if c.kind > rt.kinds[i] {
			rt.kinds[i] = c.kind
		}
	}
	rt.rows = append(rt.rows, row)
}

// materialize converts the accumulated cells into a typed engine table,
// applying manifest type overrides. A column whose cells were all null
// defaults to str.
func (rt *rawTable) materialize(name string, tm *TableManifest) (*engine.Table, *TableReport, error) {
	tbl := &engine.Table{
		Name:  name,
		Cols:  rt.cols,
		Types: make([]engine.ColType, len(rt.cols)),
	}
	rep := &TableReport{Table: name, Rows: len(rt.rows)}
	for i, col := range rt.cols {
		kind := rt.kinds[i]
		if rt.seen[i] == 0 {
			kind = ColStr
		}
		overridden := false
		if tm != nil {
			if want, ok := tm.typeFor(col); ok {
				switch want {
				case "num":
					if kind == ColStr {
						// the override promises numeric cells; verify below
						kind = ColFloat
					}
				case "str":
					kind = ColStr
				}
				overridden = true
			}
		}
		tbl.Types[i] = kind.EngineType()
		rep.Columns = append(rep.Columns, ColReport{Name: col, Kind: kind, Nulls: rt.nulls[i], Overridden: overridden})
	}
	tbl.Rows = make([][]engine.Value, len(rt.rows))
	for ri, row := range rt.rows {
		out := make([]engine.Value, len(row))
		for ci, c := range row {
			switch {
			case c.null:
				out[ci] = engine.NullVal()
			case tbl.Types[ci] == engine.TNum:
				// an override-forced num column must still pass classify, so
				// NaN/Inf/underscore literals can't sneak in as numbers
				if rep.Columns[ci].Overridden && classify(c.text) == ColStr {
					return nil, nil, fmt.Errorf("row %d column %q: %q is not numeric (type override num)", ri+1, rt.cols[ci], c.text)
				}
				f, err := strconv.ParseFloat(c.text, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("row %d column %q: %q is not numeric (type override num)", ri+1, rt.cols[ci], c.text)
				}
				out[ci] = engine.NumVal(f)
			default:
				out[ci] = engine.StrVal(c.text)
			}
		}
		tbl.Rows[ri] = out
	}
	return tbl, rep, nil
}

// readSeparated ingests CSV or TSV: a header row naming the columns, then
// one record per row. Empty fields are NULL; quoting follows RFC 4180 so
// separators, quotes and newlines may appear inside quoted fields.
func readSeparated(r io.Reader, comma rune) (*rawTable, error) {
	cr := csv.NewReader(r)
	cr.Comma = comma
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("empty input (want a header row)")
	}
	if err != nil {
		return nil, err
	}
	rt, err := newRawTable(append([]string(nil), header...))
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rt, nil
		}
		if err != nil {
			return nil, err // csv errors carry line/column positions
		}
		row := make([]cell, len(rec))
		for i, field := range rec {
			if field == "" {
				row[i] = cell{null: true}
				continue
			}
			row[i] = cell{text: field, kind: classify(field)}
		}
		rt.add(row)
	}
}

// readNDJSON ingests newline-delimited JSON: one flat object per line.
// Columns appear in order of first appearance; keys missing from a line are
// NULL. JSON gives the cell kinds directly: numbers are int/float, strings
// stay strings (never reinterpreted as numbers), booleans become 0/1,
// nested values are rejected.
func readNDJSON(r io.Reader) (*rawTable, error) {
	rt, err := newRawTable(nil)
	if err != nil {
		return nil, err
	}
	colIdx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		row := make([]cell, len(rt.cols))
		for i := range row {
			row[i] = cell{null: true}
		}
		colsBefore := len(rt.cols)
		var badKey error
		if err := decodeObject(data, func(key string, c cell) {
			if strings.TrimSpace(key) == "" && badKey == nil {
				badKey = fmt.Errorf("empty object key (columns need names)")
				return
			}
			idx, ok := colIdx[strings.ToLower(key)]
			if !ok {
				idx = len(rt.cols)
				colIdx[strings.ToLower(key)] = idx
				rt.cols = append(rt.cols, key)
				rt.kinds = append(rt.kinds, ColInt)
				rt.nulls = append(rt.nulls, len(rt.rows)) // backfill: prior rows lack the key
				rt.seen = append(rt.seen, 0)
				row = append(row, cell{null: true})
			}
			row[idx] = c
		}); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if badKey != nil {
			return nil, fmt.Errorf("line %d: %w", line, badKey)
		}
		// earlier rows are shorter when this line introduced new columns;
		// pad them so the table stays rectangular (only then — padding on
		// every line would make ingestion quadratic in the row count).
		if len(rt.cols) > colsBefore {
			for ri, prev := range rt.rows {
				for len(prev) < len(rt.cols) {
					prev = append(prev, cell{null: true})
				}
				rt.rows[ri] = prev
			}
		}
		rt.add(row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rt.cols) == 0 {
		return nil, fmt.Errorf("empty input (want one JSON object per line)")
	}
	return rt, nil
}

// decodeObject parses one flat JSON object, emitting cells in key order.
func decodeObject(data []byte, emit func(string, cell)) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("expected a JSON object, got %v", tok)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key := keyTok.(string)
		valTok, err := dec.Token()
		if err != nil {
			return err
		}
		switch v := valTok.(type) {
		case nil:
			emit(key, cell{null: true})
		case string:
			emit(key, cell{text: v, kind: ColStr})
		case json.Number:
			s := v.String()
			kind := ColInt
			if strings.ContainsAny(s, ".eE") {
				kind = ColFloat
			}
			emit(key, cell{text: s, kind: kind})
		case bool:
			if v {
				emit(key, cell{text: "1", kind: ColInt})
			} else {
				emit(key, cell{text: "0", kind: ColInt})
			}
		case json.Delim:
			return fmt.Errorf("key %q: nested %v values are not supported (flatten the objects)", key, v)
		default:
			return fmt.Errorf("key %q: unsupported value %v", key, v)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return err
	}
	// anything after the object would be silently dropped data
	if tok, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after object (got %v)", tok)
	}
	return nil
}
