package ingest

import (
	"bufio"
	"io"
	"strings"

	"pi2/internal/engine"
)

// WriteCSV exports a table in the exact dialect ReadTable ingests: a header
// row, NULL as the empty field, numbers in Go's shortest round-trippable
// form. Exporting and re-ingesting a table reproduces it bit for bit (the
// golden round-trip test relies on this) with one documented exception: a
// non-NULL empty string reads back as NULL, because CSV has no way to
// distinguish the two (no built-in table contains one). Quoting is by hand
// rather than encoding/csv for one corner: a single-column row whose only
// cell is NULL must be written as `""` — csv.Writer would emit a blank
// line, which the reader (correctly) skips.
func WriteCSV(w io.Writer, t *engine.Table) error {
	bw := bufio.NewWriter(w)
	writeRec := func(rec []string) {
		for i, field := range rec {
			if i > 0 {
				bw.WriteByte(',')
			}
			if strings.ContainsAny(field, ",\"\n\r") || (field == "" && len(rec) == 1) {
				bw.WriteByte('"')
				bw.WriteString(strings.ReplaceAll(field, `"`, `""`))
				bw.WriteByte('"')
			} else {
				bw.WriteString(field)
			}
		}
		bw.WriteByte('\n')
	}
	writeRec(t.Cols)
	rec := make([]string, len(t.Cols))
	for _, row := range t.Rows {
		for i, v := range row {
			if v.Null {
				rec[i] = ""
			} else {
				rec[i] = v.Text()
			}
		}
		writeRec(rec)
	}
	return bw.Flush()
}
