package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	dt "pi2/internal/difftree"
	"pi2/internal/engine"
	"pi2/internal/sqlparser"
)

// Statement is one SQL statement from a query-log file, anchored to the
// line it starts on so parse and validation errors point at the source.
type Statement struct {
	SQL  string
	Line int // 1-based line of the statement's first token
	AST  *dt.Node
}

// SQLs projects the statement texts (the shape core.Generate consumes).
func SQLs(stmts []Statement) []string {
	out := make([]string, len(stmts))
	for i, s := range stmts {
		out[i] = s.SQL
	}
	return out
}

// ReadLog opens and parses a query-log file (gzip detected transparently).
func ReadLog(path string) ([]Statement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()
	r, err := sniffGzip(f)
	if err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	return ParseLog(r, path)
}

// ParseLog parses a query log. The format is plain text: `#` and `--` start
// comments that run to end of line; statements are separated by `;` when
// the file contains any semicolon (outside string literals), otherwise each
// non-blank line is one statement. Every statement must parse as a query;
// all parse errors are reported together, each anchored as name:line.
func ParseLog(r io.Reader, name string) ([]Statement, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", name, err)
	}
	segs := splitStatements(string(data))
	if len(segs) == 0 {
		return nil, fmt.Errorf("ingest: %s: no SQL statements (only blank lines and comments)", name)
	}
	var stmts []Statement
	var errs []error
	for _, seg := range segs {
		ast, err := sqlparser.Parse(seg.text)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s:%d: %w", name, seg.line, err))
			continue
		}
		stmts = append(stmts, Statement{SQL: seg.text, Line: seg.line, AST: ast})
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return stmts, nil
}

// segment is one raw statement and the line its first token starts on.
type segment struct {
	text string
	line int
}

// splitStatements strips comments and splits the log into statements. The
// scanner tracks single-quote string state (with ” escapes) so semicolons,
// `#` and `--` inside literals are preserved.
func splitStatements(src string) []segment {
	type piece struct {
		text string
		line int
	}
	var pieces []piece // ;-terminated segments (cleaned text, newlines kept)
	var cur strings.Builder
	curLine := 1
	line := 1
	sawSemi := false
	inQuote := false
	flush := func() {
		pieces = append(pieces, piece{text: cur.String(), line: curLine})
		cur.Reset()
		curLine = line
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\n':
			line++
			cur.WriteByte(c)
		case inQuote:
			cur.WriteByte(c)
			if c == '\'' {
				inQuote = false
			}
		case c == '\'':
			inQuote = true
			cur.WriteByte(c)
		case c == '#', c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			i-- // the newline re-enters the loop for line counting
		case c == ';':
			sawSemi = true
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()

	var segs []segment
	add := func(text string, startLine int) {
		// anchor to the first non-blank line within the raw text
		for _, ln := range strings.Split(text, "\n") {
			if strings.TrimSpace(ln) == "" {
				startLine++
				continue
			}
			break
		}
		if t := strings.TrimSpace(text); t != "" {
			segs = append(segs, segment{text: t, line: startLine})
		}
	}
	if sawSemi {
		for _, p := range pieces {
			add(p.text, p.line)
		}
		return segs
	}
	// no semicolons anywhere: one statement per non-blank line
	for li, ln := range strings.Split(pieces[0].text, "\n") {
		add(ln, pieces[0].line+li)
	}
	return segs
}

// Validate checks every statement's table references against the ingested
// database, so a typo in a log fails with the file position and the tables
// that do exist instead of surfacing later as an opaque engine error.
func Validate(stmts []Statement, db *engine.DB, name string) error {
	var errs []error
	for _, st := range stmts {
		st.AST.Walk(func(n *dt.Node) bool {
			if n.Kind != dt.KindTableRef || len(n.Children) == 0 {
				return true
			}
			src := n.Children[0]
			if src.Kind != dt.KindIdent {
				return true
			}
			if _, ok := db.Table(src.Label); !ok {
				errs = append(errs, fmt.Errorf("%s:%d: unknown table %q (have %s)",
					name, st.Line, src.Label, strings.Join(tableNames(db), ", ")))
			}
			return true
		})
	}
	return errors.Join(errs...)
}

func tableNames(db *engine.DB) []string {
	var names []string
	for _, t := range db.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
