package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Manifest is the optional dataset descriptor: a JSON file declaring, per
// data file, the table name, the primary-key columns (which drive the
// catalogue's functional-dependency inference) and column type overrides
// for when one-pass inference guesses wrong (an id column of digit strings,
// a zip code that must stay a string).
//
//	{
//	  "now": "2020-12-31",
//	  "tables": [
//	    {"file": "cars.csv", "name": "Cars", "keys": ["id"],
//	     "types": {"origin": "str"}}
//	  ]
//	}
type Manifest struct {
	// Now is the database's fixed "current date" for today(); defaults to
	// DefaultNow.
	Now    string          `json:"now,omitempty"`
	Tables []TableManifest `json:"tables"`
}

// TableManifest describes one data file.
type TableManifest struct {
	// File matches the data file by base name, with or without extensions
	// ("cars.csv.gz", "cars.csv" and "cars" all match cars.csv.gz).
	File string `json:"file"`
	// Name overrides the table name (default: sanitized file stem).
	Name string `json:"name,omitempty"`
	// Keys lists the primary-key columns.
	Keys []string `json:"keys,omitempty"`
	// Types maps column names to "num" or "str", overriding inference.
	Types map[string]string `json:"types,omitempty"`
}

// typeFor looks up a column's type override case-insensitively.
func (tm *TableManifest) typeFor(col string) (string, bool) {
	for k, v := range tm.Types {
		if strings.EqualFold(k, col) {
			return v, true
		}
	}
	return "", false
}

// forFile finds the manifest entry for a data file, matching by base name
// or stem. Nil receiver and no match both yield nil.
func (m *Manifest) forFile(path string) *TableManifest {
	if m == nil {
		return nil
	}
	base := filepath.Base(path)
	noGz := strings.TrimSuffix(base, ".gz")
	stem := strings.TrimSuffix(noGz, filepath.Ext(noGz))
	for i := range m.Tables {
		f := m.Tables[i].File
		if strings.EqualFold(f, base) || strings.EqualFold(f, noGz) || strings.EqualFold(f, stem) {
			return &m.Tables[i]
		}
	}
	return nil
}

// ReadManifest loads and validates a manifest file. Unknown JSON fields are
// rejected so typos ("key" for "keys") fail loudly instead of being ignored.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", path, err)
	}
	for i := range m.Tables {
		tm := &m.Tables[i]
		if tm.File == "" {
			return nil, fmt.Errorf("ingest: %s: tables[%d] is missing \"file\"", path, i)
		}
		for col, typ := range tm.Types {
			if typ != "num" && typ != "str" {
				return nil, fmt.Errorf("ingest: %s: tables[%d].types[%q] = %q (want \"num\" or \"str\")", path, i, col, typ)
			}
		}
	}
	return &m, nil
}
