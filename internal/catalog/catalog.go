// Package catalog implements the database catalogue PI2 requires (paper §1:
// "only needs access to the query grammar, a database connection ... and the
// database catalogue"). It records per-column type, domain, cardinality and
// key information, which drive attribute-type inference (§3.2.1),
// visualization type compatibility (§4.1: cardinality < 20 ⇒ categorical)
// and widget initialization.
package catalog

import (
	"regexp"
	"sort"
	"strings"

	"pi2/internal/engine"
)

// CategoricalThreshold is the paper's compatibility rule: attributes with
// fewer than this many distinct values may map to categorical visual
// variables.
const CategoricalThreshold = 20

// Column describes one attribute.
type Column struct {
	Table    string
	Name     string
	IsNum    bool
	IsDate   bool // ISO-date string column: orderable, quantitative-compatible
	Distinct int
	Min, Max float64 // numeric domain
	MinStr   string  // string/date domain
	MaxStr   string
	Values   []string // distinct values (canonical text), capped
	IsKey    bool
}

// Qualified returns "table.name".
func (c *Column) Qualified() string { return c.Table + "." + c.Name }

// Categorical reports whether the column may map to a categorical visual
// variable.
func (c *Column) Categorical() bool { return c.Distinct < CategoricalThreshold }

// Quantitative reports whether the column may map to a quantitative visual
// variable: numeric columns always; date columns are orderable/continuous
// and treated as quantitative (the paper's sp500 and covid line charts rely
// on dates on the x axis).
func (c *Column) Quantitative() bool { return c.IsNum || c.IsDate }

// TableMeta describes one table.
type TableMeta struct {
	Name    string
	Columns []*Column
	Keys    [][]string
}

// Catalog is the database catalogue.
type Catalog struct {
	Tables map[string]*TableMeta // lowercased name
}

var isoDate = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

// maxTrackedValues caps the per-column distinct-value list.
const maxTrackedValues = 64

// Build scans the database and computes the catalogue. keys maps table name
// to its primary-key columns (single-column keys get IsKey on the column).
func Build(db *engine.DB, keys map[string][]string) *Catalog {
	cat := &Catalog{Tables: map[string]*TableMeta{}}
	normKeys := map[string][]string{}
	for t, ks := range keys {
		normKeys[strings.ToLower(t)] = ks
	}
	for lname, t := range db.Tables {
		tm := &TableMeta{Name: t.Name}
		if ks := normKeys[lname]; len(ks) > 0 {
			tm.Keys = [][]string{ks}
		}
		for ci, cname := range t.Cols {
			col := &Column{
				Table: t.Name,
				Name:  cname,
				IsNum: t.Types[ci] == engine.TNum,
			}
			distinct := map[string]bool{}
			first := true
			allDates := !col.IsNum
			for _, row := range t.Rows {
				v := row[ci]
				if v.Null {
					continue
				}
				text := v.Text()
				distinct[text] = true
				if col.IsNum {
					if first || v.Num < col.Min {
						col.Min = v.Num
					}
					if first || v.Num > col.Max {
						col.Max = v.Num
					}
				} else {
					if allDates && !isoDate.MatchString(text) {
						allDates = false
					}
					if first || text < col.MinStr {
						col.MinStr = text
					}
					if first || text > col.MaxStr {
						col.MaxStr = text
					}
				}
				first = false
			}
			col.IsDate = !col.IsNum && allDates && len(distinct) > 0
			col.Distinct = len(distinct)
			if len(distinct) <= maxTrackedValues {
				for v := range distinct {
					col.Values = append(col.Values, v)
				}
				sort.Strings(col.Values)
			}
			for _, ks := range normKeys[lname] {
				if len(normKeys[lname]) == 1 && strings.EqualFold(ks, cname) {
					col.IsKey = true
				}
			}
			tm.Columns = append(tm.Columns, col)
		}
		cat.Tables[lname] = tm
	}
	return cat
}

// Lookup resolves an attribute reference (possibly qualified as
// "alias.name" or "table.name") to candidate columns. scope maps
// lowercased aliases to lowercased table names for the query being
// analyzed; unqualified names are searched across scope tables first, then
// the whole catalogue.
func (c *Catalog) Lookup(name string, scope map[string]string) []*Column {
	lower := strings.ToLower(name)
	if i := strings.IndexByte(lower, '.'); i >= 0 {
		qual, col := lower[:i], lower[i+1:]
		table := qual
		if scope != nil {
			if t, ok := scope[qual]; ok {
				table = t
			}
		}
		if tm, ok := c.Tables[table]; ok {
			if cm := tm.column(col); cm != nil {
				return []*Column{cm}
			}
		}
		return nil
	}
	var out []*Column
	seen := map[string]bool{}
	if scope != nil {
		for _, table := range sortedValues(scope) {
			if seen[table] {
				continue
			}
			seen[table] = true
			if tm, ok := c.Tables[table]; ok {
				if cm := tm.column(lower); cm != nil {
					out = append(out, cm)
				}
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	for _, tname := range c.sortedTables() {
		tm := c.Tables[tname]
		if cm := tm.column(lower); cm != nil {
			out = append(out, cm)
		}
	}
	return out
}

func (tm *TableMeta) column(lower string) *Column {
	for _, c := range tm.Columns {
		if strings.ToLower(c.Name) == lower {
			return c
		}
	}
	return nil
}

func (c *Catalog) sortedTables() []string {
	names := make([]string, 0, len(c.Tables))
	for n := range c.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedValues(m map[string]string) []string {
	vals := make([]string, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// FuncReturn reports a function's return class: "num", "str", or "" when
// unknown. Mirrors the paper's "infer the type of a function call based on
// its return type in the catalogue".
func FuncReturn(name string) string {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "abs", "round":
		return "num"
	case "min", "max":
		return "num" // numeric in all of the paper's workloads
	case "today", "date", "lower", "upper":
		return "str"
	}
	return ""
}
