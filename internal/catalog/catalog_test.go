package catalog

import (
	"testing"

	"pi2/internal/dataset"
)

func build(t *testing.T) *Catalog {
	t.Helper()
	return Build(dataset.NewDB(), dataset.Keys())
}

func TestBuildDomains(t *testing.T) {
	cat := build(t)
	tm := cat.Tables["cars"]
	if tm == nil {
		t.Fatal("cars missing")
	}
	var hp *Column
	for _, c := range tm.Columns {
		if c.Name == "hp" {
			hp = c
		}
	}
	if hp == nil {
		t.Fatal("hp missing")
	}
	if !hp.IsNum || hp.Min < 40 || hp.Max > 235 || hp.Min >= hp.Max {
		t.Fatalf("hp domain = [%v, %v] num=%v", hp.Min, hp.Max, hp.IsNum)
	}
	if hp.Categorical() {
		t.Error("hp should not be categorical (high cardinality)")
	}
	if !hp.Quantitative() {
		t.Error("hp should be quantitative")
	}
}

func TestCategoricalDetection(t *testing.T) {
	cat := build(t)
	origin := cat.Lookup("origin", nil)
	if len(origin) != 1 {
		t.Fatalf("origin candidates = %v", origin)
	}
	if !origin[0].Categorical() || origin[0].Distinct != 3 {
		t.Fatalf("origin: distinct=%d categorical=%v", origin[0].Distinct, origin[0].Categorical())
	}
	if origin[0].Quantitative() {
		t.Error("origin should not be quantitative")
	}
	if len(origin[0].Values) != 3 {
		t.Fatalf("origin values = %v", origin[0].Values)
	}
}

func TestDateDetection(t *testing.T) {
	cat := build(t)
	cols := cat.Lookup("sp500.date", nil)
	if len(cols) != 1 {
		t.Fatalf("date candidates = %v", cols)
	}
	d := cols[0]
	if !d.IsDate || !d.Quantitative() || d.IsNum {
		t.Fatalf("date flags: isdate=%v quant=%v num=%v", d.IsDate, d.Quantitative(), d.IsNum)
	}
	if d.MinStr >= d.MaxStr {
		t.Fatalf("date domain [%s, %s]", d.MinStr, d.MaxStr)
	}
}

func TestKeyFlag(t *testing.T) {
	cat := build(t)
	id := cat.Lookup("cars.id", nil)
	if len(id) != 1 || !id[0].IsKey {
		t.Fatalf("cars.id should be a key: %v", id)
	}
	hp := cat.Lookup("cars.hp", nil)
	if hp[0].IsKey {
		t.Error("cars.hp should not be a key")
	}
}

func TestLookupWithScope(t *testing.T) {
	cat := build(t)
	// alias resolution: "s.ra" with scope {s: specobj}
	scope := map[string]string{"s": "specobj", "gal": "galaxy"}
	cols := cat.Lookup("s.ra", scope)
	if len(cols) != 1 || cols[0].Table != "specObj" {
		t.Fatalf("s.ra = %v", cols)
	}
	// unqualified lookup prefers scope tables
	cols = cat.Lookup("z", scope)
	if len(cols) == 0 {
		t.Fatal("z not found in scope")
	}
	for _, c := range cols {
		if c.Table != "specObj" && c.Table != "galaxy" {
			t.Fatalf("z resolved outside scope: %v", c.Table)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	cat := build(t)
	if cols := cat.Lookup("nosuchcolumn", nil); len(cols) != 0 {
		t.Fatalf("unexpected candidates %v", cols)
	}
	if cols := cat.Lookup("nosuch.col", nil); len(cols) != 0 {
		t.Fatalf("unexpected candidates %v", cols)
	}
}

func TestFuncReturn(t *testing.T) {
	if FuncReturn("count") != "num" || FuncReturn("SUM") != "num" {
		t.Error("aggregates should return num")
	}
	if FuncReturn("today") != "str" || FuncReturn("date") != "str" {
		t.Error("date funcs should return str")
	}
	if FuncReturn("nosuch") != "" {
		t.Error("unknown funcs should return empty")
	}
}
