package vis

import (
	"testing"
)

// TestRegisterCustomVisualization exercises the paper's extensibility claim
// (§4: "developers can add new visualization types [and] interaction
// templates"): an area chart joins candidate generation like the built-ins.
func TestRegisterCustomVisualization(t *testing.T) {
	defer ResetRegistry()
	area := Schema{
		Name: "area",
		Vars: []Var{
			{Name: "x", Quant: true},
			{Name: "y", Quant: true},
		},
		FDs: []FD{{Determinants: []string{"x"}, Dependent: "y"}},
	}
	typ := Register(area, []Interaction{{
		Kind: BrushX,
		Streams: []EventStream{
			{Name: "x-range", Vars: []string{"x", "x"}, Shape: ShapeRange, Togglable: true},
		},
	}})
	if typ.String() != "area" {
		t.Fatalf("custom type name = %q", typ.String())
	}
	if len(Catalog()) != 5 {
		t.Fatalf("catalog size = %d, want 5", len(Catalog()))
	}
	ints := InteractionsFor(typ)
	if len(ints) != 1 || ints[0].Kind != BrushX {
		t.Fatalf("custom interactions = %v", ints)
	}
	// the registered type participates in candidate generation
	rs := rsFor(t, "SELECT date, price FROM sp500")
	found := false
	for _, m := range CandidateMappings(rs) {
		if m.Vis.Type == typ {
			found = true
			if m.Col("x") < 0 || m.Col("y") < 0 {
				t.Fatalf("area mapping incomplete: %v", m.Assign)
			}
		}
	}
	if !found {
		t.Fatal("registered type never became a candidate")
	}
}

func TestResetRegistry(t *testing.T) {
	Register(Schema{Name: "tmp", Vars: []Var{{Name: "x", Quant: true}, {Name: "y", Quant: true}}}, nil)
	ResetRegistry()
	if len(Catalog()) != 4 {
		t.Fatalf("catalog after reset = %d", len(Catalog()))
	}
}
