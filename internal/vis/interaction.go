package vis

// InteractionKind names a visualization interaction (paper Table 1).
type InteractionKind string

const (
	Click      InteractionKind = "click"
	MultiClick InteractionKind = "multiclick"
	BrushX     InteractionKind = "brush-x"
	BrushY     InteractionKind = "brush-y"
	BrushXY    InteractionKind = "brush-xy"
	Pan        InteractionKind = "pan"
	Zoom       InteractionKind = "zoom"
)

// StreamShape describes how an event stream's values behave, which decides
// both schema matching and the safety check (§4.2.2).
type StreamShape uint8

const (
	// ShapeValue emits one value per manipulation (click on a mark); only
	// values present in the rendered result are expressible.
	ShapeValue StreamShape = iota
	// ShapeRange emits (lo, hi) bounds (brush/pan/zoom); any value between
	// the rendered min and max is expressible.
	ShapeRange
	// ShapeSet emits a set of values (multi-click).
	ShapeSet
)

// EventStream is one event stream an interaction emits. Vars lists the
// visual variables whose mapped result columns form the stream schema
// (repeats allowed: a brush over x emits <x, x>).
type EventStream struct {
	Name  string
	Vars  []string
	Shape StreamShape
	// Togglable marks streams whose interaction has an "empty" state that
	// can express absence (clearing a brush disables the predicate, paper
	// §7.1 Filter), letting the stream bind an OPT node.
	Togglable bool
	// Unbounded marks streams that can express values beyond the rendered
	// data extent: pan and zoom move the viewport itself, so unlike a
	// brush they are not limited to the currently drawn range.
	Unbounded bool
}

// Interaction is an interaction template on a visualization type.
type Interaction struct {
	Kind InteractionKind
	// Conflicts lists interaction kinds that cannot coexist on the same
	// visualization (Algorithm 1 note ②: brush-x conflicts with brush-y).
	Conflicts []InteractionKind
	Streams   []EventStream
}

// InteractionsFor returns the interaction templates a visualization type
// supports (Table 1).
func InteractionsFor(t Type) []Interaction {
	// Clicking a mark selects the underlying input record, so besides the
	// encoded visual variables the event carries every record column
	// (paper Figure 9: the record stream has the input data's schema, with
	// an internal _idx for binding). "*" expands per result column.
	click := Interaction{Kind: Click, Streams: []EventStream{
		{Name: "x-value", Vars: []string{"x"}, Shape: ShapeValue},
		{Name: "y-value", Vars: []string{"y"}, Shape: ShapeValue},
		{Name: "color-value", Vars: []string{"color"}, Shape: ShapeValue},
		{Name: "row-value", Vars: []string{"*"}, Shape: ShapeValue},
	}}
	multi := Interaction{Kind: MultiClick, Streams: []EventStream{
		{Name: "x-set", Vars: []string{"x"}, Shape: ShapeSet},
		{Name: "row-set", Vars: []string{"*"}, Shape: ShapeSet},
	}}
	brushX := Interaction{Kind: BrushX,
		Conflicts: []InteractionKind{BrushY, BrushXY, Pan, Zoom},
		Streams: []EventStream{
			{Name: "x-range", Vars: []string{"x", "x"}, Shape: ShapeRange, Togglable: true},
		}}
	brushY := Interaction{Kind: BrushY,
		Conflicts: []InteractionKind{BrushX, BrushXY, Pan, Zoom},
		Streams: []EventStream{
			{Name: "y-range", Vars: []string{"y", "y"}, Shape: ShapeRange, Togglable: true},
		}}
	brushXY := Interaction{Kind: BrushXY,
		Conflicts: []InteractionKind{BrushX, BrushY, Pan, Zoom},
		Streams: []EventStream{
			{Name: "xy-range", Vars: []string{"x", "x", "y", "y"}, Shape: ShapeRange, Togglable: true},
		}}
	pan := Interaction{Kind: Pan,
		Conflicts: []InteractionKind{BrushX, BrushY, BrushXY, Zoom},
		Streams: []EventStream{
			{Name: "x-viewport", Vars: []string{"x", "x"}, Shape: ShapeRange, Unbounded: true},
			{Name: "xy-viewport", Vars: []string{"x", "x", "y", "y"}, Shape: ShapeRange, Unbounded: true},
		}}
	zoom := Interaction{Kind: Zoom,
		Conflicts: []InteractionKind{BrushX, BrushY, BrushXY, Pan},
		Streams: []EventStream{
			{Name: "x-viewport", Vars: []string{"x", "x"}, Shape: ShapeRange, Unbounded: true},
			{Name: "xy-viewport", Vars: []string{"x", "x", "y", "y"}, Shape: ShapeRange, Unbounded: true},
		}}

	if ints, ok := registeredInteractions[t]; ok {
		return ints
	}
	switch t {
	case Table:
		// clicking a row can emit any column's value; modeled as click
		// streams over pseudo visual variables col0..colN resolved by the
		// mapping layer.
		return []Interaction{{Kind: Click, Streams: []EventStream{
			{Name: "row-value", Vars: []string{"*"}, Shape: ShapeValue},
		}}}
	case Point:
		return []Interaction{click, multi, brushX, brushY, brushXY, pan, zoom}
	case Bar:
		return []Interaction{click, multi, brushX}
	case Line:
		return []Interaction{click, pan, zoom}
	}
	return nil
}

// ConflictsWith reports whether two interaction kinds conflict on the same
// visualization.
func ConflictsWith(a, b InteractionKind) bool {
	for _, i := range InteractionsFor(Point) {
		if i.Kind != a {
			continue
		}
		for _, c := range i.Conflicts {
			if c == b {
				return true
			}
		}
	}
	return false
}
