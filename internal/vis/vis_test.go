package vis

import (
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/schema"
	"pi2/internal/sqlparser"
)

var testCat = catalog.Build(dataset.NewDB(), dataset.Keys())

func rsFor(t *testing.T, sql string) *schema.ResultSchema {
	t.Helper()
	q := sqlparser.MustParse(sql)
	rs := schema.InferResultSchema([]*dt.Node{q}, testCat)
	if rs == nil {
		t.Fatalf("undefined result schema for %s", sql)
	}
	return rs
}

func typesOf(ms []Mapping) map[Type]bool {
	out := map[Type]bool{}
	for _, m := range ms {
		out[m.Vis.Type] = true
	}
	return out
}

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("vis types = %d, want 4", len(cat))
	}
	byType := map[Type]Schema{}
	for _, s := range cat {
		byType[s.Type] = s
	}
	if !byType[Table].AnySchema {
		t.Error("table must accept any schema")
	}
	bar := byType[Bar]
	if len(bar.FDs) != 1 || bar.FDs[0].Dependent != "y" {
		t.Errorf("bar FD = %+v", bar.FDs)
	}
	if bar.Vars[0].Quant || !bar.Vars[0].Cat {
		t.Error("bar x must be categorical only")
	}
	point := byType[Point]
	if !point.Vars[0].Quant || !point.Vars[0].Cat {
		t.Error("point x must accept Q|C")
	}
}

func TestGroupByGetsBarChart(t *testing.T) {
	rs := rsFor(t, "SELECT hour, count(*) FROM flights GROUP BY hour")
	ms := CandidateMappings(rs)
	types := typesOf(ms)
	if !types[Bar] {
		t.Fatalf("no bar mapping; got %v", types)
	}
	// find the bar mapping and check the assignment
	for _, m := range ms {
		if m.Vis.Type == Bar {
			if m.Col("x") != 0 || m.Col("y") != 1 {
				t.Errorf("bar assignment = %v", m.Assign)
			}
		}
	}
}

func TestScatterForNumericPair(t *testing.T) {
	rs := rsFor(t, "SELECT hp, mpg, origin FROM Cars")
	types := typesOf(CandidateMappings(rs))
	if !types[Point] {
		t.Fatal("no point mapping for hp/mpg/origin")
	}
	if types[Bar] {
		t.Fatal("bar should be invalid: hp is not categorical and no FD holds")
	}
}

func TestKeyColumnMayBeOmitted(t *testing.T) {
	// Connect case study: id is a primary key and "not rendered by default"
	rs := rsFor(t, "SELECT hp, disp, id FROM Cars")
	found := false
	for _, m := range CandidateMappings(rs) {
		if m.Vis.Type != Point {
			continue
		}
		usesID := false
		for _, ci := range m.Assign {
			if ci == 2 {
				usesID = true
			}
		}
		if !usesID {
			found = true
		}
	}
	if !found {
		t.Fatal("no scatter mapping omitting the key column")
	}
}

func TestNonOptionalVarsMustBeCovered(t *testing.T) {
	// single categorical column: no quantitative y available → no bar/point/line
	rs := rsFor(t, "SELECT origin FROM Cars")
	types := typesOf(CandidateMappings(rs))
	if types[Bar] || types[Point] || types[Line] {
		t.Fatalf("chart mapping without y: %v", types)
	}
	if !types[Table] {
		t.Fatal("table must always be available")
	}
}

func TestLineFDWithKey(t *testing.T) {
	rs := rsFor(t, "SELECT date, price FROM sp500")
	types := typesOf(CandidateMappings(rs))
	if !types[Line] {
		t.Fatal("no line mapping for keyed date series")
	}
}

func TestInteractionsMatchTable1(t *testing.T) {
	has := func(t Type, k InteractionKind) bool {
		for _, i := range InteractionsFor(t) {
			if i.Kind == k {
				return true
			}
		}
		return false
	}
	if !has(Point, Pan) || !has(Point, BrushXY) || !has(Point, MultiClick) {
		t.Error("point interactions incomplete")
	}
	if has(Bar, Pan) || has(Bar, BrushY) {
		t.Error("bar should not support pan or brush-y")
	}
	if !has(Bar, BrushX) || !has(Bar, Click) {
		t.Error("bar must support brush-x and click")
	}
	if !has(Line, Pan) || !has(Line, Zoom) || has(Line, BrushX) {
		t.Error("line interactions wrong")
	}
	if !has(Table, Click) {
		t.Error("table must support click")
	}
}

func TestConflicts(t *testing.T) {
	if !ConflictsWith(BrushX, BrushY) {
		t.Error("brush-x should conflict with brush-y")
	}
	if !ConflictsWith(Pan, BrushX) {
		t.Error("pan should conflict with brush-x")
	}
	if ConflictsWith(Click, BrushX) {
		t.Error("click should not conflict with brush-x")
	}
	if ConflictsWith(BrushX, BrushX) {
		t.Error("an interaction kind does not conflict with itself")
	}
}

func TestPanZoomUnbounded(t *testing.T) {
	for _, i := range InteractionsFor(Point) {
		for _, s := range i.Streams {
			switch i.Kind {
			case Pan, Zoom:
				if !s.Unbounded {
					t.Errorf("%s stream %s must be unbounded", i.Kind, s.Name)
				}
			case BrushX, BrushY, BrushXY:
				if s.Unbounded {
					t.Errorf("%s stream %s must be bounded", i.Kind, s.Name)
				}
				if !s.Togglable {
					t.Errorf("%s stream %s must be togglable (clearing disables the predicate)", i.Kind, s.Name)
				}
			}
		}
	}
}
