// Package vis models visualizations as schemas (paper §4.1, Table 1): each
// visualization type declares visual variables with type requirements,
// optional functional-dependency constraints, and the interactions it
// supports together with their event-stream schemas (§4.2.1, Figure 9).
package vis

import (
	"fmt"

	"pi2/internal/schema"
)

// Type is a visualization type.
type Type uint8

const (
	Table Type = iota
	Point
	Bar
	Line
)

func (t Type) String() string {
	switch t {
	case Table:
		return "table"
	case Point:
		return "point"
	case Bar:
		return "bar"
	case Line:
		return "line"
	}
	if n, ok := customNames[t]; ok && n != "" {
		return n
	}
	return "custom"
}

// Var is a visual variable in a visualization schema.
type Var struct {
	Name     string
	Quant    bool // accepts quantitative attributes
	Cat      bool // accepts categorical attributes
	Optional bool
}

// FD is a functional-dependency constraint: Determinants → Dependent, in
// visual-variable names (paper Table 1, e.g. bar charts assume (x, color) →
// y).
type FD struct {
	Determinants []string
	Dependent    string
}

// Schema describes one visualization type.
type Schema struct {
	Type Type
	Name string // display name for registered types ("" for built-ins)
	Vars []Var
	FDs  []FD
	// AnySchema marks the table visualization, which renders any result.
	AnySchema bool
}

// registered holds developer-added visualization types (paper §4: "PI2 is
// extensible, in that developers can add new visualization types,
// interaction templates, as well as different types of layouts").
var (
	registered             []Schema
	registeredInteractions = map[Type][]Interaction{}
	nextCustomType         = Type(100)
)

// Register adds a visualization type with its interaction templates and
// returns its assigned Type. Registered types participate in candidate
// generation exactly like the built-ins.
func Register(s Schema, interactions []Interaction) Type {
	s.Type = nextCustomType
	nextCustomType++
	registered = append(registered, s)
	registeredInteractions[s.Type] = interactions
	customNames[s.Type] = s.Name
	return s.Type
}

// ResetRegistry removes registered types (tests).
func ResetRegistry() {
	registered = nil
	registeredInteractions = map[Type][]Interaction{}
	nextCustomType = Type(100)
	customNames = map[Type]string{}
}

var customNames = map[Type]string{}

// Catalog returns the built-in visualization schemas (Table 1) plus any
// registered extensions.
func Catalog() []Schema {
	return append(builtinCatalog(), registered...)
}

func builtinCatalog() []Schema {
	return []Schema{
		{Type: Table, AnySchema: true},
		{Type: Point, Vars: []Var{
			{Name: "x", Quant: true, Cat: true},
			{Name: "y", Quant: true},
			{Name: "shape", Cat: true, Optional: true},
			{Name: "size", Cat: true, Optional: true},
			{Name: "color", Cat: true, Optional: true},
		}},
		{Type: Bar,
			Vars: []Var{
				{Name: "x", Cat: true},
				{Name: "y", Quant: true},
				{Name: "color", Cat: true, Optional: true},
			},
			FDs: []FD{{Determinants: []string{"x", "color"}, Dependent: "y"}},
		},
		{Type: Line,
			Vars: []Var{
				{Name: "x", Quant: true, Cat: true},
				{Name: "y", Quant: true},
				{Name: "shape", Cat: true, Optional: true},
				{Name: "size", Cat: true, Optional: true},
				{Name: "color", Cat: true, Optional: true},
			},
			FDs: []FD{{Determinants: []string{"x", "shape", "size", "color"}, Dependent: "y"}},
		},
	}
}

// Mapping assigns result-schema columns to a visualization's visual
// variables.
type Mapping struct {
	Vis    Schema
	Assign map[string]int // visual variable name -> result column index
}

// Col returns the result column index mapped to the visual variable, or -1.
func (m *Mapping) Col(v string) int {
	if i, ok := m.Assign[v]; ok {
		return i
	}
	return -1
}

func (m *Mapping) String() string {
	return fmt.Sprintf("%s%v", m.Vis.Type, m.Assign)
}

// CandidateMappings enumerates all valid visualization mappings for a result
// schema (paper §4.1 Candidate Generation): every data attribute maps to a
// visual variable (key columns may be omitted, matching the paper's Connect
// case study where the primary key is "not rendered by default"), each
// visual variable at most once, non-optional variables are covered, types
// are compatible, and FD constraints hold.
func CandidateMappings(rs *schema.ResultSchema) []Mapping {
	if rs == nil {
		return nil
	}
	var out []Mapping
	// key columns may stay unmapped
	omittable := map[int]bool{}
	for _, key := range rs.Keys {
		if len(key) == 1 {
			omittable[key[0]] = true
		}
	}
	for _, vs := range Catalog() {
		if vs.AnySchema {
			out = append(out, Mapping{Vis: vs, Assign: map[string]int{}})
			continue
		}
		assign := map[string]int{}
		used := make([]bool, len(rs.Cols))
		var rec func(ci int)
		rec = func(ci int) {
			if ci == len(rs.Cols) {
				// all non-optional vars covered?
				for _, v := range vs.Vars {
					if !v.Optional {
						if _, ok := assign[v.Name]; !ok {
							return
						}
					}
				}
				if !fdsSatisfied(vs, assign, rs) {
					return
				}
				cp := make(map[string]int, len(assign))
				for k, v := range assign {
					cp[k] = v
				}
				out = append(out, Mapping{Vis: vs, Assign: cp})
				return
			}
			col := rs.Cols[ci]
			for _, v := range vs.Vars {
				if _, taken := assign[v.Name]; taken {
					continue
				}
				if !varCompatible(v, col) {
					continue
				}
				assign[v.Name] = ci
				used[ci] = true
				rec(ci + 1)
				delete(assign, v.Name)
				used[ci] = false
			}
			if omittable[ci] {
				rec(ci + 1) // skip the key column
			}
		}
		rec(0)
	}
	return out
}

// varCompatible implements §4.1 compatibility: categorical visual variables
// accept str/num attributes with cardinality below 20; quantitative visual
// variables accept numeric (and date) attributes.
func varCompatible(v Var, col schema.ResultCol) bool {
	if v.Quant && col.Quant {
		return true
	}
	if v.Cat && col.Cat {
		return true
	}
	return false
}

func fdsSatisfied(vs Schema, assign map[string]int, rs *schema.ResultSchema) bool {
	for _, fd := range vs.FDs {
		dep, ok := assign[fd.Dependent]
		if !ok {
			continue
		}
		var det []int
		for _, d := range fd.Determinants {
			if ci, ok := assign[d]; ok {
				det = append(det, ci)
			}
		}
		if !rs.FDHolds(det, dep) {
			return false
		}
	}
	return true
}
