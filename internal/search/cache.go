package search

import "sync"

// rewardCache memoizes state rewards by difftree state hash. One instance is
// shared by every MCTS worker (Params.SharedCaches), so a state reached by
// two workers is rewarded exactly once: the per-entry sync.Once single-
// flights the computation and blocks concurrent requesters until the value
// is ready. Sharding keeps workers from serializing on one lock.
//
// Sharing is sound because rewards are pure: the estimate is derived from a
// per-state RNG seeded by (Params.Seed, state hash), so every worker — and
// every run with the same seed — would compute the identical value.
type rewardCache struct {
	shards [rewardShards]rewardShard
}

const rewardShards = 16

type rewardShard struct {
	mu      sync.Mutex
	entries map[uint64]*rewardEntry
}

type rewardEntry struct {
	once sync.Once
	r    float64
}

func newRewardCache() *rewardCache {
	rc := &rewardCache{}
	for i := range rc.shards {
		rc.shards[i].entries = map[uint64]*rewardEntry{}
	}
	return rc
}

// get returns the memoized reward for the state hash, calling compute at
// most once across all goroutines.
func (rc *rewardCache) get(h uint64, compute func() float64) float64 {
	sh := &rc.shards[h%rewardShards]
	sh.mu.Lock()
	e, ok := sh.entries[h]
	if !ok {
		e = &rewardEntry{}
		sh.entries[h] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() { e.r = compute() })
	return e.r
}

// size reports the number of memoized states (for tests and stats).
func (rc *rewardCache) size() int {
	n := 0
	for i := range rc.shards {
		sh := &rc.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
