package search

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRewardCacheSingleFlight: concurrent get calls for one hash run the
// compute function exactly once and all callers see its value.
func TestRewardCacheSingleFlight(t *testing.T) {
	rc := newRewardCache()
	var computes atomic.Int64
	const goroutines = 32
	results := make([]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = rc.get(42, func() float64 {
				computes.Add(1)
				return -123.5
			})
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	for g := range results {
		if results[g] != -123.5 {
			t.Fatalf("goroutine %d saw %g", g, results[g])
		}
	}
	if rc.size() != 1 {
		t.Fatalf("size = %d, want 1", rc.size())
	}
}

// TestRewardCacheDistinctHashes: different hashes compute independently.
func TestRewardCacheDistinctHashes(t *testing.T) {
	rc := newRewardCache()
	for h := uint64(0); h < 100; h++ {
		h := h
		got := rc.get(h, func() float64 { return float64(h) })
		if got != float64(h) {
			t.Fatalf("get(%d) = %g", h, got)
		}
	}
	if rc.size() != 100 {
		t.Fatalf("size = %d, want 100", rc.size())
	}
	// second pass: all hits, computes must not run
	for h := uint64(0); h < 100; h++ {
		got := rc.get(h, func() float64 {
			t.Fatalf("compute re-ran for %d", h)
			return 0
		})
		if got != float64(h) {
			t.Fatalf("cached get(%d) = %g", h, got)
		}
	}
}

// TestSharedCachesMatchPrivateCaches: the search result must be identical
// with cross-worker caches on and off — rewards are a pure function of
// (Seed, state), so sharing may only change who computes, never the value.
func TestSharedCachesMatchPrivateCaches(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30")
	p := fastParams()
	p.Workers = 3
	p.SyncInterval = 5

	p.SharedCaches = true
	shared := Run(ctx, testDB, p)
	p.SharedCaches = false
	private := Run(ctx, testDB, p)

	if shared.State.Hash() != private.State.Hash() {
		t.Fatalf("shared/private caches returned different states:\nshared:  %v\nprivate: %v",
			shared.State.Trees[0].Root, private.State.Trees[0].Root)
	}
	if shared.BestReward != private.BestReward {
		t.Fatalf("rewards differ: shared %g vs private %g", shared.BestReward, private.BestReward)
	}
	if shared.Iterations != private.Iterations {
		t.Fatalf("iterations differ: shared %d vs private %d", shared.Iterations, private.Iterations)
	}
}

// TestParallelSearchDeterministicWithSharedCaches: repeat multi-worker runs
// with one seed converge on the identical state even though workers race on
// the shared caches.
func TestParallelSearchDeterministicWithSharedCaches(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	p := fastParams()
	p.Workers = 3
	p.SyncInterval = 5
	p.SharedCaches = true
	a := Run(ctx, testDB, p)
	b := Run(ctx, testDB, p)
	if a.State.Hash() != b.State.Hash() || a.BestReward != b.BestReward {
		t.Fatalf("same seed, different outcomes: %g vs %g", a.BestReward, b.BestReward)
	}
}
