// Package search implements PI2's single-player Monte Carlo Tree Search
// over Difftree states (paper §6.2): UCT selection with the variance term
// of Eq. (1), full expansion, random rollouts ended by the TERMINATE rule,
// K random-interface-mapping reward estimation, Cadiaplayer-style
// max-reward return, and the parallel-worker / early-stop / synchronization
// optimizations of §6.2.1.
package search

import (
	"math"
	"math/rand"
	"time"

	"pi2/internal/engine"
	"pi2/internal/mapping"
	"pi2/internal/obs"
	"pi2/internal/transform"
)

// Params configures the search; defaults mirror §7.3.
type Params struct {
	EarlyStop    int // es: stop after this many non-improving iterations (default 30)
	Workers      int // p: parallel MCTS workers (default 3)
	SyncInterval int // s: iterations between coordinator syncs (default 10)

	C, D            float64 // UCT exploration and variance constants
	K               int     // random interface mappings per reward (default 5)
	MaxIterations   int     // per-worker iteration cap
	MaxRolloutDepth int     // random playout depth cap
	MaxChildren     int     // branching cap per expansion
	Seed            int64

	ClusterInit bool // partition queries by result schema first (§6.1)
	MaxReturn   bool // return max-reward state (Cadiaplayer) vs best average
	UseVariance bool // include Eq. (1)'s third term

	// SharedCaches shares one reward cache and one safety-check execution
	// cache across all workers (default on): a state reached by several
	// workers is rewarded exactly once, and a safety query executes once.
	// Off gives each worker private caches (the pre-sharing behavior, kept
	// for benchmarks); the search result is identical either way because
	// reward estimates are a pure function of (Seed, state).
	SharedCaches bool

	// Trace, when non-nil, accumulates "search.rollout" and "search.reward"
	// aggregate timers (obs.Trace.AddTimer is concurrency-safe, so all
	// workers feed one trace). Purely observational: the search touches no
	// RNG through it, so traced and untraced runs return identical results.
	Trace *obs.Trace

	MapOpts mapping.Options
}

// DefaultParams returns the paper's default configuration.
func DefaultParams() Params {
	return Params{
		EarlyStop:       30,
		Workers:         3,
		SyncInterval:    10,
		C:               1.4,
		D:               1.0,
		K:               5,
		MaxIterations:   400,
		MaxRolloutDepth: 16,
		MaxChildren:     32,
		Seed:            1,
		ClusterInit:     true,
		MaxReturn:       true,
		UseVariance:     true,
		SharedCaches:    true,
		MapOpts:         mapping.DefaultOptions(),
	}
}

// Result reports the search outcome.
type Result struct {
	State      *transform.State
	BestReward float64
	Iterations int // total iterations across workers
	Rollouts   int
}

// failReward marks states that admit no valid interface mapping.
const failReward = -1e9

type node struct {
	state    *transform.State
	children []*node
	visits   int
	sum      float64
	sumSq    float64
	expanded bool
	terminal bool
}

// worker is one independent MCTS instance.
type worker struct {
	root    *node
	rng     *rand.Rand
	p       Params
	ctx     *transform.Context
	db      *engine.DB
	best    *transform.State
	bestR   float64
	seen    map[uint64]bool
	rewards *rewardCache // shared across workers when Params.SharedCaches
	iters   int
	rolls   int
	stale   int // iterations since the local best improved

	// reused scratch buffers for the selection path and rule enumeration,
	// avoiding per-iteration (and per-rollout-step) slice churn.
	path []*node
	apps []transform.Application

	// running reward range for UCT normalization: rewards live on the cost
	// model's scale (thousands), so Eq. (1)'s constants only make sense
	// after mapping means and variances into [0, 1].
	minR, maxR float64
	haveRange  bool
}

// newWorker builds one MCTS instance. rewards and exec are the caches shared
// across workers; either may be nil, giving the worker a private instance
// (the Params.SharedCaches ablation).
func newWorker(ctx *transform.Context, db *engine.DB, p Params, seed int64, rewards *rewardCache, exec *mapping.ExecCache) *worker {
	init := transform.InitState(ctx, p.ClusterInit)
	if rewards == nil {
		rewards = newRewardCache()
	}
	if exec == nil {
		exec = mapping.NewExecCache(db)
	}
	p.MapOpts.Exec = exec
	w := &worker{
		root:    &node{state: init},
		rng:     rand.New(rand.NewSource(seed)),
		p:       p,
		ctx:     ctx,
		db:      db,
		bestR:   math.Inf(-1),
		seen:    map[uint64]bool{init.Hash(): true},
		rewards: rewards,
	}
	return w
}

// reward estimates a state's reward as the negative of the minimum cost
// over K random interface mappings (§6.2.1 step 4), memoized per state
// across all workers. The estimate is a pure function of (Params.Seed,
// state): the sampling RNG is derived from the state hash, not from the
// worker's rollout RNG, so whichever worker computes it first stores the
// value every other worker would have computed.
func (w *worker) reward(s *transform.State) float64 {
	h := s.Hash()
	r := w.rewards.get(h, func() float64 { return w.rewardUncached(s, h) })
	// The normalization range stays worker-local (it feeds this worker's UCT
	// scores) and is updated on every observation, hit or miss.
	if r != failReward {
		if !w.haveRange {
			w.minR, w.maxR, w.haveRange = r, r, true
		} else {
			if r < w.minR {
				w.minR = r
			}
			if r > w.maxR {
				w.maxR = r
			}
		}
	}
	return r
}

// norm maps a reward into [0, 1] using the observed range; failed states
// land below every real reward.
func (w *worker) norm(r float64) float64 {
	if r == failReward {
		return -1
	}
	if !w.haveRange || w.maxR == w.minR {
		return 0.5
	}
	return (r - w.minR) / (w.maxR - w.minR)
}

func (w *worker) rewardUncached(s *transform.State, h uint64) float64 {
	if w.p.Trace != nil {
		defer func(t0 time.Time) { w.p.Trace.AddTimer("search.reward", time.Since(t0)) }(time.Now())
	}
	sa, err := mapping.Analyze(s, w.ctx)
	if err != nil {
		return failReward
	}
	// Per-state RNG: the K−1 random samples draw from a stream seeded by
	// (Seed, state hash), making the estimate reproducible across workers
	// and runs regardless of which worker evaluates the state first.
	rng := rand.New(rand.NewSource(w.p.Seed ^ int64(h)))
	best := math.Inf(1)
	got := false
	// one greedy sample anchors the estimate; the remaining K−1 samples are
	// random per the paper's procedure.
	if ifc, ok := mapping.Greedy(sa, w.db, w.p.MapOpts); ok {
		best = ifc.Cost
		got = true
	}
	for i := 1; i < w.p.K; i++ {
		ifc, ok := mapping.Random(sa, w.db, rng, w.p.MapOpts)
		if !ok {
			continue
		}
		got = true
		if ifc.Cost < best {
			best = ifc.Cost
		}
	}
	if !got {
		return failReward
	}
	return -best
}

// observe records a new local best. States are immutable once published
// (see transform.State), so the pointer is kept as-is — no defensive clone.
func (w *worker) observe(s *transform.State, r float64) {
	if r > w.bestR {
		w.bestR = r
		w.best = s
		w.stale = 0
	}
}

// fpu is the "first play urgency": unvisited children get this optimistic
// normalized value instead of infinite priority, so selection can deepen
// along improving paths without first visiting every sibling (the Difftree
// search needs chains a dozen rules deep; paper §6.2's massive space).
const fpu = 1.15

// uct scores a child per Eq. (1), over range-normalized rewards.
func (w *worker) uct(parent, child *node) float64 {
	if child.visits == 0 {
		return fpu + w.p.C*math.Sqrt(math.Log(float64(parent.visits+1)))
	}
	span := w.maxR - w.minR
	if !w.haveRange || span == 0 {
		span = 1
	}
	mean := child.sum / float64(child.visits)
	nMean := (mean - w.minR) / span
	v := nMean + w.p.C*math.Sqrt(math.Log(float64(parent.visits))/float64(child.visits))
	if w.p.UseVariance {
		varTerm := (child.sumSq - float64(child.visits)*mean*mean) / float64(child.visits)
		if varTerm < 0 {
			varTerm = 0
		}
		varTerm /= span * span
		v += math.Sqrt(varTerm + w.p.D/float64(child.visits))
	}
	return v
}

// expand adds all children of a leaf: the result of every valid rule
// application plus the TERMINATE transition. Applications are interleaved
// across trees so the branching cap cannot starve later trees of their
// transforms.
func (w *worker) expand(n *node) {
	apps := interleaveByTree(transform.Applicable(n.state, w.ctx))
	count := 0
	for _, a := range apps {
		if w.p.MaxChildren > 0 && count >= w.p.MaxChildren {
			break
		}
		next, ok := a.Run()
		if !ok {
			continue
		}
		h := next.Hash()
		if w.seen[h] {
			continue
		}
		w.seen[h] = true
		n.children = append(n.children, &node{state: next})
		count++
	}
	// TERMINATE: a terminal copy of the state
	n.children = append(n.children, &node{state: n.state, terminal: true})
	n.expanded = true
}

// interleaveByTree round-robins rule applications across the state's trees
// (cross-tree rules keep their primary tree's slot) so no tree's rewrites
// are starved by the branching cap.
func interleaveByTree(apps []transform.Application) []transform.Application {
	groups := map[int][]transform.Application{}
	maxTree := 0
	for _, a := range apps {
		groups[a.Tree] = append(groups[a.Tree], a)
		if a.Tree > maxTree {
			maxTree = a.Tree
		}
	}
	out := make([]transform.Application, 0, len(apps))
	for len(out) < len(apps) {
		for t := 0; t <= maxTree; t++ {
			if len(groups[t]) > 0 {
				out = append(out, groups[t][0])
				groups[t] = groups[t][1:]
			}
		}
	}
	return out
}

// ruleWeight biases random playouts toward refactoring/mutation rules;
// cross-tree restructuring is explored but less frequently.
func ruleWeight(rule string) int {
	switch rule {
	case "Merge", "Split":
		return 1
	case "PushANY":
		return 8
	case "ANY→VAL", "PushOPT1", "PushOPT2", "OptIntro":
		return 5
	default:
		return 3
	}
}

// rollout plays random transforms from the state until TERMINATE is chosen,
// no rule applies, or the depth cap is reached. Every visited state is
// evaluated (the paper returns the state with the maximum reward
// encountered *during rollouts*, §6.2.1); rollout returns that maximum.
func (w *worker) rollout(s *transform.State) float64 {
	cur := s
	best := w.reward(cur)
	w.observe(cur, best)
	for depth := 0; depth < w.p.MaxRolloutDepth; depth++ {
		w.apps = transform.AppendApplicable(w.apps[:0], cur, w.ctx)
		apps := w.apps
		if len(apps) == 0 {
			return best
		}
		// weighted random choice; TERMINATE holds one unit of weight
		total := 1
		for _, a := range apps {
			total += ruleWeight(a.Rule)
		}
		pick := w.rng.Intn(total)
		if pick == 0 {
			return best // TERMINATE
		}
		pick--
		start := 0
		for i, a := range apps {
			wgt := ruleWeight(a.Rule)
			if pick < wgt {
				start = i
				break
			}
			pick -= wgt
		}
		// try applications starting from the chosen index (failed ones are
		// skipped rather than retried forever)
		applied := false
		for off := 0; off < len(apps); off++ {
			a := apps[(start+off)%len(apps)]
			if next, ok := a.Run(); ok {
				cur = next
				applied = true
				break
			}
		}
		if !applied {
			return best
		}
		r := w.reward(cur)
		w.observe(cur, r)
		if r > best {
			best = r
		}
	}
	return best
}

// iterate runs one MCTS iteration: select, expand, simulate, backpropagate.
func (w *worker) iterate() {
	w.iters++
	w.stale++
	// 1. select
	path := append(w.path[:0], w.root)
	cur := w.root
	for cur.expanded && !cur.terminal && len(cur.children) > 0 {
		var best *node
		bestScore := math.Inf(-1)
		for _, c := range cur.children {
			s := w.uct(cur, c)
			if s > bestScore {
				bestScore = s
				best = c
			}
		}
		cur = best
		path = append(path, cur)
	}
	// 2. expand
	simulateFrom := cur
	if !cur.terminal && !cur.expanded {
		w.expand(cur)
		if len(cur.children) > 0 {
			child := cur.children[w.rng.Intn(len(cur.children))]
			path = append(path, child)
			simulateFrom = child
		}
	}
	// 3. simulate
	var r float64
	if simulateFrom.terminal {
		r = w.reward(simulateFrom.state)
		w.observe(simulateFrom.state, r)
	} else {
		if w.p.Trace != nil {
			t0 := time.Now()
			r = w.rollout(simulateFrom.state)
			w.p.Trace.AddTimer("search.rollout", time.Since(t0))
		} else {
			r = w.rollout(simulateFrom.state)
		}
		w.rolls++
	}
	// 4. backpropagate
	for _, n := range path {
		n.visits++
		n.sum += r
		n.sumSq += r * r
	}
	w.path = path // keep the (possibly grown) buffer for the next iteration
}

// done reports whether the worker hit its local stopping condition.
func (w *worker) done() bool {
	if w.iters >= w.p.MaxIterations {
		return true
	}
	if w.p.EarlyStop > 0 && w.stale >= w.p.EarlyStop {
		return true
	}
	// all root children terminal
	if w.root.expanded {
		allTerm := true
		for _, c := range w.root.children {
			if !c.terminal {
				allTerm = false
				break
			}
		}
		if allTerm && len(w.root.children) > 0 {
			return true
		}
	}
	return false
}

// Run executes the parallel MCTS (§6.2.1): p workers search independently
// and synchronize through a coordinator every s iterations, exchanging the
// best state found; the search stops when every worker reports early-stop
// and no higher-reward state arrives.
func Run(ctx *transform.Context, db *engine.DB, p Params) *Result {
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.SyncInterval < 1 {
		p.SyncInterval = 10
	}
	// Cross-worker caches: one reward memo and one safety-check execution
	// cache serve all workers (the DB is read-only during search). With
	// SharedCaches off each worker builds private instances in newWorker.
	var rewards *rewardCache
	exec := p.MapOpts.Exec
	if p.SharedCaches {
		rewards = newRewardCache()
		if exec == nil && p.MapOpts.CheckSafety {
			exec = mapping.NewExecCache(db)
		}
	} else {
		exec = nil
	}
	workers := make([]*worker, p.Workers)
	for i := range workers {
		workers[i] = newWorker(ctx, db, p, p.Seed+int64(i)*7919, rewards, exec)
	}

	type report struct {
		best  *transform.State
		r     float64
		done  bool
		iters int
		rolls int
	}
	globalBest := math.Inf(-1)
	var globalState *transform.State
	totalIters, totalRolls := 0, 0

	// lock-step rounds: each worker runs s iterations concurrently, then
	// the coordinator gathers and redistributes the best state. Reports are
	// processed in worker order so ties break deterministically and repeat
	// runs with the same seed return the same state. States are immutable
	// once published, so the coordinator and the workers share pointers
	// instead of cloning on every exchange.
	for round := 0; ; round++ {
		reports := make([]report, len(workers))
		done := make(chan int, len(workers))
		for wi, w := range workers {
			go func(wi int, w *worker) {
				for i := 0; i < p.SyncInterval && !w.done(); i++ {
					w.iterate()
				}
				reports[wi] = report{best: w.best, r: w.bestR, done: w.done(), iters: w.iters, rolls: w.rolls}
				done <- wi
			}(wi, w)
		}
		for range workers {
			<-done
		}
		allDone := true
		totalIters, totalRolls = 0, 0
		for _, rep := range reports {
			totalIters += rep.iters
			totalRolls += rep.rolls
			if rep.r > globalBest && rep.best != nil {
				globalBest = rep.r
				globalState = rep.best
			}
			if !rep.done {
				allDone = false
			}
		}
		// distribute the maximum-reward state back to the workers
		for _, w := range workers {
			if globalState != nil && globalBest > w.bestR {
				w.bestR = globalBest
				w.best = globalState
			}
		}
		// Termination rule: the search ends on the first round in which
		// every worker reports its local stopping condition (iteration cap,
		// early stop, or exhausted root). An incoming better state does not
		// restart a stopped worker — workers only ever *record* received
		// bests — so "all done" alone decides; there is no separate
		// "improved" condition.
		if allDone {
			break
		}
	}

	if !p.MaxReturn {
		// ablation: traditional MCTS returns the state with the highest
		// average reward among visited tree nodes instead of the maximum
		// reward encountered (Cadiaplayer).
		bestAvg := math.Inf(-1)
		var bestState *transform.State
		for _, w := range workers {
			var walk func(n *node)
			walk = func(n *node) {
				if n.visits > 0 {
					avg := n.sum / float64(n.visits)
					if avg > bestAvg {
						bestAvg = avg
						bestState = n.state
					}
				}
				for _, c := range n.children {
					walk(c)
				}
			}
			walk(w.root)
		}
		if bestState != nil {
			return &Result{State: bestState.Clone(), BestReward: bestAvg, Iterations: totalIters, Rollouts: totalRolls}
		}
	}
	if globalState == nil {
		// no valid mapping anywhere: fall back to the initial state
		globalState = transform.InitState(ctx, p.ClusterInit)
	}
	// One defensive clone at the boundary: the returned state escapes to the
	// caller while the internal one may alias search-tree nodes.
	return &Result{State: globalState.Clone(), BestReward: globalBest, Iterations: totalIters, Rollouts: totalRolls}
}
