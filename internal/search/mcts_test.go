package search

import (
	"testing"

	"pi2/internal/catalog"
	"pi2/internal/dataset"
	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

var (
	testDB  = dataset.NewDB()
	testCat = catalog.Build(testDB, dataset.Keys())
)

func ctxFor(t *testing.T, sqls ...string) *transform.Context {
	t.Helper()
	qs, err := sqlparser.ParseAll(sqls)
	if err != nil {
		t.Fatal(err)
	}
	return &transform.Context{Queries: qs, Cat: testCat}
}

func fastParams() Params {
	p := DefaultParams()
	p.Workers = 1
	p.MaxIterations = 60
	p.EarlyStop = 20
	return p
}

func TestSearchImprovesOnInitialState(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	res := Run(ctx, testDB, fastParams())
	if res.State == nil {
		t.Fatal("no state returned")
	}
	// the returned state should contain a VAL node (a = VAL generalization)
	hasVal := false
	for _, tr := range res.State.Trees {
		tr.Root.Walk(func(n *dt.Node) bool {
			if n.Kind == dt.KindVal {
				hasVal = true
			}
			return true
		})
	}
	if !hasVal {
		t.Errorf("search did not lift the literal to VAL: %v", res.State.Trees[0].Root)
	}
	if !res.State.Valid(ctx) {
		t.Fatal("returned state invalid")
	}
	if res.Iterations == 0 {
		t.Fatalf("iterations=%d", res.Iterations)
	}
}

func TestSearchDeterministicForSeed(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30")
	p := fastParams()
	a := Run(ctx, testDB, p)
	b := Run(ctx, testDB, p)
	if a.State.Hash() != b.State.Hash() {
		t.Fatal("same seed produced different states")
	}
	if a.BestReward != b.BestReward {
		t.Fatalf("rewards differ: %g vs %g", a.BestReward, b.BestReward)
	}
}

func TestParallelWorkersShareBest(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	p := fastParams()
	p.Workers = 3
	p.SyncInterval = 5
	res := Run(ctx, testDB, p)
	if res.State == nil || !res.State.Valid(ctx) {
		t.Fatal("parallel search failed")
	}
	if res.Iterations <= p.MaxIterations/2 {
		t.Logf("iterations = %d (early stop)", res.Iterations)
	}
}

func TestEarlyStopBoundsIterations(t *testing.T) {
	ctx := ctxFor(t, "SELECT a FROM T")
	p := fastParams()
	p.EarlyStop = 5
	res := Run(ctx, testDB, p)
	// a single static query has a tiny space; early stop must kick in fast
	if res.Iterations > 40 {
		t.Fatalf("iterations = %d, early stop ineffective", res.Iterations)
	}
}

func TestAverageReturnAblation(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p")
	p := fastParams()
	p.MaxReturn = false
	res := Run(ctx, testDB, p)
	if res.State == nil || !res.State.Valid(ctx) {
		t.Fatal("average-return variant broken")
	}
}

func TestNoVarianceAblation(t *testing.T) {
	ctx := ctxFor(t,
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p")
	p := fastParams()
	p.UseVariance = false
	res := Run(ctx, testDB, p)
	if res.State == nil || !res.State.Valid(ctx) {
		t.Fatal("no-variance variant broken")
	}
}

func TestInterleaveByTree(t *testing.T) {
	apps := []transform.Application{
		{Rule: "A", Tree: 0}, {Rule: "B", Tree: 0}, {Rule: "C", Tree: 1}, {Rule: "D", Tree: 2},
	}
	out := interleaveByTree(apps)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Tree != 0 || out[1].Tree != 1 || out[2].Tree != 2 || out[3].Tree != 0 {
		t.Fatalf("order = %v %v %v %v", out[0].Tree, out[1].Tree, out[2].Tree, out[3].Tree)
	}
}

func TestRuleWeights(t *testing.T) {
	if ruleWeight("Merge") >= ruleWeight("PushANY") {
		t.Fatal("refactoring rules should outweigh cross-tree rules in rollouts")
	}
}

func TestRewardNormalization(t *testing.T) {
	w := &worker{minR: -100, maxR: -10, haveRange: true}
	if got := w.norm(-10); got != 1 {
		t.Fatalf("norm(best) = %g", got)
	}
	if got := w.norm(-100); got != 0 {
		t.Fatalf("norm(worst) = %g", got)
	}
	if got := w.norm(failReward); got != -1 {
		t.Fatalf("norm(fail) = %g", got)
	}
}
