package difftree

import "hash/fnv"

// Hash returns a structural 64-bit hash of the subtree (kind, label,
// children), ignoring IDs. Equal trees hash equally; collisions are possible
// but callers (Partition, sequence alignment) re-verify with Equal.
func Hash(n *Node) uint64 {
	h := fnv.New64a()
	hashInto(n, h)
	return h.Sum64()
}

type hasher interface{ Write(p []byte) (int, error) }

func hashInto(n *Node, h hasher) {
	if n == nil {
		h.Write([]byte{0xff})
		return
	}
	h.Write([]byte{byte(n.Kind)})
	h.Write([]byte(n.Label))
	h.Write([]byte{0x1f})
	for _, c := range n.Children {
		hashInto(c, h)
	}
	h.Write([]byte{0x1e})
}

// HashKey returns a 64-bit hash of a canonical key string — in particular
// Binding.KeyString, which renders equal binding states identically
// regardless of map iteration order. Callers that need both the key and
// its hash (the interaction result cache) compute KeyString once and pass
// it here; collisions are possible, so exact callers re-verify with the
// key itself.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// RootKey returns a shallow key identifying the root production of a node:
// the kind plus, for kinds where the label is structural (operators, function
// names), the label. It is used by Partition and PushANY to decide whether
// two subtrees share the same root.
func RootKey(n *Node) string {
	switch n.Kind {
	case KindBinary, KindFunc, KindIn, KindOrderItem:
		return n.Kind.String() + ":" + n.Label
	default:
		return n.Kind.String()
	}
}
