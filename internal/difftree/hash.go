package difftree

import (
	"hash/fnv"
	"sync/atomic"
)

// Hash returns a structural 64-bit hash of the subtree (kind, label,
// children), ignoring IDs. Equal trees hash equally; collisions are possible
// but callers (Partition, sequence alignment) re-verify with Equal.
//
// The hash is memoized on each Node: a subtree is walked at most once and
// later Hash calls on the same node (or on parents built over it) reuse the
// cached value. The cache relies on the package-wide convention that a node's
// structure (Kind, Label, Children) is immutable once it has been hashed;
// the one code path that rewrites children of possibly-hashed nodes in place
// (transform's cascading PushANY) must call InvalidateHash on every node it
// revisits. ID changes (Renumber) never affect the hash.
func Hash(n *Node) uint64 {
	if n == nil {
		// stable sentinel for the nil subtree, distinct from any real node
		return nilNodeHash
	}
	if h := atomic.LoadUint64(&n.hc); h != 0 {
		return h
	}
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(n.Kind)
	buf[1] = byte(len(n.Label))
	buf[2] = byte(len(n.Label) >> 8)
	buf[3] = byte(len(n.Children))
	buf[4] = byte(len(n.Children) >> 8)
	h.Write(buf[:5])
	h.Write([]byte(n.Label))
	for _, c := range n.Children {
		ch := Hash(c)
		for i := 0; i < 8; i++ {
			buf[i] = byte(ch >> (8 * i))
		}
		h.Write(buf[:8])
	}
	v := h.Sum64()
	if v == 0 {
		v = 1 // 0 means "not yet computed" in the cache
	}
	// Concurrent hashers of a shared immutable subtree all store the same
	// value; the atomic keeps that benign under the race detector.
	atomic.StoreUint64(&n.hc, v)
	return v
}

// nilNodeHash is fnv64a("<nil difftree>"), fixed so nil hashes are stable.
var nilNodeHash = HashKey("<nil difftree>")

// InvalidateHash drops the node's cached structural hash. Code that mutates
// a node's Kind, Label or Children after the node may already have been
// hashed must call this on the mutated node (ancestors are the caller's
// responsibility: invalidate bottom-up or only mutate fresh ancestors).
func (n *Node) InvalidateHash() {
	atomic.StoreUint64(&n.hc, 0)
}

// HashKey returns a 64-bit hash of a canonical key string — in particular
// Binding.KeyString, which renders equal binding states identically
// regardless of map iteration order. Callers that need both the key and
// its hash (the interaction result cache) compute KeyString once and pass
// it here; collisions are possible, so exact callers re-verify with the
// key itself.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// RootKey returns a shallow key identifying the root production of a node:
// the kind plus, for kinds where the label is structural (operators, function
// names), the label. It is used by Partition and PushANY to decide whether
// two subtrees share the same root.
func RootKey(n *Node) string {
	switch n.Kind {
	case KindBinary, KindFunc, KindIn, KindOrderItem, KindJoin:
		return n.Kind.String() + ":" + n.Label
	default:
		return n.Kind.String()
	}
}
