package difftree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genDifftree builds a random Difftree over equality predicates together
// with a generator of concrete ASTs it expresses.
type dtCase struct {
	tree *Node
	gen  func(r *rand.Rand) *Node
}

func genPredicate(r *rand.Rand) *Node {
	return predEq(string(rune('a'+r.Intn(4))), string(rune('0'+r.Intn(10))))
}

// genChoiceTree builds one of several Difftree shapes with a paired
// expressible-AST sampler.
func genChoiceTree(r *rand.Rand) dtCase {
	switch r.Intn(4) {
	case 0: // AND list with OPT columns
		p1, p2 := genPredicate(r), genPredicate(r)
		tree := New(KindAnd, "", p1.Clone(), New(KindOpt, "", p2.Clone()))
		return dtCase{tree: tree, gen: func(r *rand.Rand) *Node {
			out := New(KindAnd, "", p1.Clone())
			if r.Intn(2) == 0 {
				out.Children = append(out.Children, p2.Clone())
			}
			return out
		}}
	case 1: // ANY over k predicates
		k := 2 + r.Intn(3)
		var kids []*Node
		for i := 0; i < k; i++ {
			kids = append(kids, genPredicate(r))
		}
		kids = dedupTest(kids)
		tree := New(KindAny, "", cloneAll(kids)...)
		return dtCase{tree: tree, gen: func(r *rand.Rand) *Node {
			return kids[r.Intn(len(kids))].Clone()
		}}
	case 2: // SUBSET of predicates inside AND
		p1, p2, p3 := predEq("a", "1"), predEq("b", "2"), predEq("c", "3")
		tree := New(KindAnd, "", New(KindSubset, "", p1.Clone(), p2.Clone(), p3.Clone()))
		all := []*Node{p1, p2, p3}
		return dtCase{tree: tree, gen: func(r *rand.Rand) *Node {
			out := New(KindAnd, "")
			for _, p := range all {
				if r.Intn(2) == 0 {
					out.Children = append(out.Children, p.Clone())
				}
			}
			return out
		}}
	default: // MULTI over VAL literals in an expr list
		tree := New(KindExprList, "", New(KindMulti, "", New(KindVal, "num", Number("1"))))
		return dtCase{tree: tree, gen: func(r *rand.Rand) *Node {
			out := New(KindExprList, "")
			for i := 0; i < r.Intn(4); i++ {
				out.Children = append(out.Children, Number(string(rune('0'+r.Intn(10)))))
			}
			return out
		}}
	}
}

func cloneAll(ns []*Node) []*Node {
	out := make([]*Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}

func dedupTest(ns []*Node) []*Node {
	seen := map[uint64]bool{}
	var out []*Node
	for _, n := range ns {
		h := Hash(n)
		if !seen[h] {
			seen[h] = true
			out = append(out, n)
		}
	}
	return out
}

// Property: for random Difftrees and random expressible ASTs, Match
// succeeds and Resolve(Match(q)) == q — the paper's §3.1 resolution
// semantics in both directions.
func TestQuickDifftreeExpressibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := genChoiceTree(r)
		c.tree.Renumber()
		for i := 0; i < 5; i++ {
			q := c.gen(r)
			b, ok := Match(c.tree, q)
			if !ok {
				return false
			}
			got, err := Resolve(c.tree, b)
			if err != nil || !Equal(got, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: bindings collected by BindAll cover exactly the choice nodes
// each query exercises, and the per-node value sets are consistent with
// re-matching.
func TestQuickBindAllConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := genChoiceTree(r)
		c.tree.Renumber()
		var queries []*Node
		for i := 0; i < 4; i++ {
			queries = append(queries, c.gen(r))
		}
		qb, ok := BindAll(c.tree, queries)
		if !ok {
			return false
		}
		if len(qb.PerQuery) != len(queries) {
			return false
		}
		for qi, b := range qb.PerQuery {
			got, err := Resolve(c.tree, b)
			if err != nil || !Equal(got, queries[qi]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
