// Package difftree implements the Difftree structure from the PI2 paper
// (SIGMOD 2022): abstract syntax trees extended with choice nodes (ANY, OPT,
// VAL, MULTI, SUBSET) that encode systematic variations between queries.
//
// A Difftree with no choice nodes is an ordinary AST. Every node is a
// *Node; the Kind identifies the grammar production the node was built
// from, Label carries the token payload (identifier, operator, literal
// text), and Children the sub-productions.
package difftree

import (
	"strings"
	"sync/atomic"
)

// Kind identifies the grammar production rule a node corresponds to.
type Kind uint8

const (
	// KindInvalid is the zero Kind and is never produced by the parser.
	KindInvalid Kind = iota

	// Statement structure. A Query node always has exactly seven children:
	// SelectList, From, Where, GroupBy, Having, OrderBy, Limit. Missing
	// optional clauses are KindNone placeholders so that trees from
	// different queries align positionally.
	KindQuery
	KindSelectList // list node; Label "distinct" when SELECT DISTINCT
	KindSelectItem // children: [expr, alias]; alias is KindNone or KindIdent
	KindStar       // '*'
	KindFrom       // list node of table refs and join steps
	KindTableRef   // children: [source, alias]; source is KindIdent or KindQuery
	KindJoin       // Label: "inner", "left", "right" or "full"; children: [TableRef, on-expr]
	KindWhere      // children: [expr]
	KindGroupBy    // list node of expressions
	KindHaving     // children: [expr]
	KindOrderBy    // list node of order items
	KindOrderItem  // children: [expr]; Label "asc" or "desc"
	KindLimit      // Label: row count literal

	// Expressions.
	KindAnd      // list node of conjuncts
	KindOr       // list node of disjuncts
	KindNot      // children: [expr]
	KindBinary   // Label: one of = <> < > <= >= + - * / ; children: [l, r]
	KindBetween  // children: [expr, lo, hi]
	KindIn       // Label "in" or "not in"; children: [expr, ExprList-or-Query]
	KindExprList // list node of expressions (IN value lists)
	KindFunc     // Label: function name; children: argument expressions
	KindIdent    // Label: (possibly dotted) identifier
	KindNumber   // Label: numeric literal text
	KindString   // Label: string literal contents (no quotes)
	KindNone     // the empty subtree (missing optional clause / alias)

	// Choice nodes (paper §3.1). These correspond to PEG production rules:
	//   ANY    -> c1 | ... | ck        chooses one child
	//   OPT    -> c?                   child or empty
	//   VAL    -> literal              pass-through literal pattern
	//   MULTI  -> c (sep c)*           one-or-more repetitions of c
	//   SUBSET -> c1? .. ck?           ordered subset of children
	KindAny
	KindOpt
	KindVal // Label: base domain, "num" or "str"; children: original literals
	KindMulti
	KindSubset
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid", KindQuery: "query", KindSelectList: "selectlist",
	KindSelectItem: "selectitem", KindStar: "star", KindFrom: "from",
	KindTableRef: "tableref", KindJoin: "join", KindWhere: "where", KindGroupBy: "groupby",
	KindHaving: "having", KindOrderBy: "orderby", KindOrderItem: "orderitem",
	KindLimit: "limit", KindAnd: "and", KindOr: "or", KindNot: "not",
	KindBinary: "binary", KindBetween: "between", KindIn: "in",
	KindExprList: "exprlist", KindFunc: "func", KindIdent: "ident",
	KindNumber: "number", KindString: "string", KindNone: "none",
	KindAny: "ANY", KindOpt: "OPT", KindVal: "VAL", KindMulti: "MULTI",
	KindSubset: "SUBSET",
}

// String returns the lowercase production-rule name of the kind; choice node
// kinds render uppercase as in the paper.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind?"
}

// IsChoice reports whether the kind is one of the four choice-node kinds
// (counting OPT, the two-child special case of ANY, separately).
func (k Kind) IsChoice() bool {
	switch k {
	case KindAny, KindOpt, KindVal, KindMulti, KindSubset:
		return true
	}
	return false
}

// IsList reports whether nodes of this kind hold a variable-length,
// order-significant child sequence. List kinds are the only positions where
// MULTI and SUBSET nodes (and dropped OPT nodes) may change the child count.
func (k Kind) IsList() bool {
	switch k {
	case KindSelectList, KindFrom, KindGroupBy, KindOrderBy, KindAnd, KindOr, KindExprList:
		return true
	}
	return false
}

// IsLiteral reports whether the kind is a literal leaf.
func (k Kind) IsLiteral() bool { return k == KindNumber || k == KindString }

// Node is one vertex of an AST or Difftree.
type Node struct {
	Kind     Kind
	Label    string
	Children []*Node

	// ID is a tree-unique identifier assigned by Renumber in DFS preorder.
	// Choice-node IDs key Binding maps; IDs are reassigned after every
	// transformation.
	ID int

	// hc memoizes the structural hash (see Hash); 0 means "not computed".
	// Accessed atomically so read-only trees may be hashed concurrently.
	hc uint64
}

// New constructs a node.
func New(k Kind, label string, children ...*Node) *Node {
	return &Node{Kind: k, Label: label, Children: children}
}

// NewNone returns a fresh empty-subtree placeholder.
func NewNone() *Node { return &Node{Kind: KindNone} }

// Ident returns an identifier leaf.
func Ident(name string) *Node { return &Node{Kind: KindIdent, Label: name} }

// Number returns a numeric literal leaf.
func Number(text string) *Node { return &Node{Kind: KindNumber, Label: text} }

// Str returns a string literal leaf.
func Str(text string) *Node { return &Node{Kind: KindString, Label: text} }

// Clone returns a deep copy of the subtree rooted at n, preserving IDs. Any
// memoized structural hashes carry over (the copy is structurally identical);
// callers that mutate the copy in place must invalidate the mutated nodes
// and their ancestors (see InvalidateHash).
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Label: n.Label, ID: n.ID, hc: atomic.LoadUint64(&n.hc)}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports structural equality (kind, label, children), ignoring IDs.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits the subtree in DFS preorder. Returning false from fn prunes
// the visited node's subtree (children are skipped).
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// WalkParent visits (node, parent, childIndex) triples in DFS preorder; the
// root is visited with parent nil and index -1. Returning false from fn
// prunes the node's subtree.
func (n *Node) WalkParent(fn func(node, parent *Node, idx int) bool) {
	var rec func(node, parent *Node, idx int)
	rec = func(node, parent *Node, idx int) {
		if !fn(node, parent, idx) {
			return
		}
		for i, c := range node.Children {
			rec(c, node, i)
		}
	}
	if n != nil {
		rec(n, nil, -1)
	}
}

// Renumber assigns DFS-preorder IDs starting at 0 and returns the number of
// nodes in the tree.
func (n *Node) Renumber() int {
	next := 0
	n.Walk(func(m *Node) bool {
		m.ID = next
		next++
		return true
	})
	return next
}

// ChoiceNodes returns the choice nodes of the tree in DFS preorder.
func (n *Node) ChoiceNodes() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Kind.IsChoice() {
			out = append(out, m)
		}
		return true
	})
	return out
}

// HasChoice reports whether the subtree contains any choice node.
func (n *Node) HasChoice() bool {
	found := false
	n.Walk(func(m *Node) bool {
		if m.Kind.IsChoice() {
			found = true
		}
		return !found
	})
	return found
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Find returns the node with the given ID, or nil.
func (n *Node) Find(id int) *Node {
	var out *Node
	n.Walk(func(m *Node) bool {
		if m.ID == id {
			out = m
		}
		return out == nil
	})
	return out
}

// ParentOf returns the parent of target within the tree rooted at n, or nil
// if target is the root or not present.
func (n *Node) ParentOf(target *Node) *Node {
	var out *Node
	n.Walk(func(m *Node) bool {
		for _, c := range m.Children {
			if c == target {
				out = m
			}
		}
		return out == nil
	})
	return out
}

// String renders the subtree as an s-expression, e.g.
// (binary= (ident a) (number 1)). Useful in tests and error messages.
func (n *Node) String() string {
	var b strings.Builder
	n.sexpr(&b)
	return b.String()
}

func (n *Node) sexpr(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	if len(n.Children) == 0 {
		b.WriteByte('(')
		b.WriteString(n.Kind.String())
		if n.Label != "" {
			b.WriteByte(' ')
			b.WriteString(n.Label)
		}
		b.WriteByte(')')
		return
	}
	b.WriteByte('(')
	b.WriteString(n.Kind.String())
	if n.Label != "" {
		b.WriteString(" ")
		b.WriteString(n.Label)
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		c.sexpr(b)
	}
	b.WriteByte(')')
}
