package difftree

import "fmt"

// Resolve instantiates the Difftree under the given binding, producing a
// concrete AST (paper §3.1: each choice node "resolves" to a subtree when
// bound). The result shares no nodes with the input.
func Resolve(p *Node, b Binding) (*Node, error) {
	out, err := resolveOne(p, b)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func resolveOne(p *Node, b Binding) (*Node, error) {
	switch p.Kind {
	case KindAny:
		v, ok := b[p.ID]
		if !ok {
			return nil, fmt.Errorf("difftree: unbound ANY node %d", p.ID)
		}
		if v.Index < 0 || v.Index >= len(p.Children) {
			return nil, fmt.Errorf("difftree: ANY node %d index %d out of range", p.ID, v.Index)
		}
		return resolveOne(p.Children[v.Index], b)
	case KindOpt:
		v, ok := b[p.ID]
		if !ok {
			return nil, fmt.Errorf("difftree: unbound OPT node %d", p.ID)
		}
		if !v.Present {
			return NewNone(), nil
		}
		return resolveOne(p.Children[0], b)
	case KindVal:
		v, ok := b[p.ID]
		if !ok {
			return nil, fmt.Errorf("difftree: unbound VAL node %d", p.ID)
		}
		kind := v.LitKind
		if kind == KindInvalid {
			if p.Label == "num" {
				kind = KindNumber
			} else {
				kind = KindString
			}
		}
		return &Node{Kind: kind, Label: v.Lit}, nil
	case KindMulti, KindSubset:
		return nil, fmt.Errorf("difftree: %v node %d outside a list context", p.Kind, p.ID)
	}
	out := &Node{Kind: p.Kind, Label: p.Label}
	if p.Kind.IsList() {
		cs, err := resolveList(p.Children, b)
		if err != nil {
			return nil, err
		}
		out.Children = cs
		return out, nil
	}
	for _, c := range p.Children {
		rc, err := resolveOne(c, b)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, rc)
	}
	normalizeResolved(out)
	return out, nil
}

// normalizeResolved keeps resolved ASTs canonical: clauses whose conjunct
// list resolved empty disappear (WHERE with an empty AND ≡ no WHERE), as do
// empty GROUP BY / ORDER BY lists.
func normalizeResolved(n *Node) {
	for i, c := range n.Children {
		empty := false
		switch c.Kind {
		case KindWhere, KindHaving:
			inner := c.Children[0]
			empty = inner.Kind == KindAnd && len(inner.Children) == 0
		case KindGroupBy, KindOrderBy:
			empty = len(c.Children) == 0
		}
		if empty {
			n.Children[i] = NewNone()
		}
	}
}

// resolveList expands a list node's children: MULTI nodes expand to one
// instance per repetition, SUBSET nodes to the selected children, and absent
// OPT nodes disappear.
func resolveList(children []*Node, b Binding) ([]*Node, error) {
	var out []*Node
	for _, c := range children {
		switch c.Kind {
		case KindMulti:
			v, ok := b[c.ID]
			if !ok {
				return nil, fmt.Errorf("difftree: unbound MULTI node %d", c.ID)
			}
			for _, rep := range v.Reps {
				item, err := resolveOne(c.Children[0], rep)
				if err != nil {
					return nil, err
				}
				out = append(out, item)
			}
		case KindSubset:
			v, ok := b[c.ID]
			if !ok {
				return nil, fmt.Errorf("difftree: unbound SUBSET node %d", c.ID)
			}
			for _, ix := range v.Indices {
				if ix < 0 || ix >= len(c.Children) {
					return nil, fmt.Errorf("difftree: SUBSET node %d index %d out of range", c.ID, ix)
				}
				item, err := resolveOne(c.Children[ix], b)
				if err != nil {
					return nil, err
				}
				out = append(out, item)
			}
		case KindOpt:
			v, ok := b[c.ID]
			if !ok {
				return nil, fmt.Errorf("difftree: unbound OPT node %d", c.ID)
			}
			if !v.Present {
				continue
			}
			item, err := resolveOne(c.Children[0], b)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		default:
			item, err := resolveOne(c, b)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		}
	}
	return out, nil
}
